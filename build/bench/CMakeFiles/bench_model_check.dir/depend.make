# Empty dependencies file for bench_model_check.
# This may be replaced when dependencies are built.
