# Empty compiler generated dependencies file for bench_elimination_stack.
# This may be replaced when dependencies are built.
