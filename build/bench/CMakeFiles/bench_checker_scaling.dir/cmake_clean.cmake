file(REMOVE_RECURSE
  "CMakeFiles/bench_checker_scaling.dir/bench_checker_scaling.cpp.o"
  "CMakeFiles/bench_checker_scaling.dir/bench_checker_scaling.cpp.o.d"
  "bench_checker_scaling"
  "bench_checker_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checker_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
