file(REMOVE_RECURSE
  "CMakeFiles/bench_sync_queue.dir/bench_sync_queue.cpp.o"
  "CMakeFiles/bench_sync_queue.dir/bench_sync_queue.cpp.o.d"
  "bench_sync_queue"
  "bench_sync_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
