# Empty compiler generated dependencies file for bench_fig3_checker.
# This may be replaced when dependencies are built.
