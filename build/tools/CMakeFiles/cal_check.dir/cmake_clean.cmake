file(REMOVE_RECURSE
  "CMakeFiles/cal_check.dir/cal_check.cpp.o"
  "CMakeFiles/cal_check.dir/cal_check.cpp.o.d"
  "cal_check"
  "cal_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cal_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
