# Empty compiler generated dependencies file for cal_check.
# This may be replaced when dependencies are built.
