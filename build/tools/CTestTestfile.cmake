# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cal_check_accepts_h1 "/root/repo/build/tools/cal_check" "--spec" "exchanger:E" "--checker" "cal" "/root/repo/examples/histories/fig3_h1.history")
set_tests_properties(cal_check_accepts_h1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cal_check_rejects_h3 "/root/repo/build/tools/cal_check" "--spec" "exchanger:E" "--checker" "cal" "/root/repo/examples/histories/fig3_h3.history")
set_tests_properties(cal_check_rejects_h3 PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cal_check_lin_stack "/root/repo/build/tools/cal_check" "--spec" "stack:S" "--checker" "lin" "/root/repo/examples/histories/stack.history")
set_tests_properties(cal_check_lin_stack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cal_check_refuses_lin_on_ca_spec "/root/repo/build/tools/cal_check" "--spec" "exchanger:E" "--checker" "lin" "/root/repo/examples/histories/fig3_h1.history")
set_tests_properties(cal_check_refuses_lin_on_ca_spec PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cal_check_set_lin_h1 "/root/repo/build/tools/cal_check" "--spec" "exchanger:E" "--checker" "set-lin" "/root/repo/examples/histories/fig3_h1.history")
set_tests_properties(cal_check_set_lin_h1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
