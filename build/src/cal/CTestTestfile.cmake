# CMake generated Testfile for 
# Source directory: /root/repo/src/cal
# Build directory: /root/repo/build/src/cal
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
