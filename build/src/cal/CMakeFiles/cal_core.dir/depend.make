# Empty dependencies file for cal_core.
# This may be replaced when dependencies are built.
