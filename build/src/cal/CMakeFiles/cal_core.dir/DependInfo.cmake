
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cal/agree.cpp" "src/cal/CMakeFiles/cal_core.dir/agree.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/agree.cpp.o.d"
  "/root/repo/src/cal/ca_trace.cpp" "src/cal/CMakeFiles/cal_core.dir/ca_trace.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/ca_trace.cpp.o.d"
  "/root/repo/src/cal/cal_checker.cpp" "src/cal/CMakeFiles/cal_core.dir/cal_checker.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/cal_checker.cpp.o.d"
  "/root/repo/src/cal/history.cpp" "src/cal/CMakeFiles/cal_core.dir/history.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/history.cpp.o.d"
  "/root/repo/src/cal/interval_lin.cpp" "src/cal/CMakeFiles/cal_core.dir/interval_lin.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/interval_lin.cpp.o.d"
  "/root/repo/src/cal/lin_checker.cpp" "src/cal/CMakeFiles/cal_core.dir/lin_checker.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/lin_checker.cpp.o.d"
  "/root/repo/src/cal/replay.cpp" "src/cal/CMakeFiles/cal_core.dir/replay.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/replay.cpp.o.d"
  "/root/repo/src/cal/specs/elim_views.cpp" "src/cal/CMakeFiles/cal_core.dir/specs/elim_views.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/specs/elim_views.cpp.o.d"
  "/root/repo/src/cal/specs/exchanger_spec.cpp" "src/cal/CMakeFiles/cal_core.dir/specs/exchanger_spec.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/specs/exchanger_spec.cpp.o.d"
  "/root/repo/src/cal/specs/queue_spec.cpp" "src/cal/CMakeFiles/cal_core.dir/specs/queue_spec.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/specs/queue_spec.cpp.o.d"
  "/root/repo/src/cal/specs/snapshot_spec.cpp" "src/cal/CMakeFiles/cal_core.dir/specs/snapshot_spec.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/specs/snapshot_spec.cpp.o.d"
  "/root/repo/src/cal/specs/stack_spec.cpp" "src/cal/CMakeFiles/cal_core.dir/specs/stack_spec.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/specs/stack_spec.cpp.o.d"
  "/root/repo/src/cal/specs/sync_queue_spec.cpp" "src/cal/CMakeFiles/cal_core.dir/specs/sync_queue_spec.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/specs/sync_queue_spec.cpp.o.d"
  "/root/repo/src/cal/specs/union_spec.cpp" "src/cal/CMakeFiles/cal_core.dir/specs/union_spec.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/specs/union_spec.cpp.o.d"
  "/root/repo/src/cal/specs/write_snapshot_spec.cpp" "src/cal/CMakeFiles/cal_core.dir/specs/write_snapshot_spec.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/specs/write_snapshot_spec.cpp.o.d"
  "/root/repo/src/cal/symbol.cpp" "src/cal/CMakeFiles/cal_core.dir/symbol.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/symbol.cpp.o.d"
  "/root/repo/src/cal/text.cpp" "src/cal/CMakeFiles/cal_core.dir/text.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/text.cpp.o.d"
  "/root/repo/src/cal/value.cpp" "src/cal/CMakeFiles/cal_core.dir/value.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/value.cpp.o.d"
  "/root/repo/src/cal/view.cpp" "src/cal/CMakeFiles/cal_core.dir/view.cpp.o" "gcc" "src/cal/CMakeFiles/cal_core.dir/view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
