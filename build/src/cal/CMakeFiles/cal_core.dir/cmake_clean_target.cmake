file(REMOVE_RECURSE
  "libcal_core.a"
)
