file(REMOVE_RECURSE
  "CMakeFiles/cal_runtime.dir/ebr.cpp.o"
  "CMakeFiles/cal_runtime.dir/ebr.cpp.o.d"
  "CMakeFiles/cal_runtime.dir/recorder.cpp.o"
  "CMakeFiles/cal_runtime.dir/recorder.cpp.o.d"
  "CMakeFiles/cal_runtime.dir/thread_registry.cpp.o"
  "CMakeFiles/cal_runtime.dir/thread_registry.cpp.o.d"
  "CMakeFiles/cal_runtime.dir/trace_log.cpp.o"
  "CMakeFiles/cal_runtime.dir/trace_log.cpp.o.d"
  "libcal_runtime.a"
  "libcal_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cal_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
