# Empty compiler generated dependencies file for cal_runtime.
# This may be replaced when dependencies are built.
