
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/ebr.cpp" "src/runtime/CMakeFiles/cal_runtime.dir/ebr.cpp.o" "gcc" "src/runtime/CMakeFiles/cal_runtime.dir/ebr.cpp.o.d"
  "/root/repo/src/runtime/recorder.cpp" "src/runtime/CMakeFiles/cal_runtime.dir/recorder.cpp.o" "gcc" "src/runtime/CMakeFiles/cal_runtime.dir/recorder.cpp.o.d"
  "/root/repo/src/runtime/thread_registry.cpp" "src/runtime/CMakeFiles/cal_runtime.dir/thread_registry.cpp.o" "gcc" "src/runtime/CMakeFiles/cal_runtime.dir/thread_registry.cpp.o.d"
  "/root/repo/src/runtime/trace_log.cpp" "src/runtime/CMakeFiles/cal_runtime.dir/trace_log.cpp.o" "gcc" "src/runtime/CMakeFiles/cal_runtime.dir/trace_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cal/CMakeFiles/cal_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
