file(REMOVE_RECURSE
  "libcal_runtime.a"
)
