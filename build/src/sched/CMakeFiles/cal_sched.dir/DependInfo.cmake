
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/explorer.cpp" "src/sched/CMakeFiles/cal_sched.dir/explorer.cpp.o" "gcc" "src/sched/CMakeFiles/cal_sched.dir/explorer.cpp.o.d"
  "/root/repo/src/sched/machines/elim_stack_machine.cpp" "src/sched/CMakeFiles/cal_sched.dir/machines/elim_stack_machine.cpp.o" "gcc" "src/sched/CMakeFiles/cal_sched.dir/machines/elim_stack_machine.cpp.o.d"
  "/root/repo/src/sched/machines/exchanger_machine.cpp" "src/sched/CMakeFiles/cal_sched.dir/machines/exchanger_machine.cpp.o" "gcc" "src/sched/CMakeFiles/cal_sched.dir/machines/exchanger_machine.cpp.o.d"
  "/root/repo/src/sched/machines/stack_machine.cpp" "src/sched/CMakeFiles/cal_sched.dir/machines/stack_machine.cpp.o" "gcc" "src/sched/CMakeFiles/cal_sched.dir/machines/stack_machine.cpp.o.d"
  "/root/repo/src/sched/machines/sync_queue_machine.cpp" "src/sched/CMakeFiles/cal_sched.dir/machines/sync_queue_machine.cpp.o" "gcc" "src/sched/CMakeFiles/cal_sched.dir/machines/sync_queue_machine.cpp.o.d"
  "/root/repo/src/sched/rg.cpp" "src/sched/CMakeFiles/cal_sched.dir/rg.cpp.o" "gcc" "src/sched/CMakeFiles/cal_sched.dir/rg.cpp.o.d"
  "/root/repo/src/sched/world.cpp" "src/sched/CMakeFiles/cal_sched.dir/world.cpp.o" "gcc" "src/sched/CMakeFiles/cal_sched.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cal/CMakeFiles/cal_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
