file(REMOVE_RECURSE
  "libcal_sched.a"
)
