file(REMOVE_RECURSE
  "CMakeFiles/cal_sched.dir/explorer.cpp.o"
  "CMakeFiles/cal_sched.dir/explorer.cpp.o.d"
  "CMakeFiles/cal_sched.dir/machines/elim_stack_machine.cpp.o"
  "CMakeFiles/cal_sched.dir/machines/elim_stack_machine.cpp.o.d"
  "CMakeFiles/cal_sched.dir/machines/exchanger_machine.cpp.o"
  "CMakeFiles/cal_sched.dir/machines/exchanger_machine.cpp.o.d"
  "CMakeFiles/cal_sched.dir/machines/stack_machine.cpp.o"
  "CMakeFiles/cal_sched.dir/machines/stack_machine.cpp.o.d"
  "CMakeFiles/cal_sched.dir/machines/sync_queue_machine.cpp.o"
  "CMakeFiles/cal_sched.dir/machines/sync_queue_machine.cpp.o.d"
  "CMakeFiles/cal_sched.dir/rg.cpp.o"
  "CMakeFiles/cal_sched.dir/rg.cpp.o.d"
  "CMakeFiles/cal_sched.dir/world.cpp.o"
  "CMakeFiles/cal_sched.dir/world.cpp.o.d"
  "libcal_sched.a"
  "libcal_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cal_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
