# Empty compiler generated dependencies file for cal_sched.
# This may be replaced when dependencies are built.
