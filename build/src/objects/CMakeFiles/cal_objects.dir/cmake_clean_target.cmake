file(REMOVE_RECURSE
  "libcal_objects.a"
)
