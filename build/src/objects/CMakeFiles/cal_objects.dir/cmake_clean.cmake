file(REMOVE_RECURSE
  "CMakeFiles/cal_objects.dir/elim_array.cpp.o"
  "CMakeFiles/cal_objects.dir/elim_array.cpp.o.d"
  "CMakeFiles/cal_objects.dir/elimination_stack.cpp.o"
  "CMakeFiles/cal_objects.dir/elimination_stack.cpp.o.d"
  "CMakeFiles/cal_objects.dir/exchanger.cpp.o"
  "CMakeFiles/cal_objects.dir/exchanger.cpp.o.d"
  "CMakeFiles/cal_objects.dir/immediate_snapshot.cpp.o"
  "CMakeFiles/cal_objects.dir/immediate_snapshot.cpp.o.d"
  "CMakeFiles/cal_objects.dir/ms_queue.cpp.o"
  "CMakeFiles/cal_objects.dir/ms_queue.cpp.o.d"
  "CMakeFiles/cal_objects.dir/sync_queue.cpp.o"
  "CMakeFiles/cal_objects.dir/sync_queue.cpp.o.d"
  "CMakeFiles/cal_objects.dir/treiber_stack.cpp.o"
  "CMakeFiles/cal_objects.dir/treiber_stack.cpp.o.d"
  "libcal_objects.a"
  "libcal_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cal_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
