# Empty dependencies file for cal_objects.
# This may be replaced when dependencies are built.
