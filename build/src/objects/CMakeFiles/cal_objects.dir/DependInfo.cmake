
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objects/elim_array.cpp" "src/objects/CMakeFiles/cal_objects.dir/elim_array.cpp.o" "gcc" "src/objects/CMakeFiles/cal_objects.dir/elim_array.cpp.o.d"
  "/root/repo/src/objects/elimination_stack.cpp" "src/objects/CMakeFiles/cal_objects.dir/elimination_stack.cpp.o" "gcc" "src/objects/CMakeFiles/cal_objects.dir/elimination_stack.cpp.o.d"
  "/root/repo/src/objects/exchanger.cpp" "src/objects/CMakeFiles/cal_objects.dir/exchanger.cpp.o" "gcc" "src/objects/CMakeFiles/cal_objects.dir/exchanger.cpp.o.d"
  "/root/repo/src/objects/immediate_snapshot.cpp" "src/objects/CMakeFiles/cal_objects.dir/immediate_snapshot.cpp.o" "gcc" "src/objects/CMakeFiles/cal_objects.dir/immediate_snapshot.cpp.o.d"
  "/root/repo/src/objects/ms_queue.cpp" "src/objects/CMakeFiles/cal_objects.dir/ms_queue.cpp.o" "gcc" "src/objects/CMakeFiles/cal_objects.dir/ms_queue.cpp.o.d"
  "/root/repo/src/objects/sync_queue.cpp" "src/objects/CMakeFiles/cal_objects.dir/sync_queue.cpp.o" "gcc" "src/objects/CMakeFiles/cal_objects.dir/sync_queue.cpp.o.d"
  "/root/repo/src/objects/treiber_stack.cpp" "src/objects/CMakeFiles/cal_objects.dir/treiber_stack.cpp.o" "gcc" "src/objects/CMakeFiles/cal_objects.dir/treiber_stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cal/CMakeFiles/cal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cal_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
