# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_figure3 "/root/repo/build/examples/figure3")
set_tests_properties(example_figure3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_elimination_stack "/root/repo/build/examples/elimination_stack_demo")
set_tests_properties(example_elimination_stack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sync_queue "/root/repo/build/examples/sync_queue_demo")
set_tests_properties(example_sync_queue PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_check "/root/repo/build/examples/model_check_demo")
set_tests_properties(example_model_check PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
