file(REMOVE_RECURSE
  "CMakeFiles/elimination_stack_demo.dir/elimination_stack_demo.cpp.o"
  "CMakeFiles/elimination_stack_demo.dir/elimination_stack_demo.cpp.o.d"
  "elimination_stack_demo"
  "elimination_stack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elimination_stack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
