# Empty dependencies file for elimination_stack_demo.
# This may be replaced when dependencies are built.
