# Empty dependencies file for sync_queue_demo.
# This may be replaced when dependencies are built.
