file(REMOVE_RECURSE
  "CMakeFiles/sync_queue_demo.dir/sync_queue_demo.cpp.o"
  "CMakeFiles/sync_queue_demo.dir/sync_queue_demo.cpp.o.d"
  "sync_queue_demo"
  "sync_queue_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_queue_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
