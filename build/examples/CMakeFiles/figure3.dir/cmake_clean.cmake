file(REMOVE_RECURSE
  "CMakeFiles/figure3.dir/figure3.cpp.o"
  "CMakeFiles/figure3.dir/figure3.cpp.o.d"
  "figure3"
  "figure3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
