
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cal/test_agree.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_agree.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_agree.cpp.o.d"
  "/root/repo/tests/cal/test_cal_checker.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_cal_checker.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_cal_checker.cpp.o.d"
  "/root/repo/tests/cal/test_core_types.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_core_types.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_core_types.cpp.o.d"
  "/root/repo/tests/cal/test_fig3.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_fig3.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_fig3.cpp.o.d"
  "/root/repo/tests/cal/test_history.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_history.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_history.cpp.o.d"
  "/root/repo/tests/cal/test_interval_lin.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_interval_lin.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_interval_lin.cpp.o.d"
  "/root/repo/tests/cal/test_lin_checker.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_lin_checker.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_lin_checker.cpp.o.d"
  "/root/repo/tests/cal/test_properties.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_properties.cpp.o.d"
  "/root/repo/tests/cal/test_properties_sync.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_properties_sync.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_properties_sync.cpp.o.d"
  "/root/repo/tests/cal/test_set_lin.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_set_lin.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_set_lin.cpp.o.d"
  "/root/repo/tests/cal/test_specs.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_specs.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_specs.cpp.o.d"
  "/root/repo/tests/cal/test_text.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_text.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_text.cpp.o.d"
  "/root/repo/tests/cal/test_union_spec.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_union_spec.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_union_spec.cpp.o.d"
  "/root/repo/tests/cal/test_views.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_views.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_views.cpp.o.d"
  "/root/repo/tests/cal/test_write_snapshot.cpp" "tests/CMakeFiles/test_cal_core.dir/cal/test_write_snapshot.cpp.o" "gcc" "tests/CMakeFiles/test_cal_core.dir/cal/test_write_snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cal/CMakeFiles/cal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/objects/CMakeFiles/cal_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cal_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
