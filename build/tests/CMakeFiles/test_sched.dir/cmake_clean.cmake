file(REMOVE_RECURSE
  "CMakeFiles/test_sched.dir/sched/test_multi_object.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_multi_object.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_replay.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_replay.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_rg_mutants.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_rg_mutants.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_sched.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_sched.cpp.o.d"
  "CMakeFiles/test_sched.dir/sched/test_sync_queue_machine.cpp.o"
  "CMakeFiles/test_sched.dir/sched/test_sync_queue_machine.cpp.o.d"
  "test_sched"
  "test_sched.pdb"
  "test_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
