file(REMOVE_RECURSE
  "CMakeFiles/test_objects.dir/objects/test_elimination_stack.cpp.o"
  "CMakeFiles/test_objects.dir/objects/test_elimination_stack.cpp.o.d"
  "CMakeFiles/test_objects.dir/objects/test_exchanger.cpp.o"
  "CMakeFiles/test_objects.dir/objects/test_exchanger.cpp.o.d"
  "CMakeFiles/test_objects.dir/objects/test_immediate_snapshot.cpp.o"
  "CMakeFiles/test_objects.dir/objects/test_immediate_snapshot.cpp.o.d"
  "CMakeFiles/test_objects.dir/objects/test_queues.cpp.o"
  "CMakeFiles/test_objects.dir/objects/test_queues.cpp.o.d"
  "CMakeFiles/test_objects.dir/objects/test_stacks.cpp.o"
  "CMakeFiles/test_objects.dir/objects/test_stacks.cpp.o.d"
  "test_objects"
  "test_objects.pdb"
  "test_objects[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
