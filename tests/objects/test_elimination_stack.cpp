// Elimination stack (Fig. 2) integration tests: the paper's §5 verification
// run against the real threaded implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "cal/lin_checker.hpp"
#include "cal/replay.hpp"
#include "cal/specs/elim_views.hpp"
#include "cal/specs/stack_spec.hpp"
#include "objects/elim_array.hpp"
#include "objects/elimination_stack.hpp"

namespace cal::objects {
namespace {

TEST(ElimArray, ExchangesAcrossSlotsConserveValues) {
  runtime::EpochDomain ebr;
  ElimArray ar(ebr, Symbol{"AR"}, 4);
  constexpr int kThreads = 6;
  constexpr int kRounds = 60;
  std::vector<std::vector<ExchangeResult>> results(
      kThreads, std::vector<ExchangeResult>(kRounds));
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        for (int r = 0; r < kRounds; ++r) {
          results[i][r] = ar.exchange(static_cast<runtime::ThreadId>(i),
                                      i * 1000 + r, 256);
        }
      });
    }
  }
  std::vector<std::int64_t> received;
  for (int i = 0; i < kThreads; ++i) {
    for (int r = 0; r < kRounds; ++r) {
      if (results[i][r].ok) {
        received.push_back(results[i][r].value);
        EXPECT_NE(results[i][r].value / 1000, i) << "self-exchange";
      }
    }
  }
  std::sort(received.begin(), received.end());
  EXPECT_EQ(std::unique(received.begin(), received.end()), received.end());
}

TEST(ElimArray, WidthOneBehavesLikeSingleExchanger) {
  runtime::EpochDomain ebr;
  ElimArray ar(ebr, Symbol{"AR"}, 1);
  ExchangeResult r = ar.exchange(0, 7, 4);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.value, 7);
}

TEST(EliminationStack, SequentialLifo) {
  runtime::EpochDomain ebr;
  EliminationStack es(ebr, Symbol{"ES"}, 2);
  EXPECT_TRUE(es.push(0, 1));
  EXPECT_TRUE(es.push(0, 2));
  EXPECT_TRUE(es.push(0, 3));
  EXPECT_EQ(es.pop(0), (PopResult{true, 3}));
  EXPECT_EQ(es.pop(0), (PopResult{true, 2}));
  EXPECT_EQ(es.pop(0), (PopResult{true, 1}));
}

TEST(EliminationStack, ValueConservationUnderContention) {
  runtime::EpochDomain ebr;
  EliminationStack es(ebr, Symbol{"ES"}, 2, nullptr, nullptr,
                      /*exchange_spins=*/64);
  constexpr int kThreads = 8;  // half pushers, half poppers
  constexpr int kOps = 400;
  std::vector<std::vector<std::int64_t>> popped(kThreads);
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        if (i % 2 == 0) {
          for (int k = 0; k < kOps; ++k) es.push(tid, i * 10000 + k);
        } else {
          for (int k = 0; k < kOps; ++k) {
            PopResult r = es.pop(tid);
            ASSERT_TRUE(r.ok);
            popped[i].push_back(r.value);
          }
        }
      });
    }
  }
  std::vector<std::int64_t> all;
  for (auto& v : popped) all.insert(all.end(), v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads / 2 * kOps));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end())
      << "the same value was popped twice";
}

TEST(EliminationStack, RecordedHistoryIsLinearizableAsAStack) {
  // The paper's headline theorem on the real object: ES histories are
  // *classically* linearizable w.r.t. the sequential stack spec.
  runtime::EpochDomain ebr;
  runtime::Recorder rec(1 << 12);
  EliminationStack es(ebr, Symbol{"ES"}, 2, nullptr, &rec, 64);
  constexpr int kThreads = 4;
  constexpr int kOps = 3;
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        if (i % 2 == 0) {
          for (int k = 0; k < kOps; ++k) es.push(tid, i * 100 + k);
        } else {
          for (int k = 0; k < kOps; ++k) es.pop(tid);
        }
      });
    }
  }
  History h = rec.snapshot();
  ASSERT_TRUE(h.well_formed());
  ASSERT_TRUE(h.complete());
  StackSpec spec(Symbol{"ES"});
  LinChecker checker(spec);
  LinCheckResult r = checker.check(h);
  EXPECT_TRUE(r) << h.to_string();
}

TEST(EliminationStack, ViewedTraceReplaysAgainstStackSpec) {
  // 𝔽_ES(𝒯) ∈ 𝒯(StackSpec): §5's compositional argument on the real run.
  // Single-producer-then-consumer phases keep the commit-to-log coupling
  // exact (see trace_log.hpp).
  runtime::EpochDomain ebr;
  runtime::TraceLog trace(1 << 14);
  EliminationStack es(ebr, Symbol{"ES"}, 2, &trace, nullptr, 64);
  for (int k = 0; k < 50; ++k) es.push(0, k);
  for (int k = 0; k < 50; ++k) {
    PopResult r = es.pop(0);
    ASSERT_TRUE(r.ok);
  }
  auto view = make_elimination_stack_view(Symbol{"ES"}, es.stack_name(),
                                          es.array_name(), es.width());
  CaTrace es_trace = view->view(trace.snapshot());
  StackSpec spec(Symbol{"ES"});
  ReplayResult r = replay_sequential(es_trace, spec);
  EXPECT_TRUE(r) << r.reason;
  EXPECT_TRUE(r.final_state.empty());
}

TEST(EliminationStack, EliminationActuallyHappens) {
  // With a tiny central stack window and many opposing threads, at least
  // one elimination should occur across repeated attempts. This is
  // statistical but extremely reliable: pairs collide constantly.
  runtime::EpochDomain ebr;
  EliminationStack es(ebr, Symbol{"ES"}, 1, nullptr, nullptr,
                      /*exchange_spins=*/4096);
  std::uint64_t elims = 0;
  for (int attempt = 0; attempt < 50 && elims == 0; ++attempt) {
    std::vector<std::jthread> ts;
    for (int i = 0; i < 4; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        for (int k = 0; k < 200; ++k) {
          if (i % 2 == 0) {
            es.push(tid, k + 1);
          } else {
            es.pop(tid);
          }
        }
      });
    }
    ts.clear();
    elims = es.eliminations();
  }
  if (elims == 0) {
    GTEST_SKIP() << "no elimination observed; on a single-core host the "
                    "push-CAS contention window is almost never preempted. "
                    "The elimination path is verified deterministically by "
                    "the model checker (tests/sched).";
  }
  SUCCEED();
}

TEST(EliminationStack, SubobjectNamesFollowConvention) {
  runtime::EpochDomain ebr;
  EliminationStack es(ebr, Symbol{"ES"}, 3);
  EXPECT_EQ(es.stack_name().str(), "ES.S");
  EXPECT_EQ(es.array_name().str(), "ES.AR");
  EXPECT_EQ(es.width(), 3u);
}

}  // namespace
}  // namespace cal::objects
