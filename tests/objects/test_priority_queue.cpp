// Bucket priority queue on the real runtime: sequential semantics,
// conservation under contention, and recorded histories through the
// classical checker plus both CAL paths (order fast path and engine).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/lin_checker.hpp"
#include "cal/specs/priority_queue_spec.hpp"
#include "objects/priority_queue.hpp"
#include "runtime/recorder.hpp"

namespace cal::objects {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

TEST(BucketPriorityQueue, SequentialAscendingOrder) {
  runtime::EpochDomain ebr;
  BucketPriorityQueue pq(ebr, Symbol{"P"}, /*buckets=*/8);
  EXPECT_TRUE(pq.empty());
  EXPECT_TRUE(pq.insert(0, 5));
  EXPECT_TRUE(pq.insert(0, 1));
  EXPECT_TRUE(pq.insert(0, 3));
  EXPECT_FALSE(pq.empty());
  EXPECT_EQ(pq.delete_min(0), (PopResult{true, 1}));
  EXPECT_EQ(pq.delete_min(0), (PopResult{true, 3}));
  EXPECT_EQ(pq.delete_min(0), (PopResult{true, 5}));
  EXPECT_EQ(pq.delete_min(0), (PopResult{false, 0}));
  EXPECT_TRUE(pq.empty());
}

TEST(BucketPriorityQueue, SamePriorityValuesAllCome) {
  runtime::EpochDomain ebr;
  BucketPriorityQueue pq(ebr, Symbol{"P"}, 4);
  EXPECT_TRUE(pq.insert(0, 2));
  EXPECT_TRUE(pq.insert(0, 2));
  EXPECT_EQ(pq.delete_min(0), (PopResult{true, 2}));
  EXPECT_EQ(pq.delete_min(0), (PopResult{true, 2}));
  EXPECT_EQ(pq.delete_min(0), (PopResult{false, 0}));
}

TEST(BucketPriorityQueue, RejectsOutOfRangePriorities) {
  runtime::EpochDomain ebr;
  BucketPriorityQueue pq(ebr, Symbol{"P"}, 4);
  EXPECT_FALSE(pq.insert(0, -1));
  EXPECT_FALSE(pq.insert(0, 4));
  EXPECT_TRUE(pq.insert(0, 0));
  EXPECT_TRUE(pq.insert(0, 3));
  EXPECT_EQ(pq.delete_min(0), (PopResult{true, 0}));
  EXPECT_EQ(pq.delete_min(0), (PopResult{true, 3}));
}

TEST(BucketPriorityQueue, ConcurrentConservation) {
  runtime::EpochDomain ebr;
  constexpr int kThreads = 8;
  constexpr int kOps = 300;
  BucketPriorityQueue pq(ebr, Symbol{"P"}, kThreads * kOps);
  std::vector<std::vector<std::int64_t>> got(kThreads);
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        for (int k = 0; k < kOps; ++k) {
          ASSERT_TRUE(pq.insert(tid, i * kOps + k));  // distinct priorities
          PopResult r = pq.delete_min(tid);
          if (r.ok) got[i].push_back(r.value);
        }
      });
    }
  }
  std::size_t taken = 0;
  std::vector<std::int64_t> all;
  for (auto& v : got) {
    taken += v.size();
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
  std::size_t drained = 0;
  while (pq.delete_min(0).ok) ++drained;
  EXPECT_EQ(taken + drained, static_cast<std::size_t>(kThreads * kOps));
  EXPECT_TRUE(pq.empty());
}

TEST(BucketPriorityQueue, RecordedHistoryPassesAllCheckers) {
  runtime::EpochDomain ebr;
  constexpr int kThreads = 3;
  constexpr int kOps = 4;
  BucketPriorityQueue pq(ebr, Symbol{"P"}, kThreads * 16);
  runtime::Recorder rec(1 << 12);
  const Symbol ps{"P"};
  const Symbol ins{"insert"};
  const Symbol del{"deleteMin"};
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        for (int k = 0; k < kOps; ++k) {
          const std::int64_t v = i * 16 + k;  // all distinct: order fragment
          rec.invoke(tid, ps, ins, iv(v));
          pq.insert(tid, v);
          rec.respond(tid, ps, ins, Value::boolean(true));
          rec.invoke(tid, ps, del);
          PopResult r = pq.delete_min(tid);
          rec.respond(tid, ps, del, Value::pair(r.ok, r.value));
        }
      });
    }
  }
  History h = rec.snapshot();
  ASSERT_TRUE(h.complete());
  PriorityQueueSpec seq(ps);
  LinChecker lin(seq);
  EXPECT_TRUE(lin.check(h)) << h.to_string();
  PriorityQueueCaSpec ca(ps);
  CalCheckResult order = CalChecker(ca).check(h);
  EXPECT_TRUE(order.ok) << h.to_string();
  EXPECT_TRUE(order.order_checked) << "distinct values must take the "
                                      "polynomial path";
  CalCheckOptions engine_opts;
  engine_opts.order_check = false;
  CalCheckResult engine = CalChecker(ca, engine_opts).check(h);
  EXPECT_TRUE(engine.ok) << h.to_string();
  EXPECT_FALSE(engine.order_checked);
}

}  // namespace
}  // namespace cal::objects
