// Immediate snapshot object: BG properties and CAL w.r.t. SnapshotSpec.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/set_lin.hpp"
#include "cal/specs/snapshot_spec.hpp"
#include "objects/immediate_snapshot.hpp"
#include "runtime/recorder.hpp"

namespace cal::objects {
namespace {

bool subset(const std::vector<std::int64_t>& a,
            const std::vector<std::int64_t>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

TEST(ImmediateSnapshot, SoloParticipantSeesOnlyItself) {
  ImmediateSnapshot is(Symbol{"IS"}, 4);
  EXPECT_EQ(is.us(2, 42), (std::vector<std::int64_t>{42}));
}

TEST(ImmediateSnapshot, SequentialCallsNest) {
  ImmediateSnapshot is(Symbol{"IS"}, 3);
  EXPECT_EQ(is.us(0, 1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(is.us(1, 2), (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(is.us(2, 3), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(ImmediateSnapshot, BgPropertiesUnderConcurrency) {
  // Self-inclusion, containment, immediacy — across many concurrent runs.
  constexpr std::size_t kN = 6;
  for (int round = 0; round < 50; ++round) {
    ImmediateSnapshot is(Symbol{"IS"}, kN);
    std::vector<std::vector<std::int64_t>> snaps(kN);
    {
      std::vector<std::jthread> ts;
      for (std::size_t i = 0; i < kN; ++i) {
        ts.emplace_back([&, i] {
          snaps[i] = is.us(static_cast<runtime::ThreadId>(i),
                           static_cast<std::int64_t>(100 + i));
        });
      }
    }
    for (std::size_t i = 0; i < kN; ++i) {
      // Self-inclusion.
      EXPECT_TRUE(std::binary_search(snaps[i].begin(), snaps[i].end(),
                                     static_cast<std::int64_t>(100 + i)));
      for (std::size_t j = 0; j < kN; ++j) {
        // Containment.
        EXPECT_TRUE(subset(snaps[i], snaps[j]) || subset(snaps[j], snaps[i]))
            << "snapshots not comparable";
        // Immediacy: j's value in i's snapshot ⇒ snaps[j] ⊆ snaps[i].
        if (std::binary_search(snaps[i].begin(), snaps[i].end(),
                               static_cast<std::int64_t>(100 + j))) {
          EXPECT_TRUE(subset(snaps[j], snaps[i])) << "immediacy violated";
        }
      }
    }
  }
}

TEST(ImmediateSnapshot, RecordedHistoryIsCaLinearizable) {
  constexpr std::size_t kN = 4;
  ImmediateSnapshot is(Symbol{"IS"}, kN);
  runtime::Recorder rec(1 << 10);
  {
    std::vector<std::jthread> ts;
    for (std::size_t i = 0; i < kN; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        const std::int64_t v = static_cast<std::int64_t>(10 + i);
        rec.invoke(tid, is.name(), is.method(), Value::integer(v));
        auto snap = is.us(tid, v);
        rec.respond(tid, is.name(), is.method(), Value::vec(snap));
      });
    }
  }
  History h = rec.snapshot();
  ASSERT_TRUE(h.complete());
  SnapshotSpec spec(is.name());
  CalChecker checker(spec);
  EXPECT_TRUE(checker.check(h)) << h.to_string();
  // And set-linearizable (Neiger's notion; complete history, no pendings).
  SetLinChecker set_lin(spec);
  EXPECT_TRUE(set_lin.check(h)) << h.to_string();
}

TEST(ImmediateSnapshot, InstrumentedTraceElementsCarryTerminalSnapshots) {
  runtime::TraceLog trace(64);
  ImmediateSnapshot is(Symbol{"IS"}, 2, &trace);
  is.us(0, 5);
  is.us(1, 6);
  CaTrace t = trace.snapshot();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(*t[0].ops().front().ret, Value::vec({5}));
  EXPECT_EQ(*t[1].ops().front().ret, Value::vec({5, 6}));
}

}  // namespace
}  // namespace cal::objects
