// Central stack (Fig. 2 `Stack`) and retrying Treiber baseline tests.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "cal/lin_checker.hpp"
#include "cal/replay.hpp"
#include "cal/specs/stack_spec.hpp"
#include "objects/treiber_stack.hpp"
#include "runtime/recorder.hpp"

namespace cal::objects {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

TEST(CentralStack, SequentialLifo) {
  runtime::EpochDomain ebr;
  CentralStack s(ebr, Symbol{"S"});
  EXPECT_TRUE(s.push(0, 1));
  EXPECT_TRUE(s.push(0, 2));
  EXPECT_EQ(s.pop(0), (PopResult{true, 2}));
  EXPECT_EQ(s.pop(0), (PopResult{true, 1}));
  EXPECT_EQ(s.pop(0), (PopResult{false, 0}));
  EXPECT_TRUE(s.empty());
}

TEST(CentralStack, UncontendedOpsNeverFailSpuriously) {
  runtime::EpochDomain ebr;
  CentralStack s(ebr, Symbol{"S"});
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(s.push(0, i));
  for (int i = 99; i >= 0; --i) {
    EXPECT_EQ(s.pop(0), (PopResult{true, i}));
  }
}

TEST(CentralStack, SingleThreadTraceIsWellDefinedSequentialHistory) {
  // WFS of §4: with one thread the commit-to-log coupling is exact, so the
  // logged singleton trace must replay against the central-stack spec.
  // (Under real concurrency the log order can diverge slightly from memory
  // order — see trace_log.hpp; the *exact* coupling claim is discharged by
  // the model checker in tests/sched.)
  runtime::EpochDomain ebr;
  runtime::TraceLog trace(1 << 14);
  CentralStack s(ebr, Symbol{"S"}, &trace);
  for (int k = 0; k < 100; ++k) {
    if (k % 3 != 2) {
      s.push(0, k);
    } else {
      s.pop(0);
    }
  }
  CentralStackSpec spec(Symbol{"S"});
  ReplayResult r = replay_sequential(trace.snapshot(), spec);
  EXPECT_TRUE(r) << r.reason << " at " << r.failed_at;
}

TEST(CentralStack, ConcurrentTraceConservesValues) {
  runtime::EpochDomain ebr;
  runtime::TraceLog trace(1 << 14);
  CentralStack s(ebr, Symbol{"S"}, &trace);
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < 4; ++i) {
      ts.emplace_back([&, i] {
        for (int k = 0; k < 50; ++k) {
          if (k % 2 == 0) {
            s.push(static_cast<runtime::ThreadId>(i), i * 100 + k);
          } else {
            s.pop(static_cast<runtime::ThreadId>(i));
          }
        }
      });
    }
  }
  // Every pop ▷ (true, v) in the trace corresponds to exactly one
  // push(v) ▷ true, and each op logged exactly one element.
  std::vector<std::int64_t> pushed;
  std::vector<std::int64_t> popped;
  std::size_t elements = 0;
  const CaTrace snap = trace.snapshot();
  for (const CaElement& e : snap.elements()) {
    ++elements;
    ASSERT_EQ(e.size(), 1u);
    const Operation& op = e.ops().front();
    if (op.method == Symbol{"push"} && op.ret->as_bool()) {
      pushed.push_back(op.arg.as_int());
    } else if (op.method == Symbol{"pop"} && op.ret->pair_ok()) {
      popped.push_back(op.ret->pair_int());
    }
  }
  EXPECT_EQ(elements, 4u * 50u);
  std::sort(pushed.begin(), pushed.end());
  std::sort(popped.begin(), popped.end());
  EXPECT_TRUE(std::includes(pushed.begin(), pushed.end(), popped.begin(),
                            popped.end()));
  EXPECT_EQ(std::unique(popped.begin(), popped.end()), popped.end());
}

TEST(TreiberStack, PushPopConservation) {
  runtime::EpochDomain ebr;
  TreiberStack s(ebr, Symbol{"TS"});
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  std::vector<std::vector<std::int64_t>> popped(kThreads);
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        for (int k = 0; k < kOps; ++k) {
          s.push(tid, i * 10000 + k);
          PopResult r = s.pop(tid);
          if (r.ok) popped[i].push_back(r.value);
        }
      });
    }
  }
  // Each thread pushes then pops, so every pop must succeed and the
  // multiset of popped values must equal the multiset pushed.
  std::vector<std::int64_t> all;
  for (auto& v : popped) all.insert(all.end(), v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kOps));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
  EXPECT_TRUE(s.empty());
}

TEST(TreiberStack, RecordedHistoryIsLinearizable) {
  runtime::EpochDomain ebr;
  TreiberStack s(ebr, Symbol{"TS"});
  runtime::Recorder rec(1 << 12);
  const Symbol ts_sym{"TS"};
  const Symbol push_sym{"push"};
  const Symbol pop_sym{"pop"};
  constexpr int kThreads = 3;
  constexpr int kOps = 4;
  {
    std::vector<std::jthread> workers;
    for (int i = 0; i < kThreads; ++i) {
      workers.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        for (int k = 0; k < kOps; ++k) {
          rec.invoke(tid, ts_sym, push_sym, iv(i * 100 + k));
          s.push(tid, i * 100 + k);
          rec.respond(tid, ts_sym, push_sym, Value::boolean(true));
          rec.invoke(tid, ts_sym, pop_sym);
          PopResult r = s.pop(tid);
          rec.respond(tid, ts_sym, pop_sym, Value::pair(r.ok, r.value));
        }
      });
    }
  }
  // The retrying Treiber stack behaves like the blocking StackSpec here
  // (no spurious failures, pops follow own pushes so never empty).
  StackSpec spec(ts_sym);
  LinChecker checker(spec);
  History h = rec.snapshot();
  EXPECT_TRUE(checker.check(h)) << h.to_string();
}

TEST(TreiberStack, PopOnEmptyReturnsFalse) {
  runtime::EpochDomain ebr;
  TreiberStack s(ebr, Symbol{"TS"});
  EXPECT_EQ(s.pop(0), (PopResult{false, 0}));
}

TEST(CentralStack, AbaDoesNotCorruptUnderChurn) {
  // Heavy push/pop churn on few distinct values; EBR's no-reuse-until-safe
  // prevents top-pointer ABA from corrupting the structure.
  runtime::EpochDomain ebr;
  TreiberStack s(ebr, Symbol{"TS"});
  std::atomic<std::int64_t> pushed{0}, popped_sum{0}, pushed_sum{0};
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < 8; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        for (int k = 1; k <= 300; ++k) {
          s.push(tid, k);
          pushed_sum.fetch_add(k);
          PopResult r = s.pop(tid);
          ASSERT_TRUE(r.ok);
          popped_sum.fetch_add(r.value);
          pushed.fetch_add(1);
        }
      });
    }
  }
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(pushed_sum.load(), popped_sum.load());
}

}  // namespace
}  // namespace cal::objects
