// Michael–Scott queue (classically linearizable control object) and the
// synchronous dual queue (the paper's second CA-client).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/interval_lin.hpp"
#include "cal/lin_checker.hpp"
#include "cal/specs/queue_spec.hpp"
#include "cal/specs/sync_queue_spec.hpp"
#include "objects/ms_queue.hpp"
#include "objects/rendezvous.hpp"
#include "objects/sync_queue.hpp"
#include "runtime/recorder.hpp"

namespace cal::objects {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

TEST(MsQueue, SequentialFifo) {
  runtime::EpochDomain ebr;
  MsQueue q(ebr, Symbol{"Q"});
  q.enq(0, 1);
  q.enq(0, 2);
  q.enq(0, 3);
  EXPECT_EQ(q.deq(0), (PopResult{true, 1}));
  EXPECT_EQ(q.deq(0), (PopResult{true, 2}));
  EXPECT_EQ(q.deq(0), (PopResult{true, 3}));
  EXPECT_EQ(q.deq(0), (PopResult{false, 0}));
}

TEST(MsQueue, ConcurrentConservation) {
  runtime::EpochDomain ebr;
  MsQueue q(ebr, Symbol{"Q"});
  constexpr int kThreads = 8;
  constexpr int kOps = 400;
  std::vector<std::vector<std::int64_t>> got(kThreads);
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        for (int k = 0; k < kOps; ++k) {
          q.enq(tid, i * 10000 + k);
          PopResult r = q.deq(tid);
          if (r.ok) got[i].push_back(r.value);
        }
      });
    }
  }
  std::size_t taken = 0;
  std::vector<std::int64_t> all;
  for (auto& v : got) {
    taken += v.size();
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
  // Drain the rest: enq count == deq-success count overall.
  std::size_t drained = 0;
  while (q.deq(0).ok) ++drained;
  EXPECT_EQ(taken + drained, static_cast<std::size_t>(kThreads * kOps));
}

TEST(MsQueue, RecordedHistoryIsLinearizableBothWays) {
  // The control experiment of §3: an ordinary object's histories pass both
  // the classical checker and the CAL checker via the singleton adapter.
  runtime::EpochDomain ebr;
  MsQueue q(ebr, Symbol{"Q"});
  runtime::Recorder rec(1 << 12);
  const Symbol qs{"Q"};
  const Symbol enq{"enq"};
  const Symbol deq{"deq"};
  constexpr int kThreads = 3;
  constexpr int kOps = 4;
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        for (int k = 0; k < kOps; ++k) {
          rec.invoke(tid, qs, enq, iv(i * 100 + k));
          q.enq(tid, i * 100 + k);
          rec.respond(tid, qs, enq, Value::boolean(true));
          rec.invoke(tid, qs, deq);
          PopResult r = q.deq(tid);
          rec.respond(tid, qs, deq, Value::pair(r.ok, r.value));
        }
      });
    }
  }
  History h = rec.snapshot();
  QueueSpec spec(qs);
  LinChecker lin(spec);
  EXPECT_TRUE(lin.check(h)) << h.to_string();
  auto shared = std::make_shared<QueueSpec>(qs);
  SeqAsCaSpec ca(shared);
  CalChecker cal(ca);
  EXPECT_TRUE(cal.check(h)) << h.to_string();
}

TEST(SyncQueue, UnpairedOpsTimeOut) {
  runtime::EpochDomain ebr;
  SyncQueue q(ebr, Symbol{"SQ"});
  EXPECT_FALSE(q.put(0, 1, /*spins=*/4));
  EXPECT_FALSE(q.take(0, 4).ok);
}

TEST(SyncQueue, PairingHandsOffValue) {
  runtime::EpochDomain ebr;
  SyncQueue q(ebr, Symbol{"SQ"});
  bool put_ok = false;
  PopResult take_r;
  bool paired = false;
  for (int attempt = 0; attempt < 200 && !paired; ++attempt) {
    std::jthread a([&] { put_ok = q.put(0, 42, 1 << 14); });
    std::jthread b([&] { take_r = q.take(1, 1 << 14); });
    a.join();
    b.join();
    paired = put_ok && take_r.ok;
    EXPECT_EQ(put_ok, take_r.ok) << "half a hand-off happened";
  }
  ASSERT_TRUE(paired);
  EXPECT_EQ(take_r.value, 42);
}

TEST(SyncQueue, ConservationUnderContention) {
  runtime::EpochDomain ebr;
  SyncQueue q(ebr, Symbol{"SQ"});
  constexpr int kThreads = 8;
  constexpr int kOps = 200;
  std::atomic<std::uint64_t> puts_ok{0};
  std::vector<std::vector<std::int64_t>> taken(kThreads);
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        for (int k = 0; k < kOps; ++k) {
          if (i % 2 == 0) {
            if (q.put(tid, i * 10000 + k, 512)) puts_ok.fetch_add(1);
          } else {
            PopResult r = q.take(tid, 512);
            if (r.ok) taken[i].push_back(r.value);
          }
        }
      });
    }
  }
  std::vector<std::int64_t> all;
  for (auto& v : taken) all.insert(all.end(), v.begin(), v.end());
  EXPECT_EQ(all.size(), puts_ok.load()) << "puts and takes must pair 1:1";
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
}

TEST(SyncQueue, RecordedHistoryIsCaLinearizable) {
  runtime::EpochDomain ebr;
  SyncQueue q(ebr, Symbol{"SQ"});
  runtime::Recorder rec(1 << 12);
  const Symbol qs{"SQ"};
  const Symbol put{"put"};
  const Symbol take{"take"};
  constexpr int kThreads = 4;
  constexpr int kOps = 4;
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        for (int k = 0; k < kOps; ++k) {
          if (i % 2 == 0) {
            rec.invoke(tid, qs, put, iv(i * 100 + k));
            const bool ok = q.put(tid, i * 100 + k, 512);
            rec.respond(tid, qs, put, Value::boolean(ok));
          } else {
            rec.invoke(tid, qs, take);
            PopResult r = q.take(tid, 512);
            rec.respond(tid, qs, take, Value::pair(r.ok, r.value));
          }
        }
      });
    }
  }
  History h = rec.snapshot();
  ASSERT_TRUE(h.complete());
  SyncQueueSpec spec(qs);
  CalChecker checker(spec);
  EXPECT_TRUE(checker.check(h)) << h.to_string();
  // And via the dual-data-structure interval spec (§6): same verdict.
  SyncQueueIntervalSpec ispec(qs);
  IntervalLinChecker ichecker(ispec);
  EXPECT_TRUE(ichecker.check(h)) << h.to_string();
}

TEST(Rendezvous, MeetSwapsValues) {
  runtime::EpochDomain ebr;
  Rendezvous r(ebr, Symbol{"RV"}, 1);
  ExchangeResult a, b;
  bool met = false;
  for (int attempt = 0; attempt < 200 && !met; ++attempt) {
    std::jthread t1([&] { a = r.meet(0, 10, 1 << 14); });
    std::jthread t2([&] { b = r.meet(1, 20, 1 << 14); });
    t1.join();
    t2.join();
    met = a.ok && b.ok;
  }
  ASSERT_TRUE(met);
  EXPECT_EQ(a.value, 20);
  EXPECT_EQ(b.value, 10);
}

TEST(Rendezvous, SingleSlotLogsUnderItsOwnName) {
  runtime::EpochDomain ebr;
  runtime::TraceLog trace(64);
  Rendezvous r(ebr, Symbol{"RV"}, 1, &trace);
  r.meet(0, 7, 2);  // fails; logs a singleton failure on RV
  CaTrace t = trace.snapshot();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].object().str(), "RV");
  EXPECT_EQ(t[0].ops().front().method.str(), "rendezvous");
}

}  // namespace
}  // namespace cal::objects
