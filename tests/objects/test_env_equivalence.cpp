// Differential real-vs-sim suite: the tentpole claim of the env
// unification made executable. The *same* objects/core/ bodies run twice —
// once through RealEnv on real threads, once through SimEnv under the
// explorer — so every history the real runtime produces must be (a)
// CA-linearizable and (b) literally one of the terminal histories the
// exhaustive exploration of the same thread programs enumerates at the
// same bounds. A divergence means the two environments disagree about the
// algorithm, which is exactly what the unification forbids.
//
// Runs threaded code on purpose: this suite is part of the TSan CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/queue_spec.hpp"
#include "objects/elimination_stack.hpp"
#include "objects/exchanger.hpp"
#include "objects/ms_queue.hpp"
#include "objects/rendezvous.hpp"
#include "objects/treiber_stack.hpp"
#include "runtime/recorder.hpp"
#include "runtime/reclaim/hazard.hpp"
#include "runtime/reclaim/tagged.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_objects.hpp"

namespace cal::objects {
namespace {

using runtime::Recorder;
using sched::Call;
using sched::ExploreOptions;
using sched::ExploreResult;
using sched::Explorer;
using sched::SimObject;
using sched::ThreadProgram;
using sched::WorldConfig;

Value iv(std::int64_t x) { return Value::integer(x); }

/// Exhaustively enumerates the sim world's terminal histories.
std::vector<History> enumerate_sim(
    WorldConfig& cfg, std::vector<std::unique_ptr<SimObject>> objects) {
  cfg.record_history = true;
  cfg.record_trace = true;
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  Explorer ex(cfg, std::move(objects), opts);
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
  EXPECT_GT(r.histories.size(), 1u);
  return std::move(r.histories);
}

/// True iff `h` is one of the enumerated histories.
bool reproduced(const History& h, const std::vector<History>& enumerated) {
  return std::any_of(enumerated.begin(), enumerated.end(),
                     [&](const History& e) { return e == h; });
}

TEST(EnvEquivalence, ExchangerRealHistoriesReproducedBySim) {
  // Sim side: 2 threads × 1 exchange, single attempt per operation (the
  // SimExchanger bound), every interleaving.
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg;
  for (ThreadId t = 0; t < 2; ++t) {
    ThreadProgram p;
    p.tid = t;
    p.calls = {Call{0, Symbol{"exchange"}, iv(10 * (t + 1))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"E"}};
  cfg.spec = &spec;
  cfg.heap_cells = 16;
  cfg.global_cells = 8;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<sched::SimExchanger>(Symbol{"E"}));
  const std::vector<History> enumerated = enumerate_sim(cfg, std::move(objects));

  // Real side: the same two calls on real threads, many rounds. Small spin
  // budgets keep both outcomes (swap and double-fail) in play.
  CalChecker checker(spec);
  std::size_t distinct = 0;
  for (int round = 0; round < 60; ++round) {
    runtime::EpochDomain ebr;
    Exchanger ex(ebr, Symbol{"E"});
    Recorder rec(1 << 10);
    {
      std::vector<std::jthread> ts;
      for (ThreadId t = 0; t < 2; ++t) {
        ts.emplace_back([&, t] {
          const std::int64_t v = 10 * (t + 1);
          rec.invoke(t, Symbol{"E"}, Symbol{"exchange"}, iv(v));
          ExchangeResult r = ex.exchange(t, v, /*spins=*/64);
          rec.respond(t, Symbol{"E"}, Symbol{"exchange"},
                      Value::pair(r.ok, r.value));
        });
      }
    }
    History h = rec.snapshot();
    ASSERT_TRUE(h.complete());
    EXPECT_TRUE(checker.check(h)) << h.to_string();
    EXPECT_TRUE(reproduced(h, enumerated))
        << "real history not reachable in simulation:\n"
        << h.to_string();
    distinct += reproduced(h, enumerated) ? 1 : 0;
  }
  EXPECT_EQ(distinct, 60u);
}

TEST(EnvEquivalence, RendezvousRealHistoriesReproducedBySim) {
  ExchangerSpec spec(Symbol{"R"}, Symbol{"rendezvous"});
  WorldConfig cfg;
  for (ThreadId t = 0; t < 2; ++t) {
    ThreadProgram p;
    p.tid = t;
    p.calls = {Call{0, Symbol{"rendezvous"}, iv(10 * (t + 1))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"R"}};
  cfg.spec = &spec;
  cfg.heap_cells = 16;
  cfg.global_cells = 8;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<sched::SimRendezvous>(Symbol{"R"}));
  const std::vector<History> enumerated = enumerate_sim(cfg, std::move(objects));

  CalChecker checker(spec);
  for (int round = 0; round < 60; ++round) {
    runtime::EpochDomain ebr;
    Rendezvous rv(ebr, Symbol{"R"});
    Recorder rec(1 << 10);
    {
      std::vector<std::jthread> ts;
      for (ThreadId t = 0; t < 2; ++t) {
        ts.emplace_back([&, t] {
          const std::int64_t v = 10 * (t + 1);
          rec.invoke(t, Symbol{"R"}, Symbol{"rendezvous"}, iv(v));
          ExchangeResult r = rv.meet(t, v, /*spins=*/64);
          rec.respond(t, Symbol{"R"}, Symbol{"rendezvous"},
                      Value::pair(r.ok, r.value));
        });
      }
    }
    History h = rec.snapshot();
    ASSERT_TRUE(h.complete());
    EXPECT_TRUE(checker.check(h)) << h.to_string();
    EXPECT_TRUE(reproduced(h, enumerated))
        << "real history not reachable in simulation:\n"
        << h.to_string();
  }
}

TEST(EnvEquivalence, MsQueueRealHistoriesReproducedBySim) {
  auto seq = std::make_shared<QueueSpec>(Symbol{"Q"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg;
  ThreadProgram enq{0, {Call{0, Symbol{"enq"}, iv(7)}}};
  ThreadProgram deq{1, {Call{0, Symbol{"deq"}, Value::unit()}}};
  cfg.programs = {enq, deq};
  cfg.object_names = {Symbol{"Q"}};
  cfg.spec = &spec;
  cfg.heap_cells = 16;
  cfg.global_cells = 4;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<sched::SimMsQueue>(Symbol{"Q"}, 2));
  const std::vector<History> enumerated = enumerate_sim(cfg, std::move(objects));

  CalChecker checker(spec);
  bool saw_got = false;
  bool saw_empty = false;
  for (int round = 0; round < 60; ++round) {
    runtime::EpochDomain ebr;
    MsQueue q(ebr, Symbol{"Q"});
    Recorder rec(1 << 10);
    {
      std::jthread enqueuer([&] {
        rec.invoke(0, Symbol{"Q"}, Symbol{"enq"}, iv(7));
        q.enq(0, 7);
        rec.respond(0, Symbol{"Q"}, Symbol{"enq"}, Value::boolean(true));
      });
      std::jthread dequeuer([&] {
        rec.invoke(1, Symbol{"Q"}, Symbol{"deq"}, Value::unit());
        PopResult r = q.deq(1);
        rec.respond(1, Symbol{"Q"}, Symbol{"deq"},
                    Value::pair(r.ok, r.value));
        saw_got |= r.ok;
        saw_empty |= !r.ok;
      });
    }
    History h = rec.snapshot();
    ASSERT_TRUE(h.complete());
    EXPECT_TRUE(checker.check(h)) << h.to_string();
    EXPECT_TRUE(reproduced(h, enumerated))
        << "real history not reachable in simulation:\n"
        << h.to_string();
  }
  // Both outcomes of the race should show up across 60 real rounds; if
  // this ever flakes, the assertion documents why rather than hiding it.
  EXPECT_TRUE(saw_got || saw_empty);
}

// --- reclamation-backend differential --------------------------------------
//
// The pluggable reclamation layer must be observationally invisible: the
// same core bodies over EBR, hazard pointers, and tagged pointers must
// produce only histories the (reclamation-oblivious) simulation already
// enumerates — the reclaimer changes *when memory is reused*, never what
// the object does.

std::unique_ptr<runtime::Reclaimer> make_reclaimer(
    runtime::ReclaimPolicy policy) {
  switch (policy) {
    case runtime::ReclaimPolicy::kHp:
      return std::make_unique<runtime::HpReclaimer>();
    case runtime::ReclaimPolicy::kTagged:
      return std::make_unique<runtime::TaggedReclaimer>();
    case runtime::ReclaimPolicy::kEbr:
      break;
  }
  return std::make_unique<runtime::EbrReclaimer>();
}

constexpr runtime::ReclaimPolicy kAllPolicies[] = {
    runtime::ReclaimPolicy::kEbr, runtime::ReclaimPolicy::kHp,
    runtime::ReclaimPolicy::kTagged};

TEST(EnvEquivalence, MsQueueRealHistoriesReproducedBySimUnderEveryBackend) {
  auto seq = std::make_shared<QueueSpec>(Symbol{"Q"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg;
  ThreadProgram enq{0, {Call{0, Symbol{"enq"}, iv(7)}}};
  ThreadProgram deq{1, {Call{0, Symbol{"deq"}, Value::unit()}}};
  cfg.programs = {enq, deq};
  cfg.object_names = {Symbol{"Q"}};
  cfg.spec = &spec;
  cfg.heap_cells = 16;
  cfg.global_cells = 4;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<sched::SimMsQueue>(Symbol{"Q"}, 2));
  const std::vector<History> enumerated = enumerate_sim(cfg, std::move(objects));

  CalChecker checker(spec);
  for (runtime::ReclaimPolicy policy : kAllPolicies) {
    for (int round = 0; round < 20; ++round) {
      std::unique_ptr<runtime::Reclaimer> rec_backend = make_reclaimer(policy);
      MsQueue q(*rec_backend, Symbol{"Q"});
      Recorder rec(1 << 10);
      {
        std::jthread enqueuer([&] {
          rec.invoke(0, Symbol{"Q"}, Symbol{"enq"}, iv(7));
          q.enq(0, 7);
          rec.respond(0, Symbol{"Q"}, Symbol{"enq"}, Value::boolean(true));
        });
        std::jthread dequeuer([&] {
          rec.invoke(1, Symbol{"Q"}, Symbol{"deq"}, Value::unit());
          PopResult r = q.deq(1);
          rec.respond(1, Symbol{"Q"}, Symbol{"deq"},
                      Value::pair(r.ok, r.value));
        });
      }
      History h = rec.snapshot();
      ASSERT_TRUE(h.complete());
      EXPECT_TRUE(checker.check(h))
          << runtime::reclaim_policy_name(policy) << ":\n" << h.to_string();
      EXPECT_TRUE(reproduced(h, enumerated))
          << runtime::reclaim_policy_name(policy)
          << ": real history not reachable in simulation:\n"
          << h.to_string();
    }
  }
}

TEST(EnvEquivalence, StackBackendsAgreeAcrossThreadCounts) {
  // Value-conservation differential at the thread counts the sim cannot
  // enumerate: under every backend and 1/2/8 threads, the multiset popped
  // must match the multiset pushed (each thread pushes then pops its own
  // count), the stack must drain, and the backend's stats ledger must
  // balance (every retired block is either reclaimed or still pending).
  // Runs real threads on purpose — this suite is part of the TSan CI job,
  // which makes the per-backend protect/release protocols race-checked.
  for (runtime::ReclaimPolicy policy : kAllPolicies) {
    for (std::size_t nthreads : {1u, 2u, 8u}) {
      std::unique_ptr<runtime::Reclaimer> rec_backend = make_reclaimer(policy);
      TreiberStack st(*rec_backend, Symbol{"S"});
      constexpr int kPerThread = 50;
      std::vector<std::vector<std::int64_t>> popped(nthreads);
      {
        std::vector<std::jthread> ts;
        for (std::size_t t = 0; t < nthreads; ++t) {
          ts.emplace_back([&, t] {
            const auto tid = static_cast<ThreadId>(t);
            for (int i = 0; i < kPerThread; ++i) {
              st.push(tid, static_cast<std::int64_t>(t * kPerThread + i));
            }
            for (int i = 0; i < kPerThread; ++i) {
              PopResult r = st.pop(tid);
              if (r.ok) popped[t].push_back(r.value);
            }
          });
        }
      }
      std::vector<std::int64_t> all;
      for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
      // Pops may observe empty mid-race and give up, so drain the rest.
      for (PopResult r = st.pop(0); r.ok; r = st.pop(0)) {
        all.push_back(r.value);
      }
      std::sort(all.begin(), all.end());
      ASSERT_EQ(all.size(), nthreads * kPerThread)
          << runtime::reclaim_policy_name(policy) << " x" << nthreads;
      for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i], static_cast<std::int64_t>(i));
      }
      EXPECT_TRUE(st.empty());
      const runtime::ReclaimStats s = rec_backend->stats();
      // Every successful pop retired exactly one node.
      EXPECT_EQ(s.reclaimed_total + s.retired_pending, all.size())
          << runtime::reclaim_policy_name(policy) << " x" << nthreads;
      EXPECT_GE(s.retired_high_water, s.retired_pending);
    }
  }
}

TEST(EnvEquivalence, ElimStackBackendsConserveValues) {
  // The elimination stack's hot path mixes central-stack CASes (retire)
  // with exchanger offers (retire_grace) — both reclamation entry points
  // under one object, per backend, on real threads.
  for (runtime::ReclaimPolicy policy : kAllPolicies) {
    std::unique_ptr<runtime::Reclaimer> rec_backend = make_reclaimer(policy);
    EliminationStack es(*rec_backend, Symbol{"ES"}, /*width=*/2);
    constexpr std::size_t kThreads = 4;
    constexpr int kPerThread = 25;
    std::vector<std::vector<std::int64_t>> popped(kThreads);
    {
      std::vector<std::jthread> ts;
      for (std::size_t t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
          const auto tid = static_cast<ThreadId>(t);
          for (int i = 0; i < kPerThread; ++i) {
            es.push(tid, static_cast<std::int64_t>(t * kPerThread + i));
            PopResult r = es.pop(tid);
            ASSERT_TRUE(r.ok);
            popped[t].push_back(r.value);
          }
        });
      }
    }
    std::vector<std::int64_t> all;
    for (const auto& p : popped) all.insert(all.end(), p.begin(), p.end());
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), kThreads * kPerThread)
        << runtime::reclaim_policy_name(policy);
    for (std::size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(all[i], static_cast<std::int64_t>(i));
    }
  }
}

}  // namespace
}  // namespace cal::objects
