// Threaded exchanger tests: protocol sanity, swap conservation, and CAL of
// recorded histories (the paper's Def. 6 on real executions).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/replay.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "objects/exchanger.hpp"
#include "runtime/recorder.hpp"

namespace cal::objects {
namespace {

using runtime::Recorder;

Value iv(std::int64_t x) { return Value::integer(x); }

TEST(Exchanger, SingleThreadAlwaysFails) {
  runtime::EpochDomain ebr;
  Exchanger ex(ebr, Symbol{"E"});
  ExchangeResult r = ex.exchange(0, 42, /*spins=*/4);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.value, 42);
  // And again: the object resets cleanly after a pass.
  ExchangeResult r2 = ex.exchange(0, 43, 4);
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.value, 43);
}

TEST(Exchanger, TwoThreadsEventuallySwap) {
  runtime::EpochDomain ebr;
  Exchanger ex(ebr, Symbol{"E"});
  ExchangeResult r1, r2;
  bool swapped = false;
  for (int attempt = 0; attempt < 200 && !swapped; ++attempt) {
    std::jthread a([&] { r1 = ex.exchange(0, 1, 1 << 14); });
    std::jthread b([&] { r2 = ex.exchange(1, 2, 1 << 14); });
    a.join();
    b.join();
    swapped = r1.ok && r2.ok;
  }
  ASSERT_TRUE(swapped) << "no swap in 200 generously-spun attempts";
  EXPECT_EQ(r1.value, 2);
  EXPECT_EQ(r2.value, 1);
}

TEST(Exchanger, SwapValuesAreConserved) {
  // Many threads, many rounds: every successful exchange must receive a
  // value some other thread offered in the same round, and each offered
  // value is received at most once.
  runtime::EpochDomain ebr;
  Exchanger ex(ebr, Symbol{"E"});
  constexpr int kThreads = 6;
  constexpr int kRounds = 50;
  std::vector<std::vector<ExchangeResult>> results(
      kThreads, std::vector<ExchangeResult>(kRounds));
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        for (int r = 0; r < kRounds; ++r) {
          const std::int64_t v = i * 1000 + r;
          results[i][r] = ex.exchange(static_cast<runtime::ThreadId>(i), v,
                                      256);
        }
      });
    }
  }
  std::vector<std::int64_t> received;
  for (int i = 0; i < kThreads; ++i) {
    for (int r = 0; r < kRounds; ++r) {
      if (!results[i][r].ok) {
        EXPECT_EQ(results[i][r].value, i * 1000 + r);
        continue;
      }
      received.push_back(results[i][r].value);
      // A received value is someone's offer, never one's own.
      EXPECT_NE(results[i][r].value / 1000, i);
    }
  }
  std::sort(received.begin(), received.end());
  EXPECT_EQ(std::unique(received.begin(), received.end()), received.end())
      << "a value was received by two different exchanges";
  // Success count must be even (successes come in pairs).
  EXPECT_EQ(received.size() % 2, 0u);
}

TEST(Exchanger, RecordedHistoryIsCaLinearizable) {
  runtime::EpochDomain ebr;
  runtime::TraceLog trace(1 << 12);
  Exchanger ex(ebr, Symbol{"E"}, &trace);
  Recorder rec(1 << 12);
  constexpr int kThreads = 4;
  constexpr int kRounds = 4;
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        const auto tid = static_cast<runtime::ThreadId>(i);
        for (int r = 0; r < kRounds; ++r) {
          const std::int64_t v = i * 100 + r;
          rec.invoke(tid, ex.name(), ex.method(), iv(v));
          ExchangeResult res = ex.exchange(tid, v, 512);
          rec.respond(tid, ex.name(), ex.method(),
                      Value::pair(res.ok, res.value));
        }
      });
    }
  }
  History h = rec.snapshot();
  ASSERT_TRUE(h.well_formed());
  ASSERT_TRUE(h.complete());
  ExchangerSpec spec(ex.name(), ex.method());
  CalChecker checker(spec);
  CalCheckResult r = checker.check(h);
  EXPECT_TRUE(r) << h.to_string();
}

TEST(Exchanger, AuxiliaryTraceIsInSpecTraceSet) {
  // 𝒯 ∈ 𝒯spec: the instrumented log must replay against the CA-spec.
  runtime::EpochDomain ebr;
  runtime::TraceLog trace(1 << 12);
  Exchanger ex(ebr, Symbol{"E"}, &trace);
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < 4; ++i) {
      ts.emplace_back([&, i] {
        for (int r = 0; r < 8; ++r) {
          ex.exchange(static_cast<runtime::ThreadId>(i), i * 100 + r, 256);
        }
      });
    }
  }
  ExchangerSpec spec(ex.name(), ex.method());
  ReplayResult r = replay_ca(trace.snapshot(), spec);
  EXPECT_TRUE(r) << r.reason;
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Exchanger, TraceAccountsForEveryOperation) {
  runtime::EpochDomain ebr;
  runtime::TraceLog trace(1 << 12);
  Exchanger ex(ebr, Symbol{"E"}, &trace);
  constexpr int kThreads = 4;
  constexpr int kRounds = 10;
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        for (int r = 0; r < kRounds; ++r) {
          ex.exchange(static_cast<runtime::ThreadId>(i), i * 100 + r, 128);
        }
      });
    }
  }
  std::size_t ops = 0;
  const CaTrace snap = trace.snapshot();
  for (const CaElement& e : snap.elements()) {
    ops += e.size();
  }
  EXPECT_EQ(ops, static_cast<std::size_t>(kThreads * kRounds));
}

TEST(Exchanger, ZeroSpinsStillWaitFree) {
  runtime::EpochDomain ebr;
  Exchanger ex(ebr, Symbol{"E"});
  // Every call returns (wait-freedom smoke test with no waiting budget).
  for (int i = 0; i < 100; ++i) {
    ExchangeResult r = ex.exchange(0, i, 0);
    EXPECT_EQ(r.ok || r.value == i, true);
  }
}

}  // namespace
}  // namespace cal::objects
