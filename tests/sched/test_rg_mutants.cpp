// Rely/guarantee audit mutants: violations of the invariant J and of the
// INIT action shape, caught by ExchangerRgAuditor (Fig. 4 made executable).
#include <gtest/gtest.h>

#include <memory>

#include "cal/specs/exchanger_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/machines/exchanger_machine.hpp"
#include "sched/rg.hpp"

namespace cal::sched {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

WorldConfig exchanger_config(const CaSpec* spec, std::size_t threads) {
  WorldConfig cfg;
  for (std::size_t i = 0; i < threads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    p.calls = {Call{0, Symbol{"exchange"},
                    iv(static_cast<std::int64_t>(10 * (i + 1)))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"E"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 8;
  cfg.global_cells = 8;
  return cfg;
}

/// Mutant: the offer is allocated with a *wrong tid* (as if the auxiliary
/// tid field of §5.1 were mis-instrumented). Publishing it breaks both the
/// INIT action (the published offer must carry the actor's tid) and the
/// invariant J (the unmatched offer's owner is not inside exchange()).
class WrongTidOffer final : public SimObject {
 public:
  explicit WrongTidOffer(Symbol name) : inner_(name) {}
  void init(World& world) override { inner_.init(world); }
  [[nodiscard]] const ExchangerMachine& inner() const { return inner_; }
  StepResult step(World& world, ThreadCtx& t) const override {
    if (t.pc == ExchangerMachine::kInvoke) {
      const Call& call =
          world.config().programs[t.program].calls[t.call_idx];
      world.invoke(t);
      const Word v = call.arg.as_int();
      const Addr n = world.alloc(t, 3);
      world.write(n + ExchangerMachine::kTid, t.tid + 17);  // bug
      world.write(n + ExchangerMachine::kData, v);
      t.regs[ExchangerMachine::kRegN] = n;
      t.regs[ExchangerMachine::kRegV] = v;
      t.pc = ExchangerMachine::kInitCas;
      return StepResult::ran();
    }
    return inner_.step(world, t);
  }

 private:
  ExchangerMachine inner_;
};

TEST(RgMutants, WrongOfferTidCaughtByAudit) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 2);
  auto mutant = std::make_unique<WrongTidOffer>(Symbol{"E"});
  const ExchangerMachine& inner = mutant->inner();
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::move(mutant));
  ExchangerRgAuditor auditor(inner, /*check_proof_outline=*/false);
  Explorer ex(cfg, std::move(objects));
  ex.set_auditor(&auditor);
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  // Caught either as a malformed INIT (guarantee) or as a J violation,
  // depending on which check fires first along the DFS order.
  const std::string& what = r.violations.front().what;
  EXPECT_TRUE(what.find("INIT") != std::string::npos ||
              what.find("J violated") != std::string::npos)
      << what;
}

TEST(RgMutants, WrongOfferTidAlsoBreaksProofOutline) {
  // With outline checking on, assertion A (n ↦ tid,v,null) fails even
  // before the offer is published.
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 1);
  auto mutant = std::make_unique<WrongTidOffer>(Symbol{"E"});
  const ExchangerMachine& inner = mutant->inner();
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::move(mutant));
  ExchangerRgAuditor auditor(inner, /*check_proof_outline=*/true);
  Explorer ex(cfg, std::move(objects));
  ex.set_auditor(&auditor);
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("proof outline"),
            std::string::npos)
      << r.violations.front().what;
}

/// Mutant: CLEAN fires even when the removed offer is unmatched (drops the
/// paper's side condition cur.hole ≠ null by clearing g at the wrong time).
class OverzealousClean final : public SimObject {
 public:
  explicit OverzealousClean(Symbol name) : inner_(name) {}
  void init(World& world) override { inner_.init(world); }
  [[nodiscard]] const ExchangerMachine& inner() const { return inner_; }
  StepResult step(World& world, ThreadCtx& t) const override {
    if (t.pc == ExchangerMachine::kReadG) {
      // Bug: instead of reading g, clear it unconditionally (removing a
      // possibly-unmatched offer), then fail.
      const Word g = world.read(inner_.g_addr());
      if (g != kNull) {
        world.cas(inner_.g_addr(), g, kNull);
      }
      t.regs[ExchangerMachine::kRegCur] = kNull;
      t.pc = ExchangerMachine::kFailReturnB;
      return StepResult::ran();
    }
    return inner_.step(world, t);
  }

 private:
  ExchangerMachine inner_;
};

TEST(RgMutants, UnjustifiedCleanCaughtByGuarantee) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 2);
  auto mutant = std::make_unique<OverzealousClean>(Symbol{"E"});
  const ExchangerMachine& inner = mutant->inner();
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::move(mutant));
  ExchangerRgAuditor auditor(inner, /*check_proof_outline=*/false);
  Explorer ex(cfg, std::move(objects));
  ex.set_auditor(&auditor);
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("CLEAN"), std::string::npos)
      << r.violations.front().what;
}

}  // namespace
}  // namespace cal::sched
