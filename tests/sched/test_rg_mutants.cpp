// Rely/guarantee audit mutants: violations of the invariant J, of the
// guarantee action shapes, and of the proof-outline assertions, caught by
// ExchangerRgAuditor (Fig. 4 made executable). Mutations are injected
// through SimHooks where the bug is a corrupted value or a forgotten
// auxiliary append, and through a subclassed attempt body where the bug is
// a wrong control flow over the same shared cells.
#include <gtest/gtest.h>

#include <memory>

#include "cal/specs/exchanger_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/rg.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

WorldConfig exchanger_config(const CaSpec* spec, std::size_t threads) {
  WorldConfig cfg;
  for (std::size_t i = 0; i < threads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    p.calls = {Call{0, Symbol{"exchange"},
                    iv(static_cast<std::int64_t>(10 * (i + 1)))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"E"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 8;
  cfg.global_cells = 8;
  return cfg;
}

/// Mutant: the offer is allocated with a *wrong tid* (as if the auxiliary
/// tid field of §5.1 were mis-instrumented), injected as a private-store
/// hook. Publishing it breaks both the INIT action (the published offer
/// must carry the actor's tid) and the invariant J (the unmatched offer's
/// owner is not inside exchange()).
SimHooks wrong_tid_hooks() {
  SimHooks hooks;
  hooks.private_store = [](objects::Word /*block*/, objects::Word off,
                           objects::Word v) {
    return off == objects::core::kOfferTid ? v + 17 : v;
  };
  return hooks;
}

TEST(RgMutants, WrongOfferTidCaughtByAudit) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 2);
  auto mutant = std::make_unique<SimExchanger>(Symbol{"E"});
  mutant->set_hooks(wrong_tid_hooks());
  const SimExchanger& inner = *mutant;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::move(mutant));
  ExchangerRgAuditor auditor(inner, /*check_proof_outline=*/false);
  Explorer ex(cfg, std::move(objects));
  ex.set_auditor(&auditor);
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  // Caught either as a malformed INIT (guarantee) or as a J violation,
  // depending on which check fires first along the DFS order.
  const std::string& what = r.violations.front().what;
  EXPECT_TRUE(what.find("INIT") != std::string::npos ||
              what.find("J violated") != std::string::npos)
      << what;
}

TEST(RgMutants, MissingFailLogBreaksProofOutline) {
  // The forgotten auxiliary FAIL append, checked against the *outline*
  // this time: after PASS the assertion demands the failure already be
  // logged (the append is fused with the PASS CAS in the single body).
  // Guarantee checking is off so the outline assertion is what fires.
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 1);
  auto mutant = std::make_unique<SimExchanger>(Symbol{"E"});
  SimHooks hooks;
  hooks.emit = [](CaElement&) { return false; };  // drop every append
  mutant->set_hooks(std::move(hooks));
  const SimExchanger& inner = *mutant;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::move(mutant));
  ExchangerRgAuditor auditor(inner, /*check_proof_outline=*/true,
                             /*check_guarantee=*/false);
  Explorer ex(cfg, std::move(objects));
  ex.set_auditor(&auditor);
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("proof outline"),
            std::string::npos)
      << r.violations.front().what;
}

/// Mutant: CLEAN fires even when the removed offer is unmatched (drops the
/// paper's side condition cur.hole ≠ null). The broken attempt body runs
/// over the same cells as the real exchanger; the INIT/PASS paths follow
/// the real algorithm so only the unjustified CLEAN deviates.
class OverzealousClean final : public SimExchanger {
 public:
  using SimExchanger::SimExchanger;

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    namespace core = objects::core;
    static const Symbol kExchange{"exchange"};
    const objects::Word v = current_call(world, t).arg.as_int();
    const core::ExchangerRefs& x = refs();
    auto failure = [&] {
      return CaElement::singleton(
          name(), Operation::make(t.tid, name(), kExchange,
                                  Value::integer(v), Value::pair(false, v)));
    };
    const objects::Word n = env.alloc(core::kOfferCells);
    env.store_private(n, core::kOfferTid, t.tid);
    env.store_private(n, core::kOfferData, v);
    if (env.cas(x.g, 0, 0, n)) {
      if (env.cas(n, core::kOfferHole, 0, x.fail)) {
        env.emit(failure);
        env.cas(x.g, 0, n, 0);
        return {Status::kDone, Value::pair(false, v)};
      }
      const objects::Word partner = env.load_frozen(n, core::kOfferHole);
      const objects::Word got = env.load_frozen(partner, core::kOfferData);
      return {Status::kDone, Value::pair(true, got)};
    }
    const objects::Word cur = env.load(x.g, 0);
    if (cur != 0) {
      env.cas(x.g, 0, cur, 0);  // bug: removes the offer without checking
                                // cur.hole — a possibly-unmatched offer
    }
    env.emit(failure);
    return {Status::kDone, Value::pair(false, v)};
  }
};

TEST(RgMutants, UnjustifiedCleanCaughtByGuarantee) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 2);
  auto mutant = std::make_unique<OverzealousClean>(Symbol{"E"});
  const SimExchanger& inner = *mutant;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::move(mutant));
  ExchangerRgAuditor auditor(inner, /*check_proof_outline=*/false);
  Explorer ex(cfg, std::move(objects));
  ex.set_auditor(&auditor);
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("CLEAN"), std::string::npos)
      << r.violations.front().what;
}

}  // namespace
}  // namespace cal::sched
