// Model-checking substrate tests: exhaustive verification of the exchanger
// (Fig. 1 + Fig. 4) and the elimination stack (Fig. 2 + §5), plus mutation
// tests showing the online audit actually catches bugs. The simulated
// objects are the Env-instantiated algorithm cores (the same bodies the
// real runtime executes); mutations are injected through SimHooks instead
// of subclassed step machines.
#include <gtest/gtest.h>

#include <memory>

#include "cal/agree.hpp"
#include "cal/cal_checker.hpp"
#include "cal/lin_checker.hpp"
#include "cal/replay.hpp"
#include "cal/specs/elim_views.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/rg.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

using objects::core::ExchangerPc;
using objects::core::ExchangerReg;

Value iv(std::int64_t x) { return Value::integer(x); }

TEST(SimMemory, ReadWriteCas) {
  SimMemory m(2, 16, 8);
  const Addr g = m.alloc_global(1);
  EXPECT_EQ(m.read(g), 0);
  m.write(g, 7);
  EXPECT_EQ(m.read(g), 7);
  EXPECT_FALSE(m.cas(g, 0, 9));
  EXPECT_TRUE(m.cas(g, 7, 9));
  EXPECT_EQ(m.read(g), 9);
}

TEST(SimMemory, PerThreadAllocationIsDeterministic) {
  SimMemory a(2, 16, 8);
  SimMemory b(2, 16, 8);
  // Different interleavings of allocations by different threads yield the
  // same addresses per (thread, ordinal).
  const Addr a0 = a.alloc(0, 3);
  const Addr a1 = a.alloc(1, 3);
  const Addr b1 = b.alloc(1, 3);
  const Addr b0 = b.alloc(0, 3);
  EXPECT_EQ(a0, b0);
  EXPECT_EQ(a1, b1);
  EXPECT_EQ(a.owner(a0), 0);
  EXPECT_EQ(a.owner(a1), 1);
  EXPECT_EQ(a.owner(1), -1);  // globals
}

// --- configuration helpers ---

struct ExchangerWorld {
  WorldConfig config;
  ExchangerSpec spec{Symbol{"E"}, Symbol{"exchange"}};
  SimExchanger* object = nullptr;
  std::vector<std::unique_ptr<SimObject>> objects;
};

/// n threads, thread i performing ops_per_thread exchanges of distinct
/// values (i*100 + k).
ExchangerWorld make_exchanger_world(std::size_t n_threads,
                                    std::size_t ops_per_thread,
                                    bool record = false) {
  ExchangerWorld w;
  auto object = std::make_unique<SimExchanger>(Symbol{"E"});
  w.object = object.get();
  w.objects.push_back(std::move(object));
  for (std::size_t i = 0; i < n_threads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    for (std::size_t k = 0; k < ops_per_thread; ++k) {
      p.calls.push_back(Call{0, Symbol{"exchange"},
                             iv(static_cast<std::int64_t>(i * 100 + k))});
    }
    w.config.programs.push_back(std::move(p));
  }
  w.config.object_names = {Symbol{"E"}};
  w.config.spec = &w.spec;
  w.config.record_history = record;
  w.config.record_trace = true;  // the RG auditor needs the 𝒯 delta
  w.config.heap_cells = 64;
  w.config.global_cells = 16;
  return w;
}

TEST(ExplorerExchanger, TwoThreadsOneOpAuditClean) {
  ExchangerWorld w = make_exchanger_world(2, 1);
  ExchangerRgAuditor auditor(*w.object);
  Explorer ex(w.config, std::move(w.objects));
  ex.set_auditor(&auditor);
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? ""
                              : r.violations.front().what);
  EXPECT_GT(r.states, 10u);
  EXPECT_GT(r.terminals, 0u);
}

TEST(ExplorerExchanger, ThreeThreadsOneOpAuditClean) {
  ExchangerWorld w = make_exchanger_world(3, 1);
  ExchangerRgAuditor auditor(*w.object);
  Explorer ex(w.config, std::move(w.objects));
  ex.set_auditor(&auditor);
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? ""
                              : r.violations.front().what);
}

TEST(ExplorerExchanger, TwoThreadsTwoOpsAuditClean) {
  ExchangerWorld w = make_exchanger_world(2, 2);
  ExchangerRgAuditor auditor(*w.object);
  Explorer ex(w.config, std::move(w.objects));
  ex.set_auditor(&auditor);
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << (r.violations.empty()
                              ? ""
                              : r.violations.front().what);
}

TEST(ExplorerExchanger, EnumeratedHistoriesAllCaLinearizableOffline) {
  // Cross-validation of the online audit: enumerate *every* interleaving
  // of two concurrent exchanges, and run the offline CAL checker on each
  // unique complete history. Also: the final 𝒯 of each execution agrees
  // with its history (Def. 5) and lies in the spec's trace-set.
  ExchangerWorld w = make_exchanger_world(2, 1, /*record=*/true);
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r.histories.size(), 1u);

  CalChecker checker(w.spec);
  bool saw_swap = false;
  bool saw_double_fail = false;
  for (std::size_t i = 0; i < r.histories.size(); ++i) {
    const History& h = r.histories[i];
    ASSERT_TRUE(h.complete());
    EXPECT_TRUE(checker.check(h)) << h.to_string();
    AgreeResult agree = agrees_with(h, r.traces[i]);
    EXPECT_TRUE(agree) << agree.reason << "\n"
                       << h.to_string() << r.traces[i].to_string();
    EXPECT_TRUE(replay_ca(r.traces[i], w.spec));
    for (const OpRecord& rec : h.operations()) {
      if (rec.op.ret->pair_ok()) saw_swap = true;
    }
    bool all_fail = true;
    for (const OpRecord& rec : h.operations()) {
      if (rec.op.ret->pair_ok()) all_fail = false;
    }
    saw_double_fail = saw_double_fail || all_fail;
  }
  // The enumeration must include both outcome classes.
  EXPECT_TRUE(saw_swap) << "no interleaving produced a successful swap";
  EXPECT_TRUE(saw_double_fail) << "no interleaving produced two failures";
}

TEST(ExplorerExchanger, StateMergingPreservesVerdictAndShrinksSpace) {
  ExchangerWorld w1 = make_exchanger_world(2, 2);
  Explorer merged(w1.config, std::move(w1.objects));
  ExploreResult rm = merged.run();

  ExchangerWorld w2 = make_exchanger_world(2, 2);
  ExploreOptions opts;
  opts.merge_states = false;
  Explorer unmerged(w2.config, std::move(w2.objects), opts);
  ExploreResult ru = unmerged.run();

  EXPECT_TRUE(rm.ok());
  EXPECT_TRUE(ru.ok());
  EXPECT_GT(rm.merged, 0u);
  EXPECT_LT(rm.states, ru.states);
}

TEST(ExplorerExchanger, MaxStatesCapTripsExhausted) {
  ExchangerWorld w = make_exchanger_world(3, 1);
  ExploreOptions opts;
  opts.max_states = 5;
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.exhausted);
}

// --- mutation tests: the audit must catch broken implementations ---

TEST(ExplorerMutation, WrongReturnValueCaught) {
  // A broken exchanger: returns success with the *offered* value instead
  // of the partner's (classic copy-paste bug), injected as a respond hook
  // on the active success return. L2 must fire.
  ExchangerWorld w = make_exchanger_world(2, 1);
  SimHooks hooks;
  hooks.respond = [](const ThreadCtx& t, Value ret) {
    if (t.pc == ExchangerPc::kSuccessReturnB) {
      return Value::pair(true, t.regs[ExchangerReg::kV]);
    }
    return ret;
  };
  w.object->set_hooks(std::move(hooks));
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("returns"), std::string::npos)
      << r.violations.front().what;
}

TEST(ExplorerMutation, MissingAuxAssignmentCaught) {
  // An exchanger that "forgets" the auxiliary FAIL assignment (the paper's
  // instrumentation obligation): the emit hook suppresses every failure
  // singleton. L2 fires: response without a logged op.
  ExchangerWorld w = make_exchanger_world(1, 1);  // one lonely thread fails
  SimHooks hooks;
  hooks.emit = [](CaElement& e) {
    const bool failure = e.size() == 1 && e.ops().front().ret &&
                         e.ops().front().ret->kind() == Value::Kind::kPair &&
                         !e.ops().front().ret->pair_ok();
    return !failure;  // drop the FAIL append, keep everything else
  };
  w.object->set_hooks(std::move(hooks));
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("never logged"),
            std::string::npos)
      << r.violations.front().what;
}

/// The crossed-swap bug as an emit hook: the logged element claims each
/// thread offered the other's value. The exchanger spec replay accepts it
/// (it is a well-formed swap), but L1 catches the mismatch with the
/// threads' actual call arguments, and the RG auditor catches the
/// malformed XCHG element.
SimHooks crossed_swap_hooks() {
  SimHooks hooks;
  hooks.emit = [](CaElement& e) {
    if (e.size() == 2) {
      const Operation& a = e.ops()[0];
      const Operation& b = e.ops()[1];
      e = CaElement::swap(e.object(), a.method, a.tid, b.arg.as_int(),
                          b.tid, a.arg.as_int());
    }
    return true;
  };
  return hooks;
}

TEST(ExplorerMutation, CrossedSwapValuesCaughtByOnlineAudit) {
  ExchangerWorld w = make_exchanger_world(2, 1);
  w.object->set_hooks(crossed_swap_hooks());
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_FALSE(r.ok());
}

TEST(ExplorerMutation, CrossedSwapValuesCaughtByGuaranteeAudit) {
  ExchangerWorld w = make_exchanger_world(2, 1);
  w.object->set_hooks(crossed_swap_hooks());
  ExchangerRgAuditor auditor(*w.object, /*check_proof_outline=*/false);
  Explorer ex(w.config, std::move(w.objects));
  ex.set_auditor(&auditor);
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  // The very first bad step is the malformed XCHG (guarantee violation)
  // or the resulting audit failure — either way a violation with a
  // replayable counterexample schedule.
  EXPECT_FALSE(r.violations.front().schedule.empty());
}

// --- central stack (single-attempt) ---

TEST(ExplorerStack, EnumeratedHistoriesAllLinearizable) {
  WorldConfig cfg;
  CentralStackSpec spec(Symbol{"S"});
  auto seq = std::make_shared<CentralStackSpec>(Symbol{"S"});
  SeqAsCaSpec ca(seq);
  cfg.object_names = {Symbol{"S"}};
  cfg.spec = &ca;
  cfg.record_history = true;
  cfg.record_trace = true;
  cfg.heap_cells = 64;
  cfg.global_cells = 8;
  ThreadProgram p0;
  p0.tid = 0;
  p0.calls = {Call{0, Symbol{"push"}, iv(1)}, Call{0, Symbol{"pop"}, {}}};
  ThreadProgram p1;
  p1.tid = 1;
  p1.calls = {Call{0, Symbol{"push"}, iv(2)}, Call{0, Symbol{"pop"}, {}}};
  cfg.programs = {p0, p1};

  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimCentralStack>(Symbol{"S"}));
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  Explorer ex(cfg, std::move(objects), opts);
  ExploreResult r = ex.run();
  ASSERT_TRUE(r.ok()) << r.violations.front().what;
  ASSERT_GT(r.histories.size(), 2u);

  LinChecker lin(spec);
  for (const History& h : r.histories) {
    EXPECT_TRUE(lin.check(h)) << h.to_string();
  }
}

// --- elimination stack: the §5 composite, model-checked ---

struct ElimWorld {
  WorldConfig config;
  std::shared_ptr<StackSpec> es_seq = std::make_shared<StackSpec>(Symbol{"ES"});
  SeqAsCaSpec spec{es_seq};
  std::shared_ptr<const ComposedView> view;
  SimElimStack* object = nullptr;
  std::vector<std::unique_ptr<SimObject>> objects;
};

ElimWorld make_elim_world(std::size_t pushers, std::size_t poppers,
                          std::size_t width, std::size_t retry_bound,
                          bool record = false) {
  ElimWorld w;
  w.view = make_elimination_stack_view(Symbol{"ES"}, Symbol{"ES.S"},
                                       Symbol{"ES.AR"}, width);
  auto object = std::make_unique<SimElimStack>(
      Symbol{"ES"}, Symbol{"ES.S"}, Symbol{"ES.AR"}, width, retry_bound);
  w.object = object.get();
  w.objects.push_back(std::move(object));
  ThreadId tid = 0;
  for (std::size_t i = 0; i < pushers; ++i, ++tid) {
    ThreadProgram p;
    p.tid = tid;
    p.calls = {Call{0, Symbol{"push"}, iv(static_cast<std::int64_t>(
                                           10 * (tid + 1)))}};
    w.config.programs.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < poppers; ++i, ++tid) {
    ThreadProgram p;
    p.tid = tid;
    p.calls = {Call{0, Symbol{"pop"}, Value::unit()}};
    w.config.programs.push_back(std::move(p));
  }
  w.config.object_names = {Symbol{"ES"}};
  w.config.spec = &w.spec;
  w.config.view = w.view.get();
  w.config.record_history = record;
  w.config.record_trace = record;
  w.config.heap_cells = 128;
  w.config.global_cells = 16;
  return w;
}

TEST(ExplorerElimStack, OnePusherOnePopperAuditClean) {
  ElimWorld w = make_elim_world(1, 1, 1, 2);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
  EXPECT_GT(r.states, 50u);
}

TEST(ExplorerElimStack, TwoPushersOnePopperAuditClean) {
  ElimWorld w = make_elim_world(2, 1, 1, 1);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
}

TEST(ExplorerElimStack, WidthTwoChoiceForksAuditClean) {
  ElimWorld w = make_elim_world(1, 1, 2, 1);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
}

TEST(ExplorerElimStack, EliminationPathIsReachable) {
  // In some interleaving a push and a pop must complete by exchanging
  // through E[0] — the defining behavior of the elimination stack. The
  // pusher only visits the exchanger after *losing* a stack CAS, which
  // takes a second pusher plus a popper perturbing top, so the minimal
  // eliminating configuration is 2 pushers + 1 popper. Reachability is
  // observed via the core's event beacon, which is part of the state
  // encoding and therefore sound under merging.
  ElimWorld w = make_elim_world(2, 1, 1, 2);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  ASSERT_TRUE(r.ok()) << r.violations.front().what;
  EXPECT_TRUE(r.events & (1ull << core::kEventElimination))
      << "no interleaving exercised the elimination path";
}

TEST(ExplorerElimStack, OnePusherOnePopperCannotEliminate) {
  // The dual of the test above: with a single pusher, the push CAS never
  // loses, so the pusher never reaches the exchanger and no elimination
  // can occur — the beacon must stay dark.
  ElimWorld w = make_elim_world(1, 1, 1, 2);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  ASSERT_TRUE(r.ok()) << r.violations.front().what;
  EXPECT_FALSE(r.events & (1ull << core::kEventElimination));
}

TEST(ExplorerElimStack, EnumeratedHistoriesAllStackLinearizable) {
  ElimWorld w = make_elim_world(1, 1, 1, 1, /*record=*/true);
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();
  ASSERT_TRUE(r.ok()) << r.violations.front().what;
  ASSERT_GT(r.histories.size(), 0u);
  StackSpec spec(Symbol{"ES"});
  LinChecker lin(spec);
  for (const History& h : r.histories) {
    EXPECT_TRUE(lin.check(h)) << h.to_string();
  }
}

TEST(ExplorerMutation, PushAcceptingPushCollisionCaught) {
  // Mutant elimination stack: a pusher treats *any* successful exchange as
  // an elimination (drops the d == POP_SENTINAL check of Fig. 2 line 35).
  // A push/push collision at the exchanger needs two pushers there at
  // once; that takes a popper perturbing the central stack so both pushers
  // lose a CAS. The mutant then answers one push with success although the
  // exchange paired two pushes — L2 fires ("never logged").
  ElimWorld w = make_elim_world(0, 0, 1, 2);
  auto mk_prog = [](ThreadId tid, std::vector<Call> calls) {
    ThreadProgram p;
    p.tid = tid;
    p.calls = std::move(calls);
    return p;
  };
  w.config.programs = {
      mk_prog(0, {Call{0, Symbol{"push"}, iv(10)},
                  Call{0, Symbol{"push"}, iv(11)}}),
      mk_prog(1, {Call{0, Symbol{"push"}, iv(20)},
                  Call{0, Symbol{"push"}, iv(21)}}),
      mk_prog(2, {Call{0, Symbol{"pop"}, Value::unit()}}),
  };
  w.object->set_accept_any_exchange(true);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("logged"), std::string::npos)
      << r.violations.front().what;
}

}  // namespace
}  // namespace cal::sched
