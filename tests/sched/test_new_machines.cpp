// Exhaustive small-bound exploration of the CA-objects that gained model
// coverage with the env unification: the rendezvous, the elimination
// array, the immediate snapshot, and the Michael–Scott queue. Each ran
// only on the real runtime before; now the same objects/core/ body steps
// through SimEnv and every interleaving is enumerated, CAL-checked via
// ExploreOptions::check_spec, and (for the mutants) reproduced by witness
// replay.
#include <gtest/gtest.h>

#include <memory>

#include "cal/specs/elim_views.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/queue_spec.hpp"
#include "cal/specs/snapshot_spec.hpp"
#include "cal/view.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

using objects::core::ExchangerPc;
using objects::core::ExchangerReg;

Value iv(std::int64_t x) { return Value::integer(x); }

void expect_all_verdicts_true(const ExploreResult& r) {
  ASSERT_TRUE(r.ok()) << (r.violations.empty()
                              ? r.check_failures.front()
                              : r.violations.front().what);
  ASSERT_EQ(r.history_verdicts.size(), r.histories.size());
  for (std::size_t i = 0; i < r.history_verdicts.size(); ++i) {
    EXPECT_TRUE(r.history_verdicts[i]) << r.histories[i].to_string();
  }
}

// ---------------------------------------------------------------------- //
// Rendezvous: a width-1 striped exchanger under the method name
// "rendezvous"; the spec is the exchanger spec over that method.

WorldConfig rendezvous_config(const CaSpec* spec, std::size_t threads) {
  WorldConfig cfg;
  for (std::size_t i = 0; i < threads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    p.calls = {Call{0, Symbol{"rendezvous"},
                    iv(static_cast<std::int64_t>(10 * (i + 1)))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"R"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 8;
  return cfg;
}

TEST(NewMachines, RendezvousExhaustiveCalCheck) {
  ExchangerSpec spec(Symbol{"R"}, Symbol{"rendezvous"});
  WorldConfig cfg = rendezvous_config(&spec, 2);
  cfg.record_history = true;
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  opts.check_spec = &spec;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimRendezvous>(Symbol{"R"}));
  Explorer ex(cfg, std::move(objects), opts);
  ExploreResult r = ex.run();
  expect_all_verdicts_true(r);
  ASSERT_GT(r.histories.size(), 1u);
  // Some interleaving completes the handshake: both sides succeed with
  // swapped values.
  bool saw_swap = false;
  for (const History& h : r.histories) {
    bool a = false;
    bool b = false;
    for (const OpRecord& rec : h.operations()) {
      if (!rec.op.ret || !rec.op.ret->pair_ok()) continue;
      a |= rec.op.ret->pair_int() == 20;
      b |= rec.op.ret->pair_int() == 10;
    }
    saw_swap |= a && b;
  }
  EXPECT_TRUE(saw_swap);
}

TEST(NewMachines, RendezvousThreeThreadsAuditClean) {
  ExchangerSpec spec(Symbol{"R"}, Symbol{"rendezvous"});
  WorldConfig cfg = rendezvous_config(&spec, 3);
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimRendezvous>(Symbol{"R"}));
  Explorer ex(cfg, std::move(objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
  EXPECT_GT(r.states, 50u);
}

TEST(NewMachines, RendezvousMutantCaughtAndWitnessReplays) {
  // Echo bug on the active success return: the violation's recorded
  // schedule, replayed deterministically, reproduces it.
  ExchangerSpec spec(Symbol{"R"}, Symbol{"rendezvous"});
  WorldConfig cfg = rendezvous_config(&spec, 2);
  auto mutant = std::make_unique<SimRendezvous>(Symbol{"R"});
  SimHooks hooks;
  hooks.respond = [](const ThreadCtx& t, Value ret) {
    if (t.pc == ExchangerPc::kSuccessReturnB) {
      return Value::pair(true, t.regs[ExchangerReg::kV]);
    }
    return ret;
  };
  mutant->set_hooks(std::move(hooks));
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::move(mutant));
  Explorer ex(cfg, std::move(objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  const ScheduleViolation& v = r.violations.front();
  ASSERT_FALSE(v.schedule.empty());
  World world = ex.replay(v.schedule);
  ASSERT_TRUE(world.violated());
  EXPECT_EQ(*world.violation(), v.what);
}

// ---------------------------------------------------------------------- //
// Elimination array: width-2 striping; raw elements are logged on the
// slot exchangers and F_AR folds them onto the array itself.

TEST(NewMachines, ElimArrayExhaustiveCalCheck) {
  ExchangerSpec spec(Symbol{"AR"}, Symbol{"exchange"});
  auto view = std::make_shared<ComposedView>(
      make_f_ar(Symbol{"AR"}, 2),
      std::vector<std::shared_ptr<const ViewFunction>>{});
  WorldConfig cfg;
  for (std::size_t i = 0; i < 2; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    p.calls = {Call{0, Symbol{"exchange"},
                    iv(static_cast<std::int64_t>(10 * (i + 1)))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"AR"}};
  cfg.spec = &spec;
  cfg.view = view.get();
  cfg.record_history = true;
  cfg.record_trace = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 8;  // 2 slots × (g + 3 fail cells)
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  opts.check_spec = &spec;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimElimArray>(Symbol{"AR"}, 2));
  Explorer ex(cfg, std::move(objects), opts);
  ExploreResult r = ex.run();
  expect_all_verdicts_true(r);
  // The slot choice is explored: both threads striping to the same slot
  // can swap, different slots must both fail.
  bool saw_swap = false;
  bool saw_double_fail = false;
  for (const History& h : r.histories) {
    std::size_t successes = 0;
    std::size_t failures = 0;
    for (const OpRecord& rec : h.operations()) {
      if (!rec.op.ret) continue;
      (rec.op.ret->pair_ok() ? successes : failures)++;
    }
    saw_swap |= successes == 2;
    saw_double_fail |= failures == 2;
  }
  EXPECT_TRUE(saw_swap);
  EXPECT_TRUE(saw_double_fail);
}

// ---------------------------------------------------------------------- //
// Immediate snapshot: unbounded simultaneity blocks, so the online
// element-wise replay does not apply — every terminal history goes to the
// CAL post-pass, whose subset search regroups the per-thread singletons.

TEST(NewMachines, SnapshotExhaustiveCalCheck) {
  SnapshotSpec spec(Symbol{"SN"});
  WorldConfig cfg;
  for (std::size_t i = 0; i < 2; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    p.calls = {Call{0, Symbol{"us"},
                    iv(static_cast<std::int64_t>(10 * (i + 1)))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"SN"}};
  cfg.record_history = true;
  cfg.record_trace = true;
  cfg.heap_cells = 4;
  cfg.global_cells = 4;  // values[2] + levels[2]
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  opts.check_spec = &spec;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimSnapshot>(Symbol{"SN"}, 2));
  Explorer ex(cfg, std::move(objects), opts);
  ExploreResult r = ex.run();
  expect_all_verdicts_true(r);
  ASSERT_GT(r.histories.size(), 1u);
  // Immediacy: some interleaving puts both participants in one block
  // (both scans return {10, 20}).
  bool saw_joint_block = false;
  const Value joint = Value::vec({10, 20});
  for (const History& h : r.histories) {
    std::size_t joint_scans = 0;
    for (const OpRecord& rec : h.operations()) {
      if (rec.op.ret && *rec.op.ret == joint) ++joint_scans;
    }
    saw_joint_block |= joint_scans == 2;
  }
  EXPECT_TRUE(saw_joint_block);
}

// ---------------------------------------------------------------------- //
// Michael–Scott queue: an ordinary (simultaneity-free) object — its spec
// is sequential, lifted by SeqAsCaSpec, and checked both online (L3) and
// in the CAL post-pass.

WorldConfig ms_queue_config(const CaSpec* spec) {
  WorldConfig cfg;
  ThreadProgram enq{0, {Call{0, Symbol{"enq"}, iv(7)}}};
  ThreadProgram deq{1, {Call{0, Symbol{"deq"}, Value::unit()}}};
  cfg.programs = {enq, deq};
  cfg.object_names = {Symbol{"Q"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 4;  // head + tail + the 2-cell dummy node
  return cfg;
}

TEST(NewMachines, MsQueueExhaustiveCalCheck) {
  auto seq = std::make_shared<QueueSpec>(Symbol{"Q"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = ms_queue_config(&spec);
  cfg.record_history = true;
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  opts.check_spec = &spec;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimMsQueue>(Symbol{"Q"}, 2));
  Explorer ex(cfg, std::move(objects), opts);
  ExploreResult r = ex.run();
  expect_all_verdicts_true(r);
  ASSERT_GT(r.histories.size(), 1u);
  // Both outcomes of the race are reachable: the dequeuer beats the
  // enqueuer (empty) or finds the value.
  bool saw_got = false;
  bool saw_empty = false;
  for (const History& h : r.histories) {
    for (const OpRecord& rec : h.operations()) {
      if (rec.op.method != Symbol{"deq"} || !rec.op.ret) continue;
      if (rec.op.ret->pair_ok()) {
        saw_got |= rec.op.ret->pair_int() == 7;
      } else {
        saw_empty = true;
      }
    }
  }
  EXPECT_TRUE(saw_got);
  EXPECT_TRUE(saw_empty);
}

TEST(NewMachines, MsQueueMutantCaughtAndWitnessReplays) {
  // The dequeuer responds with a junk value instead of the one it logged
  // at the head-swing CAS — L2 fires, and the witness replays.
  auto seq = std::make_shared<QueueSpec>(Symbol{"Q"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = ms_queue_config(&spec);
  auto mutant = std::make_unique<SimMsQueue>(Symbol{"Q"}, 2);
  SimHooks hooks;
  hooks.respond = [](const ThreadCtx& t, Value ret) {
    if (t.pc == objects::core::MsQueuePc::kDeqReturn) {
      return Value::pair(true, 999);
    }
    return ret;
  };
  mutant->set_hooks(std::move(hooks));
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::move(mutant));
  Explorer ex(cfg, std::move(objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  const ScheduleViolation& v = r.violations.front();
  World world = ex.replay(v.schedule);
  ASSERT_TRUE(world.violated());
  EXPECT_EQ(*world.violation(), v.what);
}

}  // namespace
}  // namespace cal::sched
