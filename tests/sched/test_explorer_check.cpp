// ExploreOptions::check_spec — the streaming-checker post-pass over
// collected terminal histories. Shared by the sequential and parallel
// drivers: every unique terminal history is pushed through an
// engine::IncrementalChecker and the per-history verdicts (plus reasons
// for the failures) land on the ExploreResult.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cal/specs/exchanger_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

/// A spec with an empty trace-set: admits no CA-element at all, so every
/// history with a completed operation is non-CAL w.r.t. it.
class RejectAllSpec : public CaSpec {
 public:
  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::size_t max_element_size() const override { return 1; }
  [[nodiscard]] std::vector<CaStepResult> step(
      const SpecState&, Symbol, const std::vector<Operation>&) const override {
    return {};
  }
};

struct ExchangerWorld {
  WorldConfig config;
  ExchangerSpec spec{Symbol{"E"}, Symbol{"exchange"}};
  std::vector<std::unique_ptr<SimObject>> objects;
};

/// n threads, one exchange each (distinct values), recording histories.
ExchangerWorld make_world(std::size_t n_threads) {
  ExchangerWorld w;
  w.objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
  for (std::size_t i = 0; i < n_threads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    p.calls.push_back(Call{0, Symbol{"exchange"},
                           Value::integer(static_cast<std::int64_t>(i + 1))});
    w.config.programs.push_back(std::move(p));
  }
  w.config.object_names = {Symbol{"E"}};
  w.config.spec = &w.spec;
  w.config.record_history = true;
  w.config.record_trace = true;
  w.config.heap_cells = 64;
  w.config.global_cells = 16;
  return w;
}

TEST(ExplorerCheckSpec, CleanWorldEveryHistoryAccepted) {
  ExchangerWorld w = make_world(2);
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  opts.check_spec = &w.spec;
  opts.check_window = 2;
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();

  ASSERT_TRUE(r.violations.empty());
  ASSERT_GT(r.histories.size(), 1u);
  ASSERT_EQ(r.history_verdicts.size(), r.histories.size());
  for (std::size_t i = 0; i < r.history_verdicts.size(); ++i) {
    EXPECT_TRUE(r.history_verdicts[i]) << r.histories[i].to_string();
  }
  EXPECT_TRUE(r.check_failures.empty());
  EXPECT_TRUE(r.ok());
}

TEST(ExplorerCheckSpec, RejectAllSpecFailsEveryHistoryAndResult) {
  ExchangerWorld w = make_world(2);
  RejectAllSpec reject;
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  opts.check_spec = &reject;
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();

  // The schedule-level exploration itself is clean — only the post-pass
  // fails, and that alone must flip ok().
  EXPECT_TRUE(r.violations.empty());
  ASSERT_GT(r.histories.size(), 0u);
  ASSERT_EQ(r.history_verdicts.size(), r.histories.size());
  for (std::size_t i = 0; i < r.history_verdicts.size(); ++i) {
    EXPECT_FALSE(r.history_verdicts[i]);
  }
  EXPECT_EQ(r.check_failures.size(), r.histories.size());
  for (const std::string& reason : r.check_failures) {
    EXPECT_NE(reason.find("history "), std::string::npos) << reason;
  }
  EXPECT_FALSE(r.ok());
}

TEST(ExplorerCheckSpec, ParallelDriverRunsTheSamePostPass) {
  ExchangerWorld w = make_world(2);
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  opts.check_spec = &w.spec;
  opts.threads = 4;
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();

  ASSERT_TRUE(r.violations.empty());
  ASSERT_GT(r.histories.size(), 1u);
  ASSERT_EQ(r.history_verdicts.size(), r.histories.size());
  for (std::size_t i = 0; i < r.history_verdicts.size(); ++i) {
    EXPECT_TRUE(r.history_verdicts[i]) << r.histories[i].to_string();
  }
  EXPECT_TRUE(r.ok());
}

TEST(ExplorerCheckSpec, WithoutCollectTerminalsNothingIsChecked) {
  ExchangerWorld w = make_world(2);
  RejectAllSpec reject;
  ExploreOptions opts;
  opts.check_spec = &reject;  // collect_terminals stays off
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();

  EXPECT_TRUE(r.histories.empty());
  EXPECT_TRUE(r.history_verdicts.empty());
  EXPECT_TRUE(r.check_failures.empty());
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace cal::sched
