// Reduction equivalence: exploring with sleep-set POR and/or thread-symmetry
// canonicalization must change only the cost of the search, never its
// answers. For every corpus machine this suite checks, against the
// unreduced baseline:
//
//   * verdicts (ok / first violation) are identical,
//   * the reachability event mask is identical,
//   * in enumeration mode the *exact set* of terminal histories is
//     identical under POR, and identical modulo a renaming of
//     identically-programmed threads under symmetry,
//   * an attached TransitionAuditor forces both reductions off (the audit
//     must observe every transition),
//   * a violation found under reduction replays deterministically, and the
//     replayed schedule reproduces it with reductions off too.
//
// The checker-side analogue: CalChecker verdicts with
// CalCheckOptions::symmetry on equal those with it off.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/specs/elim_views.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/queue_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "cal/specs/sync_queue_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/rg.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

using objects::core::ExchangerPc;
using objects::core::ExchangerReg;

Value iv(std::int64_t x) { return Value::integer(x); }

// ------------------------------------------------------------------ //
// History serialization helpers.

std::string serialize(const History& h) {
  std::string out;
  for (const Action& a : h.actions()) {
    out += a.to_string();
    out += '\n';
  }
  return out;
}

/// Serialization invariant under thread renaming: tids are replaced by
/// their order of first appearance. Two histories that differ only by a
/// permutation of identically-programmed threads canonicalize equal.
std::string canon_serialize(const History& h) {
  std::map<ThreadId, ThreadId> rename;
  std::string out;
  for (const Action& a : h.actions()) {
    auto it = rename.emplace(a.tid, static_cast<ThreadId>(rename.size()))
                  .first;
    Action copy = a;
    copy.tid = it->second;
    out += copy.to_string();
    out += '\n';
  }
  return out;
}

template <typename Serialize>
std::vector<std::string> history_set(const ExploreResult& r, Serialize ser) {
  std::vector<std::string> out;
  out.reserve(r.histories.size());
  for (const History& h : r.histories) out.push_back(ser(h));
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------------------ //
// Corpus configurations.

WorldConfig exchanger_config(const CaSpec* spec, std::size_t threads,
                             bool symmetric) {
  WorldConfig cfg;
  for (std::size_t i = 0; i < threads; ++i) {
    ThreadProgram p;
    // The symmetry discipline wants interchangeable tids outside the
    // address range; distinct args make the threads non-interchangeable
    // and keep the canonicalizer inactive.
    p.tid = static_cast<ThreadId>(symmetric ? 1000 + i : i);
    p.calls = {Call{0, Symbol{"exchange"},
                    symmetric ? iv(7)
                              : iv(static_cast<std::int64_t>(10 * (i + 1)))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"E"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 8;
  return cfg;
}

std::vector<std::unique_ptr<SimObject>> one_exchanger() {
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
  return objects;
}

ExploreOptions reduction(bool por, bool symmetry) {
  ExploreOptions opts;
  opts.por = por;
  opts.symmetry = symmetry;
  return opts;
}

ExploreOptions enumerating(ExploreOptions opts, const CaSpec* spec) {
  opts.merge_states = false;
  opts.collect_terminals = true;
  opts.check_spec = spec;
  return opts;
}

// ------------------------------------------------------------------ //
// POR preserves the exact terminal-history set (enumeration mode).

TEST(PorEquivalence, ExchangerHistorySetExactUnderPor) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 3, /*symmetric=*/false);
  cfg.record_history = true;

  ExploreResult base;
  {
    Explorer ex(cfg, one_exchanger(), enumerating({}, &spec));
    base = ex.run();
  }
  Explorer ex(cfg, one_exchanger(),
              enumerating(reduction(true, false), &spec));
  ExploreResult por = ex.run();

  EXPECT_EQ(base.ok(), por.ok());
  EXPECT_EQ(base.events, por.events);
  EXPECT_EQ(history_set(base, serialize), history_set(por, serialize));
  EXPECT_TRUE(base.ok());
  // The reduction actually engaged.
  EXPECT_GT(por.por_pruned, 0u);
}

// Merged mode, across sequential and parallel drivers: verdicts, events,
// and (POR keeps every state reachable) the terminal count all match.
TEST(PorEquivalence, MergedVerdictsAcrossThreadCounts) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 3, /*symmetric=*/false);

  ExploreResult base;
  {
    Explorer ex(cfg, one_exchanger());
    base = ex.run();
  }
  for (std::size_t threads : {1u, 2u, 8u}) {
    for (bool por : {false, true}) {
      for (bool symmetry : {false, true}) {
        if (!por && !symmetry) continue;
        ExploreOptions opts = reduction(por, symmetry);
        opts.threads = threads;
        Explorer ex(cfg, one_exchanger(), opts);
        ExploreResult r = ex.run();
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " por=" + std::to_string(por) +
                     " symmetry=" + std::to_string(symmetry));
        EXPECT_EQ(base.ok(), r.ok());
        EXPECT_EQ(base.events, r.events);
        EXPECT_EQ(base.terminals, r.terminals);
        // Distinct args: every symmetry class is a singleton, so the
        // canonicalizer deactivates itself and merges nothing.
        if (symmetry) {
          EXPECT_EQ(r.symmetry_merged, 0u);
        }
      }
    }
  }
}

// Identically-programmed threads: symmetry merges states, and merged-mode
// terminal collection keeps one representative history per canonical
// terminal class. Every collected history must be a genuine run — a
// renaming of something in the full enumerated set — and the reduction
// must actually shrink the state count while preserving the verdict and
// the event mask. (Exact history-set preservation is an enumeration-mode
// guarantee of POR, above; merged-mode collection is representative-based
// with or without reduction.)
TEST(PorEquivalence, SymmetricCollectionIsSubsetOfEnumeration) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 3, /*symmetric=*/true);
  cfg.record_history = true;

  ExploreOptions enumerate;
  enumerate.merge_states = false;
  enumerate.collect_terminals = true;
  ExploreResult full;
  {
    Explorer ex(cfg, one_exchanger(), enumerate);
    full = ex.run();
  }
  const std::vector<std::string> all = history_set(full, canon_serialize);

  ExploreOptions base_opts;
  base_opts.collect_terminals = true;
  ExploreResult base;
  {
    Explorer ex(cfg, one_exchanger(), base_opts);
    base = ex.run();
  }
  for (bool por : {false, true}) {
    ExploreOptions opts = reduction(por, true);
    opts.collect_terminals = true;
    Explorer ex(cfg, one_exchanger(), opts);
    ExploreResult r = ex.run();
    SCOPED_TRACE(por ? "por+symmetry" : "symmetry");
    EXPECT_EQ(full.ok(), r.ok());
    EXPECT_EQ(full.events, r.events);
    ASSERT_FALSE(r.histories.empty());
    for (const History& h : r.histories) {
      EXPECT_TRUE(std::binary_search(all.begin(), all.end(),
                                     canon_serialize(h)));
    }
    // Symmetry delivered an actual state reduction.
    EXPECT_LT(r.states, base.states);
    EXPECT_GT(r.symmetry_merged, 0u);
  }
}

// The parallel driver under full reduction agrees with the sequential one
// on everything order-independent: verdict, events, and the number of
// canonical terminal classes. (State counts under POR may differ by
// driver: which sleep masks reach the subsumption table first depends on
// walk order; soundness does not.)
TEST(PorEquivalence, ParallelDriverAgreesUnderReduction) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 4, /*symmetric=*/true);

  ExploreOptions seq = reduction(true, true);
  ExploreOptions par = seq;
  par.threads = 8;

  ExploreResult a;
  {
    Explorer ex(cfg, one_exchanger(), seq);
    a = ex.run();
  }
  Explorer ex(cfg, one_exchanger(), par);
  ExploreResult b = ex.run();

  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.terminals, b.terminals);
}

// ------------------------------------------------------------------ //
// An attached auditor must see every transition: both reduction flags are
// forced off, bit-for-bit the unreduced exploration.

TEST(PorEquivalence, AuditorForcesReductionsOff) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 3, /*symmetric=*/false);

  // Each explorer initializes its own machine instance; the auditor must
  // watch the instance whose global refs that explorer's world assigned.
  ExploreResult base;
  {
    auto objects = one_exchanger();
    ExchangerRgAuditor auditor(static_cast<SimExchanger&>(*objects[0]));
    Explorer ex(cfg, std::move(objects));
    ex.set_auditor(&auditor);
    base = ex.run();
  }
  auto objects = one_exchanger();
  ExchangerRgAuditor auditor(static_cast<SimExchanger&>(*objects[0]));
  Explorer ex(cfg, std::move(objects), reduction(true, true));
  ex.set_auditor(&auditor);
  ExploreResult r = ex.run();

  EXPECT_EQ(base.states, r.states);
  EXPECT_EQ(base.transitions, r.transitions);
  EXPECT_EQ(base.terminals, r.terminals);
  EXPECT_EQ(base.ok(), r.ok());
  EXPECT_EQ(r.por_pruned, 0u);
  EXPECT_EQ(r.symmetry_merged, 0u);
}

// ------------------------------------------------------------------ //
// The wider machine corpus: verdicts and events under reduction.

TEST(PorEquivalence, EliminationStackVerdictsUnderReduction) {
  auto seq = std::make_shared<StackSpec>(Symbol{"ES"});
  SeqAsCaSpec spec(seq);
  auto view = make_elimination_stack_view(Symbol{"ES"}, Symbol{"ES.S"},
                                          Symbol{"ES.AR"}, 1);
  WorldConfig cfg;
  ThreadProgram pusher1{0, {Call{0, Symbol{"push"}, iv(10)}}};
  ThreadProgram pusher2{1, {Call{0, Symbol{"push"}, iv(20)}}};
  ThreadProgram popper{2, {Call{0, Symbol{"pop"}, Value::unit()}}};
  cfg.programs = {pusher1, pusher2, popper};
  cfg.object_names = {Symbol{"ES"}};
  cfg.spec = &spec;
  cfg.view = view.get();
  cfg.record_trace = true;
  cfg.heap_cells = 24;
  cfg.global_cells = 8;

  auto make_objects = [] {
    std::vector<std::unique_ptr<SimObject>> objects;
    objects.push_back(std::make_unique<SimElimStack>(
        Symbol{"ES"}, Symbol{"ES.S"}, Symbol{"ES.AR"}, 1, 2));
    return objects;
  };
  ExploreResult base;
  {
    Explorer ex(cfg, make_objects());
    base = ex.run();
  }
  for (bool symmetry : {false, true}) {
    Explorer ex(cfg, make_objects(), reduction(true, symmetry));
    ExploreResult r = ex.run();
    SCOPED_TRACE(symmetry ? "por+symmetry" : "por");
    EXPECT_EQ(base.ok(), r.ok());
    // The elimination-path reachability beacon survives the reduction.
    EXPECT_EQ(base.events, r.events);
  }
}

TEST(PorEquivalence, SyncQueueHistorySetExactUnderPor) {
  SyncQueueSpec spec(Symbol{"SQ"});
  WorldConfig cfg;
  ThreadProgram put1{0, {Call{0, Symbol{"put"}, iv(10)}}};
  ThreadProgram take{1, {Call{0, Symbol{"take"}, Value::unit()}}};
  cfg.programs = {put1, take};
  cfg.object_names = {Symbol{"SQ"}};
  cfg.spec = &spec;
  cfg.record_history = true;
  cfg.record_trace = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 8;

  auto make_objects = [] {
    std::vector<std::unique_ptr<SimObject>> objects;
    objects.push_back(std::make_unique<SimSyncQueue>(Symbol{"SQ"}, 1));
    return objects;
  };
  ExploreResult base;
  {
    Explorer ex(cfg, make_objects(), enumerating({}, &spec));
    base = ex.run();
  }
  Explorer ex(cfg, make_objects(), enumerating(reduction(true, false), &spec));
  ExploreResult por = ex.run();

  EXPECT_EQ(base.ok(), por.ok());
  EXPECT_EQ(base.events, por.events);
  EXPECT_EQ(history_set(base, serialize), history_set(por, serialize));
}

TEST(PorEquivalence, MsQueueHistorySetExactUnderPor) {
  auto seq = std::make_shared<QueueSpec>(Symbol{"Q"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg;
  ThreadProgram enq{0, {Call{0, Symbol{"enq"}, iv(7)}}};
  ThreadProgram deq{1, {Call{0, Symbol{"deq"}, Value::unit()}}};
  cfg.programs = {enq, deq};
  cfg.object_names = {Symbol{"Q"}};
  cfg.spec = &spec;
  cfg.record_history = true;
  cfg.record_trace = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 4;

  auto make_objects = [] {
    std::vector<std::unique_ptr<SimObject>> objects;
    objects.push_back(std::make_unique<SimMsQueue>(Symbol{"Q"}));
    return objects;
  };
  ExploreResult base;
  {
    Explorer ex(cfg, make_objects(), enumerating({}, &spec));
    base = ex.run();
  }
  Explorer ex(cfg, make_objects(), enumerating(reduction(true, false), &spec));
  ExploreResult por = ex.run();

  EXPECT_EQ(base.ok(), por.ok());
  EXPECT_EQ(history_set(base, serialize), history_set(por, serialize));
}

// ------------------------------------------------------------------ //
// Replay under reduction (the regression this PR fixes: replay() used to
// reuse the exploration config, so a reduced exploration's recording
// flags leaked and a second replay dangled the first world's config).

std::unique_ptr<SimExchanger> echo_bug(Symbol name) {
  auto object = std::make_unique<SimExchanger>(name);
  SimHooks hooks;
  hooks.respond = [](const ThreadCtx& t, Value ret) {
    if (t.pc == ExchangerPc::kSuccessReturnB) {
      return Value::pair(true, t.regs[ExchangerReg::kV]);
    }
    return ret;
  };
  object->set_hooks(std::move(hooks));
  return object;
}

TEST(PorEquivalence, ViolationUnderReductionReplays) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 2, /*symmetric=*/false);
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(echo_bug(Symbol{"E"}));
  Explorer ex(cfg, std::move(objects), reduction(true, false));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  const ScheduleViolation& v = r.violations.front();
  ASSERT_FALSE(v.schedule.empty());

  // The schedule found under reduction replays to the same violation.
  World replayed = ex.replay(v.schedule);
  ASSERT_TRUE(replayed.violated());
  EXPECT_EQ(*replayed.violation(), v.what);

  // Regression: a second replay must not invalidate the first world (each
  // replay owns its recording config now).
  World second = ex.replay(v.schedule);
  ASSERT_TRUE(second.violated());
  EXPECT_EQ(*replayed.violation(), *second.violation());
  EXPECT_FALSE(replayed.history().actions().empty());

  // Re-validate with reductions off: the same schedule reproduces the
  // violation on a fresh unreduced explorer.
  std::vector<std::unique_ptr<SimObject>> fresh;
  fresh.push_back(echo_bug(Symbol{"E"}));
  Explorer plain(cfg, std::move(fresh));
  World unreduced = plain.replay(v.schedule);
  ASSERT_TRUE(unreduced.violated());
  EXPECT_EQ(*unreduced.violation(), v.what);
}

// ------------------------------------------------------------------ //
// Checker-side symmetry: verdicts with CalCheckOptions::symmetry on equal
// those with it off, accept and reject alike.

History wide_overlap(std::size_t width, bool poison_last) {
  HistoryBuilder b;
  for (ThreadId t = 1; t <= width; ++t) {
    b.call(t, "E", "exchange", iv(static_cast<std::int64_t>(t)));
  }
  for (ThreadId t = 1; t <= width; ++t) {
    b.ret(t, Value::pair(false, static_cast<std::int64_t>(t)));
  }
  History h = b.history();
  if (!poison_last) return h;
  std::vector<Action> actions = h.actions();
  actions.back().payload = Value::pair(true, 424242);  // impossible swap
  return History{std::move(actions)};
}

TEST(PorEquivalence, CheckerSymmetryVerdictEquivalence) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  std::vector<std::pair<std::string, History>> corpus;
  for (std::size_t w : {2u, 4u, 7u}) {
    corpus.emplace_back("overlap-" + std::to_string(w), wide_overlap(w, false));
    corpus.emplace_back("reject-" + std::to_string(w), wide_overlap(w, true));
  }
  corpus.emplace_back("mixed", HistoryBuilder()
                                   .call(1, "E", "exchange", iv(3))
                                   .call(2, "E", "exchange", iv(4))
                                   .ret(2, Value::pair(true, 3))
                                   .ret(1, Value::pair(true, 4))
                                   .op(3, "E", "exchange", iv(7),
                                       Value::pair(false, 7))
                                   .history());

  for (const auto& [name, h] : corpus) {
    SCOPED_TRACE(name);
    CalChecker plain(spec);
    CalCheckOptions opts;
    opts.symmetry = true;
    CalChecker reduced(spec, opts);
    const CalCheckResult a = plain.check(h);
    const CalCheckResult b = reduced.check(h);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_LE(b.visited_states, a.visited_states);
  }
}

// The reduction itself: on the all-fail overlap rejection the symmetric
// checker visits O(width) states where the plain one visits O(2^width).
TEST(PorEquivalence, CheckerSymmetryReductionIsSuperlinear) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  const History h = wide_overlap(7, /*poison_last=*/true);
  CalChecker plain(spec);
  CalCheckOptions opts;
  opts.symmetry = true;
  CalChecker reduced(spec, opts);
  const CalCheckResult a = plain.check(h);
  const CalCheckResult b = reduced.check(h);
  ASSERT_FALSE(a.ok);
  ASSERT_FALSE(b.ok);
  EXPECT_GE(a.visited_states, 5 * b.visited_states);
  EXPECT_GT(b.symmetry_merged, 0u);
}

}  // namespace
}  // namespace cal::sched
