// Nightly-sized reduction stress (ctest label PorStress, built only with
// -DCAL_POR_STRESS=ON): six identically-programmed exchanger threads are
// exhaustively explorable with thread-symmetry canonicalization, while the
// unreduced exploration exhausts the same state budget long before
// finishing. This is the scale claim of the reduction PR, checked end to
// end rather than on the 3–4-thread corpus the fast suite uses.
#include <gtest/gtest.h>

#include <memory>

#include "cal/specs/exchanger_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

constexpr std::size_t kThreads = 6;
constexpr std::size_t kBudget = 200000;

WorldConfig symmetric_config(const CaSpec* spec) {
  WorldConfig cfg;
  for (std::size_t i = 0; i < kThreads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(1000 + i);  // symmetry value discipline
    p.calls = {Call{0, Symbol{"exchange"}, Value::integer(7)}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"E"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 8;
  return cfg;
}

std::vector<std::unique_ptr<SimObject>> one_exchanger() {
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
  return objects;
}

TEST(PorStress, SixThreadsExhaustiveOnlyUnderReduction) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = symmetric_config(&spec);

  ExploreOptions plain;
  plain.max_states = kBudget;
  ExploreResult unreduced;
  {
    Explorer ex(cfg, one_exchanger(), plain);
    unreduced = ex.run();
  }
  EXPECT_TRUE(unreduced.exhausted);

  ExploreOptions sym;
  sym.symmetry = true;
  sym.max_states = kBudget;
  Explorer ex(cfg, one_exchanger(), sym);
  ExploreResult reduced = ex.run();

  EXPECT_FALSE(reduced.exhausted);
  EXPECT_TRUE(reduced.ok());
  EXPECT_GT(reduced.symmetry_merged, 0u);
  EXPECT_LT(reduced.states, kBudget);
}

TEST(PorStress, SixThreadsPorPlusSymmetryAgrees) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = symmetric_config(&spec);

  ExploreOptions sym;
  sym.symmetry = true;
  ExploreResult a;
  {
    Explorer ex(cfg, one_exchanger(), sym);
    a = ex.run();
  }
  ExploreOptions both;
  both.por = true;
  both.symmetry = true;
  Explorer ex(cfg, one_exchanger(), both);
  ExploreResult b = ex.run();

  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.terminals, b.terminals);
}

}  // namespace
}  // namespace cal::sched
