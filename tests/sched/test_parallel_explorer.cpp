// Parallel-vs-sequential equivalence for the schedule explorer: identical
// verdicts at threads ∈ {1, 2, 8} on the exchanger and elimination-stack
// model-checking workloads, equal state/terminal/transition counts on
// clean explorations, deterministic first-violation selection, and
// identical terminal-history sets in enumerating mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_objects.hpp"
#include "sched/rg.hpp"

namespace cal::sched {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

struct ExchangerWorld {
  WorldConfig config;
  ExchangerSpec spec{Symbol{"E"}, Symbol{"exchange"}};
  const SimExchanger* machine = nullptr;
  std::vector<std::unique_ptr<SimObject>> objects;
};

ExchangerWorld make_exchanger_world(std::size_t n_threads,
                                    std::size_t ops_per_thread,
                                    bool record = false) {
  ExchangerWorld w;
  auto machine = std::make_unique<SimExchanger>(Symbol{"E"});
  w.machine = machine.get();
  w.objects.push_back(std::move(machine));
  for (std::size_t i = 0; i < n_threads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    for (std::size_t k = 0; k < ops_per_thread; ++k) {
      p.calls.push_back(Call{0, Symbol{"exchange"},
                             iv(static_cast<std::int64_t>(i * 100 + k))});
    }
    w.config.programs.push_back(std::move(p));
  }
  w.config.object_names = {Symbol{"E"}};
  w.config.spec = &w.spec;
  w.config.record_trace = true;
  if (record) w.config.record_history = true;
  w.config.heap_cells = 8;
  w.config.global_cells = 8;
  return w;
}

ExploreResult explore(std::size_t pool_threads, std::size_t n_threads,
                      std::size_t ops, ExploreOptions opts = {},
                      bool with_auditor = false, bool record = false) {
  ExchangerWorld w = make_exchanger_world(n_threads, ops, record);
  opts.threads = pool_threads;
  Explorer ex(w.config, std::move(w.objects), opts);
  std::unique_ptr<ExchangerRgAuditor> auditor;
  if (with_auditor) {
    auditor = std::make_unique<ExchangerRgAuditor>(*w.machine);
    ex.set_auditor(auditor.get());
  }
  return ex.run();
}

TEST(ParallelExplorerEquivalence, CleanExplorationCountersMatch) {
  // No violations, no caps, merging on: every engine must visit exactly
  // the same reachable state set, so the counters agree exactly.
  const ExploreResult seq = explore(1, 3, 1);
  for (std::size_t pool : {std::size_t{2}, std::size_t{8}}) {
    const ExploreResult par = explore(pool, 3, 1);
    EXPECT_EQ(seq.ok(), par.ok()) << "pool=" << pool;
    EXPECT_TRUE(par.ok());
    EXPECT_EQ(seq.states, par.states) << "pool=" << pool;
    EXPECT_EQ(seq.terminals, par.terminals) << "pool=" << pool;
    EXPECT_EQ(seq.transitions, par.transitions) << "pool=" << pool;
    EXPECT_EQ(seq.events, par.events) << "pool=" << pool;
  }
}

TEST(ParallelExplorerEquivalence, NoMergeCountersMatch) {
  ExploreOptions opts;
  opts.merge_states = false;
  const ExploreResult seq = explore(1, 2, 2, opts);
  for (std::size_t pool : {std::size_t{2}, std::size_t{8}}) {
    const ExploreResult par = explore(pool, 2, 2, opts);
    EXPECT_EQ(seq.ok(), par.ok());
    EXPECT_EQ(seq.states, par.states) << "pool=" << pool;
    EXPECT_EQ(seq.terminals, par.terminals) << "pool=" << pool;
    EXPECT_EQ(seq.transitions, par.transitions) << "pool=" << pool;
  }
}

TEST(ParallelExplorerEquivalence, RgAuditedExplorationStaysClean) {
  // The full Fig. 4 rely/guarantee audit runs inside every walker; the
  // verified exchanger must stay violation-free at every thread count.
  for (std::size_t pool :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const ExploreResult r = explore(pool, 2, 2, {}, /*with_auditor=*/true);
    EXPECT_TRUE(r.ok()) << "pool=" << pool << ": "
                        << (r.violations.empty()
                                ? ""
                                : r.violations.front().to_string());
    EXPECT_GT(r.states, 0u);
  }
}

TEST(ParallelExplorerEquivalence, TerminalHistorySetsMatch) {
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  auto collect_sorted = [&](std::size_t pool) {
    const ExploreResult r = explore(pool, 2, 1, opts, false, /*record=*/true);
    std::vector<std::string> out;
    out.reserve(r.histories.size());
    for (const History& h : r.histories) out.push_back(h.to_string());
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto seq = collect_sorted(1);
  ASSERT_FALSE(seq.empty());
  EXPECT_EQ(seq, collect_sorted(2));
  EXPECT_EQ(seq, collect_sorted(8));
}

/// Flags an invariant violation at every terminal state — a deterministic,
/// machine-independent way to seed violations deep in the schedule tree.
class TerminalFlagAuditor final : public TransitionAuditor {
 public:
  [[nodiscard]] std::optional<std::string> check_transition(
      const World&, const World&, ThreadId) const override {
    return std::nullopt;
  }
  [[nodiscard]] std::optional<std::string> check_invariant(
      const World& world) const override {
    if (world.all_done()) return "terminal reached";
    return std::nullopt;
  }
};

TEST(ParallelExplorerViolations, FirstViolationIsDeterministicAndReplayable) {
  ExploreOptions opts;
  opts.merge_states = false;  // branch-local search: fully deterministic
  std::vector<ScheduleStep> first_schedule;
  for (int run = 0; run < 3; ++run) {
    ExchangerWorld w = make_exchanger_world(2, 1);
    opts.threads = 8;
    TerminalFlagAuditor auditor;
    Explorer ex(w.config, std::move(w.objects), opts);
    ex.set_auditor(&auditor);
    ExploreResult r = ex.run();
    ASSERT_FALSE(r.ok());
    ASSERT_EQ(r.violations.size(), 1u);
    const auto& v = r.violations.front();
    EXPECT_EQ(v.what, "invariant: terminal reached");
    // Replaying the reported schedule must reach the flagged state.
    World replayed = ex.replay(v.schedule);
    EXPECT_TRUE(replayed.all_done()) << v.to_string();
    if (run == 0) {
      first_schedule = v.schedule;
    } else {
      EXPECT_EQ(first_schedule, v.schedule) << "run " << run
                                            << " chose a different violation";
    }
  }
}

TEST(ParallelExplorerViolations, AllViolationsModeFindsEveryTerminal) {
  ExploreOptions opts;
  opts.merge_states = false;
  opts.stop_on_first_violation = false;
  auto count = [&](std::size_t pool) {
    ExchangerWorld w = make_exchanger_world(2, 1);
    opts.threads = pool;
    TerminalFlagAuditor auditor;
    Explorer ex(w.config, std::move(w.objects), opts);
    ex.set_auditor(&auditor);
    return ex.run().violations.size();
  };
  const std::size_t seq = count(1);
  ASSERT_GT(seq, 0u);
  EXPECT_EQ(seq, count(2));
  EXPECT_EQ(seq, count(8));
}

TEST(ParallelExplorerViolations, MaxStatesCapTripsExhausted) {
  ExploreOptions opts;
  opts.max_states = 10;
  opts.threads = 8;
  ExchangerWorld w = make_exchanger_world(3, 2);
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.exhausted);
}

TEST(ParallelExplorerStress, RepeatedRunsStayConsistent) {
  // Back-to-back full-pool explorations of the 3-thread configuration:
  // shared visited-set contention plus walker cancellation paths.
  const ExploreResult seq = explore(1, 3, 1);
  for (int round = 0; round < 4; ++round) {
    const ExploreResult par = explore(8, 3, 1);
    EXPECT_TRUE(par.ok());
    EXPECT_EQ(seq.states, par.states);
    EXPECT_EQ(seq.terminals, par.terminals);
  }
}

}  // namespace
}  // namespace cal::sched
