// Counterexample replay: a violation's recorded schedule, re-executed
// deterministically, reproduces the violation and exposes the offending
// history prefix.
#include <gtest/gtest.h>

#include <memory>

#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "cal/specs/elim_views.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

using objects::core::ExchangerPc;
using objects::core::ExchangerReg;

Value iv(std::int64_t x) { return Value::integer(x); }

WorldConfig exchanger_config(const CaSpec* spec, std::size_t threads) {
  WorldConfig cfg;
  for (std::size_t i = 0; i < threads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    p.calls = {Call{0, Symbol{"exchange"},
                    iv(static_cast<std::int64_t>(10 * (i + 1)))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"E"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 8;
  cfg.global_cells = 8;
  return cfg;
}

/// Mutant from the examples: success returns echo the thread's own value,
/// injected as a respond hook on the active success return.
std::unique_ptr<SimExchanger> echo_bug(Symbol name) {
  auto object = std::make_unique<SimExchanger>(name);
  SimHooks hooks;
  hooks.respond = [](const ThreadCtx& t, Value ret) {
    if (t.pc == ExchangerPc::kSuccessReturnB) {
      return Value::pair(true, t.regs[ExchangerReg::kV]);
    }
    return ret;
  };
  object->set_hooks(std::move(hooks));
  return object;
}

TEST(Replay, ReproducesViolationAndHistoryPrefix) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 2);
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(echo_bug(Symbol{"E"}));
  Explorer ex(cfg, std::move(objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  const ScheduleViolation& v = r.violations.front();
  ASSERT_FALSE(v.schedule.empty());

  World world = ex.replay(v.schedule);
  ASSERT_TRUE(world.violated());
  EXPECT_EQ(*world.violation(), v.what);
  // The replayed history prefix contains the bad response.
  const History& h = world.history();
  bool saw_bad = false;
  for (const Action& a : h.actions()) {
    if (a.is_respond() && a.payload.kind() == Value::Kind::kPair &&
        a.payload.pair_ok()) {
      saw_bad = true;
    }
  }
  EXPECT_TRUE(saw_bad);
}

TEST(Replay, CleanScheduleReplaysWithoutViolation) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 1);
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
  Explorer ex(cfg, std::move(objects));
  // A single thread's full run: t0 steps until done (5 steps: invoke,
  // init CAS, pass CAS + fused failure append, withdraw CAS, respond).
  std::vector<ScheduleStep> schedule(5, ScheduleStep{0, -1});
  World world = ex.replay(schedule);
  EXPECT_FALSE(world.violated());
  EXPECT_TRUE(world.all_done());
  EXPECT_TRUE(world.history().complete());
  EXPECT_EQ(world.trace().size(), 1u);  // the failure element
}

TEST(Replay, RejectsImpossibleStep) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 1);
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
  Explorer ex(cfg, std::move(objects));
  // Thread 7 does not exist.
  World world = ex.replay({ScheduleStep{7, -1}});
  ASSERT_TRUE(world.violated());
  EXPECT_NE(world.violation()->find("unknown thread"), std::string::npos);
}

TEST(Replay, ChoiceValuesAreHonored) {
  // Elimination stack schedules record the slot choice; a replayed
  // schedule must fork the same way. Force the popper through the
  // elimination path of a width-2 array and check the choice round-trips.
  auto seq = std::make_shared<StackSpec>(Symbol{"ES"});
  SeqAsCaSpec spec(seq);
  auto view = make_elimination_stack_view(Symbol{"ES"}, Symbol{"ES.S"},
                                          Symbol{"ES.AR"}, 2);
  WorldConfig cfg;
  ThreadProgram popper{0, {Call{0, Symbol{"pop"}, Value::unit()}}};
  cfg.programs = {popper};
  cfg.object_names = {Symbol{"ES"}};
  cfg.spec = &spec;
  cfg.view = view.get();
  cfg.record_trace = true;
  cfg.heap_cells = 24;
  cfg.global_cells = 12;  // top + 2 slots × (g + 3 fail cells)
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimElimStack>(
      Symbol{"ES"}, Symbol{"ES.S"}, Symbol{"ES.AR"}, 2, 0));
  Explorer ex(cfg, std::move(objects));
  // invoke, stack read (empty -> log), choice(slot=1) + offer setup,
  // init CAS, pass CAS (fused fail elem), withdraw -> retry -> truncate
  // (bound 0).
  const std::vector<ScheduleStep> schedule = {
      {0, -1}, {0, -1}, {0, 1}, {0, -1}, {0, -1}, {0, -1},
  };
  World world = ex.replay(schedule);
  EXPECT_FALSE(world.violated()) << *world.violation();
  // The failed exchange landed on slot 1 (per the recorded choice).
  bool slot1 = false;
  for (const CaElement& e : world.trace().elements()) {
    if (e.object() == elim_slot_name(Symbol{"ES.AR"}, 1)) slot1 = true;
  }
  EXPECT_TRUE(slot1);
}

}  // namespace
}  // namespace cal::sched
