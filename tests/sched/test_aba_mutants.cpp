// The ABA mutant corpus: reclamation bugs the checker must catch once the
// simulated allocator recycles addresses (WorldConfig::recycle_addresses).
//
// Three mutants, each a classic way lock-free reclamation goes wrong:
//
//   * drop-the-protect — a pop body reads the top with a plain load
//     instead of protect(), so under hazard pointers nothing pins the
//     observed node and a concurrent pop/pop/push recycles it under the
//     reader's feet: the reader's CAS succeeds against the same address
//     holding a different node (the textbook ABA), corrupting the stack.
//   * premature free — the reclaimer ignores grace periods and hazard
//     slots (WorldConfig::premature_free): even the *correct* body
//     breaks, because its protect discipline assumed the reclaimer's half
//     of the contract.
//   * tag-width truncation — the tagged backend's generation counter is
//     0 bits wide (WorldConfig::tag_bits = 0), so every generation is
//     congruent and the widened CAS defends nothing.
//
// Every mutant must be rejected by the explorer under recycling with a
// replayable witness and flagged by the reclamation rely/guarantee
// auditor; the drop-the-protect mutant must be ACCEPTED when recycling is
// off (the historical no-reuse mode masks it — recycling is load-bearing);
// and the unmutated bodies must verify under all three backends.
//
// The stack corpus starts from a pre-populated stack (top → B(20) → A(10),
// seeded in init() and mirrored by the spec's initial abstract state) so
// the two-pops-then-reuse race needs no setup interleavings.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cal/specs/queue_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/rg.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

namespace core = objects::core;
using objects::MemOrder;
using runtime::ReclaimPolicy;

Value iv(std::int64_t x) { return Value::integer(x); }

/// CentralStackSpec (final, so wrapped rather than subclassed) whose
/// initial abstract state matches the seeded concrete stack: A(10) below
/// B(20) — contents top-last.
class SeededStackSpec final : public SequentialSpec {
 public:
  explicit SeededStackSpec(Symbol object) : inner_(object) {}

  [[nodiscard]] SpecState initial() const override { return {10, 20}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId tid, Symbol object, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override {
    return inner_.step(state, tid, object, method, arg, ret);
  }

 private:
  CentralStackSpec inner_;
};

/// One pop attempt with the protect dropped: the top read is a plain
/// load, so no hazard slot or tag record covers h while it is
/// dereferenced and CASed. Identical to core::stack_pop_attempt in every
/// other respect — and byte-for-byte indistinguishable from it in a
/// non-recycling world, where protect *is* load and release is free.
core::StackPopOutcome pop_attempt_drop_protect(SimEnv& env,
                                               const core::StackRefs& s,
                                               Symbol name, ThreadId tid) {
  static const Symbol kPop{"pop"};
  auto failed = [&] {
    return CaElement::singleton(
        name, Operation::make(tid, name, kPop, Value::unit(),
                              Value::pair(false, 0)));
  };
  const SimEnv::Word h = env.load(s.top, 0, MemOrder::kAcquire);  // MUTANT
  if (h == objects::kNullRef) {
    env.emit(failed);
    return {core::StackPop::kEmpty, 0};
  }
  const SimEnv::Word next = env.load_frozen(h, core::kCellNext);
  if (env.cas(s.top, 0, h, next, MemOrder::kAcqRel)) {
    const SimEnv::Word v = env.load_frozen(h, core::kCellData);
    env.retire(h, core::kCellCells);
    env.emit([&] {
      return CaElement::singleton(
          name, Operation::make(tid, name, kPop, Value::unit(),
                                Value::pair(true, v)));
    });
    return {core::StackPop::kGot, v};
  }
  env.emit(failed);
  return {core::StackPop::kLost, 0};
}

/// The single-attempt central stack seeded with two nodes, optionally
/// running the drop-the-protect pop body over the same cells.
class SeededStack final : public EnvSimObject {
 public:
  SeededStack(Symbol name, bool drop_protect)
      : EnvSimObject(0), name_(name), drop_protect_(drop_protect) {}

  void init(World& world) override {
    refs_.top = world.alloc_global(1);
    const Addr a = world.alloc_global(core::kCellCells);
    const Addr b = world.alloc_global(core::kCellCells);
    world.write(a + core::kCellData, 10);
    world.write(a + core::kCellNext, objects::kNullRef);
    world.write(b + core::kCellData, 20);
    world.write(b + core::kCellNext, static_cast<Word>(a));
    world.write(static_cast<Addr>(refs_.top), static_cast<Word>(b));
  }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    static const Symbol kPush{"push"};
    const Call& call = current_call(world, t);
    if (call.method == kPush) {
      const bool ok = core::stack_push_attempt(env, refs_, name_, t.tid,
                                               call.arg.as_int());
      return {Status::kDone, Value::boolean(ok)};
    }
    const core::StackPopOutcome r =
        drop_protect_ ? pop_attempt_drop_protect(env, refs_, name_, t.tid)
                      : core::stack_pop_attempt(env, refs_, name_, t.tid);
    if (r.kind == core::StackPop::kGot) {
      return {Status::kDone, Value::pair(true, r.value)};
    }
    return {Status::kDone, Value::pair(false, 0)};
  }

 private:
  Symbol name_;
  bool drop_protect_;
  core::StackRefs refs_;
};

/// The ABA witness program: T0 can pause between reading the top and
/// CASing it while T1 pops both seeded nodes and pushes a fresh value,
/// recycling the very block T0 observed.
WorldConfig stack_config(const CaSpec* spec) {
  WorldConfig cfg;
  ThreadProgram p0;
  p0.tid = 0;
  p0.calls = {Call{0, Symbol{"pop"}, {}}, Call{0, Symbol{"pop"}, {}}};
  ThreadProgram p1;
  p1.tid = 1;
  p1.calls = {Call{0, Symbol{"pop"}, {}}, Call{0, Symbol{"pop"}, {}},
              Call{0, Symbol{"push"}, iv(30)}};
  cfg.programs = {p0, p1};
  cfg.object_names = {Symbol{"S"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 8;
  return cfg;
}

ExploreResult explore_stack(const WorldConfig& cfg, bool drop_protect,
                            const TransitionAuditor* auditor = nullptr) {
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SeededStack>(Symbol{"S"}, drop_protect));
  Explorer ex(cfg, std::move(objects));
  if (auditor != nullptr) ex.set_auditor(auditor);
  return ex.run();
}

// --- drop-the-protect ------------------------------------------------------

TEST(AbaMutants, DropProtectUnderHpRecyclingViolatesWithReplayableWitness) {
  auto seq = std::make_shared<SeededStackSpec>(Symbol{"S"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = stack_config(&spec);
  cfg.recycle_addresses = true;
  cfg.reclaim_policy = ReclaimPolicy::kHp;

  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SeededStack>(Symbol{"S"},
                                                  /*drop_protect=*/true));
  Explorer ex(cfg, std::move(objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  // The witness replays deterministically to the same violation.
  const ScheduleViolation& v = r.violations.front();
  ASSERT_FALSE(v.schedule.empty());
  World world = ex.replay(v.schedule);
  ASSERT_TRUE(world.violated());
  EXPECT_EQ(*world.violation(), v.what);
}

TEST(AbaMutants, DropProtectFlaggedByReclaimAuditor) {
  auto seq = std::make_shared<SeededStackSpec>(Symbol{"S"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = stack_config(&spec);
  cfg.recycle_addresses = true;
  cfg.reclaim_policy = ReclaimPolicy::kHp;

  ReclaimRgAuditor auditor;
  ExploreResult r = explore_stack(cfg, /*drop_protect=*/true, &auditor);
  ASSERT_FALSE(r.ok());
  // The audit fires at the promotion itself — before the corrupted stack
  // ever reaches the specification checks.
  EXPECT_NE(r.violations.front().what.find("recycled while"),
            std::string::npos)
      << r.violations.front().what;
}

TEST(AbaMutants, DropProtectAcceptedWithoutRecycling) {
  // The same mutant, same programs, recycling off: without address reuse
  // a plain load and a protect are indistinguishable, so the exploration
  // (wrongly, from the real machine's point of view) verifies — the
  // recycle-aware allocator is load-bearing for this whole corpus.
  auto seq = std::make_shared<SeededStackSpec>(Symbol{"S"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = stack_config(&spec);
  cfg.recycle_addresses = false;

  ExploreResult r = explore_stack(cfg, /*drop_protect=*/true);
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
  EXPECT_EQ(r.recycled_allocs, 0u);
}

// --- premature free --------------------------------------------------------

TEST(AbaMutants, PrematureFreeUnderEbrViolatesWithReplayableWitness) {
  // The *correct* body over a reclaimer that frees before the grace
  // period: the EBR pins the body relies on are ignored, the seeded block
  // recycles mid-read, and the same ABA appears.
  auto seq = std::make_shared<SeededStackSpec>(Symbol{"S"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = stack_config(&spec);
  cfg.recycle_addresses = true;
  cfg.reclaim_policy = ReclaimPolicy::kEbr;
  cfg.premature_free = true;

  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SeededStack>(Symbol{"S"},
                                                  /*drop_protect=*/false));
  Explorer ex(cfg, std::move(objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  const ScheduleViolation& v = r.violations.front();
  World world = ex.replay(v.schedule);
  ASSERT_TRUE(world.violated());
  EXPECT_EQ(*world.violation(), v.what);
}

TEST(AbaMutants, PrematureFreeFlaggedByReclaimAuditor) {
  auto seq = std::make_shared<SeededStackSpec>(Symbol{"S"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = stack_config(&spec);
  cfg.recycle_addresses = true;
  cfg.reclaim_policy = ReclaimPolicy::kEbr;
  cfg.premature_free = true;

  ReclaimRgAuditor auditor;
  ExploreResult r = explore_stack(cfg, /*drop_protect=*/false, &auditor);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("recycled while"),
            std::string::npos)
      << r.violations.front().what;
}

// --- tag-width truncation --------------------------------------------------

TEST(AbaMutants, TagTruncationUnderTaggedViolates) {
  // tag_bits = 0: every generation is congruent, the widened CAS degrades
  // to a plain value compare, and the recycled block slips through. The
  // tag_bits = 16 control is CorrectStackVerifiesUnderAllBackends below.
  auto seq = std::make_shared<SeededStackSpec>(Symbol{"S"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = stack_config(&spec);
  cfg.recycle_addresses = true;
  cfg.reclaim_policy = ReclaimPolicy::kTagged;
  cfg.tag_bits = 0;

  ExploreResult r = explore_stack(cfg, /*drop_protect=*/false);
  ASSERT_FALSE(r.ok());
}

TEST(AbaMutants, TagTruncationFlaggedByReclaimAuditor) {
  auto seq = std::make_shared<SeededStackSpec>(Symbol{"S"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = stack_config(&spec);
  cfg.recycle_addresses = true;
  cfg.reclaim_policy = ReclaimPolicy::kTagged;
  cfg.tag_bits = 0;

  ReclaimRgAuditor auditor;
  ExploreResult r = explore_stack(cfg, /*drop_protect=*/false, &auditor);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("tag truncation"),
            std::string::npos)
      << r.violations.front().what;
}

// --- unmutated controls ----------------------------------------------------

TEST(AbaMutants, CorrectStackVerifiesUnderAllBackends) {
  for (ReclaimPolicy policy :
       {ReclaimPolicy::kEbr, ReclaimPolicy::kHp, ReclaimPolicy::kTagged}) {
    auto seq = std::make_shared<SeededStackSpec>(Symbol{"S"});
    SeqAsCaSpec spec(seq);
    WorldConfig cfg = stack_config(&spec);
    cfg.recycle_addresses = true;
    cfg.reclaim_policy = policy;

    ExploreResult r = explore_stack(cfg, /*drop_protect=*/false);
    EXPECT_TRUE(r.ok()) << runtime::reclaim_policy_name(policy) << ": "
                        << r.violations.front().what;
    if (policy == ReclaimPolicy::kTagged) {
      // Tagged promotes retired blocks immediately: the witness program
      // really does recycle, so these controls are not passing vacuously.
      EXPECT_GT(r.recycled_allocs, 0u);
    }
  }
}

TEST(AbaMutants, CorrectStackCleanUnderReclaimAuditor) {
  for (ReclaimPolicy policy :
       {ReclaimPolicy::kEbr, ReclaimPolicy::kHp, ReclaimPolicy::kTagged}) {
    auto seq = std::make_shared<SeededStackSpec>(Symbol{"S"});
    SeqAsCaSpec spec(seq);
    WorldConfig cfg = stack_config(&spec);
    cfg.recycle_addresses = true;
    cfg.reclaim_policy = policy;

    ReclaimRgAuditor auditor;
    ExploreResult r = explore_stack(cfg, /*drop_protect=*/false, &auditor);
    EXPECT_TRUE(r.ok()) << runtime::reclaim_policy_name(policy) << ": "
                        << r.violations.front().what;
  }
}

TEST(AbaMutants, MsQueueVerifiesUnderAllBackendsWithRecycling) {
  // The MS-queue control exercises the full protect budget (head, tail,
  // and next observations live at once) and, under kTagged, the
  // validate() empty-path recheck that a stripped compare cannot express.
  for (ReclaimPolicy policy :
       {ReclaimPolicy::kEbr, ReclaimPolicy::kHp, ReclaimPolicy::kTagged}) {
    auto seq = std::make_shared<QueueSpec>(Symbol{"Q"});
    SeqAsCaSpec spec(seq);
    WorldConfig cfg;
    ThreadProgram p0;
    p0.tid = 0;
    p0.calls = {Call{0, Symbol{"enq"}, iv(7)}, Call{0, Symbol{"deq"}, {}}};
    ThreadProgram p1;
    p1.tid = 1;
    p1.calls = {Call{0, Symbol{"deq"}, {}}, Call{0, Symbol{"enq"}, iv(8)}};
    cfg.programs = {p0, p1};
    cfg.object_names = {Symbol{"Q"}};
    cfg.spec = &spec;
    cfg.record_trace = true;
    cfg.heap_cells = 32;
    cfg.global_cells = 8;
    cfg.recycle_addresses = true;
    cfg.reclaim_policy = policy;

    std::vector<std::unique_ptr<SimObject>> objects;
    objects.push_back(std::make_unique<SimMsQueue>(Symbol{"Q"}, 2));
    Explorer ex(cfg, std::move(objects));
    ExploreResult r = ex.run();
    EXPECT_TRUE(r.ok()) << runtime::reclaim_policy_name(policy) << ": "
                        << r.violations.front().what;
  }
}

// --- retire-size mismatch --------------------------------------------------

/// An object that allocates three cells and retires two of them — the
/// size-binned-reclaimer corruption the retire contract forbids.
class ShrinkingRetire final : public EnvSimObject {
 public:
  ShrinkingRetire() : EnvSimObject(0) {}

  void init(World& world) override {
    slot_ = static_cast<SimEnv::Word>(world.alloc_global(1));
  }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& /*world*/,
                                ThreadCtx& /*t*/) const override {
    const SimEnv::Word n = env.alloc(3);
    env.store(slot_, 0, n);  // publish (the attempt's one yield op)
    env.retire(n, 2);        // MUTANT: allocated 3, retires 2
    return {Status::kDone, Value::unit()};
  }

 private:
  SimEnv::Word slot_ = 0;
};

TEST(AbaMutants, RetireSizeMismatchReported) {
  // The check fires in every mode, recycling or not (a size-binned
  // reclaimer corrupts either way); run the cheap non-recycling one.
  WorldConfig cfg;
  ThreadProgram p0;
  p0.tid = 0;
  p0.calls = {Call{0, Symbol{"op"}, {}}};
  cfg.programs = {p0};
  cfg.object_names = {Symbol{"X"}};
  cfg.heap_cells = 8;
  cfg.global_cells = 4;

  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<ShrinkingRetire>());
  Explorer ex(cfg, std::move(objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("retires block"),
            std::string::npos)
      << r.violations.front().what;
}

}  // namespace
}  // namespace cal::sched
