// Multi-object worlds: two independent exchangers explored together and
// checked against the union of their specifications — the executable form
// of §2's "static number of concurrent objects" ownership discipline.
#include <gtest/gtest.h>

#include <memory>

#include "cal/cal_checker.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/union_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

struct TwoExchangerWorld {
  WorldConfig config;
  std::shared_ptr<UnionCaSpec> spec;
  std::vector<std::unique_ptr<SimObject>> objects;
};

TwoExchangerWorld make_world(bool record = false) {
  TwoExchangerWorld w;
  std::vector<UnionCaSpec::Entry> entries;
  entries.emplace_back(Symbol{"E1"}, std::make_shared<ExchangerSpec>(
                                         Symbol{"E1"}, Symbol{"exchange"}));
  entries.emplace_back(Symbol{"E2"}, std::make_shared<ExchangerSpec>(
                                         Symbol{"E2"}, Symbol{"exchange"}));
  w.spec = std::make_shared<UnionCaSpec>(std::move(entries));
  w.objects.push_back(std::make_unique<SimExchanger>(Symbol{"E1"}));
  w.objects.push_back(std::make_unique<SimExchanger>(Symbol{"E2"}));
  // Two threads, each exchanging on E1 and then on E2.
  for (ThreadId t = 0; t < 2; ++t) {
    ThreadProgram p;
    p.tid = t;
    p.calls = {Call{0, Symbol{"exchange"}, iv(10 + t)},
               Call{1, Symbol{"exchange"}, iv(20 + t)}};
    w.config.programs.push_back(std::move(p));
  }
  w.config.object_names = {Symbol{"E1"}, Symbol{"E2"}};
  w.config.spec = w.spec.get();
  w.config.record_history = record;
  w.config.record_trace = true;
  w.config.heap_cells = 8;
  w.config.global_cells = 8;
  return w;
}

TEST(MultiObject, TwoExchangersAuditClean) {
  TwoExchangerWorld w = make_world();
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
  EXPECT_GT(r.states, 100u);
}

TEST(MultiObject, EnumeratedHistoriesPassUnionSpec) {
  TwoExchangerWorld w = make_world(/*record=*/true);
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  opts.max_states = 2000000;  // generous; this config enumerates ~1.1M
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();
  ASSERT_TRUE(r.ok()) << r.violations.front().what;
  ASSERT_FALSE(r.exhausted);
  ASSERT_GT(r.histories.size(), 2u);
  CalChecker checker(*w.spec);
  bool saw_both_objects_swap = false;
  for (const History& h : r.histories) {
    EXPECT_TRUE(checker.check(h)) << h.to_string();
    bool e1_swap = false;
    bool e2_swap = false;
    for (const OpRecord& rec : h.operations()) {
      if (!rec.op.ret || !rec.op.ret->pair_ok()) continue;
      e1_swap |= rec.op.object == Symbol{"E1"};
      e2_swap |= rec.op.object == Symbol{"E2"};
    }
    saw_both_objects_swap |= e1_swap && e2_swap;
  }
  EXPECT_TRUE(saw_both_objects_swap)
      << "some interleaving should swap on both objects";
}

TEST(MultiObject, EnumerationRespectsStateCap) {
  TwoExchangerWorld w = make_world();
  ExploreOptions opts;
  opts.merge_states = false;
  opts.max_states = 50;
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.exhausted);
  EXPECT_LE(r.states, 50u);
}

}  // namespace
}  // namespace cal::sched
