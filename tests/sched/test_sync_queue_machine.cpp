// Exhaustive verification of the dual synchronous queue — the paper's
// second client, model-checked against its CA-spec. The simulated object
// runs the same sync_queue_core body as the real runtime; mutants are
// injected through SimHooks.
#include <gtest/gtest.h>

#include <memory>

#include "cal/cal_checker.hpp"
#include "cal/agree.hpp"
#include "cal/replay.hpp"
#include "cal/specs/sync_queue_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

using objects::core::SyncQueuePc;

Value iv(std::int64_t x) { return Value::integer(x); }

struct SqWorld {
  WorldConfig config;
  SyncQueueSpec spec{Symbol{"SQ"}};
  SimSyncQueue* object = nullptr;
  std::vector<std::unique_ptr<SimObject>> objects;
};

SqWorld make_world(std::size_t putters, std::size_t takers,
                   std::size_t retry_bound = 1, bool record = false) {
  SqWorld w;
  auto object = std::make_unique<SimSyncQueue>(Symbol{"SQ"}, retry_bound);
  w.object = object.get();
  w.objects.push_back(std::move(object));
  ThreadId tid = 0;
  for (std::size_t i = 0; i < putters; ++i, ++tid) {
    ThreadProgram p;
    p.tid = tid;
    p.calls = {Call{0, Symbol{"put"}, iv(10 * (tid + 1))}};
    w.config.programs.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < takers; ++i, ++tid) {
    ThreadProgram p;
    p.tid = tid;
    p.calls = {Call{0, Symbol{"take"}, Value::unit()}};
    w.config.programs.push_back(std::move(p));
  }
  w.config.object_names = {Symbol{"SQ"}};
  w.config.spec = &w.spec;
  w.config.record_history = record;
  w.config.record_trace = true;
  w.config.heap_cells = 16;
  w.config.global_cells = 8;
  return w;
}

TEST(SyncQueueMachine, OnePutterOneTakerAuditClean) {
  SqWorld w = make_world(1, 1);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
  EXPECT_TRUE(r.events & (1ull << core::kEventPairing))
      << "no interleaving paired the put with the take";
}

TEST(SyncQueueMachine, TwoPuttersOneTakerAuditClean) {
  SqWorld w = make_world(2, 1);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
}

TEST(SyncQueueMachine, TwoPuttersTwoTakersAuditClean) {
  // retry_bound 0 keeps the 4-thread state space test-suite sized (a
  // thread that loses a race is truncated with its operation pending); the
  // benchmark harness explores deeper configurations.
  SqWorld w = make_world(2, 2, /*retry_bound=*/0);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
}

TEST(SyncQueueMachine, SameModeOnlyNeverPairs) {
  SqWorld w = make_world(2, 0);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
  EXPECT_FALSE(r.events & (1ull << core::kEventPairing));
}

TEST(SyncQueueMachine, EnumeratedHistoriesAllCaLinearizable) {
  SqWorld w = make_world(1, 1, 1, /*record=*/true);
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();
  ASSERT_TRUE(r.ok()) << r.violations.front().what;
  ASSERT_GT(r.histories.size(), 1u);
  CalChecker checker(w.spec);
  bool saw_handoff = false;
  for (std::size_t i = 0; i < r.histories.size(); ++i) {
    const History& h = r.histories[i];
    EXPECT_TRUE(checker.check(h)) << h.to_string();
    AgreeResult agree = agrees_with(h.drop_pending(), r.traces[i]);
    // Truncated executions leave pending ops; only fully complete ones
    // must agree exactly with the final trace.
    if (h.complete()) {
      EXPECT_TRUE(agree) << agree.reason;
    }
    EXPECT_TRUE(replay_ca(r.traces[i], w.spec));
    for (const OpRecord& rec : h.operations()) {
      if (rec.op.ret && rec.op.method == Symbol{"put"} &&
          rec.op.ret->kind() == Value::Kind::kBool && rec.op.ret->as_bool()) {
        saw_handoff = true;
      }
    }
  }
  EXPECT_TRUE(saw_handoff);
}

TEST(SyncQueueMachine, MutantWrongTakeValueCaught) {
  // The fulfilling taker responds with a junk value instead of the value
  // it logged — L2 must fire. Injected as a respond hook keyed on the
  // fulfiller's return point (puts return booleans there, so the pair
  // check pins it to the taker).
  SqWorld w = make_world(1, 1);
  SimHooks hooks;
  hooks.respond = [](const ThreadCtx& t, Value ret) {
    if (t.pc == SyncQueuePc::kFulfillReturn &&
        ret.kind() == Value::Kind::kPair) {
      return Value::pair(true, 424242);
    }
    return ret;
  };
  w.object->set_hooks(std::move(hooks));
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("424242"), std::string::npos);
}

TEST(SyncQueueMachine, MutantMissingPairLogCaught) {
  // Forgets to log the pairing element (drops the paper's auxiliary
  // assignment at the fulfilling CAS): the emit hook suppresses the
  // two-operation pair element.
  SqWorld w = make_world(1, 1);
  SimHooks hooks;
  hooks.emit = [](CaElement& e) { return e.size() != 2; };
  w.object->set_hooks(std::move(hooks));
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("never logged"),
            std::string::npos)
      << r.violations.front().what;
}

}  // namespace
}  // namespace cal::sched
