// Exhaustive verification of the dual synchronous queue — the paper's
// second client, model-checked against its CA-spec.
#include <gtest/gtest.h>

#include <memory>

#include "cal/cal_checker.hpp"
#include "cal/agree.hpp"
#include "cal/replay.hpp"
#include "cal/specs/sync_queue_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/machines/sync_queue_machine.hpp"

namespace cal::sched {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

struct SqWorld {
  WorldConfig config;
  SyncQueueSpec spec{Symbol{"SQ"}};
  std::vector<std::unique_ptr<SimObject>> objects;
};

SqWorld make_world(std::size_t putters, std::size_t takers,
                   std::size_t retry_bound = 1, bool record = false) {
  SqWorld w;
  w.objects.push_back(
      std::make_unique<SyncQueueMachine>(Symbol{"SQ"}, retry_bound));
  ThreadId tid = 0;
  for (std::size_t i = 0; i < putters; ++i, ++tid) {
    ThreadProgram p;
    p.tid = tid;
    p.calls = {Call{0, Symbol{"put"}, iv(10 * (tid + 1))}};
    w.config.programs.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < takers; ++i, ++tid) {
    ThreadProgram p;
    p.tid = tid;
    p.calls = {Call{0, Symbol{"take"}, Value::unit()}};
    w.config.programs.push_back(std::move(p));
  }
  w.config.object_names = {Symbol{"SQ"}};
  w.config.spec = &w.spec;
  w.config.record_history = record;
  w.config.record_trace = true;
  w.config.heap_cells = 16;
  w.config.global_cells = 8;
  return w;
}

TEST(SyncQueueMachine, OnePutterOneTakerAuditClean) {
  SqWorld w = make_world(1, 1);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
  EXPECT_TRUE(r.events & (1ull << SyncQueueMachine::kEventPairing))
      << "no interleaving paired the put with the take";
}

TEST(SyncQueueMachine, TwoPuttersOneTakerAuditClean) {
  SqWorld w = make_world(2, 1);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
}

TEST(SyncQueueMachine, TwoPuttersTwoTakersAuditClean) {
  // retry_bound 0 keeps the 4-thread state space test-suite sized (a
  // thread that loses a race is truncated with its operation pending); the
  // benchmark harness explores deeper configurations.
  SqWorld w = make_world(2, 2, /*retry_bound=*/0);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
}

TEST(SyncQueueMachine, SameModeOnlyNeverPairs) {
  SqWorld w = make_world(2, 0);
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
  EXPECT_FALSE(r.events & (1ull << SyncQueueMachine::kEventPairing));
}

TEST(SyncQueueMachine, EnumeratedHistoriesAllCaLinearizable) {
  SqWorld w = make_world(1, 1, 1, /*record=*/true);
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  Explorer ex(w.config, std::move(w.objects), opts);
  ExploreResult r = ex.run();
  ASSERT_TRUE(r.ok()) << r.violations.front().what;
  ASSERT_GT(r.histories.size(), 1u);
  CalChecker checker(w.spec);
  bool saw_handoff = false;
  for (std::size_t i = 0; i < r.histories.size(); ++i) {
    const History& h = r.histories[i];
    EXPECT_TRUE(checker.check(h)) << h.to_string();
    AgreeResult agree = agrees_with(h.drop_pending(), r.traces[i]);
    // Truncated executions leave pending ops; only fully complete ones
    // must agree exactly with the final trace.
    if (h.complete()) {
      EXPECT_TRUE(agree) << agree.reason;
    }
    EXPECT_TRUE(replay_ca(r.traces[i], w.spec));
    for (const OpRecord& rec : h.operations()) {
      if (rec.op.ret && rec.op.method == Symbol{"put"} &&
          rec.op.ret->kind() == Value::Kind::kBool && rec.op.ret->as_bool()) {
        saw_handoff = true;
      }
    }
  }
  EXPECT_TRUE(saw_handoff);
}

/// Mutant: the fulfilling taker responds with its own register contents
/// instead of the value it logged — L2 must fire.
class WrongTakeValue final : public SimObject {
 public:
  explicit WrongTakeValue(Symbol name) : inner_(name, 1) {}
  void init(World& world) override { inner_.init(world); }
  StepResult step(World& world, ThreadCtx& t) const override {
    const Call& call =
        world.config().programs[t.program].calls[t.call_idx];
    if (t.pc == SyncQueueMachine::kRespondFulfiller &&
        call.method == Symbol{"take"}) {
      world.respond(t, Value::pair(true, 424242));
      return StepResult::ran();
    }
    return inner_.step(world, t);
  }

 private:
  SyncQueueMachine inner_;
};

TEST(SyncQueueMachine, MutantWrongTakeValueCaught) {
  SqWorld w = make_world(1, 1);
  w.objects.clear();
  w.objects.push_back(std::make_unique<WrongTakeValue>(Symbol{"SQ"}));
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("424242"), std::string::npos);
}

/// Mutant: forgets to log the pairing element (drops the paper's auxiliary
/// assignment at the fulfilling CAS).
class ForgetsPairLog final : public SimObject {
 public:
  explicit ForgetsPairLog(Symbol name) : inner_(name, 1) {}
  void init(World& world) override { inner_.init(world); }
  StepResult step(World& world, ThreadCtx& t) const override {
    if (t.pc == SyncQueueMachine::kFulfillCas) {
      const Addr h =
          static_cast<Addr>(t.regs[SyncQueueMachine::kRegHead]);
      const Addr node = world.alloc(t, 5);
      world.write(node + SyncQueueMachine::kData,
                  t.regs[SyncQueueMachine::kRegV]);
      world.write(node + SyncQueueMachine::kTid, t.tid);
      if (world.cas(h + SyncQueueMachine::kMatch, kNull, node)) {
        t.regs[SyncQueueMachine::kRegGot] =
            world.read(h + SyncQueueMachine::kData);
        t.pc = SyncQueueMachine::kUnlinkTop;  // bug: no log_pair
      } else {
        t.pc = SyncQueueMachine::kRetry;
      }
      return StepResult::ran();
    }
    return inner_.step(world, t);
  }

 private:
  SyncQueueMachine inner_;
};

TEST(SyncQueueMachine, MutantMissingPairLogCaught) {
  SqWorld w = make_world(1, 1);
  w.objects.clear();
  w.objects.push_back(std::make_unique<ForgetsPairLog>(Symbol{"SQ"}));
  Explorer ex(w.config, std::move(w.objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().what.find("never logged"),
            std::string::npos)
      << r.violations.front().what;
}

}  // namespace
}  // namespace cal::sched
