// Exhaustive small-bound exploration of the simulated bucket priority
// queue. A successful deleteMin has no fixed linearization point (the raw
// emitted 𝒯 can be spec-illegal even for correct runs — see
// objects/core/pq_core.hpp), so the concurrent explorations check terminal
// histories through the ExploreOptions::check_spec post-pass, like the
// immediate snapshot; the online element-wise replay (WorldConfig::spec)
// is only sound here for single-threaded programs, which the mutant
// replay test exploits for a deterministic counterexample schedule.
#include <gtest/gtest.h>

#include <memory>

#include "cal/cal_checker.hpp"
#include "cal/specs/priority_queue_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

constexpr std::size_t kBuckets = 3;

WorldConfig pq_config() {
  // Two threads keep the unmerged schedule tree exhaustive yet tractable;
  // the deleter racing the two inserts still reaches every outcome: empty
  // (count read before the first insert), the minimum (both published),
  // and the larger value alone (the scan passes bucket 0 before insert(0)
  // publishes — the very race that makes deleteMin's linearization point
  // future-dependent).
  WorldConfig cfg;
  ThreadProgram del{0, {Call{0, Symbol{"deleteMin"}, Value::unit()}}};
  ThreadProgram ins{1,
                    {Call{0, Symbol{"insert"}, iv(2)},
                     Call{0, Symbol{"insert"}, iv(0)}}};
  cfg.programs = {del, ins};
  cfg.object_names = {Symbol{"P"}};
  cfg.record_history = true;
  cfg.record_trace = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 1 + kBuckets;  // count + bucket tops
  return cfg;
}

/// The priority-ordering mutant: deleteMin scans the buckets from lowest
/// priority (highest value) downwards over the same cells, so it happily
/// removes a non-minimal element when a smaller one is published.
class ReversedScanPq final : public SimPriorityQueue {
 public:
  using SimPriorityQueue::SimPriorityQueue;

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    static const Symbol kInsert{"insert"};
    static const Symbol kDeleteMin{"deleteMin"};
    if (current_call(world, t).method == kInsert) {
      return SimPriorityQueue::attempt(env, world, t);
    }
    const core::PqRefs& q = refs();
    const objects::Word c = env.load(q.count, 0);
    if (c == 0) {
      env.emit([&] {
        return CaElement::singleton(
            name(), Operation::make(t.tid, name(), kDeleteMin,
                                    Value::unit(), Value::pair(false, 0)));
      });
      return {Status::kDone, Value::pair(false, 0)};
    }
    for (auto p = static_cast<objects::Word>(buckets()); p-- > 0;) {
      const objects::Word h = env.load(q.tops, p);
      if (h == objects::kNullRef) continue;
      const objects::Word next = env.load_frozen(h, core::kPqNodeNext);
      if (!env.cas(q.tops, p, h, next)) return {Status::kRetry, Value()};
      const objects::Word v = env.load_frozen(h, core::kPqNodeData);
      env.retire(h, core::kPqNodeCells);
      env.emit([&] {
        return CaElement::singleton(
            name(), Operation::make(t.tid, name(), kDeleteMin,
                                    Value::unit(), Value::pair(true, v)));
      });
      for (;;) {
        const objects::Word k = env.load(q.count, 0);
        if (env.cas(q.count, 0, k, k - 1)) break;
      }
      return {Status::kDone, Value::pair(true, v)};
    }
    return {Status::kRetry, Value()};
  }
};

TEST(PqMachine, ExhaustiveCalCheckAllVerdictsTrue) {
  PriorityQueueCaSpec spec(Symbol{"P"});
  WorldConfig cfg = pq_config();
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  opts.por = true;  // sound for terminal histories (DESIGN.md)
  opts.check_spec = &spec;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimPriorityQueue>(Symbol{"P"}, kBuckets,
                                                       /*retry_bound=*/1));
  Explorer ex(cfg, std::move(objects), opts);
  ExploreResult r = ex.run();
  ASSERT_TRUE(r.ok()) << (r.violations.empty()
                              ? r.check_failures.front()
                              : r.violations.front().what);
  ASSERT_EQ(r.history_verdicts.size(), r.histories.size());
  ASSERT_GT(r.histories.size(), 1u);
  // All three races are reachable: deleteMin finds the minimum, only the
  // larger value, or an empty queue.
  bool saw_min = false;
  bool saw_larger = false;
  bool saw_empty = false;
  for (std::size_t i = 0; i < r.histories.size(); ++i) {
    EXPECT_TRUE(r.history_verdicts[i]) << r.histories[i].to_string();
    // The order path and the engine agree on every terminal history.
    CalCheckResult order = CalChecker(spec).check(r.histories[i]);
    CalCheckOptions engine_only;
    engine_only.order_check = false;
    CalCheckResult engine =
        CalChecker(spec, engine_only).check(r.histories[i]);
    EXPECT_TRUE(order.ok) << r.histories[i].to_string();
    EXPECT_TRUE(engine.ok) << r.histories[i].to_string();
    for (const OpRecord& rec : r.histories[i].operations()) {
      if (rec.op.method != Symbol{"deleteMin"} || !rec.op.ret) continue;
      if (!rec.op.ret->pair_ok()) {
        saw_empty = true;
      } else if (rec.op.ret->pair_int() == 0) {
        saw_min = true;
      } else if (rec.op.ret->pair_int() == 2) {
        saw_larger = true;
      }
    }
  }
  EXPECT_TRUE(saw_min);
  EXPECT_TRUE(saw_larger);
  EXPECT_TRUE(saw_empty);
}

TEST(PqMachine, MutantCaughtByCalPostPassAndBothCheckers) {
  PriorityQueueCaSpec spec(Symbol{"P"});
  WorldConfig cfg = pq_config();
  ExploreOptions opts;
  opts.merge_states = false;
  opts.collect_terminals = true;
  opts.stop_on_first_violation = false;
  opts.por = true;
  opts.check_spec = &spec;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<ReversedScanPq>(Symbol{"P"}, kBuckets,
                                                     /*retry_bound=*/1));
  Explorer ex(cfg, std::move(objects), opts);
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok()) << "reversed-scan deleteMin must be caught";
  ASSERT_FALSE(r.check_failures.empty());
  // Re-check a failing terminal history through both membership paths:
  // the engine search and the polynomial order checker reject it alike.
  bool found_bad = false;
  for (std::size_t i = 0; i < r.history_verdicts.size(); ++i) {
    if (r.history_verdicts[i]) continue;
    found_bad = true;
    const History& bad = r.histories[i];
    CalCheckResult order = CalChecker(spec).check(bad);
    EXPECT_FALSE(order.ok) << bad.to_string();
    EXPECT_TRUE(order.order_checked) << bad.to_string();
    CalCheckOptions engine_only;
    engine_only.order_check = false;
    EXPECT_FALSE(CalChecker(spec, engine_only).check(bad).ok)
        << bad.to_string();
    break;
  }
  EXPECT_TRUE(found_bad);
}

TEST(PqMachine, MutantSequentialWitnessReplays) {
  // Single-threaded program, so the emitted trace order is the program
  // order and the online element-wise replay (WorldConfig::spec) is sound:
  // the mutant returns 2 with 0 present, L3 fires, and the recorded
  // schedule deterministically reproduces the violation.
  PriorityQueueCaSpec spec(Symbol{"P"});
  WorldConfig cfg;
  ThreadProgram p{0,
                  {Call{0, Symbol{"insert"}, iv(2)},
                   Call{0, Symbol{"insert"}, iv(0)},
                   Call{0, Symbol{"deleteMin"}, Value::unit()}}};
  cfg.programs = {p};
  cfg.object_names = {Symbol{"P"}};
  cfg.spec = &spec;
  cfg.record_trace = true;
  cfg.record_history = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 1 + kBuckets;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<ReversedScanPq>(Symbol{"P"}, kBuckets));
  Explorer ex(cfg, std::move(objects));
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  const ScheduleViolation& v = r.violations.front();
  ASSERT_FALSE(v.schedule.empty());
  World world = ex.replay(v.schedule);
  ASSERT_TRUE(world.violated());
  EXPECT_EQ(*world.violation(), v.what);
}

TEST(PqMachine, CorrectObjectSequentialOnlineReplayClean) {
  // Control for the mutant replay test: the genuine scan passes the same
  // single-threaded online audit.
  PriorityQueueCaSpec spec(Symbol{"P"});
  WorldConfig cfg;
  ThreadProgram p{0,
                  {Call{0, Symbol{"insert"}, iv(2)},
                   Call{0, Symbol{"insert"}, iv(0)},
                   Call{0, Symbol{"deleteMin"}, Value::unit()}}};
  cfg.programs = {p};
  cfg.object_names = {Symbol{"P"}};
  cfg.spec = &spec;
  cfg.record_trace = true;
  cfg.record_history = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 1 + kBuckets;
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimPriorityQueue>(Symbol{"P"}, kBuckets));
  Explorer ex(cfg, std::move(objects));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok()) << r.violations.front().what;
}

}  // namespace
}  // namespace cal::sched
