// The memory-model layer (sched/sim_memory.hpp) and its integration with
// the explorer:
//
//   * SimMemory TSO semantics in isolation: store-to-load forwarding from
//     the thread's own FIFO buffer, cross-thread invisibility before a
//     flush, FIFO drain order, seq_cst stores and CAS draining, and
//     buffered writes being part of the hashed state.
//
//   * SC-equivalence guard: the annotated bodies in objects/core/ use no
//     store weaker than seq_cst, so under TSO their buffers stay
//     permanently empty and the exploration must be *identical* to SC —
//     exact terminal-history sets in enumeration mode, matching verdicts /
//     events / terminal counts across the {1,2,8}-thread × {por,symmetry}
//     grid, and zero flush steps throughout.
//
//   * The ordering-sensitive mutant: the classic store-buffering litmus
//     (each thread sets its own flag with a *relaxed* store, then reads
//     the partner's). SC accepts it; TSO finds the both-read-zero
//     outcome, rejects it, and the violating schedule replays. Annotating
//     the store seq_cst repairs it under TSO — the distinction the whole
//     layer exists to check.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cal/specs/exchanger_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_env.hpp"
#include "sched/sim_memory.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {
namespace {

using objects::MemOrder;

Value iv(std::int64_t x) { return Value::integer(x); }

// ------------------------------------------------------------------ //
// SimMemory: TSO buffer semantics in isolation.

SimMemory tso_memory(std::size_t threads = 2) {
  return SimMemory(threads, /*heap_cells=*/8, /*global_cells=*/8,
                   MemoryModel::kTso);
}

TEST(SimMemoryTso, ScStoresIgnoreTheOrderAnnotation) {
  SimMemory m(2, 8, 8, MemoryModel::kSc);
  const Addr a = m.alloc_global(1);
  EXPECT_FALSE(m.store(0, a, 7, MemOrder::kRelaxed));
  EXPECT_EQ(m.read(a), 7);
  EXPECT_EQ(m.buffered_total(), 0u);
}

TEST(SimMemoryTso, BufferedStoreIsInvisibleToOtherThreads) {
  SimMemory m = tso_memory();
  const Addr a = m.alloc_global(1);
  EXPECT_TRUE(m.store(0, a, 7, MemOrder::kRelease));
  // The writer forwards from its own buffer; everyone else sees memory.
  EXPECT_EQ(m.load(0, a, MemOrder::kAcquire), 7);
  EXPECT_EQ(m.load(1, a, MemOrder::kSeqCst), 0);
  EXPECT_EQ(m.read(a), 0);  // model-oblivious observers see flushed memory
  EXPECT_EQ(m.buffer_size(0), 1u);
  EXPECT_EQ(m.buffered_total(), 1u);
  m.flush_one(0);
  EXPECT_EQ(m.load(1, a, MemOrder::kAcquire), 7);
  EXPECT_EQ(m.buffered_total(), 0u);
}

TEST(SimMemoryTso, ForwardingReturnsTheNewestOwnEntry) {
  SimMemory m = tso_memory();
  const Addr a = m.alloc_global(1);
  EXPECT_TRUE(m.store(0, a, 1, MemOrder::kRelaxed));
  EXPECT_TRUE(m.store(0, a, 2, MemOrder::kRelaxed));
  EXPECT_EQ(m.load(0, a, MemOrder::kAcquire), 2);  // newest wins
  // Flushes apply oldest-first: memory passes through 1 before 2.
  EXPECT_EQ(m.flush_addr(0), a);
  m.flush_one(0);
  EXPECT_EQ(m.read(a), 1);
  m.flush_one(0);
  EXPECT_EQ(m.read(a), 2);
}

TEST(SimMemoryTso, FlushAndDrainAreFifoAcrossAddresses) {
  SimMemory m = tso_memory();
  const Addr a = m.alloc_global(1);
  const Addr b = m.alloc_global(1);
  EXPECT_TRUE(m.store(0, a, 10, MemOrder::kRelaxed));
  EXPECT_TRUE(m.store(0, b, 20, MemOrder::kRelaxed));
  EXPECT_EQ(m.flush_addr(0), a);
  m.flush_one(0);
  EXPECT_EQ(m.read(a), 10);
  EXPECT_EQ(m.read(b), 0);
  m.drain(0);
  EXPECT_EQ(m.read(b), 20);
  EXPECT_EQ(m.buffered_total(), 0u);
}

TEST(SimMemoryTso, SeqCstStoreDrainsTheIssuersBuffer) {
  SimMemory m = tso_memory();
  const Addr a = m.alloc_global(1);
  const Addr b = m.alloc_global(1);
  EXPECT_TRUE(m.store(0, a, 1, MemOrder::kRelaxed));
  EXPECT_FALSE(m.store(0, b, 2, MemOrder::kSeqCst));
  EXPECT_EQ(m.buffer_size(0), 0u);
  EXPECT_EQ(m.read(a), 1);
  EXPECT_EQ(m.read(b), 2);
}

TEST(SimMemoryTso, CasDrainsTheIssuersBufferFirst) {
  SimMemory m = tso_memory();
  const Addr a = m.alloc_global(1);
  EXPECT_TRUE(m.store(0, a, 5, MemOrder::kRelaxed));
  // Even a relaxed CAS flushes first (locked RMWs drain on x86-TSO), so
  // it observes the thread's own buffered value in memory.
  EXPECT_TRUE(m.cas(0, a, 5, 6, MemOrder::kRelaxed));
  EXPECT_EQ(m.buffer_size(0), 0u);
  EXPECT_EQ(m.read(a), 6);
}

TEST(SimMemoryTso, AnotherThreadsBufferDoesNotDrain) {
  SimMemory m = tso_memory();
  const Addr a = m.alloc_global(1);
  EXPECT_TRUE(m.store(0, a, 5, MemOrder::kRelaxed));
  // Thread 1's CAS sees memory (0), not thread 0's pending write.
  EXPECT_FALSE(m.cas(1, a, 5, 6, MemOrder::kSeqCst));
  EXPECT_EQ(m.buffer_size(0), 1u);
}

TEST(SimMemoryTso, BufferedWritesAreStateAndHashedState) {
  SimMemory a = tso_memory();
  SimMemory b = tso_memory();
  const Addr cell = a.alloc_global(1);
  (void)b.alloc_global(1);
  EXPECT_EQ(a, b);
  ASSERT_TRUE(a.store(0, cell, 9, MemOrder::kRelaxed));
  // Same flushed memory, different pending writes: different states.
  EXPECT_NE(a, b);
  std::vector<std::int64_t> ea;
  std::vector<std::int64_t> eb;
  a.encode(ea);
  b.encode(eb);
  EXPECT_NE(ea, eb);
  a.flush_one(0);
  b.write(cell, 9);
  EXPECT_EQ(a, b);  // converged after the flush
}

// ------------------------------------------------------------------ //
// SC-equivalence guard over the annotated corpus bodies.

std::string serialize(const History& h) {
  std::string out;
  for (const Action& a : h.actions()) {
    out += a.to_string();
    out += '\n';
  }
  return out;
}

std::vector<std::string> history_set(const ExploreResult& r) {
  std::vector<std::string> out;
  out.reserve(r.histories.size());
  for (const History& h : r.histories) out.push_back(serialize(h));
  std::sort(out.begin(), out.end());
  return out;
}

WorldConfig exchanger_config(const CaSpec* spec, std::size_t threads) {
  WorldConfig cfg;
  for (std::size_t i = 0; i < threads; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    p.calls = {Call{0, Symbol{"exchange"},
                    iv(static_cast<std::int64_t>(10 * (i + 1)))}};
    cfg.programs.push_back(std::move(p));
  }
  cfg.object_names = {Symbol{"E"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 16;
  cfg.global_cells = 8;
  return cfg;
}

std::vector<std::unique_ptr<SimObject>> one_exchanger() {
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
  return objects;
}

// The exchanger body's weakest store is seq_cst (it has none; all its
// publications are CASes), so TSO buffers never fill and the exact
// terminal-history set must match SC.
TEST(TsoEquivalence, ExchangerHistorySetExactUnderTso) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 3);
  cfg.record_history = true;

  ExploreOptions enumerate;
  enumerate.merge_states = false;
  enumerate.collect_terminals = true;
  enumerate.check_spec = &spec;

  ExploreResult sc;
  {
    Explorer ex(cfg, one_exchanger(), enumerate);
    sc = ex.run();
  }
  ExploreOptions tso = enumerate;
  tso.memory_model = MemoryModel::kTso;
  Explorer ex(cfg, one_exchanger(), tso);
  ExploreResult r = ex.run();

  EXPECT_TRUE(sc.ok());
  EXPECT_EQ(sc.ok(), r.ok());
  EXPECT_EQ(sc.events, r.events);
  EXPECT_EQ(history_set(sc), history_set(r));
  // The guard that makes the equivalence trivial: nothing ever buffered.
  EXPECT_EQ(r.flush_steps, 0u);
  EXPECT_EQ(r.buffered_max, 0u);
}

// Merged mode across the driver/reduction grid: an all-seq_cst-store body
// explores the same verdicts, events, and terminal counts under TSO.
TEST(TsoEquivalence, VerdictsMatchScAcrossThreadsAndReductions) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig cfg = exchanger_config(&spec, 3);

  ExploreResult sc;
  {
    Explorer ex(cfg, one_exchanger());
    sc = ex.run();
  }
  for (std::size_t threads : {1u, 2u, 8u}) {
    for (bool por : {false, true}) {
      for (bool symmetry : {false, true}) {
        ExploreOptions opts;
        opts.threads = threads;
        opts.por = por;
        opts.symmetry = symmetry;
        opts.memory_model = MemoryModel::kTso;
        Explorer ex(cfg, one_exchanger(), opts);
        ExploreResult r = ex.run();
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " por=" + std::to_string(por) +
                     " symmetry=" + std::to_string(symmetry));
        EXPECT_EQ(sc.ok(), r.ok());
        EXPECT_EQ(sc.events, r.events);
        EXPECT_EQ(sc.terminals, r.terminals);
        EXPECT_EQ(r.flush_steps, 0u);
        EXPECT_EQ(r.buffered_max, 0u);
      }
    }
  }
}

// Both selection surfaces reach the same machine: a TSO WorldConfig with
// default options explores identically to SC options + kTso override.
TEST(TsoEquivalence, ConfigLevelSelectionMatchesOptionsLevel) {
  ExchangerSpec spec(Symbol{"E"}, Symbol{"exchange"});
  WorldConfig via_cfg = exchanger_config(&spec, 2);
  via_cfg.memory_model = MemoryModel::kTso;
  ExploreResult a;
  {
    Explorer ex(via_cfg, one_exchanger());
    a = ex.run();
  }
  WorldConfig plain = exchanger_config(&spec, 2);
  ExploreOptions opts;
  opts.memory_model = MemoryModel::kTso;
  Explorer ex(plain, one_exchanger(), opts);
  ExploreResult b = ex.run();

  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.terminals, b.terminals);
}

// ------------------------------------------------------------------ //
// The ordering-sensitive mutant: the store-buffering litmus.

// sb(i) on a two-flag object: set flag[i], read flag[1-i], return it.
// The store's order is the mutation point — kRelaxed buffers under TSO,
// kSeqCst drains.
class SimStoreBuffering final : public EnvSimObject {
 public:
  SimStoreBuffering(Symbol name, MemOrder store_order)
      : EnvSimObject(0), name_(name), order_(store_order) {}

  void init(World& world) override { flags_ = world.alloc_global(2); }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    static const Symbol kSb{"sb"};
    const Call& call = current_call(world, t);
    const Word me = call.arg.as_int();
    env.store(flags_, me, 1, order_);
    const Word other = env.load(flags_, 1 - me, MemOrder::kAcquire);
    env.emit([&] {
      return CaElement::singleton(
          name_, Operation::make(t.tid, name_, kSb, Value::integer(me),
                                 Value::integer(other)));
    });
    return {Status::kDone, Value::integer(other)};
  }

 private:
  Symbol name_;
  MemOrder order_;
  Word flags_ = objects::kNullRef;
};

// Sequential spec of sb: setting your flag is the linearization point; you
// read 1 if the partner already linearized, and may read either value if
// not (its store may be concurrently visible). Both-read-zero has no
// linearization: whoever goes second must return 1.
class SbSpec final : public SequentialSpec {
 public:
  explicit SbSpec(Symbol object) : object_(object) {}

  [[nodiscard]] SpecState initial() const override { return {0, 0}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId /*tid*/, Symbol object, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override {
    static const Symbol kSb{"sb"};
    if (object != object_ || method != kSb) return {};
    const auto me = static_cast<std::size_t>(arg.as_int());
    if (me > 1) return {};
    SpecState next = state;
    next[me] = 1;
    std::vector<SeqStepResult> out;
    auto emit = [&](std::int64_t r) {
      Value v = Value::integer(r);
      if (!ret || *ret == v) out.push_back(SeqStepResult{next, std::move(v)});
    };
    emit(1);
    if (state[1 - me] == 0) emit(0);
    return out;
  }

 private:
  Symbol object_;
};

WorldConfig sb_config(const CaSpec* spec) {
  WorldConfig cfg;
  cfg.programs = {ThreadProgram{0, {Call{0, Symbol{"sb"}, iv(0)}}},
                  ThreadProgram{1, {Call{0, Symbol{"sb"}, iv(1)}}}};
  cfg.object_names = {Symbol{"L"}};
  cfg.spec = spec;
  cfg.record_trace = true;
  cfg.heap_cells = 4;
  cfg.global_cells = 4;
  return cfg;
}

std::vector<std::unique_ptr<SimObject>> sb_object(MemOrder store_order) {
  std::vector<std::unique_ptr<SimObject>> objects;
  objects.push_back(
      std::make_unique<SimStoreBuffering>(Symbol{"L"}, store_order));
  return objects;
}

TEST(StoreBufferingLitmus, RelaxedStoresAcceptedUnderSc) {
  auto seq = std::make_shared<SbSpec>(Symbol{"L"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = sb_config(&spec);
  Explorer ex(cfg, sb_object(MemOrder::kRelaxed));
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.flush_steps, 0u);
  EXPECT_EQ(r.buffered_max, 0u);
}

TEST(StoreBufferingLitmus, RelaxedStoresRejectedUnderTsoAndReplay) {
  auto seq = std::make_shared<SbSpec>(Symbol{"L"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = sb_config(&spec);
  ExploreOptions opts;
  opts.memory_model = MemoryModel::kTso;
  Explorer ex(cfg, sb_object(MemOrder::kRelaxed));
  Explorer tso(cfg, sb_object(MemOrder::kRelaxed), opts);
  ExploreResult sc = ex.run();
  ExploreResult r = tso.run();
  EXPECT_TRUE(sc.ok());  // the same binary accepts under SC
  ASSERT_FALSE(r.ok());  // TSO reaches the both-read-zero outcome
  ASSERT_FALSE(r.violations.empty());
  const ScheduleViolation& v = r.violations.front();
  ASSERT_FALSE(v.schedule.empty());

  // The witness replays deterministically to the same violation.
  World replayed = tso.replay(v.schedule);
  ASSERT_TRUE(replayed.violated());
  EXPECT_EQ(*replayed.violation(), v.what);
}

TEST(StoreBufferingLitmus, SeqCstStoresPassUnderTso) {
  auto seq = std::make_shared<SbSpec>(Symbol{"L"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = sb_config(&spec);
  ExploreOptions opts;
  opts.memory_model = MemoryModel::kTso;
  Explorer ex(cfg, sb_object(MemOrder::kSeqCst), opts);
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok());
  // seq_cst stores drain in place: no buffering, no flush transitions.
  EXPECT_EQ(r.flush_steps, 0u);
  EXPECT_EQ(r.buffered_max, 0u);
}

// Full TSO exploration of the relaxed litmus without a spec: flush
// transitions fire, the buffered high-water mark sees both pending
// writes, and every terminal state is drained (all_done requires it).
TEST(StoreBufferingLitmus, FlushTransitionsDrainEveryTerminal) {
  WorldConfig cfg = sb_config(nullptr);
  cfg.record_history = true;
  ExploreOptions opts;
  opts.memory_model = MemoryModel::kTso;
  opts.collect_terminals = true;
  Explorer ex(cfg, sb_object(MemOrder::kRelaxed), opts);
  ExploreResult r = ex.run();
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.terminals, 0u);
  EXPECT_GT(r.flush_steps, 0u);
  EXPECT_EQ(r.buffered_max, 2u);  // both threads' stores pending at once
}

// The parallel driver explores the same TSO machine: same verdict as the
// sequential one on the rejecting litmus, via the phase-1 split and
// walker flush paths.
TEST(StoreBufferingLitmus, ParallelDriverRejectsUnderTso) {
  auto seq = std::make_shared<SbSpec>(Symbol{"L"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = sb_config(&spec);
  ExploreOptions opts;
  opts.memory_model = MemoryModel::kTso;
  opts.threads = 8;
  Explorer ex(cfg, sb_object(MemOrder::kRelaxed), opts);
  ExploreResult r = ex.run();
  ASSERT_FALSE(r.ok());
  ASSERT_FALSE(r.violations.empty());
  // The parallel winner replays too.
  World replayed = ex.replay(r.violations.front().schedule);
  EXPECT_TRUE(replayed.violated());
}

// POR and symmetry compose with TSO on the rejecting litmus: the verdict
// survives reduction, and the reduced witness still replays.
TEST(StoreBufferingLitmus, ReductionsPreserveTheTsoVerdict) {
  auto seq = std::make_shared<SbSpec>(Symbol{"L"});
  SeqAsCaSpec spec(seq);
  WorldConfig cfg = sb_config(&spec);
  for (bool por : {false, true}) {
    for (bool symmetry : {false, true}) {
      ExploreOptions opts;
      opts.memory_model = MemoryModel::kTso;
      opts.por = por;
      opts.symmetry = symmetry;
      Explorer ex(cfg, sb_object(MemOrder::kRelaxed), opts);
      ExploreResult r = ex.run();
      SCOPED_TRACE("por=" + std::to_string(por) +
                   " symmetry=" + std::to_string(symmetry));
      ASSERT_FALSE(r.ok());
      World replayed = ex.replay(r.violations.front().schedule);
      EXPECT_TRUE(replayed.violated());
    }
  }
}

}  // namespace
}  // namespace cal::sched
