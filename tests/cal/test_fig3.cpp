// Figure 3 of the paper, executable: the impossibility of a useful
// sequential exchanger specification, and how CAL resolves it.
//
// Program P:  t1: exchange(3) || t2: exchange(4) || t3: exchange(7)
//   H1 — concurrent history where t1/t2 swap and t3 fails;
//   H2 — the CA-history shape (pairwise-overlapping swap, then failure);
//   H3 — a sequential "explanation" of H1, whose prefix H3' would commit a
//        partner-less successful exchange.
#include <gtest/gtest.h>

#include "cal/agree.hpp"
#include "cal/cal_checker.hpp"
#include "cal/lin_checker.hpp"
#include "cal/specs/exchanger_spec.hpp"

namespace cal {
namespace {

const Symbol kE{"E"};
const Symbol kEx{"exchange"};

Value iv(std::int64_t x) { return Value::integer(x); }

History h1() {
  // Fig. 3 (H1): t1 and t2 overlap; t3 overlaps both.
  return HistoryBuilder()
      .call(1, "E", "exchange", iv(3))
      .call(2, "E", "exchange", iv(4))
      .call(3, "E", "exchange", iv(7))
      .ret(1, Value::pair(true, 4))
      .ret(2, Value::pair(true, 3))
      .ret(3, Value::pair(false, 7))
      .history();
}

History h2() {
  // Fig. 3 (H2): the swap pair overlaps; t3 runs after, alone.
  return HistoryBuilder()
      .call(1, "E", "exchange", iv(3))
      .call(2, "E", "exchange", iv(4))
      .ret(1, Value::pair(true, 4))
      .ret(2, Value::pair(true, 3))
      .call(3, "E", "exchange", iv(7))
      .ret(3, Value::pair(false, 7))
      .history();
}

History h3() {
  // Fig. 3 (H3): a *sequential* history with the same operations — each
  // response precedes the next invocation.
  return HistoryBuilder()
      .op(1, "E", "exchange", iv(3), Value::pair(true, 4))
      .op(2, "E", "exchange", iv(4), Value::pair(true, 3))
      .op(3, "E", "exchange", iv(7), Value::pair(false, 7))
      .history();
}

History h3_prefix() {
  // H3': the prefix of H3 after t1's operation only — the undesirable
  // behavior any sequential spec explaining H1 must also admit.
  return HistoryBuilder()
      .op(1, "E", "exchange", iv(3), Value::pair(true, 4))
      .history();
}

TEST(Fig3, H1IsCaLinearizableWrtExchangerSpec) {
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  CalCheckResult r = checker.check(h1());
  ASSERT_TRUE(r) << "H1 must be explained by a CA-trace";
  ASSERT_TRUE(r.witness.has_value());
  // The witness contains the swap element and the singleton failure.
  ASSERT_EQ(r.witness->size(), 2u);
}

TEST(Fig3, H2IsCaLinearizableWrtExchangerSpec) {
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  EXPECT_TRUE(checker.check(h2()));
}

TEST(Fig3, H2TraceOrderPutsSwapBeforeFailure) {
  // In H2 the swap pair precedes t3 in real time, so every witness must
  // order the swap element first.
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  CalCheckResult r = checker.check(h2());
  ASSERT_TRUE(r);
  ASSERT_EQ(r.witness->size(), 2u);
  EXPECT_EQ((*r.witness)[0].size(), 2u);  // swap first
  EXPECT_EQ((*r.witness)[1].size(), 1u);  // failure second
}

TEST(Fig3, H3IsNotCaLinearizable) {
  // The sequential history H3 separates the two successful exchanges in
  // real time, so no CA-trace of the exchanger spec explains it: the spec
  // has no singleton successful element.
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(h3()));
}

TEST(Fig3, H3PrefixIsTheUndesiredBehavior) {
  // H3' — one thread exchanging without a partner — is rejected: this is
  // the prefix-closure argument of §3 made executable.
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(h3_prefix()));
}

// A candidate sequential specification that tries to explain H1 by
// admitting "lonely" successful exchanges: exchange(v) may return any
// (true, v') or (false, v). This is the "too loose" horn of §3's dilemma.
class LooseSeqExchangerSpec final : public SequentialSpec {
 public:
  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId, Symbol, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override {
    if (method != kEx || arg.kind() != Value::Kind::kInt) return {};
    std::vector<SeqStepResult> out;
    if (!ret) {
      out.push_back(SeqStepResult{state, Value::pair(false, arg.as_int())});
      return out;
    }
    if (ret->kind() == Value::Kind::kPair) {
      // Anything goes, as long as failures echo the argument.
      if (ret->pair_ok() || ret->pair_int() == arg.as_int()) {
        out.push_back(SeqStepResult{state, *ret});
      }
    }
    return out;
  }
};

// The "too restrictive" horn: only failures are admissible sequentially.
class StrictSeqExchangerSpec final : public SequentialSpec {
 public:
  [[nodiscard]] SpecState initial() const override { return {}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId, Symbol, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override {
    if (method != kEx || arg.kind() != Value::Kind::kInt) return {};
    const Value fail = Value::pair(false, arg.as_int());
    if (ret && *ret != fail) return {};
    return {SeqStepResult{state, fail}};
  }
};

TEST(Fig3, LooseSequentialSpecAcceptsH1ButAlsoTheUndesiredPrefix) {
  LooseSeqExchangerSpec loose;
  LinChecker checker(loose);
  EXPECT_TRUE(checker.check(h1()));        // explains H1...
  EXPECT_TRUE(checker.check(h3_prefix())); // ...but admits the lonely swap
}

TEST(Fig3, StrictSequentialSpecRejectsH1Entirely) {
  StrictSeqExchangerSpec strict;
  LinChecker checker(strict);
  EXPECT_FALSE(checker.check(h1()));  // too restrictive: no swaps at all
  // Only all-failure executions are linearizable under it:
  auto all_fail = HistoryBuilder()
                      .op(1, "E", "exchange", iv(3), Value::pair(false, 3))
                      .op(2, "E", "exchange", iv(4), Value::pair(false, 4))
                      .history();
  EXPECT_TRUE(checker.check(all_fail));
}

TEST(Fig3, CalSpecRejectsLonelySwapButAcceptsRealOnes) {
  // The resolution: the CA-spec accepts H1/H2 (true concurrency) and
  // rejects both horns' pathologies.
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  EXPECT_TRUE(checker.check(h1()));
  EXPECT_TRUE(checker.check(h2()));
  EXPECT_FALSE(checker.check(h3()));
  EXPECT_FALSE(checker.check(h3_prefix()));
}

TEST(Fig3, SwapWithMismatchedValuesIsRejected) {
  auto bad = HistoryBuilder()
                 .call(1, "E", "exchange", iv(3))
                 .call(2, "E", "exchange", iv(4))
                 .ret(1, Value::pair(true, 9))  // t1 received 9; nobody sent 9
                 .ret(2, Value::pair(true, 3))
                 .history();
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(bad));
}

TEST(Fig3, PendingThirdPartyCanBeDropped) {
  // t3's exchange never returns; completion may drop it (Def. 2).
  auto h = HistoryBuilder()
               .call(3, "E", "exchange", iv(7))
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(1, Value::pair(true, 4))
               .ret(2, Value::pair(true, 3))
               .history();
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  EXPECT_TRUE(checker.check(h));
}

TEST(Fig3, PendingPartnerCanBeCompleted) {
  // t2 never responds, but t1 claims a successful swap with value 4; the
  // only explanation completes t2's pending exchange(4) with (true, 3).
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(1, Value::pair(true, 4))
               .history();
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  CalCheckResult r = checker.check(h);
  ASSERT_TRUE(r);
  ASSERT_EQ(r.witness->size(), 1u);
  EXPECT_EQ((*r.witness)[0].size(), 2u);

  // With completion disabled the same history must be rejected.
  CalCheckOptions opts;
  opts.complete_pending = false;
  CalChecker strict(spec, opts);
  EXPECT_FALSE(strict.check(h));
}

}  // namespace
}  // namespace cal
