// Tests for the parallel-search substrate (cal/parallel): the
// work-stealing task pool and the sharded visited set. These are the
// tests the CI TSan job builds with -fsanitize=thread — they deliberately
// hammer the concurrent paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <vector>

#include "cal/parallel/sharded_set.hpp"
#include "cal/parallel/task_pool.hpp"

namespace cal::par {
namespace {

TEST(TaskPool, RunsEverySubmittedTask) {
  TaskPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1000);
}

TEST(TaskPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  TaskPool pool(2);
  pool.wait_idle();  // nothing submitted — must not block
  SUCCEED();
}

TEST(TaskPool, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(TaskPool, TasksMaySubmitSubtasksRecursively) {
  // A binary fan-out submitted from inside workers: 2^10 leaves. wait_idle
  // must cover transitively spawned tasks, not only the root submission.
  TaskPool pool(4);
  std::atomic<int> leaves{0};
  std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    pool.submit([&spawn, depth] { spawn(depth - 1); });
    pool.submit([&spawn, depth] { spawn(depth - 1); });
  };
  pool.submit([&] { spawn(10); });
  pool.wait_idle();
  EXPECT_EQ(leaves.load(), 1 << 10);
}

TEST(TaskPool, ReusableAcrossWaves) {
  TaskPool pool(3);
  std::atomic<int> ran{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), (wave + 1) * 100);
  }
}

TEST(ShardedStateSet, InsertDeduplicates) {
  ShardedStateSet set;
  EXPECT_TRUE(set.insert({1, 2, 3}));
  EXPECT_FALSE(set.insert({1, 2, 3}));
  EXPECT_TRUE(set.insert({1, 2, 4}));
  EXPECT_TRUE(set.contains({1, 2, 3}));
  EXPECT_FALSE(set.contains({9}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(ShardedStateSet, SingleShardStillWorks) {
  ShardedStateSet set(1);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_TRUE(set.insert({i}));
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_FALSE(set.insert({i}));
  EXPECT_EQ(set.size(), 100u);
}

TEST(ShardedStateSet, ConcurrentInsertersAgreeOnUniqueWins) {
  // 8 workers racing to insert overlapping key ranges; every key must be
  // won exactly once, so the number of successful inserts equals the
  // number of distinct keys.
  ShardedStateSet set;
  TaskPool pool(8);
  constexpr std::int64_t kKeys = 2000;
  std::atomic<std::int64_t> wins{0};
  for (int worker = 0; worker < 8; ++worker) {
    pool.submit([&, worker] {
      std::mt19937 rng(static_cast<unsigned>(worker));
      for (int n = 0; n < 5000; ++n) {
        const std::int64_t k =
            std::uniform_int_distribution<std::int64_t>(0, kKeys - 1)(rng);
        if (set.insert({k, k * 7, k * 31})) {
          wins.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.wait_idle();
  EXPECT_LE(wins.load(), kKeys);
  EXPECT_EQ(static_cast<std::size_t>(wins.load()), set.size());
}

TEST(ShardedStateSet, StressInsertAndContainsUnderContention) {
  ShardedStateSet set(16);
  TaskPool pool(8);
  std::atomic<bool> wrong{false};
  for (int worker = 0; worker < 8; ++worker) {
    pool.submit([&, worker] {
      for (std::int64_t i = 0; i < 3000; ++i) {
        const std::int64_t k = (worker * 3000 + i) % 1000;
        set.insert({k});
        if (!set.contains({k})) wrong.store(true);  // inserted keys persist
      }
    });
  }
  pool.wait_idle();
  EXPECT_FALSE(wrong.load());
  EXPECT_EQ(set.size(), 1000u);
}

}  // namespace
}  // namespace cal::par
