// Engine equivalence: all three checkers now run on the unified search
// core (src/cal/engine/), so every (threads ∈ {1, 2, 8}) × (exact vs
// fingerprint dedup) configuration must agree — on verdicts everywhere,
// and byte-for-byte on witnesses wherever the sequential driver runs.
// Lin and Interval gained the `threads` option in this refactor; this
// suite is what pins their parallel verdicts to the sequential ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/interval_lin.hpp"
#include "cal/lin_checker.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "cal/specs/sync_queue_spec.hpp"
#include "corpus.hpp"

namespace cal {
namespace {

const Symbol kE{"E"};
const Symbol kEx{"exchange"};
const Symbol kS{"S"};
const Symbol kQ{"Q"};

Value iv(std::int64_t x) { return Value::integer(x); }

constexpr std::size_t kThreadGrid[] = {1, 2, 8};

// ---------------------------------------------------------------------------
// Witness validity: a linearization must replay through the sequential
// spec (backtracking over outcome choices — specs may be nondeterministic).

bool replay_lin_from(const SequentialSpec& spec, const SpecState& state,
                     const std::vector<Operation>& ops, std::size_t i) {
  if (i == ops.size()) return true;
  const Operation& op = ops[i];
  for (const SeqStepResult& sr :
       spec.step(state, op.tid, op.object, op.method, op.arg, op.ret)) {
    if (replay_lin_from(spec, sr.next, ops, i + 1)) return true;
  }
  return false;
}

bool replay_lin(const SequentialSpec& spec,
                const std::vector<Operation>& witness) {
  return replay_lin_from(spec, spec.initial(), witness, 0);
}

// ---------------------------------------------------------------------------
// LinChecker across the full engine grid.

void expect_lin_grid_equivalent(const SequentialSpec& spec, const History& h,
                                std::optional<bool> expect = std::nullopt) {
  std::optional<bool> verdict;
  std::optional<std::vector<Operation>> sequential_witness;
  for (bool exact : {false, true}) {
    for (std::size_t threads : kThreadGrid) {
      LinCheckOptions opts;
      opts.threads = threads;
      opts.exact_visited = exact;
      LinChecker checker(spec, opts);
      LinCheckResult r = checker.check(h);
      if (!verdict) {
        verdict = r.ok;
      } else {
        ASSERT_EQ(r.ok, *verdict) << "exact=" << exact
                                  << " threads=" << threads
                                  << " diverged on\n"
                                  << h.to_string();
      }
      if (r.visited_states > 0) {
        EXPECT_GT(r.visited_bytes, 0u)
            << "exact=" << exact << " threads=" << threads;
      }
      if (r.ok) {
        ASSERT_TRUE(r.witness.has_value());
        EXPECT_TRUE(replay_lin(spec, *r.witness))
            << "witness does not replay, exact=" << exact
            << " threads=" << threads << "\n"
            << h.to_string();
        if (h.complete()) {
          // Every operation of a complete history must appear in the
          // linearization, with its recorded return value.
          std::vector<Operation> expected;
          for (const OpRecord& rec : h.operations()) expected.push_back(rec.op);
          std::vector<Operation> got = *r.witness;
          std::sort(expected.begin(), expected.end());
          std::sort(got.begin(), got.end());
          EXPECT_EQ(got, expected) << h.to_string();
        }
        if (threads == 1) {
          // The sequential driver is deterministic: exact and fingerprint
          // dedup walk the same order, so the witness is byte-identical.
          if (!sequential_witness) {
            sequential_witness = *r.witness;
          } else {
            EXPECT_EQ(*r.witness, *sequential_witness)
                << "sequential witness changed with exact=" << exact;
          }
        }
      }
    }
  }
  if (expect) {
    EXPECT_EQ(*verdict, *expect) << h.to_string();
  }
}

TEST(LinEngineEquivalence, HandcraftedStackHistories) {
  StackSpec spec(kS);
  expect_lin_grid_equivalent(spec, History{}, true);
  expect_lin_grid_equivalent(spec,
                             HistoryBuilder()
                                 .op(1, "S", "push", iv(1),
                                     Value::boolean(true))
                                 .op(2, "S", "pop", Value::unit(),
                                     Value::pair(true, 1))
                                 .history(),
                             true);
  expect_lin_grid_equivalent(spec,
                             HistoryBuilder()
                                 .op(1, "S", "push", iv(1),
                                     Value::boolean(true))
                                 .op(2, "S", "pop", Value::unit(),
                                     Value::pair(true, 2))
                                 .history(),
                             false);
  // Concurrent push/pop: both orders must be explored.
  expect_lin_grid_equivalent(spec,
                             HistoryBuilder()
                                 .call(1, "S", "push", iv(7))
                                 .call(2, "S", "pop")
                                 .ret(2, Value::pair(true, 7))
                                 .ret(1, Value::boolean(true))
                                 .history(),
                             true);
}

class LinEngineSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(LinEngineSeeds, GarbageStackRuns) {
  std::mt19937 rng(GetParam() + 100);
  StackSpec spec(kS);
  for (int round = 0; round < 3; ++round) {
    expect_lin_grid_equivalent(spec, garbage_stack_history(rng, 6));
  }
}

TEST_P(LinEngineSeeds, AgreesWithCalOverAdapter) {
  // Lin(S) and CAL(SeqAsCa(S)) decide the same membership problem; the
  // two policies must agree through the shared engine.
  std::mt19937 rng(GetParam() + 200);
  auto stack = std::make_shared<StackSpec>(kS);
  SeqAsCaSpec adapter(stack);
  for (int round = 0; round < 3; ++round) {
    const History h = garbage_stack_history(rng, 6);
    const bool lin = static_cast<bool>(LinChecker(*stack).check(h));
    const bool cal = static_cast<bool>(CalChecker(adapter).check(h));
    EXPECT_EQ(lin, cal) << h.to_string();
  }
}

TEST_P(LinEngineSeeds, PendingInvocations) {
  std::mt19937 rng(GetParam() + 300);
  StackSpec spec(kS);
  History h = garbage_stack_history(rng, 5);
  std::vector<Action> actions = h.actions();
  if (!actions.empty()) actions.pop_back();  // drop the last response
  const History pending{std::move(actions)};
  if (!pending.well_formed()) GTEST_SKIP();
  expect_lin_grid_equivalent(spec, pending);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinEngineSeeds, ::testing::Range(0u, 10u));

// ---------------------------------------------------------------------------
// IntervalLinChecker across the full engine grid.

void expect_interval_grid_equivalent(
    const IntervalSpec& spec, const History& h,
    std::optional<bool> expect = std::nullopt) {
  const std::vector<OpRecord> recs = h.operations();
  std::optional<bool> verdict;
  for (bool exact : {false, true}) {
    for (std::size_t threads : kThreadGrid) {
      IntervalCheckOptions opts;
      opts.threads = threads;
      opts.exact_visited = exact;
      IntervalLinChecker checker(spec, opts);
      IntervalCheckResult r = checker.check(h);
      if (!verdict) {
        verdict = r.ok;
      } else {
        ASSERT_EQ(r.ok, *verdict) << "exact=" << exact
                                  << " threads=" << threads
                                  << " diverged on\n"
                                  << h.to_string();
      }
      if (r.ok) {
        ASSERT_TRUE(r.intervals.has_value());
        ASSERT_EQ(r.intervals->size(), recs.size());
        // Intervals must be well-formed and respect the real-time order.
        for (std::size_t i = 0; i < recs.size(); ++i) {
          if (recs[i].is_pending()) continue;
          EXPECT_LE((*r.intervals)[i].first, (*r.intervals)[i].second);
          for (std::size_t j = 0; j < recs.size(); ++j) {
            if (recs[j].is_pending() || !History::precedes(recs[i], recs[j]))
              continue;
            EXPECT_LT((*r.intervals)[i].second, (*r.intervals)[j].first)
                << "real-time order violated, exact=" << exact
                << " threads=" << threads << "\n"
                << h.to_string();
          }
        }
      }
    }
  }
  if (expect) {
    EXPECT_EQ(*verdict, *expect) << h.to_string();
  }
}

TEST(IntervalEngineEquivalence, SyncQueueScenarios) {
  SyncQueueIntervalSpec spec(kQ);
  expect_interval_grid_equivalent(spec, History{}, true);
  expect_interval_grid_equivalent(spec,
                                  HistoryBuilder()
                                      .call(1, "Q", "put", iv(5))
                                      .call(2, "Q", "take")
                                      .ret(1, Value::boolean(true))
                                      .ret(2, Value::pair(true, 5))
                                      .history(),
                                  true);
  expect_interval_grid_equivalent(spec,
                                  HistoryBuilder()
                                      .op(1, "Q", "put", iv(5),
                                          Value::boolean(true))
                                      .op(2, "Q", "take", Value::unit(),
                                          Value::pair(true, 5))
                                      .history(),
                                  false);
  expect_interval_grid_equivalent(spec,
                                  HistoryBuilder()
                                      .call(1, "Q", "put", iv(1))
                                      .call(2, "Q", "put", iv(2))
                                      .call(3, "Q", "take")
                                      .call(4, "Q", "take")
                                      .ret(3, Value::pair(true, 2))
                                      .ret(4, Value::pair(true, 1))
                                      .ret(1, Value::boolean(true))
                                      .ret(2, Value::boolean(true))
                                      .history(),
                                  true);
  // Pending take completed to explain the successful put.
  expect_interval_grid_equivalent(spec,
                                  HistoryBuilder()
                                      .call(2, "Q", "take")
                                      .call(1, "Q", "put", iv(9))
                                      .ret(1, Value::boolean(true))
                                      .history(),
                                  true);
}

TEST(IntervalEngineEquivalence, TimeoutLadders) {
  // Sequences of timed-out puts/takes with varying overlap: bigger state
  // spaces so the parallel driver actually forks.
  SyncQueueIntervalSpec spec(kQ);
  for (std::size_t width : {2u, 3u, 4u}) {
    HistoryBuilder b;
    for (std::size_t t = 1; t <= width; ++t) {
      b.call(static_cast<ThreadId>(t), "Q",
             t % 2 == 0 ? "take" : "put",
             t % 2 == 0 ? Value::unit() : iv(static_cast<std::int64_t>(t)));
    }
    for (std::size_t t = 1; t <= width; ++t) {
      b.ret(static_cast<ThreadId>(t), t % 2 == 0 ? Value::pair(false, 0)
                                                 : Value::boolean(false));
    }
    expect_interval_grid_equivalent(spec, b.history(), true);
  }
}

// ---------------------------------------------------------------------------
// CAL witness determinism: the sequential driver must produce the same
// witness bytes regardless of dedup mode (test_state_compression covers
// the verdict grid; this pins the witness itself).

TEST(CalEngineEquivalence, SequentialWitnessIsDedupModeInvariant) {
  std::mt19937 rng(42);
  ExchangerSpec spec(kE, kEx);
  for (unsigned seed = 0; seed < 10; ++seed) {
    rng.seed(seed);
    const History h = random_exchanger_history(rng, 4, 3);
    CalCheckOptions fp_opts;
    CalCheckOptions exact_opts;
    exact_opts.exact_visited = true;
    const CalCheckResult a = CalChecker(spec, fp_opts).check(h);
    const CalCheckResult b = CalChecker(spec, exact_opts).check(h);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.witness->elements(), b.witness->elements()) << h.to_string();
    EXPECT_EQ(a.visited_states, b.visited_states);
    EXPECT_EQ(a.fired_elements, b.fired_elements);
  }
}

}  // namespace
}  // namespace cal
