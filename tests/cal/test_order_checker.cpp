// The polynomial priority-queue order checker (cal/engine/order_checker.hpp)
// and its CalChecker dispatch: definitive verdicts must match the engine's,
// declines must fall back to it, and accepted witnesses must be real — they
// agree with the history and replay through the spec.
#include <gtest/gtest.h>

#include <vector>

#include "cal/agree.hpp"
#include "cal/cal_checker.hpp"
#include "cal/specs/priority_queue_spec.hpp"

namespace cal {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }
Value got(std::int64_t x) { return Value::pair(true, x); }
const Value kEmpty = Value::pair(false, 0);
const Value kTrue = Value::boolean(true);

const Symbol kP{"P"};

CalCheckResult order_path(const History& h, bool complete_pending = true) {
  PriorityQueueCaSpec spec(kP);
  CalCheckOptions o;
  o.complete_pending = complete_pending;
  return CalChecker(spec, o).check(h);
}

CalCheckResult engine_path(const History& h, bool complete_pending = true) {
  PriorityQueueCaSpec spec(kP);
  CalCheckOptions o;
  o.order_check = false;
  o.complete_pending = complete_pending;
  return CalChecker(spec, o).check(h);
}

/// Walks the witness through the spec from the initial state: every element
/// must be admissible and lead to a successor matching the element exactly.
bool replays_through_spec(const CaTrace& witness) {
  PriorityQueueCaSpec spec(kP);
  SpecState state = spec.initial();
  for (const CaElement& elem : witness.elements()) {
    bool stepped = false;
    for (CaStepResult& sr :
         spec.step(state, elem.object(), elem.ops())) {
      if (sr.element == elem) {
        state = std::move(sr.next);
        stepped = true;
        break;
      }
    }
    if (!stepped) return false;
  }
  return true;
}

void expect_accepts_on_order_path(const History& h) {
  CalCheckResult r = order_path(h);
  ASSERT_TRUE(r.ok) << h.to_string();
  EXPECT_TRUE(r.order_checked);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(agrees_with(h, *r.witness).agrees)
      << h.to_string() << "\nwitness: " << r.witness->to_string();
  EXPECT_TRUE(replays_through_spec(*r.witness)) << r.witness->to_string();
  EXPECT_TRUE(engine_path(h).ok) << h.to_string();
}

void expect_rejects_on_order_path(const History& h) {
  CalCheckResult r = order_path(h);
  EXPECT_FALSE(r.ok) << h.to_string();
  EXPECT_TRUE(r.order_checked);
  EXPECT_FALSE(engine_path(h).ok) << h.to_string();
}

TEST(OrderChecker, EmptyHistoryAccepts) {
  CalCheckResult r = order_path(History{});
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.order_checked);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(r.witness->empty());
}

TEST(OrderChecker, SequentialRunAccepts) {
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(3), kTrue)
               .op(1, "P", "insert", iv(1), kTrue)
               .op(1, "P", "insert", iv(2), kTrue)
               .op(2, "P", "deleteMin", Value::unit(), got(1))
               .op(2, "P", "deleteMin", Value::unit(), got(2))
               .op(2, "P", "deleteMin", Value::unit(), got(3))
               .op(2, "P", "deleteMin", Value::unit(), kEmpty)
               .history();
  expect_accepts_on_order_path(h);
}

TEST(OrderChecker, OverlappingRemovalsAccept) {
  // Both inserts overlap both removals; the late insert(3) supplies the
  // first minimum.
  auto h = HistoryBuilder()
               .call(1, "P", "insert", iv(5))
               .call(2, "P", "insert", iv(3))
               .ret(1, kTrue)
               .ret(2, kTrue)
               .call(1, "P", "deleteMin")
               .ret(1, got(3))
               .call(2, "P", "deleteMin")
               .ret(2, got(5))
               .history();
  expect_accepts_on_order_path(h);
}

TEST(OrderChecker, RemovalResolvingBeforeInsertResponseAccepts) {
  // deleteMin ▷ (true,5) responds while insert(5) is still running: the
  // insert's linearization point dodges backwards to just before the
  // removal's.
  auto h = HistoryBuilder()
               .call(1, "P", "insert", iv(5))
               .call(2, "P", "deleteMin")
               .ret(2, got(5))
               .ret(1, kTrue)
               .history();
  expect_accepts_on_order_path(h);
}

TEST(OrderChecker, ZoneBumpStillAccepts) {
  // Value 1's forced zone covers value 2's earliest candidate point; the
  // greedy sweep bumps past it and both removals still fit.
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(1), kTrue)
               .op(2, "P", "insert", iv(2), kTrue)
               .call(1, "P", "deleteMin")
               .call(2, "P", "deleteMin")
               .ret(2, got(1))
               .ret(1, got(2))
               .history();
  CalCheckResult r = order_path(h);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.order_checked);
  EXPECT_EQ(r.order_values, 2u);
  EXPECT_GE(r.order_bumps, 1u);
  EXPECT_TRUE(agrees_with(h, *r.witness).agrees) << r.witness->to_string();
  EXPECT_TRUE(replays_through_spec(*r.witness));
  EXPECT_TRUE(engine_path(h).ok);
}

TEST(OrderChecker, NonMinimalRemovalRejects) {
  // 3 and 5 are both present when deleteMin returns 5.
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(5), kTrue)
               .op(2, "P", "insert", iv(3), kTrue)
               .op(1, "P", "deleteMin", Value::unit(), got(5))
               .history();
  CalCheckResult r = order_path(h);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.order_checked);
  EXPECT_EQ(r.order_values, 2u);  // counters reported on rejection too
  EXPECT_GE(r.order_zones, 1u);
  EXPECT_FALSE(engine_path(h).ok);
}

TEST(OrderChecker, EmptyRemovalInsideForcedZoneRejects) {
  // insert(1) completed and never removed: the queue is nonempty from its
  // response on, so a later deleteMin ▷ empty is impossible.
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(1), kTrue)
               .op(1, "P", "deleteMin", Value::unit(), kEmpty)
               .history();
  expect_rejects_on_order_path(h);
}

TEST(OrderChecker, EmptyRemovalBeforeInsertResponseAccepts) {
  auto h = HistoryBuilder()
               .call(1, "P", "insert", iv(1))
               .call(2, "P", "deleteMin")
               .ret(2, kEmpty)
               .ret(1, kTrue)
               .call(2, "P", "deleteMin")
               .ret(2, got(1))
               .history();
  expect_accepts_on_order_path(h);
}

TEST(OrderChecker, RemovalWithoutInsertRejects) {
  auto h = HistoryBuilder()
               .op(1, "P", "deleteMin", Value::unit(), got(7))
               .history();
  expect_rejects_on_order_path(h);
}

TEST(OrderChecker, DoubleRemovalRejects) {
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(1), kTrue)
               .op(1, "P", "deleteMin", Value::unit(), got(1))
               .op(2, "P", "deleteMin", Value::unit(), got(1))
               .history();
  expect_rejects_on_order_path(h);
}

TEST(OrderChecker, FailedInsertReturnRejects) {
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(1), Value::boolean(false))
               .history();
  expect_rejects_on_order_path(h);
}

TEST(OrderChecker, ForeignCompletedOperationRejects) {
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(1), kTrue)
               .op(1, "X", "insert", iv(2), kTrue)
               .op(2, "P", "deleteMin", Value::unit(), got(1))
               .history();
  expect_rejects_on_order_path(h);
}

TEST(OrderChecker, ForeignPendingOperationIsDropped) {
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(1), kTrue)
               .call(2, "X", "insert", iv(2))
               .op(1, "P", "deleteMin", Value::unit(), got(1))
               .history();
  CalCheckResult r = order_path(h);  // agrees_with needs complete histories,
  EXPECT_TRUE(r.ok);                 // so check the verdicts directly
  EXPECT_TRUE(r.order_checked);
  EXPECT_TRUE(replays_through_spec(*r.witness));
  EXPECT_TRUE(engine_path(h).ok);
}

TEST(OrderChecker, DuplicateValuesDeclineToEngine) {
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(1), kTrue)
               .op(2, "P", "insert", iv(1), kTrue)
               .op(1, "P", "deleteMin", Value::unit(), got(1))
               .op(2, "P", "deleteMin", Value::unit(), got(1))
               .history();
  CalCheckResult r = order_path(h);
  EXPECT_TRUE(r.ok) << h.to_string();
  EXPECT_FALSE(r.order_checked) << "duplicates are outside the fragment";
  EXPECT_GT(r.visited_states, 0u);
}

TEST(OrderChecker, PendingDeleteMinDeclinesToEngine) {
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(1), kTrue)
               .call(2, "P", "deleteMin")
               .history();
  CalCheckResult r = order_path(h);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.order_checked);
  // With pending invocations dropped the instance is back in the fragment.
  CalCheckResult dropped = order_path(h, /*complete_pending=*/false);
  EXPECT_TRUE(dropped.ok);
  EXPECT_TRUE(dropped.order_checked);
}

TEST(OrderChecker, FiringAPendingDeleteMinCanBeNecessary) {
  // The empty removal is only possible if the *pending* deleteMin fires
  // first and takes value 1 — exactly the completion choice the order
  // checker declines to search; the fallback engine finds it.
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(1), kTrue)
               .call(1, "P", "deleteMin")
               .op(2, "P", "deleteMin", Value::unit(), kEmpty)
               .history();
  CalCheckResult r = order_path(h);
  EXPECT_TRUE(r.ok) << h.to_string();
  EXPECT_FALSE(r.order_checked);
  EXPECT_TRUE(engine_path(h).ok);
}

TEST(OrderChecker, PendingInsertFiredToMatchRemoval) {
  auto h = HistoryBuilder()
               .call(1, "P", "insert", iv(5))
               .op(2, "P", "deleteMin", Value::unit(), got(5))
               .history();
  CalCheckResult r = order_path(h);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.order_checked);
  // Under complete_pending=false the insert is dropped and the removal's
  // value was never inserted — both paths reject.
  EXPECT_FALSE(order_path(h, false).ok);
  EXPECT_TRUE(order_path(h, false).order_checked);
  EXPECT_FALSE(engine_path(h, false).ok);
}

TEST(OrderChecker, UnmatchedPendingInsertIsDropped) {
  auto h = HistoryBuilder()
               .call(1, "P", "insert", iv(1))
               .op(2, "P", "deleteMin", Value::unit(), kEmpty)
               .history();
  CalCheckResult r = order_path(h);  // pending op: verdicts only
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.order_checked);
  EXPECT_TRUE(replays_through_spec(*r.witness));
  EXPECT_TRUE(engine_path(h).ok);
}

TEST(OrderChecker, WitnessOrdersConcurrentRemovalsByValue) {
  // Two concurrent removals resolved at the same bumped point must appear
  // in ascending value order for the witness to replay.
  auto h = HistoryBuilder()
               .op(1, "P", "insert", iv(1), kTrue)
               .op(2, "P", "insert", iv(2), kTrue)
               .call(1, "P", "deleteMin")
               .call(2, "P", "deleteMin")
               .ret(1, got(2))
               .ret(2, got(1))
               .history();
  expect_accepts_on_order_path(h);
}

}  // namespace
}  // namespace cal
