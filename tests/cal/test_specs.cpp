// Unit tests for the concrete specifications and trace replay.
#include <gtest/gtest.h>

#include "cal/replay.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/queue_spec.hpp"
#include "cal/specs/snapshot_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "cal/specs/sync_queue_spec.hpp"

namespace cal {
namespace {

const Symbol kE{"E"};
const Symbol kEx{"exchange"};
Value iv(std::int64_t x) { return Value::integer(x); }

Operation op(ThreadId t, Symbol o, const char* m, Value arg, Value ret) {
  return Operation::make(t, o, Symbol{m}, std::move(arg), std::move(ret));
}

TEST(ExchangerSpecTest, AcceptsSwapElement) {
  ExchangerSpec spec(kE, kEx);
  auto steps = spec.step(spec.initial(), kE,
                         CaElement::swap(kE, kEx, 1, 3, 2, 4).ops());
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].element, CaElement::swap(kE, kEx, 1, 3, 2, 4));
}

TEST(ExchangerSpecTest, AcceptsFailureSingleton) {
  ExchangerSpec spec(kE, kEx);
  auto e = CaElement::singleton(
      kE, op(1, kE, "exchange", iv(7), Value::pair(false, 7)));
  EXPECT_EQ(spec.step(spec.initial(), kE, e.ops()).size(), 1u);
}

TEST(ExchangerSpecTest, RejectsSuccessSingleton) {
  ExchangerSpec spec(kE, kEx);
  auto e = CaElement::singleton(
      kE, op(1, kE, "exchange", iv(7), Value::pair(true, 8)));
  EXPECT_TRUE(spec.step(spec.initial(), kE, e.ops()).empty());
}

TEST(ExchangerSpecTest, RejectsFailureEchoingWrongValue) {
  ExchangerSpec spec(kE, kEx);
  auto e = CaElement::singleton(
      kE, op(1, kE, "exchange", iv(7), Value::pair(false, 8)));
  EXPECT_TRUE(spec.step(spec.initial(), kE, e.ops()).empty());
}

TEST(ExchangerSpecTest, RejectsSameThreadPair) {
  ExchangerSpec spec(kE, kEx);
  std::vector<Operation> ops = {
      op(1, kE, "exchange", iv(1), Value::pair(true, 2)),
      op(1, kE, "exchange", iv(2), Value::pair(true, 1))};
  EXPECT_TRUE(spec.step(spec.initial(), kE, ops).empty());
}

TEST(ExchangerSpecTest, RejectsMismatchedSwapValues) {
  ExchangerSpec spec(kE, kEx);
  std::vector<Operation> ops = {
      op(1, kE, "exchange", iv(1), Value::pair(true, 9)),
      op(2, kE, "exchange", iv(2), Value::pair(true, 1))};
  EXPECT_TRUE(spec.step(spec.initial(), kE, ops).empty());
}

TEST(ExchangerSpecTest, FillsPendingReturnsInSwap) {
  ExchangerSpec spec(kE, kEx);
  std::vector<Operation> ops = {
      op(1, kE, "exchange", iv(1), Value::pair(true, 2)),
      Operation::pending(2, kE, kEx, iv(2))};
  auto steps = spec.step(spec.initial(), kE, ops);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].element, CaElement::swap(kE, kEx, 1, 1, 2, 2));
}

TEST(ExchangerSpecTest, FillsPendingFailure) {
  ExchangerSpec spec(kE, kEx);
  std::vector<Operation> ops = {Operation::pending(1, kE, kEx, iv(5))};
  auto steps = spec.step(spec.initial(), kE, ops);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(*steps[0].element.ops().front().ret, Value::pair(false, 5));
}

TEST(CentralStackSpecTest, PushMaySpuriouslyFail) {
  CentralStackSpec spec(Symbol{"S"});
  auto steps = spec.step({}, 1, Symbol{"S"}, Symbol{"push"}, iv(3),
                         std::nullopt);
  ASSERT_EQ(steps.size(), 2u);  // success and spurious failure
  // Failure leaves the state unchanged.
  bool saw_noop_failure = false;
  for (const auto& s : steps) {
    if (s.ret == Value::boolean(false)) saw_noop_failure = s.next.empty();
  }
  EXPECT_TRUE(saw_noop_failure);
}

TEST(CentralStackSpecTest, PopOnEmptyOnlyFails) {
  CentralStackSpec spec(Symbol{"S"});
  auto steps =
      spec.step({}, 1, Symbol{"S"}, Symbol{"pop"}, Value::unit(),
                std::nullopt);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].ret, Value::pair(false, 0));
}

TEST(StackSpecTest, PushAlwaysSucceedsPopBlocksOnEmpty) {
  StackSpec spec(Symbol{"S"});
  auto push = spec.step({}, 1, Symbol{"S"}, Symbol{"push"}, iv(3),
                        std::nullopt);
  ASSERT_EQ(push.size(), 1u);
  EXPECT_EQ(push[0].ret, Value::boolean(true));
  EXPECT_TRUE(spec.step({}, 1, Symbol{"S"}, Symbol{"pop"}, Value::unit(),
                        std::nullopt)
                  .empty());
  auto pop = spec.step({3}, 1, Symbol{"S"}, Symbol{"pop"}, Value::unit(),
                       std::nullopt);
  ASSERT_EQ(pop.size(), 1u);
  EXPECT_EQ(pop[0].ret, Value::pair(true, 3));
  EXPECT_TRUE(pop[0].next.empty());
}

TEST(QueueSpecTest, FifoOrder) {
  QueueSpec spec(Symbol{"Q"});
  SpecState s;
  s = spec.step(s, 1, Symbol{"Q"}, Symbol{"enq"}, iv(1), std::nullopt)[0]
          .next;
  s = spec.step(s, 1, Symbol{"Q"}, Symbol{"enq"}, iv(2), std::nullopt)[0]
          .next;
  auto deq =
      spec.step(s, 2, Symbol{"Q"}, Symbol{"deq"}, Value::unit(),
                std::nullopt);
  ASSERT_EQ(deq.size(), 1u);
  EXPECT_EQ(deq[0].ret, Value::pair(true, 1));
}

TEST(RegisterSpecTest, ReadsLastWrite) {
  RegisterSpec spec(Symbol{"R"});
  SpecState s = spec.initial();
  auto r0 = spec.step(s, 1, Symbol{"R"}, Symbol{"read"}, Value::unit(),
                      std::nullopt);
  ASSERT_EQ(r0.size(), 1u);
  EXPECT_EQ(r0[0].ret, iv(0));
  s = spec.step(s, 1, Symbol{"R"}, Symbol{"write"}, iv(42), std::nullopt)[0]
          .next;
  auto r1 = spec.step(s, 2, Symbol{"R"}, Symbol{"read"}, Value::unit(),
                      std::nullopt);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].ret, iv(42));
}

TEST(SnapshotSpecTest, SnapshotAccumulates) {
  SnapshotSpec spec(Symbol{"IS"});
  const Symbol is{"IS"};
  SpecState s = spec.initial();
  auto step1 = spec.step(
      s, is, {Operation::pending(1, is, Symbol{"us"}, iv(4))});
  ASSERT_EQ(step1.size(), 1u);
  EXPECT_EQ(*step1[0].element.ops().front().ret, Value::vec({4}));
  auto step2 = spec.step(
      step1[0].next, is, {Operation::pending(2, is, Symbol{"us"}, iv(2))});
  ASSERT_EQ(step2.size(), 1u);
  EXPECT_EQ(*step2[0].element.ops().front().ret, Value::vec({2, 4}));
}

TEST(SyncQueueSpecTest, HandoffAndTimeouts) {
  SyncQueueSpec spec(Symbol{"Q"});
  const Symbol q{"Q"};
  std::vector<Operation> pair = {
      op(1, q, "put", iv(5), Value::boolean(true)),
      op(2, q, "take", Value::unit(), Value::pair(true, 5))};
  EXPECT_EQ(spec.step({}, q, pair).size(), 1u);

  std::vector<Operation> same_thread = {
      op(1, q, "put", iv(5), Value::boolean(true)),
      op(1, q, "take", Value::unit(), Value::pair(true, 5))};
  EXPECT_TRUE(spec.step({}, q, same_thread).empty());

  std::vector<Operation> two_puts = {
      op(1, q, "put", iv(5), Value::boolean(true)),
      op(2, q, "put", iv(6), Value::boolean(true))};
  EXPECT_TRUE(spec.step({}, q, two_puts).empty());

  auto put_timeout = CaElement::singleton(
      q, op(1, q, "put", iv(5), Value::boolean(false)));
  EXPECT_EQ(spec.step({}, q, put_timeout.ops()).size(), 1u);
}

TEST(ReplayTest, CaTraceMembership) {
  ExchangerSpec spec(kE, kEx);
  CaTrace good;
  good.append(CaElement::swap(kE, kEx, 1, 3, 2, 4));
  good.append(CaElement::singleton(
      kE, op(3, kE, "exchange", iv(7), Value::pair(false, 7))));
  EXPECT_TRUE(replay_ca(good, spec));

  CaTrace bad = good;
  bad.append(CaElement::singleton(
      kE, op(3, kE, "exchange", iv(7), Value::pair(true, 9))));
  ReplayResult r = replay_ca(bad, spec);
  EXPECT_FALSE(r);
  EXPECT_EQ(r.failed_at, 2u);
}

TEST(ReplayTest, SequentialReplayTracksState) {
  StackSpec spec(Symbol{"S"});
  const Symbol s{"S"};
  CaTrace t;
  t.append(CaElement::singleton(
      s, op(1, s, "push", iv(1), Value::boolean(true))));
  t.append(CaElement::singleton(
      s, op(1, s, "push", iv(2), Value::boolean(true))));
  t.append(CaElement::singleton(
      s, op(2, s, "pop", Value::unit(), Value::pair(true, 2))));
  ReplayResult r = replay_sequential(t, spec);
  ASSERT_TRUE(r) << r.reason;
  EXPECT_EQ(r.final_state, SpecState{1});
}

TEST(ReplayTest, SequentialReplayRejectsNonSingleton) {
  StackSpec spec(Symbol{"S"});
  CaTrace t;
  t.append(CaElement::swap(kE, kEx, 1, 3, 2, 4));
  ReplayResult r = replay_sequential(t, spec);
  EXPECT_FALSE(r);
  EXPECT_NE(r.reason.find("non-singleton"), std::string::npos);
}

}  // namespace
}  // namespace cal
