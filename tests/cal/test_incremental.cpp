// Streaming (incremental) CAL checking — engine/incremental.hpp.
//
// The load-bearing property is batch equivalence: for every history in the
// corpus and every window size, pushing the actions one at a time and
// calling finish() must reach exactly the verdict CalChecker reaches on the
// whole history, and an accepting stream must be able to produce a witness
// that replays and agrees. On top of that: bounded violation-detection
// latency (within the window containing the bad response), frontier
// compaction (retirement) on long runs, and live streaming from a
// runtime::Recorder cursor while worker threads are still recording.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "cal/agree.hpp"
#include "cal/cal_checker.hpp"
#include "cal/engine/incremental.hpp"
#include "cal/replay.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "corpus.hpp"
#include "objects/exchanger.hpp"
#include "runtime/reclaim/ebr.hpp"
#include "runtime/recorder.hpp"

namespace cal {
namespace {

using engine::IncrementalChecker;
using engine::IncrementalOptions;

const Symbol kE{"E"};
const Symbol kEx{"exchange"};
const Symbol kS{"S"};

Value iv(std::int64_t x) { return Value::integer(x); }

constexpr std::size_t kWindowGrid[] = {1, 3, 16, 256};

// ---------------------------------------------------------------------------
// Batch equivalence on the corpus.

void expect_incremental_matches_batch(const CaSpec& spec, const History& h,
                                      bool complete_pending = true) {
  CalCheckOptions batch_opts;
  batch_opts.complete_pending = complete_pending;
  const CalCheckResult batch = CalChecker(spec, batch_opts).check(h);
  for (std::size_t window : kWindowGrid) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      IncrementalOptions opts;
      opts.window = window;
      opts.threads = threads;
      opts.complete_pending = complete_pending;
      IncrementalChecker inc(spec, opts);
      inc.push(h);
      inc.finish();
      ASSERT_EQ(inc.ok(), batch.ok)
          << "window=" << window << " threads=" << threads
          << " reason=" << inc.status().reason << "\n"
          << h.to_string();
      EXPECT_TRUE(inc.status().finished);
      if (inc.ok()) {
        // An accepting stream consumed everything; a rejecting one stops
        // at the violation and ignores the rest by design.
        EXPECT_EQ(inc.status().actions_consumed, h.actions().size());
        const std::optional<CaTrace> w = inc.witness();
        ASSERT_TRUE(w.has_value())
            << "window=" << window << " threads=" << threads;
        const ReplayResult replayed = replay_ca(*w, spec);
        EXPECT_TRUE(replayed.ok)
            << "window=" << window << " threads=" << threads << ": "
            << replayed.reason;
        if (h.complete()) {
          const AgreeResult a = agrees_with(h, *w);
          EXPECT_TRUE(a.agrees)
              << "window=" << window << " threads=" << threads << ": "
              << a.reason << "\n"
              << h.to_string() << w->to_string();
        }
      } else {
        EXPECT_GT(inc.status().violation_window, 0u);
        EXPECT_FALSE(inc.status().reason.empty());
      }
    }
  }
}

TEST(IncrementalCorpus, ExampleHistories) {
  ExchangerSpec ex(kE, kEx);
  expect_incremental_matches_batch(ex, load_history("fig3_h1.history"));
  expect_incremental_matches_batch(ex, load_history("fig3_h3.history"));
  SeqAsCaSpec stack(std::make_shared<StackSpec>(kS));
  expect_incremental_matches_batch(stack, load_history("stack.history"));
}

class IncrementalEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(IncrementalEquivalence, ValidExchangerRuns) {
  std::mt19937 rng(GetParam());
  ExchangerSpec spec(kE, kEx);
  const History h = random_exchanger_history(rng, 4, 3);
  ASSERT_TRUE(h.well_formed());
  expect_incremental_matches_batch(spec, h);
}

TEST_P(IncrementalEquivalence, CorruptedExchangerRuns) {
  std::mt19937 rng(GetParam() + 500);
  ExchangerSpec spec(kE, kEx);
  const auto bad = corrupt(random_exchanger_history(rng, 4, 3));
  if (!bad) GTEST_SKIP() << "run had no successful exchange";
  expect_incremental_matches_batch(spec, *bad);
}

TEST_P(IncrementalEquivalence, PendingInvocations) {
  std::mt19937 rng(GetParam() + 600);
  ExchangerSpec spec(kE, kEx);
  History h = random_exchanger_history(rng, 3, 2);
  std::vector<Action> actions = h.actions();
  std::size_t responses_dropped = 0;
  while (!actions.empty() && responses_dropped < 2) {
    if (actions.back().is_respond()) ++responses_dropped;
    actions.pop_back();
  }
  const History pending{std::move(actions)};
  if (!pending.well_formed()) GTEST_SKIP();
  expect_incremental_matches_batch(spec, pending);
  expect_incremental_matches_batch(spec, pending, /*complete_pending=*/false);
}

TEST_P(IncrementalEquivalence, SequentialSpecOverAdapter) {
  std::mt19937 rng(GetParam() + 700);
  SeqAsCaSpec spec(std::make_shared<StackSpec>(kS));
  for (int round = 0; round < 3; ++round) {
    expect_incremental_matches_batch(spec, garbage_stack_history(rng, 6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalence,
                         ::testing::Range(0u, 10u));

TEST(IncrementalCorpus, WideOverlapBothVerdicts) {
  ExchangerSpec spec(kE, kEx);
  expect_incremental_matches_batch(spec, wide_overlap_history(6, false));
  expect_incremental_matches_batch(spec, wide_overlap_history(6, true));
}

// ---------------------------------------------------------------------------
// Bounded violation-detection latency: the window check that first covers
// the corrupted response must already fail — no later than the next window
// boundary after it, never dependent on the rest of the stream.

TEST(IncrementalLatency, ViolationDetectedWithinOneWindow) {
  constexpr std::size_t kWindow = 4;
  ExchangerSpec spec(kE, kEx);
  std::mt19937 rng(0);
  std::size_t runs_with_violation = 0;
  for (unsigned seed = 0; seed < 10; ++seed) {
    rng.seed(seed);
    const auto bad = corrupt(random_exchanger_history(rng, 4, 3));
    if (!bad) continue;
    ++runs_with_violation;
    const std::vector<Action> actions = bad->actions();
    std::size_t corrupt_idx = actions.size();
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (actions[i].is_respond() &&
          actions[i].payload == Value::pair(true, 99999)) {
        corrupt_idx = i;
        break;
      }
    }
    ASSERT_LT(corrupt_idx, actions.size());

    IncrementalOptions opts;
    opts.window = kWindow;
    IncrementalChecker inc(spec, opts);
    std::size_t flip_at = 0;  // actions consumed when ok() first went false
    for (std::size_t i = 0; i < actions.size(); ++i) {
      inc.push(actions[i]);
      if (!inc.ok()) {
        flip_at = i + 1;
        break;
      }
    }
    // The first window boundary at or after the corrupted response.
    const std::size_t boundary = ((corrupt_idx / kWindow) + 1) * kWindow;
    if (flip_at == 0) {
      // Stream ended before that boundary; finish() must still catch it.
      ASSERT_GT(boundary, actions.size());
      inc.finish();
      EXPECT_FALSE(inc.ok());
    } else {
      EXPECT_LE(flip_at, boundary) << "seed=" << seed;
      EXPECT_GT(flip_at, corrupt_idx) << "seed=" << seed
                                      << ": flagged before the bad response";
    }
    EXPECT_GT(inc.status().violation_window, 0u);
    // Once failed, further pushes are ignored.
    const std::size_t consumed = inc.status().actions_consumed;
    inc.push(Action::invoke(99, kE, kEx, iv(1)));
    EXPECT_EQ(inc.status().actions_consumed, consumed);
  }
  ASSERT_GT(runs_with_violation, 0u);
}

// ---------------------------------------------------------------------------
// Status accounting and frontier compaction.

TEST(IncrementalStatusCounters, WindowAndOperationCounts) {
  ExchangerSpec spec(kE, kEx);
  std::mt19937 rng(7);
  const History h = random_exchanger_history(rng, 4, 3);
  const std::size_t n = h.actions().size();
  constexpr std::size_t kWindow = 5;
  IncrementalOptions opts;
  opts.window = kWindow;
  IncrementalChecker inc(spec, opts);
  inc.push(h);
  EXPECT_EQ(inc.status().windows_checked, n / kWindow);
  inc.finish();
  EXPECT_EQ(inc.status().windows_checked,
            n / kWindow + (n % kWindow == 0 ? 0 : 1));
  EXPECT_EQ(inc.status().actions_consumed, n);
  EXPECT_EQ(inc.status().operations, 12u);
  EXPECT_EQ(inc.status().completed, 12u);
  EXPECT_GT(inc.status().visited_states, 0u);
}

TEST(IncrementalCompaction, LongRunRetiresDecidedOperations) {
  // 60 back-to-back timed-out exchanges: every operation is decided as
  // soon as its window closes, so the active set must stay O(window) and
  // the frontier must not accumulate explanations.
  constexpr std::size_t kOps = 60;
  ExchangerSpec spec(kE, kEx);
  HistoryBuilder b;
  for (std::size_t i = 1; i <= kOps; ++i) {
    const auto v = static_cast<std::int64_t>(i);
    b.call(1, "E", "exchange", iv(v));
    b.ret(1, Value::pair(false, v));
  }
  const History h = b.history();
  IncrementalOptions opts;
  opts.window = 8;
  IncrementalChecker inc(spec, opts);
  inc.push(h);
  inc.finish();
  ASSERT_TRUE(inc.ok()) << inc.status().reason;
  EXPECT_GE(inc.status().retired_ops, kOps - 2);
  EXPECT_LE(inc.status().active_ops, 2u);
  EXPECT_LE(inc.status().frontier_size, 2u);
  // The witness still spans the whole stream.
  const std::optional<CaTrace> w = inc.witness();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->elements().size(), kOps);
  EXPECT_TRUE(replay_ca(*w, spec).ok);
}

TEST(IncrementalEdgeCases, EmptyStreamAccepts) {
  ExchangerSpec spec(kE, kEx);
  IncrementalChecker inc(spec);
  inc.finish();
  EXPECT_TRUE(inc.ok());
  EXPECT_TRUE(inc.status().finished);
  const std::optional<CaTrace> w = inc.witness();
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->elements().empty());
}

TEST(IncrementalEdgeCases, MalformedStreamsAreRejected) {
  ExchangerSpec spec(kE, kEx);
  {
    IncrementalChecker inc(spec);
    inc.push(Action::respond(1, kE, kEx, Value::pair(false, 1)));
    EXPECT_FALSE(inc.ok());
    EXPECT_NE(inc.status().reason.find("not well-formed"), std::string::npos);
  }
  {
    IncrementalChecker inc(spec);
    inc.push(Action::invoke(1, kE, kEx, iv(1)));
    inc.push(Action::invoke(1, kE, kEx, iv(2)));  // same thread, still open
    EXPECT_FALSE(inc.ok());
    EXPECT_NE(inc.status().reason.find("not well-formed"), std::string::npos);
  }
}

TEST(IncrementalEdgeCases, WindowSearchCapReportsExhausted) {
  ExchangerSpec spec(kE, kEx);
  IncrementalOptions opts;
  opts.window = 64;
  opts.max_visited = 1;
  IncrementalChecker inc(spec, opts);
  inc.push(wide_overlap_history(6, false));
  inc.finish();
  EXPECT_FALSE(inc.ok());
  EXPECT_TRUE(inc.status().exhausted);
  EXPECT_NE(inc.status().reason.find("exhausted"), std::string::npos);
}

TEST(IncrementalEdgeCases, TrackWitnessOffStillDecides) {
  ExchangerSpec spec(kE, kEx);
  IncrementalOptions opts;
  opts.track_witness = false;
  IncrementalChecker inc(spec, opts);
  inc.push(wide_overlap_history(5, false));
  inc.finish();
  EXPECT_TRUE(inc.ok());
  EXPECT_FALSE(inc.witness().has_value());
}

// ---------------------------------------------------------------------------
// Live streaming from the runtime recorder: a cursor feeds the checker
// while worker threads are still publishing.

TEST(IncrementalStreaming, FollowsRecorderCursorDuringExecution) {
  runtime::EpochDomain ebr;
  objects::Exchanger ex(ebr, kE);
  runtime::Recorder rec(1 << 12);
  ExchangerSpec spec(ex.name(), ex.method());
  IncrementalOptions opts;
  opts.window = 8;
  IncrementalChecker inc(spec, opts);
  runtime::Recorder::Cursor cursor = rec.cursor();

  constexpr int kThreads = 4;
  constexpr int kRounds = 4;
  std::atomic<int> running{kThreads};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      const auto tid = static_cast<ThreadId>(i);
      for (int r = 0; r < kRounds; ++r) {
        const std::int64_t v = i * 100 + r;
        rec.invoke(tid, ex.name(), ex.method(), iv(v));
        objects::ExchangeResult res = ex.exchange(tid, v, 512);
        rec.respond(tid, ex.name(), ex.method(),
                    Value::pair(res.ok, res.value));
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  }
  // Follow the log while the run is live: consume whatever is published,
  // checking window-by-window as enough arrives.
  const auto drain = [&] {
    return cursor.poll([&](const Action& a) { inc.push(a); });
  };
  while (running.load(std::memory_order_acquire) > 0) {
    drain();
    std::this_thread::yield();
  }
  for (std::thread& t : workers) t.join();
  while (drain() > 0) {
  }
  inc.finish();

  const History h = rec.snapshot();
  ASSERT_TRUE(h.well_formed());
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(inc.status().actions_consumed, h.actions().size());
  // A real exchanger execution is CAL; the streaming verdict must agree
  // with the batch verdict on the recorded history either way.
  const CalCheckResult batch = CalChecker(spec).check(h);
  EXPECT_TRUE(batch.ok) << h.to_string();
  EXPECT_EQ(inc.ok(), batch.ok) << inc.status().reason;
  const std::optional<CaTrace> w = inc.witness();
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(replay_ca(*w, spec).ok);
  if (h.complete()) {
    EXPECT_TRUE(agrees_with(h, *w).agrees);
  }
}

}  // namespace
}  // namespace cal
