// Tests for the agreement relation H ⊑CAL T (Def. 5).
#include <gtest/gtest.h>

#include "cal/agree.hpp"

namespace cal {
namespace {

const Symbol kE{"E"};
const Symbol kEx{"exchange"};

Value iv(std::int64_t x) { return Value::integer(x); }

Operation fail_op(ThreadId t, std::int64_t v) {
  return Operation::make(t, kE, kEx, iv(v), Value::pair(false, v));
}

TEST(Agree, EmptyHistoryAgreesWithEmptyTrace) {
  EXPECT_TRUE(agrees_with(History{}, CaTrace{}));
}

TEST(Agree, EmptyHistoryDisagreesWithNonEmptyTrace) {
  CaTrace t;
  t.append(CaElement::singleton(kE, fail_op(1, 5)));
  EXPECT_FALSE(agrees_with(History{}, t));
}

TEST(Agree, OverlappingSwapAgreesWithSwapElement) {
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(1, Value::pair(true, 4))
               .ret(2, Value::pair(true, 3))
               .history();
  CaTrace t;
  t.append(CaElement::swap(kE, kEx, 1, 3, 2, 4));
  EXPECT_TRUE(agrees_with(h, t));
}

TEST(Agree, NonOverlappingOpsCannotShareAnElement) {
  // t1 responds before t2 invokes: real-time ordered, so a single swap
  // element (which maps both to one position) must be rejected.
  auto h = HistoryBuilder()
               .op(1, "E", "exchange", iv(3), Value::pair(true, 4))
               .op(2, "E", "exchange", iv(4), Value::pair(true, 3))
               .history();
  CaTrace t;
  t.append(CaElement::swap(kE, kEx, 1, 3, 2, 4));
  AgreeResult r = agrees_with(h, t);
  EXPECT_FALSE(r);
  EXPECT_FALSE(r.reason.empty());
}

TEST(Agree, RealTimeOrderMustBePreservedAcrossElements) {
  // t1's (failed) exchange completes before t2's begins; the trace listing
  // t2 first contradicts ≺H.
  auto h = HistoryBuilder()
               .op(1, "E", "exchange", iv(1), Value::pair(false, 1))
               .op(2, "E", "exchange", iv(2), Value::pair(false, 2))
               .history();
  CaTrace wrong;
  wrong.append(CaElement::singleton(kE, fail_op(2, 2)));
  wrong.append(CaElement::singleton(kE, fail_op(1, 1)));
  EXPECT_FALSE(agrees_with(h, wrong));

  CaTrace right;
  right.append(CaElement::singleton(kE, fail_op(1, 1)));
  right.append(CaElement::singleton(kE, fail_op(2, 2)));
  EXPECT_TRUE(agrees_with(h, right));
}

TEST(Agree, ConcurrentOpsMayLinearizeInEitherOrder) {
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(1))
               .call(2, "E", "exchange", iv(2))
               .ret(1, Value::pair(false, 1))
               .ret(2, Value::pair(false, 2))
               .history();
  for (bool t1_first : {true, false}) {
    CaTrace t;
    t.append(CaElement::singleton(kE, fail_op(t1_first ? 1 : 2,
                                              t1_first ? 1 : 2)));
    t.append(CaElement::singleton(kE, fail_op(t1_first ? 2 : 1,
                                              t1_first ? 2 : 1)));
    EXPECT_TRUE(agrees_with(h, t)) << "t1_first=" << t1_first;
  }
}

TEST(Agree, EveryHistoryOperationMustBeCovered) {
  auto h = HistoryBuilder()
               .op(1, "E", "exchange", iv(1), Value::pair(false, 1))
               .op(1, "E", "exchange", iv(2), Value::pair(false, 2))
               .history();
  CaTrace t;
  t.append(CaElement::singleton(kE, fail_op(1, 1)));
  AgreeResult r = agrees_with(h, t);
  EXPECT_FALSE(r);
  EXPECT_NE(r.reason.find("not covered"), std::string::npos);
}

TEST(Agree, TraceValuesMustMatchHistoryValues) {
  auto h = HistoryBuilder()
               .op(1, "E", "exchange", iv(1), Value::pair(false, 1))
               .history();
  CaTrace t;
  t.append(CaElement::singleton(kE, fail_op(1, 99)));
  EXPECT_FALSE(agrees_with(h, t));
}

TEST(Agree, PendingHistoryIsRejected) {
  auto h = HistoryBuilder().call(1, "E", "exchange", iv(1)).history();
  CaTrace t;
  t.append(CaElement::singleton(kE, fail_op(1, 1)));
  AgreeResult r = agrees_with(h, t);
  EXPECT_FALSE(r);
  EXPECT_NE(r.reason.find("not complete"), std::string::npos);
}

TEST(Agree, RepeatedIdenticalOpsMatchInProgramOrder) {
  // The same thread fails the same exchange twice; π must map the first
  // occurrence to the first element.
  auto h = HistoryBuilder()
               .op(1, "E", "exchange", iv(7), Value::pair(false, 7))
               .op(1, "E", "exchange", iv(7), Value::pair(false, 7))
               .history();
  CaTrace t;
  t.append(CaElement::singleton(kE, fail_op(1, 7)));
  t.append(CaElement::singleton(kE, fail_op(1, 7)));
  AgreeResult r = agrees_with(h, t);
  ASSERT_TRUE(r);
  ASSERT_EQ(r.pi.size(), 2u);
  EXPECT_EQ(r.pi[0], 0u);
  EXPECT_EQ(r.pi[1], 1u);
}

TEST(Agree, ThreeWayScenarioWithSwapAndFailure) {
  // H1 of Fig. 3: t1/t2 swap 3 and 4 while t3 fails with 7.
  auto h = HistoryBuilder()
               .call(3, "E", "exchange", iv(7))
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(1, Value::pair(true, 4))
               .ret(2, Value::pair(true, 3))
               .ret(3, Value::pair(false, 7))
               .history();
  CaTrace t;
  t.append(CaElement::swap(kE, kEx, 1, 3, 2, 4));
  t.append(CaElement::singleton(kE, fail_op(3, 7)));
  EXPECT_TRUE(agrees_with(h, t));

  // The failure may also be ordered first: everything overlaps.
  CaTrace t2;
  t2.append(CaElement::singleton(kE, fail_op(3, 7)));
  t2.append(CaElement::swap(kE, kEx, 1, 3, 2, 4));
  EXPECT_TRUE(agrees_with(h, t2));
}

TEST(Agree, SurjectivityWitnessCoversAllPositions) {
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(1, Value::pair(true, 4))
               .ret(2, Value::pair(true, 3))
               .history();
  CaTrace t;
  t.append(CaElement::swap(kE, kEx, 1, 3, 2, 4));
  AgreeResult r = agrees_with(h, t);
  ASSERT_TRUE(r);
  ASSERT_EQ(r.pi.size(), 2u);
  EXPECT_EQ(r.pi[0], 0u);
  EXPECT_EQ(r.pi[1], 0u);  // both operations map to the single element
}

}  // namespace
}  // namespace cal
