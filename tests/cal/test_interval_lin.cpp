// Interval-linearizability checker tests (§6 related work, Castañeda et
// al.), using the dual-data-structure style synchronous queue spec.
#include <gtest/gtest.h>

#include "cal/cal_checker.hpp"
#include "cal/interval_lin.hpp"
#include "cal/specs/sync_queue_spec.hpp"

namespace cal {
namespace {

const Symbol kQ{"Q"};
Value iv(std::int64_t x) { return Value::integer(x); }

TEST(IntervalLin, EmptyHistoryAccepted) {
  SyncQueueIntervalSpec spec(kQ);
  IntervalLinChecker checker(spec);
  EXPECT_TRUE(checker.check(History{}));
}

TEST(IntervalLin, OverlappingHandoffAccepted) {
  SyncQueueIntervalSpec spec(kQ);
  IntervalLinChecker checker(spec);
  auto h = HistoryBuilder()
               .call(1, "Q", "put", iv(5))
               .call(2, "Q", "take")
               .ret(1, Value::boolean(true))
               .ret(2, Value::pair(true, 5))
               .history();
  EXPECT_TRUE(checker.check(h));
}

TEST(IntervalLin, NonOverlappingHandoffRejected) {
  SyncQueueIntervalSpec spec(kQ);
  IntervalLinChecker checker(spec);
  auto h = HistoryBuilder()
               .op(1, "Q", "put", iv(5), Value::boolean(true))
               .op(2, "Q", "take", Value::unit(), Value::pair(true, 5))
               .history();
  EXPECT_FALSE(checker.check(h));
}

TEST(IntervalLin, TimeoutsAccepted) {
  SyncQueueIntervalSpec spec(kQ);
  IntervalLinChecker checker(spec);
  auto h = HistoryBuilder()
               .op(1, "Q", "put", iv(5), Value::boolean(false))
               .op(2, "Q", "take", Value::unit(), Value::pair(false, 0))
               .history();
  EXPECT_TRUE(checker.check(h));
}

TEST(IntervalLin, WrongValueRejected) {
  SyncQueueIntervalSpec spec(kQ);
  IntervalLinChecker checker(spec);
  auto h = HistoryBuilder()
               .call(1, "Q", "put", iv(5))
               .call(2, "Q", "take")
               .ret(1, Value::boolean(true))
               .ret(2, Value::pair(true, 6))
               .history();
  EXPECT_FALSE(checker.check(h));
}

TEST(IntervalLin, PairedPutAndTakeByChainOfOverlaps) {
  // put overlaps take only transitively is NOT enough: here t1's put and
  // t2's take never co-exist (t1 returns before t2 starts), so pairing them
  // is impossible even though both overlap t3's long take.
  SyncQueueIntervalSpec spec(kQ);
  IntervalLinChecker checker(spec);
  auto h = HistoryBuilder()
               .call(3, "Q", "take")
               .op(1, "Q", "put", iv(5), Value::boolean(true))
               .op(2, "Q", "take", Value::unit(), Value::pair(true, 5))
               .ret(3, Value::pair(false, 0))
               .history();
  EXPECT_FALSE(checker.check(h));
  // But pairing t1's put with t3's long take is fine.
  auto h2 = HistoryBuilder()
                .call(3, "Q", "take")
                .op(1, "Q", "put", iv(5), Value::boolean(true))
                .ret(3, Value::pair(true, 5))
                .history();
  EXPECT_TRUE(checker.check(h2));
}

TEST(IntervalLin, TwoConcurrentHandoffs) {
  SyncQueueIntervalSpec spec(kQ);
  IntervalLinChecker checker(spec);
  auto h = HistoryBuilder()
               .call(1, "Q", "put", iv(1))
               .call(2, "Q", "put", iv(2))
               .call(3, "Q", "take")
               .call(4, "Q", "take")
               .ret(3, Value::pair(true, 2))
               .ret(4, Value::pair(true, 1))
               .ret(1, Value::boolean(true))
               .ret(2, Value::boolean(true))
               .history();
  EXPECT_TRUE(checker.check(h));
}

TEST(IntervalLin, PendingOpsCanBeDroppedOrCompleted) {
  SyncQueueIntervalSpec spec(kQ);
  IntervalLinChecker checker(spec);
  // t2's take is pending but t1's put claims success: only completing the
  // take explains it.
  auto h = HistoryBuilder()
               .call(2, "Q", "take")
               .call(1, "Q", "put", iv(9))
               .ret(1, Value::boolean(true))
               .history();
  EXPECT_TRUE(checker.check(h));

  IntervalCheckOptions opts;
  opts.complete_pending = false;
  IntervalLinChecker strict(spec, opts);
  EXPECT_FALSE(strict.check(h));
}

TEST(IntervalLin, AgreesWithCaSpecOnConcreteHistories) {
  // The CA-spec and the interval spec describe the same object; they must
  // accept/reject the same complete histories in these scenarios.
  SyncQueueIntervalSpec ispec(kQ);
  SyncQueueSpec cspec(kQ);
  IntervalLinChecker ichecker(ispec);
  CalChecker cchecker(cspec);

  std::vector<History> histories;
  histories.push_back(HistoryBuilder()
                          .call(1, "Q", "put", iv(5))
                          .call(2, "Q", "take")
                          .ret(2, Value::pair(true, 5))
                          .ret(1, Value::boolean(true))
                          .history());
  histories.push_back(HistoryBuilder()
                          .op(1, "Q", "put", iv(5), Value::boolean(true))
                          .op(2, "Q", "take", Value::unit(),
                              Value::pair(true, 5))
                          .history());
  histories.push_back(HistoryBuilder()
                          .op(1, "Q", "put", iv(5), Value::boolean(false))
                          .history());
  histories.push_back(HistoryBuilder()
                          .call(1, "Q", "put", iv(5))
                          .call(2, "Q", "take")
                          .ret(2, Value::pair(false, 0))
                          .ret(1, Value::boolean(false))
                          .history());
  for (const History& h : histories) {
    EXPECT_EQ(static_cast<bool>(ichecker.check(h)),
              static_cast<bool>(cchecker.check(h)))
        << h.to_string();
  }
}

TEST(IntervalLin, IntervalsWitnessRespectsRealTime) {
  SyncQueueIntervalSpec spec(kQ);
  IntervalLinChecker checker(spec);
  auto h = HistoryBuilder()
               .op(1, "Q", "put", iv(5), Value::boolean(false))
               .op(2, "Q", "take", Value::unit(), Value::pair(false, 0))
               .history();
  IntervalCheckResult r = checker.check(h);
  ASSERT_TRUE(r);
  ASSERT_TRUE(r.intervals.has_value());
  const auto& iv1 = (*r.intervals)[0];
  const auto& iv2 = (*r.intervals)[1];
  EXPECT_LE(iv1.first, iv1.second);
  EXPECT_LT(iv1.second, iv2.first);  // t1 precedes t2 in real time
}

}  // namespace
}  // namespace cal
