// Differential corpus for the priority-queue order checker: generated
// linearizable histories (plus corrupted and truncated variants) must get
// the same verdict from the order path and from the engine, across the
// engine's thread counts and both dedup modes. Its own binary so the CI
// TSan job can run the threads>1 grid under the race detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/history.hpp"
#include "cal/specs/priority_queue_spec.hpp"

namespace cal {
namespace {

const Symbol kP{"P"};
const Symbol kInsert{"insert"};
const Symbol kDeleteMin{"deleteMin"};

/// Builds a linearizable-by-construction history with real overlap: each
/// thread's next operation moves through invoke → linearize (against a
/// shared sorted pool) → respond, and the scheduler interleaves those
/// micro-steps at random. With `duplicates` some inserts reuse a small
/// value pool, pushing the instance outside the order checker's fragment.
History random_pq_history(std::mt19937& rng, std::size_t threads,
                          std::size_t ops_per_thread, bool duplicates) {
  struct ThreadState {
    std::size_t done = 0;
    int phase = 0;  // 0 idle, 1 invoked, 2 linearized
    bool inserting = false;
    Value arg;
    Value ret;
  };
  History h;
  std::vector<ThreadState> ts(threads);
  std::vector<std::int64_t> pool;  // current contents, kept sorted
  std::int64_t next_value = 100;
  auto active = [&] {
    std::vector<std::size_t> a;
    for (std::size_t i = 0; i < threads; ++i) {
      if (ts[i].done < ops_per_thread || ts[i].phase != 0) a.push_back(i);
    }
    return a;
  };
  for (auto a = active(); !a.empty(); a = active()) {
    const std::size_t i = a[rng() % a.size()];
    ThreadState& t = ts[i];
    const auto tid = static_cast<ThreadId>(i + 1);
    switch (t.phase) {
      case 0: {
        t.inserting = rng() % 2 == 0;
        if (t.inserting) {
          const std::int64_t v = duplicates && rng() % 3 == 0
                                     ? static_cast<std::int64_t>(rng() % 3)
                                     : next_value++;
          t.arg = Value::integer(v);
          h.invoke(tid, kP, kInsert, t.arg);
        } else {
          t.arg = Value::unit();
          h.invoke(tid, kP, kDeleteMin);
        }
        t.phase = 1;
        break;
      }
      case 1:
        if (t.inserting) {
          pool.insert(std::upper_bound(pool.begin(), pool.end(),
                                       t.arg.as_int()),
                      t.arg.as_int());
          t.ret = Value::boolean(true);
        } else if (pool.empty()) {
          t.ret = Value::pair(false, 0);
        } else {
          t.ret = Value::pair(true, pool.front());
          pool.erase(pool.begin());
        }
        t.phase = 2;
        break;
      default:
        h.respond(tid, kP, t.inserting ? kInsert : kDeleteMin, t.ret);
        t.phase = 0;
        ++t.done;
        break;
    }
  }
  return h;
}

/// Rewrites one successful deleteMin response to return a never-inserted
/// value — guaranteed non-linearizable. Returns h unchanged if there is no
/// successful removal.
History corrupt_removed_value(const History& h) {
  std::vector<Action> actions = h.actions();
  for (Action& a : actions) {
    if (a.is_respond() && a.method == kDeleteMin &&
        a.payload.kind() == Value::Kind::kPair && a.payload.pair_ok()) {
      a.payload = Value::pair(true, 999999);
      break;
    }
  }
  return History(std::move(actions));
}

/// Swaps the values of the first two successful removals (may or may not
/// stay linearizable — only the verdict agreement matters).
History swap_removed_values(const History& h) {
  std::vector<Action> actions = h.actions();
  Action* first = nullptr;
  for (Action& a : actions) {
    if (!a.is_respond() || a.method != kDeleteMin ||
        a.payload.kind() != Value::Kind::kPair || !a.payload.pair_ok()) {
      continue;
    }
    if (first == nullptr) {
      first = &a;
    } else {
      std::swap(first->payload, a.payload);
      break;
    }
  }
  return History(std::move(actions));
}

/// Drops the last response, leaving that operation pending (a pending
/// deleteMin makes the order checker decline to the engine).
History drop_last_response(const History& h) {
  std::vector<Action> actions = h.actions();
  for (auto it = actions.rbegin(); it != actions.rend(); ++it) {
    if (it->is_respond()) {
      actions.erase(std::next(it).base());
      break;
    }
  }
  return History(std::move(actions));
}

TEST(PqDifferential, OrderAndEngineAgreeOnGeneratedCorpus) {
  std::mt19937 rng(20260809);
  PriorityQueueCaSpec spec(kP);
  std::size_t accepts = 0;
  std::size_t rejects = 0;
  std::size_t order_decided = 0;
  std::size_t engine_fallbacks = 0;
  for (int iter = 0; iter < 16; ++iter) {
    const bool duplicates = iter % 4 == 0;
    const History base = random_pq_history(rng, 3, 3, duplicates);
    ASSERT_TRUE(base.complete()) << base.to_string();
    const History variants[] = {base, corrupt_removed_value(base),
                                swap_removed_values(base),
                                drop_last_response(base)};
    for (const History& h : variants) {
      // Reference verdict: sequential engine with exact dedup.
      CalCheckOptions ref;
      ref.order_check = false;
      ref.exact_visited = true;
      const bool want = CalChecker(spec, ref).check(h).ok;
      (want ? accepts : rejects) += 1;
      for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
        for (bool exact : {false, true}) {
          CalCheckOptions engine_opts;
          engine_opts.order_check = false;
          engine_opts.threads = threads;
          engine_opts.exact_visited = exact;
          EXPECT_EQ(CalChecker(spec, engine_opts).check(h).ok, want)
              << "engine t=" << threads << " exact=" << exact << "\n"
              << h.to_string();

          CalCheckOptions order_opts;
          order_opts.threads = threads;
          order_opts.exact_visited = exact;
          CalCheckResult r = CalChecker(spec, order_opts).check(h);
          EXPECT_EQ(r.ok, want)
              << "order-dispatch t=" << threads << " exact=" << exact
              << "\n" << h.to_string();
          (r.order_checked ? order_decided : engine_fallbacks) += 1;
          if (!duplicates && h.complete()) {
            EXPECT_TRUE(r.order_checked)
                << "distinct complete instance left the fragment\n"
                << h.to_string();
          }
        }
      }
    }
  }
  // The corpus must exercise every quadrant.
  EXPECT_GT(accepts, 0u);
  EXPECT_GT(rejects, 0u);
  EXPECT_GT(order_decided, 0u);
  EXPECT_GT(engine_fallbacks, 0u);
}

TEST(PqDifferential, FingerprintAndExactVerdictsMatchOnWideHistory) {
  // One deliberately wide instance (every insert overlaps every removal)
  // on the engine path: the two dedup modes and all thread counts agree,
  // and the order path decides the same instance without any search.
  std::mt19937 rng(7);
  PriorityQueueCaSpec spec(kP);
  const History h = random_pq_history(rng, 4, 2, /*duplicates=*/false);
  CalCheckOptions ref;
  ref.order_check = false;
  ref.exact_visited = true;
  const CalCheckResult want = CalChecker(spec, ref).check(h);
  CalCheckResult order = CalChecker(spec).check(h);
  EXPECT_TRUE(order.order_checked);
  EXPECT_EQ(order.ok, want.ok);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    CalCheckOptions o;
    o.order_check = false;
    o.threads = threads;
    EXPECT_EQ(CalChecker(spec, o).check(h).ok, want.ok);
  }
}

}  // namespace
}  // namespace cal
