// Classical linearizability checker tests, including the formal bridge to
// CAL (a history is linearizable iff CAL w.r.t. the singleton adapter).
#include <gtest/gtest.h>

#include "cal/cal_checker.hpp"
#include "cal/lin_checker.hpp"
#include "cal/specs/queue_spec.hpp"
#include "cal/specs/stack_spec.hpp"

namespace cal {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

TEST(LinChecker, EmptyHistoryLinearizable) {
  StackSpec spec(Symbol{"S"});
  LinChecker checker(spec);
  EXPECT_TRUE(checker.check(History{}));
}

TEST(LinChecker, SequentialStackRuns) {
  StackSpec spec(Symbol{"S"});
  LinChecker checker(spec);
  auto h = HistoryBuilder()
               .op(1, "S", "push", iv(1), Value::boolean(true))
               .op(1, "S", "push", iv(2), Value::boolean(true))
               .op(1, "S", "pop", Value::unit(), Value::pair(true, 2))
               .op(1, "S", "pop", Value::unit(), Value::pair(true, 1))
               .history();
  EXPECT_TRUE(checker.check(h));
}

TEST(LinChecker, LifoViolationRejected) {
  StackSpec spec(Symbol{"S"});
  LinChecker checker(spec);
  auto h = HistoryBuilder()
               .op(1, "S", "push", iv(1), Value::boolean(true))
               .op(1, "S", "push", iv(2), Value::boolean(true))
               .op(1, "S", "pop", Value::unit(), Value::pair(true, 1))
               .history();
  EXPECT_FALSE(checker.check(h));
}

TEST(LinChecker, ConcurrentPushesLinearizeInEitherOrder) {
  StackSpec spec(Symbol{"S"});
  LinChecker checker(spec);
  for (std::int64_t first : {1, 2}) {
    auto h = HistoryBuilder()
                 .call(1, "S", "push", iv(1))
                 .call(2, "S", "push", iv(2))
                 .ret(1, Value::boolean(true))
                 .ret(2, Value::boolean(true))
                 .op(3, "S", "pop", Value::unit(), Value::pair(true, first))
                 .history();
    EXPECT_TRUE(checker.check(h)) << "first=" << first;
  }
}

TEST(LinChecker, PopOverlappingPushMaySeeIt) {
  StackSpec spec(Symbol{"S"});
  LinChecker checker(spec);
  auto h = HistoryBuilder()
               .call(1, "S", "push", iv(7))
               .call(2, "S", "pop")
               .ret(2, Value::pair(true, 7))
               .ret(1, Value::boolean(true))
               .history();
  EXPECT_TRUE(checker.check(h));
}

TEST(LinChecker, PopCannotSeeLaterPush) {
  StackSpec spec(Symbol{"S"});
  LinChecker checker(spec);
  auto h = HistoryBuilder()
               .op(2, "S", "pop", Value::unit(), Value::pair(true, 7))
               .op(1, "S", "push", iv(7), Value::boolean(true))
               .history();
  EXPECT_FALSE(checker.check(h));
}

TEST(LinChecker, PendingPushMayBeCompletedToExplainPop) {
  StackSpec spec(Symbol{"S"});
  LinChecker checker(spec);
  auto h = HistoryBuilder()
               .call(1, "S", "push", iv(7))
               .op(2, "S", "pop", Value::unit(), Value::pair(true, 7))
               .history();
  EXPECT_TRUE(checker.check(h));

  LinCheckOptions opts;
  opts.complete_pending = false;
  LinChecker strict(spec, opts);
  EXPECT_FALSE(strict.check(h));
}

TEST(LinChecker, QueueFifoSemantics) {
  QueueSpec spec(Symbol{"Q"});
  LinChecker checker(spec);
  auto ok = HistoryBuilder()
                .op(1, "Q", "enq", iv(1), Value::boolean(true))
                .op(1, "Q", "enq", iv(2), Value::boolean(true))
                .op(2, "Q", "deq", Value::unit(), Value::pair(true, 1))
                .op(2, "Q", "deq", Value::unit(), Value::pair(true, 2))
                .history();
  EXPECT_TRUE(checker.check(ok));
  auto bad = HistoryBuilder()
                 .op(1, "Q", "enq", iv(1), Value::boolean(true))
                 .op(1, "Q", "enq", iv(2), Value::boolean(true))
                 .op(2, "Q", "deq", Value::unit(), Value::pair(true, 2))
                 .history();
  EXPECT_FALSE(checker.check(bad));
}

TEST(LinChecker, QueueEmptyDeqOnlyWhenEmptyIsPossible) {
  QueueSpec spec(Symbol{"Q"});
  LinChecker checker(spec);
  // deq ▷ empty while an enq is concurrent: the deq may linearize first.
  auto ok = HistoryBuilder()
                .call(1, "Q", "enq", iv(1))
                .op(2, "Q", "deq", Value::unit(), Value::pair(false, 0))
                .ret(1, Value::boolean(true))
                .history();
  EXPECT_TRUE(checker.check(ok));
  // deq ▷ empty strictly after a completed enq with no other deq: rejected.
  auto bad = HistoryBuilder()
                 .op(1, "Q", "enq", iv(1), Value::boolean(true))
                 .op(2, "Q", "deq", Value::unit(), Value::pair(false, 0))
                 .history();
  EXPECT_FALSE(checker.check(bad));
}

TEST(LinChecker, WitnessIsAValidLinearization) {
  QueueSpec spec(Symbol{"Q"});
  LinChecker checker(spec);
  auto h = HistoryBuilder()
               .call(1, "Q", "enq", iv(1))
               .call(2, "Q", "enq", iv(2))
               .ret(1, Value::boolean(true))
               .ret(2, Value::boolean(true))
               .op(3, "Q", "deq", Value::unit(), Value::pair(true, 2))
               .history();
  LinCheckResult r = checker.check(h);
  ASSERT_TRUE(r);
  ASSERT_TRUE(r.witness.has_value());
  ASSERT_EQ(r.witness->size(), 3u);
  // First linearized op must be enq(2) for deq to return 2.
  EXPECT_EQ((*r.witness)[0].arg, iv(2));
}

TEST(LinChecker, CrossValidatesWithCalCheckerOnSingletonAdapter) {
  // The formal bridge: lin(H, S) ⟺ CAL(H, SeqAsCaSpec(S)). Spot-check on a
  // batch of hand-picked histories (the property test sweeps random ones).
  const Symbol s{"S"};
  StackSpec seq(s);
  auto shared = std::make_shared<StackSpec>(s);
  SeqAsCaSpec ca(shared);
  LinChecker lin(seq);
  CalChecker cal(ca);

  std::vector<History> histories;
  histories.push_back(HistoryBuilder()
                          .op(1, "S", "push", iv(1), Value::boolean(true))
                          .op(2, "S", "pop", Value::unit(),
                              Value::pair(true, 1))
                          .history());
  histories.push_back(HistoryBuilder()
                          .op(1, "S", "push", iv(1), Value::boolean(true))
                          .op(2, "S", "pop", Value::unit(),
                              Value::pair(true, 2))
                          .history());
  histories.push_back(HistoryBuilder()
                          .call(1, "S", "push", iv(1))
                          .call(2, "S", "pop")
                          .ret(2, Value::pair(true, 1))
                          .ret(1, Value::boolean(true))
                          .history());
  for (const History& h : histories) {
    EXPECT_EQ(static_cast<bool>(lin.check(h)),
              static_cast<bool>(cal.check(h)))
        << h.to_string();
  }
}

}  // namespace
}  // namespace cal
