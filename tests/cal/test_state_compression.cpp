// State-space compression equivalence: the fingerprinted visited set
// (default) and the exact stored-key set (CalCheckOptions::exact_visited)
// must produce identical verdicts on the whole corpus — the checked-in
// example histories plus the generated stress families the parallel
// equivalence suite draws from — at threads ∈ {1, 2, 8}. Every accepting
// witness must additionally replay against the spec (T ∈ 𝒯) and agree
// (Def. 5) with the history. Plus unit tests for the fingerprint
// primitives themselves.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "cal/agree.hpp"
#include "cal/cal_checker.hpp"
#include "cal/fingerprint.hpp"
#include "cal/replay.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "cal/text.hpp"
#include "corpus.hpp"

namespace cal {
namespace {

const Symbol kE{"E"};
const Symbol kEx{"exchange"};
const Symbol kS{"S"};

// ---------------------------------------------------------------------------
// Fingerprint primitives.

TEST(Fingerprint, DeterministicAndSensitive) {
  const std::vector<std::int64_t> a{1, 2, 3};
  const std::vector<std::int64_t> b{1, 2, 4};
  const std::vector<std::int64_t> c{1, 2};
  EXPECT_EQ(fingerprint_key(a), fingerprint_key(a));
  EXPECT_NE(fingerprint_key(a), fingerprint_key(b));
  EXPECT_NE(fingerprint_key(a), fingerprint_key(c));
  // Length participates in the seed: a zero-extended key differs.
  EXPECT_NE(fingerprint_key({0}), fingerprint_key({0, 0}));
  EXPECT_NE(fingerprint_key({}), fingerprint_key({0}));
}

TEST(Fingerprint, NeverAllZero) {
  // The all-zero fingerprint marks an empty slot; the empty key (and any
  // other) must be remapped away from it.
  const Fingerprint128 fp = fingerprint_key({});
  EXPECT_FALSE(fp.lo == 0 && fp.hi == 0);
}

TEST(FingerprintSet, InsertContainsGrow) {
  FingerprintSet set(4);
  std::vector<Fingerprint128> fps;
  for (std::int64_t i = 0; i < 1000; ++i) {
    fps.push_back(fingerprint_key({i, i * 7, i ^ 42}));
  }
  for (const Fingerprint128& fp : fps) {
    EXPECT_FALSE(set.contains(fp));
    EXPECT_TRUE(set.insert(fp));   // new
    EXPECT_FALSE(set.insert(fp));  // duplicate
    EXPECT_TRUE(set.contains(fp));
  }
  EXPECT_EQ(set.size(), fps.size());
  // Open addressing at load factor <= 1/2: table is bounded but nontrivial.
  EXPECT_GE(set.bytes(), fps.size() * sizeof(Fingerprint128));
}

TEST(FingerprintSet, CompressesAgainstStoredKeys) {
  // The point of the tentpole: 16 bytes per state instead of the full key.
  FingerprintSet set(64);
  std::vector<std::int64_t> key(64, 0);
  std::size_t exact_bytes = 0;
  for (std::int64_t i = 0; i < 512; ++i) {
    key[0] = i;
    set.insert(fingerprint_key(key));
    exact_bytes += key.size() * sizeof(std::int64_t);
  }
  EXPECT_EQ(set.size(), 512u);
  EXPECT_LT(set.bytes(), exact_bytes / 2);
}

// ---------------------------------------------------------------------------
// Equivalence harness: fingerprint vs exact × threads {1, 2, 8}.

void expect_modes_equivalent(const CaSpec& spec, const History& h,
                             std::optional<bool> expect = std::nullopt) {
  std::optional<bool> verdict;
  for (bool exact : {false, true}) {
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      CalCheckOptions opts;
      opts.threads = threads;
      opts.exact_visited = exact;
      CalChecker checker(spec, opts);
      CalCheckResult r = checker.check(h);
      if (!verdict) {
        verdict = r.ok;
      } else {
        ASSERT_EQ(r.ok, *verdict)
            << "exact=" << exact << " threads=" << threads
            << " diverged on\n"
            << h.to_string();
      }
      EXPECT_GT(r.visited_bytes, 0u)
          << "exact=" << exact << " threads=" << threads;
      if (r.ok) {
        // The witness must be spec-admissible, not just present.
        ReplayResult replayed = replay_ca(*r.witness, spec);
        EXPECT_TRUE(replayed.ok)
            << "exact=" << exact << " threads=" << threads << ": "
            << replayed.reason;
        if (h.complete()) {
          AgreeResult a = agrees_with(h, *r.witness);
          EXPECT_TRUE(a.agrees)
              << "exact=" << exact << " threads=" << threads << ": "
              << a.reason << "\n"
              << h.to_string() << r.witness->to_string();
        }
      }
    }
  }
  if (expect) {
    EXPECT_EQ(*verdict, *expect) << h.to_string();
  }
}


TEST(StateCompressionCorpus, ExampleHistories) {
  ExchangerSpec ex(kE, kEx);
  expect_modes_equivalent(ex, load_history("fig3_h1.history"), true);
  expect_modes_equivalent(ex, load_history("fig3_h3.history"), false);
  SeqAsCaSpec stack(std::make_shared<StackSpec>(kS));
  expect_modes_equivalent(stack, load_history("stack.history"), true);
}

class StateCompressionEquivalence : public ::testing::TestWithParam<unsigned> {
};

TEST_P(StateCompressionEquivalence, ValidExchangerRuns) {
  std::mt19937 rng(GetParam());
  ExchangerSpec spec(kE, kEx);
  const History h = random_exchanger_history(rng, 4, 3);
  ASSERT_TRUE(h.well_formed());
  expect_modes_equivalent(spec, h, true);
}

TEST_P(StateCompressionEquivalence, CorruptedExchangerRuns) {
  std::mt19937 rng(GetParam() + 500);
  ExchangerSpec spec(kE, kEx);
  const auto bad = corrupt(random_exchanger_history(rng, 4, 3));
  if (!bad) GTEST_SKIP() << "run had no successful exchange";
  expect_modes_equivalent(spec, *bad, false);
}

TEST_P(StateCompressionEquivalence, PendingInvocations) {
  std::mt19937 rng(GetParam() + 600);
  ExchangerSpec spec(kE, kEx);
  History h = random_exchanger_history(rng, 3, 2);
  std::vector<Action> actions = h.actions();
  std::size_t responses_dropped = 0;
  while (!actions.empty() && responses_dropped < 2) {
    if (actions.back().is_respond()) ++responses_dropped;
    actions.pop_back();
  }
  const History pending{std::move(actions)};
  if (!pending.well_formed()) GTEST_SKIP();
  expect_modes_equivalent(spec, pending);
}

TEST_P(StateCompressionEquivalence, SequentialSpecOverAdapter) {
  std::mt19937 rng(GetParam() + 700);
  SeqAsCaSpec spec(std::make_shared<StackSpec>(kS));
  for (int round = 0; round < 3; ++round) {
    expect_modes_equivalent(spec, garbage_stack_history(rng, 6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateCompressionEquivalence,
                         ::testing::Range(0u, 10u));

TEST(StateCompressionStress, WideOverlapBothModes) {
  ExchangerSpec spec(kE, kEx);
  expect_modes_equivalent(spec, wide_overlap_history(6, false), true);
  expect_modes_equivalent(spec, wide_overlap_history(6, true), false);
}

TEST(StateCompressionStress, FingerprintsUseLessMemory) {
  // On the subset-enumeration blowup the fingerprinted set must be at
  // least 2x smaller than the stored-key set (acceptance criterion).
  ExchangerSpec spec(kE, kEx);
  const History h = wide_overlap_history(7, /*corrupt_one=*/true);
  CalCheckOptions fp_opts;
  CalCheckOptions exact_opts;
  exact_opts.exact_visited = true;
  CalCheckResult fp = CalChecker(spec, fp_opts).check(h);
  CalCheckResult exact = CalChecker(spec, exact_opts).check(h);
  EXPECT_EQ(fp.ok, exact.ok);
  EXPECT_EQ(fp.visited_states, exact.visited_states);
  EXPECT_GE(exact.visited_bytes, 2 * fp.visited_bytes)
      << "fingerprints=" << fp.visited_bytes
      << " exact=" << exact.visited_bytes;
}

TEST(StateCompression, MemoAndPruningCountersPopulated) {
  // The wide-overlap workload revisits states: the step cache must see
  // hits, and the exchanger pre-filter must prune mismatched pairs.
  ExchangerSpec spec(kE, kEx);
  const History h = wide_overlap_history(6, /*corrupt_one=*/true);
  CalCheckResult r = CalChecker(spec).check(h);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.step_cache_hits + r.step_cache_misses, 0u);
  EXPECT_GT(r.pruned_subsets, 0u);
}

}  // namespace
}  // namespace cal
