// View functions (§4) and the concrete F_AR / F_ES of §5.
#include <gtest/gtest.h>

#include "cal/replay.hpp"
#include "cal/specs/elim_views.hpp"
#include "cal/specs/stack_spec.hpp"
#include "cal/view.hpp"

namespace cal {
namespace {

const Symbol kES{"ES"};
const Symbol kS{"ES.S"};
const Symbol kAR{"ES.AR"};
const Symbol kPush{"push"};
const Symbol kPop{"pop"};
const Symbol kEx{"exchange"};

Value iv(std::int64_t x) { return Value::integer(x); }

CaElement s_push(ThreadId t, std::int64_t v, bool ok) {
  return CaElement::singleton(
      kS, Operation::make(t, kS, kPush, iv(v), Value::boolean(ok)));
}
CaElement s_pop(ThreadId t, bool ok, std::int64_t v) {
  return CaElement::singleton(
      kS, Operation::make(t, kS, kPop, Value::unit(), Value::pair(ok, v)));
}
CaElement slot_swap(std::size_t slot, ThreadId t, std::int64_t v, ThreadId t2,
                    std::int64_t v2) {
  return CaElement::swap(elim_slot_name(kAR, slot), kEx, t, v, t2, v2);
}
CaElement slot_fail(std::size_t slot, ThreadId t, std::int64_t v) {
  const Symbol e = elim_slot_name(kAR, slot);
  return CaElement::singleton(
      e, Operation::make(t, e, kEx, iv(v), Value::pair(false, v)));
}

TEST(Views, FArRenamesSlotElementsToArray) {
  auto f_ar = make_f_ar(kAR, 4);
  CaTrace raw;
  raw.append(slot_swap(2, 1, 10, 2, kInfinity));
  CaTrace mapped = total_apply(*f_ar, raw);
  ASSERT_EQ(mapped.size(), 1u);
  EXPECT_EQ(mapped[0].object(), kAR);
  EXPECT_EQ(mapped[0].size(), 2u);
  for (const Operation& op : mapped[0].ops()) EXPECT_EQ(op.object, kAR);
}

TEST(Views, FArLeavesOtherObjectsUntouched) {
  auto f_ar = make_f_ar(kAR, 4);
  CaTrace raw;
  raw.append(s_push(1, 5, true));
  CaTrace mapped = total_apply(*f_ar, raw);
  ASSERT_EQ(mapped.size(), 1u);
  EXPECT_EQ(mapped[0], raw[0]);
}

TEST(Views, FEsLiftsSuccessfulStackOps) {
  auto view = make_elimination_stack_view(kES, kS, kAR, 4);
  CaTrace raw;
  raw.append(s_push(1, 5, true));
  raw.append(s_pop(2, true, 5));
  CaTrace es = view->view(raw);
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0].object(), kES);
  EXPECT_EQ(es[0].ops().front().method, kPush);
  EXPECT_EQ(es[1].ops().front().method, kPop);
  EXPECT_EQ(*es[1].ops().front().ret, Value::pair(true, 5));
}

TEST(Views, FEsErasesFailedStackOps) {
  auto view = make_elimination_stack_view(kES, kS, kAR, 4);
  CaTrace raw;
  raw.append(s_push(1, 5, false));
  raw.append(s_pop(2, false, 0));
  EXPECT_EQ(view->view(raw).size(), 0u);
}

TEST(Views, FEsMapsEliminationToPushThenPop) {
  auto view = make_elimination_stack_view(kES, kS, kAR, 4);
  CaTrace raw;
  // t1 pushes 10, t2 pops: swap of (10, ∞) on slot 3.
  raw.append(slot_swap(3, 1, 10, 2, kInfinity));
  CaTrace es = view->view(raw);
  ASSERT_EQ(es.size(), 2u);
  // "the push is linearized before the pop" (§5)
  EXPECT_EQ(es[0].ops().front().method, kPush);
  EXPECT_EQ(es[0].ops().front().tid, 1u);
  EXPECT_EQ(es[0].ops().front().arg, iv(10));
  EXPECT_EQ(es[1].ops().front().method, kPop);
  EXPECT_EQ(es[1].ops().front().tid, 2u);
  EXPECT_EQ(*es[1].ops().front().ret, Value::pair(true, 10));
}

TEST(Views, FEsMapsEliminationRegardlessOfElementOrder) {
  auto view = make_elimination_stack_view(kES, kS, kAR, 4);
  CaTrace raw;
  raw.append(slot_swap(0, 2, kInfinity, 1, 10));  // popper listed first
  CaTrace es = view->view(raw);
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0].ops().front().method, kPush);
}

TEST(Views, FEsErasesFailedExchanges) {
  auto view = make_elimination_stack_view(kES, kS, kAR, 4);
  CaTrace raw;
  raw.append(slot_fail(1, 1, 10));
  raw.append(slot_fail(2, 2, kInfinity));
  EXPECT_EQ(view->view(raw).size(), 0u);
}

TEST(Views, FEsErasesSameSideCollisions) {
  auto view = make_elimination_stack_view(kES, kS, kAR, 4);
  CaTrace raw;
  raw.append(slot_swap(0, 1, 10, 2, 20));  // push/push collision
  EXPECT_EQ(view->view(raw).size(), 0u);
  CaTrace raw2;
  raw2.append(slot_swap(0, 1, kInfinity, 2, kInfinity));  // pop/pop
  EXPECT_EQ(view->view(raw2).size(), 0u);
}

TEST(Views, ComposedViewImplementsSection5Example) {
  // A realistic mixed trace: a central push, an elimination, a failed
  // exchange, a failed stack pop — mapped and replayed against WFS.
  auto view = make_elimination_stack_view(kES, kS, kAR, 4);
  CaTrace raw;
  raw.append(s_push(1, 5, true));          // ES.push(5) via S
  raw.append(slot_fail(2, 3, kInfinity));  // t3's failed exchange: erased
  raw.append(slot_swap(1, 2, 7, 3, kInfinity));  // t2 push 7 / t3 pop: elim
  raw.append(s_pop(1, false, 0));          // failed central pop: erased
  raw.append(s_pop(1, true, 5));           // ES.pop ▷ 5 via S
  CaTrace es = view->view(raw);
  ASSERT_EQ(es.size(), 4u);

  StackSpec spec(kES);
  ReplayResult r = replay_sequential(es, spec);
  EXPECT_TRUE(r) << r.reason;
  EXPECT_TRUE(r.final_state.empty());  // everything pushed was popped
}

TEST(Views, WfsRejectsWrongPopValue) {
  auto view = make_elimination_stack_view(kES, kS, kAR, 4);
  CaTrace raw;
  raw.append(s_push(1, 5, true));
  raw.append(s_pop(2, true, 6));  // wrong value popped
  StackSpec spec(kES);
  EXPECT_FALSE(replay_sequential(view->view(raw), spec));
}

TEST(Views, LambdaViewNulloptMeansIdentity) {
  LambdaView undefined([](const CaElement&) { return std::nullopt; });
  CaTrace raw;
  raw.append(s_push(1, 1, true));
  EXPECT_EQ(total_apply(undefined, raw), raw);
}

TEST(Views, EmptyImageErasesElement) {
  LambdaView eraser([](const CaElement&) {
    return std::optional<CaTrace>(CaTrace{});
  });
  CaTrace raw;
  raw.append(s_push(1, 1, true));
  EXPECT_EQ(total_apply(eraser, raw).size(), 0u);
}

TEST(Views, ChildViewsCommute) {
  // §4: for disjoint objects, F̂_o ∘ F̂_o' = F̂_o' ∘ F̂_o. Check with two
  // renamers over disjoint sources.
  const Symbol a{"A"};
  const Symbol b{"B"};
  RenameObjectView ra({Symbol{"A0"}}, a);
  RenameObjectView rb({Symbol{"B0"}}, b);
  CaTrace raw;
  raw.append(CaElement::singleton(
      Symbol{"A0"}, Operation::make(1, Symbol{"A0"}, kPush, iv(1),
                                    Value::boolean(true))));
  raw.append(CaElement::singleton(
      Symbol{"B0"}, Operation::make(2, Symbol{"B0"}, kPop, Value::unit(),
                                    Value::pair(true, 1))));
  EXPECT_EQ(total_apply(ra, total_apply(rb, raw)),
            total_apply(rb, total_apply(ra, raw)));
}

}  // namespace
}  // namespace cal
