// Text serialization round-trips and error reporting.
#include <gtest/gtest.h>

#include "cal/text.hpp"

namespace cal {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

TEST(Text, ValueRoundTrips) {
  const Value values[] = {
      Value::unit(),       Value::boolean(true), Value::boolean(false),
      iv(0),               iv(-17),              iv(kInfinity),
      Value::pair(true, 4), Value::pair(false, -2),
      Value::pair(true, kInfinity), Value::vec({}), Value::vec({1, 2, 3}),
  };
  for (const Value& v : values) {
    const auto back = parse_value(format_value(v));
    ASSERT_TRUE(back.has_value()) << format_value(v);
    EXPECT_EQ(*back, v) << format_value(v);
  }
}

TEST(Text, ValueRejectsGarbage) {
  for (const char* bad : {"", "tru", "(true)", "(maybe,1)", "(true,)",
                          "[1,", "12x", "-", "()x"}) {
    EXPECT_FALSE(parse_value(bad).has_value()) << bad;
  }
}

TEST(Text, HistoryRoundTrips) {
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(1, Value::pair(true, 4))
               .ret(2, Value::pair(true, 3))
               .call(3, "ES.AR.E[0]", "exchange", iv(kInfinity))
               .history();
  const std::string text = format_history(h);
  ParseResult<History> back = parse_history(text);
  ASSERT_TRUE(back) << back.error->message;
  EXPECT_EQ(*back.value, h) << text;
}

TEST(Text, HistoryParsesCommentsAndBlankLines) {
  const char* text =
      "# Fig. 3 H1\n"
      "\n"
      "inv t1 E.exchange 3\n"
      "res t1 E.exchange (false,3)\n";
  ParseResult<History> r = parse_history(text);
  ASSERT_TRUE(r);
  EXPECT_EQ(r.value->size(), 2u);
  EXPECT_TRUE(r.value->complete());
}

TEST(Text, HistoryUnitPayloadIsOptionalOnInvoke) {
  ParseResult<History> r = parse_history("inv t1 S.pop\n");
  ASSERT_TRUE(r);
  EXPECT_TRUE((*r.value)[0].payload.is_unit());
}

TEST(Text, HistoryReportsLineNumbers) {
  ParseResult<History> r =
      parse_history("inv t1 E.exchange 3\nbogus line here\n");
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error->line, 2u);
}

TEST(Text, HistoryRejectsBadThread) {
  ParseResult<History> r = parse_history("inv x1 E.exchange 3\n");
  ASSERT_FALSE(r);
  EXPECT_NE(r.error->message.find("thread"), std::string::npos);
}

TEST(Text, HistoryRejectsMissingMethod) {
  ParseResult<History> r = parse_history("inv t1 Exchange 3\n");
  ASSERT_FALSE(r);
}

TEST(Text, TraceRoundTrips) {
  const Symbol e{"E"};
  const Symbol ex{"exchange"};
  CaTrace t;
  t.append(CaElement::swap(e, ex, 1, 3, 2, 4));
  t.append(CaElement::singleton(
      e, Operation::make(3, e, ex, iv(7), Value::pair(false, 7))));
  const std::string text = format_trace(t);
  ParseResult<CaTrace> back = parse_trace(text);
  ASSERT_TRUE(back) << back.error->message;
  EXPECT_EQ(*back.value, t) << text;
}

TEST(Text, TraceParsesDottedObjects) {
  ParseResult<CaTrace> r = parse_trace(
      "elem ES.AR.E[0].{t1 exchange 10 (true,inf) | "
      "t2 exchange inf (true,10)}\n");
  ASSERT_TRUE(r) << r.error->message;
  ASSERT_EQ(r.value->size(), 1u);
  EXPECT_EQ((*r.value)[0].object().str(), "ES.AR.E[0]");
  EXPECT_EQ((*r.value)[0].size(), 2u);
}

TEST(Text, TraceRejectsEmptyElement) {
  EXPECT_FALSE(parse_trace("elem E.{}\n"));
  EXPECT_FALSE(parse_trace("elem E.{t1 exchange}\n"));
  EXPECT_FALSE(parse_trace("element E.{t1 exchange 1 (false,1)}\n"));
}

}  // namespace
}  // namespace cal
