// Parallel-vs-sequential equivalence for the CAL membership checker: the
// same history corpus the property tests draw from, checked at
// threads ∈ {1, 2, 8}, must produce identical verdicts — and every
// parallel witness must itself satisfy the Def. 5 agreement with the
// history. Plus a stress run on the wide-overlap workload, the subset
// enumeration's adversarial case, under full pool contention.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

#include "cal/agree.hpp"
#include "cal/cal_checker.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/stack_spec.hpp"

namespace cal {
namespace {

const Symbol kE{"E"};
const Symbol kEx{"exchange"};
const Symbol kS{"S"};

Value iv(std::int64_t x) { return Value::integer(x); }

/// Valid exchanger execution (same shape as the property-test generator):
/// threads invoke, overlapping undecided operations pair up or fail,
/// responses are emitted after commitment.
History random_exchanger_history(std::mt19937& rng, std::size_t n_threads,
                                 std::size_t ops_per_thread) {
  struct Active {
    ThreadId tid;
    std::int64_t v;
    bool decided = false;
    Value ret;
  };
  History h;
  std::vector<std::size_t> remaining(n_threads, ops_per_thread);
  std::vector<std::optional<Active>> active(n_threads);
  std::int64_t next_value = 1;
  auto rnd = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
  };
  auto some_left = [&] {
    for (std::size_t t = 0; t < n_threads; ++t) {
      if (remaining[t] > 0 || active[t].has_value()) return true;
    }
    return false;
  };
  while (some_left()) {
    switch (rnd(3)) {
      case 0: {
        std::vector<std::size_t> can;
        for (std::size_t t = 0; t < n_threads; ++t) {
          if (remaining[t] > 0 && !active[t]) can.push_back(t);
        }
        if (can.empty()) break;
        const std::size_t t = can[rnd(can.size())];
        const std::int64_t v = next_value++;
        active[t] = Active{static_cast<ThreadId>(t + 1), v, false,
                           Value::unit()};
        remaining[t] -= 1;
        h.invoke(static_cast<ThreadId>(t + 1), kE, kEx, iv(v));
        break;
      }
      case 1: {
        std::vector<std::size_t> undecided;
        for (std::size_t t = 0; t < n_threads; ++t) {
          if (active[t] && !active[t]->decided) undecided.push_back(t);
        }
        if (undecided.empty()) break;
        if (undecided.size() >= 2 && rnd(2) == 0) {
          const std::size_t i = undecided[rnd(undecided.size())];
          std::size_t j = i;
          while (j == i) j = undecided[rnd(undecided.size())];
          active[i]->decided = true;
          active[j]->decided = true;
          active[i]->ret = Value::pair(true, active[j]->v);
          active[j]->ret = Value::pair(true, active[i]->v);
        } else {
          const std::size_t i = undecided[rnd(undecided.size())];
          active[i]->decided = true;
          active[i]->ret = Value::pair(false, active[i]->v);
        }
        break;
      }
      case 2: {
        std::vector<std::size_t> decided;
        for (std::size_t t = 0; t < n_threads; ++t) {
          if (active[t] && active[t]->decided) decided.push_back(t);
        }
        if (decided.empty()) break;
        const std::size_t t = decided[rnd(decided.size())];
        h.respond(active[t]->tid, kE, kEx, active[t]->ret);
        active[t].reset();
        break;
      }
    }
  }
  return h;
}

/// Corrupts the first successful response to a value nobody offered
/// (rejected by the spec). Returns nullopt when the run had no swap.
std::optional<History> corrupt(const History& h) {
  std::vector<Action> actions = h.actions();
  for (Action& a : actions) {
    if (a.is_respond() && a.payload.kind() == Value::Kind::kPair &&
        a.payload.pair_ok()) {
      a.payload = Value::pair(true, 99999);
      return History(std::move(actions));
    }
  }
  return std::nullopt;
}

/// Fully random (usually invalid) stack history.
History garbage_stack_history(std::mt19937& rng, std::size_t n_ops) {
  auto rnd = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
  };
  HistoryBuilder b;
  for (std::size_t i = 0; i < n_ops; ++i) {
    const ThreadId tid = static_cast<ThreadId>(rnd(3) + 1);
    if (rnd(2) == 0) {
      b.op(tid, "S", "push", iv(static_cast<std::int64_t>(rnd(3) + 1)),
           Value::boolean(true));
    } else {
      b.op(tid, "S", "pop", Value::unit(),
           Value::pair(true, static_cast<std::int64_t>(rnd(3) + 1)));
    }
  }
  return b.history();
}

/// All operations pairwise concurrent — the subset-enumeration blowup.
History wide_overlap_history(std::size_t width, bool corrupt_one) {
  HistoryBuilder b;
  for (std::size_t t = 1; t <= width; ++t) {
    b.call(static_cast<ThreadId>(t), "E", "exchange",
           iv(static_cast<std::int64_t>(t)));
  }
  for (std::size_t t = 1; t <= width; ++t) {
    const auto v = static_cast<std::int64_t>(t);
    b.ret(static_cast<ThreadId>(t),
          corrupt_one && t == width ? Value::pair(true, 424242)
                                    : Value::pair(false, v));
  }
  return b.history();
}

/// Checks `h` at every thread count and asserts one common verdict; when
/// accepting, every engine's witness must agree (Def. 5) with the history
/// if it is complete.
void expect_equivalent(const CaSpec& spec, const History& h,
                       std::optional<bool> expect = std::nullopt) {
  std::optional<bool> verdict;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    CalCheckOptions opts;
    opts.threads = threads;
    CalChecker checker(spec, opts);
    CalCheckResult r = checker.check(h);
    if (!verdict) {
      verdict = r.ok;
    } else {
      ASSERT_EQ(r.ok, *verdict)
          << "threads=" << threads << " diverged on\n"
          << h.to_string();
    }
    if (r.ok && h.complete()) {
      AgreeResult a = agrees_with(h, *r.witness);
      EXPECT_TRUE(a.agrees) << "threads=" << threads << ": " << a.reason
                            << "\n"
                            << h.to_string() << r.witness->to_string();
    }
  }
  if (expect) {
    EXPECT_EQ(*verdict, *expect) << h.to_string();
  }
}

class ParallelCheckerEquivalence : public ::testing::TestWithParam<unsigned> {
};

TEST_P(ParallelCheckerEquivalence, ValidExchangerRuns) {
  std::mt19937 rng(GetParam());
  ExchangerSpec spec(kE, kEx);
  const History h = random_exchanger_history(rng, 4, 3);
  ASSERT_TRUE(h.well_formed());
  expect_equivalent(spec, h, true);
}

TEST_P(ParallelCheckerEquivalence, CorruptedExchangerRuns) {
  std::mt19937 rng(GetParam() + 100);
  ExchangerSpec spec(kE, kEx);
  const auto bad = corrupt(random_exchanger_history(rng, 4, 3));
  if (!bad) GTEST_SKIP() << "run had no successful exchange";
  expect_equivalent(spec, *bad, false);
}

TEST_P(ParallelCheckerEquivalence, PendingInvocations) {
  // Drop the tail of the responses: the checker must agree on completions
  // (response extension vs invocation removal) at every thread count.
  std::mt19937 rng(GetParam() + 200);
  ExchangerSpec spec(kE, kEx);
  History h = random_exchanger_history(rng, 3, 2);
  std::vector<Action> actions = h.actions();
  std::size_t responses_dropped = 0;
  while (!actions.empty() && responses_dropped < 2) {
    if (actions.back().is_respond()) ++responses_dropped;
    actions.pop_back();
  }
  const History pending{std::move(actions)};
  if (!pending.well_formed()) GTEST_SKIP();
  expect_equivalent(spec, pending);
}

TEST_P(ParallelCheckerEquivalence, SequentialSpecOverAdapter) {
  std::mt19937 rng(GetParam() + 300);
  auto seq = std::make_shared<StackSpec>(kS);
  SeqAsCaSpec spec(seq);
  for (int round = 0; round < 3; ++round) {
    expect_equivalent(spec, garbage_stack_history(rng, 6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelCheckerEquivalence,
                         ::testing::Range(0u, 15u));

TEST(ParallelCheckerStress, WideOverlapUnderContention) {
  // Repeated full-pool checks of the adversarial workload: all operations
  // overlap, so the top-level fan-out floods the task pool and the shared
  // visited set sees maximal contention.
  ExchangerSpec spec(kE, kEx);
  CalCheckOptions opts;
  opts.threads = 8;
  CalChecker parallel(spec, opts);
  CalChecker sequential(spec);
  for (int round = 0; round < 5; ++round) {
    const History ok = wide_overlap_history(7, /*corrupt_one=*/false);
    const History bad = wide_overlap_history(7, /*corrupt_one=*/true);
    EXPECT_EQ(static_cast<bool>(sequential.check(ok)),
              static_cast<bool>(parallel.check(ok)));
    EXPECT_EQ(static_cast<bool>(sequential.check(bad)),
              static_cast<bool>(parallel.check(bad)));
  }
}

TEST(ParallelCheckerStress, MaxVisitedCapStillTerminates) {
  ExchangerSpec spec(kE, kEx);
  CalCheckOptions opts;
  opts.threads = 8;
  opts.max_visited = 16;
  CalChecker checker(spec, opts);
  const History h = wide_overlap_history(8, /*corrupt_one=*/true);
  CalCheckResult r = checker.check(h);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.exhausted);
}

TEST(ParallelChecker, ZeroThreadsMeansHardwareConcurrency) {
  ExchangerSpec spec(kE, kEx);
  CalCheckOptions opts;
  opts.threads = 0;
  CalChecker checker(spec, opts);
  EXPECT_TRUE(checker.check(wide_overlap_history(4, false)));
}

}  // namespace
}  // namespace cal
