// Symbol, Value, Action, Operation, CaElement/CaTrace unit tests.
#include <gtest/gtest.h>

#include <unordered_set>

#include "cal/ca_trace.hpp"
#include "cal/history.hpp"
#include "cal/spec.hpp"
#include "cal/symbol.hpp"
#include "cal/value.hpp"

namespace cal {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

TEST(SymbolTest, InterningIsStable) {
  Symbol a{"push"};
  Symbol b{"push"};
  Symbol c{"pop"};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.str(), "push");
  EXPECT_EQ(c.str(), "pop");
}

TEST(SymbolTest, NullSymbolDistinctFromInterned) {
  Symbol null;
  EXPECT_TRUE(null.is_null());
  EXPECT_NE(null, Symbol{""});  // even "" gets a real id
  EXPECT_EQ(null.str(), "");
}

TEST(SymbolTest, UsableAsHashKey) {
  std::unordered_set<Symbol> set;
  set.insert(Symbol{"a"});
  set.insert(Symbol{"b"});
  set.insert(Symbol{"a"});
  EXPECT_EQ(set.size(), 2u);
}

TEST(ValueTest, KindsCompareUnequal) {
  EXPECT_NE(Value::unit(), Value::boolean(false));
  EXPECT_NE(Value::boolean(true), iv(1));
  EXPECT_NE(iv(1), Value::pair(true, 1));
  EXPECT_NE(Value::vec({1}), iv(1));
}

TEST(ValueTest, PairAccessors) {
  Value p = Value::pair(true, 7);
  EXPECT_TRUE(p.pair_ok());
  EXPECT_EQ(p.pair_int(), 7);
  EXPECT_EQ(p.to_string(), "(true,7)");
}

TEST(ValueTest, InfinityPrintsAsInf) {
  EXPECT_EQ(iv(kInfinity).to_string(), "inf");
  EXPECT_EQ(Value::pair(true, kInfinity).to_string(), "(true,inf)");
}

TEST(ValueTest, OrderingIsTotal) {
  std::vector<Value> vals = {Value::unit(), Value::boolean(false),
                             Value::boolean(true), iv(-1), iv(3),
                             Value::pair(false, 0), Value::pair(true, 0),
                             Value::vec({1, 2})};
  for (std::size_t i = 0; i < vals.size(); ++i) {
    for (std::size_t j = 0; j < vals.size(); ++j) {
      const bool lt = vals[i] < vals[j];
      const bool gt = vals[j] < vals[i];
      const bool eq = vals[i] == vals[j];
      EXPECT_EQ(static_cast<int>(lt) + static_cast<int>(gt) +
                    static_cast<int>(eq),
                1)
          << i << " vs " << j;
    }
  }
}

TEST(ValueTest, HashDistinguishesCommonValues) {
  EXPECT_NE(iv(1).hash(), iv(2).hash());
  EXPECT_NE(Value::pair(true, 1).hash(), Value::pair(false, 1).hash());
  EXPECT_EQ(iv(7).hash(), iv(7).hash());
}

TEST(ActionTest, ToStringFormats) {
  Action inv = Action::invoke(1, Symbol{"E"}, Symbol{"exchange"}, iv(3));
  Action res =
      Action::respond(1, Symbol{"E"}, Symbol{"exchange"},
                      Value::pair(true, 4));
  EXPECT_EQ(inv.to_string(), "(t1, inv E.exchange(3))");
  EXPECT_EQ(res.to_string(), "(t1, res E.exchange > (true,4))");
}

TEST(OperationTest, PendingAndCompleted) {
  Operation p = Operation::pending(1, Symbol{"E"}, Symbol{"exchange"}, iv(3));
  EXPECT_TRUE(p.is_pending());
  Operation c = Operation::make(1, Symbol{"E"}, Symbol{"exchange"}, iv(3),
                                Value::pair(false, 3));
  EXPECT_FALSE(c.is_pending());
  EXPECT_NE(p, c);
  EXPECT_LT(p, c);  // pending sorts before completed
}

TEST(CaElementTest, CanonicalizesOperationOrder) {
  const Symbol e{"E"};
  const Symbol f{"exchange"};
  Operation a = Operation::make(1, e, f, iv(1), Value::pair(true, 2));
  Operation b = Operation::make(2, e, f, iv(2), Value::pair(true, 1));
  EXPECT_EQ(CaElement(e, {a, b}), CaElement(e, {b, a}));
  EXPECT_EQ(CaElement(e, {a, b}).hash(), CaElement(e, {b, a}).hash());
}

TEST(CaElementTest, DeduplicatesIdenticalOps) {
  const Symbol e{"E"};
  Operation a =
      Operation::make(1, e, Symbol{"exchange"}, iv(1), Value::pair(false, 1));
  EXPECT_EQ(CaElement(e, {a, a}).size(), 1u);
}

TEST(CaElementTest, SwapAbbreviation) {
  const Symbol e{"E"};
  CaElement s = CaElement::swap(e, Symbol{"exchange"}, 1, 3, 2, 4);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.mentions_thread(1));
  EXPECT_TRUE(s.mentions_thread(2));
  EXPECT_FALSE(s.mentions_thread(3));
  EXPECT_TRUE(s.contains(Operation::make(1, e, Symbol{"exchange"}, iv(3),
                                         Value::pair(true, 4))));
}

TEST(CaTraceTest, ThreadProjectionKeepsWholeElements) {
  const Symbol e{"E"};
  const Symbol f{"exchange"};
  CaTrace t;
  t.append(CaElement::swap(e, f, 1, 3, 2, 4));
  t.append(CaElement::singleton(
      e, Operation::make(3, e, f, iv(7), Value::pair(false, 7))));
  // T|t1 contains the swap element *including t2's operation* (Def. 4).
  CaTrace p1 = t.project_thread(1);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p1[0].size(), 2u);
  EXPECT_EQ(t.project_thread(3).size(), 1u);
  EXPECT_EQ(t.project_thread(9).size(), 0u);
}

TEST(CaTraceTest, ObjectProjection) {
  const Symbol e{"E"};
  const Symbol s{"S"};
  CaTrace t;
  t.append(CaElement::singleton(
      e, Operation::make(1, e, Symbol{"exchange"}, iv(1),
                         Value::pair(false, 1))));
  t.append(CaElement::singleton(
      s, Operation::make(1, s, Symbol{"push"}, iv(1), Value::boolean(true))));
  EXPECT_EQ(t.project_object(e).size(), 1u);
  EXPECT_EQ(t.project_object(s).size(), 1u);
}

TEST(CaTraceTest, AllOpsFlattens) {
  const Symbol e{"E"};
  CaTrace t;
  t.append(CaElement::swap(e, Symbol{"exchange"}, 1, 3, 2, 4));
  EXPECT_EQ(t.all_ops().size(), 2u);
}

TEST(CoreTypes, HashStateSeparatesShortStates) {
  // The un-hardened FNV fold (no length seed, no avalanche) collided on
  // short states. Derivation of an exact collision under the old fold
  // h = ((c ^ x0) * p ^ x1) * p: pick {1, 0} vs {0, y} and solve for y —
  // y = (c*p) ^ ((c^1)*p). The hardened hash must separate that pair and
  // the common truncation/zero-extension shapes.
  const std::uint64_t c = 0xcbf29ce484222325ull;  // FNV offset basis
  const std::uint64_t p = 0x100000001b3ull;       // FNV prime
  const auto y = static_cast<std::int64_t>((c * p) ^ ((c ^ 1ull) * p));
  EXPECT_NE(hash_state({0, y}), hash_state({1, 0}));
  EXPECT_NE(hash_state({}), hash_state({0}));
  EXPECT_NE(hash_state({0}), hash_state({0, 0}));
  EXPECT_NE(hash_state({5}), hash_state({5, 0}));
  EXPECT_NE(hash_state({1, 2}), hash_state({2, 1}));
}

}  // namespace
}  // namespace cal
