// Set-linearizability (Neiger) checker tests, including its relationship
// to CAL (§6) and to the immediate-snapshot task Neiger motivated it with.
#include <gtest/gtest.h>

#include "cal/set_lin.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/snapshot_spec.hpp"

namespace cal {
namespace {

const Symbol kE{"E"};
const Symbol kEx{"exchange"};
Value iv(std::int64_t x) { return Value::integer(x); }

TEST(SetLin, AcceptsOverlappingSwap) {
  ExchangerSpec spec(kE, kEx);
  SetLinChecker checker(spec);
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(1, Value::pair(true, 4))
               .ret(2, Value::pair(true, 3))
               .history();
  SetLinResult r = checker.check(h);
  EXPECT_TRUE(r);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_EQ(r.witness->size(), 1u);
}

TEST(SetLin, RejectsSequentialSwap) {
  ExchangerSpec spec(kE, kEx);
  SetLinChecker checker(spec);
  auto h = HistoryBuilder()
               .op(1, "E", "exchange", iv(3), Value::pair(true, 4))
               .op(2, "E", "exchange", iv(4), Value::pair(true, 3))
               .history();
  EXPECT_FALSE(checker.check(h));
}

TEST(SetLin, NeverCompletesPendingInvocations) {
  // The distinguishing knob vs the CAL checker: set-linearizability (as a
  // task-solution notion) assumes all processes finish, so a pending
  // partner cannot be invented.
  ExchangerSpec spec(kE, kEx);
  SetLinChecker checker(spec);
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(1, Value::pair(true, 4))
               .history();
  EXPECT_FALSE(checker.check(h));  // t2 pending; cannot complete it

  // Dropping the pending op does not help: t1's swap then has no partner.
  // But a *failed* pending op CAN simply be dropped:
  auto h2 = HistoryBuilder()
                .call(1, "E", "exchange", iv(3))
                .op(2, "E", "exchange", iv(4), Value::pair(false, 4))
                .history();
  EXPECT_TRUE(checker.check(h2));
}

TEST(SetLin, ImmediateSnapshotIsTheMotivatingTask) {
  // Neiger's example (§6): immediate atomic snapshots are
  // set-linearizable but not linearizable. Three concurrent updates all
  // seeing each other form one simultaneity class.
  SnapshotSpec spec(Symbol{"IS"});
  SetLinChecker checker(spec);
  const Value snap = Value::vec({1, 2, 3});
  auto h = HistoryBuilder()
               .call(1, "IS", "us", iv(1))
               .call(2, "IS", "us", iv(2))
               .call(3, "IS", "us", iv(3))
               .ret(3, snap)
               .ret(2, snap)
               .ret(1, snap)
               .history();
  SetLinResult r = checker.check(h);
  ASSERT_TRUE(r);
  EXPECT_EQ(r.witness->size(), 1u);
  EXPECT_EQ((*r.witness)[0].size(), 3u);

  // The same outcome with sequentially separated operations is rejected:
  // a later op would have to see its predecessor's value only.
  auto seq = HistoryBuilder()
                 .op(1, "IS", "us", iv(1), snap)
                 .op(2, "IS", "us", iv(2), snap)
                 .op(3, "IS", "us", iv(3), snap)
                 .history();
  EXPECT_FALSE(checker.check(seq));
}

TEST(SetLin, AgreesWithCalOnCompleteHistories) {
  ExchangerSpec spec(kE, kEx);
  SetLinChecker set_lin(spec);
  CalChecker cal(spec);
  std::vector<History> histories;
  histories.push_back(HistoryBuilder()
                          .call(1, "E", "exchange", iv(1))
                          .call(2, "E", "exchange", iv(2))
                          .ret(2, Value::pair(true, 1))
                          .ret(1, Value::pair(true, 2))
                          .history());
  histories.push_back(HistoryBuilder()
                          .op(1, "E", "exchange", iv(1),
                              Value::pair(false, 1))
                          .op(2, "E", "exchange", iv(2),
                              Value::pair(false, 2))
                          .history());
  histories.push_back(HistoryBuilder()
                          .op(1, "E", "exchange", iv(1),
                              Value::pair(true, 2))
                          .op(2, "E", "exchange", iv(2),
                              Value::pair(true, 1))
                          .history());
  for (const History& h : histories) {
    EXPECT_EQ(static_cast<bool>(set_lin.check(h)),
              static_cast<bool>(cal.check(h)))
        << h.to_string();
  }
}

}  // namespace
}  // namespace cal
