// Write-snapshot: the separation between set-linearizability / single-
// element CAL and interval-linearizability (§6, Castañeda et al.).
#include <gtest/gtest.h>

#include "cal/cal_checker.hpp"
#include "cal/interval_lin.hpp"
#include "cal/set_lin.hpp"
#include "cal/specs/snapshot_spec.hpp"
#include "cal/specs/write_snapshot_spec.hpp"

namespace cal {
namespace {

const Symbol kWS{"WS"};
Value iv(std::int64_t x) { return Value::integer(x); }

/// The separating history: ops 1 and 2 overlap and see each other, yet
/// return different snapshots (op 2's snapshot also contains op 3's later
/// write). Legal for write-snapshot; inexpressible as a sequence of sets.
History separating_history() {
  return HistoryBuilder()
      .call(1, "WS", "ws", iv(1))
      .call(2, "WS", "ws", iv(2))
      .ret(1, Value::vec({1, 2}))  // S1 = {1,2}: sees 2
      .call(3, "WS", "ws", iv(3))
      .ret(3, Value::vec({1, 2, 3}))
      .ret(2, Value::vec({1, 2, 3}))  // S2 = {1,2,3}: sees 1, ≠ S1
      .history();
}

TEST(WriteSnapshot, SeparatingHistoryAcceptedByIntervalSpec) {
  WriteSnapshotIntervalSpec spec(kWS);
  IntervalLinChecker checker(spec);
  IntervalCheckResult r = checker.check(separating_history());
  ASSERT_TRUE(r);
  // Op 2's interval genuinely spans rounds: it starts before op 1's
  // snapshot and ends after op 3's write.
  ASSERT_TRUE(r.intervals.has_value());
  const auto& op2 = (*r.intervals)[1];
  EXPECT_LT(op2.first, op2.second);
}

TEST(WriteSnapshot, SeparatingHistoryRejectedBySetStyleSpecs) {
  // The same history against the immediate-snapshot (set) spec: mutual
  // visibility forces one shared element and hence equal snapshots, so
  // both the CAL checker and the set-linearizability checker reject.
  SnapshotSpec set_spec(kWS, Symbol{"ws"});
  CalChecker cal(set_spec);
  EXPECT_FALSE(cal.check(separating_history()));
  SetLinChecker set_lin(set_spec);
  EXPECT_FALSE(set_lin.check(separating_history()));
}

TEST(WriteSnapshot, SelfInclusionEnforced) {
  WriteSnapshotIntervalSpec spec(kWS);
  IntervalLinChecker checker(spec);
  auto h = HistoryBuilder().op(1, "WS", "ws", iv(1), Value::vec({})).history();
  EXPECT_FALSE(checker.check(h)) << "a snapshot must contain its own write";
}

TEST(WriteSnapshot, SnapshotsAreCumulative) {
  // Values never disappear: a later snapshot missing an earlier completed
  // write is rejected.
  WriteSnapshotIntervalSpec spec(kWS);
  IntervalLinChecker checker(spec);
  auto h = HistoryBuilder()
               .op(1, "WS", "ws", iv(1), Value::vec({1}))
               .op(2, "WS", "ws", iv(2), Value::vec({2}))
               .history();
  EXPECT_FALSE(checker.check(h));
  auto ok = HistoryBuilder()
                .op(1, "WS", "ws", iv(1), Value::vec({1}))
                .op(2, "WS", "ws", iv(2), Value::vec({1, 2}))
                .history();
  EXPECT_TRUE(checker.check(ok));
}

TEST(WriteSnapshot, ImmediateSnapshotOutcomesRemainLegal) {
  // Every immediate-snapshot outcome is also a write-snapshot outcome
  // (the generalization is strict in one direction only).
  WriteSnapshotIntervalSpec wspec(kWS);
  SnapshotSpec sspec(kWS, Symbol{"ws"});
  IntervalLinChecker interval(wspec);
  CalChecker cal(sspec);
  const Value snap = Value::vec({1, 2});
  auto h = HistoryBuilder()
               .call(1, "WS", "ws", iv(1))
               .call(2, "WS", "ws", iv(2))
               .ret(1, snap)
               .ret(2, snap)
               .history();
  EXPECT_TRUE(cal.check(h));
  EXPECT_TRUE(interval.check(h));
}

TEST(WriteSnapshot, RealTimeOrderStillBites) {
  // A snapshot cannot contain a value whose write starts strictly after
  // the snapshotting operation returned.
  WriteSnapshotIntervalSpec spec(kWS);
  IntervalLinChecker checker(spec);
  auto h = HistoryBuilder()
               .op(1, "WS", "ws", iv(1), Value::vec({1, 2}))
               .op(2, "WS", "ws", iv(2), Value::vec({1, 2}))
               .history();
  EXPECT_FALSE(checker.check(h))
      << "op 1 returned {1,2} before op 2 was even invoked";
}

}  // namespace
}  // namespace cal
