// Whole-program checking: one history over several objects, checked
// against the union of their specifications (the §2 ownership discipline).
#include <gtest/gtest.h>

#include "cal/cal_checker.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "cal/specs/sync_queue_spec.hpp"
#include "cal/specs/union_spec.hpp"

namespace cal {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

UnionCaSpec make_union() {
  std::vector<UnionCaSpec::Entry> entries;
  entries.emplace_back(Symbol{"E"}, std::make_shared<ExchangerSpec>(
                                        Symbol{"E"}, Symbol{"exchange"}));
  entries.emplace_back(
      Symbol{"S"},
      std::make_shared<SeqAsCaSpec>(std::make_shared<StackSpec>(Symbol{"S"})));
  entries.emplace_back(Symbol{"SQ"},
                       std::make_shared<SyncQueueSpec>(Symbol{"SQ"}));
  return UnionCaSpec(std::move(entries));
}

TEST(UnionSpec, MixedObjectHistoryAccepted) {
  // t1/t2 swap on E while t3 pushes/pops on S and t1/t3 later hand off on
  // the synchronous queue.
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(1))
               .call(2, "E", "exchange", iv(2))
               .op(3, "S", "push", iv(7), Value::boolean(true))
               .ret(1, Value::pair(true, 2))
               .ret(2, Value::pair(true, 1))
               .op(3, "S", "pop", Value::unit(), Value::pair(true, 7))
               .call(1, "SQ", "put", iv(9))
               .call(3, "SQ", "take")
               .ret(1, Value::boolean(true))
               .ret(3, Value::pair(true, 9))
               .history();
  UnionCaSpec spec = make_union();
  CalChecker checker(spec);
  CalCheckResult r = checker.check(h);
  ASSERT_TRUE(r);
  // Four elements: the swap, the push, the pop, and the hand-off.
  EXPECT_EQ(r.witness->size(), 4u);
}

TEST(UnionSpec, CrossObjectStateIsIndependent) {
  // The stack's LIFO discipline must still bite inside a union.
  auto h = HistoryBuilder()
               .op(1, "S", "push", iv(1), Value::boolean(true))
               .op(1, "S", "push", iv(2), Value::boolean(true))
               .op(2, "E", "exchange", iv(5), Value::pair(false, 5))
               .op(1, "S", "pop", Value::unit(), Value::pair(true, 1))
               .history();
  UnionCaSpec spec = make_union();
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(h)) << "LIFO violation must survive the union";
}

TEST(UnionSpec, UnregisteredObjectRejected) {
  auto h = HistoryBuilder()
               .op(1, "X", "frob", iv(1), Value::boolean(true))
               .history();
  UnionCaSpec spec = make_union();
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(h));
}

TEST(UnionSpec, ExchangerRulesSurviveTheUnion) {
  auto h = HistoryBuilder()
               .op(1, "E", "exchange", iv(1), Value::pair(true, 2))
               .op(2, "E", "exchange", iv(2), Value::pair(true, 1))
               .history();
  UnionCaSpec spec = make_union();
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(h)) << "sequential swap must still be rejected";
}

TEST(UnionSpec, MaxElementSizeIsTheMaximum) {
  UnionCaSpec spec = make_union();
  EXPECT_EQ(spec.max_element_size(), 2u);
}

TEST(UnionSpec, InitialStateConcatenatesSubStates) {
  UnionCaSpec spec = make_union();
  // Three sub-specs, each with an empty initial state: [0, 0, 0].
  EXPECT_EQ(spec.initial(), (SpecState{0, 0, 0}));
}

}  // namespace
}  // namespace cal
