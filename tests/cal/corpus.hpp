// Shared history corpus for the equivalence suites: generated stress
// families (schedule-randomized exchanger runs, corruptions, adversarial
// sequential-spec histories, wide overlap blowups) plus the checked-in
// example histories. test_state_compression, test_engine_equivalence and
// test_incremental all draw from these generators so "equivalent on the
// corpus" means the same corpus everywhere.
#pragma once

#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "cal/history.hpp"
#include "cal/text.hpp"
#include "cal/value.hpp"

namespace cal {

/// A well-formed exchanger run with a randomized schedule: threads invoke,
/// pair up (or time out), and respond in random interleavings, so the
/// result is a *valid* history with rich overlap structure.
inline History random_exchanger_history(std::mt19937& rng,
                                        std::size_t n_threads,
                                        std::size_t ops_per_thread) {
  const Symbol kE{"E"};
  const Symbol kEx{"exchange"};
  struct Active {
    ThreadId tid;
    std::int64_t v;
    bool decided = false;
    Value ret;
  };
  History h;
  std::vector<std::size_t> remaining(n_threads, ops_per_thread);
  std::vector<std::optional<Active>> active(n_threads);
  std::int64_t next_value = 1;
  auto rnd = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
  };
  auto some_left = [&] {
    for (std::size_t t = 0; t < n_threads; ++t) {
      if (remaining[t] > 0 || active[t].has_value()) return true;
    }
    return false;
  };
  while (some_left()) {
    switch (rnd(3)) {
      case 0: {
        std::vector<std::size_t> can;
        for (std::size_t t = 0; t < n_threads; ++t) {
          if (remaining[t] > 0 && !active[t]) can.push_back(t);
        }
        if (can.empty()) break;
        const std::size_t t = can[rnd(can.size())];
        const std::int64_t v = next_value++;
        active[t] = Active{static_cast<ThreadId>(t + 1), v, false,
                           Value::unit()};
        remaining[t] -= 1;
        h.invoke(static_cast<ThreadId>(t + 1), kE, kEx, Value::integer(v));
        break;
      }
      case 1: {
        std::vector<std::size_t> undecided;
        for (std::size_t t = 0; t < n_threads; ++t) {
          if (active[t] && !active[t]->decided) undecided.push_back(t);
        }
        if (undecided.empty()) break;
        if (undecided.size() >= 2 && rnd(2) == 0) {
          const std::size_t i = undecided[rnd(undecided.size())];
          std::size_t j = i;
          while (j == i) j = undecided[rnd(undecided.size())];
          active[i]->decided = true;
          active[j]->decided = true;
          active[i]->ret = Value::pair(true, active[j]->v);
          active[j]->ret = Value::pair(true, active[i]->v);
        } else {
          const std::size_t i = undecided[rnd(undecided.size())];
          active[i]->decided = true;
          active[i]->ret = Value::pair(false, active[i]->v);
        }
        break;
      }
      case 2: {
        std::vector<std::size_t> decided;
        for (std::size_t t = 0; t < n_threads; ++t) {
          if (active[t] && active[t]->decided) decided.push_back(t);
        }
        if (decided.empty()) break;
        const std::size_t t = decided[rnd(decided.size())];
        h.respond(active[t]->tid, kE, kEx, active[t]->ret);
        active[t].reset();
        break;
      }
    }
  }
  return h;
}

/// Corrupts the first successful exchange response; nullopt when the run
/// had none.
inline std::optional<History> corrupt(const History& h) {
  std::vector<Action> actions = h.actions();
  for (Action& a : actions) {
    if (a.is_respond() && a.payload.kind() == Value::Kind::kPair &&
        a.payload.pair_ok()) {
      a.payload = Value::pair(true, 99999);
      return History(std::move(actions));
    }
  }
  return std::nullopt;
}

/// Sequential stack ops with random (mostly wrong) return values — the
/// adversarial family for SeqAsCaSpec checkers.
inline History garbage_stack_history(std::mt19937& rng, std::size_t n_ops) {
  auto rnd = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
  };
  HistoryBuilder b;
  for (std::size_t i = 0; i < n_ops; ++i) {
    const ThreadId tid = static_cast<ThreadId>(rnd(3) + 1);
    if (rnd(2) == 0) {
      b.op(tid, "S", "push", Value::integer(static_cast<std::int64_t>(
                                 rnd(3) + 1)),
           Value::boolean(true));
    } else {
      b.op(tid, "S", "pop", Value::unit(),
           Value::pair(true, static_cast<std::int64_t>(rnd(3) + 1)));
    }
  }
  return b.history();
}

/// `width` fully overlapping exchanges, all timing out — the subset
/// enumeration blowup (optionally with one corrupted response).
inline History wide_overlap_history(std::size_t width, bool corrupt_one) {
  HistoryBuilder b;
  for (std::size_t t = 1; t <= width; ++t) {
    b.call(static_cast<ThreadId>(t), "E", "exchange",
           Value::integer(static_cast<std::int64_t>(t)));
  }
  for (std::size_t t = 1; t <= width; ++t) {
    const auto v = static_cast<std::int64_t>(t);
    b.ret(static_cast<ThreadId>(t),
          corrupt_one && t == width ? Value::pair(true, 424242)
                                    : Value::pair(false, v));
  }
  return b.history();
}

#ifdef CAL_EXAMPLES_HISTORIES_DIR
inline History load_history(const std::string& name) {
  const std::string path =
      std::string(CAL_EXAMPLES_HISTORIES_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  ParseResult<History> parsed = parse_history(buf.str());
  EXPECT_TRUE(parsed) << "parse error in " << path;
  return *parsed.value;
}
#endif

}  // namespace cal
