// CAL membership checker (Def. 6) unit tests beyond the Fig. 3 scenarios.
#include <gtest/gtest.h>

#include "cal/cal_checker.hpp"
#include "cal/agree.hpp"
#include "cal/replay.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/snapshot_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "cal/specs/sync_queue_spec.hpp"

namespace cal {
namespace {

const Symbol kE{"E"};
const Symbol kEx{"exchange"};

Value iv(std::int64_t x) { return Value::integer(x); }

TEST(CalChecker, EmptyHistoryIsAlwaysMember) {
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  EXPECT_TRUE(checker.check(History{}));
}

TEST(CalChecker, WitnessAgreesWithTheHistory) {
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(2, Value::pair(true, 3))
               .ret(1, Value::pair(true, 4))
               .op(3, "E", "exchange", iv(7), Value::pair(false, 7))
               .history();
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  CalCheckResult r = checker.check(h);
  ASSERT_TRUE(r);
  // The returned witness must itself satisfy Def. 5 against the history
  // and be a member of the spec's trace-set.
  EXPECT_TRUE(agrees_with(h, *r.witness));
  EXPECT_TRUE(replay_ca(*r.witness, spec));
}

TEST(CalChecker, IllFormedHistoryRejected) {
  History h;
  h.respond(1, kE, kEx, Value::pair(false, 1));
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(h));
}

TEST(CalChecker, ChainOfSwapsAcrossThreeThreads) {
  // t1 swaps with t2, then t2 swaps with t3 — t2 has two operations.
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(1))
               .call(2, "E", "exchange", iv(2))
               .ret(1, Value::pair(true, 2))
               .ret(2, Value::pair(true, 1))
               .call(2, "E", "exchange", iv(20))
               .call(3, "E", "exchange", iv(30))
               .ret(2, Value::pair(true, 30))
               .ret(3, Value::pair(true, 20))
               .history();
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  CalCheckResult r = checker.check(h);
  ASSERT_TRUE(r);
  EXPECT_EQ(r.witness->size(), 2u);
}

TEST(CalChecker, SelfSwapIsImpossible) {
  // A thread cannot pair with itself even if values would line up, because
  // its two operations are real-time ordered.
  auto h = HistoryBuilder()
               .op(1, "E", "exchange", iv(1), Value::pair(true, 2))
               .op(1, "E", "exchange", iv(2), Value::pair(true, 1))
               .history();
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(h));
}

TEST(CalChecker, MaxVisitedCapReportsExhaustion) {
  // A history that needs search: several concurrent failures.
  HistoryBuilder b;
  for (ThreadId t = 1; t <= 6; ++t) b.call(t, "E", "exchange", iv(t));
  for (ThreadId t = 1; t <= 6; ++t) b.ret(t, Value::pair(false, t));
  ExchangerSpec spec(kE, kEx);
  CalCheckOptions opts;
  opts.max_visited = 1;
  CalChecker checker(spec, opts);
  CalCheckResult r = checker.check(b.history());
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.exhausted);
}

TEST(CalChecker, ManyConcurrentFailuresAreMembers) {
  HistoryBuilder b;
  for (ThreadId t = 1; t <= 8; ++t) b.call(t, "E", "exchange", iv(t));
  for (ThreadId t = 1; t <= 8; ++t) b.ret(t, Value::pair(false, t));
  ExchangerSpec spec(kE, kEx);
  CalChecker checker(spec);
  CalCheckResult r = checker.check(b.history());
  ASSERT_TRUE(r);
  EXPECT_EQ(r.witness->size(), 8u);  // eight singleton failure elements
}

TEST(CalChecker, WrongObjectNameIsRejected) {
  auto h = HistoryBuilder()
               .op(1, "F", "exchange", iv(1), Value::pair(false, 1))
               .history();
  ExchangerSpec spec(kE, kEx);  // governs E, not F
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(h));
}

// --- unbounded elements: the immediate-snapshot spec ---

TEST(CalChecker, ImmediateSnapshotTripleElement) {
  const Symbol is{"IS"};
  // Three overlapping us() operations all see {1,2,3}.
  const Value snap = Value::vec({1, 2, 3});
  auto h = HistoryBuilder()
               .call(1, "IS", "us", iv(1))
               .call(2, "IS", "us", iv(2))
               .call(3, "IS", "us", iv(3))
               .ret(1, snap)
               .ret(2, snap)
               .ret(3, snap)
               .history();
  SnapshotSpec spec(is);
  CalChecker checker(spec);
  CalCheckResult r = checker.check(h);
  ASSERT_TRUE(r);
  EXPECT_EQ(r.witness->size(), 1u);
  EXPECT_EQ((*r.witness)[0].size(), 3u);
}

TEST(CalChecker, ImmediateSnapshotNestedBlocks) {
  const Symbol is{"IS"};
  // t1 and t2 see {1,2}; t3 later sees {1,2,3}.
  const Value snap12 = Value::vec({1, 2});
  const Value snap123 = Value::vec({1, 2, 3});
  auto h = HistoryBuilder()
               .call(1, "IS", "us", iv(1))
               .call(2, "IS", "us", iv(2))
               .ret(1, snap12)
               .ret(2, snap12)
               .op(3, "IS", "us", iv(3), snap123)
               .history();
  SnapshotSpec spec(is);
  CalChecker checker(spec);
  EXPECT_TRUE(checker.check(h));
}

TEST(CalChecker, ImmediateSnapshotMissingOwnValueRejected) {
  const Symbol is{"IS"};
  // t1's snapshot omits its own written value — never admissible.
  auto h = HistoryBuilder()
               .op(1, "IS", "us", iv(1), Value::vec({}))
               .history();
  SnapshotSpec spec(is);
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(h));
}

// --- synchronous queue CA-spec ---

TEST(CalChecker, SyncQueueHandoffIsMember) {
  const Symbol q{"Q"};
  auto h = HistoryBuilder()
               .call(1, "Q", "put", iv(42))
               .call(2, "Q", "take")
               .ret(1, Value::boolean(true))
               .ret(2, Value::pair(true, 42))
               .history();
  SyncQueueSpec spec(q);
  CalChecker checker(spec);
  EXPECT_TRUE(checker.check(h));
}

TEST(CalChecker, SyncQueueNonOverlappingHandoffRejected) {
  const Symbol q{"Q"};
  auto h = HistoryBuilder()
               .op(1, "Q", "put", iv(42), Value::boolean(true))
               .op(2, "Q", "take", Value::unit(), Value::pair(true, 42))
               .history();
  SyncQueueSpec spec(q);
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(h)) << "a synchronous hand-off must overlap";
}

TEST(CalChecker, SyncQueueTimeoutsAreMembers) {
  const Symbol q{"Q"};
  auto h = HistoryBuilder()
               .op(1, "Q", "put", iv(1), Value::boolean(false))
               .op(2, "Q", "take", Value::unit(), Value::pair(false, 0))
               .history();
  SyncQueueSpec spec(q);
  CalChecker checker(spec);
  EXPECT_TRUE(checker.check(h));
}

TEST(CalChecker, SyncQueueWrongValueRejected) {
  const Symbol q{"Q"};
  auto h = HistoryBuilder()
               .call(1, "Q", "put", iv(42))
               .call(2, "Q", "take")
               .ret(1, Value::boolean(true))
               .ret(2, Value::pair(true, 43))
               .history();
  SyncQueueSpec spec(q);
  CalChecker checker(spec);
  EXPECT_FALSE(checker.check(h));
}

// --- degenerate CA-spec = sequential spec via the adapter ---

TEST(CalChecker, SeqAdapterMatchesStackSemantics) {
  const Symbol s{"S"};
  auto seq = std::make_shared<StackSpec>(s);
  SeqAsCaSpec spec(seq);
  CalChecker checker(spec);

  auto ok = HistoryBuilder()
                .op(1, "S", "push", iv(10), Value::boolean(true))
                .op(2, "S", "pop", Value::unit(), Value::pair(true, 10))
                .history();
  EXPECT_TRUE(checker.check(ok));

  auto bad = HistoryBuilder()
                 .op(1, "S", "push", iv(10), Value::boolean(true))
                 .op(2, "S", "pop", Value::unit(), Value::pair(true, 99))
                 .history();
  EXPECT_FALSE(checker.check(bad));
}

TEST(CalChecker, SeqAdapterRespectsRealTimeOrder) {
  const Symbol s{"S"};
  auto seq = std::make_shared<StackSpec>(s);
  SeqAsCaSpec spec(seq);
  CalChecker checker(spec);
  // pop returns 20 although 10 was pushed after 20 and both pushes
  // completed before the pop began — LIFO forces 10 first.
  auto bad = HistoryBuilder()
                 .op(1, "S", "push", iv(20), Value::boolean(true))
                 .op(1, "S", "push", iv(10), Value::boolean(true))
                 .op(2, "S", "pop", Value::unit(), Value::pair(true, 20))
                 .history();
  EXPECT_FALSE(checker.check(bad));
  auto ok = HistoryBuilder()
                .op(1, "S", "push", iv(20), Value::boolean(true))
                .op(1, "S", "push", iv(10), Value::boolean(true))
                .op(2, "S", "pop", Value::unit(), Value::pair(true, 10))
                .history();
  EXPECT_TRUE(checker.check(ok));
}

}  // namespace
}  // namespace cal
