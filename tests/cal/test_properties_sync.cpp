// Property sweeps for the synchronous queue specs and the text layer.
//
//   P5: histories from a known-good synchronous-queue execution simulator
//       are accepted by both the CA-spec and the interval spec;
//   P6: pairing a put with a non-overlapping take is always rejected;
//   P7: history/trace text serialization round-trips on random documents.
#include <gtest/gtest.h>

#include <random>

#include "cal/cal_checker.hpp"
#include "cal/interval_lin.hpp"
#include "cal/specs/sync_queue_spec.hpp"
#include "cal/text.hpp"

namespace cal {
namespace {

const Symbol kQ{"Q"};
Value iv(std::int64_t x) { return Value::integer(x); }

/// Simulates a valid synchronous-queue run: active puts and takes pair up
/// or time out; responses are emitted after commitment.
History generate_sync_queue_run(std::mt19937& rng, std::size_t n_threads,
                                std::size_t ops_per_thread) {
  struct Active {
    ThreadId tid;
    bool is_put;
    std::int64_t v;
    bool decided = false;
    Value ret;
  };
  History h;
  std::vector<std::size_t> remaining(n_threads, ops_per_thread);
  std::vector<std::optional<Active>> active(n_threads);
  std::int64_t next_value = 1;
  auto rnd = [&](std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
  };
  auto some_left = [&] {
    for (std::size_t t = 0; t < n_threads; ++t) {
      if (remaining[t] > 0 || active[t]) return true;
    }
    return false;
  };

  while (some_left()) {
    switch (rnd(3)) {
      case 0: {  // invoke
        std::vector<std::size_t> can;
        for (std::size_t t = 0; t < n_threads; ++t) {
          if (remaining[t] > 0 && !active[t]) can.push_back(t);
        }
        if (can.empty()) break;
        const std::size_t t = can[rnd(can.size())];
        const bool is_put = rnd(2) == 0;
        Active a{static_cast<ThreadId>(t + 1), is_put,
                 is_put ? next_value++ : 0, false, Value::unit()};
        if (is_put) {
          h.invoke(a.tid, kQ, Symbol{"put"}, iv(a.v));
        } else {
          h.invoke(a.tid, kQ, Symbol{"take"});
        }
        active[t] = a;
        remaining[t] -= 1;
        break;
      }
      case 1: {  // commit: pair a put with a take, or time one out
        std::vector<std::size_t> puts;
        std::vector<std::size_t> takes;
        std::vector<std::size_t> undecided;
        for (std::size_t t = 0; t < n_threads; ++t) {
          if (active[t] && !active[t]->decided) {
            undecided.push_back(t);
            (active[t]->is_put ? puts : takes).push_back(t);
          }
        }
        if (!puts.empty() && !takes.empty() && rnd(2) == 0) {
          const std::size_t p = puts[rnd(puts.size())];
          const std::size_t k = takes[rnd(takes.size())];
          active[p]->decided = true;
          active[k]->decided = true;
          active[p]->ret = Value::boolean(true);
          active[k]->ret = Value::pair(true, active[p]->v);
        } else if (!undecided.empty()) {
          const std::size_t t = undecided[rnd(undecided.size())];
          active[t]->decided = true;
          active[t]->ret = active[t]->is_put ? Value::boolean(false)
                                             : Value::pair(false, 0);
        }
        break;
      }
      case 2: {  // respond
        std::vector<std::size_t> decided;
        for (std::size_t t = 0; t < n_threads; ++t) {
          if (active[t] && active[t]->decided) decided.push_back(t);
        }
        if (decided.empty()) break;
        const std::size_t t = decided[rnd(decided.size())];
        h.respond(active[t]->tid, kQ,
                  active[t]->is_put ? Symbol{"put"} : Symbol{"take"},
                  active[t]->ret);
        active[t].reset();
        break;
      }
    }
  }
  return h;
}

class SyncQueueProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SyncQueueProperty, GeneratedRunsPassBothSpecs) {
  std::mt19937 rng(GetParam());
  History h = generate_sync_queue_run(rng, 4, 2);
  ASSERT_TRUE(h.well_formed());
  ASSERT_TRUE(h.complete());
  SyncQueueSpec ca(kQ);
  CalChecker cal(ca);
  EXPECT_TRUE(cal.check(h)) << h.to_string();
  SyncQueueIntervalSpec ispec(kQ);
  IntervalLinChecker interval(ispec);
  EXPECT_TRUE(interval.check(h)) << h.to_string();
}

TEST_P(SyncQueueProperty, SerializationRoundTrips) {
  std::mt19937 rng(GetParam() + 7000);
  History h = generate_sync_queue_run(rng, 3, 2);
  ParseResult<History> back = parse_history(format_history(h));
  ASSERT_TRUE(back) << back.error->message;
  EXPECT_EQ(*back.value, h);
}

TEST_P(SyncQueueProperty, SequentializedRunsAreRejectedIfAnyPairSucceeded) {
  // Squash the history into a sequential one (each op completes before the
  // next begins). If it contains a successful hand-off, the CA-spec must
  // now reject it — hand-offs need overlap.
  std::mt19937 rng(GetParam() + 9000);
  History h = generate_sync_queue_run(rng, 4, 2);
  std::vector<OpRecord> ops = h.operations();
  bool any_pair = false;
  History seq;
  for (const OpRecord& rec : ops) {
    seq.invoke(rec.op.tid, rec.op.object, rec.op.method, rec.op.arg);
    seq.respond(rec.op.tid, rec.op.object, rec.op.method, *rec.op.ret);
    if (rec.op.method == Symbol{"put"} && rec.op.ret->kind() ==
            Value::Kind::kBool && rec.op.ret->as_bool()) {
      any_pair = true;
    }
  }
  SyncQueueSpec ca(kQ);
  CalChecker cal(ca);
  EXPECT_EQ(static_cast<bool>(cal.check(seq)), !any_pair)
      << seq.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyncQueueProperty,
                         ::testing::Range(0u, 20u));

}  // namespace
}  // namespace cal
