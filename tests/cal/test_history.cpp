// History (Def. 2) and real-time order (Def. 3) unit tests.
#include <gtest/gtest.h>

#include "cal/history.hpp"

namespace cal {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

TEST(History, EmptyIsWellFormedSequentialComplete) {
  History h;
  EXPECT_TRUE(h.well_formed());
  EXPECT_TRUE(h.sequential());
  EXPECT_TRUE(h.complete());
  EXPECT_TRUE(h.operations().empty());
}

TEST(History, SingleOperationIsSequential) {
  auto h = HistoryBuilder().op(1, "E", "exchange", iv(3), Value::pair(false, 3))
               .history();
  EXPECT_TRUE(h.well_formed());
  EXPECT_TRUE(h.sequential());
  EXPECT_TRUE(h.complete());
  ASSERT_EQ(h.operations().size(), 1u);
  EXPECT_FALSE(h.operations()[0].is_pending());
}

TEST(History, OverlappingOperationsAreWellFormedNotSequential) {
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(1, Value::pair(true, 4))
               .ret(2, Value::pair(true, 3))
               .history();
  EXPECT_TRUE(h.well_formed());
  EXPECT_FALSE(h.sequential());
  EXPECT_TRUE(h.complete());
}

TEST(History, PendingInvocationMakesHistoryIncomplete) {
  auto h = HistoryBuilder().call(1, "E", "exchange", iv(3)).history();
  EXPECT_TRUE(h.well_formed());
  EXPECT_FALSE(h.complete());
  ASSERT_EQ(h.operations().size(), 1u);
  EXPECT_TRUE(h.operations()[0].is_pending());
}

TEST(History, NestedInvocationBySameThreadIsIllFormed) {
  History h;
  Symbol e{"E"};
  Symbol f{"exchange"};
  h.invoke(1, e, f, iv(1));
  h.invoke(1, e, f, iv(2));
  EXPECT_FALSE(h.well_formed());
}

TEST(History, ResponseWithoutInvocationIsIllFormed) {
  History h;
  h.respond(1, Symbol{"E"}, Symbol{"exchange"}, Value::pair(false, 1));
  EXPECT_FALSE(h.well_formed());
}

TEST(History, MismatchedResponseMethodIsIllFormed) {
  History h;
  h.invoke(1, Symbol{"S"}, Symbol{"push"}, iv(1));
  h.respond(1, Symbol{"S"}, Symbol{"pop"}, Value::boolean(true));
  EXPECT_FALSE(h.well_formed());
}

TEST(History, ThreadProjectionIsSequential) {
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(2, Value::pair(true, 3))
               .ret(1, Value::pair(true, 4))
               .history();
  EXPECT_EQ(h.project_thread(1).size(), 2u);
  EXPECT_TRUE(h.project_thread(1).sequential());
  EXPECT_TRUE(h.project_thread(2).sequential());
  EXPECT_EQ(h.project_thread(3).size(), 0u);
}

TEST(History, ObjectProjectionKeepsOnlyThatObject) {
  auto h = HistoryBuilder()
               .op(1, "S", "push", iv(1), Value::boolean(true))
               .op(2, "E", "exchange", iv(2), Value::pair(false, 2))
               .history();
  EXPECT_EQ(h.project_object(Symbol{"S"}).size(), 2u);
  EXPECT_EQ(h.project_object(Symbol{"E"}).size(), 2u);
  EXPECT_EQ(h.project_object(Symbol{"Q"}).size(), 0u);
}

TEST(History, RealTimeOrderSequentialOpsAreOrdered) {
  auto h = HistoryBuilder()
               .op(1, "E", "exchange", iv(1), Value::pair(false, 1))
               .op(2, "E", "exchange", iv(2), Value::pair(false, 2))
               .history();
  auto ops = h.operations();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(History::precedes(ops[0], ops[1]));
  EXPECT_FALSE(History::precedes(ops[1], ops[0]));
}

TEST(History, RealTimeOrderOverlappingOpsAreUnordered) {
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(1))
               .call(2, "E", "exchange", iv(2))
               .ret(1, Value::pair(true, 2))
               .ret(2, Value::pair(true, 1))
               .history();
  auto ops = h.operations();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_FALSE(History::precedes(ops[0], ops[1]));
  EXPECT_FALSE(History::precedes(ops[1], ops[0]));
}

TEST(History, PendingOperationNeverPrecedes) {
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(1))
               .op(2, "E", "exchange", iv(2), Value::pair(false, 2))
               .history();
  auto ops = h.operations();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_FALSE(History::precedes(ops[0], ops[1]));
  // t2's operation responded before... no: t1 invoked first, t2 invoked
  // after t1's invocation but t1 never responded, so no order either way.
  EXPECT_FALSE(History::precedes(ops[1], ops[0]));
}

TEST(History, DropPendingRemovesExactlyUnansweredInvocations) {
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(1))
               .call(2, "E", "exchange", iv(2))
               .ret(2, Value::pair(false, 2))
               .call(3, "E", "exchange", iv(3))
               .history();
  History dropped = h.drop_pending();
  EXPECT_TRUE(dropped.complete());
  EXPECT_EQ(dropped.size(), 2u);  // t2's call and response only
  ASSERT_EQ(dropped.operations().size(), 1u);
  EXPECT_EQ(dropped.operations()[0].op.tid, 2u);
}

TEST(History, OperationsPairInvocationWithOwnThreadsResponse) {
  auto h = HistoryBuilder()
               .call(1, "S", "push", iv(10))
               .call(2, "S", "push", iv(20))
               .ret(1, Value::boolean(true))
               .ret(2, Value::boolean(false))
               .history();
  auto ops = h.operations();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].op.tid, 1u);
  EXPECT_EQ(*ops[0].op.ret, Value::boolean(true));
  EXPECT_EQ(ops[1].op.tid, 2u);
  EXPECT_EQ(*ops[1].op.ret, Value::boolean(false));
}

TEST(History, RenderAsciiMentionsEveryThread) {
  auto h = HistoryBuilder()
               .call(1, "E", "exchange", iv(3))
               .call(2, "E", "exchange", iv(4))
               .ret(1, Value::pair(true, 4))
               .ret(2, Value::pair(true, 3))
               .history();
  const std::string art = h.render_ascii();
  EXPECT_NE(art.find("t1:"), std::string::npos);
  EXPECT_NE(art.find("t2:"), std::string::npos);
  EXPECT_NE(art.find("exchange"), std::string::npos);
}

TEST(HistoryBuilder, RetWithoutCallYieldsIllFormed) {
  auto h = HistoryBuilder().ret(7, Value::unit()).history();
  EXPECT_FALSE(h.well_formed());
}

}  // namespace
}  // namespace cal
