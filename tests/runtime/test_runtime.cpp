// Runtime substrate tests: thread registry, recorder, trace log, EBR.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/reclaim/ebr.hpp"
#include "runtime/recorder.hpp"
#include "runtime/thread_registry.hpp"
#include "runtime/trace_log.hpp"

namespace cal::runtime {
namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

TEST(ThreadRegistry, IdsAreDenseAndReused) {
  ThreadRegistry reg;
  const ThreadId a = reg.acquire();
  const ThreadId b = reg.acquire();
  EXPECT_NE(a, b);
  reg.release(a);
  const ThreadId c = reg.acquire();
  EXPECT_EQ(c, a);  // smallest free id
  reg.release(b);
  reg.release(c);
}

TEST(ThreadRegistry, GuardReleasesOnScopeExit) {
  ThreadRegistry reg;
  ThreadId seen;
  {
    ThreadIdGuard g(reg);
    seen = g.tid();
  }
  ThreadIdGuard g2(reg);
  EXPECT_EQ(g2.tid(), seen);
}

TEST(ThreadRegistry, ConcurrentAcquireYieldsUniqueIds) {
  ThreadRegistry reg;
  constexpr int kThreads = 16;
  std::vector<ThreadId> ids(kThreads);
  {
    std::vector<std::jthread> ts;
    std::atomic<int> go{0};
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&, i] {
        go.fetch_add(1);
        while (go.load() < kThreads) {
        }
        ids[i] = reg.acquire();
      });
    }
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(Recorder, RecordsWellFormedHistory) {
  Recorder rec(1024);
  rec.invoke(1, Symbol{"E"}, Symbol{"exchange"}, iv(3));
  rec.invoke(2, Symbol{"E"}, Symbol{"exchange"}, iv(4));
  rec.respond(2, Symbol{"E"}, Symbol{"exchange"}, Value::pair(true, 3));
  rec.respond(1, Symbol{"E"}, Symbol{"exchange"}, Value::pair(true, 4));
  History h = rec.snapshot();
  EXPECT_EQ(h.size(), 4u);
  EXPECT_TRUE(h.well_formed());
  EXPECT_TRUE(h.complete());
}

TEST(Recorder, OverflowCountsDrops) {
  Recorder rec(2);
  rec.invoke(1, Symbol{"E"}, Symbol{"exchange"});
  rec.respond(1, Symbol{"E"}, Symbol{"exchange"});
  rec.invoke(1, Symbol{"E"}, Symbol{"exchange"});
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.dropped(), 1u);
}

TEST(Recorder, ResetClearsEverything) {
  Recorder rec(16);
  rec.invoke(1, Symbol{"E"}, Symbol{"exchange"});
  rec.reset();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.snapshot().size(), 0u);
}

TEST(Recorder, ConcurrentRecordingStaysWellFormedPerThread) {
  Recorder rec(1 << 16);
  constexpr int kThreads = 8;
  constexpr int kOps = 200;
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&rec, i] {
        const Symbol e{"E"};
        const Symbol f{"exchange"};
        for (int k = 0; k < kOps; ++k) {
          rec.invoke(static_cast<ThreadId>(i), e, f, iv(k));
          rec.respond(static_cast<ThreadId>(i), e, f, Value::pair(false, k));
        }
      });
    }
  }
  History h = rec.snapshot();
  EXPECT_EQ(h.size(), static_cast<std::size_t>(kThreads * kOps * 2));
  EXPECT_TRUE(h.well_formed());
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_TRUE(h.project_thread(static_cast<ThreadId>(i)).sequential());
  }
}

TEST(RecordedCall, FinishesWithValue) {
  Recorder rec(16);
  {
    RecordedCall call(rec, 1, Symbol{"S"}, Symbol{"push"}, iv(10));
    call.finish(Value::boolean(true));
  }
  History h = rec.snapshot();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[1].payload, Value::boolean(true));
}

TEST(RecordedCall, DestructorEmitsUnitResponseIfUnfinished) {
  Recorder rec(16);
  {
    RecordedCall call(rec, 1, Symbol{"S"}, Symbol{"push"}, iv(10));
  }
  History h = rec.snapshot();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_TRUE(h.complete());
}

TEST(TraceLog, AppendsAndSnapshots) {
  TraceLog log(64);
  const Symbol e{"E"};
  log.append(CaElement::swap(e, Symbol{"exchange"}, 1, 3, 2, 4));
  log.append(CaElement::singleton(
      e, Operation::make(3, e, Symbol{"exchange"}, iv(7),
                         Value::pair(false, 7))));
  CaTrace t = log.snapshot();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].size(), 2u);
}

TEST(TraceLog, ConcurrentAppendsAllLand) {
  TraceLog log(1 << 16);
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&log, i] {
        const Symbol e{"E"};
        for (int k = 0; k < kOps; ++k) {
          log.append(CaElement::singleton(
              e, Operation::make(static_cast<ThreadId>(i), e,
                                 Symbol{"exchange"}, iv(k),
                                 Value::pair(false, k))));
        }
      });
    }
  }
  EXPECT_EQ(log.snapshot().size(),
            static_cast<std::size_t>(kThreads * kOps));
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(Ebr, RetiredNodeSurvivesWhilePinned) {
  EpochDomain ebr;
  auto* p = new int(42);
  std::atomic<bool> freed{false};
  ebr.pin(0);
  ebr.pin(1);
  struct Probe {
    std::atomic<bool>* flag;
    int* payload;
  };
  auto* probe = new Probe{&freed, p};
  ebr.retire(1, probe, [](void* q) {
    auto* pr = static_cast<Probe*>(q);
    pr->flag->store(true);
    delete pr->payload;
    delete pr;
  });
  // Thread 0 is pinned in the retirement epoch: collection cannot free.
  for (int i = 0; i < 10; ++i) ebr.collect(1);
  EXPECT_FALSE(freed.load());
  ebr.unpin(0);
  ebr.unpin(1);
  // Now epochs can advance twice and the node becomes reclaimable.
  for (int i = 0; i < 10; ++i) ebr.collect(1);
  EXPECT_TRUE(freed.load());
}

TEST(Ebr, DestructorFreesLeftovers) {
  std::atomic<int> frees{0};
  struct Probe {
    std::atomic<int>* counter;
  };
  {
    EpochDomain ebr;
    for (int i = 0; i < 5; ++i) {
      ebr.retire(0, new Probe{&frees}, [](void* q) {
        static_cast<Probe*>(q)->counter->fetch_add(1);
        delete static_cast<Probe*>(q);
      });
    }
  }
  EXPECT_EQ(frees.load(), 5);
}

TEST(Ebr, EpochAdvancesWhenAllQuiescent) {
  EpochDomain ebr;
  const auto e0 = ebr.global_epoch();
  ebr.collect(0);
  EXPECT_GT(ebr.global_epoch(), e0);
}

TEST(Ebr, RetiredCountTracksBacklog) {
  EpochDomain ebr;
  ebr.pin(0);
  for (int i = 0; i < 3; ++i) ebr.retire(0, new int(i));
  EXPECT_EQ(ebr.retired_count(), 3u);
  ebr.unpin(0);
  for (int i = 0; i < 5; ++i) ebr.collect(0);
  EXPECT_EQ(ebr.retired_count(), 0u);
}

TEST(Ebr, StressManyThreadsRetiring) {
  EpochDomain ebr;
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  {
    std::vector<std::jthread> ts;
    for (int i = 0; i < kThreads; ++i) {
      ts.emplace_back([&ebr, i] {
        for (int k = 0; k < kOps; ++k) {
          EpochDomain::Guard g(ebr, static_cast<ThreadId>(i));
          ebr.retire(static_cast<ThreadId>(i), new std::int64_t(k));
        }
        ebr.collect(static_cast<ThreadId>(i));
      });
    }
  }
  // After all threads quiesce, a few collection rounds (each advancing the
  // epoch once) must reclaim the entire backlog.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < kThreads; ++i) {
      ebr.collect(static_cast<ThreadId>(i));
    }
  }
  EXPECT_EQ(ebr.retired_count(), 0u);
}

TEST(Ebr, PinnedReaderStallsRepeatedAdvance) {
  // The straggler check: one announced reader caps the epoch at one
  // advance past its announcement, however hard another thread collects.
  EpochDomain ebr;
  ebr.pin(0);
  const auto e0 = ebr.global_epoch();
  for (int i = 0; i < 10; ++i) ebr.collect(1);
  EXPECT_LE(ebr.global_epoch(), e0 + 1);
  ebr.unpin(0);
  for (int i = 0; i < 10; ++i) ebr.collect(1);
  EXPECT_GT(ebr.global_epoch(), e0 + 1);
}

// Regression for the pin() ordering bug (runtime/reclaim/ebr.cpp): the epoch
// announcement used to be a plain seq_cst store, which TSO may reorder
// after the pinned section's first shared load — so a concurrent
// collector could advance twice and reclaim the node a reader had just
// loaded. Readers chase a swapped pointer and validate a magic value the
// deleter poisons before freeing; with the fence missing this trips the
// magic check (or ASan) within a few thousand swaps on real hardware.
TEST(Ebr, StressReadersNeverSeeReclaimedNodes) {
  static constexpr std::int64_t kMagic = 0x5ca1ab1e;
  struct Node {
    std::atomic<std::int64_t> magic{kMagic};
  };
  EpochDomain ebr;
  std::atomic<Node*> current{new Node};
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> torn{0};
  constexpr int kReaders = 3;
  constexpr int kSwaps = 4000;
  {
    std::vector<std::jthread> ts;
    for (int r = 0; r < kReaders; ++r) {
      ts.emplace_back([&, r] {
        const auto id = static_cast<ThreadId>(r + 1);
        while (!stop.load(std::memory_order_acquire)) {
          EpochDomain::Guard g(ebr, id);
          Node* n = current.load(std::memory_order_acquire);
          if (n->magic.load(std::memory_order_relaxed) != kMagic) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    ts.emplace_back([&] {
      for (int k = 0; k < kSwaps; ++k) {
        Node* fresh = new Node;
        Node* old = current.exchange(fresh, std::memory_order_acq_rel);
        ebr.retire(0, old, [](void* q) {
          auto* node = static_cast<Node*>(q);
          node->magic.store(0, std::memory_order_relaxed);  // poison
          delete node;
        });
      }
      stop.store(true, std::memory_order_release);
    });
  }
  delete current.load();
  EXPECT_EQ(torn.load(), 0u);
}

// Thread churn: short-lived readers acquire dense ids from a registry,
// pin, read, unpin and exit while a writer keeps swapping and retiring.
// A released slot is immediately reacquired by the next reader generation,
// so a stale epoch announcement left behind by a departing thread would
// either stall reclamation forever or (worse) let the collector advance
// past a new reader that inherited the slot mid-pin.
TEST(Ebr, ThreadChurnReusedSlotsStayCoherent) {
  static constexpr std::int64_t kMagic = 0x5ca1ab1e;
  struct Node {
    std::atomic<std::int64_t> magic{kMagic};
  };
  ThreadRegistry reg;
  const ThreadId writer_id = reg.acquire();  // id 0, held for the run
  EpochDomain ebr;
  std::atomic<Node*> current{new Node};
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> torn{0};
  constexpr int kChurners = 3;
  constexpr int kGenerations = 40;
  constexpr int kReadsPerLife = 200;
  constexpr int kSwaps = 6000;
  {
    std::vector<std::jthread> ts;
    for (int c = 0; c < kChurners; ++c) {
      ts.emplace_back([&] {
        for (int gen = 0; gen < kGenerations && !stop.load(); ++gen) {
          ThreadIdGuard slot(reg);  // a fresh life, likely a reused id
          for (int i = 0; i < kReadsPerLife; ++i) {
            EpochDomain::Guard g(ebr, slot.tid());
            Node* n = current.load(std::memory_order_acquire);
            if (n->magic.load(std::memory_order_relaxed) != kMagic) {
              torn.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    ts.emplace_back([&] {
      for (int k = 0; k < kSwaps; ++k) {
        Node* fresh = new Node;
        Node* old = current.exchange(fresh, std::memory_order_acq_rel);
        ebr.retire(writer_id, old, [](void* q) {
          auto* node = static_cast<Node*>(q);
          node->magic.store(0, std::memory_order_relaxed);  // poison
          delete node;
        });
      }
      stop.store(true, std::memory_order_release);
    });
  }
  reg.release(writer_id);
  delete current.load();
  EXPECT_EQ(torn.load(), 0u);
  // No reader is pinned any more: the backlog must drain completely once
  // the domain collects, proving no departed generation wedged the epoch.
  for (int i = 0; i < 4; ++i) ebr.collect(writer_id);
  EXPECT_EQ(ebr.retired_count(), 0u);
}

}  // namespace
}  // namespace cal::runtime
