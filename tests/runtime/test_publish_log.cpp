// runtime::PublishLog — the wait-free claim/publish buffer the Recorder and
// TraceLog now share. Unit coverage for the cursor protocol plus the
// concurrent stress invariants (run under TSan in CI): no lost or invented
// slots across overflow (size + dropped == attempts), the published prefix
// is gap-free, and a cursor polled concurrently with the writers consumes
// every item exactly once.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/publish_log.hpp"

namespace cal::runtime {
namespace {

TEST(PublishLog, AppendSnapshotBasics) {
  PublishLog<int> log(8);
  EXPECT_EQ(log.capacity(), 8u);
  EXPECT_EQ(log.size(), 0u);
  for (int i = 0; i < 5; ++i) log.append(int{i});
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.dropped(), 0u);
  std::vector<int> got;
  log.snapshot_prefix([&](const int& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(PublishLog, OverflowDropsAndCounts) {
  PublishLog<int> log(4);
  for (int i = 0; i < 10; ++i) log.append(int{i});
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  std::vector<int> got;
  log.snapshot_prefix([&](const int& v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
  log.reset();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
  log.append(int{42});
  EXPECT_EQ(log.size(), 1u);
}

TEST(PublishLogCursor, PollConsumesEachItemOnce) {
  PublishLog<int> log(16);
  auto cursor = log.cursor();
  std::vector<int> got;
  const auto sink = [&](const int& v) { got.push_back(v); };
  EXPECT_EQ(cursor.poll(sink), 0u);
  log.append(1);
  log.append(2);
  EXPECT_EQ(cursor.poll(sink), 2u);
  EXPECT_EQ(cursor.poll(sink), 0u);  // nothing new
  log.append(3);
  EXPECT_EQ(cursor.poll(sink), 1u);
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(cursor.position(), 3u);
  EXPECT_FALSE(cursor.at_capacity());
}

TEST(PublishLogCursor, MaxBoundsOnePoll) {
  PublishLog<int> log(16);
  for (int i = 0; i < 10; ++i) log.append(int{i});
  auto cursor = log.cursor();
  std::vector<int> got;
  const auto sink = [&](const int& v) { got.push_back(v); };
  EXPECT_EQ(cursor.poll(sink, 3), 3u);
  EXPECT_EQ(cursor.position(), 3u);
  EXPECT_EQ(cursor.poll(sink, 4), 4u);
  EXPECT_EQ(cursor.poll(sink), 3u);  // unbounded drains the rest
  EXPECT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
}

TEST(PublishLogCursor, AtCapacityOnlyWhenFullAndDrained) {
  PublishLog<int> log(4);
  auto cursor = log.cursor();
  for (int i = 0; i < 6; ++i) log.append(int{i});
  EXPECT_FALSE(cursor.at_capacity());
  EXPECT_EQ(cursor.poll([](const int&) {}), 4u);
  EXPECT_TRUE(cursor.at_capacity());
}

TEST(PublishLogCursor, IndependentCursorsDoNotInterfere) {
  PublishLog<int> log(8);
  auto a = log.cursor();
  auto b = log.cursor();
  log.append(1);
  log.append(2);
  EXPECT_EQ(a.poll([](const int&) {}), 2u);
  EXPECT_EQ(b.position(), 0u);
  EXPECT_EQ(b.poll([](const int&) {}), 2u);
}

// ---------------------------------------------------------------------------
// Concurrent stress. Each writer appends values tagged with its id; the
// item encoding (writer * kPerWriter + seq) makes per-writer order and
// exactly-once delivery checkable after the fact.

TEST(PublishLogStress, ConcurrentOverflowAccounting) {
  constexpr std::size_t kWriters = 8;
  constexpr std::size_t kPerWriter = 5000;
  constexpr std::size_t kCapacity = 1 << 12;  // much smaller than the load
  PublishLog<std::uint64_t> log(kCapacity);
  {
    std::vector<std::thread> ts;
    ts.reserve(kWriters);
    for (std::size_t w = 0; w < kWriters; ++w) {
      ts.emplace_back([&, w] {
        for (std::size_t i = 0; i < kPerWriter; ++i) {
          log.append(static_cast<std::uint64_t>(w * kPerWriter + i));
        }
      });
    }
    for (std::thread& t : ts) t.join();
  }
  // Nothing lost, nothing invented: every attempt either landed or was
  // counted as dropped, and the log is exactly full.
  EXPECT_EQ(log.size(), kCapacity);
  EXPECT_EQ(log.size() + log.dropped(), kWriters * kPerWriter);
  // The published prefix is gap-free and duplicate-free, and each writer's
  // items appear in program order.
  std::vector<std::uint64_t> got;
  log.snapshot_prefix([&](const std::uint64_t& v) { got.push_back(v); });
  EXPECT_EQ(got.size(), kCapacity);
  std::vector<std::uint64_t> last_seq(kWriters, 0);
  std::vector<bool> seen_any(kWriters, false);
  for (const std::uint64_t v : got) {
    const std::size_t w = v / kPerWriter;
    const std::uint64_t seq = v % kPerWriter;
    ASSERT_LT(w, kWriters);
    if (seen_any[w]) {
      EXPECT_GT(seq, last_seq[w]);
    }
    seen_any[w] = true;
    last_seq[w] = seq;
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(std::unique(got.begin(), got.end()), got.end());
}

TEST(PublishLogStress, SnapshotDuringWritesSeesConsistentPrefix) {
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kPerWriter = 2000;
  PublishLog<std::uint64_t> log(kWriters * kPerWriter);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> snapshots{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::size_t n = 0;
      std::uint64_t unused = 0;
      log.snapshot_prefix([&](const std::uint64_t& v) {
        unused ^= v;
        ++n;
      });
      // A prefix never shrinks relative to what size() promised before.
      EXPECT_LE(n, log.size());
      snapshots.fetch_add(1, std::memory_order_relaxed);
    }
  });
  {
    std::vector<std::thread> ts;
    for (std::size_t w = 0; w < kWriters; ++w) {
      ts.emplace_back([&, w] {
        for (std::size_t i = 0; i < kPerWriter; ++i) {
          log.append(static_cast<std::uint64_t>(w * kPerWriter + i));
        }
      });
    }
    for (std::thread& t : ts) t.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(snapshots.load(), 0u);
  EXPECT_EQ(log.size(), kWriters * kPerWriter);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(PublishLogStress, CursorFollowsLiveWriters) {
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kPerWriter = 2000;
  PublishLog<std::uint64_t> log(kWriters * kPerWriter);
  auto cursor = log.cursor();
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> got;
  std::thread follower([&] {
    const auto sink = [&](const std::uint64_t& v) { got.push_back(v); };
    while (!done.load(std::memory_order_acquire)) {
      cursor.poll(sink);
      std::this_thread::yield();
    }
    cursor.poll(sink);  // drain the tail
  });
  {
    std::vector<std::thread> ts;
    for (std::size_t w = 0; w < kWriters; ++w) {
      ts.emplace_back([&, w] {
        for (std::size_t i = 0; i < kPerWriter; ++i) {
          log.append(static_cast<std::uint64_t>(w * kPerWriter + i));
        }
      });
    }
    for (std::thread& t : ts) t.join();
  }
  done.store(true, std::memory_order_release);
  follower.join();
  ASSERT_EQ(got.size(), kWriters * kPerWriter);
  EXPECT_TRUE(cursor.at_capacity());
  std::sort(got.begin(), got.end());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i);
}

}  // namespace
}  // namespace cal::runtime
