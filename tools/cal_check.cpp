// cal-check — command-line membership checker for recorded histories.
//
//   cal-check --spec exchanger:E [--checker cal|set-lin] [FILE]
//   cal-check --spec stack:S --checker lin history.txt
//
// Reads a history in the line format of cal/text.hpp (stdin when FILE is
// omitted), decides membership w.r.t. the named specification, prints the
// verdict and (on acceptance) the witness, and exits 0/1/2 for
// accept/reject/usage-or-parse error.
//
// Specs:
//   exchanger:<obj>[:<method>]   CA-spec (swap pairs / failures)
//   sync-queue:<obj>             CA-spec (put/take hand-offs)
//   snapshot:<obj>               CA-spec (immediate snapshot, unbounded)
//   stack:<obj>                  sequential (push always true; pop blocks)
//   central-stack:<obj>          sequential with spurious CAS failures
//   queue:<obj>                  sequential FIFO
//   register:<obj>               sequential read/write register
// Sequential specs work with every checker (wrapped in SeqAsCaSpec for
// cal/set-lin); CA-specs reject --checker lin.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "cal/cal_checker.hpp"
#include "cal/lin_checker.hpp"
#include "cal/set_lin.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/queue_spec.hpp"
#include "cal/specs/snapshot_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "cal/specs/sync_queue_spec.hpp"
#include "cal/text.hpp"

namespace {

using namespace cal;  // NOLINT: tool

struct Options {
  std::string spec;
  std::string checker = "cal";
  std::string file;  // empty = stdin
  bool quiet = false;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --spec KIND:OBJ[:METHOD] [--checker cal|lin|set-lin]\n"
      "          [--quiet] [FILE]\n"
      "spec kinds: exchanger sync-queue snapshot stack central-stack queue "
      "register\n",
      argv0);
  return 2;
}

struct SpecBundle {
  std::shared_ptr<SequentialSpec> seq;  // set for sequential kinds
  std::shared_ptr<CaSpec> ca;           // always set
};

std::optional<SpecBundle> make_spec(const std::string& desc) {
  std::vector<std::string> parts;
  std::stringstream ss(desc);
  std::string piece;
  while (std::getline(ss, piece, ':')) parts.push_back(piece);
  if (parts.size() < 2 || parts[1].empty()) return std::nullopt;
  const std::string& kind = parts[0];
  const Symbol object{parts[1]};

  SpecBundle b;
  if (kind == "exchanger") {
    const Symbol method{parts.size() > 2 ? parts[2] : "exchange"};
    b.ca = std::make_shared<ExchangerSpec>(object, method);
  } else if (kind == "sync-queue") {
    b.ca = std::make_shared<SyncQueueSpec>(object);
  } else if (kind == "snapshot") {
    b.ca = std::make_shared<SnapshotSpec>(object);
  } else if (kind == "stack") {
    b.seq = std::make_shared<StackSpec>(object);
  } else if (kind == "central-stack") {
    b.seq = std::make_shared<CentralStackSpec>(object);
  } else if (kind == "queue") {
    b.seq = std::make_shared<QueueSpec>(object);
  } else if (kind == "register") {
    b.seq = std::make_shared<RegisterSpec>(object);
  } else {
    return std::nullopt;
  }
  if (b.seq && !b.ca) b.ca = std::make_shared<SeqAsCaSpec>(b.seq);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      opt.spec = argv[++i];
    } else if (arg == "--checker" && i + 1 < argc) {
      opt.checker = argv[++i];
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      opt.file = arg;
    }
  }
  if (opt.spec.empty()) return usage(argv[0]);

  const auto spec = make_spec(opt.spec);
  if (!spec) {
    std::fprintf(stderr, "bad --spec '%s'\n", opt.spec.c_str());
    return usage(argv[0]);
  }
  if (opt.checker == "lin" && !spec->seq) {
    std::fprintf(stderr,
                 "--checker lin needs a sequential spec; '%s' is a "
                 "CA-spec (that impossibility is the point of the paper — "
                 "use cal or set-lin)\n",
                 opt.spec.c_str());
    return 2;
  }

  std::string text;
  if (opt.file.empty()) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(opt.file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", opt.file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  ParseResult<History> parsed = parse_history(text);
  if (!parsed) {
    std::fprintf(stderr, "parse error at line %zu: %s\n",
                 parsed.error->line, parsed.error->message.c_str());
    return 2;
  }
  const History& history = *parsed.value;
  if (!history.well_formed()) {
    std::printf("REJECT: history is not well-formed\n");
    return 1;
  }

  if (opt.checker == "cal") {
    CalChecker checker(*spec->ca);
    CalCheckResult r = checker.check(history);
    if (r.ok) {
      if (!opt.quiet) {
        std::printf("ACCEPT: CA-linearizable (%zu states)\nwitness:\n%s",
                    r.visited_states, format_trace(*r.witness).c_str());
      } else {
        std::printf("ACCEPT\n");
      }
      return 0;
    }
    std::printf("REJECT: not CA-linearizable (%zu states%s)\n",
                r.visited_states, r.exhausted ? ", search exhausted" : "");
    return 1;
  }
  if (opt.checker == "set-lin") {
    SetLinChecker checker(*spec->ca);
    SetLinResult r = checker.check(history);
    if (r.ok) {
      if (!opt.quiet) {
        std::printf("ACCEPT: set-linearizable\nwitness:\n%s",
                    format_trace(*r.witness).c_str());
      } else {
        std::printf("ACCEPT\n");
      }
      return 0;
    }
    std::printf("REJECT: not set-linearizable\n");
    return 1;
  }
  if (opt.checker == "lin") {
    LinChecker checker(*spec->seq);
    LinCheckResult r = checker.check(history);
    if (r.ok) {
      if (!opt.quiet && r.witness) {
        std::printf("ACCEPT: linearizable\nwitness linearization:\n");
        for (const Operation& op : *r.witness) {
          std::printf("  %s\n", op.to_string().c_str());
        }
      } else {
        std::printf("ACCEPT\n");
      }
      return 0;
    }
    std::printf("REJECT: not linearizable\n");
    return 1;
  }
  std::fprintf(stderr, "unknown checker '%s'\n", opt.checker.c_str());
  return usage(argv[0]);
}
