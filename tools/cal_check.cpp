// cal-check — command-line membership checker for recorded histories.
//
//   cal-check --spec exchanger:E [--checker cal|set-lin] [FILE]
//   cal-check --spec stack:S --checker lin history.txt
//   cal-check --spec exchanger:E --jobs 8 traces/*.history
//
// Reads one or more histories in the line format of cal/text.hpp (stdin
// when no FILE is given), decides membership w.r.t. the named
// specification, prints the verdict and (on acceptance) the witness, and
// exits 0/1/2 for accept/reject/usage-or-parse error. With several FILEs
// the verdicts are prefixed with the file name and printed in argument
// order; --jobs N checks the files through a parallel pipeline, and the
// exit code is the worst per-file code.
//
// Flags:
//   --jobs N          check files concurrently on N pool workers (0 = #cores)
//   --threads N       worker threads *inside* each CAL check
//                     (CalCheckOptions::threads; 0 = #cores, default 1)
//   --exact-visited   dedup visited search nodes by full stored keys
//                     instead of 128-bit fingerprints (CalCheckOptions::
//                     exact_visited): more memory, zero false-prune risk
//   --symmetry        merge search states that differ only in which of a
//                     set of spec-interchangeable operations fired
//                     (CalCheckOptions::symmetry); verdict unchanged
//   --no-order-check  force the engine search even when the spec offers a
//                     polynomial order_check decision (pq). The verdict
//                     line always names the path that ran: `path=order`
//                     with its zone/bump counters, or `path=engine` with
//                     the search counters. --follow always streams through
//                     the engine (the incremental checker has no order
//                     path).
//   --follow          streaming mode: consume actions line-by-line (stdin
//                     or one FILE, e.g. a live tail) through the
//                     incremental checker, deciding window-by-window with
//                     per-window progress on stderr. A violation exits 1
//                     within one window of the offending response and
//                     prints the consumed prefix as a replayable history.
//   --window N        actions per streaming window (--follow; default 16)
//
// Specs:
//   exchanger:<obj>[:<method>]   CA-spec (swap pairs / failures)
//   sync-queue:<obj>             CA-spec (put/take hand-offs)
//   snapshot:<obj>               CA-spec (immediate snapshot, unbounded)
//   stack:<obj>                  sequential (push always true; pop blocks)
//   central-stack:<obj>          sequential with spurious CAS failures
//   queue:<obj>                  sequential FIFO
//   pq:<obj>                     sequential priority queue (insert/deleteMin)
//                                with the polynomial order-check fast path
//   register:<obj>               sequential read/write register
// Sequential specs work with every checker (wrapped in SeqAsCaSpec for
// cal/set-lin); CA-specs reject --checker lin.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cal/cal_checker.hpp"
#include "cal/engine/incremental.hpp"
#include "cal/lin_checker.hpp"
#include "cal/parallel/task_pool.hpp"
#include "cal/set_lin.hpp"
#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/priority_queue_spec.hpp"
#include "cal/specs/queue_spec.hpp"
#include "cal/specs/snapshot_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "cal/specs/sync_queue_spec.hpp"
#include "cal/text.hpp"

namespace {

using namespace cal;  // NOLINT: tool

struct Options {
  std::string spec;
  std::string checker = "cal";
  std::vector<std::string> files;  // empty = stdin
  bool quiet = false;
  std::size_t jobs = 1;     // files checked concurrently (0 = #cores)
  std::size_t threads = 1;  // CalCheckOptions::threads per check
  bool exact_visited = false;  // CalCheckOptions::exact_visited
  bool symmetry = false;       // CalCheckOptions::symmetry
  bool order_check = true;     // CalCheckOptions::order_check
  bool follow = false;         // streaming incremental mode
  std::size_t window = 16;     // IncrementalOptions::window
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --spec KIND:OBJ[:METHOD] [--checker cal|lin|set-lin]\n"
      "          [--quiet] [--jobs N] [--threads N] [--exact-visited]\n"
      "          [--symmetry] [--no-order-check] [--follow [--window N]]\n"
      "          [FILE...]\n"
      "spec kinds: exchanger sync-queue snapshot stack central-stack queue "
      "pq register\n",
      argv0);
  return 2;
}

struct SpecBundle {
  std::shared_ptr<SequentialSpec> seq;  // set for sequential kinds
  std::shared_ptr<CaSpec> ca;           // always set
};

std::optional<SpecBundle> make_spec(const std::string& desc) {
  std::vector<std::string> parts;
  std::stringstream ss(desc);
  std::string piece;
  while (std::getline(ss, piece, ':')) parts.push_back(piece);
  if (parts.size() < 2 || parts[1].empty()) return std::nullopt;
  const std::string& kind = parts[0];
  const Symbol object{parts[1]};

  SpecBundle b;
  if (kind == "exchanger") {
    const Symbol method{parts.size() > 2 ? parts[2] : "exchange"};
    b.ca = std::make_shared<ExchangerSpec>(object, method);
  } else if (kind == "sync-queue") {
    b.ca = std::make_shared<SyncQueueSpec>(object);
  } else if (kind == "snapshot") {
    b.ca = std::make_shared<SnapshotSpec>(object);
  } else if (kind == "stack") {
    b.seq = std::make_shared<StackSpec>(object);
  } else if (kind == "central-stack") {
    b.seq = std::make_shared<CentralStackSpec>(object);
  } else if (kind == "queue") {
    b.seq = std::make_shared<QueueSpec>(object);
  } else if (kind == "pq") {
    b.seq = std::make_shared<PriorityQueueSpec>(object);
    b.ca = std::make_shared<PriorityQueueCaSpec>(object);  // not SeqAsCaSpec:
    // carries the order_check fast path and symmetry classes
  } else if (kind == "register") {
    b.seq = std::make_shared<RegisterSpec>(object);
  } else {
    return std::nullopt;
  }
  if (b.seq && !b.ca) b.ca = std::make_shared<SeqAsCaSpec>(b.seq);
  return b;
}

/// Outcome of checking one input: the process-style exit code plus the
/// text for each stream. Batch mode buffers these so a parallel pipeline
/// still prints verdicts in argument order.
struct CheckOutcome {
  int code = 2;
  std::string out;  // stdout text
  std::string err;  // stderr text
};

CheckOutcome check_text(const Options& opt, const SpecBundle& spec,
                        const std::string& text) {
  CheckOutcome o;
  ParseResult<History> parsed = parse_history(text);
  if (!parsed) {
    o.err = "parse error at line " + std::to_string(parsed.error->line) +
            ": " + parsed.error->message + "\n";
    return o;
  }
  const History& history = *parsed.value;
  if (!history.well_formed()) {
    o.out = "REJECT: history is not well-formed\n";
    o.code = 1;
    return o;
  }

  if (opt.checker == "cal") {
    CalCheckOptions copts;
    copts.threads = opt.threads;
    copts.exact_visited = opt.exact_visited;
    copts.symmetry = opt.symmetry;
    copts.order_check = opt.order_check;
    CalChecker checker(*spec.ca, copts);
    CalCheckResult r = checker.check(history);
    std::string stats;
    if (r.order_checked) {
      stats = "path=order, " + std::to_string(r.order_values) + " values, " +
              std::to_string(r.order_zones) + " zones, " +
              std::to_string(r.order_bumps) + " bumps";
    } else {
      stats = "path=engine, " + std::to_string(r.visited_states) +
              " states, " + std::to_string(r.visited_bytes) +
              " visited bytes, " + std::to_string(r.step_cache_hits) + "/" +
              std::to_string(r.step_cache_hits + r.step_cache_misses) +
              " step-cache hits, " + std::to_string(r.pruned_subsets) +
              " pruned subsets";
      if (opt.symmetry) {
        stats +=
            ", " + std::to_string(r.symmetry_merged) + " symmetry merges";
      }
    }
    if (r.ok) {
      if (!opt.quiet) {
        o.out = "ACCEPT: CA-linearizable (" + stats + ")\nwitness:\n" +
                format_trace(*r.witness);
      } else {
        o.out = "ACCEPT\n";
      }
      o.code = 0;
      return o;
    }
    o.out = "REJECT: not CA-linearizable (" + stats +
            (r.exhausted ? ", search exhausted" : "") + ")\n";
    o.code = 1;
    return o;
  }
  if (opt.checker == "set-lin") {
    SetLinChecker checker(*spec.ca);
    SetLinResult r = checker.check(history);
    if (r.ok) {
      if (!opt.quiet) {
        o.out = "ACCEPT: set-linearizable\nwitness:\n" +
                format_trace(*r.witness);
      } else {
        o.out = "ACCEPT\n";
      }
      o.code = 0;
      return o;
    }
    o.out = "REJECT: not set-linearizable\n";
    o.code = 1;
    return o;
  }
  if (opt.checker == "lin") {
    LinChecker checker(*spec.seq);
    LinCheckResult r = checker.check(history);
    if (r.ok) {
      if (!opt.quiet && r.witness) {
        o.out = "ACCEPT: linearizable\nwitness linearization:\n";
        for (const Operation& op : *r.witness) {
          o.out += "  " + op.to_string() + "\n";
        }
      } else {
        o.out = "ACCEPT\n";
      }
      o.code = 0;
      return o;
    }
    o.out = "REJECT: not linearizable\n";
    o.code = 1;
    return o;
  }
  o.err = "unknown checker '" + opt.checker + "'\n";
  return o;
}

/// Streaming mode: pushes each parsed line into the incremental checker,
/// reporting per-window progress on stderr. Output matches the batch
/// format (ACCEPT/REJECT first line, witness on acceptance); a rejection
/// additionally prints the consumed action prefix, which is itself a valid
/// history document — replayable through the batch checker.
int run_follow(const Options& opt, const SpecBundle& spec, std::istream& in) {
  engine::IncrementalOptions iopts;
  iopts.window = opt.window == 0 ? 16 : opt.window;
  iopts.threads = opt.threads;
  iopts.exact_visited = opt.exact_visited;
  engine::IncrementalChecker checker(*spec.ca, iopts);

  History consumed;
  std::string raw;
  std::size_t line_no = 0;
  std::size_t last_window = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Writer-side `!dropped <n>` directive: wait-free recorders emit it
    // when their publish log overflowed. A nonzero count means the stream
    // is missing actions, so any verdict over it would be unsound — bail
    // out with the infrastructure exit code rather than report ACCEPT or
    // REJECT over a hole.
    if (raw.rfind("!dropped", 0) == 0) {
      long long n = -1;
      if (std::sscanf(raw.c_str(), "!dropped %lld", &n) != 1 || n < 0) {
        std::fprintf(stderr,
                     "parse error at line %zu: malformed !dropped directive\n",
                     line_no);
        return 2;
      }
      if (n > 0) {
        std::fprintf(stderr,
                     "warning: writer dropped %lld action(s); the stream is "
                     "incomplete, refusing to give a verdict\n",
                     n);
        return 2;
      }
      continue;
    }
    ParseResult<std::optional<Action>> parsed = parse_action_line(raw);
    if (!parsed) {
      std::fprintf(stderr, "parse error at line %zu: %s\n", line_no,
                   parsed.error->message.c_str());
      return 2;
    }
    if (!*parsed.value) continue;  // blank / comment
    consumed.append(**parsed.value);
    checker.push(**parsed.value);

    const auto& s = checker.status();
    if (!opt.quiet && s.windows_checked > last_window) {
      last_window = s.windows_checked;
      std::fprintf(stderr,
                   "window %zu: %zu actions, %zu/%zu ops completed, "
                   "frontier %zu, active %zu, retired %zu\n",
                   s.windows_checked, s.actions_consumed, s.completed,
                   s.operations, s.frontier_size, s.active_ops,
                   s.retired_ops);
    }
    if (!s.ok) break;
  }
  checker.finish();

  const auto& s = checker.status();
  const std::string stats = std::to_string(s.visited_states) + " states, " +
                            std::to_string(s.windows_checked) + " windows, " +
                            std::to_string(s.actions_consumed) + " actions";
  if (s.ok) {
    if (opt.quiet) {
      std::printf("ACCEPT\n");
    } else {
      std::printf("ACCEPT: CA-linearizable (%s)\n", stats.c_str());
      if (const auto w = checker.witness()) {
        std::printf("witness:\n%s", format_trace(*w).c_str());
      }
    }
    return 0;
  }
  std::printf("REJECT: not CA-linearizable (%s%s)\n", stats.c_str(),
              s.exhausted ? ", search exhausted" : "");
  if (!opt.quiet) {
    std::printf("window %zu: %s\n", s.violation_window, s.reason.c_str());
    std::printf("consumed prefix (replayable):\n%s",
                format_history(consumed).c_str());
  }
  return 1;
}

CheckOutcome check_file(const Options& opt, const SpecBundle& spec,
                        const std::string& file) {
  std::ifstream in(file);
  if (!in) {
    CheckOutcome o;
    o.err = "cannot open " + file + "\n";
    return o;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return check_text(opt, spec, buf.str());
}

/// Emits one buffered outcome, prefixing each stdout line with the file
/// name in multi-file mode.
void emit(const CheckOutcome& o, const std::string& prefix) {
  if (!o.err.empty()) std::fputs(o.err.c_str(), stderr);
  if (o.out.empty()) return;
  if (prefix.empty()) {
    std::fputs(o.out.c_str(), stdout);
    return;
  }
  std::istringstream lines(o.out);
  std::string line;
  while (std::getline(lines, line)) {
    std::printf("%s: %s\n", prefix.c_str(), line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string bad_count_flag;  // name of the flag with a bad count value
  auto parse_count = [&](const char* flag, const char* s) -> std::size_t {
    // stoul accepts "-1" (wrapping to SIZE_MAX), so insist on plain digits
    // and a sane ceiling before handing the count to a thread pool.
    const std::string v = s;
    if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
      bad_count_flag = flag;
      return 1;
    }
    try {
      const unsigned long n = std::stoul(v);
      if (n > 4096) {
        bad_count_flag = flag;
        return 1;
      }
      return static_cast<std::size_t>(n);
    } catch (...) {
      bad_count_flag = flag;
      return 1;
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      opt.spec = argv[++i];
    } else if (arg == "--checker" && i + 1 < argc) {
      opt.checker = argv[++i];
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      opt.jobs = parse_count("--jobs", argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      opt.threads = parse_count("--threads", argv[++i]);
    } else if (arg == "--exact-visited") {
      opt.exact_visited = true;
    } else if (arg == "--symmetry") {
      opt.symmetry = true;
    } else if (arg == "--no-order-check") {
      opt.order_check = false;
    } else if (arg == "--follow") {
      opt.follow = true;
    } else if (arg == "--window" && i + 1 < argc) {
      opt.window = parse_count("--window", argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      opt.files.push_back(arg);
    }
  }
  if (!bad_count_flag.empty()) {
    std::fprintf(stderr, "bad count for %s: expected 0..4096\n",
                 bad_count_flag.c_str());
    return usage(argv[0]);
  }
  if (opt.spec.empty()) return usage(argv[0]);

  const auto spec = make_spec(opt.spec);
  if (!spec) {
    std::fprintf(stderr, "bad --spec '%s'\n", opt.spec.c_str());
    return usage(argv[0]);
  }
  if (opt.checker == "lin" && !spec->seq) {
    std::fprintf(stderr,
                 "--checker lin needs a sequential spec; '%s' is a "
                 "CA-spec (that impossibility is the point of the paper — "
                 "use cal or set-lin)\n",
                 opt.spec.c_str());
    return 2;
  }

  if (opt.follow) {
    if (opt.checker != "cal") {
      std::fprintf(stderr, "--follow streams through the cal checker only\n");
      return 2;
    }
    if (opt.files.size() > 1) {
      std::fprintf(stderr, "--follow takes at most one FILE\n");
      return 2;
    }
    if (opt.files.empty()) return run_follow(opt, *spec, std::cin);
    std::ifstream in(opt.files.front());
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", opt.files.front().c_str());
      return 2;
    }
    return run_follow(opt, *spec, in);
  }

  if (opt.files.empty()) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    CheckOutcome o = check_text(opt, *spec, buf.str());
    emit(o, "");
    return o.code;
  }
  if (opt.files.size() == 1) {
    CheckOutcome o = check_file(opt, *spec, opt.files.front());
    emit(o, "");
    return o.code;
  }

  // Batch pipeline: fan the files out over a pool, then report in
  // argument order. The worst per-file exit code wins.
  std::vector<CheckOutcome> outcomes(opt.files.size());
  const std::size_t jobs =
      std::min(par::resolve_threads(opt.jobs), opt.files.size());
  if (jobs > 1) {
    par::TaskPool pool(jobs);
    for (std::size_t i = 0; i < opt.files.size(); ++i) {
      pool.submit([&, i] { outcomes[i] = check_file(opt, *spec, opt.files[i]); });
    }
    pool.wait_idle();
  } else {
    for (std::size_t i = 0; i < opt.files.size(); ++i) {
      outcomes[i] = check_file(opt, *spec, opt.files[i]);
    }
  }
  int code = 0;
  for (std::size_t i = 0; i < opt.files.size(); ++i) {
    emit(outcomes[i], opt.files[i]);
    code = std::max(code, outcomes[i].code);
  }
  return code;
}
