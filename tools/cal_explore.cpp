// cal-explore — exhaustive schedule exploration from the command line.
//
//   cal-explore [--machine exchanger|stack|queue|sb|sb-sc]
//               [--memory-model sc|tso] [--por] [--symmetry] [--jobs N]
//
// Explores every interleaving of a small built-in program against the
// corresponding corpus machine (the same Env-parameterized bodies the
// runtime executes) and reports the verdict with the search counters,
// including the active memory model and, under TSO, the flush-transition
// count and buffered-write high-water mark. Exits 0 on VERIFIED, 1 on a
// violation (with the replayable counterexample schedule printed), 2 on
// usage errors.
//
// The `sb` machine is the store-buffering litmus: each thread sets its
// own flag with a *relaxed* store and reads the partner's. It is the
// canonical SC/TSO separator — VERIFIED under --memory-model sc,
// VIOLATION under tso. `sb-sc` is the repaired (seq_cst-store) variant,
// VERIFIED under both.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/queue_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_env.hpp"
#include "sched/sim_objects.hpp"

using namespace cal;         // NOLINT: tool
using namespace cal::sched;  // NOLINT: tool

namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--machine exchanger|stack|queue|sb|sb-sc]\n"
      "          [--memory-model sc|tso] [--por] [--symmetry] [--jobs N]\n",
      argv0);
  return 2;
}

// The store-buffering litmus machine (mirrors the regression suite in
// tests/sched/test_sim_memory.cpp): sb(i) sets flag[i] with `store_order`,
// reads flag[1-i], returns it.
class SimStoreBuffering final : public EnvSimObject {
 public:
  SimStoreBuffering(Symbol name, objects::MemOrder store_order)
      : EnvSimObject(0), name_(name), order_(store_order) {}

  void init(World& world) override { flags_ = world.alloc_global(2); }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    static const Symbol kSb{"sb"};
    const Call& call = current_call(world, t);
    const objects::Word me = call.arg.as_int();
    env.store(flags_, me, 1, order_);
    const objects::Word other =
        env.load(flags_, 1 - me, objects::MemOrder::kAcquire);
    env.emit([&] {
      return CaElement::singleton(
          name_, Operation::make(t.tid, name_, kSb, Value::integer(me),
                                 Value::integer(other)));
    });
    return {Status::kDone, Value::integer(other)};
  }

 private:
  Symbol name_;
  objects::MemOrder order_;
  objects::Word flags_ = objects::kNullRef;
};

/// Spec of sb: setting your flag linearizes; you must read 1 if the
/// partner already linearized, may read either value otherwise.
class SbSpec final : public SequentialSpec {
 public:
  explicit SbSpec(Symbol object) : object_(object) {}

  [[nodiscard]] SpecState initial() const override { return {0, 0}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId /*tid*/, Symbol object, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override {
    static const Symbol kSb{"sb"};
    if (object != object_ || method != kSb) return {};
    const auto me = static_cast<std::size_t>(arg.as_int());
    if (me > 1) return {};
    SpecState next = state;
    next[me] = 1;
    std::vector<SeqStepResult> out;
    auto emit = [&](std::int64_t r) {
      Value v = Value::integer(r);
      if (!ret || *ret == v) out.push_back(SeqStepResult{next, std::move(v)});
    };
    emit(1);
    if (state[1 - me] == 0) emit(0);
    return out;
  }

 private:
  Symbol object_;
};

struct Setup {
  WorldConfig cfg;
  std::vector<std::unique_ptr<SimObject>> objects;
  // Keep the specs alive for the exploration.
  std::shared_ptr<const CaSpec> spec;
};

Setup make_exchanger() {
  Setup s;
  auto spec =
      std::make_shared<ExchangerSpec>(Symbol{"E"}, Symbol{"exchange"});
  for (std::size_t i = 0; i < 3; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    p.calls = {Call{0, Symbol{"exchange"},
                    iv(static_cast<std::int64_t>(10 * (i + 1)))}};
    s.cfg.programs.push_back(std::move(p));
  }
  s.cfg.object_names = {Symbol{"E"}};
  s.cfg.heap_cells = 16;
  s.cfg.global_cells = 8;
  s.objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
  s.cfg.spec = spec.get();
  s.spec = std::move(spec);
  return s;
}

Setup make_stack() {
  Setup s;
  auto spec = std::make_shared<SeqAsCaSpec>(
      std::make_shared<CentralStackSpec>(Symbol{"S"}));
  s.cfg.programs = {ThreadProgram{0, {Call{0, Symbol{"push"}, iv(10)}}},
                    ThreadProgram{1, {Call{0, Symbol{"push"}, iv(20)}}},
                    ThreadProgram{2, {Call{0, Symbol{"pop"}, Value::unit()}}}};
  s.cfg.object_names = {Symbol{"S"}};
  s.cfg.heap_cells = 16;
  s.cfg.global_cells = 4;
  s.objects.push_back(std::make_unique<SimCentralStack>(Symbol{"S"}));
  s.cfg.spec = spec.get();
  s.spec = std::move(spec);
  return s;
}

Setup make_queue() {
  Setup s;
  auto spec =
      std::make_shared<SeqAsCaSpec>(std::make_shared<QueueSpec>(Symbol{"Q"}));
  s.cfg.programs = {ThreadProgram{0, {Call{0, Symbol{"enq"}, iv(7)}}},
                    ThreadProgram{1, {Call{0, Symbol{"deq"}, Value::unit()}}}};
  s.cfg.object_names = {Symbol{"Q"}};
  s.cfg.heap_cells = 16;
  s.cfg.global_cells = 4;
  s.objects.push_back(std::make_unique<SimMsQueue>(Symbol{"Q"}));
  s.cfg.spec = spec.get();
  s.spec = std::move(spec);
  return s;
}

Setup make_sb(objects::MemOrder store_order) {
  Setup s;
  auto spec =
      std::make_shared<SeqAsCaSpec>(std::make_shared<SbSpec>(Symbol{"L"}));
  s.cfg.programs = {ThreadProgram{0, {Call{0, Symbol{"sb"}, iv(0)}}},
                    ThreadProgram{1, {Call{0, Symbol{"sb"}, iv(1)}}}};
  s.cfg.object_names = {Symbol{"L"}};
  s.cfg.heap_cells = 4;
  s.cfg.global_cells = 4;
  s.objects.push_back(
      std::make_unique<SimStoreBuffering>(Symbol{"L"}, store_order));
  s.cfg.spec = spec.get();
  s.spec = std::move(spec);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string machine = "exchanger";
  ExploreOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--machine" && i + 1 < argc) {
      machine = argv[++i];
    } else if (arg == "--memory-model" && i + 1 < argc) {
      const std::string model = argv[++i];
      if (model == "sc") {
        opts.memory_model = MemoryModel::kSc;
      } else if (model == "tso") {
        opts.memory_model = MemoryModel::kTso;
      } else {
        std::fprintf(stderr, "unknown memory model '%s'\n", model.c_str());
        return usage(argv[0]);
      }
    } else if (arg == "--por") {
      opts.por = true;
    } else if (arg == "--symmetry") {
      opts.symmetry = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      opts.threads = static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      return usage(argv[0]);
    }
  }

  Setup s;
  if (machine == "exchanger") {
    s = make_exchanger();
  } else if (machine == "stack") {
    s = make_stack();
  } else if (machine == "queue") {
    s = make_queue();
  } else if (machine == "sb") {
    s = make_sb(objects::MemOrder::kRelaxed);
  } else if (machine == "sb-sc") {
    s = make_sb(objects::MemOrder::kSeqCst);
  } else {
    std::fprintf(stderr, "unknown machine '%s'\n", machine.c_str());
    return usage(argv[0]);
  }
  s.cfg.record_trace = true;

  Explorer explorer(s.cfg, std::move(s.objects), opts);
  const ExploreResult r = explorer.run();

  std::printf("machine: %s\n", machine.c_str());
  std::printf("memory model: %s\n",
              opts.memory_model == MemoryModel::kTso ? "tso" : "sc");
  std::printf("states: %zu, transitions: %zu, merged: %zu, terminals: %zu, "
              "max depth: %zu\n",
              r.states, r.transitions, r.merged, r.terminals, r.max_depth);
  std::printf("por pruned: %zu, symmetry merged: %zu\n", r.por_pruned,
              r.symmetry_merged);
  std::printf("flush steps: %zu, buffered high-water: %zu\n", r.flush_steps,
              r.buffered_max);
  if (r.ok()) {
    std::printf("VERIFIED: no violation in any interleaving\n");
    return 0;
  }
  std::printf("VIOLATION: %s\n", r.violations[0].to_string().c_str());
  return 1;
}
