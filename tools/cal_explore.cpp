// cal-explore — exhaustive schedule exploration from the command line.
//
//   cal-explore [--machine exchanger|stack|stack-aba|queue|sb|sb-sc]
//               [--memory-model sc|tso] [--por] [--symmetry] [--jobs N]
//               [--recycle] [--reclaimer ebr|hp|tagged] [--tag-bits N]
//
// Explores every interleaving of a small built-in program against the
// corresponding corpus machine (the same Env-parameterized bodies the
// runtime executes) and reports the verdict with the search counters,
// including the active memory model and, under TSO, the flush-transition
// count and buffered-write high-water mark. Exits 0 on VERIFIED, 1 on a
// violation (with the replayable counterexample schedule printed), 2 on
// usage errors.
//
// The `sb` machine is the store-buffering litmus: each thread sets its
// own flag with a *relaxed* store and reads the partner's. It is the
// canonical SC/TSO separator — VERIFIED under --memory-model sc,
// VIOLATION under tso. `sb-sc` is the repaired (seq_cst-store) variant,
// VERIFIED under both.
//
// `--recycle` turns on address reuse in the simulated allocator, with
// `--reclaimer` choosing the reclamation protocol the world enforces
// (epoch grace periods, hazard-pointer slots, or tagged generations of
// `--tag-bits` width). The `stack-aba` machine is the reclamation
// counterpart of the sb litmus: a seeded Treiber-style stack whose pop
// reads the top with a plain load instead of protect(). Without
// --recycle the no-reuse heap masks the bug (VERIFIED); with
// --recycle --reclaimer hp the observed block is recycled mid-attempt
// and the stale CAS corrupts the stack (VIOLATION).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cal/specs/exchanger_spec.hpp"
#include "cal/specs/queue_spec.hpp"
#include "cal/specs/stack_spec.hpp"
#include "objects/core/stack_core.hpp"
#include "runtime/reclaim/reclaimer.hpp"
#include "sched/explorer.hpp"
#include "sched/sim_env.hpp"
#include "sched/sim_objects.hpp"

using namespace cal;         // NOLINT: tool
using namespace cal::sched;  // NOLINT: tool

namespace {

Value iv(std::int64_t x) { return Value::integer(x); }

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--machine exchanger|stack|stack-aba|queue|sb|sb-sc]\n"
      "          [--memory-model sc|tso] [--por] [--symmetry] [--jobs N]\n"
      "          [--recycle] [--reclaimer ebr|hp|tagged] [--tag-bits N]\n",
      argv0);
  return 2;
}

// The store-buffering litmus machine (mirrors the regression suite in
// tests/sched/test_sim_memory.cpp): sb(i) sets flag[i] with `store_order`,
// reads flag[1-i], returns it.
class SimStoreBuffering final : public EnvSimObject {
 public:
  SimStoreBuffering(Symbol name, objects::MemOrder store_order)
      : EnvSimObject(0), name_(name), order_(store_order) {}

  void init(World& world) override { flags_ = world.alloc_global(2); }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    static const Symbol kSb{"sb"};
    const Call& call = current_call(world, t);
    const objects::Word me = call.arg.as_int();
    env.store(flags_, me, 1, order_);
    const objects::Word other =
        env.load(flags_, 1 - me, objects::MemOrder::kAcquire);
    env.emit([&] {
      return CaElement::singleton(
          name_, Operation::make(t.tid, name_, kSb, Value::integer(me),
                                 Value::integer(other)));
    });
    return {Status::kDone, Value::integer(other)};
  }

 private:
  Symbol name_;
  objects::MemOrder order_;
  objects::Word flags_ = objects::kNullRef;
};

/// Spec of sb: setting your flag linearizes; you must read 1 if the
/// partner already linearized, may read either value otherwise.
class SbSpec final : public SequentialSpec {
 public:
  explicit SbSpec(Symbol object) : object_(object) {}

  [[nodiscard]] SpecState initial() const override { return {0, 0}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId /*tid*/, Symbol object, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override {
    static const Symbol kSb{"sb"};
    if (object != object_ || method != kSb) return {};
    const auto me = static_cast<std::size_t>(arg.as_int());
    if (me > 1) return {};
    SpecState next = state;
    next[me] = 1;
    std::vector<SeqStepResult> out;
    auto emit = [&](std::int64_t r) {
      Value v = Value::integer(r);
      if (!ret || *ret == v) out.push_back(SeqStepResult{next, std::move(v)});
    };
    emit(1);
    if (state[1 - me] == 0) emit(0);
    return out;
  }

 private:
  Symbol object_;
};

struct Setup {
  WorldConfig cfg;
  std::vector<std::unique_ptr<SimObject>> objects;
  // Keep the specs alive for the exploration.
  std::shared_ptr<const CaSpec> spec;
};

Setup make_exchanger() {
  Setup s;
  auto spec =
      std::make_shared<ExchangerSpec>(Symbol{"E"}, Symbol{"exchange"});
  for (std::size_t i = 0; i < 3; ++i) {
    ThreadProgram p;
    p.tid = static_cast<ThreadId>(i);
    p.calls = {Call{0, Symbol{"exchange"},
                    iv(static_cast<std::int64_t>(10 * (i + 1)))}};
    s.cfg.programs.push_back(std::move(p));
  }
  s.cfg.object_names = {Symbol{"E"}};
  s.cfg.heap_cells = 16;
  s.cfg.global_cells = 8;
  s.objects.push_back(std::make_unique<SimExchanger>(Symbol{"E"}));
  s.cfg.spec = spec.get();
  s.spec = std::move(spec);
  return s;
}

Setup make_stack() {
  Setup s;
  auto spec = std::make_shared<SeqAsCaSpec>(
      std::make_shared<CentralStackSpec>(Symbol{"S"}));
  s.cfg.programs = {ThreadProgram{0, {Call{0, Symbol{"push"}, iv(10)}}},
                    ThreadProgram{1, {Call{0, Symbol{"push"}, iv(20)}}},
                    ThreadProgram{2, {Call{0, Symbol{"pop"}, Value::unit()}}}};
  s.cfg.object_names = {Symbol{"S"}};
  s.cfg.heap_cells = 16;
  s.cfg.global_cells = 4;
  s.objects.push_back(std::make_unique<SimCentralStack>(Symbol{"S"}));
  s.cfg.spec = spec.get();
  s.spec = std::move(spec);
  return s;
}

// --- the reclamation litmus: drop-the-protect stack --------------------- //

/// CentralStackSpec is final; wrap it and seed the abstract state to match
/// the two concrete nodes init() plants (A(10) below B(20), top-last).
class SeededStackSpec final : public SequentialSpec {
 public:
  explicit SeededStackSpec(Symbol object) : inner_(object) {}

  [[nodiscard]] SpecState initial() const override { return {10, 20}; }
  [[nodiscard]] std::vector<SeqStepResult> step(
      const SpecState& state, ThreadId tid, Symbol object, Symbol method,
      const Value& arg, const std::optional<Value>& ret) const override {
    return inner_.step(state, tid, object, method, arg, ret);
  }

 private:
  CentralStackSpec inner_;
};

/// core::stack_pop_attempt with the protect dropped: the top read is a
/// plain load, so nothing pins the observed node while it is dereferenced
/// and CASed. Indistinguishable from the correct body without --recycle.
objects::core::StackPopOutcome pop_attempt_drop_protect(
    SimEnv& env, const objects::core::StackRefs& s, Symbol name,
    ThreadId tid) {
  namespace core = objects::core;
  static const Symbol kPop{"pop"};
  auto failed = [&] {
    return CaElement::singleton(
        name, Operation::make(tid, name, kPop, Value::unit(),
                              Value::pair(false, 0)));
  };
  const SimEnv::Word h =
      env.load(s.top, 0, objects::MemOrder::kAcquire);  // MUTANT: no protect
  if (h == objects::kNullRef) {
    env.emit(failed);
    return {core::StackPop::kEmpty, 0};
  }
  const SimEnv::Word next = env.load_frozen(h, core::kCellNext);
  if (env.cas(s.top, 0, h, next, objects::MemOrder::kAcqRel)) {
    const SimEnv::Word v = env.load_frozen(h, core::kCellData);
    env.retire(h, core::kCellCells);
    env.emit([&] {
      return CaElement::singleton(
          name, Operation::make(tid, name, kPop, Value::unit(),
                                Value::pair(true, v)));
    });
    return {core::StackPop::kGot, v};
  }
  env.emit(failed);
  return {core::StackPop::kLost, 0};
}

/// Seeded single-attempt central stack running the mutant pop body.
class SimAbaStack final : public EnvSimObject {
 public:
  explicit SimAbaStack(Symbol name) : EnvSimObject(0), name_(name) {}

  void init(World& world) override {
    namespace core = objects::core;
    refs_.top = world.alloc_global(1);
    const Addr a = world.alloc_global(core::kCellCells);
    const Addr b = world.alloc_global(core::kCellCells);
    world.write(a + core::kCellData, 10);
    world.write(a + core::kCellNext, objects::kNullRef);
    world.write(b + core::kCellData, 20);
    world.write(b + core::kCellNext, static_cast<Word>(a));
    world.write(static_cast<Addr>(refs_.top), static_cast<Word>(b));
  }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    namespace core = objects::core;
    static const Symbol kPush{"push"};
    const Call& call = current_call(world, t);
    if (call.method == kPush) {
      const bool ok = core::stack_push_attempt(env, refs_, name_, t.tid,
                                               call.arg.as_int());
      return {Status::kDone, Value::boolean(ok)};
    }
    const core::StackPopOutcome r =
        pop_attempt_drop_protect(env, refs_, name_, t.tid);
    if (r.kind == core::StackPop::kGot) {
      return {Status::kDone, Value::pair(true, r.value)};
    }
    return {Status::kDone, Value::pair(false, 0)};
  }

 private:
  Symbol name_;
  objects::core::StackRefs refs_;
};

Setup make_aba_stack() {
  Setup s;
  auto spec = std::make_shared<SeqAsCaSpec>(
      std::make_shared<SeededStackSpec>(Symbol{"S"}));
  ThreadProgram p0;
  p0.tid = 0;
  p0.calls = {Call{0, Symbol{"pop"}, {}}, Call{0, Symbol{"pop"}, {}}};
  ThreadProgram p1;
  p1.tid = 1;
  p1.calls = {Call{0, Symbol{"pop"}, {}}, Call{0, Symbol{"pop"}, {}},
              Call{0, Symbol{"push"}, iv(30)}};
  s.cfg.programs = {std::move(p0), std::move(p1)};
  s.cfg.object_names = {Symbol{"S"}};
  s.cfg.heap_cells = 16;
  s.cfg.global_cells = 8;
  s.objects.push_back(std::make_unique<SimAbaStack>(Symbol{"S"}));
  s.cfg.spec = spec.get();
  s.spec = std::move(spec);
  return s;
}

Setup make_queue() {
  Setup s;
  auto spec =
      std::make_shared<SeqAsCaSpec>(std::make_shared<QueueSpec>(Symbol{"Q"}));
  s.cfg.programs = {ThreadProgram{0, {Call{0, Symbol{"enq"}, iv(7)}}},
                    ThreadProgram{1, {Call{0, Symbol{"deq"}, Value::unit()}}}};
  s.cfg.object_names = {Symbol{"Q"}};
  s.cfg.heap_cells = 16;
  s.cfg.global_cells = 4;
  s.objects.push_back(std::make_unique<SimMsQueue>(Symbol{"Q"}));
  s.cfg.spec = spec.get();
  s.spec = std::move(spec);
  return s;
}

Setup make_sb(objects::MemOrder store_order) {
  Setup s;
  auto spec =
      std::make_shared<SeqAsCaSpec>(std::make_shared<SbSpec>(Symbol{"L"}));
  s.cfg.programs = {ThreadProgram{0, {Call{0, Symbol{"sb"}, iv(0)}}},
                    ThreadProgram{1, {Call{0, Symbol{"sb"}, iv(1)}}}};
  s.cfg.object_names = {Symbol{"L"}};
  s.cfg.heap_cells = 4;
  s.cfg.global_cells = 4;
  s.objects.push_back(
      std::make_unique<SimStoreBuffering>(Symbol{"L"}, store_order));
  s.cfg.spec = spec.get();
  s.spec = std::move(spec);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::string machine = "exchanger";
  ExploreOptions opts;
  bool recycle = false;
  auto policy = runtime::ReclaimPolicy::kEbr;
  unsigned tag_bits = 16;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--machine" && i + 1 < argc) {
      machine = argv[++i];
    } else if (arg == "--recycle") {
      recycle = true;
    } else if (arg == "--reclaimer" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name == "ebr") {
        policy = runtime::ReclaimPolicy::kEbr;
      } else if (name == "hp") {
        policy = runtime::ReclaimPolicy::kHp;
      } else if (name == "tagged") {
        policy = runtime::ReclaimPolicy::kTagged;
      } else {
        std::fprintf(stderr, "unknown reclaimer '%s'\n", name.c_str());
        return usage(argv[0]);
      }
    } else if (arg == "--tag-bits" && i + 1 < argc) {
      tag_bits = static_cast<unsigned>(std::atol(argv[++i]));
    } else if (arg == "--memory-model" && i + 1 < argc) {
      const std::string model = argv[++i];
      if (model == "sc") {
        opts.memory_model = MemoryModel::kSc;
      } else if (model == "tso") {
        opts.memory_model = MemoryModel::kTso;
      } else {
        std::fprintf(stderr, "unknown memory model '%s'\n", model.c_str());
        return usage(argv[0]);
      }
    } else if (arg == "--por") {
      opts.por = true;
    } else if (arg == "--symmetry") {
      opts.symmetry = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      opts.threads = static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      return usage(argv[0]);
    }
  }

  Setup s;
  if (machine == "exchanger") {
    s = make_exchanger();
  } else if (machine == "stack") {
    s = make_stack();
  } else if (machine == "stack-aba") {
    s = make_aba_stack();
  } else if (machine == "queue") {
    s = make_queue();
  } else if (machine == "sb") {
    s = make_sb(objects::MemOrder::kRelaxed);
  } else if (machine == "sb-sc") {
    s = make_sb(objects::MemOrder::kSeqCst);
  } else {
    std::fprintf(stderr, "unknown machine '%s'\n", machine.c_str());
    return usage(argv[0]);
  }
  s.cfg.record_trace = true;
  s.cfg.recycle_addresses = recycle;
  s.cfg.reclaim_policy = policy;
  s.cfg.tag_bits = tag_bits;

  Explorer explorer(s.cfg, std::move(s.objects), opts);
  const ExploreResult r = explorer.run();

  std::printf("machine: %s\n", machine.c_str());
  std::printf("memory model: %s\n",
              opts.memory_model == MemoryModel::kTso ? "tso" : "sc");
  std::printf("states: %zu, transitions: %zu, merged: %zu, terminals: %zu, "
              "max depth: %zu\n",
              r.states, r.transitions, r.merged, r.terminals, r.max_depth);
  std::printf("por pruned: %zu, symmetry merged: %zu\n", r.por_pruned,
              r.symmetry_merged);
  std::printf("flush steps: %zu, buffered high-water: %zu\n", r.flush_steps,
              r.buffered_max);
  if (recycle) {
    std::printf("reclaimer: %s, recycled allocs: %zu, "
                "retired high-water: %zu\n",
                runtime::reclaim_policy_name(policy), r.recycled_allocs,
                r.retired_max);
  }
  if (r.ok()) {
    std::printf("VERIFIED: no violation in any interleaving\n");
    return 0;
  }
  std::printf("VIOLATION: %s\n", r.violations[0].to_string().c_str());
  return 1;
}
