// Rendezvous object (Afek, Hakimi & Morrison — cited in §6 as another
// CA-linearizable object).
//
// A rendezvous pairs two threads and hands each the other's value — exactly
// the exchanger's contract under a different method name. The "fast and
// scalable" implementations stripe the meeting point, which is what the
// elimination-array layout already provides, so this object is a striped
// array of exchanger protocols logging `rendezvous` operations. Its CA-spec
// is ExchangerSpec(name, Symbol("rendezvous")).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cal/specs/elim_views.hpp"
#include "cal/symbol.hpp"
#include "objects/exchanger.hpp"

namespace cal::objects {

class Rendezvous {
 public:
  Rendezvous(EpochDomain& ebr, Symbol name, std::size_t width = 1,
             TraceLog* trace = nullptr)
      : name_(name) {
    static const Symbol kMethod{"rendezvous"};
    slots_.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      // Single-slot rendezvous logs under its own name so that traces need
      // no renaming; striped ones reuse the elimination-array naming and
      // are viewed through cal::make_f_ar(name, width).
      const Symbol slot_name = width == 1 ? name : elim_slot_name(name, i);
      slots_.push_back(
          std::make_unique<Exchanger>(ebr, slot_name, trace, kMethod));
    }
  }

  Rendezvous(const Rendezvous&) = delete;
  Rendezvous& operator=(const Rendezvous&) = delete;

  /// Meets a partner and swaps values; (false, v) if none arrived in time.
  ExchangeResult meet(ThreadId tid, std::int64_t v, unsigned spins = 256) {
    thread_local std::uint64_t state =
        0x2545f4914f6cdd1dull ^ reinterpret_cast<std::uintptr_t>(&state);
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return slots_[state % slots_.size()]->exchange(tid, v, spins);
  }

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] std::size_t width() const noexcept { return slots_.size(); }

 private:
  Symbol name_;
  std::vector<std::unique_ptr<Exchanger>> slots_;
};

}  // namespace cal::objects
