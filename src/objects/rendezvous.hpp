// Rendezvous object (Afek, Hakimi & Morrison — cited in §6 as another
// CA-linearizable object).
//
// A rendezvous pairs two threads and hands each the other's value — exactly
// the exchanger's contract under a different method name. The "fast and
// scalable" implementations stripe the meeting point, which is what the
// elimination-array layout already provides, so this object runs
// core::striped_exchange over an array of exchanger cells logging
// `rendezvous` operations. Its CA-spec is
// ExchangerSpec(name, Symbol("rendezvous")).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cal/specs/elim_views.hpp"
#include "cal/symbol.hpp"
#include "objects/core/elim_stack_core.hpp"
#include "objects/exchanger.hpp"

namespace cal::objects {

class Rendezvous {
 public:
  /// The striped-exchange body has no protect protocol (retire_grace):
  /// EBR-only, adapted through an EbrReclaimer member.
  Rendezvous(EpochDomain& ebr, Symbol name, std::size_t width = 1,
             TraceLog* trace = nullptr)
      : rec_(ebr), name_(name), trace_(trace) {
    static const Symbol kMethod{"rendezvous"};
    slots_.reserve(width);
    slot_refs_.reserve(width);
    slot_names_.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      // Single-slot rendezvous logs under its own name so that traces need
      // no renaming; striped ones reuse the elimination-array naming and
      // are viewed through cal::make_f_ar(name, width).
      const Symbol slot_name = width == 1 ? name : elim_slot_name(name, i);
      slots_.push_back(
          std::make_unique<Exchanger>(rec_, slot_name, trace, kMethod));
      slot_refs_.push_back(slots_.back()->refs());
      slot_names_.push_back(slot_name);
    }
  }

  Rendezvous(const Rendezvous&) = delete;
  Rendezvous& operator=(const Rendezvous&) = delete;

  /// Meets a partner and swaps values; (false, v) if none arrived in time.
  ExchangeResult meet(ThreadId tid, std::int64_t v, unsigned spins = 256) {
    static const Symbol kMethod{"rendezvous"};
    Reclaimer::Guard guard(rec_, tid);
    RealEnv env(&rec_, tid, trace_);
    const core::ExchangeOutcome r = core::striped_exchange(
        env, slot_refs_.data(), slot_names_.data(), slots_.size(), kMethod,
        tid, v, spins);
    return {r.ok, r.value};
  }

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] std::size_t width() const noexcept { return slots_.size(); }

 private:
  runtime::EbrReclaimer rec_;
  Symbol name_;
  TraceLog* trace_;
  std::vector<std::unique_ptr<Exchanger>> slots_;
  std::vector<core::ExchangerRefs> slot_refs_;
  std::vector<Symbol> slot_names_;
};

}  // namespace cal::objects
