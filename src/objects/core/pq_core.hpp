// A lock-free bounded-priority concurrent priority queue: an array of
// Treiber-stack buckets (one per priority; the inserted value IS the
// priority, smaller = higher) plus a global element counter, written once
// as Env-parameterized attempt bodies like the other six cores.
//
//   insert(v):    bump the counter, then push a node onto bucket v.
//   deleteMin():  read the counter; 0 means the queue is empty *at that
//                 read* (the counter over-approximates the physically
//                 present nodes: it is incremented before the push and
//                 decremented after the pop, so counter == 0 implies every
//                 logged insert has been matched by a logged removal).
//                 Otherwise scan the buckets in ascending priority order
//                 and pop the first non-empty one.
//
// Unlike the stacks and queues, a successful deleteMin has no fixed
// linearization point: a smaller value may be published into an
// already-scanned bucket before the pop CAS, in which case the operation
// linearizes *earlier* (at a moment when the scanned prefix really was
// empty), which only a whole-history argument can place. The emits below
// therefore record the *physical* resolution order — a raw 𝒯, not always a
// legal spec sequence — and the membership verdict comes from the
// history-level checkers (the engine search, or the polynomial order
// checker of cal/engine/order_checker.hpp). This is exactly the
// future-dependent-linearization-point shape that motivates the
// spec-specialized checker; DESIGN.md § "Order-checked specs" discusses it.
//
// One *attempt* = one pass: insert retries (returns false) only when the
// counter CAS loses; once the counter is bumped the push loop runs to
// completion inside the attempt (abandoning between the two would leak a
// count). deleteMin retries when a bucket pop CAS loses or when counted
// elements are still in flight (counter > 0 but every bucket scanned
// empty).
#pragma once

#include <cstdint>

#include "cal/ca_trace.hpp"
#include "cal/value.hpp"
#include "objects/env.hpp"

namespace cal::objects::core {

// Bucket-node layout: [0] data (the priority), [1] next.
inline constexpr Word kPqNodeData = 0;
inline constexpr Word kPqNodeNext = 1;
inline constexpr Word kPqNodeCells = 2;

/// Shared cells: the element counter and the base of the `buckets`
/// contiguous bucket-top cells (tops + v is the top of bucket v).
struct PqRefs {
  Word count = kNullRef;
  Word tops = kNullRef;
};

struct PqPc {
  enum : std::int32_t {
    kStart = 0,
    kInsertReturn = 1,
    kDeleteEmptyReturn = 2,
    kDeleteReturn = 3,
  };
};

enum class PqDelete : std::uint8_t {
  kGot,    ///< removed the minimum of some bucket
  kEmpty,  ///< observed counter == 0 (logged as deleteMin ▷ (false,0))
  kRetry,  ///< lost a pop CAS, or counted elements not yet published
};

struct PqDeleteOutcome {
  PqDelete kind = PqDelete::kRetry;
  Word value = 0;
};

/// One insert attempt. The caller guarantees 0 <= v < buckets. Returns
/// false (retry, no effect) only when the counter CAS loses; after the
/// counter is bumped the push runs to completion — each lost push CAS
/// implies another operation's publish or pop succeeded, so the loop
/// terminates in every finite schedule.
template <class Env>
bool pq_insert_attempt(Env& env, const PqRefs& q, Symbol name, ThreadId tid,
                       Word v) {
  static const Symbol kInsert{"insert"};
  // The counter is a pure occupancy count — no data is published
  // through it; acq_rel keeps its RMWs in a single modification order
  // the emptiness check can reason about.
  const Word c = env.load(q.count, 0, MemOrder::kAcquire);
  if (!env.cas(q.count, 0, c, c + 1, MemOrder::kAcqRel)) return false;
  const Word node = env.alloc(kPqNodeCells);
  env.store_private(node, kPqNodeData, v);
  for (;;) {
    const Word top = env.load(q.tops, v, MemOrder::kAcquire);
    env.store_private(node, kPqNodeNext, top);
    // The publish CAS releases the private node init.
    if (env.cas(q.tops, v, top, node, MemOrder::kAcqRel)) {
      // The publish CAS is the insert's linearization point.
      env.emit([&] {
        return CaElement::singleton(
            name, Operation::make(tid, name, kInsert, Value::integer(v),
                                  Value::boolean(true)));
      });
      env.label(PqPc::kInsertReturn);
      return true;
    }
  }
}

/// One deleteMin attempt over `buckets` buckets. A published node's data
/// and next cells are immutable, so reading them is not an interference
/// point. The success emit is fused with the pop CAS (the physical
/// resolution point — see the header comment); the counter settles after.
template <class Env>
PqDeleteOutcome pq_delete_min_attempt(Env& env, const PqRefs& q, Word buckets,
                                      Symbol name, ThreadId tid) {
  static const Symbol kDeleteMin{"deleteMin"};
  const Word c = env.load(q.count, 0, MemOrder::kAcquire);
  if (c == 0) {
    // Empty linearizes at the counter read: count == 0 proves no element
    // was logically present at that instant.
    env.emit([&] {
      return CaElement::singleton(
          name, Operation::make(tid, name, kDeleteMin, Value::unit(),
                                Value::pair(false, 0)));
    });
    env.label(PqPc::kDeleteEmptyReturn);
    return {PqDelete::kEmpty, 0};
  }
  for (Word p = 0; p < buckets; ++p) {
    const Word h = env.load(q.tops, p, MemOrder::kAcquire);
    if (h == kNullRef) continue;
    const Word next = env.load_frozen(h, kPqNodeNext);
    // The pop CAS transfers node ownership (acquire before retire).
    if (!env.cas(q.tops, p, h, next, MemOrder::kAcqRel)) {
      return {PqDelete::kRetry, 0};
    }
    const Word v = env.load_frozen(h, kPqNodeData);
    env.retire_grace(h, kPqNodeCells);
    env.emit([&] {
      return CaElement::singleton(
          name, Operation::make(tid, name, kDeleteMin, Value::unit(),
                                Value::pair(true, v)));
    });
    // Settle the counter (decrement-after-pop keeps count >= present).
    for (;;) {
      const Word k = env.load(q.count, 0, MemOrder::kAcquire);
      if (env.cas(q.count, 0, k, k - 1, MemOrder::kAcqRel)) break;
    }
    env.label(PqPc::kDeleteReturn);
    return {PqDelete::kGot, v};
  }
  // count > 0 but every bucket empty: some insert holds a count but has
  // not published yet — retry.
  return {PqDelete::kRetry, 0};
}

}  // namespace cal::objects::core
