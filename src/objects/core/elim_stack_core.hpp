// The elimination tier of Fig. 2: a striped array of exchangers (the
// elimination array AR / the rendezvous object) and the elimination-stack
// composition that interleaves central-stack attempts with exchanges.
//
// One *attempt* = one iteration of Fig. 2's while(true) (lines 31-37 for
// push, 41-47 for pop). The wrappers own the loop: the real
// EliminationStack retries forever, the simulated one is bounded by the
// explorer's retry budget with truncation.
#pragma once

#include <cstdint>

#include "cal/value.hpp"
#include "objects/core/exchanger_core.hpp"
#include "objects/core/stack_core.hpp"
#include "objects/env.hpp"

namespace cal::objects::core {

/// World event bit signalled when an operation completes by elimination
/// (reachability beacon; no-op under RealEnv).
inline constexpr unsigned kEventElimination = 0;

/// The striped meeting point shared by ElimArray, Rendezvous and the
/// elimination stack: pick a slot (Fig. 2 line 4 — a genuine
/// nondeterministic choice, so the explorer forks on it) and exchange
/// there. `slots`/`slot_names` have `width` entries.
template <class Env>
ExchangeOutcome striped_exchange(Env& env, const ExchangerRefs* slots,
                                 const Symbol* slot_names, std::size_t width,
                                 Symbol method, ThreadId tid, Word v,
                                 unsigned spins) {
  const auto slot = static_cast<std::size_t>(
      env.choose(static_cast<Word>(width)));
  return exchange(env, slots[slot], slot_names[slot], method, tid, v, spins);
}

enum class ElimAttempt : std::uint8_t {
  kDone,            ///< completed through the central stack
  kDoneEliminated,  ///< completed by exchanging through AR
  kRetry,           ///< failed exchange or same-side collision (loop again)
};

struct ElimPopOutcome {
  ElimAttempt kind = ElimAttempt::kRetry;
  Word value = 0;
};

/// One push attempt (Fig. 2 lines 32-36). `accept_any_exchange` drops the
/// d == POP_SENTINAL check of line 35 — the DropsPushMutant of the test
/// suite, kept here as an explicit misconfiguration flag so the mutant
/// shares this body too.
template <class Env>
ElimAttempt elim_push_attempt(Env& env, const StackRefs& s,
                              const ExchangerRefs* slots,
                              const Symbol* slot_names, std::size_t width,
                              Symbol s_name, ThreadId tid, Word v,
                              unsigned spins,
                              bool accept_any_exchange = false) {
  static const Symbol kExchange{"exchange"};
  if (stack_push_attempt(env, s, s_name, tid, v)) {  // lines 32-33
    return ElimAttempt::kDone;
  }
  const ExchangeOutcome r = striped_exchange(env, slots, slot_names, width,
                                             kExchange, tid, v, spins);
  if (r.ok && (accept_any_exchange || r.value == kInfinity)) {  // line 35
    env.event(kEventElimination);
    return ElimAttempt::kDoneEliminated;  // line 36
  }
  return ElimAttempt::kRetry;  // line 31
}

/// One pop attempt (Fig. 2 lines 42-46). An empty central stack is not a
/// pop result here: Fig. 2's pop never reports empty, it goes to the
/// elimination array and loops.
template <class Env>
ElimPopOutcome elim_pop_attempt(Env& env, const StackRefs& s,
                                const ExchangerRefs* slots,
                                const Symbol* slot_names, std::size_t width,
                                Symbol s_name, ThreadId tid,
                                unsigned spins) {
  static const Symbol kExchange{"exchange"};
  const StackPopOutcome p = stack_pop_attempt(env, s, s_name, tid);
  if (p.kind == StackPop::kGot) {  // lines 42-43
    return {ElimAttempt::kDone, p.value};
  }
  const ExchangeOutcome r = striped_exchange(
      env, slots, slot_names, width, kExchange, tid, kInfinity, spins);
  if (r.ok && r.value != kInfinity) {  // line 45
    env.event(kEventElimination);
    return {ElimAttempt::kDoneEliminated, r.value};  // line 46
  }
  return {ElimAttempt::kRetry, 0};  // line 41
}

}  // namespace cal::objects::core
