// The dual synchronous queue (Scherer, Lea & Scott) — the paper's second
// exchanger-style client — as a single Env-parameterized body: an unfair
// dual stack of reservations where the fulfilling CAS completes both
// operations simultaneously (the XCHG analogue) and appends the joint
// CA-element Q.{(put(v) ▷ true), (take() ▷ (true,v))} to 𝒯, and a timed-out
// reservation cancels itself with the exchanger's "pass" idiom.
//
// One *attempt* = one iteration of the transfer loop. The real SyncQueue
// loops until it pairs or cancels; the simulated one is retry-bounded.
#pragma once

#include <cstdint>

#include "cal/ca_trace.hpp"
#include "cal/value.hpp"
#include "objects/env.hpp"

namespace cal::objects::core {

// Reservation layout: [0] mode (0 = DATA/put, 1 = REQUEST/take), [1] data,
// [2] tid, [3] match (partner node or the cancelled sentinel), [4] next.
inline constexpr Word kNodeMode = 0;
inline constexpr Word kNodeData = 1;
inline constexpr Word kNodeTid = 2;
inline constexpr Word kNodeMatch = 3;
inline constexpr Word kNodeNext = 4;
inline constexpr Word kNodeCells = 5;

inline constexpr Word kModeData = 0;
inline constexpr Word kModeRequest = 1;

/// World event bit signalled when a hand-off pairing completes.
inline constexpr unsigned kEventPairing = 1;

struct SyncQueueRefs {
  Word top = kNullRef;
  Word cancelled = kNullRef;  ///< cancellation sentinel node
};

struct SyncQueuePc {
  enum : std::int32_t {
    kStart = 0,
    kCancelCas = 3,
    kUnlinkSelf = 4,
    kFailReturn = 5,
    kWaiterReturn = 6,
    kHelpUnlink = 8,
    kFulfillCas = 9,
    kUnlinkTop = 10,
    kFulfillReturn = 11,
  };
};

enum class SyncTransfer : std::uint8_t {
  kPaired,    ///< handed off; `received` holds the partner's data
  kTimedOut,  ///< cancelled own reservation (the "pass" move)
  kRetry,     ///< lost a race; loop again
};

struct SyncTransferOutcome {
  SyncTransfer kind = SyncTransfer::kRetry;
  Word received = 0;
};

/// One transfer attempt. `mode` is kModeData (put, carrying v) or
/// kModeRequest (take, v ignored).
template <class Env>
SyncTransferOutcome sync_queue_transfer_attempt(Env& env,
                                                const SyncQueueRefs& q,
                                                Symbol name, ThreadId tid,
                                                Word mode, Word v,
                                                unsigned spins) {
  static const Symbol kPut{"put"};
  static const Symbol kTake{"take"};
  auto failure = [&] {
    if (mode == kModeData) {
      return CaElement::singleton(
          name, Operation::make(tid, name, kPut, Value::integer(v),
                                Value::boolean(false)));
    }
    return CaElement::singleton(
        name, Operation::make(tid, name, kTake, Value::unit(),
                              Value::pair(false, 0)));
  };
  auto pair_element = [&](ThreadId putter, Word value, ThreadId taker) {
    return CaElement(
        name, {Operation::make(putter, name, kPut, Value::integer(value),
                               Value::boolean(true)),
               Operation::make(taker, name, kTake, Value::unit(),
                               Value::pair(true, value))});
  };

  // Acquire pairs with the publishing CAS's release on the top node.
  const Word h = env.load(q.top, 0, MemOrder::kAcquire);
  if (h == kNullRef || env.load_frozen(h, kNodeMode) == mode) {
    // Same-mode top (or empty): publish a reservation and wait.
    const Word node = env.alloc(kNodeCells);
    env.store_private(node, kNodeMode, mode);
    env.store_private(node, kNodeData, v);
    env.store_private(node, kNodeTid, static_cast<Word>(tid));
    env.store_private(node, kNodeNext, h);
    // Publishes the private reservation init (release).
    if (!env.cas(q.top, 0, h, node, MemOrder::kAcqRel)) {
      env.free_private(node, kNodeCells);  // never published
      return {SyncTransfer::kRetry, 0};
    }
    env.await(node, kNodeMatch, spins);
    env.label(SyncQueuePc::kCancelCas);
    // Cancel races the fulfiller's match CAS; failure needs acquire to
    // read the partner node the fulfiller installed.
    if (env.cas(node, kNodeMatch, kNullRef, q.cancelled,
                MemOrder::kAcqRel)) {
      // Timed out unpaired — the exchanger's "pass" move. Best-effort
      // unlink if we are still the top; otherwise a helper pops us later.
      const Word next = env.load_frozen(node, kNodeNext);
      env.label(SyncQueuePc::kUnlinkSelf);
      // Best-effort unlink of the cancelled self; result unused.
      env.cas(q.top, 0, node, next, MemOrder::kRelease);
      env.emit(failure);
      env.retire_grace(node, kNodeCells);
      env.label(SyncQueuePc::kFailReturn);
      return {SyncTransfer::kTimedOut, 0};
    }
    // Fulfilled: the fulfiller logged the pairing element.
    const Word partner = env.load_frozen(node, kNodeMatch);
    const Word received = env.load_frozen(partner, kNodeData);
    env.retire_grace(node, kNodeCells);
    env.label(SyncQueuePc::kWaiterReturn);
    return {SyncTransfer::kPaired, received};
  }

  // Complementary top: try to fulfill it.
  const Word hmatch = env.load(h, kNodeMatch, MemOrder::kAcquire);
  if (hmatch != kNullRef) {
    // Already matched or cancelled: help unlink and retry.
    const Word next = env.load_frozen(h, kNodeNext);
    env.label(SyncQueuePc::kHelpUnlink);
    env.cas(q.top, 0, h, next, MemOrder::kRelease);  // helping unlink
    return {SyncTransfer::kRetry, 0};
  }
  const Word node = env.alloc(kNodeCells);
  env.store_private(node, kNodeMode, mode);
  env.store_private(node, kNodeData, v);
  env.store_private(node, kNodeTid, static_cast<Word>(tid));
  env.label(SyncQueuePc::kFulfillCas);
  // The fulfilling CAS publishes our node into the partner's match cell
  // (release) and, on failure, observes the cancel sentinel (acquire).
  if (env.cas(h, kNodeMatch, kNullRef, node, MemOrder::kAcqRel)) {
    // The fulfilling CAS completes both operations simultaneously: the
    // joint CA-element is appended atomically with it.
    const auto partner_tid =
        static_cast<ThreadId>(env.load_frozen(h, kNodeTid));
    const Word partner_data = env.load_frozen(h, kNodeData);
    if (mode == kModeRequest) {
      env.emit([&] { return pair_element(partner_tid, partner_data, tid); });
    } else {
      env.emit([&] { return pair_element(tid, v, partner_tid); });
    }
    env.event(kEventPairing);
    const Word next = env.load_frozen(h, kNodeNext);
    env.label(SyncQueuePc::kUnlinkTop);
    env.cas(q.top, 0, h, next,
            MemOrder::kRelease);  // pop the fulfilled reservation
    const Word received = partner_data;
    env.retire_grace(node, kNodeCells);
    env.label(SyncQueuePc::kFulfillReturn);
    return {SyncTransfer::kPaired, received};
  }
  env.free_private(node, kNodeCells);  // lost the fulfill race
  return {SyncTransfer::kRetry, 0};
}

}  // namespace cal::objects::core
