// The one-shot immediate atomic snapshot (Borowsky–Gafni level descent) as
// a single Env-parameterized body. A CA-object with *unbounded*
// simultaneity blocks: participants terminating at the same level with the
// same set form one block of SnapshotSpec.
//
// The body has no retry loop (the descent always terminates by level 1),
// so one attempt = one complete us(v).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/value.hpp"
#include "objects/env.hpp"

namespace cal::objects::core {

/// levels[q] before q starts its descent.
inline constexpr Word kSnapshotNotStarted = INT64_MAX;

/// Shared cells: two blocks of `participants` cells each. The wrapper's
/// init must set every levels cell to kSnapshotNotStarted.
struct SnapshotRefs {
  Word values = kNullRef;
  Word levels = kNullRef;
};

struct SnapshotPc {
  enum : std::int32_t { kStart = 0, kReturn = 2 };
};

/// update-and-scan for participant `tid` (0..n-1): writes v, descends one
/// level at a time from n, and terminates at the first level L where the
/// number of participants observed at level <= L reaches L. Emits the
/// participant's singleton element fused with the terminating scan's last
/// read (no single CAS closes a whole simultaneity block; the checker's
/// element search regroups the per-thread singletons).
template <class Env>
std::vector<std::int64_t> snapshot_us(Env& env, const SnapshotRefs& r,
                                      Symbol name, std::size_t n,
                                      ThreadId tid, Word v) {
  static const Symbol kUs{"us"};
  // Borowsky–Gafni assumes atomic registers: every store must be
  // globally visible before the next scan can be trusted, so the level
  // descent stays seq_cst (annotated explicitly; a weaker order here is
  // exactly what the TSO exploration mode exists to refute — a buffered
  // level store lets two scans miss each other's descent).
  env.store(r.values, static_cast<Word>(tid), v, MemOrder::kSeqCst);
  for (Word level = static_cast<Word>(n); level >= 1; --level) {
    env.store(r.levels, static_cast<Word>(tid), level, MemOrder::kSeqCst);
    std::vector<std::size_t> seen;
    for (std::size_t q = 0; q < n; ++q) {
      if (env.load(r.levels, static_cast<Word>(q), MemOrder::kSeqCst) <=
          level) {
        seen.push_back(q);
      }
    }
    if (seen.size() >= static_cast<std::size_t>(level)) {
      std::vector<std::int64_t> snapshot;
      snapshot.reserve(seen.size());
      for (std::size_t q : seen) {
        // values[q] is written exactly once, before q's first level store,
        // so it is frozen by the time q shows up in a scan.
        snapshot.push_back(env.load_frozen(r.values, static_cast<Word>(q)));
      }
      std::sort(snapshot.begin(), snapshot.end());
      env.emit([&] {
        return CaElement::singleton(
            name, Operation::make(tid, name, kUs, Value::integer(v),
                                  Value::vec(snapshot)));
      });
      env.label(SnapshotPc::kReturn);
      return snapshot;
    }
  }
  // Unreachable: at level 1 the set always contains at least ourselves.
  return {v};
}

}  // namespace cal::objects::core
