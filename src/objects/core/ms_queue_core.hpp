// The Michael–Scott FIFO queue — the "ordinary object" control of §3 — as
// a single Env-parameterized body. One *attempt* = one iteration of the
// classic retry loop; the wrappers own the loops (unbounded in the real
// MsQueue, retry-bounded with truncation in simulation).
//
// Singleton CA-elements are emitted fused with the linearization points:
// the tail-link CAS for enq, the head-swing CAS for a successful deq, the
// read of head.next for an empty deq.
#pragma once

#include <cstdint>

#include "cal/ca_trace.hpp"
#include "cal/value.hpp"
#include "objects/env.hpp"

namespace cal::objects::core {

// Queue-node layout: [0] data, [1] next.
inline constexpr Word kQNodeData = 0;
inline constexpr Word kQNodeNext = 1;
inline constexpr Word kQNodeCells = 2;

/// Shared cells: the head and tail pointer cells (offset 0 of each block).
/// The dummy node is installed by the wrapper's init.
struct MsQueueRefs {
  Word head = kNullRef;
  Word tail = kNullRef;
};

struct MsQueuePc {
  enum : std::int32_t {
    kStart = 0,
    kEnqReturn = 3,
    kDeqEmptyReturn = 6,
    kDeqReturn = 7,
  };
};

enum class MsQueueDeq : std::uint8_t {
  kGot,    ///< dequeued a value
  kEmpty,  ///< observed an empty queue (logged)
  kRetry,  ///< lost a race / helped swing the tail; loop again
};

struct MsQueueDeqOutcome {
  MsQueueDeq kind = MsQueueDeq::kRetry;
  Word value = 0;
};

/// One enq attempt. The real implementation allocates the node once
/// outside its loop; allocating per attempt (and eagerly freeing on a lost
/// race — the node was never published) is observationally identical and
/// keeps the attempt self-contained.
template <class Env>
bool ms_queue_enq_attempt(Env& env, const MsQueueRefs& q, Symbol name,
                          ThreadId tid, Word v) {
  static const Symbol kEnq{"enq"};
  const Word node = env.alloc(kQNodeCells);
  env.store_private(node, kQNodeData, v);
  // Acquire loads pair with the link CAS's release: a reached node's
  // frozen data/next init is visible. The protects arm the reclamation
  // protocol: the observed tail (and the next link we will CAS) stay
  // protected across every dereference and CAS of this attempt — three
  // protections, within the hazard backend's per-thread slot budget.
  const Word tail = env.protect(q.tail, 0, MemOrder::kAcquire);
  const Word next = env.protect(tail, kQNodeNext, MemOrder::kAcquire);
  if (tail != env.protect(q.tail, 0, MemOrder::kAcquire)) {  // tail moved
    env.free_private(node, kQNodeCells);
    env.release();
    return false;
  }
  if (next != kNullRef) {  // help swing the lagging tail
    // Tail swings republish an already-released node; result unused.
    env.cas(q.tail, 0, tail, next, MemOrder::kRelease);
    env.free_private(node, kQNodeCells);
    env.release();
    return false;
  }
  // The link CAS publishes the private node init (release); on failure
  // the attempt retries through fresh acquire loads.
  if (env.cas(tail, kQNodeNext, kNullRef, node, MemOrder::kAcqRel)) {
    // Linearization point: the link CAS.
    env.emit([&] {
      return CaElement::singleton(
          name, Operation::make(tid, name, kEnq, Value::integer(v),
                                Value::boolean(true)));
    });
    env.cas(q.tail, 0, tail, node, MemOrder::kRelease);  // swing
    env.release();
    env.label(MsQueuePc::kEnqReturn);
    return true;
  }
  env.free_private(node, kQNodeCells);
  env.release();
  return false;
}

/// One deq attempt.
template <class Env>
MsQueueDeqOutcome ms_queue_deq_attempt(Env& env, const MsQueueRefs& q,
                                       Symbol name, ThreadId tid) {
  static const Symbol kDeq{"deq"};
  // Four protections per attempt (head, tail, head->next, and the head
  // recheck) — exactly the hazard backend's per-thread slot budget, so
  // round-robin slot reuse never evicts a live protection.
  const Word head = env.protect(q.head, 0, MemOrder::kAcquire);
  const Word tail = env.protect(q.tail, 0, MemOrder::kAcquire);
  const Word next = env.protect(head, kQNodeNext, MemOrder::kAcquire);
  if (next == kNullRef) {
    // Empty: linearizes at the read of head.next, with which the emit is
    // fused. No head re-check is needed on this path under EBR or hazard
    // pointers: a node's next link is write-once (null → successor) and a
    // node leaves the head position only after its next is set, so
    // observing null proves `head` is still the current head and the
    // queue is empty right now — the protect above pins `head`
    // unreclaimed, so the cell we read really is its next link. Under
    // tagged pointers that argument breaks: a recycled node's next is
    // re-zeroed, so null may be a *new generation's* empty link — and a
    // stripped-value recheck cannot see the difference, because the new
    // generation reuses the same address. The tag-widened validate
    // restores the argument (it compares the raw word, generation tag
    // included); on the other policies it is constant true and the state
    // space is untouched.
    if (!env.validate(q.head, 0)) {
      env.release();
      return {MsQueueDeq::kRetry, 0};
    }
    env.release();
    env.emit([&] {
      return CaElement::singleton(
          name, Operation::make(tid, name, kDeq, Value::unit(),
                                Value::pair(false, 0)));
    });
    env.label(MsQueuePc::kDeqEmptyReturn);
    return {MsQueueDeq::kEmpty, 0};
  }
  if (head != env.protect(q.head, 0, MemOrder::kAcquire)) {  // head moved
    env.release();
    return {MsQueueDeq::kRetry, 0};
  }
  if (head == tail) {  // tail lags behind a non-empty queue: help swing
    env.cas(q.tail, 0, tail, next, MemOrder::kRelease);
    env.release();
    return {MsQueueDeq::kRetry, 0};
  }
  const Word v = env.load_frozen(next, kQNodeData);
  // The head swing transfers node ownership to this thread (acquire on
  // success orders the retire after every prior access to `head`).
  if (env.cas(q.head, 0, head, next, MemOrder::kAcqRel)) {
    env.release();
    env.retire(head, kQNodeCells);
    env.emit([&] {
      return CaElement::singleton(
          name, Operation::make(tid, name, kDeq, Value::unit(),
                                Value::pair(true, v)));
    });
    env.label(MsQueuePc::kDeqReturn);
    return {MsQueueDeq::kGot, v};
  }
  env.release();
  return {MsQueueDeq::kRetry, 0};
}

}  // namespace cal::objects::core
