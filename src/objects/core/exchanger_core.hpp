// The Fig. 1 exchanger, written once over the environment concept Env
// (objects/env.hpp), with the paper's auxiliary assignments (§5.1) at
// exactly the instrumented points:
//
//   line 13  allocate offer n = {tid, v, hole: null}
//   line 15  CAS(g, null, n)                       — INIT
//   line 17  bounded wait for a partner
//   line 18  CAS(n.hole, null, FAIL)               — PASS; 𝒯 += failure
//   line 20  CAS(g, n, null) withdraw; return (false, v)
//   line 22  return (true, n.hole.data)
//   line 25  cur = g; null → 𝒯 += failure; return (false, v)
//   line 29  s = CAS(cur.hole, null, n)            — XCHG; if s the single
//            CAS completes *both* operations and 𝒯 += E.swap(cur.tid,
//            cur.data, tid, v), appended atomically with the CAS
//   line 31  CAS(g, cur, null)                     — CLEAN (helping)
//   line 33  s → return (true, cur.data); else 𝒯 += failure, (false, v)
//
// The withdraw CAS at line 20 (present in the real implementation's
// cleanup path) is part of the single body now, so the model checker
// explores it too; it is the CLEAN action applied to the thread's own
// passed offer.
#pragma once

#include <cstdint>

#include "cal/ca_trace.hpp"
#include "cal/value.hpp"
#include "objects/env.hpp"

namespace cal::objects::core {

// Offer layout: [0] tid (the auxiliary field of §5.1), [1] data, [2] hole.
inline constexpr Word kOfferTid = 0;
inline constexpr Word kOfferData = 1;
inline constexpr Word kOfferHole = 2;
inline constexpr Word kOfferCells = 3;

/// Shared cells of one exchanger: the global offer slot g and the address
/// of the FAIL sentinel offer. RealEnv points these at member storage;
/// SimEnv allocates them from the world's global region.
struct ExchangerRefs {
  Word g = kNullRef;
  Word fail = kNullRef;
};

/// Control points stable at scheduler step boundaries (the labels name the
/// action *about to* execute, as in the hand-written machine they replace).
/// The proof-outline auditor (sched/rg.hpp) keys Fig. 1's assertions on
/// them.
struct ExchangerPc {
  enum : std::int32_t {
    kStart = 0,
    kPassCas = 2,
    kWithdrawCas = 3,
    kSuccessReturnA = 4,
    kReadG = 5,
    kXchgCas = 6,
    kCleanCas = 7,
    kSuccessReturnB = 8,
    kFailReturnA = 9,
    kFailReturnB = 10,
  };
};

/// Proof-outline register allocation.
struct ExchangerReg {
  enum : std::size_t { kN = 0, kV = 1, kCur = 2, kS = 3 };
};

struct ExchangeOutcome {
  bool ok = false;
  Word value = 0;
};

/// One complete exchange (the Fig. 1 body has no retry loop: every path
/// returns). `method` parameterizes the logged operation name so the same
/// body serves `exchange` and `rendezvous`.
template <class Env>
ExchangeOutcome exchange(Env& env, const ExchangerRefs& x, Symbol name,
                         Symbol method, ThreadId tid, Word v,
                         unsigned spins) {
  auto failure = [&] {
    return CaElement::singleton(
        name, Operation::make(tid, name, method, Value::integer(v),
                              Value::pair(false, v)));
  };

  const Word n = env.alloc(kOfferCells);  // line 13
  env.store_private(n, kOfferTid, static_cast<Word>(tid));
  env.store_private(n, kOfferData, v);
  env.note(ExchangerReg::kN, n);
  env.note(ExchangerReg::kV, v);

  // INIT publishes the privately initialized offer; acq_rel gives the
  // release edge the partner's acquire load of g pairs with.
  if (env.cas(x.g, 0, kNullRef, n, MemOrder::kAcqRel)) {  // line 15: INIT
    env.await(n, kOfferHole, spins);   // line 17
    env.label(ExchangerPc::kPassCas);
    // PASS failure means a partner installed its offer into our hole; the
    // acquire failure order makes that offer's frozen fields visible.
    if (env.cas(n, kOfferHole, kNullRef, x.fail,
                MemOrder::kAcqRel)) {  // line 18: PASS
      env.emit(failure);  // 𝒯 += the failed operation, fused with PASS
      env.label(ExchangerPc::kWithdrawCas);
      // Withdraw only unlinks the dead offer; nothing is read through g
      // afterwards and the result is unused — release suffices.
      env.cas(x.g, 0, n, kNullRef,
              MemOrder::kRelease);  // line 20: withdraw the dead offer
      env.retire_grace(n, kOfferCells);
      env.label(ExchangerPc::kFailReturnA);
      return {false, v};
    }
    // A partner installed its offer into our hole (and logged the swap).
    const Word partner = env.load_frozen(n, kOfferHole);
    const Word got = env.load_frozen(partner, kOfferData);  // line 22
    env.retire_grace(n, kOfferCells);
    env.label(ExchangerPc::kSuccessReturnA);
    return {true, got};
  }

  env.label(ExchangerPc::kReadG);
  // Acquire pairs with INIT's release: cur's frozen fields are visible.
  const Word cur = env.load(x.g, 0, MemOrder::kAcquire);  // line 25
  env.note(ExchangerReg::kCur, cur);
  if (cur == kNullRef) {
    env.free_private(n, kOfferCells);  // never published
    env.emit(failure);
    env.label(ExchangerPc::kFailReturnB);
    return {false, v};
  }
  env.label(ExchangerPc::kXchgCas);
  // XCHG publishes our offer into the partner's hole (release) and, on
  // failure, observes the FAIL sentinel the partner PASSed (acquire).
  const bool s = env.cas(cur, kOfferHole, kNullRef, n,
                         MemOrder::kAcqRel);  // line 29: XCHG
  env.note(ExchangerReg::kS, s ? 1 : 0);
  if (s) {
    // The auxiliary assignment of §5.1: one CAS seems to complete both
    // operations; the swap element is appended atomically with it.
    env.emit([&] {
      return CaElement::swap(
          name, method,
          static_cast<ThreadId>(env.load_frozen(cur, kOfferTid)),
          env.load_frozen(cur, kOfferData), tid, v);
    });
  }
  env.label(ExchangerPc::kCleanCas);
  // CLEAN unlinks a consumed offer (helping); result unused, nothing read
  // through g afterwards — release suffices.
  env.cas(x.g, 0, cur, kNullRef, MemOrder::kRelease);  // line 31: CLEAN
  if (s) {
    const Word got = env.load_frozen(cur, kOfferData);  // line 33
    env.retire_grace(n, kOfferCells);
    env.label(ExchangerPc::kSuccessReturnB);
    return {true, got};
  }
  env.free_private(n, kOfferCells);  // never published
  env.emit(failure);
  env.label(ExchangerPc::kFailReturnB);
  return {false, v};
}

}  // namespace cal::objects::core
