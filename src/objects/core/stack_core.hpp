// The central Treiber stack of Fig. 2 (class Stack), one attempt per call:
// a single CAS try for push and a three-way outcome for pop (value / empty
// / lost the CAS), logging singleton CA-elements at the linearization
// points. Wrappers build the retry policies on top: CentralStack exposes
// the raw attempts, TreiberStack loops them, and the elimination stack
// (elim_stack_core.hpp) interleaves them with exchanger attempts.
#pragma once

#include <cstdint>

#include "cal/ca_trace.hpp"
#include "cal/value.hpp"
#include "objects/env.hpp"

namespace cal::objects::core {

// Cell layout: [0] data, [1] next.
inline constexpr Word kCellData = 0;
inline constexpr Word kCellNext = 1;
inline constexpr Word kCellCells = 2;

struct StackRefs {
  Word top = kNullRef;
};

enum class StackPop : std::uint8_t {
  kGot,    ///< popped a value
  kEmpty,  ///< observed top = null (logged as a failed pop)
  kLost,   ///< lost the pop CAS under contention (logged as a failed pop)
};

struct StackPopOutcome {
  StackPop kind = StackPop::kEmpty;
  Word value = 0;
};

/// One push attempt (Fig. 2 lines 11-13). Logs push ▷ ok either way; the
/// elimination view erases the failures.
template <class Env>
bool stack_push_attempt(Env& env, const StackRefs& s, Symbol name,
                        ThreadId tid, Word v) {
  static const Symbol kPush{"push"};
  // Acquire pairs with the push CAS's release on the observed top. The
  // protect arms the reclamation protocol on the observed head: push never
  // dereferences h, but the tagged backend's widened CAS below needs the
  // raw word this load saw.
  const Word h = env.protect(s.top, 0, MemOrder::kAcquire);  // line 11
  const Word n = env.alloc(kCellCells);  // line 12
  env.store_private(n, kCellData, v);
  env.store_private(n, kCellNext, h);
  // The push CAS publishes the private node init (release).
  const bool ok = env.cas(s.top, 0, h, n, MemOrder::kAcqRel);  // line 13
  if (!ok) env.free_private(n, kCellCells);
  env.release();
  env.emit([&] {
    return CaElement::singleton(
        name, Operation::make(tid, name, kPush, Value::integer(v),
                              Value::boolean(ok)));
  });
  return ok;
}

/// One pop attempt (Fig. 2 lines 16-23). The next link of a published cell
/// is immutable, so reading it is not an interference point.
template <class Env>
StackPopOutcome stack_pop_attempt(Env& env, const StackRefs& s, Symbol name,
                                  ThreadId tid) {
  static const Symbol kPop{"pop"};
  auto failed = [&] {
    return CaElement::singleton(
        name, Operation::make(tid, name, kPop, Value::unit(),
                              Value::pair(false, 0)));
  };
  // The protect covers every dereference of h below (the frozen next and
  // data reads): under hazard pointers h cannot be freed, under tagged
  // pointers the pop CAS widens to the generation tag this load saw.
  const Word h = env.protect(s.top, 0, MemOrder::kAcquire);  // line 16
  if (h == kNullRef) {                // line 17: EMPTY
    env.release();
    env.emit(failed);
    return {StackPop::kEmpty, 0};
  }
  const Word next = env.load_frozen(h, kCellNext);  // line 19
  // The pop CAS transfers cell ownership (acquire orders the retire
  // after every prior access; release keeps the unlink published).
  if (env.cas(s.top, 0, h, next, MemOrder::kAcqRel)) {
    const Word v = env.load_frozen(h, kCellData);  // line 21
    env.release();
    env.retire(h, kCellCells);
    env.emit([&] {
      return CaElement::singleton(
          name, Operation::make(tid, name, kPop, Value::unit(),
                                Value::pair(true, v)));
    });
    return {StackPop::kGot, v};
  }
  env.release();
  env.emit(failed);  // line 23
  return {StackPop::kLost, 0};
}

}  // namespace cal::objects::core
