#include "objects/elimination_stack.hpp"

#include <cassert>

namespace cal::objects {

namespace {
const Symbol& push_sym() {
  static const Symbol s{"push"};
  return s;
}
const Symbol& pop_sym() {
  static const Symbol s{"pop"};
  return s;
}
}  // namespace

EliminationStack::EliminationStack(Reclaimer& rec, Symbol name,
                                   std::size_t width, TraceLog* trace,
                                   runtime::Recorder* recorder,
                                   unsigned exchange_spins)
    : rec_(&rec),
      name_(name),
      trace_(trace),
      stack_(rec, Symbol(name.str() + ".S"), trace),
      array_(rec, Symbol(name.str() + ".AR"), width, trace),
      recorder_(recorder),
      exchange_spins_(exchange_spins) {}

EliminationStack::EliminationStack(EpochDomain& ebr, Symbol name,
                                   std::size_t width, TraceLog* trace,
                                   runtime::Recorder* recorder,
                                   unsigned exchange_spins)
    : own_(std::make_unique<runtime::EbrReclaimer>(ebr)),
      rec_(own_.get()),
      name_(name),
      trace_(trace),
      stack_(*rec_, Symbol(name.str() + ".S"), trace),
      array_(*rec_, Symbol(name.str() + ".AR"), width, trace),
      recorder_(recorder),
      exchange_spins_(exchange_spins) {}

bool EliminationStack::push(ThreadId tid, std::int64_t v) {
  assert(v != kPopSentinel && "the sentinel value cannot be pushed");
  if (recorder_ != nullptr) {
    recorder_->invoke(tid, name_, push_sym(), Value::integer(v));
  }
  RealEnv env(rec_, tid, trace_);
  for (;;) {  // line 31
    Reclaimer::Guard guard(*rec_, tid);
    const core::ElimAttempt a = core::elim_push_attempt(
        env, stack_.refs(), array_.slot_refs(), array_.slot_names(),
        array_.width(), stack_.name(), tid, v, exchange_spins_);
    if (a == core::ElimAttempt::kDone) break;  // lines 32-33
    if (a == core::ElimAttempt::kDoneEliminated) {  // lines 35-36
      eliminations_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    // Failed exchange or push/push collision: retry (line 31).
  }
  if (recorder_ != nullptr) {
    recorder_->respond(tid, name_, push_sym(), Value::boolean(true));
  }
  return true;
}

PopResult EliminationStack::pop(ThreadId tid) {
  if (recorder_ != nullptr) {
    recorder_->invoke(tid, name_, pop_sym());
  }
  RealEnv env(rec_, tid, trace_);
  PopResult result;
  for (;;) {  // line 41
    Reclaimer::Guard guard(*rec_, tid);
    const core::ElimPopOutcome r = core::elim_pop_attempt(
        env, stack_.refs(), array_.slot_refs(), array_.slot_names(),
        array_.width(), stack_.name(), tid, exchange_spins_);
    if (r.kind == core::ElimAttempt::kDone) {  // lines 42-43
      result = {true, r.value};
      break;
    }
    if (r.kind == core::ElimAttempt::kDoneEliminated) {  // lines 45-46
      eliminations_.fetch_add(1, std::memory_order_relaxed);
      result = {true, r.value};
      break;
    }
    // Failed exchange or pop/pop collision: retry (line 41).
  }
  if (recorder_ != nullptr) {
    recorder_->respond(tid, name_, pop_sym(),
                       Value::pair(true, result.value));
  }
  return result;
}

}  // namespace cal::objects
