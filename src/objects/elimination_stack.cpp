#include "objects/elimination_stack.hpp"

#include <cassert>

namespace cal::objects {

namespace {
const Symbol& push_sym() {
  static const Symbol s{"push"};
  return s;
}
const Symbol& pop_sym() {
  static const Symbol s{"pop"};
  return s;
}
}  // namespace

EliminationStack::EliminationStack(EpochDomain& ebr, Symbol name,
                                   std::size_t width, TraceLog* trace,
                                   runtime::Recorder* recorder,
                                   unsigned exchange_spins)
    : name_(name),
      stack_(ebr, Symbol(name.str() + ".S"), trace),
      array_(ebr, Symbol(name.str() + ".AR"), width, trace),
      recorder_(recorder),
      exchange_spins_(exchange_spins) {}

bool EliminationStack::push(ThreadId tid, std::int64_t v) {
  assert(v != kPopSentinel && "the sentinel value cannot be pushed");
  if (recorder_ != nullptr) {
    recorder_->invoke(tid, name_, push_sym(), Value::integer(v));
  }
  for (;;) {                                       // line 31
    if (stack_.push(tid, v)) break;                // lines 32-33
    ExchangeResult r = array_.exchange(tid, v, exchange_spins_);  // line 34
    if (r.ok && r.value == kPopSentinel) {         // line 35
      eliminations_.fetch_add(1, std::memory_order_relaxed);
      break;                                       // line 36
    }
    // Failed exchange or push/push collision: retry (line 31).
  }
  if (recorder_ != nullptr) {
    recorder_->respond(tid, name_, push_sym(), Value::boolean(true));
  }
  return true;
}

PopResult EliminationStack::pop(ThreadId tid) {
  if (recorder_ != nullptr) {
    recorder_->invoke(tid, name_, pop_sym());
  }
  PopResult result;
  for (;;) {                                       // line 41
    result = stack_.pop(tid);                      // line 42
    if (result.ok) break;                          // line 43
    ExchangeResult r =
        array_.exchange(tid, kPopSentinel, exchange_spins_);  // line 44
    if (r.ok && r.value != kPopSentinel) {         // line 45
      eliminations_.fetch_add(1, std::memory_order_relaxed);
      result = {true, r.value};                    // line 46
      break;
    }
    // Failed exchange or pop/pop collision: retry (line 41).
  }
  if (recorder_ != nullptr) {
    recorder_->respond(tid, name_, pop_sym(),
                       Value::pair(true, result.value));
  }
  return result;
}

}  // namespace cal::objects
