// Synchronous (hand-off) queue — the paper's second exchanger-style client
// (§2, citing Scherer, Lea & Scott). Implemented as an unfair dual stack of
// reservations, the classic nonblocking synchronous-queue construction:
//
//   * If the top of the stack is empty or holds same-mode reservations, the
//     caller pushes its own reservation (DATA for put, REQUEST for take)
//     and spins for a partner; on timeout it cancels the reservation by
//     CAS'ing its own match field to the cancelled sentinel — the exact
//     "pass" idiom of the exchanger (Fig. 1 line 18).
//   * If the top reservation is complementary, the caller *fulfills* it by
//     CAS'ing the reservation's match field from null to its own node; that
//     single CAS completes both operations simultaneously, and — like the
//     exchanger's XCHG action — appends the joint CA-element
//     Q.{(t, put(v) ▷ true), (t', take() ▷ (true,v))} to 𝒯.
//
// The transfer attempt lives in objects/core/sync_queue_core.hpp, shared
// with the model checker; this class owns the top cell, the cancelled
// sentinel, the retry loop and the epoch pinning.
//
// This is a CA-object: put/take pairs must overlap, and no useful
// sequential specification exists (same Fig. 3 argument as the exchanger).
// Its CA-spec is cal::SyncQueueSpec; the equivalent dual-data-structure
// interval spec is cal::SyncQueueIntervalSpec.
#pragma once

#include <atomic>
#include <cstdint>

#include "cal/ca_trace.hpp"
#include "cal/symbol.hpp"
#include "objects/core/sync_queue_core.hpp"
#include "objects/real_env.hpp"
#include "objects/treiber_stack.hpp"  // PopResult
#include "runtime/reclaim/ebr.hpp"
#include "runtime/reclaim/ebr_reclaimer.hpp"
#include "runtime/trace_log.hpp"

namespace cal::objects {

class SyncQueue {
 public:
  /// The dual-stack body has no protect protocol (it retires with
  /// retire_grace), so this wrapper stays EBR-only: the domain is adapted
  /// through an EbrReclaimer member.
  SyncQueue(EpochDomain& ebr, Symbol name, TraceLog* trace = nullptr)
      : rec_(ebr), name_(name), trace_(trace) {
    refs_.top = RealEnv::ref(&top_storage_);
    refs_.cancelled = RealEnv::ref(cancelled_cells_);
  }
  ~SyncQueue();

  SyncQueue(const SyncQueue&) = delete;
  SyncQueue& operator=(const SyncQueue&) = delete;

  /// Offers `v`; true iff a take() accepted it within the spin budget.
  bool put(ThreadId tid, std::int64_t v, unsigned spins = 256);

  /// Requests a value; (true, v) iff paired with a put(v) within budget.
  PopResult take(ThreadId tid, unsigned spins = 256);

  [[nodiscard]] Symbol name() const noexcept { return name_; }

 private:
  /// Common engine for put/take: loops transfer attempts until the
  /// reservation pairs or cancels.
  bool transfer(ThreadId tid, Word mode, std::int64_t v, unsigned spins,
                std::int64_t& received);

  runtime::EbrReclaimer rec_;
  Symbol name_;
  TraceLog* trace_;
  std::atomic<Word> top_storage_{0};
  std::atomic<Word> cancelled_cells_[core::kNodeCells] = {};  ///< sentinel
  core::SyncQueueRefs refs_;
};

}  // namespace cal::objects
