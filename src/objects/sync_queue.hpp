// Synchronous (hand-off) queue — the paper's second exchanger-style client
// (§2, citing Scherer, Lea & Scott). Implemented as an unfair dual stack of
// reservations, the classic nonblocking synchronous-queue construction:
//
//   * If the top of the stack is empty or holds same-mode reservations, the
//     caller pushes its own reservation (DATA for put, REQUEST for take)
//     and spins for a partner; on timeout it cancels the reservation by
//     CAS'ing its own match field to the cancelled sentinel — the exact
//     "pass" idiom of the exchanger (Fig. 1 line 18).
//   * If the top reservation is complementary, the caller *fulfills* it by
//     CAS'ing the reservation's match field from null to its own node; that
//     single CAS completes both operations simultaneously, and — like the
//     exchanger's XCHG action — appends the joint CA-element
//     Q.{(t, put(v) ▷ true), (t', take() ▷ (true,v))} to 𝒯.
//
// This is a CA-object: put/take pairs must overlap, and no useful
// sequential specification exists (same Fig. 3 argument as the exchanger).
// Its CA-spec is cal::SyncQueueSpec; the equivalent dual-data-structure
// interval spec is cal::SyncQueueIntervalSpec.
#pragma once

#include <atomic>
#include <cstdint>

#include "cal/ca_trace.hpp"
#include "cal/symbol.hpp"
#include "objects/treiber_stack.hpp"  // PopResult
#include "runtime/ebr.hpp"
#include "runtime/trace_log.hpp"

namespace cal::objects {

class SyncQueue {
 public:
  SyncQueue(EpochDomain& ebr, Symbol name, TraceLog* trace = nullptr)
      : ebr_(ebr), name_(name), trace_(trace) {}
  ~SyncQueue();

  SyncQueue(const SyncQueue&) = delete;
  SyncQueue& operator=(const SyncQueue&) = delete;

  /// Offers `v`; true iff a take() accepted it within the spin budget.
  bool put(ThreadId tid, std::int64_t v, unsigned spins = 256);

  /// Requests a value; (true, v) iff paired with a put(v) within budget.
  PopResult take(ThreadId tid, unsigned spins = 256);

  [[nodiscard]] Symbol name() const noexcept { return name_; }

 private:
  enum class Mode : std::uint8_t { kData, kRequest };

  struct Node {
    Mode mode;
    std::int64_t data;
    ThreadId tid;
    std::atomic<Node*> match{nullptr};  ///< partner node, or cancelled_
    Node* next = nullptr;

    Node(Mode m, std::int64_t d, ThreadId t) : mode(m), data(d), tid(t) {}
  };

  /// Common engine for put/take.
  bool transfer(ThreadId tid, Mode mode, std::int64_t v, unsigned spins,
                std::int64_t& received);

  void log_pair(ThreadId putter, std::int64_t v, ThreadId taker);
  void log_failure(ThreadId tid, Mode mode, std::int64_t v);

  EpochDomain& ebr_;
  Symbol name_;
  TraceLog* trace_;
  std::atomic<Node*> top_{nullptr};
  Node cancelled_{Mode::kData, 0, 0};  ///< cancellation sentinel
};

}  // namespace cal::objects
