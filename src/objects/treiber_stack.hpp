// The central lock-free stack S of the elimination stack (Fig. 2, class
// Stack), plus the classic retrying Treiber stack used as the
// no-elimination baseline in the benchmarks.
//
// CentralStack is *single-attempt*: push/pop perform one CAS on `top` and
// report failure under contention (push ▷ false, pop ▷ (false,0)) — that
// failure is what sends elimination-stack threads to the elimination array.
// pop also returns (false,0) on empty (Fig. 2 line 18), which is why the
// elimination stack's pop loops instead of reporting empty.
//
// The attempt bodies live in objects/core/stack_core.hpp, shared with the
// model checker; this class owns the top cell, the operation bracketing,
// and the TraceLog routing. Cells are retired through the pluggable
// Reclaimer (runtime/reclaim/): under the default EBR backend they are not
// reused until safe, which also rules out the top-pointer ABA; the hazard
// and tagged backends defend the annotated protect/CAS protocol instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "cal/ca_trace.hpp"
#include "cal/symbol.hpp"
#include "objects/core/stack_core.hpp"
#include "objects/real_env.hpp"
#include "runtime/reclaim/ebr.hpp"
#include "runtime/reclaim/ebr_reclaimer.hpp"
#include "runtime/trace_log.hpp"

namespace cal::objects {

using runtime::EpochDomain;
using runtime::ThreadId;
using runtime::TraceLog;

struct PopResult {
  bool ok = false;
  std::int64_t value = 0;

  friend bool operator==(const PopResult&, const PopResult&) = default;
};

class CentralStack {
 public:
  /// Primary constructor: any reclamation backend. The reclaimer must
  /// outlive the stack (the destructor walks and frees through it).
  CentralStack(Reclaimer& rec, Symbol name, TraceLog* trace = nullptr)
      : rec_(&rec), name_(name), trace_(trace) {
    refs_.top = RealEnv::ref(&top_storage_);
  }
  /// Convenience constructor: the historical EBR-domain signature, wrapped
  /// in an owned EbrReclaimer adapter.
  CentralStack(EpochDomain& ebr, Symbol name, TraceLog* trace = nullptr)
      : own_(std::make_unique<runtime::EbrReclaimer>(ebr)),
        rec_(own_.get()),
        name_(name),
        trace_(trace) {
    refs_.top = RealEnv::ref(&top_storage_);
  }
  ~CentralStack();

  CentralStack(const CentralStack&) = delete;
  CentralStack& operator=(const CentralStack&) = delete;

  /// One CAS attempt; false = lost the race (no effect).
  bool push(ThreadId tid, std::int64_t v);
  /// One CAS attempt; (false,0) = empty or lost the race (no effect).
  PopResult pop(ThreadId tid);

  /// True iff the stack is empty at this instant (test/diagnostic helper).
  [[nodiscard]] bool empty() const noexcept {
    // Strip: under the tagged backend a null top still carries its tag.
    return rec_->strip(top_storage_.load(std::memory_order_acquire)) ==
           kNullRef;
  }

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  /// The shared top cell, for compositions that run the core directly
  /// (the elimination stack).
  [[nodiscard]] const core::StackRefs& refs() const noexcept { return refs_; }

 private:
  std::unique_ptr<runtime::EbrReclaimer> own_;  // convenience-ctor adapter
  Reclaimer* rec_;
  Symbol name_;
  TraceLog* trace_;
  std::atomic<Word> top_storage_{0};
  core::StackRefs refs_;
};

/// The no-elimination baseline: retries the single-attempt CAS until it
/// wins. push always succeeds; pop returns (false,0) only when empty.
class TreiberStack {
 public:
  TreiberStack(Reclaimer& rec, Symbol name, TraceLog* trace = nullptr)
      : inner_(rec, name, trace) {}
  TreiberStack(EpochDomain& ebr, Symbol name, TraceLog* trace = nullptr)
      : inner_(ebr, name, trace) {}

  void push(ThreadId tid, std::int64_t v) {
    while (!inner_.push(tid, v)) {
      std::this_thread::yield();
    }
  }

  /// Retries on contention; (false,0) means observed empty.
  PopResult pop(ThreadId tid) {
    for (;;) {
      if (inner_.empty()) return {false, 0};
      PopResult r = inner_.pop(tid);
      if (r.ok) return r;
      std::this_thread::yield();
    }
  }

  [[nodiscard]] bool empty() const noexcept { return inner_.empty(); }

 private:
  CentralStack inner_;
};

}  // namespace cal::objects
