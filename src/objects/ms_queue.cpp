#include "objects/ms_queue.hpp"

namespace cal::objects {

MsQueue::MsQueue(EpochDomain& ebr, Symbol name, TraceLog* trace)
    : ebr_(ebr), name_(name), trace_(trace) {
  refs_.head = RealEnv::ref(&head_storage_);
  refs_.tail = RealEnv::ref(&tail_storage_);
  const Word dummy = reinterpret_cast<Word>(
      new std::atomic<Word>[core::kQNodeCells]());
  head_storage_.store(dummy, std::memory_order_relaxed);
  tail_storage_.store(dummy, std::memory_order_relaxed);
}

MsQueue::~MsQueue() {
  Word n = head_storage_.load(std::memory_order_acquire);
  while (n != kNullRef) {
    const Word next =
        RealEnv::cell(n, core::kQNodeNext)->load(std::memory_order_acquire);
    delete[] RealEnv::cell(n, 0);
    n = next;
  }
}

void MsQueue::enq(ThreadId tid, std::int64_t v) {
  EpochDomain::Guard guard(ebr_, tid);
  RealEnv env(&ebr_, tid, trace_);
  while (!core::ms_queue_enq_attempt(env, refs_, name_, tid, v)) {
  }
}

PopResult MsQueue::deq(ThreadId tid) {
  EpochDomain::Guard guard(ebr_, tid);
  RealEnv env(&ebr_, tid, trace_);
  for (;;) {
    const core::MsQueueDeqOutcome r =
        core::ms_queue_deq_attempt(env, refs_, name_, tid);
    if (r.kind == core::MsQueueDeq::kGot) return {true, r.value};
    if (r.kind == core::MsQueueDeq::kEmpty) return {false, 0};
  }
}

}  // namespace cal::objects
