#include "objects/ms_queue.hpp"

namespace cal::objects {

MsQueue::MsQueue(EpochDomain& ebr, Symbol name, TraceLog* trace)
    : ebr_(ebr), name_(name), trace_(trace) {
  auto* dummy = new Node(0);
  head_.store(dummy, std::memory_order_relaxed);
  tail_.store(dummy, std::memory_order_relaxed);
}

MsQueue::~MsQueue() {
  Node* n = head_.load(std::memory_order_acquire);
  while (n != nullptr) {
    Node* next = n->next.load(std::memory_order_acquire);
    delete n;
    n = next;
  }
}

void MsQueue::log(ThreadId tid, Symbol method, Value arg, Value ret) {
  if (trace_ == nullptr) return;
  trace_->append(CaElement::singleton(
      name_, Operation::make(tid, name_, method, std::move(arg),
                             std::move(ret))));
}

void MsQueue::enq(ThreadId tid, std::int64_t v) {
  static const Symbol kEnq{"enq"};
  EpochDomain::Guard guard(ebr_, tid);
  auto* node = new Node(v);
  for (;;) {
    Node* tail = tail_.load(std::memory_order_acquire);
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail != tail_.load(std::memory_order_acquire)) continue;
    if (next == nullptr) {
      Node* expected = nullptr;
      if (tail->next.compare_exchange_weak(expected, node,
                                           std::memory_order_acq_rel)) {
        // Linearization point: the link CAS.
        tail_.compare_exchange_strong(tail, node, std::memory_order_acq_rel);
        log(tid, kEnq, Value::integer(v), Value::boolean(true));
        return;
      }
    } else {
      // Help swing the lagging tail.
      tail_.compare_exchange_strong(tail, next, std::memory_order_acq_rel);
    }
  }
}

PopResult MsQueue::deq(ThreadId tid) {
  static const Symbol kDeq{"deq"};
  EpochDomain::Guard guard(ebr_, tid);
  for (;;) {
    Node* head = head_.load(std::memory_order_acquire);
    Node* tail = tail_.load(std::memory_order_acquire);
    Node* next = head->next.load(std::memory_order_acquire);
    if (head != head_.load(std::memory_order_acquire)) continue;
    if (next == nullptr) {
      // Empty: linearizes at the read of head->next.
      log(tid, kDeq, Value::unit(), Value::pair(false, 0));
      return {false, 0};
    }
    if (head == tail) {
      tail_.compare_exchange_strong(tail, next, std::memory_order_acq_rel);
      continue;
    }
    const std::int64_t v = next->data;
    if (head_.compare_exchange_weak(head, next, std::memory_order_acq_rel)) {
      ebr_.retire(tid, head);
      log(tid, kDeq, Value::unit(), Value::pair(true, v));
      return {true, v};
    }
  }
}

}  // namespace cal::objects
