#include "objects/ms_queue.hpp"

namespace cal::objects {

MsQueue::MsQueue(Reclaimer& rec, Symbol name, TraceLog* trace)
    : rec_(&rec), name_(name), trace_(trace) {
  init();
}

MsQueue::MsQueue(EpochDomain& ebr, Symbol name, TraceLog* trace)
    : own_(std::make_unique<runtime::EbrReclaimer>(ebr)),
      rec_(own_.get()),
      name_(name),
      trace_(trace) {
  init();
}

void MsQueue::init() {
  refs_.head = RealEnv::ref(&head_storage_);
  refs_.tail = RealEnv::ref(&tail_storage_);
  // The dummy goes through the reclaimer: deq eventually retires it when
  // the head swings past, so it must come from the same allocator as every
  // other node (type-stable free lists under the tagged backend).
  const Word dummy = rec_->alloc(0, core::kQNodeCells);
  head_storage_.store(dummy, std::memory_order_relaxed);
  tail_storage_.store(dummy, std::memory_order_relaxed);
}

MsQueue::~MsQueue() {
  // Strip every link: the tagged backend keeps generation tags on the
  // head and next cells. Free through the reclaimer (tid 0: destruction
  // is single-threaded).
  Word n = rec_->strip(head_storage_.load(std::memory_order_acquire));
  while (n != kNullRef) {
    const Word next = rec_->strip(
        RealEnv::cell(n, core::kQNodeNext)->load(std::memory_order_acquire));
    rec_->dealloc(0, n, core::kQNodeCells);
    n = next;
  }
}

void MsQueue::enq(ThreadId tid, std::int64_t v) {
  Reclaimer::Guard guard(*rec_, tid);
  RealEnv env(rec_, tid, trace_);
  while (!core::ms_queue_enq_attempt(env, refs_, name_, tid, v)) {
  }
}

PopResult MsQueue::deq(ThreadId tid) {
  Reclaimer::Guard guard(*rec_, tid);
  RealEnv env(rec_, tid, trace_);
  for (;;) {
    const core::MsQueueDeqOutcome r =
        core::ms_queue_deq_attempt(env, refs_, name_, tid);
    if (r.kind == core::MsQueueDeq::kGot) return {true, r.value};
    if (r.kind == core::MsQueueDeq::kEmpty) return {false, 0};
  }
}

}  // namespace cal::objects
