// The elimination array AR (Fig. 2, top-left): an array of K exchangers
// that "essentially acts as an exchanger object, but is implemented as an
// array of exchangers to reduce contention".
//
// exchange() runs core::striped_exchange — pick a slot through env.choose
// (a per-thread xorshift under RealEnv, an explorer fork point under
// SimEnv) and delegate to the shared exchanger core. The array exposes the
// same CA-specification as a single exchanger; its view function
// F_AR(E[i].S) ≜ (AR.S) (built by cal::make_f_ar) renames the subobjects'
// trace elements so clients — the elimination stack — never see the slots.
// Subobjects are named "<AR>.E[<i>]" to match cal::elim_slot_name.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cal/specs/elim_views.hpp"
#include "cal/symbol.hpp"
#include "objects/core/elim_stack_core.hpp"
#include "objects/exchanger.hpp"

namespace cal::objects {

class ElimArray {
 public:
  /// Primary constructor: any reclamation backend (must outlive the
  /// array; shared with every slot exchanger).
  ElimArray(Reclaimer& rec, Symbol name, std::size_t width,
            TraceLog* trace = nullptr);
  /// Convenience constructor: the historical EBR-domain signature.
  ElimArray(EpochDomain& ebr, Symbol name, std::size_t width,
            TraceLog* trace = nullptr);

  ElimArray(const ElimArray&) = delete;
  ElimArray& operator=(const ElimArray&) = delete;

  /// exchange on a random slot (Fig. 2 lines 3-6).
  ExchangeResult exchange(ThreadId tid, std::int64_t v, unsigned spins = 256);

  [[nodiscard]] std::size_t width() const noexcept { return slots_.size(); }
  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] Exchanger& slot(std::size_t i) { return *slots_[i]; }

  /// The slots' shared cells and trace names, for compositions that run
  /// the core directly (the elimination stack).
  [[nodiscard]] const core::ExchangerRefs* slot_refs() const noexcept {
    return slot_refs_.data();
  }
  [[nodiscard]] const Symbol* slot_names() const noexcept {
    return slot_names_.data();
  }

 private:
  void build(std::size_t width);

  std::unique_ptr<runtime::EbrReclaimer> own_;  // convenience-ctor adapter
  Reclaimer* rec_;
  Symbol name_;
  TraceLog* trace_;
  std::vector<std::unique_ptr<Exchanger>> slots_;
  std::vector<core::ExchangerRefs> slot_refs_;
  std::vector<Symbol> slot_names_;
};

}  // namespace cal::objects
