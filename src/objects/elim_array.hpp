// The elimination array AR (Fig. 2, top-left): an array of K exchangers
// that "essentially acts as an exchanger object, but is implemented as an
// array of exchangers to reduce contention".
//
// exchange() picks a uniformly random slot and delegates to it. The array
// exposes the same CA-specification as a single exchanger; its view function
// F_AR(E[i].S) ≜ (AR.S) (built by cal::make_f_ar) renames the subobjects'
// trace elements so clients — the elimination stack — never see the slots.
// Subobjects are named "<AR>.E[<i>]" to match cal::elim_slot_name.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cal/specs/elim_views.hpp"
#include "cal/symbol.hpp"
#include "objects/exchanger.hpp"

namespace cal::objects {

class ElimArray {
 public:
  ElimArray(EpochDomain& ebr, Symbol name, std::size_t width,
            TraceLog* trace = nullptr);

  ElimArray(const ElimArray&) = delete;
  ElimArray& operator=(const ElimArray&) = delete;

  /// exchange on a random slot (Fig. 2 lines 3-6).
  ExchangeResult exchange(ThreadId tid, std::int64_t v, unsigned spins = 256);

  [[nodiscard]] std::size_t width() const noexcept { return slots_.size(); }
  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] Exchanger& slot(std::size_t i) { return *slots_[i]; }

 private:
  [[nodiscard]] std::size_t random_slot() const noexcept;

  Symbol name_;
  std::vector<std::unique_ptr<Exchanger>> slots_;
};

}  // namespace cal::objects
