#include "objects/exchanger.hpp"

namespace cal::objects {

Exchanger::~Exchanger() {
  // Quiescent at destruction: at most one unmatched offer can still hang off
  // g if a thread was killed mid-call; normal shutdown leaves g null or
  // pointing at an offer already retired by its owner.
  const Word leftover = g_storage_.load(std::memory_order_acquire);
  if (leftover != kNullRef &&
      RealEnv::cell(leftover, core::kOfferHole)
              ->load(std::memory_order_acquire) == kNullRef) {
    rec_->dealloc(0, leftover, core::kOfferCells);
  }
}

ExchangeResult Exchanger::exchange(ThreadId tid, std::int64_t v,
                                   unsigned spins) {
  Reclaimer::Guard guard(*rec_, tid);
  RealEnv env(rec_, tid, trace_);
  const core::ExchangeOutcome r =
      core::exchange(env, refs_, name_, method_, tid, v, spins);
  return {r.ok, r.value};
}

}  // namespace cal::objects
