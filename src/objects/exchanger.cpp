#include "objects/exchanger.hpp"

#include <thread>

namespace cal::objects {

namespace {
/// One spin-wait iteration. Yielding periodically keeps the wait useful on
/// oversubscribed or single-core hosts, where a pure pause loop would burn
/// the whole quantum before a partner can run.
inline void spin_pause(unsigned i) noexcept {
  if ((i & 63u) == 63u) {
    std::this_thread::yield();
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}
}  // namespace

Exchanger::~Exchanger() {
  // Quiescent at destruction: at most one unmatched offer can still hang off
  // g_ if a thread was killed mid-call; normal shutdown leaves g_ null or
  // pointing at an offer already retired by its owner.
  Offer* leftover = g_.load(std::memory_order_acquire);
  if (leftover != nullptr && leftover->hole.load() == nullptr) {
    delete leftover;
  }
}

void Exchanger::log_swap(ThreadId passive, std::int64_t passive_value,
                         ThreadId active, std::int64_t active_value) {
  if (trace_ == nullptr) return;
  trace_->append(CaElement::swap(name_, method(), passive, passive_value,
                                 active, active_value));
}

void Exchanger::log_failure(ThreadId tid, std::int64_t v) {
  if (trace_ == nullptr) return;
  trace_->append(CaElement::singleton(
      name_, Operation::make(tid, name_, method(), Value::integer(v),
                             Value::pair(false, v))));
}

ExchangeResult Exchanger::exchange(ThreadId tid, std::int64_t v,
                                   unsigned spins) {
  EpochDomain::Guard guard(ebr_, tid);

  auto* n = new Offer(tid, v);

  Offer* expected = nullptr;
  if (g_.compare_exchange_strong(expected, n, std::memory_order_acq_rel)) {
    // Published our offer (init, line 15). Wait for a partner (line 17).
    for (unsigned i = 0; i < spins; ++i) {
      if (n->hole.load(std::memory_order_acquire) != nullptr) break;
      spin_pause(i);
    }
    Offer* hole_expected = nullptr;
    if (n->hole.compare_exchange_strong(hole_expected, &fail_,
                                        std::memory_order_acq_rel)) {
      // pass (line 18): nobody matched; withdraw the offer. The paper's
      // PASS action logs the failed operation.
      log_failure(tid, v);
      // Best-effort cleanup so later threads see g = null promptly.
      Offer* self = n;
      g_.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
      ebr_.retire(tid, n);
      return {false, v};
    }
    // A partner CAS'ed its offer into our hole; it logged the swap (XCHG).
    Offer* partner = n->hole.load(std::memory_order_acquire);
    const std::int64_t got = partner->data;  // line 22: n.hole.data
    ebr_.retire(tid, n);
    return {true, got};
  }

  // Second path: someone else's offer may be out there (lines 25-34).
  Offer* cur = g_.load(std::memory_order_acquire);
  if (cur != nullptr) {
    Offer* hole_expected = nullptr;
    const bool s = cur->hole.compare_exchange_strong(
        hole_expected, n, std::memory_order_acq_rel);  // xchg (line 29)
    if (s) {
      // XCHG action: the single CAS seems to complete *both* operations;
      // the auxiliary assignment appends the joint swap element (§5.1).
      log_swap(cur->tid, cur->data, tid, v);
    }
    // clean (line 31): unconditional helping CAS.
    Offer* cur_copy = cur;
    g_.compare_exchange_strong(cur_copy, nullptr, std::memory_order_acq_rel);
    if (s) {
      const std::int64_t got = cur->data;  // line 33: cur.data
      ebr_.retire(tid, n);
      return {true, got};
    }
  }

  // fail (line 35). Our offer was never published: free it eagerly.
  delete n;
  log_failure(tid, v);
  return {false, v};
}

}  // namespace cal::objects
