#include "objects/priority_queue.hpp"

namespace cal::objects {

BucketPriorityQueue::BucketPriorityQueue(runtime::EpochDomain& ebr,
                                         Symbol name, std::size_t buckets,
                                         runtime::TraceLog* trace)
    : rec_(ebr),
      name_(name),
      trace_(trace),
      buckets_(buckets),
      cells_(new std::atomic<Word>[buckets + 1]()) {
  refs_.count = RealEnv::ref(cells_.get());
  refs_.tops = RealEnv::ref(cells_.get() + 1);
}

BucketPriorityQueue::~BucketPriorityQueue() {
  for (std::size_t p = 0; p < buckets_; ++p) {
    Word c = cells_[p + 1].load(std::memory_order_acquire);
    while (c != kNullRef) {
      const Word next =
          RealEnv::cell(c, core::kPqNodeNext)->load(std::memory_order_relaxed);
      delete[] RealEnv::cell(c, 0);
      c = next;
    }
  }
}

bool BucketPriorityQueue::insert(runtime::ThreadId tid, std::int64_t v) {
  if (v < 0 || static_cast<std::size_t>(v) >= buckets_) return false;
  Reclaimer::Guard guard(rec_, tid);
  RealEnv env(&rec_, tid, trace_);
  while (!core::pq_insert_attempt(env, refs_, name_, tid, v)) {
    std::this_thread::yield();
  }
  return true;
}

PopResult BucketPriorityQueue::delete_min(runtime::ThreadId tid) {
  Reclaimer::Guard guard(rec_, tid);
  RealEnv env(&rec_, tid, trace_);
  for (;;) {
    const core::PqDeleteOutcome r = core::pq_delete_min_attempt(
        env, refs_, static_cast<Word>(buckets_), name_, tid);
    if (r.kind == core::PqDelete::kGot) return {true, r.value};
    if (r.kind == core::PqDelete::kEmpty) return {false, 0};
    std::this_thread::yield();
  }
}

}  // namespace cal::objects
