// The environment concept Env — the single seam between the CA-object
// algorithm bodies (objects/core/) and the two runtimes that execute them.
//
// The paper's §5 instruments the *implementation itself* with auxiliary
// assignments; keeping a second, hand-compiled copy of each algorithm for
// the model checker reintroduces exactly the code/model gap that
// concurrency-aware linearizability is meant to close. So every algorithm
// in this repo is written once, as a template over an environment `Env`,
// and instantiated twice:
//
//   * RealEnv (objects/real_env.hpp): shared accesses become std::atomic
//     operations, reclamation goes through the pluggable runtime/reclaim/
//     backend (EBR by default, hazard or tagged pointers by policy), and
//     emit appends to runtime::TraceLog — the lock-free implementation
//     threads actually run.
//   * SimEnv (sched/sim_env.hpp): every *yield operation* (see below)
//     becomes one scheduler step of the explorer's World/SimMemory, with
//     the program counter synthesized from the dynamic access sequence.
//     The auxiliary emit is fused with the preceding yield operation, i.e.
//     it happens atomically with the instrumented instruction — the
//     paper's coupling, which real hardware cannot provide (trace_log.hpp
//     discusses the fidelity gap).
//
// An Env provides (Word = std::int64_t; a "block" is the base of a zeroed
// run of cells; cell addressing is block + offset; `mo` is a MemOrder with
// default kSeqCst, so unannotated bodies keep sequentially consistent
// semantics in both runtimes):
//
//   Word load(Word block, Word off, MemOrder mo)     — shared read  [yield]
//   void store(Word block, Word off, Word v, MemOrder mo)
//                                                    — shared write [yield]
//   bool cas(Word block, Word off, Word exp, Word d, MemOrder mo)
//                                                    — shared CAS   [yield]
//   Word protect(Word block, Word off, MemOrder mo)  — shared read that
//                                       additionally *protects* the loaded
//                                       block under the active reclamation
//                                       policy (runtime/reclaim/) until
//                                       release() or the operation ends;
//                                       returns a plain block address (tag
//                                       bits stripped)            [yield]
//   Word choose(Word n)            — nondeterministic pick in [0,n) [yield]
//   Word alloc(Word cells)         — fresh zeroed block (per-thread heap)
//   Word load_frozen(Word b, Word o)  — read of a cell that can no longer
//                                       change (write-once, pre-publication
//                                       init, or immutable-after-publish)
//   void store_private(Word b, Word o, Word v) — init of a not-yet-published
//                                       cell that no other thread ever
//                                       writes (Env may replay it)
//   void release()                 — drops every protection the thread
//                                    holds (protect is re-armed per
//                                    attempt; release keeps the slot /
//                                    record budget bounded)
//   bool validate(Word block, Word off) — true iff the cell still holds
//                                    exactly what this thread's protect of
//                                    it observed, compared *tag-widened*:
//                                    a recycled same-address generation
//                                    fails. Constant true under EBR and
//                                    hazard pointers (their protect pins
//                                    the block, so the body's stripped
//                                    compare suffices) — a yield op under
//                                    kTagged only
//   ReclaimPolicy reclaim_policy() — the active reclamation backend
//   void retire(Word block, Word cells)       — deferred reclamation of a
//                                               published block whose
//                                               readers follow the protect
//                                               discipline (every
//                                               dereference under a live
//                                               protect of the block)
//   void retire_grace(Word block, Word cells) — reclamation of a published
//                                               block whose readers only
//                                               guarantee operation
//                                               bracketing: freed after a
//                                               full grace period under
//                                               every backend (the choice
//                                               for bodies without a
//                                               protect protocol)
//   void free_private(Word block, Word cells) — eager free, never published
//   void await(Word block, Word off, unsigned spins) — bounded wait for the
//                                       cell to become non-null; a no-op in
//                                       simulation (whether a partner
//                                       arrives "during the wait" is the
//                                       scheduler's interleaving choice)
//   void emit(F&& make)            — append make() (a CaElement) to 𝒯,
//                                    fused with the preceding yield op; the
//                                    thunk is only evaluated when a trace
//                                    is attached
//   void label(std::int32_t pc)    — control-point label for the proof
//                                    outline (Fig. 1 assertions)
//   void note(std::size_t reg, Word v) — proof-outline register
//   void event(unsigned bit)       — reachability beacon
//
// Yield-op discipline (what makes one body serve both runtimes):
//
//   * Only load/store/cas/protect/choose are interference points;
//     everything the body does between two yield ops executes atomically
//     in simulation.
//   * Under the default EBR policy, protect *is* load and release is a
//     no-op — annotated bodies keep the exact meaning (and state space)
//     they had before the reclamation axis existed. Under hazard pointers
//     it publishes an HP slot; under tagged pointers it records the raw
//     tagged word for the widened CAS.
//   * store_private must never target a cell another thread may CAS
//     (exchanger holes, sync-queue match fields, queue next links after
//     publication): SimEnv re-executes the body from the start on every
//     step, replaying logged yield results but re-running private stores.
//   * load_frozen must only read cells whose value is fixed by the time of
//     the read; SimEnv re-reads them on every re-execution.
//
// Memory-order discipline (the weak-memory axis of the concept):
//
//   * A MemOrder annotation is a *claim the body makes about its own
//     synchronization needs*, checked by the model checker and exploited
//     by the production runtime. RealEnv maps it onto the matching
//     std::memory_order; SimEnv maps it onto the simulated machine's
//     memory model (under `MemoryModel::kTso`, stores weaker than kSeqCst
//     enter the issuing thread's FIFO store buffer and become visible to
//     other threads only at a nondeterministic flush step — so an
//     annotation that is too weak shows up as an explorable, replayable
//     interleaving, not a once-in-a-blue-moon production bug).
//   * kSeqCst stores and *every* CAS drain the issuing thread's buffer
//     (the x86-TSO mapping: locked RMWs and fenced stores flush).
//   * Loads of any order read the newest matching entry of the thread's
//     own buffer first (store-to-load forwarding), then memory.
//
// Algorithm *attempt* bodies return after one pass of their retry loop;
// the retry loops themselves live in the wrappers (unbounded in RealEnv,
// bounded with truncation in SimEnv), mirroring how the hand-written
// machines bounded Fig. 2's while(true).
#pragma once

#include <cstdint>

#include "runtime/reclaim/reclaimer.hpp"

namespace cal::objects {

/// The cell word of both runtimes: SimMemory words and (via
/// reinterpret_cast of std::atomic<Word>*) real heap addresses.
using Word = std::int64_t;

/// The reclamation-policy axis (runtime/reclaim/reclaimer.hpp), shared by
/// both runtimes: RealEnv caches its Reclaimer's policy, SimEnv reflects
/// WorldConfig::reclaim_policy. Where a backend's safety contract
/// genuinely differs, bodies use policy-sensitive primitives (validate)
/// rather than branching by hand — each instantiation is model-checked
/// under its own policy.
using runtime::ReclaimPolicy;

/// The null block / null cell value.
inline constexpr Word kNullRef = 0;

/// Memory-order parameter of the yield operations load/store/cas. The
/// subset of std::memory_order both runtimes implement; every yield op
/// defaults to kSeqCst so unannotated bodies are sequentially consistent.
enum class MemOrder : std::uint8_t {
  kRelaxed = 0,
  kAcquire = 1,
  kRelease = 2,
  kAcqRel = 3,
  kSeqCst = 4,
};

}  // namespace cal::objects
