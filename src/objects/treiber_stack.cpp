#include "objects/treiber_stack.hpp"

namespace cal::objects {

CentralStack::~CentralStack() {
  Cell* c = top_.load(std::memory_order_acquire);
  while (c != nullptr) {
    Cell* next = c->next;
    delete c;
    c = next;
  }
}

void CentralStack::log(ThreadId tid, Symbol method, Value arg, Value ret) {
  if (trace_ == nullptr) return;
  trace_->append(CaElement::singleton(
      name_, Operation::make(tid, name_, method, std::move(arg),
                             std::move(ret))));
}

bool CentralStack::push(ThreadId tid, std::int64_t v) {
  static const Symbol kPush{"push"};
  EpochDomain::Guard guard(ebr_, tid);
  Cell* h = top_.load(std::memory_order_acquire);     // line 11
  auto* n = new Cell{v, h};                           // line 12
  const bool ok =
      top_.compare_exchange_strong(h, n, std::memory_order_acq_rel);
  if (!ok) delete n;  // never published
  log(tid, kPush, Value::integer(v), Value::boolean(ok));
  return ok;                                          // line 13
}

PopResult CentralStack::pop(ThreadId tid) {
  static const Symbol kPop{"pop"};
  EpochDomain::Guard guard(ebr_, tid);
  Cell* h = top_.load(std::memory_order_acquire);     // line 16
  if (h == nullptr) {                                 // line 17: EMPTY
    log(tid, kPop, Value::unit(), Value::pair(false, 0));
    return {false, 0};
  }
  Cell* n = h->next;                                  // line 19
  if (top_.compare_exchange_strong(h, n, std::memory_order_acq_rel)) {
    const std::int64_t v = h->data;                   // line 21
    ebr_.retire(tid, h);
    log(tid, kPop, Value::unit(), Value::pair(true, v));
    return {true, v};
  }
  log(tid, kPop, Value::unit(), Value::pair(false, 0));  // line 23
  return {false, 0};
}

}  // namespace cal::objects
