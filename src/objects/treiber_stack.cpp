#include "objects/treiber_stack.hpp"

namespace cal::objects {

CentralStack::~CentralStack() {
  // Strip every link: under the tagged backend the cells carry generation
  // tags. Freeing goes through the reclaimer so type-stable backends keep
  // their free lists consistent (tid 0: no concurrency at destruction).
  Word c = rec_->strip(top_storage_.load(std::memory_order_acquire));
  while (c != kNullRef) {
    const Word next = rec_->strip(
        RealEnv::cell(c, core::kCellNext)->load(std::memory_order_relaxed));
    rec_->dealloc(0, c, core::kCellCells);
    c = next;
  }
}

bool CentralStack::push(ThreadId tid, std::int64_t v) {
  Reclaimer::Guard guard(*rec_, tid);
  RealEnv env(rec_, tid, trace_);
  return core::stack_push_attempt(env, refs_, name_, tid, v);
}

PopResult CentralStack::pop(ThreadId tid) {
  Reclaimer::Guard guard(*rec_, tid);
  RealEnv env(rec_, tid, trace_);
  const core::StackPopOutcome r =
      core::stack_pop_attempt(env, refs_, name_, tid);
  if (r.kind == core::StackPop::kGot) return {true, r.value};
  return {false, 0};
}

}  // namespace cal::objects
