#include "objects/treiber_stack.hpp"

namespace cal::objects {

CentralStack::~CentralStack() {
  Word c = top_storage_.load(std::memory_order_acquire);
  while (c != kNullRef) {
    const Word next =
        RealEnv::cell(c, core::kCellNext)->load(std::memory_order_relaxed);
    delete[] RealEnv::cell(c, 0);
    c = next;
  }
}

bool CentralStack::push(ThreadId tid, std::int64_t v) {
  EpochDomain::Guard guard(ebr_, tid);
  RealEnv env(&ebr_, tid, trace_);
  return core::stack_push_attempt(env, refs_, name_, tid, v);
}

PopResult CentralStack::pop(ThreadId tid) {
  EpochDomain::Guard guard(ebr_, tid);
  RealEnv env(&ebr_, tid, trace_);
  const core::StackPopOutcome r =
      core::stack_pop_attempt(env, refs_, name_, tid);
  if (r.kind == core::StackPop::kGot) return {true, r.value};
  return {false, 0};
}

}  // namespace cal::objects
