#include "objects/sync_queue.hpp"

namespace cal::objects {

SyncQueue::~SyncQueue() {
  // Quiescent at destruction: surviving nodes are unmatched reservations of
  // threads that never completed (abnormal shutdown) — free the spine. The
  // cancelled sentinel is member storage and never linked into the spine.
  Word n = top_storage_.load(std::memory_order_acquire);
  while (n != kNullRef) {
    const Word next =
        RealEnv::cell(n, core::kNodeNext)->load(std::memory_order_relaxed);
    delete[] RealEnv::cell(n, 0);
    n = next;
  }
}

bool SyncQueue::transfer(ThreadId tid, Word mode, std::int64_t v,
                         unsigned spins, std::int64_t& received) {
  Reclaimer::Guard guard(rec_, tid);
  RealEnv env(&rec_, tid, trace_);
  for (;;) {
    const core::SyncTransferOutcome r = core::sync_queue_transfer_attempt(
        env, refs_, name_, tid, mode, v, spins);
    if (r.kind == core::SyncTransfer::kPaired) {
      received = r.received;
      return true;
    }
    if (r.kind == core::SyncTransfer::kTimedOut) return false;
  }
}

bool SyncQueue::put(ThreadId tid, std::int64_t v, unsigned spins) {
  std::int64_t ignored = 0;
  return transfer(tid, core::kModeData, v, spins, ignored);
}

PopResult SyncQueue::take(ThreadId tid, unsigned spins) {
  std::int64_t received = 0;
  if (transfer(tid, core::kModeRequest, 0, spins, received)) {
    return {true, received};
  }
  return {false, 0};
}

}  // namespace cal::objects
