#include "objects/sync_queue.hpp"

#include <thread>

namespace cal::objects {

namespace {

const Symbol& put_sym() {
  static const Symbol s{"put"};
  return s;
}
const Symbol& take_sym() {
  static const Symbol s{"take"};
  return s;
}

inline void spin_pause(unsigned i) noexcept {
  if ((i & 63u) == 63u) {
    std::this_thread::yield();
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

SyncQueue::~SyncQueue() {
  // Quiescent at destruction: surviving nodes are unmatched reservations of
  // threads that never completed (abnormal shutdown) — free the spine.
  Node* n = top_.load(std::memory_order_acquire);
  while (n != nullptr) {
    Node* next = n->next;
    delete n;
    n = next;
  }
}

void SyncQueue::log_pair(ThreadId putter, std::int64_t v, ThreadId taker) {
  if (trace_ == nullptr) return;
  trace_->append(CaElement(
      name_,
      {Operation::make(putter, name_, put_sym(), Value::integer(v),
                       Value::boolean(true)),
       Operation::make(taker, name_, take_sym(), Value::unit(),
                       Value::pair(true, v))}));
}

void SyncQueue::log_failure(ThreadId tid, Mode mode, std::int64_t v) {
  if (trace_ == nullptr) return;
  if (mode == Mode::kData) {
    trace_->append(CaElement::singleton(
        name_, Operation::make(tid, name_, put_sym(), Value::integer(v),
                               Value::boolean(false))));
  } else {
    trace_->append(CaElement::singleton(
        name_, Operation::make(tid, name_, take_sym(), Value::unit(),
                               Value::pair(false, 0))));
  }
}

bool SyncQueue::transfer(ThreadId tid, Mode mode, std::int64_t v,
                         unsigned spins, std::int64_t& received) {
  EpochDomain::Guard guard(ebr_, tid);

  for (;;) {
    Node* h = top_.load(std::memory_order_acquire);

    if (h == nullptr || h->mode == mode) {
      // Same-mode top (or empty): publish a reservation and wait.
      auto* node = new Node(mode, v, tid);
      node->next = h;
      if (!top_.compare_exchange_strong(h, node,
                                        std::memory_order_acq_rel)) {
        delete node;  // never published
        continue;
      }
      for (unsigned i = 0; i < spins; ++i) {
        if (node->match.load(std::memory_order_acquire) != nullptr) break;
        spin_pause(i);
      }
      Node* expected = nullptr;
      if (node->match.compare_exchange_strong(expected, &cancelled_,
                                              std::memory_order_acq_rel)) {
        // Timed out unpaired — the exchanger's "pass" move. Best-effort
        // unlink if we are still the top; otherwise a later helper pops us.
        Node* self = node;
        top_.compare_exchange_strong(self, node->next,
                                     std::memory_order_acq_rel);
        log_failure(tid, mode, v);
        ebr_.retire(tid, node);
        return false;
      }
      // Fulfilled: the fulfiller logged the pairing element.
      Node* partner = node->match.load(std::memory_order_acquire);
      received = partner->data;
      ebr_.retire(tid, node);
      return true;
    }

    // Complementary top: try to fulfill it.
    Node* hmatch = h->match.load(std::memory_order_acquire);
    if (hmatch != nullptr) {
      // Already matched or cancelled: help unlink and retry.
      top_.compare_exchange_strong(h, h->next, std::memory_order_acq_rel);
      continue;
    }
    auto* node = new Node(mode, v, tid);
    Node* expected = nullptr;
    if (h->match.compare_exchange_strong(expected, node,
                                         std::memory_order_acq_rel)) {
      // The fulfilling CAS completes both operations simultaneously: append
      // the joint CA-element (the XCHG analogue).
      if (mode == Mode::kRequest) {
        log_pair(/*putter=*/h->tid, /*v=*/h->data, /*taker=*/tid);
      } else {
        log_pair(/*putter=*/tid, /*v=*/v, /*taker=*/h->tid);
      }
      Node* h_copy = h;
      top_.compare_exchange_strong(h_copy, h->next,
                                   std::memory_order_acq_rel);
      received = h->data;
      ebr_.retire(tid, node);
      return true;
    }
    delete node;  // lost the fulfill race; node never published
  }
}

bool SyncQueue::put(ThreadId tid, std::int64_t v, unsigned spins) {
  std::int64_t ignored = 0;
  return transfer(tid, Mode::kData, v, spins, ignored);
}

PopResult SyncQueue::take(ThreadId tid, unsigned spins) {
  std::int64_t received = 0;
  if (transfer(tid, Mode::kRequest, 0, spins, received)) {
    return {true, received};
  }
  return {false, 0};
}

}  // namespace cal::objects
