// The elimination stack of Hendler, Shavit & Yerushalmi (Fig. 2 of the
// paper; SPAA 2004) — the paper's main client of the exchanger.
//
// A pushing/popping thread first tries the central stack S; if the single
// CAS attempt fails under contention, it goes to the elimination array AR:
// the pusher offers its value, the popper offers POP_SENTINAL (∞). A swap
// of (v, ∞) *eliminates* the pair — the push and the pop both complete
// without ever touching S. An exchange that failed or paired two same-side
// operations simply retries (Fig. 2 lines 31-37 / 41-47).
//
// The attempt body (one Fig. 2 loop iteration) is
// core::elim_push_attempt / core::elim_pop_attempt, shared with the model
// checker; this class owns the subobjects, the unbounded retry loop, the
// recorder hooks and the eliminations counter.
//
// Correctness (§5): the composite is *classically* linearizable as a stack.
// The elimination view 𝔽_ES = F̂_ES ∘ F̂_AR (cal/specs/elim_views.hpp) maps
// the recorded auxiliary trace — central-stack singletons and AR swaps — to
// ES-level push/pop linearization points, with the eliminated push placed
// immediately before its pop; the result must replay against the sequential
// stack spec (WFS, §4).
#pragma once

#include <cstdint>

#include "cal/symbol.hpp"
#include "objects/core/elim_stack_core.hpp"
#include "objects/elim_array.hpp"
#include "objects/treiber_stack.hpp"
#include "runtime/recorder.hpp"

namespace cal::objects {

class EliminationStack {
 public:
  static constexpr std::int64_t kPopSentinel = kInfinity;  // line 26

  /// `width` is the elimination array's size K. `trace` receives the
  /// auxiliary 𝒯 elements of the subobjects (S singletons, E[i] swaps);
  /// `recorder`, when set, records push/pop invocations and responses at
  /// the elimination stack's own interface.
  EliminationStack(Reclaimer& rec, Symbol name, std::size_t width,
                   TraceLog* trace = nullptr,
                   runtime::Recorder* recorder = nullptr,
                   unsigned exchange_spins = 256);
  /// Convenience constructor: the historical EBR-domain signature.
  EliminationStack(EpochDomain& ebr, Symbol name, std::size_t width,
                   TraceLog* trace = nullptr,
                   runtime::Recorder* recorder = nullptr,
                   unsigned exchange_spins = 256);

  EliminationStack(const EliminationStack&) = delete;
  EliminationStack& operator=(const EliminationStack&) = delete;

  /// Always succeeds (possibly by elimination). `v` must not be the
  /// sentinel value kPopSentinel.
  bool push(ThreadId tid, std::int64_t v);

  /// Pops a value; loops until one is available (the Fig. 2 pop never
  /// reports empty).
  PopResult pop(ThreadId tid);

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] Symbol stack_name() const noexcept { return stack_.name(); }
  [[nodiscard]] Symbol array_name() const noexcept { return array_.name(); }
  [[nodiscard]] std::size_t width() const noexcept { return array_.width(); }

  /// Number of push/pop completions that went through elimination rather
  /// than the central stack (diagnostics for the benchmarks).
  [[nodiscard]] std::uint64_t eliminations() const noexcept {
    return eliminations_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<runtime::EbrReclaimer> own_;  // convenience-ctor adapter
  Reclaimer* rec_;
  Symbol name_;
  TraceLog* trace_;
  CentralStack stack_;
  ElimArray array_;
  runtime::Recorder* recorder_;
  unsigned exchange_spins_;
  std::atomic<std::uint64_t> eliminations_{0};
};

}  // namespace cal::objects
