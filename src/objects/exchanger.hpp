// The wait-free exchanger CA-object (Fig. 1 of the paper; a simplified
// java.util.concurrent.Exchanger).
//
// A thread offers a value; if it pairs up with a concurrently offering
// thread the two swap values instantaneously ((true, partner's value)),
// otherwise the call fails ((false, own value)). The protocol:
//
//   * An Offer{tid, data, hole} is published by CAS'ing the global slot `g`
//     from null to the offer ("init", line 15). The publisher then waits
//     briefly and CAS'es its own hole from null to the fail sentinel
//     ("pass", line 18): success means no partner arrived (fail), failure
//     means a partner already matched and the exchange succeeded.
//   * A thread that finds `g` non-null CAS'es the published offer's hole
//     from null to its own offer ("xchg", line 29) and then unconditionally
//     CAS'es `g` back to null ("clean", line 31) — helping that keeps the
//     object wait-free.
//
// Instrumentation (§4-§5): when constructed with a TraceLog, the object
// appends to the auxiliary trace variable 𝒯 exactly where the paper's proof
// instruments the code — the successful xchg CAS appends
// E.swap(g.tid, g.data, tid, n.data) (action XCHG), and the failing returns
// append the singleton failure element (actions PASS / FAIL).
//
// Memory: offers may be read by racing threads after the owning call
// returns, so they are retired through an EpochDomain (the GC substitute;
// see runtime/ebr.hpp).
#pragma once

#include <atomic>
#include <cstdint>

#include "cal/ca_trace.hpp"
#include "cal/symbol.hpp"
#include "runtime/ebr.hpp"
#include "runtime/trace_log.hpp"

namespace cal::objects {

using runtime::EpochDomain;
using runtime::ThreadId;
using runtime::TraceLog;

struct ExchangeResult {
  bool ok = false;
  std::int64_t value = 0;

  friend bool operator==(const ExchangeResult&,
                         const ExchangeResult&) = default;
};

class Exchanger {
 public:
  /// `name` is this object's identity in histories and in 𝒯; `trace`, when
  /// non-null, receives the auxiliary CA-elements. `method` is the method
  /// name logged in 𝒯 ("exchange" for exchangers; rendezvous objects reuse
  /// the protocol under their own method name).
  Exchanger(EpochDomain& ebr, Symbol name, TraceLog* trace = nullptr,
            Symbol method = Symbol("exchange"))
      : ebr_(ebr), name_(name), trace_(trace), method_(method) {}
  ~Exchanger();

  Exchanger(const Exchanger&) = delete;
  Exchanger& operator=(const Exchanger&) = delete;

  /// Attempts to swap `v` with a concurrent partner. `spins` bounds the
  /// wait for a partner after publishing an offer (the paper's sleep(50));
  /// the call is wait-free for every value of `spins`.
  ExchangeResult exchange(ThreadId tid, std::int64_t v, unsigned spins = 256);

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] Symbol method() const noexcept { return method_; }

 private:
  struct Offer {
    ThreadId tid;  // auxiliary field used by the XCHG instrumentation (§5.1)
    std::int64_t data;
    std::atomic<Offer*> hole{nullptr};

    Offer(ThreadId t, std::int64_t d) : tid(t), data(d) {}
  };

  void log_swap(ThreadId passive, std::int64_t passive_value, ThreadId active,
                std::int64_t active_value);
  void log_failure(ThreadId tid, std::int64_t v);

  EpochDomain& ebr_;
  Symbol name_;
  TraceLog* trace_;
  Symbol method_;
  std::atomic<Offer*> g_{nullptr};
  Offer fail_{0, 0};  ///< the fail sentinel (line 10)
};

}  // namespace cal::objects
