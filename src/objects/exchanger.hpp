// The wait-free exchanger CA-object (Fig. 1 of the paper; a simplified
// java.util.concurrent.Exchanger).
//
// A thread offers a value; if it pairs up with a concurrently offering
// thread the two swap values instantaneously ((true, partner's value)),
// otherwise the call fails ((false, own value)).
//
// The algorithm itself lives in objects/core/exchanger_core.hpp, written
// once over the environment concept and shared with the model checker;
// this class is the RealEnv wrapper: it owns the shared cells (the global
// slot g and the FAIL sentinel, line 10) as member storage, pins the epoch
// domain around each call, and routes the auxiliary CA-elements (§4-§5)
// to the TraceLog.
//
// Memory: offers may be read by racing threads after the owning call
// returns, so they are retired with retire_grace — the body has no
// protect protocol, so every backend defers the free for a full grace
// period (the enter/exit bracketing is the only discipline offers need).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "cal/ca_trace.hpp"
#include "cal/symbol.hpp"
#include "objects/core/exchanger_core.hpp"
#include "objects/real_env.hpp"
#include "runtime/reclaim/ebr.hpp"
#include "runtime/reclaim/ebr_reclaimer.hpp"
#include "runtime/trace_log.hpp"

namespace cal::objects {

using runtime::EpochDomain;
using runtime::ThreadId;
using runtime::TraceLog;

struct ExchangeResult {
  bool ok = false;
  std::int64_t value = 0;

  friend bool operator==(const ExchangeResult&,
                         const ExchangeResult&) = default;
};

class Exchanger {
 public:
  /// `name` is this object's identity in histories and in 𝒯; `trace`, when
  /// non-null, receives the auxiliary CA-elements. `method` is the method
  /// name logged in 𝒯 ("exchange" for exchangers; rendezvous objects reuse
  /// the protocol under their own method name).
  Exchanger(Reclaimer& rec, Symbol name, TraceLog* trace = nullptr,
            Symbol method = Symbol("exchange"))
      : rec_(&rec), name_(name), trace_(trace), method_(method) {
    refs_.g = RealEnv::ref(&g_storage_);
    refs_.fail = RealEnv::ref(fail_cells_);
  }
  /// Convenience constructor: the historical EBR-domain signature.
  Exchanger(EpochDomain& ebr, Symbol name, TraceLog* trace = nullptr,
            Symbol method = Symbol("exchange"))
      : own_(std::make_unique<runtime::EbrReclaimer>(ebr)),
        rec_(own_.get()),
        name_(name),
        trace_(trace),
        method_(method) {
    refs_.g = RealEnv::ref(&g_storage_);
    refs_.fail = RealEnv::ref(fail_cells_);
  }
  ~Exchanger();

  Exchanger(const Exchanger&) = delete;
  Exchanger& operator=(const Exchanger&) = delete;

  /// Attempts to swap `v` with a concurrent partner. `spins` bounds the
  /// wait for a partner after publishing an offer (the paper's sleep(50));
  /// the call is wait-free for every value of `spins`.
  ExchangeResult exchange(ThreadId tid, std::int64_t v, unsigned spins = 256);

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] Symbol method() const noexcept { return method_; }
  /// The shared cells, for compositions that run the core directly
  /// (elimination array, rendezvous).
  [[nodiscard]] const core::ExchangerRefs& refs() const noexcept {
    return refs_;
  }

 private:
  std::unique_ptr<runtime::EbrReclaimer> own_;  // convenience-ctor adapter
  Reclaimer* rec_;
  Symbol name_;
  TraceLog* trace_;
  Symbol method_;
  std::atomic<Word> g_storage_{0};  ///< the global offer slot g
  std::atomic<Word> fail_cells_[core::kOfferCells] = {};  ///< FAIL sentinel
  core::ExchangerRefs refs_;
};

}  // namespace cal::objects
