// Michael–Scott lock-free FIFO queue.
//
// A classically linearizable "ordinary" object (not a CA-object), included
// as the control for the checkers: its recorded histories must pass both
// the classical LinChecker(QueueSpec) and the CAL checker with
// SeqAsCaSpec(QueueSpec) — demonstrating that CAL conservatively extends
// linearizability on objects that need no concurrency awareness (§3).
//
// The attempt bodies live in objects/core/ms_queue_core.hpp, shared with
// the model checker; this class owns the head/tail cells, the dummy node,
// the retry loops and the epoch pinning. Instrumentation appends singleton
// CA-elements at the linearization points: the tail-link CAS for enq, the
// head-swing CAS (or the empty read) for deq.
#pragma once

#include <atomic>
#include <cstdint>

#include <memory>

#include "cal/ca_trace.hpp"
#include "cal/symbol.hpp"
#include "objects/core/ms_queue_core.hpp"
#include "objects/real_env.hpp"
#include "objects/treiber_stack.hpp"  // PopResult
#include "runtime/reclaim/ebr.hpp"
#include "runtime/reclaim/ebr_reclaimer.hpp"
#include "runtime/trace_log.hpp"

namespace cal::objects {

class MsQueue {
 public:
  /// Primary constructor: any reclamation backend (must outlive the
  /// queue); the dummy node is allocated through it.
  MsQueue(Reclaimer& rec, Symbol name, TraceLog* trace = nullptr);
  /// Convenience constructor: the historical EBR-domain signature.
  MsQueue(EpochDomain& ebr, Symbol name, TraceLog* trace = nullptr);
  ~MsQueue();

  MsQueue(const MsQueue&) = delete;
  MsQueue& operator=(const MsQueue&) = delete;

  void enq(ThreadId tid, std::int64_t v);
  /// (false, 0) when observed empty.
  PopResult deq(ThreadId tid);

  [[nodiscard]] Symbol name() const noexcept { return name_; }

 private:
  void init();

  std::unique_ptr<runtime::EbrReclaimer> own_;  // convenience-ctor adapter
  Reclaimer* rec_;
  Symbol name_;
  TraceLog* trace_;
  std::atomic<Word> head_storage_{0};
  std::atomic<Word> tail_storage_{0};
  core::MsQueueRefs refs_;
};

}  // namespace cal::objects
