#include "objects/immediate_snapshot.hpp"

namespace cal::objects {

std::vector<std::int64_t> ImmediateSnapshot::us(ThreadId tid,
                                                std::int64_t v) {
  assert(tid < participants_ && "participant id out of range");
  assert(levels_[tid].load(std::memory_order_relaxed) ==
             core::kSnapshotNotStarted &&
         "one-shot object: us() called twice by the same participant");
  // No EpochDomain: the one-shot object never reclaims.
  RealEnv env(nullptr, tid, trace_);
  return core::snapshot_us(env, refs_, name_, participants_, tid, v);
}

}  // namespace cal::objects
