#include "objects/immediate_snapshot.hpp"

#include <algorithm>

namespace cal::objects {

std::vector<std::int64_t> ImmediateSnapshot::us(ThreadId tid,
                                                std::int64_t v) {
  const std::size_t n = levels_.size();
  assert(tid < n && "participant id out of range");
  assert(levels_[tid].load(std::memory_order_relaxed) == kNotStarted &&
         "one-shot object: us() called twice by the same participant");

  values_[tid].store(v, std::memory_order_release);

  for (std::int64_t level = static_cast<std::int64_t>(n); level >= 1;
       --level) {
    levels_[tid].store(level, std::memory_order_seq_cst);
    // Collect the participants observed at or below our level.
    std::vector<std::size_t> seen;
    for (std::size_t q = 0; q < n; ++q) {
      if (levels_[q].load(std::memory_order_seq_cst) <= level) {
        seen.push_back(q);
      }
    }
    if (seen.size() >= static_cast<std::size_t>(level)) {
      std::vector<std::int64_t> snapshot;
      snapshot.reserve(seen.size());
      for (std::size_t q : seen) {
        snapshot.push_back(values_[q].load(std::memory_order_acquire));
      }
      std::sort(snapshot.begin(), snapshot.end());
      if (trace_ != nullptr) {
        // Auxiliary instrumentation: each terminating participant logs its
        // own operation. Participants of one block log separate singleton
        // elements carrying identical snapshots; the checker's element
        // search regroups them (the instrumentation here is per-thread
        // because no single CAS closes a whole block).
        trace_->append(CaElement::singleton(
            name_, Operation::make(tid, name_, method(), Value::integer(v),
                                   Value::vec(snapshot))));
      }
      return snapshot;
    }
  }
  // Unreachable: at level 1 the set always contains at least ourselves.
  assert(false && "immediate snapshot descent fell through");
  return {v};
}

}  // namespace cal::objects
