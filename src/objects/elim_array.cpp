#include "objects/elim_array.hpp"

namespace cal::objects {

namespace {

/// Cheap per-thread xorshift; quality is irrelevant, independence from other
/// threads is what matters for spreading load over the slots.
std::uint64_t next_random() noexcept {
  thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ull ^
      reinterpret_cast<std::uintptr_t>(&state);  // per-thread seed
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

ElimArray::ElimArray(EpochDomain& ebr, Symbol name, std::size_t width,
                     TraceLog* trace)
    : name_(name) {
  slots_.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    slots_.push_back(
        std::make_unique<Exchanger>(ebr, elim_slot_name(name, i), trace));
  }
}

std::size_t ElimArray::random_slot() const noexcept {
  return static_cast<std::size_t>(next_random() % slots_.size());
}

ExchangeResult ElimArray::exchange(ThreadId tid, std::int64_t v,
                                   unsigned spins) {
  return slots_[random_slot()]->exchange(tid, v, spins);
}

}  // namespace cal::objects
