#include "objects/elim_array.hpp"

namespace cal::objects {

ElimArray::ElimArray(Reclaimer& rec, Symbol name, std::size_t width,
                     TraceLog* trace)
    : rec_(&rec), name_(name), trace_(trace) {
  build(width);
}

ElimArray::ElimArray(EpochDomain& ebr, Symbol name, std::size_t width,
                     TraceLog* trace)
    : own_(std::make_unique<runtime::EbrReclaimer>(ebr)),
      rec_(own_.get()),
      name_(name),
      trace_(trace) {
  build(width);
}

void ElimArray::build(std::size_t width) {
  slots_.reserve(width);
  slot_refs_.reserve(width);
  slot_names_.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    slots_.push_back(
        std::make_unique<Exchanger>(*rec_, elim_slot_name(name_, i), trace_));
    slot_refs_.push_back(slots_.back()->refs());
    slot_names_.push_back(slots_.back()->name());
  }
}

ExchangeResult ElimArray::exchange(ThreadId tid, std::int64_t v,
                                   unsigned spins) {
  static const Symbol kExchange{"exchange"};
  Reclaimer::Guard guard(*rec_, tid);
  RealEnv env(rec_, tid, trace_);
  const core::ExchangeOutcome r = core::striped_exchange(
      env, slot_refs_.data(), slot_names_.data(), slots_.size(), kExchange,
      tid, v, spins);
  return {r.ok, r.value};
}

}  // namespace cal::objects
