#include "objects/elim_array.hpp"

namespace cal::objects {

ElimArray::ElimArray(EpochDomain& ebr, Symbol name, std::size_t width,
                     TraceLog* trace)
    : ebr_(ebr), name_(name), trace_(trace) {
  slots_.reserve(width);
  slot_refs_.reserve(width);
  slot_names_.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    slots_.push_back(
        std::make_unique<Exchanger>(ebr, elim_slot_name(name, i), trace));
    slot_refs_.push_back(slots_.back()->refs());
    slot_names_.push_back(slots_.back()->name());
  }
}

ExchangeResult ElimArray::exchange(ThreadId tid, std::int64_t v,
                                   unsigned spins) {
  static const Symbol kExchange{"exchange"};
  EpochDomain::Guard guard(ebr_, tid);
  RealEnv env(&ebr_, tid, trace_);
  const core::ExchangeOutcome r = core::striped_exchange(
      env, slot_refs_.data(), slot_names_.data(), slots_.size(), kExchange,
      tid, v, spins);
  return {r.ok, r.value};
}

}  // namespace cal::objects
