// The bounded-priority bucket priority queue on the real runtime: the
// Env-parameterized attempts of objects/core/pq_core.hpp instantiated with
// RealEnv (std::atomic cells + EBR reclamation + TraceLog routing), with
// the unbounded retry loops the wrappers own.
//
// Priorities are the inserted values themselves, restricted to
// [0, buckets); smaller value = higher priority (deleteMin returns the
// smallest present value). insert(v) with an out-of-range v returns false
// without touching the structure (and without logging — the interface
// specification has no such operation).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "cal/symbol.hpp"
#include "objects/core/pq_core.hpp"
#include "objects/real_env.hpp"
#include "objects/treiber_stack.hpp"  // PopResult
#include "runtime/reclaim/ebr.hpp"
#include "runtime/reclaim/ebr_reclaimer.hpp"
#include "runtime/trace_log.hpp"

namespace cal::objects {

class BucketPriorityQueue {
 public:
  BucketPriorityQueue(runtime::EpochDomain& ebr, Symbol name,
                      std::size_t buckets, runtime::TraceLog* trace = nullptr);
  ~BucketPriorityQueue();

  BucketPriorityQueue(const BucketPriorityQueue&) = delete;
  BucketPriorityQueue& operator=(const BucketPriorityQueue&) = delete;

  /// Inserts v (also its priority). False iff v is outside [0, buckets).
  bool insert(runtime::ThreadId tid, std::int64_t v);

  /// Removes and returns the smallest present value; (false,0) = empty.
  PopResult delete_min(runtime::ThreadId tid);

  /// True iff no element is logically present at this instant.
  [[nodiscard]] bool empty() const noexcept {
    return cells_[0].load(std::memory_order_acquire) == 0;
  }

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] std::size_t buckets() const noexcept { return buckets_; }

 private:
  /// The bucket body has no protect protocol (retire_grace): EBR-only,
  /// adapted through an EbrReclaimer member.
  runtime::EbrReclaimer rec_;
  Symbol name_;
  runtime::TraceLog* trace_;
  std::size_t buckets_;
  /// [0] the element counter, [1..buckets] the bucket tops.
  std::unique_ptr<std::atomic<Word>[]> cells_;
  core::PqRefs refs_;
};

}  // namespace cal::objects
