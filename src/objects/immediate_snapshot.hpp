// One-shot immediate atomic snapshot (Borowsky & Gafni) — the task Neiger
// used to motivate set-linearizability (§6 of the paper), as a real
// concurrent object.
//
// Each participant calls us(v) once: it simultaneously writes v and returns
// a snapshot S of written values satisfying
//   * self-inclusion: v ∈ S,
//   * containment: any two returned snapshots are ⊆-comparable,
//   * immediacy: if p's value is in q's snapshot, then p's snapshot ⊆ q's.
//
// Algorithm (the classic BG level descent): a participant writes its value,
// then descends one level at a time from n; at level L it counts the
// participants at level ≤ L and terminates when that count reaches L,
// returning their values. Participants terminating at the same level with
// the same set form one "simultaneity block" — exactly one CA-element of
// cal::SnapshotSpec, which is this object's specification.
//
// This is a CA-object with *unbounded* CA-elements (up to n operations can
// take effect simultaneously), exercising the checkers beyond the
// pairwise-only exchanger.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/symbol.hpp"
#include "runtime/thread_registry.hpp"
#include "runtime/trace_log.hpp"

namespace cal::objects {

using runtime::ThreadId;
using runtime::TraceLog;

class ImmediateSnapshot {
 public:
  /// A one-shot object for up to `participants` processes with dense ids
  /// 0..participants-1.
  ImmediateSnapshot(Symbol name, std::size_t participants,
                    TraceLog* trace = nullptr)
      : name_(name),
        trace_(trace),
        values_(participants),
        levels_(participants) {
    for (auto& level : levels_) {
      level.store(kNotStarted, std::memory_order_relaxed);
    }
    for (auto& value : values_) {
      value.store(0, std::memory_order_relaxed);
    }
  }

  ImmediateSnapshot(const ImmediateSnapshot&) = delete;
  ImmediateSnapshot& operator=(const ImmediateSnapshot&) = delete;

  /// update-and-scan: writes `v` and returns the snapshot (sorted values).
  /// Must be called at most once per participant id.
  std::vector<std::int64_t> us(ThreadId tid, std::int64_t v);

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] Symbol method() const noexcept {
    static const Symbol kUs{"us"};
    return kUs;
  }
  [[nodiscard]] std::size_t participants() const noexcept {
    return levels_.size();
  }

 private:
  static constexpr std::int64_t kNotStarted = INT64_MAX;

  Symbol name_;
  TraceLog* trace_;
  std::vector<std::atomic<std::int64_t>> values_;
  std::vector<std::atomic<std::int64_t>> levels_;
};

}  // namespace cal::objects
