// One-shot immediate atomic snapshot (Borowsky & Gafni) — the task Neiger
// used to motivate set-linearizability (§6 of the paper), as a real
// concurrent object.
//
// Each participant calls us(v) once: it simultaneously writes v and returns
// a snapshot S of written values satisfying
//   * self-inclusion: v ∈ S,
//   * containment: any two returned snapshots are ⊆-comparable,
//   * immediacy: if p's value is in q's snapshot, then p's snapshot ⊆ q's.
//
// The BG level-descent body lives in objects/core/snapshot_core.hpp,
// shared with the model checker; this class owns the values/levels arrays
// and the one-shot bookkeeping. Participants terminating at the same level
// with the same set form one "simultaneity block" — exactly one CA-element
// of cal::SnapshotSpec, which is this object's specification.
//
// This is a CA-object with *unbounded* CA-elements (up to n operations can
// take effect simultaneously), exercising the checkers beyond the
// pairwise-only exchanger.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/symbol.hpp"
#include "objects/core/snapshot_core.hpp"
#include "objects/real_env.hpp"
#include "runtime/thread_registry.hpp"
#include "runtime/trace_log.hpp"

namespace cal::objects {

using runtime::ThreadId;
using runtime::TraceLog;

class ImmediateSnapshot {
 public:
  /// A one-shot object for up to `participants` processes with dense ids
  /// 0..participants-1.
  ImmediateSnapshot(Symbol name, std::size_t participants,
                    TraceLog* trace = nullptr)
      : name_(name),
        trace_(trace),
        participants_(participants),
        values_(new std::atomic<Word>[participants]()),
        levels_(new std::atomic<Word>[participants]) {
    for (std::size_t q = 0; q < participants; ++q) {
      levels_[q].store(core::kSnapshotNotStarted, std::memory_order_relaxed);
    }
    refs_.values = RealEnv::ref(values_.get());
    refs_.levels = RealEnv::ref(levels_.get());
  }

  ImmediateSnapshot(const ImmediateSnapshot&) = delete;
  ImmediateSnapshot& operator=(const ImmediateSnapshot&) = delete;

  /// update-and-scan: writes `v` and returns the snapshot (sorted values).
  /// Must be called at most once per participant id.
  std::vector<std::int64_t> us(ThreadId tid, std::int64_t v);

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] Symbol method() const noexcept {
    static const Symbol kUs{"us"};
    return kUs;
  }
  [[nodiscard]] std::size_t participants() const noexcept {
    return participants_;
  }

 private:
  Symbol name_;
  TraceLog* trace_;
  std::size_t participants_;
  std::unique_ptr<std::atomic<Word>[]> values_;
  std::unique_ptr<std::atomic<Word>[]> levels_;
  core::SnapshotRefs refs_;
};

}  // namespace cal::objects
