// RealEnv — the production instantiation of the environment concept
// (objects/env.hpp): the template bodies in objects/core/ compile through
// this class into the same lock-free std::atomic code the hand-written
// objects used to contain.
//
// Representation: a "block" is an array of std::atomic<Word> on the real
// heap (or member storage of the owning object, for the global cells), and
// a block address is the reinterpret_cast of its first element's pointer.
// Every method is a thin inline wrapper, so after inlining an env.cas is
// exactly a compare_exchange_strong on the addressed cell — the
// BM_Env_StepOverhead benchmark (bench/bench_model_check.cpp) holds this
// to within 5% of a direct-atomic baseline.
//
// Memory orders: shared loads are acquire, shared stores seq_cst (only the
// snapshot's level descent uses env.store, and BG assumes atomic
// registers), CAS acq_rel. load_frozen / store_private are relaxed — the
// frozen-cell discipline of env.hpp means a happens-before edge from a
// prior acquire load already covers them.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>

#include "objects/env.hpp"
#include "runtime/ebr.hpp"
#include "runtime/trace_log.hpp"

namespace cal::objects {

using runtime::EpochDomain;
using runtime::TraceLog;

namespace detail {

/// One spin-wait iteration. Yielding periodically keeps the wait useful on
/// oversubscribed or single-core hosts, where a pure pause loop would burn
/// the whole quantum before a partner can run.
inline void spin_pause(unsigned i) noexcept {
  if ((i & 63u) == 63u) {
    std::this_thread::yield();
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Cheap per-thread xorshift behind env.choose; quality is irrelevant,
/// independence between threads is what spreads load over striped slots.
inline std::uint64_t next_random() noexcept {
  thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ull ^
      reinterpret_cast<std::uintptr_t>(&state);  // per-thread seed
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace detail

class RealEnv {
 public:
  /// `ebr` may be null for objects that never retire (the snapshot);
  /// `trace` may be null to disable instrumentation entirely — emit then
  /// never evaluates its thunk, keeping CaElement construction off the hot
  /// path.
  RealEnv(EpochDomain* ebr, runtime::ThreadId tid,
          TraceLog* trace) noexcept
      : ebr_(ebr), trace_(trace), tid_(tid) {}

  static std::atomic<Word>* cell(Word block, Word off) noexcept {
    return reinterpret_cast<std::atomic<Word>*>(block) + off;
  }
  /// The block address of an object's member cell array.
  static Word ref(std::atomic<Word>* base) noexcept {
    return reinterpret_cast<Word>(base);
  }

  Word load(Word block, Word off) const noexcept {
    return cell(block, off)->load(std::memory_order_acquire);
  }

  void store(Word block, Word off, Word v) const noexcept {
    cell(block, off)->store(v, std::memory_order_seq_cst);
  }

  bool cas(Word block, Word off, Word expected, Word desired) const noexcept {
    return cell(block, off)->compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel);
  }

  Word choose(Word n) const noexcept {
    return static_cast<Word>(detail::next_random() %
                             static_cast<std::uint64_t>(n));
  }

  Word alloc(Word cells) const {
    // Value-initialized: all cells zero, as the concept requires.
    return reinterpret_cast<Word>(
        new std::atomic<Word>[static_cast<std::size_t>(cells)]());
  }

  Word load_frozen(Word block, Word off) const noexcept {
    return cell(block, off)->load(std::memory_order_relaxed);
  }

  void store_private(Word block, Word off, Word v) const noexcept {
    cell(block, off)->store(v, std::memory_order_relaxed);
  }

  void retire(Word block, Word /*cells*/) const {
    ebr_->retire(tid_, reinterpret_cast<void*>(block), [](void* p) {
      delete[] static_cast<std::atomic<Word>*>(p);
    });
  }

  void free_private(Word block, Word /*cells*/) const {
    delete[] reinterpret_cast<std::atomic<Word>*>(block);
  }

  void await(Word block, Word off, unsigned spins) const noexcept {
    for (unsigned i = 0; i < spins; ++i) {
      if (cell(block, off)->load(std::memory_order_acquire) != kNullRef) {
        break;
      }
      detail::spin_pause(i);
    }
  }

  template <typename F>
  void emit(F&& make) const {
    if (trace_ != nullptr) trace_->append(std::forward<F>(make)());
  }

  void label(std::int32_t /*pc*/) const noexcept {}
  void note(std::size_t /*reg*/, Word /*v*/) const noexcept {}
  void event(unsigned /*bit*/) const noexcept {}

 private:
  EpochDomain* ebr_;
  TraceLog* trace_;
  runtime::ThreadId tid_;
};

}  // namespace cal::objects
