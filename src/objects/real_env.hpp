// RealEnv — the production instantiation of the environment concept
// (objects/env.hpp): the template bodies in objects/core/ compile through
// this class into the same lock-free std::atomic code the hand-written
// objects used to contain.
//
// Representation: a "block" is an array of std::atomic<Word> on the real
// heap (or member storage of the owning object, for the global cells), and
// a block address is the reinterpret_cast of its first element's pointer.
// Every method is a thin inline wrapper, so after inlining an env.cas is
// exactly a compare_exchange_strong on the addressed cell — the
// BM_Env_StepOverhead benchmark (bench/bench_model_check.cpp) holds this
// to within 5% of a direct-atomic baseline.
//
// Memory orders: every yield op takes a MemOrder (default kSeqCst) and
// maps it onto the matching std::memory_order — the algorithm bodies in
// objects/core/ annotate their accesses with the weakest order their R/G
// argument supports (retry-loop loads → acquire, publishing CAS →
// acq_rel), and the TSO exploration mode (sched/sim_memory.hpp) model
// checks exactly those annotations. CAS maps kAcqRel to
// (acq_rel, acquire): the failure path only needs to observe the
// interfering value, never to publish. load_frozen / store_private stay
// relaxed — the frozen-cell discipline of env.hpp means a happens-before
// edge from a prior acquire load already covers them.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>

#include "objects/env.hpp"
#include "runtime/reclaim/ebr.hpp"
#include "runtime/reclaim/reclaimer.hpp"
#include "runtime/reclaim/tagged.hpp"
#include "runtime/trace_log.hpp"

namespace cal::objects {

using runtime::EpochDomain;
using runtime::Reclaimer;
using runtime::ReclaimPolicy;
using runtime::TraceLog;

namespace detail {

/// One spin-wait iteration. Yielding periodically keeps the wait useful on
/// oversubscribed or single-core hosts, where a pure pause loop would burn
/// the whole quantum before a partner can run.
inline void spin_pause(unsigned i) noexcept {
  if ((i & 63u) == 63u) {
    std::this_thread::yield();
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Cheap per-thread xorshift behind env.choose; quality is irrelevant,
/// independence between threads is what spreads load over striped slots.
inline std::uint64_t next_random() noexcept {
  thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ull ^
      reinterpret_cast<std::uintptr_t>(&state);  // per-thread seed
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// MemOrder → std::memory_order for a load (release orders degrade to
/// acquire: a plain load cannot publish).
constexpr std::memory_order load_order(MemOrder mo) noexcept {
  switch (mo) {
    case MemOrder::kRelaxed:
      return std::memory_order_relaxed;
    case MemOrder::kAcquire:
    case MemOrder::kRelease:
    case MemOrder::kAcqRel:
      return std::memory_order_acquire;
    case MemOrder::kSeqCst:
      return std::memory_order_seq_cst;
  }
  return std::memory_order_seq_cst;
}

/// MemOrder → std::memory_order for a store (acquire orders upgrade to
/// release: a plain store cannot observe).
constexpr std::memory_order store_order(MemOrder mo) noexcept {
  switch (mo) {
    case MemOrder::kRelaxed:
      return std::memory_order_relaxed;
    case MemOrder::kAcquire:
    case MemOrder::kRelease:
    case MemOrder::kAcqRel:
      return std::memory_order_release;
    case MemOrder::kSeqCst:
      return std::memory_order_seq_cst;
  }
  return std::memory_order_seq_cst;
}

/// MemOrder → std::memory_order for a read-modify-write.
constexpr std::memory_order rmw_order(MemOrder mo) noexcept {
  switch (mo) {
    case MemOrder::kRelaxed:
      return std::memory_order_relaxed;
    case MemOrder::kAcquire:
      return std::memory_order_acquire;
    case MemOrder::kRelease:
      return std::memory_order_release;
    case MemOrder::kAcqRel:
      return std::memory_order_acq_rel;
    case MemOrder::kSeqCst:
      return std::memory_order_seq_cst;
  }
  return std::memory_order_seq_cst;
}

}  // namespace detail

class RealEnv {
 public:
  /// `rec` may be null for objects that never retire (the snapshot);
  /// `trace` may be null to disable instrumentation entirely — emit then
  /// never evaluates its thunk, keeping CaElement construction off the hot
  /// path. The reclamation policy is cached at construction so every
  /// dispatch below is a branch on a local, not a virtual call, on the
  /// default EBR path.
  RealEnv(Reclaimer* rec, runtime::ThreadId tid, TraceLog* trace) noexcept
      : rec_(rec),
        trace_(trace),
        tid_(tid),
        policy_(rec != nullptr ? rec->policy() : ReclaimPolicy::kEbr) {}

  static std::atomic<Word>* cell(Word block, Word off) noexcept {
    return reinterpret_cast<std::atomic<Word>*>(block) + off;
  }
  /// The block address of an object's member cell array.
  static Word ref(std::atomic<Word>* base) noexcept {
    return reinterpret_cast<Word>(base);
  }

  Word load(Word block, Word off,
            MemOrder mo = MemOrder::kSeqCst) const noexcept {
    return cell(block, off)->load(detail::load_order(mo));
  }

  void store(Word block, Word off, Word v,
             MemOrder mo = MemOrder::kSeqCst) const noexcept {
    cell(block, off)->store(v, detail::store_order(mo));
  }

  bool cas(Word block, Word off, Word expected, Word desired,
           MemOrder mo = MemOrder::kSeqCst) const noexcept {
    // Failure is a pure load: acquire when the success order synchronizes,
    // relaxed otherwise (the retry loop re-reads through env.load anyway).
    const std::memory_order failure =
        mo == MemOrder::kSeqCst ? std::memory_order_seq_cst
        : (mo == MemOrder::kRelaxed || mo == MemOrder::kRelease)
            ? std::memory_order_relaxed
            : std::memory_order_acquire;
    if (policy_ == ReclaimPolicy::kTagged) {
      // The tagged backend widens the compare to the raw word recorded by
      // the protect of this cell (address + generation tag).
      return rec_->cas(tid_, cell(block, off), expected, desired,
                       detail::rmw_order(mo), failure);
    }
    return cell(block, off)->compare_exchange_strong(
        expected, desired, detail::rmw_order(mo), failure);
  }

  Word protect(Word block, Word off,
               MemOrder mo = MemOrder::kSeqCst) const noexcept {
    // EBR: grace periods protect everything an operation can reach, so
    // protect degenerates to the plain load it replaced.
    if (policy_ == ReclaimPolicy::kEbr) return load(block, off, mo);
    return rec_->protect(tid_, cell(block, off), detail::load_order(mo));
  }

  void release() const noexcept {
    if (policy_ != ReclaimPolicy::kEbr) rec_->release(tid_);
  }

  [[nodiscard]] bool validate(Word block, Word off) const noexcept {
    // EBR and hazard pointers pin the protected block, so the body's own
    // stripped compare is already generation-accurate; only the tagged
    // backend needs the raw re-load.
    if (policy_ != ReclaimPolicy::kTagged) return true;
    return rec_->validate(tid_, cell(block, off));
  }

  [[nodiscard]] ReclaimPolicy reclaim_policy() const noexcept {
    return policy_;
  }

  Word choose(Word n) const noexcept {
    return static_cast<Word>(detail::next_random() %
                             static_cast<std::uint64_t>(n));
  }

  Word alloc(Word cells) const {
    if (policy_ == ReclaimPolicy::kTagged) {
      // Recycles from the type-stable free lists (value bits zeroed, tag
      // bits preserved).
      return rec_->alloc(tid_, cells);
    }
    // Value-initialized: all cells zero, as the concept requires.
    return reinterpret_cast<Word>(
        new std::atomic<Word>[static_cast<std::size_t>(cells)]());
  }

  Word load_frozen(Word block, Word off) const noexcept {
    return cell(block, off)->load(std::memory_order_relaxed);
  }

  void store_private(Word block, Word off, Word v) const noexcept {
    if (policy_ == ReclaimPolicy::kTagged) {
      // A recycled cell may carry a generation tag that must survive
      // re-initialization (the per-cell count is monotone across block
      // lifetimes — resetting it would re-admit ABA).
      static_cast<runtime::TaggedReclaimer*>(rec_)->store_preserving_tag(
          cell(block, off), v);
      return;
    }
    cell(block, off)->store(v, std::memory_order_relaxed);
  }

  void retire(Word block, Word cells) const {
    rec_->retire(tid_, block, cells);
  }

  void retire_grace(Word block, Word cells) const {
    rec_->retire_grace(tid_, block, cells);
  }

  void free_private(Word block, Word cells) const {
    if (rec_ != nullptr) {
      rec_->dealloc(tid_, block, cells);
      return;
    }
    delete[] reinterpret_cast<std::atomic<Word>*>(block);
  }

  void await(Word block, Word off, unsigned spins) const noexcept {
    for (unsigned i = 0; i < spins; ++i) {
      if (cell(block, off)->load(std::memory_order_acquire) != kNullRef) {
        break;
      }
      detail::spin_pause(i);
    }
  }

  template <typename F>
  void emit(F&& make) const {
    if (trace_ != nullptr) trace_->append(std::forward<F>(make)());
  }

  void label(std::int32_t /*pc*/) const noexcept {}
  void note(std::size_t /*reg*/, Word /*v*/) const noexcept {}
  void event(unsigned /*bit*/) const noexcept {}

 private:
  Reclaimer* rec_;
  TraceLog* trace_;
  runtime::ThreadId tid_;
  ReclaimPolicy policy_;
};

}  // namespace cal::objects
