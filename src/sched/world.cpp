#include "sched/world.hpp"

#include <algorithm>

namespace cal::sched {

World::World(const WorldConfig& config)
    : config_(&config),
      mem_(config.programs.size(), config.heap_cells, config.global_cells,
           config.memory_model) {
  threads_.reserve(config.programs.size());
  for (std::size_t i = 0; i < config.programs.size(); ++i) {
    ThreadCtx t;
    t.tid = config.programs[i].tid;
    t.program = i;
    threads_.push_back(t);
  }
  if (config_->spec != nullptr) view_state_ = config_->spec->initial();
  if (config.recycle_addresses) {
    reclaim_.resize(config.programs.size());
    if (config.reclaim_policy == runtime::ReclaimPolicy::kTagged) {
      versions_.assign(mem_.size(), 0);
    }
  }
}

// --- simulated reclamation ------------------------------------------------

std::uint64_t World::active_ops_mask() const noexcept {
  std::uint64_t mask = 0;
  for (const ThreadCtx& t : threads_) {
    if (t.op_active) mask |= (1ull << (t.program & 63u));
  }
  return mask;
}

bool World::tag_congruent(std::uint32_t a, std::uint32_t b) const noexcept {
  const unsigned bits = config_->tag_bits;
  if (bits >= 32) return a == b;
  // bits == 0 → mask 0 → every generation congruent (the truncation
  // mutant: the tag defends nothing).
  const std::uint32_t mask = (1u << bits) - 1u;
  return ((a - b) & mask) == 0;
}

bool World::promotable(const RetiredBlock& r) const noexcept {
  // Under TSO a retired block could still have stale stores sitting in
  // some thread's buffer; promotion waits until every buffer is drained
  // (conservative — see DESIGN.md).
  if (mem_.model() == MemoryModel::kTso && mem_.buffered_total() != 0) {
    return false;
  }
  if (config_->premature_free) return true;
  const bool grace =
      r.grace || config_->reclaim_policy == runtime::ReclaimPolicy::kEbr;
  if (grace) return r.graced_mask == 0;
  if (config_->reclaim_policy == runtime::ReclaimPolicy::kHp) {
    for (const ThreadReclaim& tr : reclaim_) {
      for (Word h : tr.hazards) {
        if (h == static_cast<Word>(r.block)) return false;
      }
    }
    return true;
  }
  return true;  // kTagged non-grace: generations defend the reuse
}

void World::recycle_block(Addr block, Word cells) {
  // Reclamation-state mutations gate other threads' allocations, so the
  // step never commutes (POR) — and zeroing is a multi-cell write anyway.
  note_global_effect();
  for (Word c = 0; c < cells; ++c) {
    mem_.write(block + static_cast<Addr>(c), 0);
  }
  ++recycled_allocs_;
}

Addr World::reclaim_alloc(const ThreadCtx& t, std::size_t cells) {
  if (recycling()) {
    // Freed (never-published / tag-binned) blocks first, then retired
    // blocks in retirement order: deterministic FIFO reuse, like the real
    // tagged backend's bins. Only exact size matches (type stability).
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second != static_cast<Word>(cells)) continue;
      const Addr block = it->first;
      free_.erase(it);
      recycle_block(block, static_cast<Word>(cells));
      return block;
    }
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->cells != static_cast<Word>(cells) || !promotable(*it)) continue;
      const Addr block = it->block;
      retired_.erase(it);
      recycle_block(block, static_cast<Word>(cells));
      return block;
    }
  }
  const Addr a = mem_.alloc(static_cast<std::uint32_t>(t.program), cells);
  alloc_cells_.emplace_back(a, static_cast<Word>(cells));
  return a;
}

Word World::alloc_size(Addr block) const noexcept {
  for (const auto& [a, n] : alloc_cells_) {
    if (a == block) return n;
  }
  return 0;
}

void World::reclaim_protect(const ThreadCtx& t, Addr cell, Word v) {
  if (!recycling()) return;
  note_global_effect();  // gates other threads' promotions
  ThreadReclaim& tr = reclaim_[t.program];
  if (config_->reclaim_policy == runtime::ReclaimPolicy::kHp) {
    tr.hazards[tr.next_slot % tr.hazards.size()] = v;
    tr.next_slot = (tr.next_slot + 1) % static_cast<std::uint32_t>(
                                            tr.hazards.size());
    return;
  }
  // kTagged: first record per cell wins (a refresh would be unsound —
  // runtime/reclaim/tagged.cpp).
  for (const ProtRecord& r : tr.records) {
    if (r.cell == cell) return;
  }
  const std::uint32_t ver =
      versions_.empty() ? 0 : versions_[static_cast<std::size_t>(cell)];
  tr.records.push_back({cell, v, ver});
}

void World::reclaim_release(const ThreadCtx& t) {
  if (!recycling()) return;
  ThreadReclaim& tr = reclaim_[t.program];
  if (tr.hazards == std::array<Word, 4>{} && tr.next_slot == 0 &&
      tr.records.empty()) {
    return;  // nothing held: keep the step pure
  }
  note_global_effect();
  tr.hazards = {};
  tr.next_slot = 0;
  tr.records.clear();
}

bool World::reclaim_validate(const ThreadCtx& t, Addr cell) {
  const ThreadReclaim& tr = reclaim_[t.program];
  for (const ProtRecord& r : tr.records) {
    if (r.cell != cell) continue;
    if (read(t, cell, objects::MemOrder::kSeqCst) != r.value) return false;
    const std::uint32_t ver =
        versions_.empty() ? 0 : versions_[static_cast<std::size_t>(cell)];
    if (!tag_congruent(ver, r.version)) return false;
    if (ver != r.version) tagged_aba_ = true;  // truncation admitted this
    return true;
  }
  return true;  // never protected: nothing to validate against
}

bool World::reclaim_cas(const ThreadCtx& t, Addr a, Word expected,
                        Word desired, objects::MemOrder mo) {
  ThreadReclaim& tr = reclaim_[t.program];
  ProtRecord* rec = nullptr;
  for (ProtRecord& r : tr.records) {
    if (r.cell == a) {
      rec = &r;
      break;
    }
  }
  if (rec == nullptr) {
    // Non-protocol cell (no protect preceded): plain value CAS.
    return cas(t, a, expected, desired, mo);
  }
  note_global_effect();  // generation bump gates other threads' CASes
  const std::uint32_t ver =
      versions_.empty() ? 0 : versions_[static_cast<std::size_t>(a)];
  if (!tag_congruent(ver, rec->version)) return false;  // widened mismatch
  const bool stale = ver != rec->version;
  if (!cas(t, a, expected, desired, mo)) return false;
  if (!versions_.empty()) versions_[static_cast<std::size_t>(a)] = ver + 1;
  if (stale) tagged_aba_ = true;  // ABA the truncated tag failed to stop
  rec->value = desired;
  rec->version = ver + 1;
  return true;
}

void World::reclaim_retire(const ThreadCtx& t, Addr block, Word cells,
                           bool grace) {
  // The retire-size check runs in every mode: retiring a different size
  // than was allocated corrupts any size-binned reclaimer.
  const Word sz = alloc_size(block);
  if (sz != 0 && sz != cells) {
    report_violation("t" + std::to_string(t.tid) + " retires block " +
                     std::to_string(block) + " as " + std::to_string(cells) +
                     " cells but it was allocated with " + std::to_string(sz));
    return;
  }
  if (!recycling()) return;  // addresses stay valid forever
  note_global_effect();
  RetiredBlock r;
  r.block = block;
  r.cells = cells;
  r.grace = grace;
  r.retirer = static_cast<std::uint32_t>(t.program);
  if (grace || config_->reclaim_policy == runtime::ReclaimPolicy::kEbr) {
    r.graced_mask = active_ops_mask();
  }
  retired_.push_back(r);
}

void World::reclaim_free(Addr block, Word cells) {
  if (!recycling()) return;
  note_global_effect();
  free_.emplace_back(block, cells);
}

void World::invoke(ThreadCtx& t) {
  note_global_effect();
  const ThreadProgram& prog = config_->programs[t.program];
  const Call& call = prog.calls[t.call_idx];
  if (t.op_active) {
    report_violation("thread invoked while an operation is active");
    return;
  }
  t.op_active = true;
  t.op_logged = false;
  t.op_logged_ret = Value::unit();
  if (config_->record_history) {
    history_.invoke(t.tid, object_symbol(t), call.method, call.arg);
  }
}

void World::respond(ThreadCtx& t, Value ret) {
  note_global_effect();
  const ThreadProgram& prog = config_->programs[t.program];
  const Call& call = prog.calls[t.call_idx];
  if (!t.op_active) {
    report_violation("response without active operation");
    return;
  }
  // L2: the operation must have been logged, with exactly this result.
  if (config_->spec != nullptr) {
    if (!t.op_logged) {
      report_violation("t" + std::to_string(t.tid) + " returns " +
                       ret.to_string() + " from " + call.method.str() +
                       " but its operation was never logged in T");
      return;
    }
    if (t.op_logged_ret != ret) {
      report_violation(
          "t" + std::to_string(t.tid) + " returns " + ret.to_string() +
          " but T logged " + t.op_logged_ret.to_string() +
          " for its " + call.method.str() + " operation");
      return;
    }
  }
  if (config_->record_history) {
    history_.respond(t.tid, object_symbol(t), call.method, ret);
  }
  t.op_active = false;
  t.op_logged = false;
  t.call_idx += 1;
  t.pc = 0;
  t.regs = {};
  t.oplog.clear();
  t.frozen.clear();
  t.emits = 0;
  t.reclaims = 0;
  t.retries = 0;
  t.stage = ThreadStage::kIdle;
  if (recycling()) {
    // The operation interval ends: its grace pin lifts and any leftover
    // protections drop (exit implies release).
    reclaim_release(t);
    const std::uint64_t bit = 1ull << (t.program & 63u);
    for (RetiredBlock& r : retired_) r.graced_mask &= ~bit;
  }
}

std::optional<std::string> World::mark_logged(const Operation& op) {
  for (ThreadCtx& t : threads_) {
    if (t.tid != op.tid) continue;
    if (!t.op_active) {
      return "element logs an operation of t" + std::to_string(op.tid) +
             " which is not executing";
    }
    const Call& call = config_->programs[t.program].calls[t.call_idx];
    if (call.method != op.method || call.arg != op.arg) {
      return "element logs " + op.to_string() + " but t" +
             std::to_string(op.tid) + " is executing " + call.method.str() +
             "(" + call.arg.to_string() + ")";
    }
    if (t.op_logged) {
      return "operation of t" + std::to_string(op.tid) +
             " logged twice in T";
    }
    if (!op.ret) {
      return "element logs a pending return for t" + std::to_string(op.tid);
    }
    t.op_logged = true;
    t.op_logged_ret = *op.ret;
    return std::nullopt;
  }
  return "element logs unknown thread t" + std::to_string(op.tid);
}

void World::append_element(const CaElement& element) {
  note_global_effect();
  if (config_->record_trace) trace_.append(element);

  // Apply the composed view 𝔽 to obtain interface-level elements.
  CaTrace image;
  if (config_->view != nullptr) {
    CaTrace raw;
    raw.append(element);
    image = total_apply(*config_->view, raw);
  } else {
    image.append(element);
  }

  for (const CaElement& e : image.elements()) {
    if (config_->record_trace) viewed_trace_.append(e);
    // L3: interface-level replay.
    if (config_->spec != nullptr) {
      bool stepped = false;
      for (const CaStepResult& sr :
           config_->spec->step(view_state_, e.object(), e.ops())) {
        if (sr.element == e) {
          view_state_ = sr.next;
          stepped = true;
          break;
        }
      }
      if (!stepped) {
        report_violation("logged element rejected by the specification: " +
                         e.to_string());
        return;
      }
    }
    // L1: every member is a currently-executing, unlogged operation.
    for (const Operation& op : e.ops()) {
      if (auto why = mark_logged(op)) {
        report_violation(*why);
        return;
      }
    }
  }
}

void World::truncate(ThreadCtx& t) {
  note_global_effect();
  t.truncated = true;
}

bool World::all_done() const noexcept {
  for (const ThreadCtx& t : threads_) {
    if (!t.done(config_->programs[t.program].calls.size())) return false;
  }
  // Under TSO a terminal state must be drained: pending buffered writes
  // still have futures (their flush transitions), and the explorer keeps
  // offering those for completed threads, so this always terminates.
  return mem_.buffered_total() == 0;
}

void World::encode(std::vector<std::int64_t>& out) const {
  mem_.encode(out);
  for (const ThreadCtx& t : threads_) {
    out.push_back(static_cast<std::int64_t>(t.call_idx));
    out.push_back(t.pc);
    for (Word r : t.regs) out.push_back(r);
    out.push_back(t.choice);
    out.push_back((t.op_active ? 1 : 0) | (t.op_logged ? 2 : 0) |
                  (t.truncated ? 4 : 0) |
                  (static_cast<std::int64_t>(t.stage) << 3));
    out.push_back(static_cast<std::int64_t>(t.op_logged_ret.hash()));
    out.push_back(static_cast<std::int64_t>(t.oplog.size()));
    out.insert(out.end(), t.oplog.begin(), t.oplog.end());
    out.push_back(static_cast<std::int64_t>(t.emits));
    out.push_back(static_cast<std::int64_t>(t.retries));
  }
  out.push_back(static_cast<std::int64_t>(view_state_.size()));
  out.insert(out.end(), view_state_.begin(), view_state_.end());
  out.push_back(static_cast<std::int64_t>(events_));

  // Reclamation state: part of the configuration iff recycling (retired
  // sets, protections, and generations all shape future transitions).
  // Appended last so legacy encodings stay byte-identical.
  if (config_->recycle_addresses) {
    for (const ThreadCtx& t : threads_) {
      // Frozen-read logs exist only under recycling; they are replay
      // state (future return values depend on them), so they separate
      // states like the oplog does.
      out.push_back(static_cast<std::int64_t>(t.frozen.size()));
      out.insert(out.end(), t.frozen.begin(), t.frozen.end());
    }
    for (const ThreadReclaim& tr : reclaim_) {
      for (Word h : tr.hazards) out.push_back(h);
      out.push_back(tr.next_slot);
      out.push_back(static_cast<std::int64_t>(tr.records.size()));
      for (const ProtRecord& r : tr.records) {
        out.push_back(static_cast<std::int64_t>(r.cell));
        out.push_back(r.value);
        out.push_back(r.version);
      }
    }
    out.push_back(static_cast<std::int64_t>(retired_.size()));
    for (const RetiredBlock& r : retired_) {
      out.push_back(static_cast<std::int64_t>(r.block));
      out.push_back(r.cells);
      out.push_back(static_cast<std::int64_t>(r.graced_mask));
      out.push_back((r.grace ? 1 : 0) |
                    (static_cast<std::int64_t>(r.retirer) << 1));
    }
    out.push_back(static_cast<std::int64_t>(free_.size()));
    for (const auto& [a, n] : free_) {
      out.push_back(static_cast<std::int64_t>(a));
      out.push_back(n);
    }
    out.push_back(static_cast<std::int64_t>(alloc_cells_.size()));
    for (const auto& [a, n] : alloc_cells_) {
      out.push_back(static_cast<std::int64_t>(a));
      out.push_back(n);
    }
    // Generations, sparsely (they only move on protocol-cell CASes).
    std::int64_t nonzero = 0;
    for (std::uint32_t v : versions_) nonzero += (v != 0);
    out.push_back(nonzero);
    for (std::size_t a = 0; a < versions_.size(); ++a) {
      if (versions_[a] == 0) continue;
      out.push_back(static_cast<std::int64_t>(a));
      out.push_back(versions_[a]);
    }
  }
}

// --- WorldCanon -----------------------------------------------------------

namespace {

bool same_program(const ThreadProgram& a, const ThreadProgram& b) {
  if (a.calls.size() != b.calls.size()) return false;
  for (std::size_t k = 0; k < a.calls.size(); ++k) {
    if (a.calls[k].object != b.calls[k].object ||
        a.calls[k].method != b.calls[k].method ||
        a.calls[k].arg != b.calls[k].arg) {
      return false;
    }
  }
  return true;
}

// Word-token tags of the canonical encoding. Every emitted word is a
// (tag, payload...) group, so equal encodings decode to worlds equal up
// to the applied renaming — the rewriting is injective.
constexpr std::int64_t kTagRaw = 0;
constexpr std::int64_t kTagRef = 1;  ///< interchangeable-segment address
constexpr std::int64_t kTagTid = 2;  ///< interchangeable thread's tid

}  // namespace

WorldCanon::WorldCanon(const WorldConfig& config) {
  // Recycling breaks the segment-ownership premise of the renaming (a
  // promoted block migrates across thread heaps, and the reclamation
  // lists hold raw addresses the rewriter does not reach): fall back to
  // the identity encoding, which is always sound.
  if (config.recycle_addresses) return;
  threads_ = config.programs.size();
  heap_cells_ = config.heap_cells;
  heaps_base_ = static_cast<Addr>(1 + config.global_cells);
  mem_size_ = 1 + config.global_cells + threads_ * heap_cells_;

  // Classes: threads with identical call sequences, in index order.
  class_of_.assign(threads_, -1);
  for (std::size_t i = 0; i < threads_; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (same_program(config.programs[i], config.programs[j])) {
        class_of_[i] = class_of_[j];
        break;
      }
    }
    if (class_of_[i] < 0) {
      class_of_[i] = static_cast<int>(class_members_.size());
      class_members_.emplace_back();
    }
    class_members_[static_cast<std::size_t>(class_of_[i])].push_back(i);
  }

  interchangeable_.assign(threads_, false);
  bool any_multi = false;
  for (const auto& members : class_members_) {
    if (members.size() < 2) continue;
    any_multi = true;
    for (std::size_t i : members) interchangeable_[i] = true;
  }
  if (!any_multi) return;

  // Value discipline. Tids of interchangeable threads must not alias
  // addresses or small counters; no program argument may alias those tids
  // or an interchangeable heap segment (else word classification, and so
  // the renaming, would be ambiguous).
  for (std::size_t i = 0; i < threads_; ++i) {
    if (!interchangeable_[i]) continue;
    const Word tid = static_cast<Word>(config.programs[i].tid);
    if (tid >= 0 && tid < static_cast<Word>(mem_size_)) return;
    tid_to_thread_.emplace_back(tid, i);
  }
  const auto is_interchangeable_ref = [this](Word v) {
    if (v < static_cast<Word>(heaps_base_) ||
        v >= static_cast<Word>(mem_size_)) {
      return false;
    }
    const std::size_t t =
        (static_cast<std::size_t>(v) - heaps_base_) / heap_cells_;
    return bool{interchangeable_[t]};
  };
  for (const ThreadProgram& p : config.programs) {
    for (const Call& call : p.calls) {
      if (call.arg.kind() == Value::Kind::kUnit) continue;
      if (call.arg.kind() != Value::Kind::kInt) return;  // conservative
      const Word v = call.arg.as_int();
      if (is_interchangeable_ref(v)) return;
      for (const auto& [tid, idx] : tid_to_thread_) {
        if (v == tid) return;
      }
    }
  }
  active_ = true;
}

void WorldCanon::emit_word(Word w, bool abstract, std::size_t self,
                           const std::vector<std::size_t>& new_index,
                           std::vector<std::int64_t>& out) const {
  if (w >= static_cast<Word>(heaps_base_) &&
      w < static_cast<Word>(mem_size_)) {
    const std::size_t t =
        (static_cast<std::size_t>(w) - heaps_base_) / heap_cells_;
    if (interchangeable_[t]) {
      const Word off = w - static_cast<Word>(heaps_base_ +
                                             t * heap_cells_);
      out.push_back(kTagRef);
      // For the sort key the target's identity is abstracted to its class
      // (plus a self bit); ties between references to distinct siblings
      // only cost merges (under-approximation), never soundness.
      out.push_back(abstract ? static_cast<std::int64_t>(class_of_[t])
                             : static_cast<std::int64_t>(new_index[t]));
      if (abstract) out.push_back(t == self ? 1 : 0);
      out.push_back(off);
      return;
    }
  }
  for (const auto& [tid, t] : tid_to_thread_) {
    if (w == tid) {
      out.push_back(kTagTid);
      out.push_back(abstract ? static_cast<std::int64_t>(class_of_[t])
                             : static_cast<std::int64_t>(new_index[t]));
      if (abstract) out.push_back(t == self ? 1 : 0);
      return;
    }
  }
  out.push_back(kTagRaw);
  out.push_back(w);
}

void WorldCanon::emit_thread(const World& world, std::size_t i,
                             bool abstract,
                             const std::vector<std::size_t>& new_index,
                             std::vector<std::int64_t>& out) const {
  const ThreadCtx& t = world.threads()[i];
  const SimMemory& mem = world.memory();
  // Structural counters are emitted raw (they are never addresses or
  // tids); registers, oplog entries, and heap cells hold arbitrary words
  // and go through the token rewriter.
  out.push_back(static_cast<std::int64_t>(t.call_idx));
  out.push_back(t.pc);
  for (Word r : t.regs) emit_word(r, abstract, i, new_index, out);
  out.push_back(t.choice);
  out.push_back((t.op_active ? 1 : 0) | (t.op_logged ? 2 : 0) |
                (t.truncated ? 4 : 0) |
                (static_cast<std::int64_t>(t.stage) << 3));
  out.push_back(static_cast<std::int64_t>(t.op_logged_ret.hash()));
  out.push_back(static_cast<std::int64_t>(t.oplog.size()));
  for (Word w : t.oplog) emit_word(w, abstract, i, new_index, out);
  out.push_back(static_cast<std::int64_t>(t.emits));
  out.push_back(static_cast<std::int64_t>(t.retries));
  // TSO store buffer: FIFO of (addr, value). Addresses may reference an
  // interchangeable heap segment and values may be tids, so both go
  // through the token rewriter like cells do.
  const auto& buf = mem.buffer(static_cast<std::uint32_t>(i));
  out.push_back(static_cast<std::int64_t>(buf.size()));
  for (const SimMemory::BufferedWrite& w : buf) {
    emit_word(static_cast<Word>(w.addr), abstract, i, new_index, out);
    emit_word(w.value, abstract, i, new_index, out);
  }
  out.push_back(static_cast<std::int64_t>(mem.heap_next(i)));
  const Addr base = mem.segment_base(i);
  for (std::size_t c = 0; c < heap_cells_; ++c) {
    emit_word(mem.cell(base + static_cast<Addr>(c)), abstract, i, new_index,
              out);
  }
}

void WorldCanon::encode(const World& world, std::uint64_t sleep_mask,
                        std::vector<std::int64_t>& out,
                        bool& renamed) const {
  renamed = false;
  if (!active_) {
    world.encode(out);
    out.push_back(static_cast<std::int64_t>(sleep_mask));
    return;
  }

  // Pick the permutation: within each multi-member class, order members
  // by their abstracted (renaming-invariant) state. The permutation maps
  // class members onto the class's own slots; unique threads stay put.
  static const std::vector<std::size_t> kNoIndex;
  std::vector<std::size_t> order(threads_);
  for (std::size_t i = 0; i < threads_; ++i) order[i] = i;
  std::vector<std::vector<std::int64_t>> keys(threads_);
  for (const auto& members : class_members_) {
    if (members.size() < 2) continue;
    for (std::size_t i : members) {
      emit_thread(world, i, /*abstract=*/true, kNoIndex, keys[i]);
    }
    std::vector<std::size_t> sorted = members;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&keys](std::size_t a, std::size_t b) {
                       return keys[a] < keys[b];
                     });
    for (std::size_t k = 0; k < members.size(); ++k) {
      order[members[k]] = sorted[k];  // slot members[k] holds sorted[k]
    }
  }
  std::vector<std::size_t> new_index(threads_);
  for (std::size_t slot = 0; slot < threads_; ++slot) {
    new_index[order[slot]] = slot;
    if (order[slot] != slot) renamed = true;
  }

  // Emit the renamed world: globals, threads in permuted order, view
  // state, events, and the permuted sleep mask.
  const SimMemory& mem = world.memory();
  out.push_back(static_cast<std::int64_t>(mem.globals_used()));
  for (Addr a = 1; a < heaps_base_; ++a) {
    emit_word(mem.cell(a), /*abstract=*/false, threads_, new_index, out);
  }
  for (std::size_t slot = 0; slot < threads_; ++slot) {
    emit_thread(world, order[slot], /*abstract=*/false, new_index, out);
  }
  const SpecState& view = world.view_state();
  out.push_back(static_cast<std::int64_t>(view.size()));
  out.insert(out.end(), view.begin(), view.end());
  out.push_back(static_cast<std::int64_t>(world.events()));
  std::uint64_t permuted_sleep = 0;
  for (std::size_t i = 0; i < threads_ && i < 64; ++i) {
    if ((sleep_mask >> i) & 1u) permuted_sleep |= (1ull << new_index[i]);
  }
  out.push_back(static_cast<std::int64_t>(permuted_sleep));
}

}  // namespace cal::sched
