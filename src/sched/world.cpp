#include "sched/world.hpp"

#include <algorithm>

namespace cal::sched {

World::World(const WorldConfig& config)
    : config_(&config),
      mem_(config.programs.size(), config.heap_cells, config.global_cells,
           config.memory_model) {
  threads_.reserve(config.programs.size());
  for (std::size_t i = 0; i < config.programs.size(); ++i) {
    ThreadCtx t;
    t.tid = config.programs[i].tid;
    t.program = i;
    threads_.push_back(t);
  }
  if (config_->spec != nullptr) view_state_ = config_->spec->initial();
}

void World::invoke(ThreadCtx& t) {
  note_global_effect();
  const ThreadProgram& prog = config_->programs[t.program];
  const Call& call = prog.calls[t.call_idx];
  if (t.op_active) {
    report_violation("thread invoked while an operation is active");
    return;
  }
  t.op_active = true;
  t.op_logged = false;
  t.op_logged_ret = Value::unit();
  if (config_->record_history) {
    history_.invoke(t.tid, object_symbol(t), call.method, call.arg);
  }
}

void World::respond(ThreadCtx& t, Value ret) {
  note_global_effect();
  const ThreadProgram& prog = config_->programs[t.program];
  const Call& call = prog.calls[t.call_idx];
  if (!t.op_active) {
    report_violation("response without active operation");
    return;
  }
  // L2: the operation must have been logged, with exactly this result.
  if (config_->spec != nullptr) {
    if (!t.op_logged) {
      report_violation("t" + std::to_string(t.tid) + " returns " +
                       ret.to_string() + " from " + call.method.str() +
                       " but its operation was never logged in T");
      return;
    }
    if (t.op_logged_ret != ret) {
      report_violation(
          "t" + std::to_string(t.tid) + " returns " + ret.to_string() +
          " but T logged " + t.op_logged_ret.to_string() +
          " for its " + call.method.str() + " operation");
      return;
    }
  }
  if (config_->record_history) {
    history_.respond(t.tid, object_symbol(t), call.method, ret);
  }
  t.op_active = false;
  t.op_logged = false;
  t.call_idx += 1;
  t.pc = 0;
  t.regs = {};
  t.oplog.clear();
  t.emits = 0;
  t.retries = 0;
  t.stage = ThreadStage::kIdle;
}

std::optional<std::string> World::mark_logged(const Operation& op) {
  for (ThreadCtx& t : threads_) {
    if (t.tid != op.tid) continue;
    if (!t.op_active) {
      return "element logs an operation of t" + std::to_string(op.tid) +
             " which is not executing";
    }
    const Call& call = config_->programs[t.program].calls[t.call_idx];
    if (call.method != op.method || call.arg != op.arg) {
      return "element logs " + op.to_string() + " but t" +
             std::to_string(op.tid) + " is executing " + call.method.str() +
             "(" + call.arg.to_string() + ")";
    }
    if (t.op_logged) {
      return "operation of t" + std::to_string(op.tid) +
             " logged twice in T";
    }
    if (!op.ret) {
      return "element logs a pending return for t" + std::to_string(op.tid);
    }
    t.op_logged = true;
    t.op_logged_ret = *op.ret;
    return std::nullopt;
  }
  return "element logs unknown thread t" + std::to_string(op.tid);
}

void World::append_element(const CaElement& element) {
  note_global_effect();
  if (config_->record_trace) trace_.append(element);

  // Apply the composed view 𝔽 to obtain interface-level elements.
  CaTrace image;
  if (config_->view != nullptr) {
    CaTrace raw;
    raw.append(element);
    image = total_apply(*config_->view, raw);
  } else {
    image.append(element);
  }

  for (const CaElement& e : image.elements()) {
    if (config_->record_trace) viewed_trace_.append(e);
    // L3: interface-level replay.
    if (config_->spec != nullptr) {
      bool stepped = false;
      for (const CaStepResult& sr :
           config_->spec->step(view_state_, e.object(), e.ops())) {
        if (sr.element == e) {
          view_state_ = sr.next;
          stepped = true;
          break;
        }
      }
      if (!stepped) {
        report_violation("logged element rejected by the specification: " +
                         e.to_string());
        return;
      }
    }
    // L1: every member is a currently-executing, unlogged operation.
    for (const Operation& op : e.ops()) {
      if (auto why = mark_logged(op)) {
        report_violation(*why);
        return;
      }
    }
  }
}

void World::truncate(ThreadCtx& t) {
  note_global_effect();
  t.truncated = true;
}

bool World::all_done() const noexcept {
  for (const ThreadCtx& t : threads_) {
    if (!t.done(config_->programs[t.program].calls.size())) return false;
  }
  // Under TSO a terminal state must be drained: pending buffered writes
  // still have futures (their flush transitions), and the explorer keeps
  // offering those for completed threads, so this always terminates.
  return mem_.buffered_total() == 0;
}

void World::encode(std::vector<std::int64_t>& out) const {
  mem_.encode(out);
  for (const ThreadCtx& t : threads_) {
    out.push_back(static_cast<std::int64_t>(t.call_idx));
    out.push_back(t.pc);
    for (Word r : t.regs) out.push_back(r);
    out.push_back(t.choice);
    out.push_back((t.op_active ? 1 : 0) | (t.op_logged ? 2 : 0) |
                  (t.truncated ? 4 : 0) |
                  (static_cast<std::int64_t>(t.stage) << 3));
    out.push_back(static_cast<std::int64_t>(t.op_logged_ret.hash()));
    out.push_back(static_cast<std::int64_t>(t.oplog.size()));
    out.insert(out.end(), t.oplog.begin(), t.oplog.end());
    out.push_back(static_cast<std::int64_t>(t.emits));
    out.push_back(static_cast<std::int64_t>(t.retries));
  }
  out.push_back(static_cast<std::int64_t>(view_state_.size()));
  out.insert(out.end(), view_state_.begin(), view_state_.end());
  out.push_back(static_cast<std::int64_t>(events_));
}

// --- WorldCanon -----------------------------------------------------------

namespace {

bool same_program(const ThreadProgram& a, const ThreadProgram& b) {
  if (a.calls.size() != b.calls.size()) return false;
  for (std::size_t k = 0; k < a.calls.size(); ++k) {
    if (a.calls[k].object != b.calls[k].object ||
        a.calls[k].method != b.calls[k].method ||
        a.calls[k].arg != b.calls[k].arg) {
      return false;
    }
  }
  return true;
}

// Word-token tags of the canonical encoding. Every emitted word is a
// (tag, payload...) group, so equal encodings decode to worlds equal up
// to the applied renaming — the rewriting is injective.
constexpr std::int64_t kTagRaw = 0;
constexpr std::int64_t kTagRef = 1;  ///< interchangeable-segment address
constexpr std::int64_t kTagTid = 2;  ///< interchangeable thread's tid

}  // namespace

WorldCanon::WorldCanon(const WorldConfig& config) {
  threads_ = config.programs.size();
  heap_cells_ = config.heap_cells;
  heaps_base_ = static_cast<Addr>(1 + config.global_cells);
  mem_size_ = 1 + config.global_cells + threads_ * heap_cells_;

  // Classes: threads with identical call sequences, in index order.
  class_of_.assign(threads_, -1);
  for (std::size_t i = 0; i < threads_; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (same_program(config.programs[i], config.programs[j])) {
        class_of_[i] = class_of_[j];
        break;
      }
    }
    if (class_of_[i] < 0) {
      class_of_[i] = static_cast<int>(class_members_.size());
      class_members_.emplace_back();
    }
    class_members_[static_cast<std::size_t>(class_of_[i])].push_back(i);
  }

  interchangeable_.assign(threads_, false);
  bool any_multi = false;
  for (const auto& members : class_members_) {
    if (members.size() < 2) continue;
    any_multi = true;
    for (std::size_t i : members) interchangeable_[i] = true;
  }
  if (!any_multi) return;

  // Value discipline. Tids of interchangeable threads must not alias
  // addresses or small counters; no program argument may alias those tids
  // or an interchangeable heap segment (else word classification, and so
  // the renaming, would be ambiguous).
  for (std::size_t i = 0; i < threads_; ++i) {
    if (!interchangeable_[i]) continue;
    const Word tid = static_cast<Word>(config.programs[i].tid);
    if (tid >= 0 && tid < static_cast<Word>(mem_size_)) return;
    tid_to_thread_.emplace_back(tid, i);
  }
  const auto is_interchangeable_ref = [this](Word v) {
    if (v < static_cast<Word>(heaps_base_) ||
        v >= static_cast<Word>(mem_size_)) {
      return false;
    }
    const std::size_t t =
        (static_cast<std::size_t>(v) - heaps_base_) / heap_cells_;
    return bool{interchangeable_[t]};
  };
  for (const ThreadProgram& p : config.programs) {
    for (const Call& call : p.calls) {
      if (call.arg.kind() == Value::Kind::kUnit) continue;
      if (call.arg.kind() != Value::Kind::kInt) return;  // conservative
      const Word v = call.arg.as_int();
      if (is_interchangeable_ref(v)) return;
      for (const auto& [tid, idx] : tid_to_thread_) {
        if (v == tid) return;
      }
    }
  }
  active_ = true;
}

void WorldCanon::emit_word(Word w, bool abstract, std::size_t self,
                           const std::vector<std::size_t>& new_index,
                           std::vector<std::int64_t>& out) const {
  if (w >= static_cast<Word>(heaps_base_) &&
      w < static_cast<Word>(mem_size_)) {
    const std::size_t t =
        (static_cast<std::size_t>(w) - heaps_base_) / heap_cells_;
    if (interchangeable_[t]) {
      const Word off = w - static_cast<Word>(heaps_base_ +
                                             t * heap_cells_);
      out.push_back(kTagRef);
      // For the sort key the target's identity is abstracted to its class
      // (plus a self bit); ties between references to distinct siblings
      // only cost merges (under-approximation), never soundness.
      out.push_back(abstract ? static_cast<std::int64_t>(class_of_[t])
                             : static_cast<std::int64_t>(new_index[t]));
      if (abstract) out.push_back(t == self ? 1 : 0);
      out.push_back(off);
      return;
    }
  }
  for (const auto& [tid, t] : tid_to_thread_) {
    if (w == tid) {
      out.push_back(kTagTid);
      out.push_back(abstract ? static_cast<std::int64_t>(class_of_[t])
                             : static_cast<std::int64_t>(new_index[t]));
      if (abstract) out.push_back(t == self ? 1 : 0);
      return;
    }
  }
  out.push_back(kTagRaw);
  out.push_back(w);
}

void WorldCanon::emit_thread(const World& world, std::size_t i,
                             bool abstract,
                             const std::vector<std::size_t>& new_index,
                             std::vector<std::int64_t>& out) const {
  const ThreadCtx& t = world.threads()[i];
  const SimMemory& mem = world.memory();
  // Structural counters are emitted raw (they are never addresses or
  // tids); registers, oplog entries, and heap cells hold arbitrary words
  // and go through the token rewriter.
  out.push_back(static_cast<std::int64_t>(t.call_idx));
  out.push_back(t.pc);
  for (Word r : t.regs) emit_word(r, abstract, i, new_index, out);
  out.push_back(t.choice);
  out.push_back((t.op_active ? 1 : 0) | (t.op_logged ? 2 : 0) |
                (t.truncated ? 4 : 0) |
                (static_cast<std::int64_t>(t.stage) << 3));
  out.push_back(static_cast<std::int64_t>(t.op_logged_ret.hash()));
  out.push_back(static_cast<std::int64_t>(t.oplog.size()));
  for (Word w : t.oplog) emit_word(w, abstract, i, new_index, out);
  out.push_back(static_cast<std::int64_t>(t.emits));
  out.push_back(static_cast<std::int64_t>(t.retries));
  // TSO store buffer: FIFO of (addr, value). Addresses may reference an
  // interchangeable heap segment and values may be tids, so both go
  // through the token rewriter like cells do.
  const auto& buf = mem.buffer(static_cast<std::uint32_t>(i));
  out.push_back(static_cast<std::int64_t>(buf.size()));
  for (const SimMemory::BufferedWrite& w : buf) {
    emit_word(static_cast<Word>(w.addr), abstract, i, new_index, out);
    emit_word(w.value, abstract, i, new_index, out);
  }
  out.push_back(static_cast<std::int64_t>(mem.heap_next(i)));
  const Addr base = mem.segment_base(i);
  for (std::size_t c = 0; c < heap_cells_; ++c) {
    emit_word(mem.cell(base + static_cast<Addr>(c)), abstract, i, new_index,
              out);
  }
}

void WorldCanon::encode(const World& world, std::uint64_t sleep_mask,
                        std::vector<std::int64_t>& out,
                        bool& renamed) const {
  renamed = false;
  if (!active_) {
    world.encode(out);
    out.push_back(static_cast<std::int64_t>(sleep_mask));
    return;
  }

  // Pick the permutation: within each multi-member class, order members
  // by their abstracted (renaming-invariant) state. The permutation maps
  // class members onto the class's own slots; unique threads stay put.
  static const std::vector<std::size_t> kNoIndex;
  std::vector<std::size_t> order(threads_);
  for (std::size_t i = 0; i < threads_; ++i) order[i] = i;
  std::vector<std::vector<std::int64_t>> keys(threads_);
  for (const auto& members : class_members_) {
    if (members.size() < 2) continue;
    for (std::size_t i : members) {
      emit_thread(world, i, /*abstract=*/true, kNoIndex, keys[i]);
    }
    std::vector<std::size_t> sorted = members;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&keys](std::size_t a, std::size_t b) {
                       return keys[a] < keys[b];
                     });
    for (std::size_t k = 0; k < members.size(); ++k) {
      order[members[k]] = sorted[k];  // slot members[k] holds sorted[k]
    }
  }
  std::vector<std::size_t> new_index(threads_);
  for (std::size_t slot = 0; slot < threads_; ++slot) {
    new_index[order[slot]] = slot;
    if (order[slot] != slot) renamed = true;
  }

  // Emit the renamed world: globals, threads in permuted order, view
  // state, events, and the permuted sleep mask.
  const SimMemory& mem = world.memory();
  out.push_back(static_cast<std::int64_t>(mem.globals_used()));
  for (Addr a = 1; a < heaps_base_; ++a) {
    emit_word(mem.cell(a), /*abstract=*/false, threads_, new_index, out);
  }
  for (std::size_t slot = 0; slot < threads_; ++slot) {
    emit_thread(world, order[slot], /*abstract=*/false, new_index, out);
  }
  const SpecState& view = world.view_state();
  out.push_back(static_cast<std::int64_t>(view.size()));
  out.insert(out.end(), view.begin(), view.end());
  out.push_back(static_cast<std::int64_t>(world.events()));
  std::uint64_t permuted_sleep = 0;
  for (std::size_t i = 0; i < threads_ && i < 64; ++i) {
    if ((sleep_mask >> i) & 1u) permuted_sleep |= (1ull << new_index[i]);
  }
  out.push_back(static_cast<std::int64_t>(permuted_sleep));
}

}  // namespace cal::sched
