#include "sched/world.hpp"

namespace cal::sched {

World::World(const WorldConfig& config)
    : config_(&config),
      mem_(config.programs.size(), config.heap_cells, config.global_cells) {
  threads_.reserve(config.programs.size());
  for (std::size_t i = 0; i < config.programs.size(); ++i) {
    ThreadCtx t;
    t.tid = config.programs[i].tid;
    t.program = i;
    threads_.push_back(t);
  }
  if (config_->spec != nullptr) view_state_ = config_->spec->initial();
}

void World::invoke(ThreadCtx& t) {
  const ThreadProgram& prog = config_->programs[t.program];
  const Call& call = prog.calls[t.call_idx];
  if (t.op_active) {
    report_violation("thread invoked while an operation is active");
    return;
  }
  t.op_active = true;
  t.op_logged = false;
  t.op_logged_ret = Value::unit();
  if (config_->record_history) {
    history_.invoke(t.tid, object_symbol(t), call.method, call.arg);
  }
}

void World::respond(ThreadCtx& t, Value ret) {
  const ThreadProgram& prog = config_->programs[t.program];
  const Call& call = prog.calls[t.call_idx];
  if (!t.op_active) {
    report_violation("response without active operation");
    return;
  }
  // L2: the operation must have been logged, with exactly this result.
  if (config_->spec != nullptr) {
    if (!t.op_logged) {
      report_violation("t" + std::to_string(t.tid) + " returns " +
                       ret.to_string() + " from " + call.method.str() +
                       " but its operation was never logged in T");
      return;
    }
    if (t.op_logged_ret != ret) {
      report_violation(
          "t" + std::to_string(t.tid) + " returns " + ret.to_string() +
          " but T logged " + t.op_logged_ret.to_string() +
          " for its " + call.method.str() + " operation");
      return;
    }
  }
  if (config_->record_history) {
    history_.respond(t.tid, object_symbol(t), call.method, ret);
  }
  t.op_active = false;
  t.op_logged = false;
  t.call_idx += 1;
  t.pc = 0;
  t.regs = {};
  t.oplog.clear();
  t.emits = 0;
  t.retries = 0;
  t.stage = ThreadStage::kIdle;
}

std::optional<std::string> World::mark_logged(const Operation& op) {
  for (ThreadCtx& t : threads_) {
    if (t.tid != op.tid) continue;
    if (!t.op_active) {
      return "element logs an operation of t" + std::to_string(op.tid) +
             " which is not executing";
    }
    const Call& call = config_->programs[t.program].calls[t.call_idx];
    if (call.method != op.method || call.arg != op.arg) {
      return "element logs " + op.to_string() + " but t" +
             std::to_string(op.tid) + " is executing " + call.method.str() +
             "(" + call.arg.to_string() + ")";
    }
    if (t.op_logged) {
      return "operation of t" + std::to_string(op.tid) +
             " logged twice in T";
    }
    if (!op.ret) {
      return "element logs a pending return for t" + std::to_string(op.tid);
    }
    t.op_logged = true;
    t.op_logged_ret = *op.ret;
    return std::nullopt;
  }
  return "element logs unknown thread t" + std::to_string(op.tid);
}

void World::append_element(const CaElement& element) {
  if (config_->record_trace) trace_.append(element);

  // Apply the composed view 𝔽 to obtain interface-level elements.
  CaTrace image;
  if (config_->view != nullptr) {
    CaTrace raw;
    raw.append(element);
    image = total_apply(*config_->view, raw);
  } else {
    image.append(element);
  }

  for (const CaElement& e : image.elements()) {
    if (config_->record_trace) viewed_trace_.append(e);
    // L3: interface-level replay.
    if (config_->spec != nullptr) {
      bool stepped = false;
      for (const CaStepResult& sr :
           config_->spec->step(view_state_, e.object(), e.ops())) {
        if (sr.element == e) {
          view_state_ = sr.next;
          stepped = true;
          break;
        }
      }
      if (!stepped) {
        report_violation("logged element rejected by the specification: " +
                         e.to_string());
        return;
      }
    }
    // L1: every member is a currently-executing, unlogged operation.
    for (const Operation& op : e.ops()) {
      if (auto why = mark_logged(op)) {
        report_violation(*why);
        return;
      }
    }
  }
}

void World::truncate(ThreadCtx& t) { t.truncated = true; }

bool World::all_done() const noexcept {
  for (const ThreadCtx& t : threads_) {
    if (!t.done(config_->programs[t.program].calls.size())) return false;
  }
  return true;
}

void World::encode(std::vector<std::int64_t>& out) const {
  mem_.encode(out);
  for (const ThreadCtx& t : threads_) {
    out.push_back(static_cast<std::int64_t>(t.call_idx));
    out.push_back(t.pc);
    for (Word r : t.regs) out.push_back(r);
    out.push_back(t.choice);
    out.push_back((t.op_active ? 1 : 0) | (t.op_logged ? 2 : 0) |
                  (t.truncated ? 4 : 0) |
                  (static_cast<std::int64_t>(t.stage) << 3));
    out.push_back(static_cast<std::int64_t>(t.op_logged_ret.hash()));
    out.push_back(static_cast<std::int64_t>(t.oplog.size()));
    out.insert(out.end(), t.oplog.begin(), t.oplog.end());
    out.push_back(static_cast<std::int64_t>(t.emits));
    out.push_back(static_cast<std::int64_t>(t.retries));
  }
  out.push_back(static_cast<std::int64_t>(view_state_.size()));
  out.insert(out.end(), view_state_.begin(), view_state_.end());
  out.push_back(static_cast<std::int64_t>(events_));
}

}  // namespace cal::sched
