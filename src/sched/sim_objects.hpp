// The simulated CA-objects: every algorithm in objects/core/, instantiated
// with SimEnv and adapted to the explorer through EnvSimObject. These
// replace the four hand-written step machines (and add the four objects
// that never had one): the explorer now executes the *same* template
// bodies as the real runtime, so there is no code/model gap left to argue
// away.
//
// Each adapter owns only immutable identity (names, global-cell addresses
// allocated in init(), retry bounds, fault-injection hooks); all mutable
// state lives in the World, as SimObject requires.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cal/specs/elim_views.hpp"
#include "objects/core/elim_stack_core.hpp"
#include "objects/core/exchanger_core.hpp"
#include "objects/core/ms_queue_core.hpp"
#include "objects/core/pq_core.hpp"
#include "objects/core/snapshot_core.hpp"
#include "objects/core/stack_core.hpp"
#include "objects/core/sync_queue_core.hpp"
#include "sched/sim_env.hpp"

namespace cal::sched {

namespace core = objects::core;

/// The Fig. 1 exchanger. No retry loop: every attempt completes.
/// Subclassable so mutation tests can swap in a broken attempt body over
/// the same cells (the auditor only needs the addresses and the name).
class SimExchanger : public EnvSimObject {
 public:
  explicit SimExchanger(Symbol name, Symbol method = Symbol("exchange"))
      : EnvSimObject(0), name_(name), method_(method) {}

  void init(World& world) override {
    refs_.g = world.alloc_global(1);
    refs_.fail = world.alloc_global(core::kOfferCells);
  }

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  /// Address of the global offer slot g (for the rely/guarantee auditor).
  [[nodiscard]] Addr g_addr() const noexcept {
    return static_cast<Addr>(refs_.g);
  }
  /// Address of the fail sentinel offer.
  [[nodiscard]] Addr fail_addr() const noexcept {
    return static_cast<Addr>(refs_.fail);
  }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    const Call& call = current_call(world, t);
    const core::ExchangeOutcome r = core::exchange(
        env, refs_, name_, method_, t.tid, call.arg.as_int(), /*spins=*/0);
    return {Status::kDone, Value::pair(r.ok, r.value)};
  }

  [[nodiscard]] const core::ExchangerRefs& refs() const noexcept {
    return refs_;
  }

 private:
  Symbol name_;
  Symbol method_;
  core::ExchangerRefs refs_;
};

/// The single-attempt central stack (Fig. 2 class Stack): push/pop try one
/// CAS and report failure under contention.
class SimCentralStack final : public EnvSimObject {
 public:
  explicit SimCentralStack(Symbol name) : EnvSimObject(0), name_(name) {}

  void init(World& world) override { refs_.top = world.alloc_global(1); }

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] Addr top_addr() const noexcept {
    return static_cast<Addr>(refs_.top);
  }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    static const Symbol kPush{"push"};
    const Call& call = current_call(world, t);
    if (call.method == kPush) {
      const bool ok =
          core::stack_push_attempt(env, refs_, name_, t.tid,
                                   call.arg.as_int());
      return {Status::kDone, Value::boolean(ok)};
    }
    const core::StackPopOutcome r =
        core::stack_pop_attempt(env, refs_, name_, t.tid);
    if (r.kind == core::StackPop::kGot) {
      return {Status::kDone, Value::pair(true, r.value)};
    }
    return {Status::kDone, Value::pair(false, 0)};
  }

 private:
  Symbol name_;
  core::StackRefs refs_;
};

/// The elimination stack (Fig. 2): central-stack attempts interleaved with
/// striped exchanges, retry-bounded (exceeding the budget truncates the
/// thread; its operation stays pending).
class SimElimStack final : public EnvSimObject {
 public:
  SimElimStack(Symbol es, Symbol s, Symbol ar, std::size_t width,
               std::size_t retry_bound = 2)
      : EnvSimObject(retry_bound), es_(es), s_(s), ar_(ar), width_(width) {
    slot_names_.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      slot_names_.push_back(elim_slot_name(ar, i));
    }
  }

  void init(World& world) override {
    stack_refs_.top = world.alloc_global(1);
    slot_refs_.clear();
    slot_refs_.reserve(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      core::ExchangerRefs r;
      r.g = world.alloc_global(1);
      r.fail = world.alloc_global(core::kOfferCells);
      slot_refs_.push_back(r);
    }
  }

  /// Drops Fig. 2 line 35's d == POP_SENTINAL check (the DropsPushMutant):
  /// a push then accepts pairing with another push.
  void set_accept_any_exchange(bool on) noexcept { accept_any_ = on; }

  [[nodiscard]] Symbol name() const noexcept { return es_; }
  [[nodiscard]] Symbol stack_name() const noexcept { return s_; }
  [[nodiscard]] Symbol array_name() const noexcept { return ar_; }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] Addr top_addr() const noexcept {
    return static_cast<Addr>(stack_refs_.top);
  }
  [[nodiscard]] Addr slot_g_addr(std::size_t i) const {
    return static_cast<Addr>(slot_refs_[i].g);
  }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    static const Symbol kPush{"push"};
    const Call& call = current_call(world, t);
    if (call.method == kPush) {
      const core::ElimAttempt a = core::elim_push_attempt(
          env, stack_refs_, slot_refs_.data(), slot_names_.data(), width_,
          s_, t.tid, call.arg.as_int(), /*spins=*/0, accept_any_);
      if (a == core::ElimAttempt::kRetry) return {Status::kRetry, Value()};
      return {Status::kDone, Value::boolean(true)};
    }
    const core::ElimPopOutcome r = core::elim_pop_attempt(
        env, stack_refs_, slot_refs_.data(), slot_names_.data(), width_, s_,
        t.tid, /*spins=*/0);
    if (r.kind == core::ElimAttempt::kRetry) return {Status::kRetry, Value()};
    return {Status::kDone, Value::pair(true, r.value)};
  }

 private:
  Symbol es_;
  Symbol s_;
  Symbol ar_;
  std::size_t width_;
  bool accept_any_ = false;
  core::StackRefs stack_refs_;
  std::vector<core::ExchangerRefs> slot_refs_;
  std::vector<Symbol> slot_names_;
};

/// The dual synchronous queue: retry-bounded transfer attempts.
class SimSyncQueue final : public EnvSimObject {
 public:
  explicit SimSyncQueue(Symbol name, std::size_t retry_bound = 2)
      : EnvSimObject(retry_bound), name_(name) {}

  void init(World& world) override {
    refs_.top = world.alloc_global(1);
    refs_.cancelled = world.alloc_global(core::kNodeCells);
  }

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] Addr top_addr() const noexcept {
    return static_cast<Addr>(refs_.top);
  }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    static const Symbol kPut{"put"};
    const Call& call = current_call(world, t);
    const bool is_put = call.method == kPut;
    const SimEnv::Word mode = is_put ? core::kModeData : core::kModeRequest;
    const SimEnv::Word v = is_put ? call.arg.as_int() : 0;
    const core::SyncTransferOutcome r = core::sync_queue_transfer_attempt(
        env, refs_, name_, t.tid, mode, v, /*spins=*/0);
    switch (r.kind) {
      case core::SyncTransfer::kPaired:
        return {Status::kDone, is_put ? Value::boolean(true)
                                      : Value::pair(true, r.received)};
      case core::SyncTransfer::kTimedOut:
        return {Status::kDone,
                is_put ? Value::boolean(false) : Value::pair(false, 0)};
      case core::SyncTransfer::kRetry:
        break;
    }
    return {Status::kRetry, Value()};
  }

 private:
  Symbol name_;
  core::SyncQueueRefs refs_;
};

/// The Michael–Scott queue — the "ordinary object" control.
class SimMsQueue final : public EnvSimObject {
 public:
  explicit SimMsQueue(Symbol name, std::size_t retry_bound = 2)
      : EnvSimObject(retry_bound), name_(name) {}

  void init(World& world) override {
    refs_.head = world.alloc_global(1);
    refs_.tail = world.alloc_global(1);
    const Addr dummy = world.alloc_global(core::kQNodeCells);
    world.write(static_cast<Addr>(refs_.head), dummy);
    world.write(static_cast<Addr>(refs_.tail), dummy);
  }

  [[nodiscard]] Symbol name() const noexcept { return name_; }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    static const Symbol kEnq{"enq"};
    const Call& call = current_call(world, t);
    if (call.method == kEnq) {
      if (core::ms_queue_enq_attempt(env, refs_, name_, t.tid,
                                     call.arg.as_int())) {
        return {Status::kDone, Value::boolean(true)};
      }
      return {Status::kRetry, Value()};
    }
    const core::MsQueueDeqOutcome r =
        core::ms_queue_deq_attempt(env, refs_, name_, t.tid);
    switch (r.kind) {
      case core::MsQueueDeq::kGot:
        return {Status::kDone, Value::pair(true, r.value)};
      case core::MsQueueDeq::kEmpty:
        return {Status::kDone, Value::pair(false, 0)};
      case core::MsQueueDeq::kRetry:
        break;
    }
    return {Status::kRetry, Value()};
  }

 private:
  Symbol name_;
  core::MsQueueRefs refs_;
};

/// The bucket-array priority queue (objects/core/pq_core.hpp).
/// Subclassable so the priority-ordering mutants can swap in a broken
/// deleteMin body over the same cells. Note that a successful deleteMin
/// has no fixed linearization point (see the core's header comment), so
/// exhaustive explorations of this object check terminal histories through
/// ExploreOptions::check_spec rather than the online element-wise replay
/// (WorldConfig::spec), like the immediate snapshot.
class SimPriorityQueue : public EnvSimObject {
 public:
  SimPriorityQueue(Symbol name, std::size_t buckets,
                   std::size_t retry_bound = 2)
      : EnvSimObject(retry_bound), name_(name), buckets_(buckets) {}

  void init(World& world) override {
    refs_.count = world.alloc_global(1);
    refs_.tops = world.alloc_global(buckets_);
  }

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] std::size_t buckets() const noexcept { return buckets_; }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    static const Symbol kInsert{"insert"};
    const Call& call = current_call(world, t);
    if (call.method == kInsert) {
      if (core::pq_insert_attempt(env, refs_, name_, t.tid,
                                  call.arg.as_int())) {
        return {Status::kDone, Value::boolean(true)};
      }
      return {Status::kRetry, Value()};
    }
    const core::PqDeleteOutcome r = core::pq_delete_min_attempt(
        env, refs_, static_cast<SimEnv::Word>(buckets_), name_, t.tid);
    switch (r.kind) {
      case core::PqDelete::kGot:
        return {Status::kDone, Value::pair(true, r.value)};
      case core::PqDelete::kEmpty:
        return {Status::kDone, Value::pair(false, 0)};
      case core::PqDelete::kRetry:
        break;
    }
    return {Status::kRetry, Value()};
  }

  [[nodiscard]] const core::PqRefs& refs() const noexcept { return refs_; }

 private:
  Symbol name_;
  std::size_t buckets_;
  core::PqRefs refs_;
};

/// The striped elimination array / rendezvous meeting point, standalone:
/// a single exchange on a chosen slot (the explorer forks on the choice).
class SimStripedExchanger : public EnvSimObject {
 public:
  /// Slots are named elim_slot_name(name, i), except a width-1 object logs
  /// under its own name (matching objects/rendezvous.hpp).
  SimStripedExchanger(Symbol name, Symbol method, std::size_t width)
      : EnvSimObject(0), name_(name), method_(method), width_(width) {
    slot_names_.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      slot_names_.push_back(width == 1 ? name : elim_slot_name(name, i));
    }
  }

  void init(World& world) override {
    slot_refs_.clear();
    slot_refs_.reserve(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      core::ExchangerRefs r;
      r.g = world.alloc_global(1);
      r.fail = world.alloc_global(core::kOfferCells);
      slot_refs_.push_back(r);
    }
  }

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] Addr slot_g_addr(std::size_t i) const {
    return static_cast<Addr>(slot_refs_[i].g);
  }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    const Call& call = current_call(world, t);
    const core::ExchangeOutcome r = core::striped_exchange(
        env, slot_refs_.data(), slot_names_.data(), width_, method_, t.tid,
        call.arg.as_int(), /*spins=*/0);
    return {Status::kDone, Value::pair(r.ok, r.value)};
  }

 private:
  Symbol name_;
  Symbol method_;
  std::size_t width_;
  std::vector<core::ExchangerRefs> slot_refs_;
  std::vector<Symbol> slot_names_;
};

/// The elimination array AR as a standalone object (method "exchange").
class SimElimArray final : public SimStripedExchanger {
 public:
  SimElimArray(Symbol name, std::size_t width)
      : SimStripedExchanger(name, Symbol("exchange"), width) {}
};

/// The rendezvous object (method "rendezvous").
class SimRendezvous final : public SimStripedExchanger {
 public:
  explicit SimRendezvous(Symbol name, std::size_t width = 1)
      : SimStripedExchanger(name, Symbol("rendezvous"), width) {}
};

/// The one-shot immediate snapshot for `participants` threads with dense
/// ids 0..n-1 (ThreadCtx::tid is the participant id).
class SimSnapshot final : public EnvSimObject {
 public:
  SimSnapshot(Symbol name, std::size_t participants)
      : EnvSimObject(0), name_(name), participants_(participants) {}

  void init(World& world) override {
    refs_.values = world.alloc_global(participants_);
    refs_.levels = world.alloc_global(participants_);
    for (std::size_t q = 0; q < participants_; ++q) {
      world.write(static_cast<Addr>(refs_.levels + q),
                  core::kSnapshotNotStarted);
    }
  }

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] std::size_t participants() const noexcept {
    return participants_;
  }

 protected:
  [[nodiscard]] Attempt attempt(SimEnv& env, World& world,
                                ThreadCtx& t) const override {
    const Call& call = current_call(world, t);
    const std::vector<std::int64_t> snapshot = core::snapshot_us(
        env, refs_, name_, participants_, t.tid, call.arg.as_int());
    return {Status::kDone, Value::vec(snapshot)};
  }

 private:
  Symbol name_;
  std::size_t participants_;
  core::SnapshotRefs refs_;
};

}  // namespace cal::sched
