// Simulated shared memory for the model-checking substrate.
//
// A flat array of 64-bit cells with read / write / CAS, all executed
// atomically by the explorer (one shared access per scheduling step — the
// interleaving granularity of the paper's operational semantics). Addresses
// are cell indices; address 0 is reserved as null.
//
// Allocation is *deterministic per thread*: thread t's i-th allocation
// always lands at the same address regardless of interleaving. This keeps
// heap layout canonical across schedules so that the explorer's state
// hashing merges executions that converge to the same logical state —
// without it, every interleaving would produce a fresh heap shape and the
// visited set would never hit.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace cal::sched {

using Addr = std::uint32_t;
using Word = std::int64_t;

inline constexpr Addr kNull = 0;

class SimMemory {
 public:
  /// `threads` per-thread heap regions of `heap_cells` cells each, plus a
  /// shared globals region of `global_cells` cells.
  SimMemory(std::size_t threads, std::size_t heap_cells = 512,
            std::size_t global_cells = 64)
      : heap_cells_(heap_cells),
        globals_base_(1),
        heaps_base_(static_cast<Addr>(1 + global_cells)),
        cells_(1 + global_cells + threads * heap_cells, 0),
        heap_next_(threads, 0),
        globals_next_(0) {}

  [[nodiscard]] Word read(Addr a) const {
    assert(a != kNull && a < cells_.size());
    return cells_[a];
  }

  void write(Addr a, Word v) {
    assert(a != kNull && a < cells_.size());
    cells_[a] = v;
  }

  /// Atomic compare-and-swap; true iff the cell held `expect`.
  bool cas(Addr a, Word expect, Word desired) {
    assert(a != kNull && a < cells_.size());
    if (cells_[a] != expect) return false;
    cells_[a] = desired;
    return true;
  }

  /// Allocates `n` zeroed cells from the globals region (object fields;
  /// call during world construction only).
  Addr alloc_global(std::size_t n) {
    assert(globals_next_ + n <= heaps_base_ - globals_base_);
    const Addr a = globals_base_ + static_cast<Addr>(globals_next_);
    globals_next_ += n;
    return a;
  }

  /// Allocates `n` zeroed cells from thread t's region (deterministic).
  Addr alloc(std::uint32_t t, std::size_t n) {
    assert(t < heap_next_.size());
    assert(heap_next_[t] + n <= heap_cells_ && "thread heap exhausted");
    const Addr a = heaps_base_ + static_cast<Addr>(t * heap_cells_ +
                                                   heap_next_[t]);
    heap_next_[t] += n;
    return a;
  }

  /// True iff `a` lies in thread-heap or globals space (diagnostics).
  [[nodiscard]] bool valid(Addr a) const noexcept {
    return a != kNull && a < cells_.size();
  }

  /// Owning thread of a heap address, or -1 for globals/null.
  [[nodiscard]] int owner(Addr a) const noexcept {
    if (a < heaps_base_ || a >= cells_.size()) return -1;
    return static_cast<int>((a - heaps_base_) / heap_cells_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  // --- geometry accessors for the symmetry canonicalizer (world.cpp) ---
  [[nodiscard]] Addr heaps_base() const noexcept { return heaps_base_; }
  [[nodiscard]] std::size_t heap_cells() const noexcept { return heap_cells_; }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return heap_next_.size();
  }
  /// First address of thread t's heap segment.
  [[nodiscard]] Addr segment_base(std::size_t t) const noexcept {
    return heaps_base_ + static_cast<Addr>(t * heap_cells_);
  }
  /// Allocation cursor of thread t's segment.
  [[nodiscard]] std::size_t heap_next(std::size_t t) const noexcept {
    return heap_next_[t];
  }
  /// Cells allocated so far in the globals region.
  [[nodiscard]] std::size_t globals_used() const noexcept {
    return globals_next_;
  }
  /// Raw cell value, null included (canonicalizer traversal only).
  [[nodiscard]] Word cell(Addr a) const noexcept { return cells_[a]; }

  /// Flattens the full memory state (cells + allocation cursors) for the
  /// explorer's visited-set hashing.
  void encode(std::vector<std::int64_t>& out) const {
    out.insert(out.end(), cells_.begin(), cells_.end());
    for (std::size_t n : heap_next_) {
      out.push_back(static_cast<std::int64_t>(n));
    }
  }

  friend bool operator==(const SimMemory&, const SimMemory&) = default;

 private:
  std::size_t heap_cells_;
  Addr globals_base_;
  Addr heaps_base_;
  std::vector<Word> cells_;
  std::vector<std::size_t> heap_next_;
  std::size_t globals_next_;
};

}  // namespace cal::sched
