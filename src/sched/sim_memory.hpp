// Simulated shared memory for the model-checking substrate.
//
// A flat array of 64-bit cells with read / write / CAS, all executed
// atomically by the explorer (one shared access per scheduling step — the
// interleaving granularity of the paper's operational semantics). Addresses
// are cell indices; address 0 is reserved as null.
//
// Memory models (MemoryModel): under the default kSc every access hits the
// cell array directly. Under kTso the memory follows the standard x86-TSO
// operational model: each thread owns a FIFO store buffer; a store weaker
// than seq_cst is appended to the issuing thread's buffer (invisible to
// every other thread); a load reads the newest matching entry of the
// thread's *own* buffer first (store-to-load forwarding), then the cell
// array; seq_cst stores and all CAS operations drain the issuing thread's
// buffer before acting (the x86 mapping: fenced stores and locked RMWs
// flush). Buffered entries reach the cell array one at a time via
// flush_one(), which the explorer offers as a nondeterministic transition
// — so every real-TSO interleaving of buffer drains is explorable.
//
// Allocation is *deterministic per thread*: thread t's i-th allocation
// always lands at the same address regardless of interleaving. This keeps
// heap layout canonical across schedules so that the explorer's state
// hashing merges executions that converge to the same logical state —
// without it, every interleaving would produce a fresh heap shape and the
// visited set would never hit.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "objects/env.hpp"

namespace cal::sched {

using Addr = std::uint32_t;
using Word = std::int64_t;

inline constexpr Addr kNull = 0;

/// The simulated machine's memory model. kSc interleaves atomic accesses
/// directly (the historical behavior); kTso adds per-thread FIFO store
/// buffers with explicit flush transitions.
enum class MemoryModel : std::uint8_t { kSc = 0, kTso = 1 };

class SimMemory {
 public:
  /// One buffered (not yet globally visible) write of a thread.
  struct BufferedWrite {
    Addr addr = kNull;
    Word value = 0;

    friend bool operator==(const BufferedWrite&,
                           const BufferedWrite&) = default;
  };

  /// `threads` per-thread heap regions of `heap_cells` cells each, plus a
  /// shared globals region of `global_cells` cells.
  SimMemory(std::size_t threads, std::size_t heap_cells = 512,
            std::size_t global_cells = 64,
            MemoryModel model = MemoryModel::kSc)
      : model_(model),
        heap_cells_(heap_cells),
        globals_base_(1),
        heaps_base_(static_cast<Addr>(1 + global_cells)),
        cells_(1 + global_cells + threads * heap_cells, 0),
        heap_next_(threads, 0),
        globals_next_(0),
        buffers_(threads) {}

  [[nodiscard]] MemoryModel model() const noexcept { return model_; }

  // --- model-oblivious access (globally visible cells only) ---
  //
  // Used during world construction (object init, before any thread has
  // buffered anything) and by read-only observers that must see flushed
  // memory (auditors, canonicalizer). Never consults store buffers.

  [[nodiscard]] Word read(Addr a) const {
    assert(a != kNull && a < cells_.size());
    return cells_[a];
  }

  void write(Addr a, Word v) {
    assert(a != kNull && a < cells_.size());
    cells_[a] = v;
  }

  /// Atomic compare-and-swap; true iff the cell held `expect`.
  bool cas(Addr a, Word expect, Word desired) {
    assert(a != kNull && a < cells_.size());
    if (cells_[a] != expect) return false;
    cells_[a] = desired;
    return true;
  }

  // --- model-aware access (the Env layer's yield operations) ---
  //
  // `t` is the thread *index* (== program index), which also owns heap
  // segment t. Every order is accepted; only the distinctions the model
  // makes are acted on (TSO: store order < seq_cst buffers, everything
  // else drains).

  [[nodiscard]] Word load(std::uint32_t t, Addr a,
                          objects::MemOrder /*mo*/) const {
    assert(a != kNull && a < cells_.size());
    if (model_ == MemoryModel::kTso) {
      // Store-to-load forwarding: newest own-buffer entry for `a` wins.
      const auto& buf = buffers_[t];
      for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
        if (it->addr == a) return it->value;
      }
    }
    return cells_[a];
  }

  /// True iff the store buffered (TSO, order weaker than seq_cst) rather
  /// than writing the cell array; a non-buffering store on a thread with a
  /// non-empty buffer drains it first (FIFO) within this call.
  bool store(std::uint32_t t, Addr a, Word v, objects::MemOrder mo) {
    assert(a != kNull && a < cells_.size());
    if (model_ == MemoryModel::kTso) {
      if (mo != objects::MemOrder::kSeqCst) {
        buffers_[t].push_back(BufferedWrite{a, v});
        return true;
      }
      drain(t);
    }
    cells_[a] = v;
    return false;
  }

  /// CAS drains the issuing thread's buffer first (locked RMWs flush on
  /// x86-TSO) regardless of the annotation, then acts on the cell array.
  bool cas(std::uint32_t t, Addr a, Word expect, Word desired,
           objects::MemOrder /*mo*/) {
    if (model_ == MemoryModel::kTso) drain(t);
    return cas(a, expect, desired);
  }

  // --- store-buffer surface (explorer flush transitions, encoders) ---

  [[nodiscard]] std::size_t buffer_size(std::uint32_t t) const noexcept {
    return buffers_[t].size();
  }
  /// Total buffered writes across all threads (0 under kSc — terminal
  /// states require a drained machine).
  [[nodiscard]] std::size_t buffered_total() const noexcept {
    std::size_t n = 0;
    for (const auto& b : buffers_) n += b.size();
    return n;
  }
  [[nodiscard]] const std::vector<BufferedWrite>& buffer(
      std::uint32_t t) const noexcept {
    return buffers_[t];
  }
  /// Address the next flush_one(t) will write (front of the FIFO).
  [[nodiscard]] Addr flush_addr(std::uint32_t t) const noexcept {
    assert(!buffers_[t].empty());
    return buffers_[t].front().addr;
  }
  /// Makes thread t's oldest buffered write globally visible.
  void flush_one(std::uint32_t t) {
    assert(!buffers_[t].empty());
    const BufferedWrite w = buffers_[t].front();
    buffers_[t].erase(buffers_[t].begin());
    cells_[w.addr] = w.value;
  }
  /// Drains thread t's whole buffer in FIFO order (fence / seq_cst op).
  void drain(std::uint32_t t) {
    for (const BufferedWrite& w : buffers_[t]) cells_[w.addr] = w.value;
    buffers_[t].clear();
  }

  /// Allocates `n` zeroed cells from the globals region (object fields;
  /// call during world construction only).
  Addr alloc_global(std::size_t n) {
    assert(globals_next_ + n <= heaps_base_ - globals_base_);
    const Addr a = globals_base_ + static_cast<Addr>(globals_next_);
    globals_next_ += n;
    return a;
  }

  /// Allocates `n` zeroed cells from thread t's region (deterministic).
  Addr alloc(std::uint32_t t, std::size_t n) {
    assert(t < heap_next_.size());
    assert(heap_next_[t] + n <= heap_cells_ && "thread heap exhausted");
    const Addr a = heaps_base_ + static_cast<Addr>(t * heap_cells_ +
                                                   heap_next_[t]);
    heap_next_[t] += n;
    return a;
  }

  /// True iff `a` lies in thread-heap or globals space (diagnostics).
  [[nodiscard]] bool valid(Addr a) const noexcept {
    return a != kNull && a < cells_.size();
  }

  /// Owning thread of a heap address, or -1 for globals/null.
  [[nodiscard]] int owner(Addr a) const noexcept {
    if (a < heaps_base_ || a >= cells_.size()) return -1;
    return static_cast<int>((a - heaps_base_) / heap_cells_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

  // --- geometry accessors for the symmetry canonicalizer (world.cpp) ---
  [[nodiscard]] Addr heaps_base() const noexcept { return heaps_base_; }
  [[nodiscard]] std::size_t heap_cells() const noexcept { return heap_cells_; }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return heap_next_.size();
  }
  /// First address of thread t's heap segment.
  [[nodiscard]] Addr segment_base(std::size_t t) const noexcept {
    return heaps_base_ + static_cast<Addr>(t * heap_cells_);
  }
  /// Allocation cursor of thread t's segment.
  [[nodiscard]] std::size_t heap_next(std::size_t t) const noexcept {
    return heap_next_[t];
  }
  /// Cells allocated so far in the globals region.
  [[nodiscard]] std::size_t globals_used() const noexcept {
    return globals_next_;
  }
  /// Raw cell value, null included (canonicalizer traversal only).
  [[nodiscard]] Word cell(Addr a) const noexcept { return cells_[a]; }

  /// Flattens the full memory state (cells + allocation cursors + store
  /// buffers) for the explorer's visited-set hashing. Buffer contents are
  /// part of the state: two worlds whose cells agree but whose pending
  /// writes differ have different futures.
  void encode(std::vector<std::int64_t>& out) const {
    out.insert(out.end(), cells_.begin(), cells_.end());
    for (std::size_t n : heap_next_) {
      out.push_back(static_cast<std::int64_t>(n));
    }
    if (model_ == MemoryModel::kTso) {
      for (const auto& buf : buffers_) {
        out.push_back(static_cast<std::int64_t>(buf.size()));
        for (const BufferedWrite& w : buf) {
          out.push_back(static_cast<std::int64_t>(w.addr));
          out.push_back(w.value);
        }
      }
    }
  }

  friend bool operator==(const SimMemory&, const SimMemory&) = default;

 private:
  MemoryModel model_;
  std::size_t heap_cells_;
  Addr globals_base_;
  Addr heaps_base_;
  std::vector<Word> cells_;
  std::vector<std::size_t> heap_next_;
  std::size_t globals_next_;
  /// Per-thread FIFO store buffers (always empty under kSc).
  std::vector<std::vector<BufferedWrite>> buffers_;
};

}  // namespace cal::sched
