#include "sched/rg.hpp"

namespace cal::sched {

namespace {
using objects::core::ExchangerPc;
using objects::core::ExchangerReg;
using objects::core::kOfferData;
using objects::core::kOfferHole;
using objects::core::kOfferTid;

std::string describe(const std::vector<std::int64_t>& xs) {
  std::string out;
  for (std::int64_t x : xs) out += std::to_string(x) + " ";
  return out;
}

/// Heap-segment index of the acting thread (segments are owned by thread
/// index, not tid — tids are free-form labels).
int owner_index(const World& world, ThreadId actor) {
  for (const ThreadCtx& t : world.threads()) {
    if (t.tid == actor) return static_cast<int>(t.program);
  }
  return -1;
}
}  // namespace

std::optional<std::string> ExchangerRgAuditor::check_transition(
    const World& pre, const World& post, ThreadId actor) const {
  if (!check_guarantee_) return std::nullopt;

  // Collect the memory delta of this single step, dropping initialization
  // of fresh (previously null) cells in the actor's own region: those are
  // line 13's offer setup, invisible to other threads until INIT. The one
  // fresh own-region write that *is* shared is the PASS CAS storing FAIL
  // into the hole of the offer currently published in g — identified by
  // address, since the offer being initialized cannot already be in g.
  std::vector<Change> shared;
  const SimMemory& pm = pre.memory();
  const SimMemory& qm = post.memory();
  const Addr g = object_.g_addr();
  const Word pre_g = pm.read(g);
  const Addr published_hole =
      pre_g == kNull ? 0 : static_cast<Addr>(pre_g) + kOfferHole;
  for (Addr a = 1; a < pm.size(); ++a) {
    const Word b = pm.read(a);
    const Word c = qm.read(a);
    if (b == c) continue;
    const bool local_fresh = pm.owner(a) == owner_index(pre, actor) &&
                             b == kNull && a != g && a != published_hole;
    if (!local_fresh) shared.push_back(Change{a, b, c});
  }
  const std::size_t appended = post.trace().size() - pre.trace().size();
  return classify(pre, post, actor, shared, appended);
}

std::optional<std::string> ExchangerRgAuditor::classify(
    const World& pre, const World& post, ThreadId actor,
    const std::vector<Change>& shared, std::size_t appended) const {
  const Addr g = object_.g_addr();
  const Addr fail = object_.fail_addr();
  const SimMemory& pm = pre.memory();
  const SimMemory& qm = post.memory();

  // Stutter: reads, pc moves, local offer initialization, responses.
  if (shared.empty() && appended == 0) return std::nullopt;

  // The FAIL^t auxiliary append: the actor's own failed operation as a
  // singleton element.
  auto is_actor_failure = [&](const CaElement& e) {
    static const Symbol kExchange{"exchange"};
    if (e.object() != object_.name() || e.size() != 1) return false;
    const Operation& op = e.ops().front();
    return op.tid == actor && op.method == kExchange && op.ret &&
           op.ret->kind() == Value::Kind::kPair && !op.ret->pair_ok() &&
           op.arg == Value::integer(op.ret->pair_int());
  };
  auto bad_append = [&] {
    return "trace append by t" + std::to_string(actor) + " matches no action: " +
           post.trace()[post.trace().size() - 1].to_string();
  };

  // FAIL^t alone: pure auxiliary append, no shared-memory change (the
  // empty-g fast path and the lost-clean path).
  if (shared.empty() && appended == 1) {
    if (is_actor_failure(post.trace()[post.trace().size() - 1])) {
      return std::nullopt;  // FAIL
    }
    return bad_append();
  }

  if (shared.size() == 1 && appended == 0) {
    const Change& ch = shared.front();

    // INIT^t: g: null → n with n.tid = t, n.hole = null.
    if (ch.addr == g && ch.before == kNull && ch.after != kNull) {
      const Addr n = static_cast<Addr>(ch.after);
      if (qm.read(n + kOfferTid) == static_cast<Word>(actor) &&
          qm.read(n + kOfferHole) == kNull) {
        return std::nullopt;  // INIT
      }
      return "INIT by t" + std::to_string(actor) +
             " publishes a malformed offer";
    }

    // CLEAN^t: g: cur → null with cur.hole ≠ null (helping, or the line 20
    // withdrawal of the thread's own passed offer).
    if (ch.addr == g && ch.after == kNull && ch.before != kNull) {
      const Addr cur = static_cast<Addr>(ch.before);
      if (pm.read(cur + kOfferHole) != kNull) {
        return std::nullopt;  // CLEAN
      }
      return "CLEAN by t" + std::to_string(actor) +
             " removed an unmatched offer";
    }

    return "unclassified shared write by t" + std::to_string(actor) +
           " at cell " + std::to_string(ch.addr);
  }

  if (shared.size() == 1 && appended == 1) {
    const Change& ch = shared.front();

    // PASS^t (fused with FAIL^t): own published offer's hole: null → fail,
    // appending the actor's failed operation in the same step.
    if (ch.before == kNull && ch.after == static_cast<Word>(fail)) {
      const Addr n = ch.addr - kOfferHole;
      if (pm.read(n + kOfferTid) != static_cast<Word>(actor) ||
          pm.read(g) != static_cast<Word>(n)) {
        return "PASS by t" + std::to_string(actor) +
               " on an offer it does not own or that is not published";
      }
      if (!is_actor_failure(post.trace()[post.trace().size() - 1])) {
        return bad_append();
      }
      return std::nullopt;  // PASS
    }

    // CLEAN^t fused with FAIL^t: the failed-exchange path whose clean CAS
    // succeeded — the helping removal and the auxiliary append share the
    // final step of the attempt.
    if (ch.addr == g && ch.after == kNull && ch.before != kNull) {
      const Addr cur = static_cast<Addr>(ch.before);
      if (pm.read(cur + kOfferHole) == kNull) {
        return "CLEAN by t" + std::to_string(actor) +
               " removed an unmatched offer";
      }
      if (!is_actor_failure(post.trace()[post.trace().size() - 1])) {
        return bad_append();
      }
      return std::nullopt;  // CLEAN + FAIL
    }

    // XCHG^t: cur.hole: null → n (n ≠ fail, n.tid = t, g = cur) appending
    // exactly E.swap(cur.tid, cur.data, t, n.data).
    if (ch.before == kNull && ch.after != static_cast<Word>(fail) &&
        ch.after != kNull) {
      const Addr cur = ch.addr - kOfferHole;
      const Addr n = static_cast<Addr>(ch.after);
      if (qm.read(n + kOfferTid) != static_cast<Word>(actor)) {
        return "XCHG by t" + std::to_string(actor) +
               " installs another thread's offer";
      }
      if (pm.read(cur + kOfferTid) == static_cast<Word>(actor)) {
        return "XCHG by t" + std::to_string(actor) + " matched itself";
      }
      if (pm.read(g) != static_cast<Word>(cur)) {
        return "XCHG by t" + std::to_string(actor) +
               " on an offer not published in g";
      }
      static const Symbol kExchange{"exchange"};
      const CaElement expected = CaElement::swap(
          object_.name(), kExchange,
          static_cast<ThreadId>(pm.read(cur + kOfferTid)),
          pm.read(cur + kOfferData), actor, qm.read(n + kOfferData));
      const CaElement& logged = post.trace()[post.trace().size() - 1];
      if (logged == expected) return std::nullopt;  // XCHG
      return "XCHG by t" + std::to_string(actor) +
             " logged the wrong element: " + logged.to_string() +
             " instead of " + expected.to_string();
    }
  }

  std::vector<std::int64_t> addrs;
  for (const Change& ch : shared) addrs.push_back(ch.addr);
  return "transition by t" + std::to_string(actor) +
         " matches no guarantee action (cells " + describe(addrs) +
         ", appends " + std::to_string(appended) + ")";
}

std::optional<std::string> ExchangerRgAuditor::check_invariant(
    const World& world) const {
  static const Symbol kExchange{"exchange"};
  const SimMemory& m = world.memory();
  const Word gval = m.read(object_.g_addr());

  // J: g ≠ null ∧ g.hole = null ⇒ InE(g.tid).
  if (gval != kNull) {
    const Addr offer = static_cast<Addr>(gval);
    if (m.read(offer + kOfferHole) == kNull) {
      const Word owner = m.read(offer + kOfferTid);
      bool in_e = false;
      for (const ThreadCtx& t : world.threads()) {
        if (static_cast<Word>(t.tid) != owner || !t.op_active) continue;
        const auto& prog = world.config().programs[t.program];
        if (prog.calls[t.call_idx].method == kExchange) in_e = true;
      }
      if (!in_e) {
        return "J violated: unmatched published offer of t" +
               std::to_string(owner) + " which is not inside exchange()";
      }
    }
  }

  if (!check_outline_) return std::nullopt;
  for (const ThreadCtx& t : world.threads()) {
    if (!t.op_active) continue;
    if (auto why = check_outline(world, t)) return why;
  }
  return std::nullopt;
}

std::optional<std::string> ExchangerRgAuditor::check_outline(
    const World& world, const ThreadCtx& t) const {
  const SimMemory& m = world.memory();
  const Addr g = object_.g_addr();
  const Addr fail = object_.fail_addr();
  const Addr n = static_cast<Addr>(t.regs[ExchangerReg::kN]);
  const Word v = t.regs[ExchangerReg::kV];

  auto fmt = [&](const char* what) {
    return std::string("proof outline at pc ") + std::to_string(t.pc) +
           " for t" + std::to_string(t.tid) + ": " + what;
  };

  // B(k) ≜ k ≠ null ∧ k.tid ≠ tid ∧ TE|tid = T·E.swap(tid, p, k.tid, k.data).
  auto B = [&](Word k) {
    if (k == kNull || k == static_cast<Word>(fail)) return false;
    const Addr ka = static_cast<Addr>(k);
    if (m.read(ka + kOfferTid) == static_cast<Word>(t.tid)) return false;
    return t.op_logged &&
           t.op_logged_ret == Value::pair(true, m.read(ka + kOfferData));
  };
  // A ≜ TE|tid = T ∧ (g = null ∨ g.hole ≠ null ∨ g.tid ≠ tid) ∧ n ↦ tid,v,null.
  auto A = [&]() {
    if (t.op_logged) return false;
    const Word gval = m.read(g);
    bool g_ok = gval == kNull;
    if (!g_ok) {
      const Addr ga = static_cast<Addr>(gval);
      g_ok = m.read(ga + kOfferHole) != kNull ||
             m.read(ga + kOfferTid) != static_cast<Word>(t.tid);
    }
    return g_ok && m.read(n + kOfferTid) == static_cast<Word>(t.tid) &&
           m.read(n + kOfferData) == v && m.read(n + kOfferHole) == kNull;
  };
  // The auxiliary FAIL append precedes the failing return in the single
  // body, so at every failing control point the operation is already
  // logged with (false, v).
  auto failed = [&]() {
    return t.op_logged && t.op_logged_ret == Value::pair(false, v);
  };

  switch (t.pc) {
    case ExchangerPc::kReadG:
      if (!A()) return fmt("A does not hold after the failed init CAS");
      break;
    case ExchangerPc::kPassCas: {
      // (TE|tid = T ∧ n ↦ tid,v,null ∧ g = n) ∨ B(n.hole)   (line 16)
      const Word hole = m.read(n + kOfferHole);
      const bool first =
          !t.op_logged && hole == kNull && m.read(g) == static_cast<Word>(n);
      if (!first && !B(hole)) {
        return fmt("neither unmatched-published nor B(n.hole) holds");
      }
      break;
    }
    case ExchangerPc::kWithdrawCas:
      // After PASS: the failure is logged and the own offer is dead.
      if (!failed()) return fmt("failure not logged after PASS");
      if (m.read(n + kOfferHole) != static_cast<Word>(fail)) {
        return fmt("n.hole is not FAIL before the withdraw CAS");
      }
      break;
    case ExchangerPc::kSuccessReturnA: {
      if (!B(m.read(n + kOfferHole))) {
        return fmt("B(n.hole) does not hold at the passive success return");
      }
      break;
    }
    case ExchangerPc::kXchgCas: {
      // A ∧ (g = cur ∨ cur.hole ≠ null) ∧ cur ≠ null ∧ ¬s   (line 28)
      const Word cur = t.regs[ExchangerReg::kCur];
      if (cur == kNull) return fmt("cur is null before the xchg CAS");
      if (!A()) return fmt("A does not hold before the xchg CAS");
      const Addr ca = static_cast<Addr>(cur);
      if (m.read(g) != cur && m.read(ca + kOfferHole) == kNull) {
        return fmt("g != cur and cur.hole is null before the xchg CAS");
      }
      break;
    }
    case ExchangerPc::kCleanCas: {
      // (¬s ∧ A ∨ s ∧ B(cur)) ∧ cur ≠ null ∧ cur.hole ≠ null   (line 30)
      const Word cur = t.regs[ExchangerReg::kCur];
      const bool s = t.regs[ExchangerReg::kS] != 0;
      if (cur == kNull) return fmt("cur is null before the clean CAS");
      const Addr ca = static_cast<Addr>(cur);
      if (m.read(ca + kOfferHole) == kNull) {
        return fmt("cur.hole is null before the clean CAS");
      }
      if (s ? !B(cur) : !A()) {
        return fmt("post-xchg disjunction does not hold");
      }
      break;
    }
    case ExchangerPc::kSuccessReturnB: {
      if (!B(t.regs[ExchangerReg::kCur])) {
        return fmt("B(cur) does not hold at the active success return");
      }
      break;
    }
    case ExchangerPc::kFailReturnA:
    case ExchangerPc::kFailReturnB:
      if (!failed()) return fmt("failure not logged at the failing return");
      break;
    default:
      break;
  }
  return std::nullopt;
}

// --- ReclaimRgAuditor -----------------------------------------------------

namespace {

/// True iff `block` is still listed (retired or reusable) in `world`.
bool still_unreclaimed(const World& world, Addr block) {
  for (const RetiredBlock& r : world.retired()) {
    if (r.block == block) return true;
  }
  for (const auto& [a, n] : world.free_blocks()) {
    if (a == block) return true;
  }
  return false;
}

}  // namespace

std::optional<std::string> ReclaimRgAuditor::check_transition(
    const World& pre, const World& post, ThreadId actor) const {
  if (!pre.config().recycle_addresses) return std::nullopt;

  if (post.tagged_aba_step()) {
    return "t" + std::to_string(actor) +
           "'s CAS/validate succeeded against a recycled generation that "
           "only tag truncation made congruent (ABA past the tag width)";
  }

  // Promotion check: a block that left the retired set this step without
  // landing in the reusable list was handed back to the allocator.
  if (pre.config().reclaim_policy == runtime::ReclaimPolicy::kTagged) {
    return std::nullopt;  // reuse-while-referenced is tagged's design
  }
  for (const RetiredBlock& r : pre.retired()) {
    if (still_unreclaimed(post, r.block)) continue;
    for (const ThreadCtx& t : pre.threads()) {
      if (t.stage != ThreadStage::kRunning) continue;
      if (static_cast<std::uint32_t>(t.program) == r.retirer) continue;
      for (Word w : t.oplog) {
        if (w != static_cast<Word>(r.block)) continue;
        return "block " + std::to_string(r.block) +
               " was recycled while t" + std::to_string(t.tid) +
               " still holds its address mid-attempt: the protocol should "
               "have pinned it (dropped protect or cut-short grace period)";
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> ReclaimRgAuditor::check_invariant(
    const World& world) const {
  if (!world.config().recycle_addresses) return std::nullopt;
  // Structural consistency: a block must not be simultaneously retired
  // (awaiting its grace/hazard clearance) and already reusable.
  for (const RetiredBlock& r : world.retired()) {
    for (const auto& [a, n] : world.free_blocks()) {
      if (a == r.block) {
        return "block " + std::to_string(r.block) +
               " is both retired-pending and in the reusable list";
      }
    }
  }
  return std::nullopt;
}

}  // namespace cal::sched
