#include "sched/rg.hpp"

namespace cal::sched {

namespace {
const Symbol& exchange_sym() {
  static const Symbol s{"exchange"};
  return s;
}

std::string describe(const std::vector<std::int64_t>& xs) {
  std::string out;
  for (std::int64_t x : xs) out += std::to_string(x) + " ";
  return out;
}
}  // namespace

std::optional<std::string> ExchangerRgAuditor::check_transition(
    const World& pre, const World& post, ThreadId actor) const {
  // Collect the shared-memory delta of this single step.
  std::vector<Change> changes;
  const SimMemory& pm = pre.memory();
  const SimMemory& qm = post.memory();
  for (Addr a = 1; a < pm.size(); ++a) {
    const Word b = pm.read(a);
    const Word c = qm.read(a);
    if (b != c) changes.push_back(Change{a, b, c});
  }
  const std::size_t appended = post.trace().size() - pre.trace().size();
  return classify(pre, post, actor, changes, appended);
}

std::optional<std::string> ExchangerRgAuditor::classify(
    const World& pre, const World& post, ThreadId actor,
    const std::vector<Change>& changes, std::size_t appended) const {
  const Addr g = machine_.g_addr();
  const Addr fail = machine_.fail_addr();
  const SimMemory& pm = pre.memory();
  const SimMemory& qm = post.memory();

  // Stutter: reads, pc moves, responses of already-logged results.
  if (changes.empty() && appended == 0) return std::nullopt;

  // Local-heap initialization: all changed cells are fresh (previously 0)
  // cells in the actor's own region, and nothing was logged. This is the
  // allocation in line 13, invisible to other threads until INIT.
  if (appended == 0 && !changes.empty()) {
    bool all_local_fresh = true;
    for (const Change& ch : changes) {
      if (pm.owner(ch.addr) != static_cast<int>(actor) || ch.before != 0) {
        all_local_fresh = false;
        break;
      }
    }
    if (all_local_fresh) return std::nullopt;
  }

  // FAIL^t: pure auxiliary append, no shared-memory change.
  if (changes.empty() && appended == 1) {
    const CaElement& e = post.trace()[post.trace().size() - 1];
    if (e.object() == machine_.name() && e.size() == 1) {
      const Operation& op = e.ops().front();
      if (op.tid == actor && op.method == exchange_sym() && op.ret &&
          op.ret->kind() == Value::Kind::kPair && !op.ret->pair_ok() &&
          op.arg == Value::integer(op.ret->pair_int())) {
        return std::nullopt;  // FAIL
      }
    }
    return "trace append by t" + std::to_string(actor) +
           " matches no action: " + post.trace()[post.trace().size() - 1]
               .to_string();
  }

  if (changes.size() == 1 && appended == 0) {
    const Change& ch = changes.front();

    // INIT^t: g: null → n with n.tid = t, n.hole = null.
    if (ch.addr == g && ch.before == kNull && ch.after != kNull) {
      const Addr n = static_cast<Addr>(ch.after);
      if (qm.read(n + ExchangerMachine::kTid) ==
              static_cast<Word>(actor) &&
          qm.read(n + ExchangerMachine::kHole) == kNull) {
        return std::nullopt;  // INIT
      }
      return "INIT by t" + std::to_string(actor) +
             " publishes a malformed offer";
    }

    // CLEAN^t: g: cur → null with cur.hole ≠ null.
    if (ch.addr == g && ch.after == kNull && ch.before != kNull) {
      const Addr cur = static_cast<Addr>(ch.before);
      if (pm.read(cur + ExchangerMachine::kHole) != kNull) {
        return std::nullopt;  // CLEAN
      }
      return "CLEAN by t" + std::to_string(actor) +
             " removed an unmatched offer";
    }

    // PASS^t: own published offer's hole: null → fail.
    if (ch.before == kNull && ch.after == static_cast<Word>(fail)) {
      const Addr n = ch.addr - ExchangerMachine::kHole;
      if (pm.read(n + ExchangerMachine::kTid) == static_cast<Word>(actor) &&
          pm.read(g) == static_cast<Word>(n)) {
        return std::nullopt;  // PASS
      }
      return "PASS by t" + std::to_string(actor) +
             " on an offer it does not own or that is not published";
    }

    return "unclassified shared write by t" + std::to_string(actor) +
           " at cell " + std::to_string(ch.addr);
  }

  // XCHG^t: cur.hole: null → n (n ≠ fail, n.tid = t, g = cur) appending
  // exactly E.swap(cur.tid, cur.data, t, n.data).
  if (changes.size() == 1 && appended == 1) {
    const Change& ch = changes.front();
    if (ch.before == kNull && ch.after != static_cast<Word>(fail) &&
        ch.after != kNull) {
      const Addr cur = ch.addr - ExchangerMachine::kHole;
      const Addr n = static_cast<Addr>(ch.after);
      if (qm.read(n + ExchangerMachine::kTid) !=
          static_cast<Word>(actor)) {
        return "XCHG by t" + std::to_string(actor) +
               " installs another thread's offer";
      }
      if (pm.read(cur + ExchangerMachine::kTid) ==
          static_cast<Word>(actor)) {
        return "XCHG by t" + std::to_string(actor) + " matched itself";
      }
      if (pm.read(g) != static_cast<Word>(cur)) {
        return "XCHG by t" + std::to_string(actor) +
               " on an offer not published in g";
      }
      const CaElement expected = CaElement::swap(
          machine_.name(), exchange_sym(),
          static_cast<ThreadId>(pm.read(cur + ExchangerMachine::kTid)),
          pm.read(cur + ExchangerMachine::kData), actor,
          qm.read(n + ExchangerMachine::kData));
      const CaElement& logged = post.trace()[post.trace().size() - 1];
      if (logged == expected) return std::nullopt;  // XCHG
      return "XCHG by t" + std::to_string(actor) +
             " logged the wrong element: " + logged.to_string() +
             " instead of " + expected.to_string();
    }
  }

  std::vector<std::int64_t> addrs;
  for (const Change& ch : changes) addrs.push_back(ch.addr);
  return "transition by t" + std::to_string(actor) +
         " matches no guarantee action (cells " + describe(addrs) +
         ", appends " + std::to_string(appended) + ")";
}

std::optional<std::string> ExchangerRgAuditor::check_invariant(
    const World& world) const {
  const SimMemory& m = world.memory();
  const Word gval = m.read(machine_.g_addr());

  // J: g ≠ null ∧ g.hole = null ⇒ InE(g.tid).
  if (gval != kNull) {
    const Addr offer = static_cast<Addr>(gval);
    if (m.read(offer + ExchangerMachine::kHole) == kNull) {
      const Word owner = m.read(offer + ExchangerMachine::kTid);
      bool in_e = false;
      for (const ThreadCtx& t : world.threads()) {
        if (static_cast<Word>(t.tid) != owner || !t.op_active) continue;
        const auto& prog = world.config().programs[t.program];
        if (prog.calls[t.call_idx].method == exchange_sym()) in_e = true;
      }
      if (!in_e) {
        return "J violated: unmatched published offer of t" +
               std::to_string(owner) + " which is not inside exchange()";
      }
    }
  }

  if (!check_outline_) return std::nullopt;
  for (const ThreadCtx& t : world.threads()) {
    if (!t.op_active) continue;
    if (auto why = check_outline(world, t)) return why;
  }
  return std::nullopt;
}

std::optional<std::string> ExchangerRgAuditor::check_outline(
    const World& world, const ThreadCtx& t) const {
  const SimMemory& m = world.memory();
  const Addr g = machine_.g_addr();
  const Addr fail = machine_.fail_addr();
  const Addr n = static_cast<Addr>(t.regs[ExchangerMachine::kRegN]);
  const Word v = t.regs[ExchangerMachine::kRegV];

  auto fmt = [&](const char* what) {
    return std::string("proof outline at pc ") + std::to_string(t.pc) +
           " for t" + std::to_string(t.tid) + ": " + what;
  };

  // B(k) ≜ k ≠ null ∧ k.tid ≠ tid ∧ TE|tid = T·E.swap(tid, p, k.tid, k.data).
  auto B = [&](Word k) {
    if (k == kNull || k == static_cast<Word>(fail)) return false;
    const Addr ka = static_cast<Addr>(k);
    if (m.read(ka + ExchangerMachine::kTid) == static_cast<Word>(t.tid)) {
      return false;
    }
    return t.op_logged &&
           t.op_logged_ret ==
               Value::pair(true, m.read(ka + ExchangerMachine::kData));
  };
  // A ≜ TE|tid = T ∧ (g = null ∨ g.hole ≠ null ∨ g.tid ≠ tid) ∧ n ↦ tid,v,null.
  auto A = [&]() {
    if (t.op_logged) return false;
    const Word gval = m.read(g);
    bool g_ok = gval == kNull;
    if (!g_ok) {
      const Addr ga = static_cast<Addr>(gval);
      g_ok = m.read(ga + ExchangerMachine::kHole) != kNull ||
             m.read(ga + ExchangerMachine::kTid) !=
                 static_cast<Word>(t.tid);
    }
    return g_ok &&
           m.read(n + ExchangerMachine::kTid) == static_cast<Word>(t.tid) &&
           m.read(n + ExchangerMachine::kData) == v &&
           m.read(n + ExchangerMachine::kHole) == kNull;
  };

  switch (t.pc) {
    case ExchangerMachine::kInitCas:
      if (!A()) return fmt("A does not hold before the init CAS");
      break;
    case ExchangerMachine::kPassCas: {
      // (TE|tid = T ∧ n ↦ tid,v,null ∧ g = n) ∨ B(n.hole)   (line 16)
      const Word hole = m.read(n + ExchangerMachine::kHole);
      const bool first = !t.op_logged && hole == kNull &&
                         m.read(g) == static_cast<Word>(n);
      if (!first && !B(hole)) {
        return fmt("neither unmatched-published nor B(n.hole) holds");
      }
      break;
    }
    case ExchangerMachine::kSuccessReturnA: {
      if (!B(m.read(n + ExchangerMachine::kHole))) {
        return fmt("B(n.hole) does not hold at the passive success return");
      }
      break;
    }
    case ExchangerMachine::kXchgCas: {
      // A ∧ (g = cur ∨ cur.hole ≠ null) ∧ cur ≠ null ∧ ¬s   (line 28)
      const Word cur = t.regs[ExchangerMachine::kRegCur];
      if (cur == kNull) return fmt("cur is null before the xchg CAS");
      if (!A()) return fmt("A does not hold before the xchg CAS");
      const Addr ca = static_cast<Addr>(cur);
      if (m.read(g) != cur &&
          m.read(ca + ExchangerMachine::kHole) == kNull) {
        return fmt("g != cur and cur.hole is null before the xchg CAS");
      }
      break;
    }
    case ExchangerMachine::kCleanCas: {
      // (¬s ∧ A ∨ s ∧ B(cur)) ∧ cur ≠ null ∧ cur.hole ≠ null   (line 30)
      const Word cur = t.regs[ExchangerMachine::kRegCur];
      const bool s = t.regs[ExchangerMachine::kRegS] != 0;
      if (cur == kNull) return fmt("cur is null before the clean CAS");
      const Addr ca = static_cast<Addr>(cur);
      if (m.read(ca + ExchangerMachine::kHole) == kNull) {
        return fmt("cur.hole is null before the clean CAS");
      }
      if (s ? !B(cur) : !A()) {
        return fmt("post-xchg disjunction does not hold");
      }
      break;
    }
    case ExchangerMachine::kSuccessReturnB: {
      if (!B(t.regs[ExchangerMachine::kRegCur])) {
        return fmt("B(cur) does not hold at the active success return");
      }
      break;
    }
    case ExchangerMachine::kFailReturnA:
    case ExchangerMachine::kFailReturnB:
      if (t.op_logged) return fmt("failing return but already logged");
      break;
    default:
      break;
  }
  return std::nullopt;
}

}  // namespace cal::sched
