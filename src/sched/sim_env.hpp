// SimEnv — the model-checking instantiation of the environment concept
// (objects/env.hpp), and the EnvSimObject adapter that turns one
// Env-parameterized algorithm body into a SimObject of the explorer.
//
// The same template bodies in objects/core/ that compile into lock-free
// std::atomic code under RealEnv execute here one *yield operation*
// (shared load/store/CAS, nondeterministic choice) per scheduler step,
// with the paper's auxiliary trace appends fused atomically with the
// instrumented instruction.
//
// How one body becomes a step machine without hand-compiling it into a pc
// switch: the thread's oplog (ThreadCtx::oplog) records the result of
// every yield operation (and allocation) the current attempt has already
// committed, in program order. Each scheduler step re-runs the body from
// the start:
//
//   * a yield op with a logged result *replays* it — no memory effect, no
//     step consumed;
//   * the first yield op past the log executes live against the World,
//     appends its result to the log, and marks the step's quantum spent;
//   * execution then continues through trailing non-yield work — frozen
//     reads re-read (their cells can no longer change), private stores
//     re-execute (idempotent by the Env discipline), emits past the
//     per-call counter append to 𝒯 *in this same step*, labels update the
//     stable pc — until the next yield op throws YieldInterrupt or the
//     body returns.
//
// Because replayed operations have no memory effects and frozen/private
// accesses are idempotent, re-running the body is observationally
// equivalent to resuming a coroutine at the saved point — but worlds stay
// plain copyable values, which the explorer's branching and state merging
// require.
//
// Nondeterministic choice follows the explorer's probe protocol: a fresh
// choose(n) with no pending ThreadCtx::choice throws ChoiceRequest{n}; the
// explorer discards the probe world and re-steps a fresh copy with the
// choice set, which choose() then consumes as its own quantum (the same
// granularity as the retired hand-written machines' choose step).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "cal/ca_trace.hpp"
#include "cal/value.hpp"
#include "objects/env.hpp"
#include "sched/world.hpp"

namespace cal::sched {

/// Thrown when the body reaches a yield operation after this step's
/// quantum is spent; the attempt resumes (by re-execution) next step.
struct YieldInterrupt {};

/// Thrown when the body reaches a fresh choose(n) and no choice is
/// pending; the explorer forks one branch per value in [0, n).
struct ChoiceRequest {
  std::int32_t n = 0;
};

/// Fault-injection hooks for the mutation tests: every hook sees the real
/// execution and may corrupt it. Null members are identity.
struct SimHooks {
  /// Transforms the value of a private (pre-publication) store.
  std::function<objects::Word(objects::Word block, objects::Word off,
                              objects::Word v)>
      private_store;
  /// Observes/edits an element about to be appended; false suppresses the
  /// append entirely (the emit still counts as performed).
  std::function<bool(CaElement&)> emit;
  /// Transforms the response value (keyed on the thread's stable pc).
  std::function<Value(const ThreadCtx&, Value)> respond;
};

class SimEnv {
 public:
  using Word = objects::Word;

  /// `replay_only` runs the body purely from the oplog (used to recover
  /// the return value of a completed attempt); any fresh operation then
  /// is a divergence bug, reported as YieldInterrupt.
  SimEnv(World& world, ThreadCtx& t, const SimHooks* hooks,
         bool replay_only) noexcept
      : world_(world), t_(t), hooks_(hooks), replay_only_(replay_only) {}

  // --- yield operations: one scheduler step each ---
  //
  // Footprints under TSO: a buffered store is still recorded as a store at
  // its address (conservative — the buffer entry is invisible to other
  // threads until flushed, so treating it as already-visible only wakes
  // sleeping threads early, never too late). An op that drains a non-empty
  // buffer (seq_cst store, any CAS) touches every buffered address in one
  // step and is marked as a global effect — it never enters a sleep set
  // and wakes every sleeper. The intermediate states a non-atomic drain
  // would expose are covered by the explorer's separate flush transitions.

  Word load(Word block, Word off,
            objects::MemOrder mo = objects::MemOrder::kSeqCst) {
    if (Word logged = 0; replay(logged)) return logged;
    const Addr a = addr(block, off);
    world_.note_yield(StepFootprint::Kind::kLoad, a);
    return commit(world_.read(t_, a, mo));
  }

  void store(Word block, Word off, Word v,
             objects::MemOrder mo = objects::MemOrder::kSeqCst) {
    if (Word logged = 0; replay(logged)) return;
    const Addr a = addr(block, off);
    if (mo == objects::MemOrder::kSeqCst && world_.buffered(t_) != 0) {
      world_.note_global_effect();  // atomic drain + write, multi-address
    }
    world_.note_yield(StepFootprint::Kind::kStore, a);
    world_.write(t_, a, v, mo);
    commit(0);
  }

  bool cas(Word block, Word off, Word expected, Word desired,
           objects::MemOrder mo = objects::MemOrder::kSeqCst) {
    if (Word logged = 0; replay(logged)) return logged != 0;
    const Addr a = addr(block, off);
    if (world_.buffered(t_) != 0) {
      world_.note_global_effect();  // atomic drain + RMW, multi-address
    }
    world_.note_yield(StepFootprint::Kind::kUpdate, a);
    const bool ok =
        tagged_recycling()
            ? world_.reclaim_cas(t_, a, expected, desired, mo)
            : world_.cas(t_, a, expected, desired, mo);
    return commit(ok ? 1 : 0) != 0;
  }

  /// Protected load: under a recycling kHp/kTagged configuration the
  /// observation is registered with the world's protection state
  /// (atomically with the read — the sim analogue of the real backends'
  /// validated publish); everywhere else it is exactly load(), so
  /// non-recycling state spaces are untouched by the annotations.
  Word protect(Word block, Word off,
               objects::MemOrder mo = objects::MemOrder::kSeqCst) {
    if (!world_.recycling() ||
        world_.reclaim_policy() == runtime::ReclaimPolicy::kEbr) {
      return load(block, off, mo);
    }
    if (Word logged = 0; replay(logged)) return logged;
    const Addr a = addr(block, off);
    world_.note_yield(StepFootprint::Kind::kLoad, a);
    const Word v = world_.read(t_, a, mo);
    world_.reclaim_protect(t_, a, v);  // marks the step global
    return commit(v);
  }

  /// Tag-widened recheck (objects/env.hpp): constant true (non-yield) for
  /// EBR/HP, whose protect pins the block instead. Under a recycling
  /// kTagged configuration it evaluates *fused with the preceding yield
  /// op* rather than as its own scheduling point: a body that emits an
  /// element right after a validate (the MS-queue empty path) linearizes
  /// at the observation the validate retroactively justifies, and an
  /// extra interleaving point in between would let a concurrent update
  /// slide its element ahead of the emit in 𝒯 — misplacing a
  /// linearization the real machine gets right. Logged like a frozen
  /// read for deterministic replay; the hidden re-read of the validated
  /// cell marks the step as a global effect so the partial-order
  /// reduction never sleeps a writer past it.
  bool validate(Word block, Word off) {
    if (!tagged_recycling()) return true;
    if (frozen_cursor_ < t_.frozen.size()) {
      return t_.frozen[frozen_cursor_++] != 0;
    }
    if (replay_only_) throw YieldInterrupt{};
    world_.note_global_effect();
    const bool ok = world_.reclaim_validate(t_, addr(block, off));
    t_.frozen.push_back(ok ? 1 : 0);
    ++frozen_cursor_;
    return ok;
  }

  [[nodiscard]] runtime::ReclaimPolicy reclaim_policy() const noexcept {
    return world_.reclaim_policy();
  }

  Word choose(Word n) {
    if (Word logged = 0; replay(logged)) return logged;
    if (t_.choice < 0) throw ChoiceRequest{static_cast<std::int32_t>(n)};
    const Word c = t_.choice;
    t_.choice = -1;
    world_.note_yield(StepFootprint::Kind::kLocal, kNull);
    return commit(c);
  }

  // --- non-yield operations: run within the current step ---

  Word alloc(Word cells) {
    // Logged like a yield op so replays return the same address without
    // advancing the heap cursor (or re-promoting a recycled block), but
    // consumes no quantum.
    if (cursor_ < t_.oplog.size()) return t_.oplog[cursor_++];
    if (replay_only_) throw YieldInterrupt{};
    const Addr a = world_.reclaim_alloc(t_, static_cast<std::size_t>(cells));
    t_.oplog.push_back(static_cast<Word>(a));
    ++cursor_;
    return static_cast<Word>(a);
  }

  Word load_frozen(Word block, Word off) {
    // Without recycling, frozen cells can no longer change, so re-reading
    // on every re-execution is deterministic.
    if (!world_.recycling()) return world_.read(addr(block, off));
    // Under recycling the block can be promoted and rewritten after this
    // attempt observed it (that is the ABA the mode exists to surface), so
    // the observation is logged: replays — including the respond-step
    // recovery of the return value — see the recorded word, not the
    // recycled cell. Logged in ThreadCtx::frozen, not the oplog, and
    // still quantum-free: the protection protocol, not an extra
    // interleaving point, is what guards the dereference.
    if (frozen_cursor_ < t_.frozen.size()) {
      return t_.frozen[frozen_cursor_++];
    }
    if (replay_only_) throw YieldInterrupt{};
    const Word v = world_.read(addr(block, off));
    t_.frozen.push_back(v);
    ++frozen_cursor_;
    return v;
  }

  void store_private(Word block, Word off, Word v) {
    if (replay_only_) return;
    Word w = v;
    if (hooks_ != nullptr && hooks_->private_store) {
      w = hooks_->private_store(block, off, v);
    }
    world_.write(addr(block, off), w);  // idempotent across re-executions
  }

  // Reclamation side-effects are non-yield but not idempotent, so they
  // follow the emit discipline: counted on every re-execution of the
  // body, performed only the first time the body reaches them
  // (ThreadCtx::reclaims). Without WorldConfig::recycle_addresses the
  // world-side calls are no-ops beyond the retire-size check — addresses
  // stay valid forever, the historical no-ABA mode.

  void release() {
    if (!reclaim_fresh()) return;
    world_.reclaim_release(t_);
  }

  void retire(Word block, Word cells) {
    if (!reclaim_fresh()) return;
    world_.reclaim_retire(t_, static_cast<Addr>(block), cells,
                          /*grace=*/false);
  }

  void retire_grace(Word block, Word cells) {
    if (!reclaim_fresh()) return;
    world_.reclaim_retire(t_, static_cast<Addr>(block), cells,
                          /*grace=*/true);
  }

  void free_private(Word block, Word cells) {
    if (!reclaim_fresh()) return;
    world_.reclaim_free(static_cast<Addr>(block), cells);
  }

  void await(Word /*block*/, Word /*off*/, unsigned /*spins*/) const noexcept {
    // Whether a partner arrives "during the wait" is the scheduler's
    // interleaving choice; the wait itself needs no modelling.
  }

  template <typename F>
  void emit(F&& make) {
    ++emit_seen_;
    if (emit_seen_ <= t_.emits) return;  // appended in an earlier step
    t_.emits = emit_seen_;
    if (replay_only_) return;
    CaElement e = std::forward<F>(make)();
    if (hooks_ != nullptr && hooks_->emit && !hooks_->emit(e)) {
      return;  // suppressed (still counted as performed)
    }
    world_.append_element(e);
  }

  void label(std::int32_t pc) noexcept { t_.pc = pc; }
  void note(std::size_t reg, Word v) noexcept { t_.regs[reg] = v; }
  void event(unsigned bit) noexcept {
    if (!replay_only_) world_.signal_event(bit);  // idempotent OR anyway
  }

 private:
  static Addr addr(Word block, Word off) noexcept {
    return static_cast<Addr>(block + off);
  }

  [[nodiscard]] bool tagged_recycling() const noexcept {
    return world_.recycling() &&
           world_.reclaim_policy() == runtime::ReclaimPolicy::kTagged;
  }

  /// True exactly once per body position per attempt: the emit discipline
  /// applied to non-yield reclamation side-effects.
  bool reclaim_fresh() {
    ++reclaim_seen_;
    if (reclaim_seen_ <= t_.reclaims) return false;  // already performed
    t_.reclaims = reclaim_seen_;
    return !replay_only_;
  }

  /// Replays the next logged result into `out`; false = past the log.
  bool replay(Word& out) {
    if (cursor_ < t_.oplog.size()) {
      out = t_.oplog[cursor_++];
      return true;
    }
    if (fresh_done_ || replay_only_) throw YieldInterrupt{};
    return false;
  }

  /// Commits a fresh yield-op result: logs it and spends the quantum.
  Word commit(Word r) {
    t_.oplog.push_back(r);
    ++cursor_;
    fresh_done_ = true;
    return r;
  }

  World& world_;
  ThreadCtx& t_;
  const SimHooks* hooks_;
  bool replay_only_;
  std::size_t cursor_ = 0;        ///< position in t_.oplog
  std::size_t frozen_cursor_ = 0;  ///< position in t_.frozen (recycling)
  std::uint32_t emit_seen_ = 0;  ///< emits encountered this re-execution
  /// Reclamation ops encountered this re-execution (see reclaim_fresh).
  std::uint32_t reclaim_seen_ = 0;
  bool fresh_done_ = false;    ///< this step's quantum already spent
};

/// Adapter: runs one Env-parameterized attempt body as a SimObject. A
/// concrete sim object implements attempt() by calling its core with the
/// given env and mapping the typed outcome to (status, return value).
///
/// Step lifecycle per call: one invoke step (kIdle), one step per yield
/// operation of the body (kRunning; a completed attempt that must retry
/// clears the oplog and counts against `retry_bound` — exceeding it
/// truncates the thread), and one respond step (kDone) that replays the
/// finished body to recover the return value.
class EnvSimObject : public SimObject {
 public:
  enum class Status : std::uint8_t { kDone, kRetry };

  struct Attempt {
    Status status = Status::kDone;
    Value ret;
  };

  explicit EnvSimObject(std::size_t retry_bound = 2)
      : retry_bound_(retry_bound) {}

  /// Installs fault-injection hooks (mutation tests). Call before
  /// exploration; the hooks are shared by all world copies.
  void set_hooks(SimHooks hooks) { hooks_ = std::move(hooks); }
  [[nodiscard]] const SimHooks& hooks() const noexcept { return hooks_; }

  [[nodiscard]] StepResult step(World& world, ThreadCtx& t) const override {
    if (t.stage == ThreadStage::kIdle) {
      world.invoke(t);
      t.oplog.clear();
      t.frozen.clear();
      t.emits = 0;
      t.reclaims = 0;
      t.retries = 0;
      t.stage = ThreadStage::kRunning;
      return StepResult::ran();
    }

    if (t.stage == ThreadStage::kDone) {
      // Replay the completed body to recover its return value; respond.
      SimEnv env(world, t, &hooks_, /*replay_only=*/true);
      try {
        Attempt a = attempt(env, world, t);
        Value ret = std::move(a.ret);
        if (hooks_.respond) ret = hooks_.respond(t, ret);
        world.respond(t, ret);
      } catch (const YieldInterrupt&) {
        world.report_violation("replay of a completed attempt diverged");
      }
      return StepResult::ran();
    }

    SimEnv env(world, t, &hooks_, /*replay_only=*/false);
    try {
      const Attempt a = attempt(env, world, t);
      // The body returned within this step's quantum.
      if (a.status == Status::kRetry) {
        t.retries += 1;
        if (t.retries > retry_bound_) {
          world.truncate(t);
        } else {
          t.oplog.clear();  // next step starts a fresh attempt
          t.frozen.clear();
          t.emits = 0;
          t.reclaims = 0;
          t.pc = 0;
        }
      } else {
        t.stage = ThreadStage::kDone;  // respond gets its own step
      }
      return StepResult::ran();
    } catch (const YieldInterrupt&) {
      return StepResult::ran();
    } catch (const ChoiceRequest& c) {
      return StepResult::choice(c.n);
    }
  }

 protected:
  /// One pass of the body. Must be deterministic given the oplog.
  [[nodiscard]] virtual Attempt attempt(SimEnv& env, World& world,
                                        ThreadCtx& t) const = 0;

  /// The current call of `t` (argument extraction helper).
  [[nodiscard]] static const Call& current_call(const World& world,
                                                const ThreadCtx& t) {
    return world.config().programs[t.program].calls[t.call_idx];
  }

 private:
  std::size_t retry_bound_;
  SimHooks hooks_;
};

}  // namespace cal::sched
