// The Fig. 1 exchanger compiled into explicit atomic steps for the
// explorer, with the paper's auxiliary assignments at exactly the
// instrumented points (§5.1):
//
//   pc0  invoke; allocate Offer n = {tid, v, hole: null}
//   pc1  CAS(g, null, n)                        — INIT   → pc2 / pc5
//   pc2  CAS(n.hole, null, fail)                — PASS   → pc3 / pc4
//   pc3  𝒯 += E.{(tid, ex(v) ▷ (false,v))};       FAIL
//        respond (false, v)
//   pc4  partner = n.hole; respond (true, partner.data)
//   pc5  cur = g                                         → pc6 / pc9
//   pc6  s = CAS(cur.hole, null, n); if s:
//          𝒯 += E.swap(cur.tid, cur.data, tid, n.data)  — XCHG
//   pc7  CAS(g, cur, null)                      — CLEAN
//   pc8  respond (true, cur.data)
//   pc9  𝒯 += failure element; respond (false,v)         FAIL
//
// The bounded wait (Fig. 1 line 17, sleep(50)) needs no modelling: whether
// a partner arrives "during the wait" is exactly the scheduler's choice of
// running the partner's pc6 before this thread's pc2, so the schedule
// enumeration already covers every timeout outcome.
//
// Offer layout: [0] tid (the auxiliary field of §5.1), [1] data, [2] hole.
#pragma once

#include "sched/world.hpp"

namespace cal::sched {

class ExchangerMachine final : public SimObject {
 public:
  /// `name` is the object identity used in 𝒯 elements and histories.
  explicit ExchangerMachine(Symbol name) : name_(name) {}

  void init(World& world) override;
  [[nodiscard]] StepResult step(World& world, ThreadCtx& t) const override;

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  /// Address of the global offer slot g (for the rely/guarantee auditor).
  [[nodiscard]] Addr g_addr() const noexcept { return g_; }
  /// Address of the fail sentinel offer.
  [[nodiscard]] Addr fail_addr() const noexcept { return fail_; }

  // Offer field offsets.
  static constexpr Addr kTid = 0;
  static constexpr Addr kData = 1;
  static constexpr Addr kHole = 2;

  // Program counters (public so the proof-outline auditor can key
  // assertions by control point).
  enum Pc : std::int32_t {
    kInvoke = 0,
    kInitCas = 1,
    kPassCas = 2,
    kFailReturnA = 3,
    kSuccessReturnA = 4,
    kReadG = 5,
    kXchgCas = 6,
    kCleanCas = 7,
    kSuccessReturnB = 8,
    kFailReturnB = 9,
  };

  // Register allocation.
  enum Reg : std::size_t { kRegN = 0, kRegV = 1, kRegCur = 2, kRegS = 3 };

 private:
  Symbol name_;
  Addr g_ = kNull;
  Addr fail_ = kNull;
};

}  // namespace cal::sched
