#include "sched/machines/stack_machine.hpp"

namespace cal::sched {

namespace {
const Symbol& push_sym() {
  static const Symbol s{"push"};
  return s;
}
}  // namespace

void StackMachine::init(World& world) {
  top_ = world.alloc_global(1);  // Cell top = null (line 9)
}

StepResult StackMachine::step(World& world, ThreadCtx& t) const {
  const Call& call = world.config().programs[t.program].calls[t.call_idx];
  const bool is_push = call.method == push_sym();

  auto log_op = [&](Value arg, Value ret) {
    world.append_element(CaElement::singleton(
        name_, Operation::make(t.tid, name_, call.method, std::move(arg),
                               std::move(ret))));
  };

  switch (t.pc) {
    case kInvoke:
      world.invoke(t);
      t.pc = kRead;
      return StepResult::ran();

    case kRead: {
      const Word h = world.read(top_);
      t.regs[kRegHead] = h;
      if (is_push) {
        const Addr n = world.alloc(t, 2);  // Cell n = new Cell(data, h)
        world.write(n + kData, call.arg.as_int());
        world.write(n + kNext, h);
        t.regs[kRegNode] = n;
        t.pc = kPushCas;
      } else if (h == kNull) {  // line 17: EMPTY
        log_op(Value::unit(), Value::pair(false, 0));
        t.pc = kRespondFail;
      } else {
        t.pc = kPopReadNext;
      }
      return StepResult::ran();
    }

    case kPushCas: {  // line 13: return CAS(&top, h, n)
      const bool ok = world.cas(top_, t.regs[kRegHead], t.regs[kRegNode]);
      t.regs[kRegVal] = ok ? 1 : 0;
      log_op(call.arg, Value::boolean(ok));
      t.pc = kRespondOk;
      return StepResult::ran();
    }

    case kPopReadNext: {  // line 19: Cell n = h.next
      const Addr h = static_cast<Addr>(t.regs[kRegHead]);
      t.regs[kRegNode] = world.read(h + kNext);
      t.pc = kPopCas;
      return StepResult::ran();
    }

    case kPopCas: {  // line 20: CAS(&top, h, n)
      const Addr h = static_cast<Addr>(t.regs[kRegHead]);
      if (world.cas(top_, h, t.regs[kRegNode])) {
        const Word v = world.read(h + kData);
        t.regs[kRegVal] = v;
        log_op(Value::unit(), Value::pair(true, v));
        t.pc = kRespondOk;
      } else {  // line 23
        log_op(Value::unit(), Value::pair(false, 0));
        t.pc = kRespondFail;
      }
      return StepResult::ran();
    }

    case kRespondFail:
      world.respond(t, Value::pair(false, 0));
      return StepResult::ran();

    case kRespondOk:
      if (is_push) {
        world.respond(t, Value::boolean(t.regs[kRegVal] != 0));
      } else {
        world.respond(t, Value::pair(true, t.regs[kRegVal]));
      }
      return StepResult::ran();

    default:
      world.report_violation("stack machine: invalid pc");
      return StepResult::ran();
  }
}

}  // namespace cal::sched
