// The dual synchronous queue (objects/sync_queue.hpp) as a step machine —
// the paper's second exchanger-style client, exhaustively verifiable.
//
// Protocol steps (mirroring SyncQueue::transfer):
//   pc0  invoke
//   pc1  h = top; same-mode/empty → reserve, complementary → fulfill
//   pc2  CAS(top, h, node)          — publish reservation
//   pc3  CAS(node.match, 0, CANCEL) — timeout ("pass") vs matched
//   pc4  CAS(top, node, node.next)  — unlink own cancelled reservation
//   pc5  𝒯 += failure element; respond failure
//   pc6  respond success (waiter side; the fulfiller logged the pair)
//   pc7  m = h.match (≠0 → help unlink; =0 → try fulfill)
//   pc8  CAS(top, h, h.next)        — help remove matched/cancelled top
//   pc9  CAS(h.match, 0, node); on success 𝒯 += the pairing CA-element
//        Q.{(put(v) ▷ true), (take() ▷ (true,v))} — one atomic step
//        completing two operations, the XCHG analogue
//   pc10 CAS(top, h, h.next)        — pop the fulfilled reservation
//   pc11 respond success (fulfiller side)
//   pc12 retry bookkeeping (bounded; exceeding truncates the thread)
//
// Node layout: [0] mode (0 = DATA/put, 1 = REQUEST/take), [1] data,
// [2] tid, [3] match, [4] next.
#pragma once

#include "sched/world.hpp"

namespace cal::sched {

class SyncQueueMachine final : public SimObject {
 public:
  explicit SyncQueueMachine(Symbol name, std::size_t retry_bound = 2)
      : name_(name), retry_bound_(retry_bound) {}

  void init(World& world) override;
  [[nodiscard]] StepResult step(World& world, ThreadCtx& t) const override;

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] Addr top_addr() const noexcept { return top_; }

  static constexpr Addr kMode = 0;
  static constexpr Addr kData = 1;
  static constexpr Addr kTid = 2;
  static constexpr Addr kMatch = 3;
  static constexpr Addr kNext = 4;

  /// World event bit signalled when a hand-off pairing completes.
  static constexpr unsigned kEventPairing = 1;

  enum Pc : std::int32_t {
    kInvoke = 0,
    kReadTop = 1,
    kPushCas = 2,
    kMatchCas = 3,
    kUnlinkSelf = 4,
    kRespondFail = 5,
    kRespondWaiter = 6,
    kReadMatch = 7,
    kHelpUnlink = 8,
    kFulfillCas = 9,
    kUnlinkTop = 10,
    kRespondFulfiller = 11,
    kRetry = 12,
  };

  enum Reg : std::size_t {
    kRegNode = 0,
    kRegHead = 1,
    kRegV = 2,
    kRegMode = 3,
    kRegRetries = 4,
    kRegGot = 5,
  };

 private:
  Symbol name_;
  std::size_t retry_bound_;
  Addr top_ = kNull;
  Addr cancelled_ = kNull;
};

}  // namespace cal::sched
