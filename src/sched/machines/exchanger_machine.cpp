#include "sched/machines/exchanger_machine.hpp"

namespace cal::sched {

namespace {
const Symbol& exchange_sym() {
  static const Symbol s{"exchange"};
  return s;
}
}  // namespace

void ExchangerMachine::init(World& world) {
  g_ = world.alloc_global(1);     // Offer g = null (line 9)
  fail_ = world.alloc_global(3);  // Offer fail = new Offer(0,0) (line 10)
}

StepResult ExchangerMachine::step(World& world, ThreadCtx& t) const {
  const Call& call =
      world.config().programs[t.program].calls[t.call_idx];

  auto fail_element = [&](Word v) {
    return CaElement::singleton(
        name_, Operation::make(t.tid, name_, exchange_sym(),
                               Value::integer(v), Value::pair(false, v)));
  };

  switch (t.pc) {
    case kInvoke: {
      world.invoke(t);
      const Word v = call.arg.as_int();
      const Addr n = world.alloc(t, 3);  // Offer n = new Offer(tid, v)
      world.write(n + kTid, t.tid);
      world.write(n + kData, v);
      // hole starts null (cells are zeroed)
      t.regs[kRegN] = n;
      t.regs[kRegV] = v;
      t.pc = kInitCas;
      return StepResult::ran();
    }
    case kInitCas: {  // line 15: CAS(g, null, n)
      const Addr n = static_cast<Addr>(t.regs[kRegN]);
      t.pc = world.cas(g_, kNull, n) ? kPassCas : kReadG;
      return StepResult::ran();
    }
    case kPassCas: {  // line 18: CAS(n.hole, null, fail)
      const Addr n = static_cast<Addr>(t.regs[kRegN]);
      t.pc = world.cas(n + kHole, kNull, fail_) ? kFailReturnA
                                                : kSuccessReturnA;
      return StepResult::ran();
    }
    case kFailReturnA: {  // line 20: return (false, v) — FAIL aux append
      const Word v = t.regs[kRegV];
      world.append_element(fail_element(v));
      world.respond(t, Value::pair(false, v));
      return StepResult::ran();
    }
    case kSuccessReturnA: {  // line 22: return (true, n.hole.data)
      const Addr n = static_cast<Addr>(t.regs[kRegN]);
      const Addr partner = static_cast<Addr>(world.read(n + kHole));
      const Word data = world.read(partner + kData);
      world.respond(t, Value::pair(true, data));
      return StepResult::ran();
    }
    case kReadG: {  // line 25: Offer cur = g
      t.regs[kRegCur] = world.read(g_);
      t.pc = t.regs[kRegCur] == kNull ? kFailReturnB : kXchgCas;
      return StepResult::ran();
    }
    case kXchgCas: {  // line 29: s = CAS(cur.hole, null, n) — XCHG
      const Addr cur = static_cast<Addr>(t.regs[kRegCur]);
      const Addr n = static_cast<Addr>(t.regs[kRegN]);
      const bool s = world.cas(cur + kHole, kNull, n);
      t.regs[kRegS] = s ? 1 : 0;
      if (s) {
        // The auxiliary assignment of the XCHG action (§5.1): one concrete
        // atomic step logs a CA-element completing *two* operations.
        world.append_element(CaElement::swap(
            name_, exchange_sym(),
            static_cast<ThreadId>(world.read(cur + kTid)),
            world.read(cur + kData), t.tid, t.regs[kRegV]));
      }
      t.pc = kCleanCas;
      return StepResult::ran();
    }
    case kCleanCas: {  // line 31: CAS(g, cur, null) — CLEAN (unconditional)
      const Addr cur = static_cast<Addr>(t.regs[kRegCur]);
      world.cas(g_, cur, kNull);
      t.pc = t.regs[kRegS] != 0 ? kSuccessReturnB : kFailReturnB;
      return StepResult::ran();
    }
    case kSuccessReturnB: {  // line 33: return (true, cur.data)
      const Addr cur = static_cast<Addr>(t.regs[kRegCur]);
      world.respond(t, Value::pair(true, world.read(cur + kData)));
      return StepResult::ran();
    }
    case kFailReturnB: {  // line 35: return (false, v) — FAIL aux append
      const Word v = t.regs[kRegV];
      world.append_element(fail_element(v));
      world.respond(t, Value::pair(false, v));
      return StepResult::ran();
    }
    default:
      world.report_violation("exchanger machine: invalid pc");
      return StepResult::ran();
  }
}

}  // namespace cal::sched
