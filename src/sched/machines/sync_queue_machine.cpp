#include "sched/machines/sync_queue_machine.hpp"

namespace cal::sched {

namespace {
const Symbol& put_sym() {
  static const Symbol s{"put"};
  return s;
}
const Symbol& take_sym() {
  static const Symbol s{"take"};
  return s;
}
constexpr Word kModeData = 0;
constexpr Word kModeRequest = 1;
}  // namespace

void SyncQueueMachine::init(World& world) {
  top_ = world.alloc_global(1);
  cancelled_ = world.alloc_global(5);  // sentinel node
}

StepResult SyncQueueMachine::step(World& world, ThreadCtx& t) const {
  const Call& call = world.config().programs[t.program].calls[t.call_idx];
  const bool is_put = call.method == put_sym();

  auto log_failure = [&] {
    if (is_put) {
      world.append_element(CaElement::singleton(
          name_, Operation::make(t.tid, name_, put_sym(),
                                 Value::integer(t.regs[kRegV]),
                                 Value::boolean(false))));
    } else {
      world.append_element(CaElement::singleton(
          name_, Operation::make(t.tid, name_, take_sym(), Value::unit(),
                                 Value::pair(false, 0))));
    }
  };
  auto log_pair = [&](ThreadId putter, Word v, ThreadId taker) {
    world.append_element(CaElement(
        name_, {Operation::make(putter, name_, put_sym(), Value::integer(v),
                                Value::boolean(true)),
                Operation::make(taker, name_, take_sym(), Value::unit(),
                                Value::pair(true, v))}));
    world.signal_event(kEventPairing);
  };

  switch (t.pc) {
    case kInvoke:
      world.invoke(t);
      t.regs[kRegV] = is_put ? call.arg.as_int() : 0;
      t.regs[kRegMode] = is_put ? kModeData : kModeRequest;
      t.regs[kRegRetries] = 0;
      t.pc = kReadTop;
      return StepResult::ran();

    case kReadTop: {
      const Word h = world.read(top_);
      t.regs[kRegHead] = h;
      if (h == kNull ||
          world.read(static_cast<Addr>(h) + kMode) == t.regs[kRegMode]) {
        // Reserve: allocate the node now; published at the next CAS.
        const Addr node = world.alloc(t, 5);
        world.write(node + kMode, t.regs[kRegMode]);
        world.write(node + kData, t.regs[kRegV]);
        world.write(node + kTid, t.tid);
        world.write(node + kNext, h);
        t.regs[kRegNode] = node;
        t.pc = kPushCas;
      } else {
        t.pc = kReadMatch;
      }
      return StepResult::ran();
    }

    case kPushCas: {
      const Addr node = static_cast<Addr>(t.regs[kRegNode]);
      t.pc = world.cas(top_, t.regs[kRegHead], node) ? kMatchCas : kRetry;
      return StepResult::ran();
    }

    case kMatchCas: {
      // Timeout attempt — the "pass" of Fig. 1 line 18 transplanted: if we
      // can cancel, nobody matched; otherwise the fulfiller already paired
      // us (and logged the joint element).
      const Addr node = static_cast<Addr>(t.regs[kRegNode]);
      t.pc = world.cas(node + kMatch, kNull, cancelled_) ? kUnlinkSelf
                                                         : kRespondWaiter;
      return StepResult::ran();
    }

    case kUnlinkSelf: {
      const Addr node = static_cast<Addr>(t.regs[kRegNode]);
      const Word next = world.read(node + kNext);
      Word self = node;
      world.cas(top_, self, next);  // best-effort
      t.pc = kRespondFail;
      return StepResult::ran();
    }

    case kRespondFail:
      log_failure();
      if (is_put) {
        world.respond(t, Value::boolean(false));
      } else {
        world.respond(t, Value::pair(false, 0));
      }
      return StepResult::ran();

    case kRespondWaiter: {
      const Addr node = static_cast<Addr>(t.regs[kRegNode]);
      const Addr partner = static_cast<Addr>(world.read(node + kMatch));
      if (is_put) {
        world.respond(t, Value::boolean(true));
      } else {
        world.respond(t, Value::pair(true, world.read(partner + kData)));
      }
      return StepResult::ran();
    }

    case kReadMatch: {
      const Addr h = static_cast<Addr>(t.regs[kRegHead]);
      t.pc = world.read(h + kMatch) != kNull ? kHelpUnlink : kFulfillCas;
      return StepResult::ran();
    }

    case kHelpUnlink: {
      const Addr h = static_cast<Addr>(t.regs[kRegHead]);
      const Word next = world.read(h + kNext);
      Word head = h;
      world.cas(top_, head, next);
      t.pc = kRetry;
      return StepResult::ran();
    }

    case kFulfillCas: {
      const Addr h = static_cast<Addr>(t.regs[kRegHead]);
      const Addr node = world.alloc(t, 5);
      world.write(node + kMode, t.regs[kRegMode]);
      world.write(node + kData, t.regs[kRegV]);
      world.write(node + kTid, t.tid);
      if (world.cas(h + kMatch, kNull, node)) {
        // The fulfilling CAS completes both operations; append the joint
        // element atomically with it.
        const auto partner_tid =
            static_cast<ThreadId>(world.read(h + kTid));
        if (is_put) {
          log_pair(/*putter=*/t.tid, t.regs[kRegV], /*taker=*/partner_tid);
        } else {
          log_pair(/*putter=*/partner_tid, world.read(h + kData),
                   /*taker=*/t.tid);
          t.regs[kRegGot] = world.read(h + kData);
        }
        t.pc = kUnlinkTop;
      } else {
        t.pc = kRetry;
      }
      return StepResult::ran();
    }

    case kUnlinkTop: {
      const Addr h = static_cast<Addr>(t.regs[kRegHead]);
      const Word next = world.read(h + kNext);
      Word head = h;
      world.cas(top_, head, next);
      t.pc = kRespondFulfiller;
      return StepResult::ran();
    }

    case kRespondFulfiller:
      if (is_put) {
        world.respond(t, Value::boolean(true));
      } else {
        world.respond(t, Value::pair(true, t.regs[kRegGot]));
      }
      return StepResult::ran();

    case kRetry:
      t.regs[kRegRetries] += 1;
      if (static_cast<std::size_t>(t.regs[kRegRetries]) > retry_bound_) {
        world.truncate(t);
      } else {
        t.pc = kReadTop;
      }
      return StepResult::ran();

    default:
      world.report_violation("sync queue machine: invalid pc");
      return StepResult::ran();
  }
}

}  // namespace cal::sched
