#include "sched/machines/elim_stack_machine.hpp"

#include "cal/specs/elim_views.hpp"

namespace cal::sched {

namespace {
const Symbol& push_sym() {
  static const Symbol s{"push"};
  return s;
}
const Symbol& pop_sym() {
  static const Symbol s{"pop"};
  return s;
}
const Symbol& exchange_sym() {
  static const Symbol s{"exchange"};
  return s;
}
}  // namespace

void ElimStackMachine::init(World& world) {
  top_ = world.alloc_global(1);
  fail_ = world.alloc_global(3);
  slots_.clear();
  slot_names_.clear();
  for (std::size_t i = 0; i < width_; ++i) {
    slots_.push_back(world.alloc_global(1));
    slot_names_.push_back(elim_slot_name(ar_, i));
  }
}

Word ElimStackMachine::offer_value(bool is_push, const Call& call) {
  return is_push ? call.arg.as_int() : kInfinity;  // POP_SENTINAL
}

StepResult ElimStackMachine::step(World& world, ThreadCtx& t) const {
  const Call& call = world.config().programs[t.program].calls[t.call_idx];
  const bool is_push = call.method == push_sym();

  auto log_stack = [&](Symbol method, Value arg, Value ret) {
    world.append_element(CaElement::singleton(
        s_, Operation::make(t.tid, s_, method, std::move(arg),
                            std::move(ret))));
  };
  auto log_exch_fail = [&](std::size_t slot, Word v) {
    world.append_element(CaElement::singleton(
        slot_names_[slot],
        Operation::make(t.tid, slot_names_[slot], exchange_sym(),
                        Value::integer(v), Value::pair(false, v))));
  };
  /// Routes an exchange outcome value `d`: elimination success responds,
  /// anything else retries.
  auto after_exchange = [&](Word d) {
    if (is_push) {
      t.pc = d == kInfinity ? kRespondPush : kRetry;  // line 35
    } else {
      t.regs[kRegVal] = d;
      t.pc = d != kInfinity ? kRespondPop : kRetry;  // line 45
    }
    if (t.pc != kRetry) world.signal_event(kEventElimination);
  };

  switch (t.pc) {
    case kInvoke:
      world.invoke(t);
      t.regs[kRegRetries] = 0;
      t.pc = kStackRead;
      return StepResult::ran();

    case kStackRead: {  // S.push / S.pop first read
      const Word h = world.read(top_);
      t.regs[kRegHead] = h;
      if (is_push) {
        const Addr n = world.alloc(t, 2);
        world.write(n + kData, call.arg.as_int());
        world.write(n + kNext, h);
        t.regs[kRegNode] = n;
        t.pc = kStackPushCas;
      } else if (h == kNull) {
        // S.pop EMPTY (Fig. 2 line 18): logged, then off to elimination.
        log_stack(pop_sym(), Value::unit(), Value::pair(false, 0));
        t.pc = kChooseSlot;
      } else {
        t.pc = kStackPopNext;
      }
      return StepResult::ran();
    }

    case kStackPushCas: {
      const bool ok = world.cas(top_, t.regs[kRegHead], t.regs[kRegNode]);
      log_stack(push_sym(), call.arg, Value::boolean(ok));
      t.pc = ok ? kRespondPush : kChooseSlot;
      return StepResult::ran();
    }

    case kStackPopNext: {
      const Addr h = static_cast<Addr>(t.regs[kRegHead]);
      t.regs[kRegNode] = world.read(h + kNext);
      t.pc = kStackPopCas;
      return StepResult::ran();
    }

    case kStackPopCas: {
      const Addr h = static_cast<Addr>(t.regs[kRegHead]);
      if (world.cas(top_, h, t.regs[kRegNode])) {
        const Word v = world.read(h + kData);
        t.regs[kRegVal] = v;
        log_stack(pop_sym(), Value::unit(), Value::pair(true, v));
        t.pc = kRespondPop;
      } else {
        log_stack(pop_sym(), Value::unit(), Value::pair(false, 0));
        t.pc = kChooseSlot;
      }
      return StepResult::ran();
    }

    case kChooseSlot: {  // Fig. 2 line 4: int slot = random(0, K-1)
      if (t.choice < 0) {
        return StepResult::choice(static_cast<std::int32_t>(width_));
      }
      t.regs[kRegSlot] = t.choice;
      t.pc = kExchInitCas;
      return StepResult::ran();
    }

    case kExchInitCas: {
      const Word v = offer_value(is_push, call);
      const Addr n = world.alloc(t, 3);
      world.write(n + kOfferTid, t.tid);
      world.write(n + kOfferData, v);
      t.regs[kRegNode] = n;
      const Addr g = slots_[t.regs[kRegSlot]];
      t.pc = world.cas(g, kNull, n) ? kExchPassCas : kExchReadG;
      return StepResult::ran();
    }

    case kExchPassCas: {
      const Addr n = static_cast<Addr>(t.regs[kRegNode]);
      const std::size_t slot = static_cast<std::size_t>(t.regs[kRegSlot]);
      if (world.cas(n + kOfferHole, kNull, fail_)) {
        // Timed out unmatched: the inner exchange returns (false, v).
        log_exch_fail(slot, offer_value(is_push, call));
        t.pc = kRetry;
      } else {
        const Addr partner = static_cast<Addr>(world.read(n + kOfferHole));
        after_exchange(world.read(partner + kOfferData));
      }
      return StepResult::ran();
    }

    case kExchReadG: {
      const Addr g = slots_[t.regs[kRegSlot]];
      const Word cur = world.read(g);
      t.regs[kRegHead] = cur;
      if (cur == kNull) {
        log_exch_fail(static_cast<std::size_t>(t.regs[kRegSlot]),
                      offer_value(is_push, call));
        t.pc = kRetry;
      } else {
        t.pc = kExchXchgCas;
      }
      return StepResult::ran();
    }

    case kExchXchgCas: {
      const Addr cur = static_cast<Addr>(t.regs[kRegHead]);
      const Addr n = static_cast<Addr>(t.regs[kRegNode]);
      const std::size_t slot = static_cast<std::size_t>(t.regs[kRegSlot]);
      const bool s = world.cas(cur + kOfferHole, kNull, n);
      t.regs[kRegS] = s ? 1 : 0;
      if (s) {
        world.append_element(CaElement::swap(
            slot_names_[slot], exchange_sym(),
            static_cast<ThreadId>(world.read(cur + kOfferTid)),
            world.read(cur + kOfferData), t.tid,
            offer_value(is_push, call)));
      }
      t.pc = kExchCleanCas;
      return StepResult::ran();
    }

    case kExchCleanCas: {
      const Addr cur = static_cast<Addr>(t.regs[kRegHead]);
      const Addr g = slots_[t.regs[kRegSlot]];
      world.cas(g, cur, kNull);
      if (t.regs[kRegS] != 0) {
        after_exchange(world.read(cur + kOfferData));
      } else {
        log_exch_fail(static_cast<std::size_t>(t.regs[kRegSlot]),
                      offer_value(is_push, call));
        t.pc = kRetry;
      }
      return StepResult::ran();
    }

    case kRespondPush:
      world.respond(t, Value::boolean(true));
      return StepResult::ran();

    case kRespondPop:
      world.respond(t, Value::pair(true, t.regs[kRegVal]));
      return StepResult::ran();

    case kRetry: {
      t.regs[kRegRetries] += 1;
      if (static_cast<std::size_t>(t.regs[kRegRetries]) > retry_bound_) {
        world.truncate(t);
      } else {
        t.pc = kStackRead;
      }
      return StepResult::ran();
    }

    default:
      world.report_violation("elimination stack machine: invalid pc");
      return StepResult::ran();
  }
}

}  // namespace cal::sched
