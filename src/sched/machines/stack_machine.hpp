// The central stack of Fig. 2 (class Stack) as a step machine: one-shot
// CAS push/pop logging singleton CA-elements at the linearization points.
//
//   push: pc0 invoke           pop: pc0 invoke
//         pc1 h = top; alloc n      pc1 h = top (null → pc4 via empty log)
//         pc2 CAS(top,h,n); log     pc2 n = h.next
//         pc3 respond               pc3 CAS(top,h,n); log
//                                   pc4/pc5 respond fail/ok
//
// Cell layout: [0] data, [1] next.
#pragma once

#include "sched/world.hpp"

namespace cal::sched {

class StackMachine final : public SimObject {
 public:
  explicit StackMachine(Symbol name) : name_(name) {}

  void init(World& world) override;
  [[nodiscard]] StepResult step(World& world, ThreadCtx& t) const override;

  [[nodiscard]] Symbol name() const noexcept { return name_; }
  [[nodiscard]] Addr top_addr() const noexcept { return top_; }

  static constexpr Addr kData = 0;
  static constexpr Addr kNext = 1;

  enum Pc : std::int32_t {
    kInvoke = 0,
    kRead = 1,
    kPushCas = 2,
    kPopReadNext = 3,
    kPopCas = 4,
    kRespondFail = 5,
    kRespondOk = 6,
  };

  enum Reg : std::size_t { kRegNode = 0, kRegHead = 1, kRegVal = 2 };

 private:
  Symbol name_;
  Addr top_ = kNull;
};

}  // namespace cal::sched
