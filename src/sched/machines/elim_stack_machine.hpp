// The elimination stack of Fig. 2 as a step machine: the central-stack
// attempt and the elimination-array exchange inlined into one pc space,
// with the retry loop bounded (a thread that exhausts its retry budget is
// truncated — its operation stays pending, which the checkers handle as an
// incomplete history; see Explorer).
//
// The machine appends the *subobjects'* CA-elements (S singletons, E[slot]
// swaps/failures) to 𝒯, exactly like the composed real implementation; the
// World's configured view 𝔽_ES = F̂_ES ∘ F̂_AR maps them to ES-level
// linearization points for the online audit — the paper's §5 modular
// argument run operationally.
//
// The elimination slot choice (Fig. 2 line 4, random(0, K-1)) is a genuine
// nondeterministic choice: the explorer forks on every slot.
#pragma once

#include <vector>

#include "sched/world.hpp"

namespace cal::sched {

class ElimStackMachine final : public SimObject {
 public:
  /// `es` / `s` / `ar` name the composite and its two subobjects; `width`
  /// is the elimination array size K; `retry_bound` caps the Fig. 2
  /// while(true) loop per operation.
  ElimStackMachine(Symbol es, Symbol s, Symbol ar, std::size_t width,
                   std::size_t retry_bound = 2)
      : es_(es), s_(s), ar_(ar), width_(width), retry_bound_(retry_bound) {}

  void init(World& world) override;
  [[nodiscard]] StepResult step(World& world, ThreadCtx& t) const override;

  [[nodiscard]] Symbol name() const noexcept { return es_; }
  [[nodiscard]] Symbol stack_name() const noexcept { return s_; }
  [[nodiscard]] Symbol array_name() const noexcept { return ar_; }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] Addr top_addr() const noexcept { return top_; }
  [[nodiscard]] Addr slot_g_addr(std::size_t i) const { return slots_[i]; }

  // Cell layout: [0] data, [1] next. Offer layout: [0] tid, [1] data,
  // [2] hole.
  static constexpr Addr kData = 0;
  static constexpr Addr kNext = 1;
  static constexpr Addr kOfferTid = 0;
  static constexpr Addr kOfferData = 1;
  static constexpr Addr kOfferHole = 2;

  enum Pc : std::int32_t {
    kInvoke = 0,
    kStackRead = 1,
    kStackPushCas = 2,
    kStackPopNext = 3,
    kStackPopCas = 4,
    kChooseSlot = 5,
    kExchInitCas = 6,
    kExchPassCas = 7,
    kExchReadG = 8,
    kExchXchgCas = 9,
    kExchCleanCas = 10,
    kRespondPush = 11,
    kRespondPop = 12,
    kRetry = 13,
  };

  /// World event bit signalled when an operation completes by elimination
  /// (reachability beacon; see World::signal_event).
  static constexpr unsigned kEventElimination = 0;

  enum Reg : std::size_t {
    kRegNode = 0,
    kRegHead = 1,
    kRegVal = 2,
    kRegS = 3,
    kRegRetries = 4,
    kRegSlot = 5,
  };

 private:
  /// The value this thread offers to the elimination array.
  [[nodiscard]] static Word offer_value(bool is_push, const Call& call);

  Symbol es_;
  Symbol s_;
  Symbol ar_;
  std::size_t width_;
  std::size_t retry_bound_;
  Addr top_ = kNull;
  Addr fail_ = kNull;
  std::vector<Addr> slots_;
  std::vector<Symbol> slot_names_;
};

}  // namespace cal::sched
