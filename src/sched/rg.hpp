// Executable rely/guarantee verification of the exchanger (Fig. 4 + the
// Fig. 1 proof outline).
//
// The paper's proof obligations, discharged by enumeration over the
// explorer's state space instead of by hand:
//
//   * Guarantee conformance (G^t = INIT ∨ CLEAN ∨ PASS ∨ XCHG ∨ FAIL):
//     every transition that changes shared exchanger state or appends an
//     exchanger element to 𝒯 must match one of the five actions, executed
//     by the thread the action is parameterized over. Local-heap
//     initialization of a not-yet-published offer and pure reads are
//     stutter steps. Because every thread's every transition is checked,
//     this simultaneously establishes the rely of every other thread
//     (G^t ⇒ R^t' for t ≠ t').
//   * Invariant J: g ≠ null ∧ g.hole = null ⇒ InE(g.tid) — the published
//     unmatched offer belongs to a thread currently inside exchange().
//   * Proof-outline assertions (Fig. 1): the assertions A and B(k) at each
//     control point, with TE|tid = T encoded as "this operation not yet
//     logged" and TE|tid = T·E.swap(...) as "logged with (true, k.data)".
//     Checking them at every reachable state is exactly checking their
//     stability under the rely: any interference that invalidated one
//     would surface as a failed assertion in some interleaving.
//
// The audited object is the Env-instantiated SimExchanger — the same
// objects/core/exchanger_core.hpp body the real runtime executes — so the
// guarantee actions here describe the transitions of the re-execution
// engine: the paper's auxiliary appends are fused with their instrumented
// CAS (PASS appends the failure element in the same step; XCHG appends the
// swap), and line 13's private initialization rides along with the step
// that publishes or first yields.
//
// Requires WorldConfig::record_trace = true (the auditor reads the 𝒯 delta
// of each transition).
#pragma once

#include <optional>
#include <string>

#include "sched/explorer.hpp"
#include "sched/sim_objects.hpp"

namespace cal::sched {

class ExchangerRgAuditor final : public TransitionAuditor {
 public:
  explicit ExchangerRgAuditor(const SimExchanger& object,
                              bool check_proof_outline = true,
                              bool check_guarantee = true)
      : object_(object),
        check_outline_(check_proof_outline),
        check_guarantee_(check_guarantee) {}

  [[nodiscard]] std::optional<std::string> check_transition(
      const World& pre, const World& post, ThreadId actor) const override;

  [[nodiscard]] std::optional<std::string> check_invariant(
      const World& world) const override;

 private:
  struct Change {
    Addr addr;
    Word before;
    Word after;
  };

  [[nodiscard]] std::optional<std::string> classify(
      const World& pre, const World& post, ThreadId actor,
      const std::vector<Change>& shared, std::size_t appended) const;

  [[nodiscard]] std::optional<std::string> check_outline(
      const World& world, const ThreadCtx& t) const;

  const SimExchanger& object_;
  bool check_outline_;
  bool check_guarantee_;
};

/// Rely/guarantee audit of the reclamation layer (the Reclaimer policy
/// axis under WorldConfig::recycle_addresses): every thread's guarantee
/// includes "I only unmap blocks no concurrent operation can still
/// dereference", and every thread relies on exactly that. Two checks:
///
///   * Stale-generation admission (kTagged): a CAS or validate succeeded
///     only because tag truncation made distinct generations congruent —
///     the tag-width mutant's signature (World::tagged_aba_step).
///   * Lost protection (kEbr/kHp): a retired block was promoted back to
///     the allocator while a mid-attempt (kRunning) thread other than its
///     retirer still holds its address in its oplog — under the protocol
///     such a thread would have pinned the block (grace bit or hazard
///     slot), so a promotion under its feet means a protect was dropped
///     or a grace period was cut short. Skipped under kTagged, where
///     reuse-while-referenced is the designed behavior. Oplogs are
///     compared by raw word, so corpora must keep payload values below
///     the heap base (every shipped corpus does).
///
/// Trivially silent without recycle_addresses. Like every auditor it
/// forces POR/symmetry off, observing each transition.
class ReclaimRgAuditor final : public TransitionAuditor {
 public:
  ReclaimRgAuditor() = default;

  [[nodiscard]] std::optional<std::string> check_transition(
      const World& pre, const World& post, ThreadId actor) const override;

  [[nodiscard]] std::optional<std::string> check_invariant(
      const World& world) const override;
};

}  // namespace cal::sched
