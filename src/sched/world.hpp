// The explorer's world state and the online CAL audit.
//
// A World is one configuration of the simulated program: the shared memory,
// every thread's control state, and the audit state. Worlds are plain
// values — the explorer copies them to branch and hashes their encoding to
// merge converged schedules.
//
// The online audit is the executable form of the paper's proof obligations.
// The instrumentation appends CA-elements to 𝒯 at commit points; the audit
// maintains, per thread, whether its current operation has been logged and
// with what result, and checks:
//
//   (L1) an appended element only mentions *currently executing, not yet
//        logged* operations, with matching method and argument;
//   (L2) every response returns exactly the value its operation was logged
//        with — the paper's postcondition TE|tid = T·(element);
//   (L3) the appended elements, viewed through the object's composed view
//        function 𝔽_o, replay against the interface specification
//        (T_o ∈ 𝒯spec).
//
// L1 guarantees every logged element is a set of pairwise-overlapping
// operations appended inside all its members' intervals, so the recorded
// history automatically agrees with 𝒯 (Def. 5: take π = element position);
// L2 ties the concrete return values to 𝒯; L3 ties 𝒯 to the spec. Together
// a violation-free exploration establishes CAL (Def. 6) for every schedule.
// The offline checkers cross-validate this argument on enumerated histories
// in the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/history.hpp"
#include "cal/spec.hpp"
#include "cal/view.hpp"
#include "runtime/reclaim/reclaimer.hpp"
#include "sched/sim_memory.hpp"

namespace cal::sched {

using cal::ThreadId;

/// One operation a thread will perform: which simulated object (index into
/// the world's object table), which method, which argument.
struct Call {
  std::size_t object = 0;
  Symbol method;
  Value arg;
};

/// A thread's whole program: the sequence of calls it makes.
struct ThreadProgram {
  ThreadId tid = 0;
  std::vector<Call> calls;
};

/// Lifecycle of a thread's current call under the re-execution engine
/// (sched/sim_env.hpp): idle (next step invokes), running the attempt
/// body, or completed (next step replays the body to recover the return
/// value and responds).
enum class ThreadStage : std::uint8_t { kIdle = 0, kRunning = 1, kDone = 2 };

struct ThreadCtx {
  ThreadId tid = 0;
  std::size_t program = 0;   ///< index into the immutable program table
  std::size_t call_idx = 0;  ///< next / current call
  std::int32_t pc = 0;
  std::array<Word, 8> regs{};
  std::int32_t choice = -1;  ///< set by the explorer before a choice step

  // Re-execution state for Env-instantiated bodies (sched/sim_env.hpp):
  // the results of the yield operations (and allocations) already
  // committed by the current attempt, in program order. Each scheduler
  // step re-runs the body, replaying this log and committing exactly one
  // fresh yield operation.
  std::vector<Word> oplog;
  /// Frozen-read results logged under recycling (sched/sim_env.hpp
  /// load_frozen): with address reuse a "frozen" cell can be promoted and
  /// rewritten after the attempt observed it, so replays must return the
  /// recorded words. Kept out of the oplog so that log stays what the
  /// reclamation auditor scans: addresses obtained from yield-granularity
  /// shared observations (plus allocs), not data values read through them.
  std::vector<Word> frozen;
  std::uint32_t emits = 0;    ///< CA-elements already appended this call
  /// Non-yield reclamation side-effects (release/retire/free_private)
  /// already performed this attempt — the emit discipline applied to the
  /// reclamation layer (sched/sim_env.hpp). Deterministically derived
  /// from the oplog, so it needs no slot in the state encoding.
  std::uint32_t reclaims = 0;
  std::uint32_t retries = 0;  ///< attempts already abandoned this call
  ThreadStage stage = ThreadStage::kIdle;

  // Audit bookkeeping for the current operation.
  bool op_active = false;
  bool op_logged = false;
  Value op_logged_ret;

  bool truncated = false;  ///< halted at a retry bound; operation pending

  [[nodiscard]] bool done(std::size_t program_size) const noexcept {
    return truncated || call_idx >= program_size;
  }
};

/// Dependence footprint of one scheduler step, recorded by the Env layer
/// as the step executes. A step is *pure* when its only shared effect is
/// its single yield operation (load/store/CAS/choose) — no invoke,
/// respond, CA-element append, truncation, or violation. Two pure steps
/// commute iff either is a local choice, both are loads, or they touch
/// different cells; any non-pure step is dependent with everything (its
/// history action / audit effect is order-sensitive). The explorer's
/// partial-order reduction (sched/explorer.cpp) builds sleep sets from
/// these footprints; see DESIGN.md for the soundness argument.
struct StepFootprint {
  enum class Kind : std::uint8_t {
    kNone = 0,  ///< no yield op committed (invoke / respond / truncate step)
    kLoad,
    kStore,
    kUpdate,  ///< CAS, successful or not
    kLocal,   ///< choose: no shared-memory access
  };
  Kind kind = Kind::kNone;
  Addr addr = kNull;
  /// Globally visible effect beyond the yield op (invoke, respond,
  /// append_element, truncate, violation): dependent with every step.
  bool global = false;

  [[nodiscard]] bool pure() const noexcept {
    return kind != Kind::kNone && !global;
  }
};

/// Commutativity of two pure steps (non-pure steps never commute).
[[nodiscard]] inline bool footprints_independent(
    const StepFootprint& a, const StepFootprint& b) noexcept {
  if (!a.pure() || !b.pure()) return false;
  if (a.kind == StepFootprint::Kind::kLocal ||
      b.kind == StepFootprint::Kind::kLocal) {
    return true;
  }
  if (a.kind == StepFootprint::Kind::kLoad &&
      b.kind == StepFootprint::Kind::kLoad) {
    return true;
  }
  return a.addr != b.addr;
}

/// Immutable per-exploration configuration shared by all world copies.
struct WorldConfig {
  std::vector<ThreadProgram> programs;
  /// Interface name of each simulated object, indexed by Call::object.
  std::vector<Symbol> object_names;
  /// Interface-level specification used by the online replay (L3).
  const CaSpec* spec = nullptr;
  /// Composed view 𝔽 applied to every appended element before the replay
  /// and the logging marks; null = identity.
  const ViewFunction* view = nullptr;
  /// Record the interleaved history / raw trace along each path (disables
  /// nothing by itself, but meaningful mostly with merging off).
  bool record_history = false;
  bool record_trace = false;
  /// Heap cells per thread in the simulated memory.
  std::size_t heap_cells = 512;
  std::size_t global_cells = 64;
  /// Memory model of the simulated machine (sched/sim_memory.hpp). Under
  /// kTso the explorer additionally offers one flush transition per thread
  /// with a non-empty store buffer, and terminal states require all
  /// buffers drained.
  MemoryModel memory_model = MemoryModel::kSc;

  // --- reclamation / address reuse (the reuse-aware allocator mode) ---
  /// Recycle retired heap blocks: alloc() reuses the oldest eligible
  /// retired (or free_private'd) block of the same size before bumping
  /// the cursor. Off (the default), addresses are never reused — the
  /// historical no-ABA mode, and the control that shows recycling is
  /// load-bearing for the ABA mutants. Recycling adds the reclamation
  /// state to World::encode and deactivates WorldCanon (recycled blocks
  /// break its segment-ownership value discipline).
  bool recycle_addresses = false;
  /// Which backend's protection protocol the simulated Env models when
  /// recycling: kEbr (protect = plain load; grace = operation intervals),
  /// kHp (protect publishes a hazard slot), kTagged (protect records the
  /// cell's generation; CAS/validate compare it tag-widened).
  runtime::ReclaimPolicy reclaim_policy = runtime::ReclaimPolicy::kEbr;
  /// Generation-counter width under kTagged: CAS/validate compare
  /// generations modulo 2^tag_bits. 0 models the tag-width-truncation
  /// mutant (every generation congruent — the tag defends nothing).
  unsigned tag_bits = 16;
  /// Mutant switch: retired blocks become reusable immediately, ignoring
  /// grace periods and hazard slots (a reclaimer that frees too early).
  bool premature_free = false;
};

// --- simulated reclamation state (WorldConfig::recycle_addresses) ---

/// One protect record of the simulated tagged backend: the protected
/// cell, the value observed, and the cell's generation at observation
/// time — the side-table analogue of runtime/reclaim/tagged.hpp's packed
/// tag (simulated cells hold plain values; generations live beside them).
struct ProtRecord {
  Addr cell = kNull;
  Word value = 0;
  std::uint32_t version = 0;

  friend bool operator==(const ProtRecord&, const ProtRecord&) = default;
};

/// A retired but not yet reusable block.
struct RetiredBlock {
  Addr block = kNull;
  Word cells = 0;
  /// Thread indices whose operations were active when the block was
  /// retired under grace semantics; bits clear as those operations
  /// respond, and the block becomes reusable when the mask empties.
  std::uint64_t graced_mask = 0;
  bool grace = false;  ///< retired via retire_grace (grace under any policy)
  /// Thread index of the retirer. The protocols let the retirer keep the
  /// address in its oplog past the retire, so the rely/guarantee
  /// reclamation auditor exempts it from the stale-reference check.
  std::uint32_t retirer = 0;

  friend bool operator==(const RetiredBlock&, const RetiredBlock&) = default;
};

/// Per-thread protection-protocol state.
struct ThreadReclaim {
  /// Hazard slots under kHp — same budget and round-robin rotation as the
  /// real backend (runtime/reclaim/hazard.hpp kSlots).
  std::array<Word, 4> hazards{};
  std::uint32_t next_slot = 0;
  /// Tagged protect records; the first record per cell wins, like the
  /// real backend (a refresh would be unsound — see tagged.cpp).
  std::vector<ProtRecord> records;

  friend bool operator==(const ThreadReclaim&, const ThreadReclaim&) = default;
};

class World {
 public:
  explicit World(const WorldConfig& config);

  // --- machine-facing API (one shared access per scheduling step) ---
  //
  // The thread-less overloads bypass the memory model (no store-buffer
  // interaction): object init code and private (pre-publication) stores
  // use them, as do read-only observers that must see flushed memory
  // (auditors, frozen reads — the frozen-cell discipline guarantees the
  // value was published before the reader could learn the address).
  [[nodiscard]] Word read(Addr a) const { return mem_.read(a); }
  void write(Addr a, Word v) { mem_.write(a, v); }
  bool cas(Addr a, Word expect, Word desired) {
    return mem_.cas(a, expect, desired);
  }

  // Model-aware accesses of the yield operations (sched/sim_env.hpp):
  // routed by thread index so TSO store buffering attributes correctly.
  [[nodiscard]] Word read(const ThreadCtx& t, Addr a,
                          objects::MemOrder mo) const {
    return mem_.load(static_cast<std::uint32_t>(t.program), a, mo);
  }
  /// Returns true iff the store buffered instead of hitting memory.
  bool write(const ThreadCtx& t, Addr a, Word v, objects::MemOrder mo) {
    return mem_.store(static_cast<std::uint32_t>(t.program), a, v, mo);
  }
  bool cas(const ThreadCtx& t, Addr a, Word expect, Word desired,
           objects::MemOrder mo) {
    return mem_.cas(static_cast<std::uint32_t>(t.program), a, expect,
                    desired, mo);
  }
  /// Buffered writes pending for the thread (0 under kSc).
  [[nodiscard]] std::size_t buffered(const ThreadCtx& t) const noexcept {
    return mem_.buffer_size(static_cast<std::uint32_t>(t.program));
  }

  // --- TSO flush transitions (explorer-facing) ---
  /// True iff thread index `i` has a buffered write to flush.
  [[nodiscard]] bool flushable(std::size_t i) const noexcept {
    return mem_.model() == MemoryModel::kTso &&
           mem_.buffer_size(static_cast<std::uint32_t>(i)) != 0;
  }
  /// Executes one flush step for thread index `i`: the oldest buffered
  /// write becomes globally visible. Records a store footprint at the
  /// flushed address — a flush is exactly a deferred store, so the POR
  /// dependence relation treats it as one.
  void flush_one(std::size_t i) {
    const auto t = static_cast<std::uint32_t>(i);
    note_yield(StepFootprint::Kind::kStore, mem_.flush_addr(t));
    mem_.flush_one(t);
  }
  Addr alloc(const ThreadCtx& t, std::size_t n) {
    // Heap segments are owned by thread *index* (== program index), not
    // tid: tids are free-form labels and may be large (the symmetry
    // canonicalizer's value discipline picks them outside the address
    // range).
    return mem_.alloc(static_cast<std::uint32_t>(t.program), n);
  }
  Addr alloc_global(std::size_t n) { return mem_.alloc_global(n); }

  // --- simulated reclamation (SimEnv-facing; sched/sim_env.hpp) ---
  [[nodiscard]] bool recycling() const noexcept {
    return config_->recycle_addresses;
  }
  [[nodiscard]] runtime::ReclaimPolicy reclaim_policy() const noexcept {
    return config_->reclaim_policy;
  }
  /// Allocation for Env bodies: under recycling, reuses the oldest
  /// eligible freed/retired block of exactly `cells` cells (zeroing it)
  /// before bumping the cursor; always records the block's size for the
  /// retire-size check.
  [[nodiscard]] Addr reclaim_alloc(const ThreadCtx& t, std::size_t cells);
  /// Registers t's protection of `cell` observed holding `v`: a hazard
  /// slot under kHp, a first-wins generation record under kTagged.
  void reclaim_protect(const ThreadCtx& t, Addr cell, Word v);
  /// Drops all of t's protections (the body's release()).
  void reclaim_release(const ThreadCtx& t);
  /// Tag-widened recheck under kTagged: true iff `cell` still holds what
  /// t's protect observed *and* its generation is congruent mod
  /// 2^tag_bits. Sets the per-step tagged-ABA flag when truncation alone
  /// made the generations congruent.
  [[nodiscard]] bool reclaim_validate(const ThreadCtx& t, Addr cell);
  /// The widened CAS under kTagged: value compare plus generation
  /// congruence against t's record of the cell; bumps the generation and
  /// advances the record on success. Falls back to the plain model-aware
  /// CAS when t holds no record of the cell (non-protocol cell).
  bool reclaim_cas(const ThreadCtx& t, Addr a, Word expected, Word desired,
                   objects::MemOrder mo);
  /// Retires a block (grace = retire_grace semantics). Checks the retired
  /// size against the allocated size in every mode; feeds the reuse lists
  /// only under recycling.
  void reclaim_retire(const ThreadCtx& t, Addr block, Word cells, bool grace);
  /// Frees a never-published block: immediately reusable under recycling.
  void reclaim_free(Addr block, Word cells);
  /// Allocated size of `block` (0 = unknown, e.g. init-time globals).
  [[nodiscard]] Word alloc_size(Addr block) const noexcept;

  // Read-side accessors for the reclamation auditor and the explorer.
  [[nodiscard]] const std::vector<RetiredBlock>& retired() const noexcept {
    return retired_;
  }
  [[nodiscard]] const std::vector<std::pair<Addr, Word>>& free_blocks()
      const noexcept {
    return free_;
  }
  [[nodiscard]] const std::vector<ThreadReclaim>& reclaim_threads()
      const noexcept {
    return reclaim_;
  }
  /// Transient, per step (cleared by begin_step): a truncated tag admitted
  /// a stale generation in this step's CAS/validate.
  [[nodiscard]] bool tagged_aba_step() const noexcept { return tagged_aba_; }
  /// Blocks handed out by the recycler so far on this path (monotone along
  /// a schedule; the explorer reports the max over reached states).
  [[nodiscard]] std::uint32_t recycled_allocs() const noexcept {
    return recycled_allocs_;
  }

  /// Records the invocation of the thread's current call.
  void invoke(ThreadCtx& t);
  /// Records the response; runs check L2; advances to the next call.
  void respond(ThreadCtx& t, Value ret);
  /// Appends a CA-element to 𝒯 atomically with the current step; runs
  /// checks L1 and L3 through the configured view.
  void append_element(const CaElement& element);
  /// Halts the thread at a retry bound; its current operation stays pending.
  void truncate(ThreadCtx& t);

  // --- explorer-facing API ---
  [[nodiscard]] const WorldConfig& config() const noexcept { return *config_; }
  [[nodiscard]] std::vector<ThreadCtx>& threads() noexcept { return threads_; }
  [[nodiscard]] const std::vector<ThreadCtx>& threads() const noexcept {
    return threads_;
  }
  [[nodiscard]] const SimMemory& memory() const noexcept { return mem_; }
  [[nodiscard]] SimMemory& memory() noexcept { return mem_; }

  [[nodiscard]] bool violated() const noexcept {
    return violation_.has_value();
  }
  [[nodiscard]] const std::optional<std::string>& violation() const noexcept {
    return violation_;
  }
  void report_violation(std::string what) {
    footprint_.global = true;
    if (!violation_) violation_ = std::move(what);
  }

  // --- step-footprint recording (partial-order reduction) ---
  /// Clears the footprint; the explorer calls this before every step.
  void begin_step() noexcept {
    footprint_ = {};
    tagged_aba_ = false;
  }
  /// Records the step's single fresh yield operation (SimEnv commit path).
  void note_yield(StepFootprint::Kind kind, Addr a) noexcept {
    footprint_.kind = kind;
    footprint_.addr = a;
  }
  /// Marks the step dependent with every other step.
  void note_global_effect() noexcept { footprint_.global = true; }
  [[nodiscard]] const StepFootprint& footprint() const noexcept {
    return footprint_;
  }

  [[nodiscard]] bool all_done() const noexcept;

  /// Reachability beacons: machines set a bit when a path of interest is
  /// taken (e.g. "an elimination completed"). Flags are part of the state
  /// encoding, so state merging never hides a reachable event; the explorer
  /// ORs them over all reached states into ExploreResult::events.
  void signal_event(unsigned bit) noexcept {
    events_ |= (1ull << (bit & 63u));
  }
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

  [[nodiscard]] const History& history() const noexcept { return history_; }
  [[nodiscard]] const CaTrace& trace() const noexcept { return trace_; }
  /// The view image of the raw trace accumulated so far (L3's input).
  [[nodiscard]] const CaTrace& viewed_trace() const noexcept {
    return viewed_trace_;
  }
  /// The online replay's abstract state (for the canonical encoder).
  [[nodiscard]] const SpecState& view_state() const noexcept {
    return view_state_;
  }

  /// Canonical state encoding for the visited set (excludes history/trace).
  void encode(std::vector<std::int64_t>& out) const;

  /// Interface name of the object the thread's current call targets.
  [[nodiscard]] Symbol object_symbol(const ThreadCtx& t) const {
    const Call& call = config_->programs[t.program].calls[t.call_idx];
    return config_->object_names[call.object];
  }

 private:
  /// Marks the op logged on its thread; returns a violation reason if L1
  /// fails (not executing / mismatched call / already logged / pending).
  [[nodiscard]] std::optional<std::string> mark_logged(const Operation& op);

  /// True iff the retired block may be handed back to the allocator under
  /// the configured policy right now.
  [[nodiscard]] bool promotable(const RetiredBlock& r) const noexcept;
  /// Bitmask of thread indices with an active operation (grace pinning).
  [[nodiscard]] std::uint64_t active_ops_mask() const noexcept;
  /// Generation congruence modulo 2^tag_bits.
  [[nodiscard]] bool tag_congruent(std::uint32_t a,
                                   std::uint32_t b) const noexcept;
  /// Zeroes a recycled block's cells and counts the reuse.
  void recycle_block(Addr block, Word cells);

  const WorldConfig* config_;
  SimMemory mem_;
  std::vector<ThreadCtx> threads_;
  SpecState view_state_;
  std::uint64_t events_ = 0;
  StepFootprint footprint_;  ///< transient per-step metadata, not encoded
  bool tagged_aba_ = false;  ///< transient per-step metadata, not encoded
  std::optional<std::string> violation_;
  History history_;
  CaTrace trace_;
  CaTrace viewed_trace_;

  // Reclamation state (encoded only under recycle_addresses; empty and
  // inert otherwise, so legacy encodings are byte-identical).
  std::vector<ThreadReclaim> reclaim_;       ///< per thread index
  std::vector<RetiredBlock> retired_;        ///< FIFO retirement order
  std::vector<std::pair<Addr, Word>> free_;  ///< reusable blocks, FIFO
  /// Per-cell generation counters under kTagged (indexed by address).
  std::vector<std::uint32_t> versions_;
  /// Block → allocated size, append-only (the retire-size check).
  std::vector<std::pair<Addr, Word>> alloc_cells_;
  std::uint32_t recycled_allocs_ = 0;  ///< path statistic, not encoded
};

/// Thread-symmetry canonicalizer. Threads running identical programs
/// (same object / method / argument sequence) are interchangeable: the
/// world obtained by permuting their tids, heap segments, and every word
/// referring to either is reachable iff the original is. encode() picks a
/// canonical representative of that orbit — per-thread state is rewritten
/// into renaming-invariant tokens (segment references become (new thread
/// slot, offset) pairs, tid literals become thread-slot tokens), the
/// interchangeable threads are sorted by their abstracted state, and the
/// permuted world is encoded — so symmetric worlds hash identically and
/// the visited set merges them.
///
/// Value discipline (checked at construction; violations deactivate the
/// canonicalizer, falling back to the identity encoding, so soundness
/// never depends on the caller): interchangeable threads' tids must lie
/// outside [0, memory size) so tid literals in cells and oplogs are
/// distinguishable from addresses and counters, and no program argument
/// may collide with those tids or with an interchangeable heap segment.
class WorldCanon {
 public:
  explicit WorldCanon(const WorldConfig& config);

  /// At least one class has ≥ 2 members and the value discipline holds.
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Canonical encoding of `world` (plus the permuted `sleep_mask`, bit i
  /// = thread index i is asleep). `renamed` reports a non-identity
  /// permutation. Falls back to World::encode when inactive.
  void encode(const World& world, std::uint64_t sleep_mask,
              std::vector<std::int64_t>& out, bool& renamed) const;

 private:
  void emit_thread(const World& world, std::size_t i, bool abstract,
                   const std::vector<std::size_t>& new_index,
                   std::vector<std::int64_t>& out) const;
  void emit_word(Word w, bool abstract, std::size_t self,
                 const std::vector<std::size_t>& new_index,
                 std::vector<std::int64_t>& out) const;

  std::size_t threads_ = 0;
  std::size_t heap_cells_ = 0;
  Addr heaps_base_ = 0;
  std::size_t mem_size_ = 0;
  std::vector<int> class_of_;          ///< -1 = unique thread
  std::vector<bool> interchangeable_;  ///< member of a multi-member class
  /// tid value → thread index, for interchangeable threads only.
  std::vector<std::pair<Word, std::size_t>> tid_to_thread_;
  std::vector<std::vector<std::size_t>> class_members_;
  bool active_ = false;
};

/// Outcome of one machine step.
struct StepResult {
  enum class Kind : std::uint8_t {
    kRan,     ///< one atomic step executed
    kChoice,  ///< the machine needs ctx.choice ∈ [0, nchoices)
  };
  Kind kind = Kind::kRan;
  std::int32_t nchoices = 0;

  [[nodiscard]] static StepResult ran() { return {Kind::kRan, 0}; }
  [[nodiscard]] static StepResult choice(std::int32_t n) {
    return {Kind::kChoice, n};
  }
};

/// A simulated object: allocates its globals in init() (before exploration)
/// and advances one thread by one atomic step in step(). Implementations
/// are immutable during exploration; all mutable state lives in the World.
class SimObject {
 public:
  virtual ~SimObject() = default;
  virtual void init(World& world) = 0;
  virtual StepResult step(World& world, ThreadCtx& t) const = 0;
};

}  // namespace cal::sched
