// Exhaustive interleaving exploration.
//
// Depth-first enumeration of every schedule of the simulated program, one
// atomic step (shared access / nondeterministic choice) at a time. Two
// modes:
//
//   * merged (default): worlds are hashed and converged schedules explored
//     once. Sound for the online audit (L1-L3 and the rely/guarantee
//     auditor are per-step checks, so equal states have equal futures);
//     this is what makes 3-thread exchanger configurations tractable.
//   * enumerating (merge_states = false, record_history = true): every
//     interleaving is walked to a terminal state and its complete history
//     (plus final raw 𝒯) collected — the input for the *offline* checkers,
//     which cross-validate the online audit in the test suite.
//
// A TransitionAuditor hook observes every (pre, post, actor) transition and
// every reached state; the rely/guarantee audit of Fig. 4 (sched/rg.hpp) is
// implemented as one.
//
// The sequential walk runs on the shared search engine
// (cal/engine/search_engine.hpp) in collect mode: worlds are nodes,
// schedule steps are labels, terminal states are goals. The parallel walk
// keeps its bespoke deterministic breadth-first split + Walker pool. With
// `check_spec` set, every collected terminal history is additionally
// checked for CAL membership by the streaming checker
// (cal/engine/incremental.hpp) as a post-pass shared by both drivers.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cal/spec.hpp"
#include "sched/world.hpp"

namespace cal::sched {

class TransitionAuditor {
 public:
  virtual ~TransitionAuditor() = default;

  /// Checks one transition by `actor`; a returned string is a violation.
  [[nodiscard]] virtual std::optional<std::string> check_transition(
      const World& pre, const World& post, ThreadId actor) const = 0;

  /// Checks a state invariant (the paper's J); called on every new state.
  [[nodiscard]] virtual std::optional<std::string> check_invariant(
      const World& world) const = 0;
};

struct ExploreOptions {
  bool merge_states = true;
  /// Hard cap on distinct states (0 = unlimited); trips `exhausted`.
  std::size_t max_states = 0;
  bool stop_on_first_violation = true;
  /// Collect unique terminal histories/traces (needs record_history /
  /// record_trace in the WorldConfig; usually with merge_states = false).
  bool collect_terminals = false;
  /// Worker threads (1 = the sequential engine, bit-for-bit the historical
  /// behavior; 0 = one per hardware thread). With more than one thread the
  /// root of the schedule tree is split breadth-first into branches —
  /// one per thread/choice prefix — that explore in work-stealing pool
  /// tasks sharing the state-merging table. Verdicts (and, absent
  /// violations and caps, the states/transitions/terminals counters) are
  /// identical to the sequential engine. The reported first violation is
  /// chosen deterministically — the violation of the earliest branch in
  /// the breadth-first split order — so replays stay stable; under
  /// merge_states the winning *schedule* can still differ from the
  /// sequential engine's (it is always a real, replayable counterexample).
  std::size_t threads = 1;
  /// When set (together with collect_terminals), every collected terminal
  /// history is checked for CAL membership against this spec with the
  /// streaming checker; verdicts land in ExploreResult::history_verdicts
  /// and failures in ExploreResult::check_failures. The spec must outlive
  /// the exploration.
  const CaSpec* check_spec = nullptr;
  /// Window size for the post-pass streaming checks.
  std::size_t check_window = 16;
  /// Dynamic partial-order reduction: sleep sets over the Env layer's
  /// per-step footprints prune interleavings that only commute pure yield
  /// operations (disjoint cells, or both loads). Sound for verdicts,
  /// events, and terminal histories — every invoke/respond/append step is
  /// dependent with everything, so each pruned interleaving has an
  /// explored representative with the identical history (DESIGN.md).
  /// Forced off while a TransitionAuditor is attached: the auditor must
  /// observe every transition, including the pruned ones.
  bool por = false;
  /// Thread-symmetry canonicalization: worlds that differ only by a
  /// renaming of identically-programmed threads merge in the visited set
  /// (WorldCanon in sched/world.hpp; requires its value discipline, else
  /// it deactivates itself). Also forced off under an auditor.
  bool symmetry = false;
  /// Memory model of the simulated machine. kTso adds per-thread store
  /// buffers and nondeterministic flush transitions (sched/sim_memory.hpp).
  /// kSc here defers to the WorldConfig's own memory_model, so either
  /// surface can select TSO; setting kTso overrides the config.
  MemoryModel memory_model = MemoryModel::kSc;
};

/// One step of a recorded schedule: which thread acted, and the value of
/// the nondeterministic choice it consumed (-1 = none). A flush step
/// (TSO) makes the thread's oldest buffered write globally visible
/// instead of running the thread's program.
struct ScheduleStep {
  ThreadId tid = 0;
  std::int32_t choice = -1;
  bool flush = false;

  friend bool operator==(const ScheduleStep&, const ScheduleStep&) = default;
};

struct ScheduleViolation {
  std::string what;
  /// Every step up to and including the violating one — a replayable
  /// counterexample (see Explorer::replay).
  std::vector<ScheduleStep> schedule;

  [[nodiscard]] std::string to_string() const;
};

struct ExploreResult {
  std::size_t states = 0;       ///< distinct states visited
  std::size_t transitions = 0;  ///< steps executed (incl. merged re-entries)
  std::size_t merged = 0;       ///< prunes due to visited-set hits
  std::size_t terminals = 0;    ///< terminal states reached
  std::size_t max_depth = 0;
  /// Expansions skipped by POR (ExploreOptions::por): the thread was in
  /// the node's sleep set, or the child was covered by a smaller
  /// already-explored sleep mask for the same state (subsumption).
  std::size_t por_pruned = 0;
  /// Visited-set hits whose key came from a non-identity thread renaming
  /// (ExploreOptions::symmetry): merges classic dedup would have missed.
  std::size_t symmetry_merged = 0;
  /// TSO flush transitions executed (0 under kSc).
  std::size_t flush_steps = 0;
  /// High-water mark of total buffered writes over all reached states.
  std::size_t buffered_max = 0;
  /// Max blocks handed out by the recycler along any reached path
  /// (0 without WorldConfig::recycle_addresses).
  std::size_t recycled_allocs = 0;
  /// High-water mark of the retired-pending set over all reached states.
  std::size_t retired_max = 0;
  bool exhausted = false;
  /// OR of World::events() over every reached state (reachability beacons).
  std::uint64_t events = 0;
  std::vector<ScheduleViolation> violations;
  std::vector<History> histories;  ///< unique terminal histories
  std::vector<CaTrace> traces;     ///< final raw 𝒯 per collected history
  /// With ExploreOptions::check_spec: streaming-checker verdict for each
  /// entry of `histories` (same indexing).
  std::vector<bool> history_verdicts;
  /// Human-readable reasons for each false entry of history_verdicts.
  std::vector<std::string> check_failures;

  /// No schedule violations and no failed history checks.
  [[nodiscard]] bool ok() const noexcept {
    return violations.empty() && check_failures.empty();
  }
};

class Explorer {
 public:
  Explorer(const WorldConfig& config,
           std::vector<std::unique_ptr<SimObject>> objects,
           ExploreOptions options = {});

  void set_auditor(const TransitionAuditor* auditor) { auditor_ = auditor; }

  [[nodiscard]] ExploreResult run();

  /// Deterministically re-executes a recorded schedule from the initial
  /// world (e.g. a violation's counterexample) and returns the resulting
  /// world — histories, traces, and the violation (if any) can then be
  /// inspected. Steps beyond a violation or past thread completion stop
  /// the replay. Enable `record` to capture history/trace regardless of
  /// the exploration config.
  [[nodiscard]] World replay(const std::vector<ScheduleStep>& schedule,
                             bool record = true);

 private:
  /// The sequential walk: the engine collect driver over ExplorePolicy
  /// (explorer.cpp).
  [[nodiscard]] ExploreResult run_sequential();
  /// The multi-threaded engine behind ExploreOptions::threads > 1
  /// (explorer.cpp: breadth-first root split + Walker pool tasks).
  [[nodiscard]] ExploreResult run_parallel(std::size_t threads);
  /// The check_spec post-pass over collected terminal histories.
  void check_collected(ExploreResult& result) const;

  /// Owned copy of the caller's config with ExploreOptions::memory_model
  /// applied (worlds keep a pointer to their config, so the explorer must
  /// own the adjusted one for its whole lifetime).
  WorldConfig owned_config_;
  const WorldConfig& config_;
  std::vector<std::unique_ptr<SimObject>> objects_;
  ExploreOptions options_;
  const TransitionAuditor* auditor_ = nullptr;
  /// Storage for replay()'s recording-enabled config copies (worlds keep a
  /// pointer to their config, so each must outlive its returned World —
  /// one owned copy per replay call, never destroyed while the Explorer
  /// lives, so earlier replays' worlds stay valid).
  std::vector<std::unique_ptr<WorldConfig>> replay_configs_;
};

}  // namespace cal::sched
