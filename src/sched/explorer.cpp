#include "sched/explorer.hpp"

namespace cal::sched {

namespace {

/// Serializes a history for terminal deduplication.
std::vector<std::int64_t> encode_history(const History& h) {
  std::vector<std::int64_t> out;
  out.reserve(h.size() * 5);
  for (const Action& a : h.actions()) {
    out.push_back(a.is_invoke() ? 1 : 2);
    out.push_back(a.tid);
    out.push_back(a.object.id());
    out.push_back(a.method.id());
    out.push_back(static_cast<std::int64_t>(a.payload.hash()));
  }
  return out;
}

}  // namespace

Explorer::Explorer(const WorldConfig& config,
                   std::vector<std::unique_ptr<SimObject>> objects,
                   ExploreOptions options)
    : config_(config), objects_(std::move(objects)), options_(options) {}

ExploreResult Explorer::run() {
  visited_.clear();
  seen_histories_.clear();
  schedule_.clear();
  result_ = ExploreResult{};
  done_ = false;

  World initial(config_);
  for (auto& obj : objects_) obj->init(initial);
  dfs(std::move(initial), 0);
  return result_;
}

void Explorer::record_violation(const World& world) {
  result_.violations.push_back(
      ScheduleViolation{world.violation().value_or("unknown"), schedule_});
  if (options_.stop_on_first_violation) done_ = true;
}

void Explorer::reached(World&& world, std::size_t depth) {
  if (done_) return;
  if (world.violated()) {
    record_violation(world);
    return;
  }
  if (auditor_ != nullptr) {
    if (auto why = auditor_->check_invariant(world)) {
      world.report_violation("invariant: " + *why);
      record_violation(world);
      return;
    }
  }
  dfs(std::move(world), depth);
}

void Explorer::dfs(World world, std::size_t depth) {
  if (done_) return;
  if (depth > result_.max_depth) result_.max_depth = depth;
  result_.events |= world.events();

  if (options_.max_states != 0 && result_.states >= options_.max_states) {
    result_.exhausted = true;
    done_ = true;
    return;
  }
  if (options_.merge_states) {
    std::vector<std::int64_t> key;
    world.encode(key);
    if (!visited_.insert(std::move(key)).second) {
      ++result_.merged;
      return;
    }
  }
  ++result_.states;

  if (world.all_done()) {
    ++result_.terminals;
    if (options_.collect_terminals) {
      auto key = encode_history(world.history());
      if (seen_histories_.insert(std::move(key)).second) {
        result_.histories.push_back(world.history());
        result_.traces.push_back(world.trace());
      }
    }
    return;
  }

  for (std::size_t i = 0; i < world.threads().size(); ++i) {
    const ThreadCtx& t = world.threads()[i];
    if (t.done(config_.programs[t.program].calls.size())) continue;
    advance(world, i, depth);
    if (done_) return;
  }
}

void Explorer::advance(const World& world, std::size_t thread,
                       std::size_t depth) {
  const ThreadCtx& t = world.threads()[thread];
  const Call& call = config_.programs[t.program].calls[t.call_idx];
  const SimObject& object = *objects_[call.object];

  schedule_.push_back(ScheduleStep{t.tid, -1});
  ++result_.transitions;

  World next = world;  // branch
  ThreadCtx& nt = next.threads()[thread];
  StepResult sr = object.step(next, nt);

  if (sr.kind == StepResult::Kind::kChoice) {
    // Fork one successor per choice value; the machine consumes the choice
    // on its next step.
    for (std::int32_t c = 0; c < sr.nchoices && !done_; ++c) {
      schedule_.back().choice = c;
      World branch = world;
      ThreadCtx& bt = branch.threads()[thread];
      bt.choice = c;
      StepResult inner = object.step(branch, bt);
      bt.choice = -1;
      if (inner.kind == StepResult::Kind::kChoice) {
        branch.report_violation("machine asked for a choice twice in a row");
      }
      if (auditor_ != nullptr && !branch.violated()) {
        if (auto why =
                auditor_->check_transition(world, branch, bt.tid)) {
          branch.report_violation("guarantee: " + *why);
        }
      }
      reached(std::move(branch), depth + 1);
    }
  } else {
    if (auditor_ != nullptr && !next.violated()) {
      if (auto why = auditor_->check_transition(world, next, nt.tid)) {
        next.report_violation("guarantee: " + *why);
      }
    }
    reached(std::move(next), depth + 1);
  }

  schedule_.pop_back();
}

std::string ScheduleViolation::to_string() const {
  std::string out = what + "\nschedule:";
  for (const ScheduleStep& s : schedule) {
    out += " t" + std::to_string(s.tid);
    if (s.choice >= 0) out += "#" + std::to_string(s.choice);
  }
  return out;
}

World Explorer::replay(const std::vector<ScheduleStep>& schedule,
                       bool record) {
  WorldConfig cfg = config_;
  if (record) {
    cfg.record_history = true;
    cfg.record_trace = true;
  }
  // The replay world references `cfg` locally, so rebuild against the
  // original config after initialization: World stores a pointer to its
  // config, which must outlive it. Use the member config with overridden
  // recording only when identical lifetimes are guaranteed — simplest is
  // to replay against the original config when no recording override is
  // needed.
  World world(record ? replay_config_.emplace(std::move(cfg))
                     : config_);
  for (auto& obj : objects_) obj->init(world);

  for (const ScheduleStep& step : schedule) {
    if (world.violated()) break;
    ThreadCtx* ctx = nullptr;
    for (ThreadCtx& t : world.threads()) {
      if (t.tid == step.tid) ctx = &t;
    }
    if (ctx == nullptr ||
        ctx->done(config_.programs[ctx->program].calls.size())) {
      world.report_violation("replay: thread t" + std::to_string(step.tid) +
                             " cannot act");
      break;
    }
    const Call& call = config_.programs[ctx->program].calls[ctx->call_idx];
    ctx->choice = step.choice;
    StepResult sr = objects_[call.object]->step(world, *ctx);
    ctx->choice = -1;
    if (sr.kind == StepResult::Kind::kChoice) {
      world.report_violation(
          "replay: step needs a choice but none was recorded");
      break;
    }
  }
  return world;
}

}  // namespace cal::sched
