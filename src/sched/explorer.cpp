#include "sched/explorer.hpp"

#include <array>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cal/engine/incremental.hpp"
#include "cal/engine/search_engine.hpp"
#include "cal/parallel/sharded_set.hpp"
#include "cal/parallel/task_pool.hpp"

namespace cal::sched {

namespace {

/// Serializes a history for terminal deduplication.
std::vector<std::int64_t> encode_history(const History& h) {
  std::vector<std::int64_t> out;
  out.reserve(h.size() * 5);
  for (const Action& a : h.actions()) {
    out.push_back(a.is_invoke() ? 1 : 2);
    out.push_back(a.tid);
    out.push_back(a.object.id());
    out.push_back(a.method.id());
    out.push_back(static_cast<std::int64_t>(a.payload.hash()));
  }
  return out;
}

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& k) const noexcept {
    return hash_state(k);
  }
};

// --- partial-order reduction: sleep sets over step footprints -------------
//
// A sleep entry records a thread whose next step was already explored from
// an earlier sibling branch, together with that step's footprint. The
// footprint of a thread's next step is a function of its own context and
// frozen cells only, and stays valid while the thread sleeps: every
// executed step is independent of it (a dependent step removes the entry),
// so it cannot change the cell the sleeping step touches, the step's
// control path, or its purity. See DESIGN.md for the full argument.

struct SleepEntry {
  std::size_t thread = 0;
  StepFootprint fp;
};
using SleepSet = std::vector<SleepEntry>;

bool is_sleeping(const SleepSet& sleep, std::size_t thread) {
  for (const SleepEntry& e : sleep) {
    if (e.thread == thread) return true;
  }
  return false;
}

std::uint64_t sleep_mask_of(const SleepSet& sleep) {
  std::uint64_t m = 0;
  for (const SleepEntry& e : sleep) m |= (1ull << (e.thread & 63u));
  return m;
}

/// The sleep set a successor inherits: every entry independent of the
/// executed step `g` stays asleep; dependent entries wake.
SleepSet inherit_sleep(const SleepSet& cur, const StepFootprint& g) {
  SleepSet out;
  out.reserve(cur.size());
  for (const SleepEntry& e : cur) {
    if (footprints_independent(e.fp, g)) out.push_back(e);
  }
  return out;
}

/// Visited-set key: canonical (symmetry) encoding when a canonicalizer is
/// attached, else World::encode; under POR the sleep mask is part of the
/// key, making the reduced successor set a function of the key — which is
/// what keeps sleep sets sound under state merging. When `por`, the mask
/// is always the *last* element (SleepSubsumption peels it back off).
void encode_world_key(const World& world, const WorldCanon* canon, bool por,
                      std::uint64_t sleep_mask,
                      std::vector<std::int64_t>& out, bool& renamed) {
  out.clear();
  renamed = false;
  if (canon != nullptr) {
    canon->encode(world, por ? sleep_mask : 0, out, renamed);
  } else {
    world.encode(out);
    if (por) out.push_back(static_cast<std::int64_t>(sleep_mask));
  }
}

/// Sleep-mask subsumption (sleep sets with state matching, Godefroid
/// style): exact (state, mask) dedup alone *splits* states — the same
/// world re-entered under an incomparable sleep mask is a fresh key — so
/// on top of it, a node's expansion is pruned outright when the same state
/// was already expanded with a *subset* mask: fewer sleeping threads means
/// the earlier expansion explored a superset of this node's successor
/// closure. Re-visits under incomparable masks still re-expand, which is
/// what keeps the reduction sound (DESIGN.md). Striped-lock sharded so the
/// parallel walkers can share one instance; the sequential driver uses the
/// same type with the locks uncontended.
class SleepSubsumption {
 public:
  /// True iff `key` was already expanded with a recorded mask ⊆ `mask`.
  /// Otherwise records `mask` (dropping recorded supersets, which it now
  /// covers) and returns false.
  bool covered(const std::vector<std::int64_t>& key, std::uint64_t mask) {
    Shard& s = shards_[hash_state(key) % kShards];
    std::lock_guard<std::mutex> lock(s.mu);
    std::vector<std::uint64_t>& masks = s.map[key];
    for (std::uint64_t m : masks) {
      if ((m & ~mask) == 0) return true;
    }
    std::erase_if(masks,
                  [mask](std::uint64_t m) { return (mask & ~m) == 0; });
    masks.push_back(mask);
    return false;
  }

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::vector<std::int64_t>, std::vector<std::uint64_t>,
                       KeyHash>
        map;
  };
  std::array<Shard, kShards> shards_;
};

/// The sequential exploration as an engine policy: worlds are nodes,
/// schedule steps are labels, terminal worlds are goals (collect-mode
/// sinks). Per-step audits (transition guarantee, state invariant, choice
/// protocol) run in expand() *before* a successor is emitted, so violating
/// worlds never enter the search — exactly the pre-engine reached() order.
/// The engine owns state merging, the max_states cap, depth, and the
/// schedule prefix; this policy owns transitions/events accounting and
/// violation recording.
class ExplorePolicy {
 public:
  /// A node is a world plus its sleep set (empty when POR is off); the
  /// sleep set travels with the node because the engine recurses inside
  /// emit, and it joins the dedup key via encode().
  struct Node {
    World world;
    SleepSet sleep;
  };
  using Label = ScheduleStep;

  ExplorePolicy(const WorldConfig& config,
                const std::vector<std::unique_ptr<SimObject>>& objects,
                const ExploreOptions& options,
                const TransitionAuditor* auditor, const WorldCanon* canon,
                bool por)
      : config_(config),
        objects_(objects),
        options_(options),
        auditor_(auditor),
        canon_(canon),
        por_(por) {
    // Subsumption only matters under state merging: without it the walk
    // is a plain tree DFS, where sleep sets alone are the classic (sound)
    // reduction.
    if (por_ && options_.merge_states) {
      subsume_ = std::make_unique<SleepSubsumption>();
    }
  }

  std::vector<Node> roots() {
    World initial(config_);
    for (const auto& obj : objects_) obj->init(initial);
    std::vector<Node> out;
    out.push_back(Node{std::move(initial), {}});
    return out;
  }

  [[nodiscard]] bool is_goal(const Node& node) const {
    return node.world.all_done();
  }

  void encode(const Node& node, engine::NodeKey& out) {
    encode_world_key(node.world, canon_, por_, sleep_mask_of(node.sleep),
                     out, last_renamed_);
  }

  /// Engine dedup-hit hook: a hit whose key was produced by a non-identity
  /// renaming is a merge only the canonicalizer could have made.
  void on_dedup(const Node& /*node*/) {
    if (last_renamed_) ++symmetry_merged_;
  }

  void on_enter(const Node& node, std::size_t /*depth*/) {
    events_ |= node.world.events();
    const std::size_t buffered = node.world.memory().buffered_total();
    if (buffered > buffered_max_) buffered_max_ = buffered;
    const std::size_t recycled = node.world.recycled_allocs();
    if (recycled > recycled_allocs_) recycled_allocs_ = recycled;
    const std::size_t retired = node.world.retired().size();
    if (retired > retired_max_) retired_max_ = retired;
  }

  [[nodiscard]] bool cancelled() const noexcept { return done_; }

  template <typename Emit>
  void expand(const Node& node, std::size_t /*depth*/,
              const std::vector<ScheduleStep>& prefix, Emit&& emit) {
    const World& world = node.world;
    // Entries accumulate as siblings are explored: a later thread's child
    // inherits every earlier pure sibling step it is independent of.
    SleepSet cur = node.sleep;
    for (std::size_t i = 0; i < world.threads().size(); ++i) {
      if (done_) return;
      const ThreadCtx& t = world.threads()[i];
      if (t.done(config_.programs[t.program].calls.size())) continue;
      if (por_ && is_sleeping(node.sleep, i)) {
        ++por_pruned_;
        continue;
      }
      const Call& call = config_.programs[t.program].calls[t.call_idx];
      const SimObject& object = *objects_[call.object];
      ++transitions_;

      World next = world;  // branch
      next.begin_step();
      ThreadCtx& nt = next.threads()[i];
      StepResult sr = object.step(next, nt);

      if (sr.kind == StepResult::Kind::kChoice) {
        // Fork one successor per choice value; the machine consumes the
        // choice on its next step. The step only joins sibling sleep sets
        // if every branch is pure (a single emitting branch makes the
        // whole step order-sensitive).
        bool all_pure = true;
        for (std::int32_t c = 0; c < sr.nchoices && !done_; ++c) {
          World branch = world;
          branch.begin_step();
          ThreadCtx& bt = branch.threads()[i];
          bt.choice = c;
          StepResult inner = object.step(branch, bt);
          bt.choice = -1;
          if (inner.kind == StepResult::Kind::kChoice) {
            branch.report_violation(
                "machine asked for a choice twice in a row");
          }
          audit_transition(world, branch, bt.tid);
          const StepFootprint fp = branch.footprint();
          all_pure = all_pure && fp.pure();
          SleepSet child = por_ ? inherit_sleep(cur, fp) : SleepSet{};
          if (!offer(Node{std::move(branch), std::move(child)},
                     ScheduleStep{t.tid, c}, prefix, emit)) {
            return;
          }
        }
        if (por_ && all_pure) {
          cur.push_back(SleepEntry{
              i, StepFootprint{StepFootprint::Kind::kLocal, kNull, false}});
        }
      } else {
        audit_transition(world, next, nt.tid);
        const StepFootprint fp = next.footprint();
        SleepSet child = por_ ? inherit_sleep(cur, fp) : SleepSet{};
        if (!offer(Node{std::move(next), std::move(child)},
                   ScheduleStep{t.tid, -1}, prefix, emit)) {
          return;
        }
        if (por_ && fp.pure()) cur.push_back(SleepEntry{i, fp});
      }
    }

    // TSO flush transitions: one per thread with a buffered write, offered
    // for completed threads too (terminal states must be drained). Flush
    // steps are never slept and never enter sleep sets — strictly less
    // reduction, trivially sound (DESIGN.md, "The memory-model layer") —
    // but their store footprint does wake dependent sleepers in the child.
    for (std::size_t i = 0; i < world.threads().size(); ++i) {
      if (done_ || !world.flushable(i)) continue;
      ++transitions_;
      World next = world;
      next.begin_step();
      next.flush_one(i);
      ++flush_steps_;
      audit_transition(world, next, next.threads()[i].tid);
      const StepFootprint fp = next.footprint();
      SleepSet child = por_ ? inherit_sleep(cur, fp) : SleepSet{};
      if (!offer(Node{std::move(next), std::move(child)},
                 ScheduleStep{world.threads()[i].tid, -1, /*flush=*/true},
                 prefix, emit)) {
        return;
      }
    }
  }

  [[nodiscard]] std::size_t transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] std::size_t por_pruned() const noexcept {
    return por_pruned_;
  }
  [[nodiscard]] std::size_t symmetry_merged() const noexcept {
    return symmetry_merged_;
  }
  [[nodiscard]] std::size_t flush_steps() const noexcept {
    return flush_steps_;
  }
  [[nodiscard]] std::size_t buffered_max() const noexcept {
    return buffered_max_;
  }
  [[nodiscard]] std::size_t recycled_allocs() const noexcept {
    return recycled_allocs_;
  }
  [[nodiscard]] std::size_t retired_max() const noexcept {
    return retired_max_;
  }
  [[nodiscard]] std::vector<ScheduleViolation>&& violations() noexcept {
    return std::move(violations_);
  }

 private:
  void audit_transition(const World& pre, World& post, ThreadId actor) const {
    if (auditor_ == nullptr || post.violated()) return;
    if (auto why = auditor_->check_transition(pre, post, actor)) {
      post.report_violation("guarantee: " + *why);
    }
  }

  /// Audits a freshly stepped world and either records its violation or
  /// hands it to the driver; false stops this node's expansion.
  template <typename Emit>
  bool offer(Node&& node, ScheduleStep step,
             const std::vector<ScheduleStep>& prefix, Emit& emit) {
    if (done_) return false;
    if (!node.world.violated() && auditor_ != nullptr) {
      if (auto why = auditor_->check_invariant(node.world)) {
        node.world.report_violation("invariant: " + *why);
      }
    }
    if (node.world.violated()) {
      std::vector<ScheduleStep> schedule = prefix;
      schedule.push_back(step);
      violations_.push_back(ScheduleViolation{
          node.world.violation().value_or("unknown"), std::move(schedule)});
      if (options_.stop_on_first_violation) done_ = true;
      return !done_;
    }
    // Sleep-mask subsumption happens at child-generation time so a covered
    // revisit never enters the engine (and is never counted as a state).
    // Terminals are exempt: their final step is global, so they always
    // carry an empty sleep set and the exact visited key already dedups
    // them — keeping them out keeps the table small.
    if (subsume_ != nullptr && !node.world.all_done()) {
      engine::NodeKey key;
      bool renamed = false;
      encode_world_key(node.world, canon_, /*por=*/true,
                       sleep_mask_of(node.sleep), key, renamed);
      const auto mask = static_cast<std::uint64_t>(key.back());
      key.pop_back();
      if (subsume_->covered(key, mask)) {
        ++por_pruned_;
        return true;
      }
    }
    return emit(std::move(node), std::move(step));
  }

  const WorldConfig& config_;
  const std::vector<std::unique_ptr<SimObject>>& objects_;
  const ExploreOptions& options_;
  const TransitionAuditor* auditor_;
  const WorldCanon* canon_;
  const bool por_;
  std::unique_ptr<SleepSubsumption> subsume_;

  std::size_t transitions_ = 0;
  std::uint64_t events_ = 0;
  std::size_t por_pruned_ = 0;
  std::size_t symmetry_merged_ = 0;
  std::size_t flush_steps_ = 0;
  std::size_t buffered_max_ = 0;
  std::size_t recycled_allocs_ = 0;
  std::size_t retired_max_ = 0;
  bool last_renamed_ = false;
  std::vector<ScheduleViolation> violations_;
  bool done_ = false;
};

constexpr std::size_t kNoViolation = static_cast<std::size_t>(-1);

/// State shared by every branch walker of one parallel exploration.
struct SharedExplore {
  par::ShardedStateSet visited;     ///< merge_states deduplication table
  SleepSubsumption sleep_seen;      ///< POR sleep-mask subsumption table
  std::atomic<std::size_t> states{0};  ///< global count, for max_states
  std::atomic<bool> exhausted{false};
  /// Smallest branch sequence number that found a violation; branches
  /// with larger numbers cancel (stop_on_first_violation mode), smaller
  /// ones run on so the final selection is deterministic.
  std::atomic<std::size_t> first_violation{kNoViolation};

  void note_violation(std::size_t branch_seq) {
    std::size_t cur = first_violation.load(std::memory_order_relaxed);
    while (branch_seq < cur &&
           !first_violation.compare_exchange_weak(cur, branch_seq,
                                                  std::memory_order_relaxed)) {
    }
  }
};

/// One branch of the parallel exploration: a sequential DFS over the
/// subtree rooted at a breadth-first split node, mirroring the sequential
/// Explorer step for step but routing state merging and the max_states cap
/// through SharedExplore. Counters, violations, and collected terminals
/// stay walker-local and are merged in branch order afterwards.
class Walker {
 public:
  Walker(const WorldConfig& config,
         const std::vector<std::unique_ptr<SimObject>>& objects,
         const ExploreOptions& options, const TransitionAuditor* auditor,
         const WorldCanon* canon, bool por, SharedExplore& shared,
         std::size_t branch_seq, std::vector<ScheduleStep> schedule)
      : config_(config),
        objects_(objects),
        options_(options),
        auditor_(auditor),
        canon_(canon),
        por_(por),
        shared_(shared),
        branch_seq_(branch_seq),
        schedule_(std::move(schedule)) {}

  void run(World world, std::size_t depth, SleepSet sleep) {
    dfs(std::move(world), depth, std::move(sleep));
  }

  [[nodiscard]] ExploreResult& result() noexcept { return result_; }
  [[nodiscard]] std::size_t branch_seq() const noexcept { return branch_seq_; }

 private:
  [[nodiscard]] bool stopped() const {
    if (done_ || shared_.exhausted.load(std::memory_order_relaxed)) {
      return true;
    }
    return options_.stop_on_first_violation &&
           shared_.first_violation.load(std::memory_order_relaxed) <
               branch_seq_;
  }

  void record_violation(const World& world) {
    result_.violations.push_back(
        ScheduleViolation{world.violation().value_or("unknown"), schedule_});
    if (options_.stop_on_first_violation) {
      shared_.note_violation(branch_seq_);
      done_ = true;
    }
  }

  void reached(World&& world, std::size_t depth, SleepSet&& sleep) {
    if (stopped()) return;
    if (world.violated()) {
      record_violation(world);
      return;
    }
    if (auditor_ != nullptr) {
      if (auto why = auditor_->check_invariant(world)) {
        world.report_violation("invariant: " + *why);
        record_violation(world);
        return;
      }
    }
    dfs(std::move(world), depth, std::move(sleep));
  }

  void dfs(World world, std::size_t depth, SleepSet sleep) {
    if (stopped()) return;
    if (depth > result_.max_depth) result_.max_depth = depth;
    result_.events |= world.events();
    const std::size_t buffered = world.memory().buffered_total();
    if (buffered > result_.buffered_max) result_.buffered_max = buffered;
    const std::size_t recycled = world.recycled_allocs();
    if (recycled > result_.recycled_allocs) {
      result_.recycled_allocs = recycled;
    }
    const std::size_t retired = world.retired().size();
    if (retired > result_.retired_max) result_.retired_max = retired;

    if (options_.max_states != 0 &&
        shared_.states.load(std::memory_order_relaxed) >=
            options_.max_states) {
      result_.exhausted = true;
      shared_.exhausted.store(true, std::memory_order_relaxed);
      done_ = true;
      return;
    }
    if (options_.merge_states) {
      std::vector<std::int64_t> key;
      bool renamed = false;
      encode_world_key(world, canon_, por_, sleep_mask_of(sleep), key,
                       renamed);
      if (!shared_.visited.insert(std::move(key))) {
        ++result_.merged;
        if (renamed) ++result_.symmetry_merged;
        return;
      }
    }
    // Subsumption runs before the node is counted: a covered revisit is a
    // prune, not a state. Terminals always carry an empty sleep set (their
    // final step is global), so the exact visited key above already dedups
    // them and they stay out of the subsumption table.
    if (por_ && options_.merge_states && !world.all_done() &&
        subsumed(world, sleep_mask_of(sleep))) {
      ++result_.por_pruned;
      return;
    }
    shared_.states.fetch_add(1, std::memory_order_relaxed);
    ++result_.states;

    if (world.all_done()) {
      ++result_.terminals;
      if (options_.collect_terminals) {
        auto key = encode_history(world.history());
        if (seen_histories_.insert(std::move(key)).second) {
          result_.histories.push_back(world.history());
          result_.traces.push_back(world.trace());
        }
      }
      return;
    }

    SleepSet cur = sleep;
    for (std::size_t i = 0; i < world.threads().size(); ++i) {
      const ThreadCtx& t = world.threads()[i];
      if (t.done(config_.programs[t.program].calls.size())) continue;
      if (por_ && is_sleeping(sleep, i)) {
        ++result_.por_pruned;
        continue;
      }
      advance(world, i, depth, cur);
      if (stopped()) return;
    }
    // TSO flush transitions (see ExplorePolicy::expand): never slept,
    // never entering sleep sets, offered for completed threads too.
    for (std::size_t i = 0; i < world.threads().size(); ++i) {
      if (!world.flushable(i)) continue;
      advance_flush(world, i, depth, cur);
      if (stopped()) return;
    }
  }

  /// Sleep-mask subsumption against the shared table (see the sequential
  /// policy's offer() for the argument).
  bool subsumed(const World& world, std::uint64_t mask) {
    std::vector<std::int64_t> key;
    bool renamed = false;
    encode_world_key(world, canon_, /*por=*/true, mask, key, renamed);
    const auto permuted = static_cast<std::uint64_t>(key.back());
    key.pop_back();
    return shared_.sleep_seen.covered(key, permuted);
  }

  void advance_flush(const World& world, std::size_t thread,
                     std::size_t depth, SleepSet& cur) {
    schedule_.push_back(
        ScheduleStep{world.threads()[thread].tid, -1, /*flush=*/true});
    ++result_.transitions;
    World next = world;
    next.begin_step();
    next.flush_one(thread);
    ++result_.flush_steps;
    if (auditor_ != nullptr && !next.violated()) {
      if (auto why = auditor_->check_transition(
              world, next, next.threads()[thread].tid)) {
        next.report_violation("guarantee: " + *why);
      }
    }
    const StepFootprint fp = next.footprint();
    SleepSet child = por_ ? inherit_sleep(cur, fp) : SleepSet{};
    reached(std::move(next), depth + 1, std::move(child));
    schedule_.pop_back();
  }

  void advance(const World& world, std::size_t thread, std::size_t depth,
               SleepSet& cur) {
    const ThreadCtx& t = world.threads()[thread];
    const Call& call = config_.programs[t.program].calls[t.call_idx];
    const SimObject& object = *objects_[call.object];

    schedule_.push_back(ScheduleStep{t.tid, -1});
    ++result_.transitions;

    World next = world;  // branch
    next.begin_step();
    ThreadCtx& nt = next.threads()[thread];
    StepResult sr = object.step(next, nt);

    if (sr.kind == StepResult::Kind::kChoice) {
      bool all_pure = true;
      for (std::int32_t c = 0; c < sr.nchoices && !stopped(); ++c) {
        schedule_.back().choice = c;
        World branch = world;
        branch.begin_step();
        ThreadCtx& bt = branch.threads()[thread];
        bt.choice = c;
        StepResult inner = object.step(branch, bt);
        bt.choice = -1;
        if (inner.kind == StepResult::Kind::kChoice) {
          branch.report_violation("machine asked for a choice twice in a row");
        }
        if (auditor_ != nullptr && !branch.violated()) {
          if (auto why = auditor_->check_transition(world, branch, bt.tid)) {
            branch.report_violation("guarantee: " + *why);
          }
        }
        const StepFootprint fp = branch.footprint();
        all_pure = all_pure && fp.pure();
        SleepSet child = por_ ? inherit_sleep(cur, fp) : SleepSet{};
        reached(std::move(branch), depth + 1, std::move(child));
      }
      if (por_ && all_pure) {
        cur.push_back(SleepEntry{
            thread, StepFootprint{StepFootprint::Kind::kLocal, kNull, false}});
      }
    } else {
      if (auditor_ != nullptr && !next.violated()) {
        if (auto why = auditor_->check_transition(world, next, nt.tid)) {
          next.report_violation("guarantee: " + *why);
        }
      }
      const StepFootprint fp = next.footprint();
      SleepSet child = por_ ? inherit_sleep(cur, fp) : SleepSet{};
      reached(std::move(next), depth + 1, std::move(child));
      if (por_ && fp.pure()) cur.push_back(SleepEntry{thread, fp});
    }

    schedule_.pop_back();
  }

  const WorldConfig& config_;
  const std::vector<std::unique_ptr<SimObject>>& objects_;
  const ExploreOptions& options_;
  const TransitionAuditor* auditor_;
  const WorldCanon* canon_;
  const bool por_;
  SharedExplore& shared_;
  const std::size_t branch_seq_;
  std::vector<ScheduleStep> schedule_;
  std::unordered_set<std::vector<std::int64_t>, KeyHash> seen_histories_;
  ExploreResult result_;
  bool done_ = false;
};

}  // namespace

Explorer::Explorer(const WorldConfig& config,
                   std::vector<std::unique_ptr<SimObject>> objects,
                   ExploreOptions options)
    : owned_config_(config),
      config_(owned_config_),
      objects_(std::move(objects)),
      options_(options) {
  // Either surface may select TSO: ExploreOptions::memory_model overrides
  // the config when set, and a TSO config is honored when the options keep
  // the default.
  if (options_.memory_model == MemoryModel::kTso) {
    owned_config_.memory_model = MemoryModel::kTso;
  }
}

ExploreResult Explorer::run() {
  const std::size_t threads = par::resolve_threads(options_.threads);
  ExploreResult result =
      threads > 1 ? run_parallel(threads) : run_sequential();
  check_collected(result);
  return result;
}

ExploreResult Explorer::run_sequential() {
  // Both reductions are gated off while an auditor is attached: the
  // auditor's per-transition and per-state checks must observe every
  // transition, including the ones a reduction would skip (DESIGN.md).
  // POR also needs one sleep-mask bit per thread, so >64 threads fall
  // back to the plain walk rather than alias mask bits.
  const bool por = options_.por && auditor_ == nullptr &&
                   config_.programs.size() <= 64;
  std::unique_ptr<WorldCanon> canon_storage;
  const WorldCanon* canon = nullptr;
  if (options_.symmetry && auditor_ == nullptr) {
    canon_storage = std::make_unique<WorldCanon>(config_);
    if (canon_storage->active()) canon = canon_storage.get();
  }

  ExploreResult result;
  ExplorePolicy policy(config_, objects_, options_, auditor_, canon, por);

  engine::SearchOptions sopts;
  sopts.max_visited = options_.max_states;
  sopts.exact_visited = true;  // state merging must be sound, not probable
  sopts.dedup = options_.merge_states;

  std::unordered_set<std::vector<std::int64_t>, KeyHash> seen_histories;
  engine::SequentialSearch<ExplorePolicy> search(policy, sopts);
  engine::SearchStats stats = search.run_collect(
      [&](const ExplorePolicy::Node& node, const std::vector<ScheduleStep>&) {
        ++result.terminals;
        if (!options_.collect_terminals) return;
        auto key = encode_history(node.world.history());
        if (seen_histories.insert(std::move(key)).second) {
          result.histories.push_back(node.world.history());
          result.traces.push_back(node.world.trace());
        }
      });

  result.states = stats.visited_states;
  result.transitions = policy.transitions();
  result.merged = stats.dedup_hits;
  result.max_depth = stats.max_depth;
  result.exhausted = stats.exhausted;
  result.events = policy.events();
  result.por_pruned = policy.por_pruned();
  result.symmetry_merged = policy.symmetry_merged();
  result.flush_steps = policy.flush_steps();
  result.buffered_max = policy.buffered_max();
  result.recycled_allocs = policy.recycled_allocs();
  result.retired_max = policy.retired_max();
  result.violations = policy.violations();
  return result;
}

void Explorer::check_collected(ExploreResult& result) const {
  if (options_.check_spec == nullptr || result.histories.empty()) return;
  result.history_verdicts.reserve(result.histories.size());
  for (std::size_t i = 0; i < result.histories.size(); ++i) {
    engine::IncrementalOptions iopts;
    iopts.window = options_.check_window;
    engine::IncrementalChecker checker(*options_.check_spec, iopts);
    checker.push(result.histories[i]);
    checker.finish();
    result.history_verdicts.push_back(checker.ok());
    if (!checker.ok()) {
      result.check_failures.push_back(
          "history " + std::to_string(i) + ": " + checker.status().reason);
    }
  }
}

ExploreResult Explorer::run_parallel(std::size_t threads) {
  // Phase 1 — breadth-first root split (sequential, deterministic): grow a
  // frontier of independent subtree roots, one per thread/choice prefix,
  // until there is enough work to saturate the pool. Every node popped
  // here goes through exactly the checks the sequential dfs() would apply;
  // its children go through the advance()/reached() checks. `seq` numbers
  // record the breadth-first order — they are the tie-breaker that makes
  // the reported first violation deterministic.
  struct Node {
    World world;
    std::vector<ScheduleStep> schedule;
    std::size_t depth = 0;
    SleepSet sleep;
  };

  const bool por = options_.por && auditor_ == nullptr &&
                   config_.programs.size() <= 64;
  std::unique_ptr<WorldCanon> canon_storage;
  const WorldCanon* canon = nullptr;
  if (options_.symmetry && auditor_ == nullptr) {
    canon_storage = std::make_unique<WorldCanon>(config_);
    if (canon_storage->active()) canon = canon_storage.get();
  }

  SharedExplore shared;
  ExploreResult total;
  std::unordered_set<std::vector<std::int64_t>, KeyHash> merged_seen;
  std::deque<Node> frontier;
  bool stop_all = false;

  {
    World initial(config_);
    for (auto& obj : objects_) obj->init(initial);
    frontier.push_back(Node{std::move(initial), {}, 0, {}});
  }

  const std::size_t split_target = threads * 4;
  constexpr std::size_t kMaxSplitDepth = 8;

  while (!frontier.empty() && !stop_all && frontier.size() < split_target &&
         frontier.front().depth < kMaxSplitDepth) {
    Node node = std::move(frontier.front());
    frontier.pop_front();

    // dfs()-entry checks.
    if (node.depth > total.max_depth) total.max_depth = node.depth;
    total.events |= node.world.events();
    const std::size_t buffered = node.world.memory().buffered_total();
    if (buffered > total.buffered_max) total.buffered_max = buffered;
    const std::size_t recycled = node.world.recycled_allocs();
    if (recycled > total.recycled_allocs) total.recycled_allocs = recycled;
    const std::size_t retired = node.world.retired().size();
    if (retired > total.retired_max) total.retired_max = retired;
    if (options_.max_states != 0 &&
        shared.states.load(std::memory_order_relaxed) >= options_.max_states) {
      total.exhausted = true;
      stop_all = true;
      break;
    }
    if (options_.merge_states) {
      std::vector<std::int64_t> key;
      bool renamed = false;
      encode_world_key(node.world, canon, por, sleep_mask_of(node.sleep),
                       key, renamed);
      if (!shared.visited.insert(std::move(key))) {
        ++total.merged;
        if (renamed) ++total.symmetry_merged;
        continue;
      }
    }
    if (por && options_.merge_states && !node.world.all_done()) {
      // Sleep-mask subsumption, against the same table the walkers share.
      // Runs before the state count so a covered revisit is a prune, not a
      // state (terminals are exempt; see Walker::dfs).
      std::vector<std::int64_t> key;
      bool renamed = false;
      encode_world_key(node.world, canon, /*por=*/true,
                       sleep_mask_of(node.sleep), key, renamed);
      const auto permuted = static_cast<std::uint64_t>(key.back());
      key.pop_back();
      if (shared.sleep_seen.covered(key, permuted)) {
        ++total.por_pruned;
        continue;
      }
    }
    shared.states.fetch_add(1, std::memory_order_relaxed);
    ++total.states;
    if (node.world.all_done()) {
      ++total.terminals;
      if (options_.collect_terminals) {
        auto key = encode_history(node.world.history());
        if (merged_seen.insert(std::move(key)).second) {
          total.histories.push_back(node.world.history());
          total.traces.push_back(node.world.trace());
        }
      }
      continue;
    }

    // advance()/reached() on every runnable thread.
    auto emit = [&](World&& w, std::vector<ScheduleStep>&& sched,
                    SleepSet&& child_sleep) {
      if (!w.violated() && auditor_ != nullptr) {
        if (auto why = auditor_->check_invariant(w)) {
          w.report_violation("invariant: " + *why);
        }
      }
      if (w.violated()) {
        total.violations.push_back(
            ScheduleViolation{w.violation().value_or("unknown"), sched});
        if (options_.stop_on_first_violation) stop_all = true;
        return;
      }
      frontier.push_back(Node{std::move(w), std::move(sched), node.depth + 1,
                              std::move(child_sleep)});
    };

    SleepSet cur = node.sleep;
    for (std::size_t i = 0; i < node.world.threads().size() && !stop_all;
         ++i) {
      const ThreadCtx& t = node.world.threads()[i];
      if (t.done(config_.programs[t.program].calls.size())) continue;
      if (por && is_sleeping(node.sleep, i)) {
        ++total.por_pruned;
        continue;
      }
      const Call& call = config_.programs[t.program].calls[t.call_idx];
      const SimObject& object = *objects_[call.object];
      ++total.transitions;

      World next = node.world;
      next.begin_step();
      ThreadCtx& nt = next.threads()[i];
      StepResult sr = object.step(next, nt);

      if (sr.kind == StepResult::Kind::kChoice) {
        bool all_pure = true;
        for (std::int32_t c = 0; c < sr.nchoices && !stop_all; ++c) {
          World branch = node.world;
          branch.begin_step();
          ThreadCtx& bt = branch.threads()[i];
          bt.choice = c;
          StepResult inner = object.step(branch, bt);
          bt.choice = -1;
          if (inner.kind == StepResult::Kind::kChoice) {
            branch.report_violation(
                "machine asked for a choice twice in a row");
          }
          if (auditor_ != nullptr && !branch.violated()) {
            if (auto why =
                    auditor_->check_transition(node.world, branch, bt.tid)) {
              branch.report_violation("guarantee: " + *why);
            }
          }
          const StepFootprint fp = branch.footprint();
          all_pure = all_pure && fp.pure();
          std::vector<ScheduleStep> sched = node.schedule;
          sched.push_back(ScheduleStep{t.tid, c});
          emit(std::move(branch), std::move(sched),
               por ? inherit_sleep(cur, fp) : SleepSet{});
        }
        if (por && all_pure) {
          cur.push_back(SleepEntry{
              i, StepFootprint{StepFootprint::Kind::kLocal, kNull, false}});
        }
      } else {
        if (auditor_ != nullptr && !next.violated()) {
          if (auto why = auditor_->check_transition(node.world, next,
                                                    nt.tid)) {
            next.report_violation("guarantee: " + *why);
          }
        }
        const StepFootprint fp = next.footprint();
        std::vector<ScheduleStep> sched = node.schedule;
        sched.push_back(ScheduleStep{t.tid, -1});
        emit(std::move(next), std::move(sched),
             por ? inherit_sleep(cur, fp) : SleepSet{});
        if (por && fp.pure()) cur.push_back(SleepEntry{i, fp});
      }
    }

    // TSO flush transitions (see ExplorePolicy::expand).
    for (std::size_t i = 0; i < node.world.threads().size() && !stop_all;
         ++i) {
      if (!node.world.flushable(i)) continue;
      ++total.transitions;
      World next = node.world;
      next.begin_step();
      next.flush_one(i);
      ++total.flush_steps;
      if (auditor_ != nullptr && !next.violated()) {
        if (auto why = auditor_->check_transition(
                node.world, next, next.threads()[i].tid)) {
          next.report_violation("guarantee: " + *why);
        }
      }
      const StepFootprint fp = next.footprint();
      std::vector<ScheduleStep> sched = node.schedule;
      sched.push_back(
          ScheduleStep{node.world.threads()[i].tid, -1, /*flush=*/true});
      emit(std::move(next), std::move(sched),
           por ? inherit_sleep(cur, fp) : SleepSet{});
    }
  }

  // Phase 2 — branch walkers on the pool. Branch sequence numbers follow
  // the frontier (= breadth-first) order.
  if (!stop_all && !frontier.empty()) {
    std::vector<std::unique_ptr<Walker>> walkers;
    walkers.reserve(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      walkers.push_back(std::make_unique<Walker>(
          config_, objects_, options_, auditor_, canon, por, shared, i,
          std::move(frontier[i].schedule)));
    }
    {
      par::TaskPool pool(threads);
      for (std::size_t i = 0; i < walkers.size(); ++i) {
        pool.submit([w = walkers[i].get(), world = std::move(frontier[i].world),
                     depth = frontier[i].depth,
                     sleep = std::move(frontier[i].sleep)]() mutable {
          w->run(std::move(world), depth, std::move(sleep));
        });
      }
      pool.wait_idle();
    }

    // Phase 3 — deterministic merge, in branch order.
    for (const auto& w : walkers) {
      const ExploreResult& r = w->result();
      total.states += r.states;
      total.transitions += r.transitions;
      total.merged += r.merged;
      total.por_pruned += r.por_pruned;
      total.symmetry_merged += r.symmetry_merged;
      total.flush_steps += r.flush_steps;
      if (r.buffered_max > total.buffered_max) {
        total.buffered_max = r.buffered_max;
      }
      if (r.recycled_allocs > total.recycled_allocs) {
        total.recycled_allocs = r.recycled_allocs;
      }
      if (r.retired_max > total.retired_max) {
        total.retired_max = r.retired_max;
      }
      total.terminals += r.terminals;
      if (r.max_depth > total.max_depth) total.max_depth = r.max_depth;
      total.events |= r.events;
      total.exhausted = total.exhausted || r.exhausted;
      for (std::size_t i = 0; i < r.histories.size(); ++i) {
        if (merged_seen.insert(encode_history(r.histories[i])).second) {
          total.histories.push_back(r.histories[i]);
          total.traces.push_back(r.traces[i]);
        }
      }
    }
    if (options_.stop_on_first_violation) {
      // The earliest branch that found one wins (phase-1 violations, if
      // any, stopped the split before walkers launched).
      if (total.violations.empty()) {
        for (const auto& w : walkers) {
          if (!w->result().violations.empty()) {
            total.violations.push_back(w->result().violations.front());
            break;
          }
        }
      }
    } else {
      for (const auto& w : walkers) {
        for (const ScheduleViolation& v : w->result().violations) {
          total.violations.push_back(v);
        }
      }
    }
  }
  return total;
}

std::string ScheduleViolation::to_string() const {
  std::string out = what + "\nschedule:";
  for (const ScheduleStep& s : schedule) {
    out += " t" + std::to_string(s.tid);
    if (s.flush) out += "!flush";
    if (s.choice >= 0) out += "#" + std::to_string(s.choice);
  }
  return out;
}

World Explorer::replay(const std::vector<ScheduleStep>& schedule,
                       bool record) {
  // The returned World keeps a pointer to its config, so the
  // recording-enabled copy must outlive it. One owned copy is kept per
  // replay call (never reused): a second replay() must not destroy the
  // config a previously returned World still references.
  const WorldConfig* cfg = &config_;
  if (record) {
    auto owned = std::make_unique<WorldConfig>(config_);
    owned->record_history = true;
    owned->record_trace = true;
    replay_configs_.push_back(std::move(owned));
    cfg = replay_configs_.back().get();
  }
  World world(*cfg);
  for (auto& obj : objects_) obj->init(world);

  for (const ScheduleStep& step : schedule) {
    if (world.violated()) break;
    ThreadCtx* ctx = nullptr;
    for (ThreadCtx& t : world.threads()) {
      if (t.tid == step.tid) ctx = &t;
    }
    if (ctx == nullptr) {
      world.report_violation("replay: unknown thread t" +
                             std::to_string(step.tid));
      break;
    }
    if (step.flush) {
      if (!world.flushable(ctx->program)) {
        world.report_violation("replay: t" + std::to_string(step.tid) +
                               " has no buffered write to flush");
        break;
      }
      world.begin_step();
      world.flush_one(ctx->program);
      continue;
    }
    if (ctx->done(config_.programs[ctx->program].calls.size())) {
      world.report_violation("replay: thread t" + std::to_string(step.tid) +
                             " cannot act");
      break;
    }
    const Call& call = config_.programs[ctx->program].calls[ctx->call_idx];
    world.begin_step();
    ctx->choice = step.choice;
    StepResult sr = objects_[call.object]->step(world, *ctx);
    ctx->choice = -1;
    if (sr.kind == StepResult::Kind::kChoice) {
      world.report_violation(
          "replay: step needs a choice but none was recorded");
      break;
    }
  }
  return world;
}

}  // namespace cal::sched
