#include "sched/explorer.hpp"

#include <atomic>
#include <deque>
#include <memory>
#include <unordered_set>
#include <utility>

#include "cal/engine/incremental.hpp"
#include "cal/engine/search_engine.hpp"
#include "cal/parallel/sharded_set.hpp"
#include "cal/parallel/task_pool.hpp"

namespace cal::sched {

namespace {

/// Serializes a history for terminal deduplication.
std::vector<std::int64_t> encode_history(const History& h) {
  std::vector<std::int64_t> out;
  out.reserve(h.size() * 5);
  for (const Action& a : h.actions()) {
    out.push_back(a.is_invoke() ? 1 : 2);
    out.push_back(a.tid);
    out.push_back(a.object.id());
    out.push_back(a.method.id());
    out.push_back(static_cast<std::int64_t>(a.payload.hash()));
  }
  return out;
}

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& k) const noexcept {
    return hash_state(k);
  }
};

/// The sequential exploration as an engine policy: worlds are nodes,
/// schedule steps are labels, terminal worlds are goals (collect-mode
/// sinks). Per-step audits (transition guarantee, state invariant, choice
/// protocol) run in expand() *before* a successor is emitted, so violating
/// worlds never enter the search — exactly the pre-engine reached() order.
/// The engine owns state merging, the max_states cap, depth, and the
/// schedule prefix; this policy owns transitions/events accounting and
/// violation recording.
class ExplorePolicy {
 public:
  using Node = World;
  using Label = ScheduleStep;

  ExplorePolicy(const WorldConfig& config,
                const std::vector<std::unique_ptr<SimObject>>& objects,
                const ExploreOptions& options,
                const TransitionAuditor* auditor)
      : config_(config),
        objects_(objects),
        options_(options),
        auditor_(auditor) {}

  std::vector<World> roots() {
    World initial(config_);
    for (const auto& obj : objects_) obj->init(initial);
    std::vector<World> out;
    out.push_back(std::move(initial));
    return out;
  }

  [[nodiscard]] bool is_goal(const World& world) const {
    return world.all_done();
  }

  void encode(const World& world, engine::NodeKey& out) const {
    out.clear();
    world.encode(out);
  }

  void on_enter(const World& world, std::size_t /*depth*/) {
    events_ |= world.events();
  }

  [[nodiscard]] bool cancelled() const noexcept { return done_; }

  template <typename Emit>
  void expand(const World& world, std::size_t /*depth*/,
              const std::vector<ScheduleStep>& prefix, Emit&& emit) {
    for (std::size_t i = 0; i < world.threads().size(); ++i) {
      if (done_) return;
      const ThreadCtx& t = world.threads()[i];
      if (t.done(config_.programs[t.program].calls.size())) continue;
      const Call& call = config_.programs[t.program].calls[t.call_idx];
      const SimObject& object = *objects_[call.object];
      ++transitions_;

      World next = world;  // branch
      ThreadCtx& nt = next.threads()[i];
      StepResult sr = object.step(next, nt);

      if (sr.kind == StepResult::Kind::kChoice) {
        // Fork one successor per choice value; the machine consumes the
        // choice on its next step.
        for (std::int32_t c = 0; c < sr.nchoices && !done_; ++c) {
          World branch = world;
          ThreadCtx& bt = branch.threads()[i];
          bt.choice = c;
          StepResult inner = object.step(branch, bt);
          bt.choice = -1;
          if (inner.kind == StepResult::Kind::kChoice) {
            branch.report_violation(
                "machine asked for a choice twice in a row");
          }
          audit_transition(world, branch, bt.tid);
          if (!offer(std::move(branch), ScheduleStep{t.tid, c}, prefix,
                     emit)) {
            return;
          }
        }
      } else {
        audit_transition(world, next, nt.tid);
        if (!offer(std::move(next), ScheduleStep{t.tid, -1}, prefix, emit)) {
          return;
        }
      }
    }
  }

  [[nodiscard]] std::size_t transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] std::vector<ScheduleViolation>&& violations() noexcept {
    return std::move(violations_);
  }

 private:
  void audit_transition(const World& pre, World& post, ThreadId actor) const {
    if (auditor_ == nullptr || post.violated()) return;
    if (auto why = auditor_->check_transition(pre, post, actor)) {
      post.report_violation("guarantee: " + *why);
    }
  }

  /// Audits a freshly stepped world and either records its violation or
  /// hands it to the driver; false stops this node's expansion.
  template <typename Emit>
  bool offer(World&& world, ScheduleStep step,
             const std::vector<ScheduleStep>& prefix, Emit& emit) {
    if (done_) return false;
    if (!world.violated() && auditor_ != nullptr) {
      if (auto why = auditor_->check_invariant(world)) {
        world.report_violation("invariant: " + *why);
      }
    }
    if (world.violated()) {
      std::vector<ScheduleStep> schedule = prefix;
      schedule.push_back(step);
      violations_.push_back(ScheduleViolation{
          world.violation().value_or("unknown"), std::move(schedule)});
      if (options_.stop_on_first_violation) done_ = true;
      return !done_;
    }
    return emit(std::move(world), std::move(step));
  }

  const WorldConfig& config_;
  const std::vector<std::unique_ptr<SimObject>>& objects_;
  const ExploreOptions& options_;
  const TransitionAuditor* auditor_;

  std::size_t transitions_ = 0;
  std::uint64_t events_ = 0;
  std::vector<ScheduleViolation> violations_;
  bool done_ = false;
};

constexpr std::size_t kNoViolation = static_cast<std::size_t>(-1);

/// State shared by every branch walker of one parallel exploration.
struct SharedExplore {
  par::ShardedStateSet visited;     ///< merge_states deduplication table
  std::atomic<std::size_t> states{0};  ///< global count, for max_states
  std::atomic<bool> exhausted{false};
  /// Smallest branch sequence number that found a violation; branches
  /// with larger numbers cancel (stop_on_first_violation mode), smaller
  /// ones run on so the final selection is deterministic.
  std::atomic<std::size_t> first_violation{kNoViolation};

  void note_violation(std::size_t branch_seq) {
    std::size_t cur = first_violation.load(std::memory_order_relaxed);
    while (branch_seq < cur &&
           !first_violation.compare_exchange_weak(cur, branch_seq,
                                                  std::memory_order_relaxed)) {
    }
  }
};

/// One branch of the parallel exploration: a sequential DFS over the
/// subtree rooted at a breadth-first split node, mirroring the sequential
/// Explorer step for step but routing state merging and the max_states cap
/// through SharedExplore. Counters, violations, and collected terminals
/// stay walker-local and are merged in branch order afterwards.
class Walker {
 public:
  Walker(const WorldConfig& config,
         const std::vector<std::unique_ptr<SimObject>>& objects,
         const ExploreOptions& options, const TransitionAuditor* auditor,
         SharedExplore& shared, std::size_t branch_seq,
         std::vector<ScheduleStep> schedule)
      : config_(config),
        objects_(objects),
        options_(options),
        auditor_(auditor),
        shared_(shared),
        branch_seq_(branch_seq),
        schedule_(std::move(schedule)) {}

  void run(World world, std::size_t depth) { dfs(std::move(world), depth); }

  [[nodiscard]] ExploreResult& result() noexcept { return result_; }
  [[nodiscard]] std::size_t branch_seq() const noexcept { return branch_seq_; }

 private:
  [[nodiscard]] bool stopped() const {
    if (done_ || shared_.exhausted.load(std::memory_order_relaxed)) {
      return true;
    }
    return options_.stop_on_first_violation &&
           shared_.first_violation.load(std::memory_order_relaxed) <
               branch_seq_;
  }

  void record_violation(const World& world) {
    result_.violations.push_back(
        ScheduleViolation{world.violation().value_or("unknown"), schedule_});
    if (options_.stop_on_first_violation) {
      shared_.note_violation(branch_seq_);
      done_ = true;
    }
  }

  void reached(World&& world, std::size_t depth) {
    if (stopped()) return;
    if (world.violated()) {
      record_violation(world);
      return;
    }
    if (auditor_ != nullptr) {
      if (auto why = auditor_->check_invariant(world)) {
        world.report_violation("invariant: " + *why);
        record_violation(world);
        return;
      }
    }
    dfs(std::move(world), depth);
  }

  void dfs(World world, std::size_t depth) {
    if (stopped()) return;
    if (depth > result_.max_depth) result_.max_depth = depth;
    result_.events |= world.events();

    if (options_.max_states != 0 &&
        shared_.states.load(std::memory_order_relaxed) >=
            options_.max_states) {
      result_.exhausted = true;
      shared_.exhausted.store(true, std::memory_order_relaxed);
      done_ = true;
      return;
    }
    if (options_.merge_states) {
      std::vector<std::int64_t> key;
      world.encode(key);
      if (!shared_.visited.insert(std::move(key))) {
        ++result_.merged;
        return;
      }
    }
    shared_.states.fetch_add(1, std::memory_order_relaxed);
    ++result_.states;

    if (world.all_done()) {
      ++result_.terminals;
      if (options_.collect_terminals) {
        auto key = encode_history(world.history());
        if (seen_histories_.insert(std::move(key)).second) {
          result_.histories.push_back(world.history());
          result_.traces.push_back(world.trace());
        }
      }
      return;
    }

    for (std::size_t i = 0; i < world.threads().size(); ++i) {
      const ThreadCtx& t = world.threads()[i];
      if (t.done(config_.programs[t.program].calls.size())) continue;
      advance(world, i, depth);
      if (stopped()) return;
    }
  }

  void advance(const World& world, std::size_t thread, std::size_t depth) {
    const ThreadCtx& t = world.threads()[thread];
    const Call& call = config_.programs[t.program].calls[t.call_idx];
    const SimObject& object = *objects_[call.object];

    schedule_.push_back(ScheduleStep{t.tid, -1});
    ++result_.transitions;

    World next = world;  // branch
    ThreadCtx& nt = next.threads()[thread];
    StepResult sr = object.step(next, nt);

    if (sr.kind == StepResult::Kind::kChoice) {
      for (std::int32_t c = 0; c < sr.nchoices && !stopped(); ++c) {
        schedule_.back().choice = c;
        World branch = world;
        ThreadCtx& bt = branch.threads()[thread];
        bt.choice = c;
        StepResult inner = object.step(branch, bt);
        bt.choice = -1;
        if (inner.kind == StepResult::Kind::kChoice) {
          branch.report_violation("machine asked for a choice twice in a row");
        }
        if (auditor_ != nullptr && !branch.violated()) {
          if (auto why = auditor_->check_transition(world, branch, bt.tid)) {
            branch.report_violation("guarantee: " + *why);
          }
        }
        reached(std::move(branch), depth + 1);
      }
    } else {
      if (auditor_ != nullptr && !next.violated()) {
        if (auto why = auditor_->check_transition(world, next, nt.tid)) {
          next.report_violation("guarantee: " + *why);
        }
      }
      reached(std::move(next), depth + 1);
    }

    schedule_.pop_back();
  }

  const WorldConfig& config_;
  const std::vector<std::unique_ptr<SimObject>>& objects_;
  const ExploreOptions& options_;
  const TransitionAuditor* auditor_;
  SharedExplore& shared_;
  const std::size_t branch_seq_;
  std::vector<ScheduleStep> schedule_;
  std::unordered_set<std::vector<std::int64_t>, KeyHash> seen_histories_;
  ExploreResult result_;
  bool done_ = false;
};

}  // namespace

Explorer::Explorer(const WorldConfig& config,
                   std::vector<std::unique_ptr<SimObject>> objects,
                   ExploreOptions options)
    : config_(config), objects_(std::move(objects)), options_(options) {}

ExploreResult Explorer::run() {
  const std::size_t threads = par::resolve_threads(options_.threads);
  ExploreResult result =
      threads > 1 ? run_parallel(threads) : run_sequential();
  check_collected(result);
  return result;
}

ExploreResult Explorer::run_sequential() {
  ExploreResult result;
  ExplorePolicy policy(config_, objects_, options_, auditor_);

  engine::SearchOptions sopts;
  sopts.max_visited = options_.max_states;
  sopts.exact_visited = true;  // state merging must be sound, not probable
  sopts.dedup = options_.merge_states;

  std::unordered_set<std::vector<std::int64_t>, KeyHash> seen_histories;
  engine::SequentialSearch<ExplorePolicy> search(policy, sopts);
  engine::SearchStats stats = search.run_collect(
      [&](const World& world, const std::vector<ScheduleStep>&) {
        ++result.terminals;
        if (!options_.collect_terminals) return;
        auto key = encode_history(world.history());
        if (seen_histories.insert(std::move(key)).second) {
          result.histories.push_back(world.history());
          result.traces.push_back(world.trace());
        }
      });

  result.states = stats.visited_states;
  result.transitions = policy.transitions();
  result.merged = stats.dedup_hits;
  result.max_depth = stats.max_depth;
  result.exhausted = stats.exhausted;
  result.events = policy.events();
  result.violations = policy.violations();
  return result;
}

void Explorer::check_collected(ExploreResult& result) const {
  if (options_.check_spec == nullptr || result.histories.empty()) return;
  result.history_verdicts.reserve(result.histories.size());
  for (std::size_t i = 0; i < result.histories.size(); ++i) {
    engine::IncrementalOptions iopts;
    iopts.window = options_.check_window;
    engine::IncrementalChecker checker(*options_.check_spec, iopts);
    checker.push(result.histories[i]);
    checker.finish();
    result.history_verdicts.push_back(checker.ok());
    if (!checker.ok()) {
      result.check_failures.push_back(
          "history " + std::to_string(i) + ": " + checker.status().reason);
    }
  }
}

ExploreResult Explorer::run_parallel(std::size_t threads) {
  // Phase 1 — breadth-first root split (sequential, deterministic): grow a
  // frontier of independent subtree roots, one per thread/choice prefix,
  // until there is enough work to saturate the pool. Every node popped
  // here goes through exactly the checks the sequential dfs() would apply;
  // its children go through the advance()/reached() checks. `seq` numbers
  // record the breadth-first order — they are the tie-breaker that makes
  // the reported first violation deterministic.
  struct Node {
    World world;
    std::vector<ScheduleStep> schedule;
    std::size_t depth = 0;
  };

  SharedExplore shared;
  ExploreResult total;
  std::unordered_set<std::vector<std::int64_t>, KeyHash> merged_seen;
  std::deque<Node> frontier;
  bool stop_all = false;

  {
    World initial(config_);
    for (auto& obj : objects_) obj->init(initial);
    frontier.push_back(Node{std::move(initial), {}, 0});
  }

  const std::size_t split_target = threads * 4;
  constexpr std::size_t kMaxSplitDepth = 8;

  while (!frontier.empty() && !stop_all && frontier.size() < split_target &&
         frontier.front().depth < kMaxSplitDepth) {
    Node node = std::move(frontier.front());
    frontier.pop_front();

    // dfs()-entry checks.
    if (node.depth > total.max_depth) total.max_depth = node.depth;
    total.events |= node.world.events();
    if (options_.max_states != 0 &&
        shared.states.load(std::memory_order_relaxed) >= options_.max_states) {
      total.exhausted = true;
      stop_all = true;
      break;
    }
    if (options_.merge_states) {
      std::vector<std::int64_t> key;
      node.world.encode(key);
      if (!shared.visited.insert(std::move(key))) {
        ++total.merged;
        continue;
      }
    }
    shared.states.fetch_add(1, std::memory_order_relaxed);
    ++total.states;
    if (node.world.all_done()) {
      ++total.terminals;
      if (options_.collect_terminals) {
        auto key = encode_history(node.world.history());
        if (merged_seen.insert(std::move(key)).second) {
          total.histories.push_back(node.world.history());
          total.traces.push_back(node.world.trace());
        }
      }
      continue;
    }

    // advance()/reached() on every runnable thread.
    auto emit = [&](World&& w, std::vector<ScheduleStep>&& sched) {
      if (!w.violated() && auditor_ != nullptr) {
        if (auto why = auditor_->check_invariant(w)) {
          w.report_violation("invariant: " + *why);
        }
      }
      if (w.violated()) {
        total.violations.push_back(
            ScheduleViolation{w.violation().value_or("unknown"), sched});
        if (options_.stop_on_first_violation) stop_all = true;
        return;
      }
      frontier.push_back(Node{std::move(w), std::move(sched), node.depth + 1});
    };

    for (std::size_t i = 0; i < node.world.threads().size() && !stop_all;
         ++i) {
      const ThreadCtx& t = node.world.threads()[i];
      if (t.done(config_.programs[t.program].calls.size())) continue;
      const Call& call = config_.programs[t.program].calls[t.call_idx];
      const SimObject& object = *objects_[call.object];
      ++total.transitions;

      World next = node.world;
      ThreadCtx& nt = next.threads()[i];
      StepResult sr = object.step(next, nt);

      if (sr.kind == StepResult::Kind::kChoice) {
        for (std::int32_t c = 0; c < sr.nchoices && !stop_all; ++c) {
          World branch = node.world;
          ThreadCtx& bt = branch.threads()[i];
          bt.choice = c;
          StepResult inner = object.step(branch, bt);
          bt.choice = -1;
          if (inner.kind == StepResult::Kind::kChoice) {
            branch.report_violation(
                "machine asked for a choice twice in a row");
          }
          if (auditor_ != nullptr && !branch.violated()) {
            if (auto why =
                    auditor_->check_transition(node.world, branch, bt.tid)) {
              branch.report_violation("guarantee: " + *why);
            }
          }
          std::vector<ScheduleStep> sched = node.schedule;
          sched.push_back(ScheduleStep{t.tid, c});
          emit(std::move(branch), std::move(sched));
        }
      } else {
        if (auditor_ != nullptr && !next.violated()) {
          if (auto why = auditor_->check_transition(node.world, next,
                                                    nt.tid)) {
            next.report_violation("guarantee: " + *why);
          }
        }
        std::vector<ScheduleStep> sched = node.schedule;
        sched.push_back(ScheduleStep{t.tid, -1});
        emit(std::move(next), std::move(sched));
      }
    }
  }

  // Phase 2 — branch walkers on the pool. Branch sequence numbers follow
  // the frontier (= breadth-first) order.
  if (!stop_all && !frontier.empty()) {
    std::vector<std::unique_ptr<Walker>> walkers;
    walkers.reserve(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      walkers.push_back(std::make_unique<Walker>(
          config_, objects_, options_, auditor_, shared, i,
          std::move(frontier[i].schedule)));
    }
    {
      par::TaskPool pool(threads);
      for (std::size_t i = 0; i < walkers.size(); ++i) {
        pool.submit([w = walkers[i].get(), world = std::move(frontier[i].world),
                     depth = frontier[i].depth]() mutable {
          w->run(std::move(world), depth);
        });
      }
      pool.wait_idle();
    }

    // Phase 3 — deterministic merge, in branch order.
    for (const auto& w : walkers) {
      const ExploreResult& r = w->result();
      total.states += r.states;
      total.transitions += r.transitions;
      total.merged += r.merged;
      total.terminals += r.terminals;
      if (r.max_depth > total.max_depth) total.max_depth = r.max_depth;
      total.events |= r.events;
      total.exhausted = total.exhausted || r.exhausted;
      for (std::size_t i = 0; i < r.histories.size(); ++i) {
        if (merged_seen.insert(encode_history(r.histories[i])).second) {
          total.histories.push_back(r.histories[i]);
          total.traces.push_back(r.traces[i]);
        }
      }
    }
    if (options_.stop_on_first_violation) {
      // The earliest branch that found one wins (phase-1 violations, if
      // any, stopped the split before walkers launched).
      if (total.violations.empty()) {
        for (const auto& w : walkers) {
          if (!w->result().violations.empty()) {
            total.violations.push_back(w->result().violations.front());
            break;
          }
        }
      }
    } else {
      for (const auto& w : walkers) {
        for (const ScheduleViolation& v : w->result().violations) {
          total.violations.push_back(v);
        }
      }
    }
  }
  return total;
}

std::string ScheduleViolation::to_string() const {
  std::string out = what + "\nschedule:";
  for (const ScheduleStep& s : schedule) {
    out += " t" + std::to_string(s.tid);
    if (s.choice >= 0) out += "#" + std::to_string(s.choice);
  }
  return out;
}

World Explorer::replay(const std::vector<ScheduleStep>& schedule,
                       bool record) {
  WorldConfig cfg = config_;
  if (record) {
    cfg.record_history = true;
    cfg.record_trace = true;
  }
  // The replay world references `cfg` locally, so rebuild against the
  // original config after initialization: World stores a pointer to its
  // config, which must outlive it. Use the member config with overridden
  // recording only when identical lifetimes are guaranteed — simplest is
  // to replay against the original config when no recording override is
  // needed.
  World world(record ? replay_config_.emplace(std::move(cfg))
                     : config_);
  for (auto& obj : objects_) obj->init(world);

  for (const ScheduleStep& step : schedule) {
    if (world.violated()) break;
    ThreadCtx* ctx = nullptr;
    for (ThreadCtx& t : world.threads()) {
      if (t.tid == step.tid) ctx = &t;
    }
    if (ctx == nullptr ||
        ctx->done(config_.programs[ctx->program].calls.size())) {
      world.report_violation("replay: thread t" + std::to_string(step.tid) +
                             " cannot act");
      break;
    }
    const Call& call = config_.programs[ctx->program].calls[ctx->call_idx];
    ctx->choice = step.choice;
    StepResult sr = objects_[call.object]->step(world, *ctx);
    ctx->choice = -1;
    if (sr.kind == StepResult::Kind::kChoice) {
      world.report_violation(
          "replay: step needs a choice but none was recorded");
      break;
    }
  }
  return world;
}

}  // namespace cal::sched
