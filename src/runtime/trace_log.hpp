// The auxiliary history variable 𝒯 (§4 of the paper).
//
// Verification instruments programs with auxiliary assignments that append
// CA-elements to a single global trace variable at commit points — e.g. the
// exchanger's XCHG CAS appends E.swap(g.tid, g.data, t, n.data), and its
// failure returns append the singleton failure element. This class is that
// variable for *real threaded* executions: a wait-free append log of
// CA-elements.
//
// Fidelity note: in the paper (and in the model-checking substrate,
// src/sched), the auxiliary assignment happens *atomically with* the
// instrumented instruction. Real hardware offers no such coupling, so here
// the append happens immediately after the committing instruction; the
// resulting 𝒯 may order two racing commits differently from their memory
// order. The tests therefore validate recorded traces with replay_ca /
// agrees_with (order-insensitive within overlap windows) rather than by
// exact equality, and the exact-coupling claim is discharged by the model
// checker.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "cal/ca_trace.hpp"

namespace cal::runtime {

class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 1 << 20);

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Appends one CA-element to 𝒯. Wait-free; drops (and counts) on overflow.
  void append(CaElement element);

  /// The longest published prefix of 𝒯.
  [[nodiscard]] CaTrace snapshot() const;

  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t n = next_.load(std::memory_order_acquire);
    return n < slots_.size() ? n : slots_.size();
  }
  [[nodiscard]] std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  void reset();

 private:
  struct Slot {
    CaElement element;
    std::atomic<bool> ready{false};
  };

  std::vector<Slot> slots_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> dropped_{0};
};

}  // namespace cal::runtime
