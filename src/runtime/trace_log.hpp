// The auxiliary history variable 𝒯 (§4 of the paper).
//
// Verification instruments programs with auxiliary assignments that append
// CA-elements to a single global trace variable at commit points — e.g. the
// exchanger's XCHG CAS appends E.swap(g.tid, g.data, t, n.data), and its
// failure returns append the singleton failure element. This class is that
// variable for *real threaded* executions: a wait-free append log of
// CA-elements, a runtime::PublishLog<CaElement> (publish_log.hpp documents
// the claim/publish protocol, drop accounting, and prefix consistency).
//
// Fidelity note: in the paper (and in the model-checking substrate,
// src/sched), the auxiliary assignment happens *atomically with* the
// instrumented instruction. Real hardware offers no such coupling, so here
// the append happens immediately after the committing instruction; the
// resulting 𝒯 may order two racing commits differently from their memory
// order. The tests therefore validate recorded traces with replay_ca /
// agrees_with (order-insensitive within overlap windows) rather than by
// exact equality, and the exact-coupling claim is discharged by the model
// checker.
#pragma once

#include <cstddef>

#include "cal/ca_trace.hpp"
#include "runtime/publish_log.hpp"

namespace cal::runtime {

class TraceLog {
 public:
  using Cursor = PublishLog<CaElement>::Cursor;

  explicit TraceLog(std::size_t capacity = 1 << 20) : log_(capacity) {}

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Appends one CA-element to 𝒯. Wait-free; drops (and counts) on overflow.
  void append(CaElement element) { log_.append(std::move(element)); }

  /// The longest published prefix of 𝒯.
  [[nodiscard]] CaTrace snapshot() const {
    CaTrace out;
    log_.snapshot_prefix([&out](const CaElement& e) { out.append(e); });
    return out;
  }

  /// A streaming reader over the published prefix of 𝒯.
  [[nodiscard]] Cursor cursor() const { return log_.cursor(); }

  [[nodiscard]] std::size_t size() const noexcept { return log_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return log_.capacity();
  }
  [[nodiscard]] std::size_t dropped() const noexcept { return log_.dropped(); }

  void reset() { log_.reset(); }

 private:
  PublishLog<CaElement> log_;
};

}  // namespace cal::runtime
