// Dense thread-id assignment.
//
// Histories and rely/guarantee actions are indexed by small integer thread
// ids (t ∈ T). Worker threads register on first use and obtain a dense id;
// ids are released on thread exit and may be reused by later threads, which
// keeps per-thread arrays (epoch slots, recorder shards) small.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace cal::runtime {

using ThreadId = std::uint32_t;

class ThreadRegistry {
 public:
  static constexpr std::size_t kMaxThreads = 256;

  /// The singleton registry used by the guard below.
  static ThreadRegistry& instance();

  /// Claims the smallest free id. Throws std::runtime_error beyond
  /// kMaxThreads live threads.
  [[nodiscard]] ThreadId acquire();
  void release(ThreadId id) noexcept;

  /// Number of ids ever claimed simultaneously (high-water mark).
  [[nodiscard]] std::size_t high_water() const noexcept;

 private:
  mutable std::mutex mu_;
  std::vector<bool> in_use_ = std::vector<bool>(kMaxThreads, false);
  std::size_t high_water_ = 0;
};

/// RAII registration for the calling thread; `tid()` is stable for the
/// guard's lifetime.
class ThreadIdGuard {
 public:
  explicit ThreadIdGuard(ThreadRegistry& registry = ThreadRegistry::instance())
      : registry_(registry), tid_(registry.acquire()) {}
  ~ThreadIdGuard() { registry_.release(tid_); }

  ThreadIdGuard(const ThreadIdGuard&) = delete;
  ThreadIdGuard& operator=(const ThreadIdGuard&) = delete;

  [[nodiscard]] ThreadId tid() const noexcept { return tid_; }

 private:
  ThreadRegistry& registry_;
  ThreadId tid_;
};

}  // namespace cal::runtime
