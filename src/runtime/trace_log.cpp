#include "runtime/trace_log.hpp"

namespace cal::runtime {

TraceLog::TraceLog(std::size_t capacity) : slots_(capacity) {}

void TraceLog::append(CaElement element) {
  const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
  if (i >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_[i].element = std::move(element);
  slots_[i].ready.store(true, std::memory_order_release);
}

CaTrace TraceLog::snapshot() const {
  CaTrace out;
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!slots_[i].ready.load(std::memory_order_acquire)) break;
    out.append(slots_[i].element);
  }
  return out;
}

void TraceLog::reset() {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i].ready.store(false, std::memory_order_relaxed);
  }
  dropped_.store(0, std::memory_order_relaxed);
  next_.store(0, std::memory_order_release);
}

}  // namespace cal::runtime
