#include "runtime/recorder.hpp"

namespace cal::runtime {

Recorder::Recorder(std::size_t capacity) : slots_(capacity) {}

void Recorder::record(Action a) {
  const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
  if (i >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_[i].action = std::move(a);
  slots_[i].ready.store(true, std::memory_order_release);
}

void Recorder::invoke(ThreadId t, Symbol object, Symbol method, Value arg) {
  record(Action::invoke(t, object, method, std::move(arg)));
}

void Recorder::respond(ThreadId t, Symbol object, Symbol method, Value ret) {
  record(Action::respond(t, object, method, std::move(ret)));
}

History Recorder::snapshot() const {
  History out;
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!slots_[i].ready.load(std::memory_order_acquire)) break;
    out.append(slots_[i].action);
  }
  return out;
}

void Recorder::reset() {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i].ready.store(false, std::memory_order_relaxed);
  }
  dropped_.store(0, std::memory_order_relaxed);
  next_.store(0, std::memory_order_release);
}

}  // namespace cal::runtime
