// Concurrent history recorder.
//
// Records the invocation/response actions of real threaded executions into a
// single global order, producing the History objects the checkers consume.
// The interaction is recorded "at the interface level ... at the point where
// control passes from the program to the object system and vice versa" (§3):
// objects call invoke() on entry and respond() on exit.
//
// Implementation: a fixed-capacity log. A slot is claimed with one atomic
// fetch_add (wait-free), written, then published with a release store on a
// per-slot ready flag; snapshot() reads with acquire loads and stops at the
// first unpublished slot, so it only ever observes a consistent prefix.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "cal/history.hpp"

namespace cal::runtime {

class Recorder {
 public:
  explicit Recorder(std::size_t capacity = 1 << 20);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Records (t, inv o.f(arg)). Wait-free. Drops the action (and counts the
  /// drop) if the log is full.
  void invoke(ThreadId t, Symbol object, Symbol method,
              Value arg = Value::unit());
  /// Records (t, res o.f ▷ ret).
  void respond(ThreadId t, Symbol object, Symbol method,
               Value ret = Value::unit());

  /// The longest published prefix as a History. Safe to call concurrently
  /// with recording, but normally called after joining worker threads.
  [[nodiscard]] History snapshot() const;

  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t n = next_.load(std::memory_order_acquire);
    return n < slots_.size() ? n : slots_.size();
  }
  [[nodiscard]] std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  void reset();

 private:
  struct Slot {
    Action action;
    std::atomic<bool> ready{false};
  };

  void record(Action a);

  std::vector<Slot> slots_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> dropped_{0};
};

/// RAII pair: records the invocation on construction and the response when
/// `finish(ret)` is called (or a unit response on destruction if not).
class RecordedCall {
 public:
  RecordedCall(Recorder& recorder, ThreadId t, Symbol object, Symbol method,
               Value arg = Value::unit())
      : recorder_(recorder), tid_(t), object_(object), method_(method) {
    recorder_.invoke(tid_, object_, method_, std::move(arg));
  }

  ~RecordedCall() {
    if (!finished_) recorder_.respond(tid_, object_, method_);
  }

  RecordedCall(const RecordedCall&) = delete;
  RecordedCall& operator=(const RecordedCall&) = delete;

  void finish(Value ret) {
    recorder_.respond(tid_, object_, method_, std::move(ret));
    finished_ = true;
  }

 private:
  Recorder& recorder_;
  ThreadId tid_;
  Symbol object_;
  Symbol method_;
  bool finished_ = false;
};

}  // namespace cal::runtime
