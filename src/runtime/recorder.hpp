// Concurrent history recorder.
//
// Records the invocation/response actions of real threaded executions into a
// single global order, producing the History objects the checkers consume.
// The interaction is recorded "at the interface level ... at the point where
// control passes from the program to the object system and vice versa" (§3):
// objects call invoke() on entry and respond() on exit.
//
// Implementation: a runtime::PublishLog<Action> (see publish_log.hpp for the
// wait-free claim/publish protocol, the drop accounting, and the consistent-
// prefix guarantee). Post-hoc consumers take a whole-prefix snapshot();
// streaming consumers (engine::IncrementalChecker) attach a Cursor and poll
// newly published actions as the run progresses.
#pragma once

#include <cstddef>

#include "cal/history.hpp"
#include "runtime/publish_log.hpp"

namespace cal::runtime {

class Recorder {
 public:
  using Cursor = PublishLog<Action>::Cursor;

  explicit Recorder(std::size_t capacity = 1 << 20) : log_(capacity) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Records (t, inv o.f(arg)). Wait-free. Drops the action (and counts the
  /// drop) if the log is full.
  void invoke(ThreadId t, Symbol object, Symbol method,
              Value arg = Value::unit()) {
    log_.append(Action::invoke(t, object, method, std::move(arg)));
  }
  /// Records (t, res o.f ▷ ret).
  void respond(ThreadId t, Symbol object, Symbol method,
               Value ret = Value::unit()) {
    log_.append(Action::respond(t, object, method, std::move(ret)));
  }

  /// The longest published prefix as a History. Safe to call concurrently
  /// with recording, but normally called after joining worker threads.
  [[nodiscard]] History snapshot() const {
    History out;
    log_.snapshot_prefix([&out](const Action& a) { out.append(a); });
    return out;
  }

  /// A streaming reader over the published prefix; poll it (directly, or
  /// via engine::IncrementalChecker) to consume actions as they land.
  [[nodiscard]] Cursor cursor() const { return log_.cursor(); }

  [[nodiscard]] std::size_t size() const noexcept { return log_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return log_.capacity();
  }
  [[nodiscard]] std::size_t dropped() const noexcept { return log_.dropped(); }

  void reset() { log_.reset(); }

 private:
  PublishLog<Action> log_;
};

/// RAII pair: records the invocation on construction and the response when
/// `finish(ret)` is called (or a unit response on destruction if not).
class RecordedCall {
 public:
  RecordedCall(Recorder& recorder, ThreadId t, Symbol object, Symbol method,
               Value arg = Value::unit())
      : recorder_(recorder), tid_(t), object_(object), method_(method) {
    recorder_.invoke(tid_, object_, method_, std::move(arg));
  }

  ~RecordedCall() {
    if (!finished_) recorder_.respond(tid_, object_, method_);
  }

  RecordedCall(const RecordedCall&) = delete;
  RecordedCall& operator=(const RecordedCall&) = delete;

  void finish(Value ret) {
    recorder_.respond(tid_, object_, method_, std::move(ret));
    finished_ = true;
  }

 private:
  Recorder& recorder_;
  ThreadId tid_;
  Symbol object_;
  Symbol method_;
  bool finished_ = false;
};

}  // namespace cal::runtime
