#include "runtime/thread_registry.hpp"

#include <stdexcept>

namespace cal::runtime {

ThreadRegistry& ThreadRegistry::instance() {
  static ThreadRegistry* registry = new ThreadRegistry();  // leaked singleton
  return *registry;
}

ThreadId ThreadRegistry::acquire() {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < in_use_.size(); ++i) {
    if (!in_use_[i]) {
      in_use_[i] = true;
      if (i + 1 > high_water_) high_water_ = i + 1;
      return static_cast<ThreadId>(i);
    }
  }
  throw std::runtime_error("ThreadRegistry: more than kMaxThreads live ids");
}

void ThreadRegistry::release(ThreadId id) noexcept {
  std::lock_guard lock(mu_);
  if (id < in_use_.size()) in_use_[id] = false;
}

std::size_t ThreadRegistry::high_water() const noexcept {
  std::lock_guard lock(mu_);
  return high_water_;
}

}  // namespace cal::runtime
