// A wait-free claim/publish slot log, shared by Recorder and TraceLog.
//
// Both runtime logs — the action recorder and the auxiliary trace variable
// 𝒯 — need the same primitive: many producer threads append items into a
// single global order with no locks, while observers read consistent
// prefixes. The protocol:
//
//   * a producer claims a slot with one atomic fetch_add on `next_`
//     (wait-free), writes the item, then *publishes* it with a release
//     store on the slot's ready flag;
//   * appends past capacity are dropped and counted (`dropped()`), so the
//     producer path never blocks and every lost item is accounted for:
//     claimed + dropped == total append attempts, and once producers have
//     quiesced size() + dropped() == total appends;
//   * readers use acquire loads on the ready flags and stop at the first
//     unpublished slot, so they only ever observe a gap-free prefix of the
//     claimed order (`snapshot_prefix`, or incrementally via `Cursor`).
//
// Overflow interaction of size()/snapshot: `next_` keeps counting past
// capacity (each overshoot is one drop); size() clamps it to capacity, and
// the published prefix is always a prefix of the first `capacity` claimed
// slots. `next_` would need 2^64 appends to wrap — not reachable.
//
// The Cursor is the streaming counterpart of snapshot_prefix: it remembers
// how far it has read and hands out only newly published items, which is
// what lets the incremental checker consume a live run window-by-window
// instead of re-reading the whole log.
//
// Ordering audit (weak-memory pass): the claim fetch_add can stay relaxed
// because it synchronizes nothing — it only hands out a unique index, and
// slot i is written exclusively by its claimant until a quiesced reset.
// All cross-thread data movement is gated by the per-slot ready flag's
// release/acquire pair, and no correctness property rests on a thread's
// *own* store becoming visible before one of its later loads — the
// store→load reordering TSO permits (the EBR pin() needed a fence for
// precisely that; see runtime/reclaim/ebr.cpp). size()'s acquire on next_ only
// tightens the prefix bound readers start from; staleness there delays,
// never corrupts, a poll.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace cal::runtime {

template <typename T>
class PublishLog {
 public:
  explicit PublishLog(std::size_t capacity) : slots_(capacity) {}

  PublishLog(const PublishLog&) = delete;
  PublishLog& operator=(const PublishLog&) = delete;

  /// Claims a slot and publishes `item` into it. Wait-free; drops (and
  /// counts) when the log is full.
  void append(T item) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots_[i].item = std::move(item);
    slots_[i].ready.store(true, std::memory_order_release);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Claimed slots, clamped to capacity. An upper bound on the published
  /// prefix while producers are running; exact once they have quiesced.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t n = next_.load(std::memory_order_acquire);
    return n < slots_.size() ? n : slots_.size();
  }

  /// Appends dropped because the log was full.
  [[nodiscard]] std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Copies the longest published prefix into `sink(item)`, in order.
  /// Safe concurrently with producers: stops at the first unpublished slot.
  template <typename Sink>
  void snapshot_prefix(Sink&& sink) const {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      if (!slots_[i].ready.load(std::memory_order_acquire)) break;
      sink(slots_[i].item);
    }
  }

  /// Not thread-safe against concurrent producers (callers quiesce first).
  void reset() {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) {
      slots_[i].ready.store(false, std::memory_order_relaxed);
    }
    dropped_.store(0, std::memory_order_relaxed);
    next_.store(0, std::memory_order_release);
  }

  /// An incremental reader: each poll() hands out the items published since
  /// the previous poll, never re-reading or skipping a slot. One cursor is
  /// single-reader; independent cursors are independent.
  class Cursor {
   public:
    Cursor() = default;
    explicit Cursor(const PublishLog& log) : log_(&log) {}

    /// Feeds every newly published item to `sink(item)` (at most `max`
    /// items; 0 = unbounded) and returns how many were consumed.
    template <typename Sink>
    std::size_t poll(Sink&& sink, std::size_t max = 0) {
      if (log_ == nullptr) return 0;
      std::size_t consumed = 0;
      const std::size_t n = log_->size();
      while (pos_ < n && (max == 0 || consumed < max)) {
        if (!log_->slots_[pos_].ready.load(std::memory_order_acquire)) break;
        sink(log_->slots_[pos_].item);
        ++pos_;
        ++consumed;
      }
      return consumed;
    }

    /// Slots consumed so far (== the next slot index to read).
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }

    /// True once the log is full *and* every slot has been consumed — no
    /// further item can ever appear.
    [[nodiscard]] bool at_capacity() const noexcept {
      return log_ != nullptr && pos_ == log_->capacity();
    }

   private:
    const PublishLog* log_ = nullptr;
    std::size_t pos_ = 0;
  };

  [[nodiscard]] Cursor cursor() const { return Cursor(*this); }

 private:
  struct Slot {
    T item;
    std::atomic<bool> ready{false};
  };

  std::vector<Slot> slots_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> dropped_{0};
};

}  // namespace cal::runtime
