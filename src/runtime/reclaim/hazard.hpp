// HpReclaimer — hazard pointers (Michael, "Hazard Pointers: Safe Memory
// Reclamation for Lock-Free Objects", see PAPERS.md).
//
// Each thread owns kSlots hazard slots, used round-robin by protect():
//
//   1. load the cell
//   2. publish the loaded block address into the next slot (seq_cst)
//   3. re-load the cell; if unchanged the protection is established —
//      any thread that unlinks the block *after* step 3 must scan the
//      slots after its retire, and the publish is ordered before its scan
//      (the seq_cst store/scan pairing); otherwise retry from 1.
//
// The slot budget is calibrated to the annotated corpus: the deepest user
// is the MS-queue dequeue with four live protections per attempt (head,
// tail, head->next, and the head recheck), so round-robin reuse never
// evicts a protection that is still load-bearing.
//
// retire() appends to a per-thread list; past kScanThreshold the thread
// snapshots every slot and frees exactly the unprotected blocks. Blocks
// retired through retire_grace() instead go through an internal
// EpochDomain whose pin/unpin ride on enter/exit — the escape hatch for
// blocks handed across threads outside any protect window (exchanger
// offers, sync-queue nodes).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "runtime/reclaim/ebr.hpp"
#include "runtime/reclaim/reclaimer.hpp"

namespace cal::runtime {

class HpReclaimer final : public Reclaimer {
 public:
  static constexpr std::size_t kMaxThreads = ThreadRegistry::kMaxThreads;
  static constexpr std::size_t kSlots = 4;
  /// Retired-list length that triggers a scan.
  static constexpr std::size_t kScanThreshold = 64;

  HpReclaimer() = default;
  ~HpReclaimer() override;

  HpReclaimer(const HpReclaimer&) = delete;
  HpReclaimer& operator=(const HpReclaimer&) = delete;

  [[nodiscard]] ReclaimPolicy policy() const noexcept override {
    return ReclaimPolicy::kHp;
  }

  void enter(ThreadId t) noexcept override;
  void exit(ThreadId t) noexcept override;

  Word protect(ThreadId t, const std::atomic<Word>* cell,
               std::memory_order order) noexcept override;
  void release(ThreadId t) noexcept override;

  bool cas(ThreadId /*t*/, std::atomic<Word>* cell, Word expected,
           Word desired, std::memory_order success,
           std::memory_order failure) noexcept override {
    return cell->compare_exchange_strong(expected, desired, success, failure);
  }

  [[nodiscard]] Word alloc(ThreadId /*t*/, Word cells) override {
    return new_block(cells);
  }
  void dealloc(ThreadId /*t*/, Word block, Word /*cells*/) noexcept override {
    delete_block(block);
  }

  void retire(ThreadId t, Word block, Word cells) override;
  void retire_grace(ThreadId t, Word block, Word cells) override;

  [[nodiscard]] ReclaimStats stats() const noexcept override;

 private:
  struct alignas(64) Slots {
    std::atomic<Word> hp[kSlots] = {};
    std::size_t next = 0;  // owning thread only
  };
  struct alignas(64) Shard {
    std::vector<Word> list;  // owning thread only
    std::atomic<std::size_t> size{0};
  };

  void scan(ThreadId t);

  Slots slots_[kMaxThreads];
  Shard shards_[kMaxThreads];
  EpochDomain grace_;  // backs retire_grace; pinned via enter/exit
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::size_t> reclaimed_{0};
};

}  // namespace cal::runtime
