#include "runtime/reclaim/tagged.hpp"

#include <cassert>

namespace cal::runtime {

TaggedReclaimer::~TaggedReclaimer() {
  // Type-stability ends with the reclaimer: drain every free bin.
  for (Bins& bins : bins_) {
    for (FreeBin& bin : bins.by_size) {
      for (Word block : bin.blocks) delete_block(block);
      bin.blocks.clear();
    }
  }
}

void TaggedReclaimer::enter(ThreadId t) noexcept {
  assert(t < kMaxThreads);
  grace_.pin(t);
}

void TaggedReclaimer::exit(ThreadId t) noexcept {
  release(t);
  grace_.unpin(t);
}

auto TaggedReclaimer::protect(ThreadId t, const std::atomic<Word>* cell,
                              std::memory_order order) noexcept -> Word {
  assert(t < kMaxThreads);
  const Word raw = cell->load(order);
  Records& records = records_[t];
  // First load wins: a re-protect of the same cell returns the fresh
  // stripped value but keeps the original record. Refreshing would be
  // unsound — a dereference made between the first protect and the
  // recheck (the MS-queue's next read) belongs to the original
  // generation, and a refreshed record would let the final CAS succeed
  // against a newer one, installing that stale dereference's result.
  for (std::size_t i = 0; i < records.count; ++i) {
    if (records.rec[i].cell == cell) return strip(raw);
  }
  if (records.count < kMaxRecords) {
    records.rec[records.count++] = Record{cell, raw};
  }
  // On overflow the record is dropped; the subsequent cas() falls back to
  // the raw compare, which fails against a tagged cell and retries — safe,
  // never unsound. The corpus holds at most 4 records.
  return strip(raw);
}

void TaggedReclaimer::release(ThreadId t) noexcept {
  assert(t < kMaxThreads);
  records_[t].count = 0;
}

bool TaggedReclaimer::validate(ThreadId t,
                               const std::atomic<Word>* cell) const noexcept {
  assert(t < kMaxThreads);
  const Records& records = records_[t];
  for (std::size_t i = 0; i < records.count; ++i) {
    if (records.rec[i].cell != cell) continue;
    // Raw (tag-widened) compare: a recycled same-address generation fails
    // here even though a stripped compare would pass.
    return cell->load(std::memory_order_seq_cst) == records.rec[i].raw;
  }
  return true;  // never protected: nothing to validate against
}

bool TaggedReclaimer::cas(ThreadId t, std::atomic<Word>* cell, Word expected,
                          Word desired, std::memory_order success,
                          std::memory_order failure) noexcept {
  assert(t < kMaxThreads);
  Records& records = records_[t];
  for (std::size_t i = 0; i < records.count; ++i) {
    if (records.rec[i].cell != cell) continue;
    const std::uint64_t raw = static_cast<std::uint64_t>(records.rec[i].raw);
    if (strip(records.rec[i].raw) != expected) break;  // stale record
    // Widened compare: address and tag. Install the bumped tag beside the
    // desired address so any protect record taken before this CAS goes
    // stale on the tag, not just the address.
    Word exp = records.rec[i].raw;
    const Word des = static_cast<Word>(
        (static_cast<std::uint64_t>(desired) & kValueMask) | bump_tag(raw));
    const bool ok = cell->compare_exchange_strong(exp, des, success, failure);
    if (ok) records.rec[i].raw = des;
    return ok;
  }
  // No protect record: a non-protocol cell (exchanger g/hole), compared
  // raw. Protocol cells reached here (dropped record) fail and retry.
  Word exp = expected;
  return cell->compare_exchange_strong(exp, desired, success, failure);
}

auto TaggedReclaimer::alloc(ThreadId t, Word cells) -> Word {
  assert(t < kMaxThreads);
  Bins& bins = bins_[t];
  for (FreeBin& bin : bins.by_size) {
    if (bin.cells != cells || bin.blocks.empty()) continue;
    // FIFO reuse maximizes the window in which a stale reader can meet a
    // recycled block — the adversarial choice the mutants rely on.
    const Word block = bin.blocks.front();
    bin.blocks.erase(bin.blocks.begin());
    bins.size.fetch_sub(1, std::memory_order_relaxed);
    live_.fetch_sub(1, std::memory_order_relaxed);
    reclaimed_.fetch_add(1, std::memory_order_relaxed);
    auto* base = reinterpret_cast<std::atomic<Word>*>(block);
    for (Word i = 0; i < cells; ++i) {
      // Zero the value bits, keep the generation tag: the concept's
      // "fresh zeroed block" modulo the tag discipline documented above.
      const std::uint64_t old =
          static_cast<std::uint64_t>(base[i].load(std::memory_order_relaxed));
      base[i].store(static_cast<Word>(old & ~kValueMask),
                    std::memory_order_relaxed);
    }
    return block;
  }
  return new_block(cells);
}

void TaggedReclaimer::dealloc(ThreadId t, Word block, Word cells) noexcept {
  // Never published, but keep type-stability uniform: free-list it.
  assert(t < kMaxThreads);
  Bins& bins = bins_[t];
  for (FreeBin& bin : bins.by_size) {
    if (bin.cells != cells) continue;
    bin.blocks.push_back(block);
    bins.size.fetch_add(1, std::memory_order_relaxed);
    live_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  bins.by_size.push_back(FreeBin{cells, {block}});
  bins.size.fetch_add(1, std::memory_order_relaxed);
  live_.fetch_add(1, std::memory_order_relaxed);
}

void TaggedReclaimer::retire(ThreadId t, Word block, Word cells) {
  // Immediate, type-stable reuse: the tag is the ABA defense, so there is
  // no deferral — this is the whole point of the backend.
  dealloc(t, block, cells);
  const std::size_t live = live_.load(std::memory_order_relaxed);
  std::size_t hw = high_water_.load(std::memory_order_relaxed);
  while (live > hw && !high_water_.compare_exchange_weak(
                          hw, live, std::memory_order_relaxed)) {
  }
}

void TaggedReclaimer::retire_grace(ThreadId t, Word block, Word /*cells*/) {
  grace_.retire(t, reinterpret_cast<void*>(block),
                [](void* p) { delete_block(reinterpret_cast<Word>(p)); });
}

ReclaimStats TaggedReclaimer::stats() const noexcept {
  std::size_t pending = grace_.retired_count();
  for (const Bins& bins : bins_) {
    pending += bins.size.load(std::memory_order_relaxed);
  }
  return ReclaimStats{
      pending,
      reclaimed_.load(std::memory_order_relaxed) + grace_.reclaimed_total(),
      high_water_.load(std::memory_order_relaxed) +
          grace_.retired_high_water()};
}

}  // namespace cal::runtime
