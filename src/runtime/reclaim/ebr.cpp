#include "runtime/reclaim/ebr.hpp"

#include <cassert>

namespace cal::runtime {

EpochDomain::~EpochDomain() {
  // No thread may be pinned at destruction; everything retired is safe.
  for (RetireShard& shard : shards_) {
    for (const Retired& r : shard.list) {
      r.deleter(r.ptr);
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.list.clear();
  }
}

void EpochDomain::pin(ThreadId t) noexcept {
  assert(t < kMaxThreads);
  slots_[t].local.store(global_epoch_.load(std::memory_order_acquire),
                        std::memory_order_release);
  // The announcement must be ordered before every shared load of the
  // pinned section, and no store annotation gives that: even a seq_cst
  // store may still be draining when a later acquire load is satisfied —
  // the TSO store→load reordering, i.e. exactly the store-buffering
  // litmus (tests/sched/test_sim_memory.cpp). This used to be a plain
  // seq_cst store; with it, try_advance could scan the slots before the
  // announcement surfaced and reclaim a node this thread was about to
  // read. The fence pairs with the one in try_advance: either the
  // advancer's scan observes this announcement, or this section's loads
  // observe everything unlinked before the advancer's fence.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // A stale epoch read above is safe: announcing an *older* epoch only
  // blocks the advance (the straggler check), never unblocks it.
}

void EpochDomain::unpin(ThreadId t) noexcept {
  slots_[t].local.store(0, std::memory_order_release);
}

bool EpochDomain::try_advance() noexcept {
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  // Pairs with the fence in pin(): makes every announcement that preceded
  // a reader's fence visible to the scan below.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  for (const Slot& slot : slots_) {
    const std::uint64_t local = slot.local.load(std::memory_order_acquire);
    if (local != 0 && local != e) return false;  // straggler in an old epoch
  }
  std::uint64_t expected = e;
  return global_epoch_.compare_exchange_strong(expected, e + 1,
                                               std::memory_order_acq_rel);
}

void EpochDomain::free_safe(RetireShard& shard) {
  const std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
  std::size_t kept = 0;
  for (Retired& r : shard.list) {
    // Safe once two advances have happened since retirement: every thread
    // pinned at retirement time has since unpinned or re-pinned.
    if (r.epoch + 2 <= e) {
      r.deleter(r.ptr);
      live_.fetch_sub(1, std::memory_order_relaxed);
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      shard.list[kept++] = r;
    }
  }
  shard.list.resize(kept);
  shard.size.store(kept, std::memory_order_relaxed);
}

void EpochDomain::retire(ThreadId t, void* p, void (*deleter)(void*)) {
  assert(t < kMaxThreads);
  RetireShard& shard = shards_[t];
  shard.list.push_back(
      Retired{p, deleter, global_epoch_.load(std::memory_order_acquire)});
  shard.size.store(shard.list.size(), std::memory_order_relaxed);
  const std::size_t live = live_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t hw = high_water_.load(std::memory_order_relaxed);
  while (live > hw && !high_water_.compare_exchange_weak(
                          hw, live, std::memory_order_relaxed)) {
  }
  if (shard.list.size() >= kCollectThreshold) collect(t);
}

void EpochDomain::collect(ThreadId t) {
  assert(t < kMaxThreads);
  try_advance();
  free_safe(shards_[t]);
}

std::size_t EpochDomain::retired_count() const noexcept {
  std::size_t total = 0;
  for (const RetireShard& shard : shards_) {
    total += shard.size.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace cal::runtime
