// EbrReclaimer — the epoch-based backend of the Reclaimer interface,
// wrapping the pre-existing EpochDomain (ebr.hpp). This is the default
// policy: protect is a plain load (grace periods, not per-pointer
// protection, keep retired blocks alive), so bodies annotated with the
// protect protocol compile to exactly the code they ran before the
// reclamation axis existed.
#pragma once

#include <memory>

#include "runtime/reclaim/ebr.hpp"
#include "runtime/reclaim/reclaimer.hpp"

namespace cal::runtime {

class EbrReclaimer final : public Reclaimer {
 public:
  /// Owns a private domain.
  EbrReclaimer() : owned_(std::make_unique<EpochDomain>()), ebr_(owned_.get()) {}
  /// Shares an external domain (several objects in one grace universe).
  explicit EbrReclaimer(EpochDomain& ebr) noexcept : ebr_(&ebr) {}

  [[nodiscard]] ReclaimPolicy policy() const noexcept override {
    return ReclaimPolicy::kEbr;
  }

  void enter(ThreadId t) noexcept override { ebr_->pin(t); }
  void exit(ThreadId t) noexcept override { ebr_->unpin(t); }

  Word protect(ThreadId t, const std::atomic<Word>* cell,
               std::memory_order order) noexcept override {
    (void)t;
    return cell->load(order);
  }

  void release(ThreadId /*t*/) noexcept override {}

  bool cas(ThreadId /*t*/, std::atomic<Word>* cell, Word expected,
           Word desired, std::memory_order success,
           std::memory_order failure) noexcept override {
    return cell->compare_exchange_strong(expected, desired, success, failure);
  }

  [[nodiscard]] Word alloc(ThreadId /*t*/, Word cells) override {
    return new_block(cells);
  }

  void dealloc(ThreadId /*t*/, Word block, Word /*cells*/) noexcept override {
    delete_block(block);
  }

  void retire(ThreadId t, Word block, Word /*cells*/) override {
    ebr_->retire(t, reinterpret_cast<void*>(block),
                 [](void* p) { delete_block(reinterpret_cast<Word>(p)); });
  }

  void retire_grace(ThreadId t, Word block, Word cells) override {
    retire(t, block, cells);  // EBR retirement *is* the grace period
  }

  [[nodiscard]] ReclaimStats stats() const noexcept override {
    return ReclaimStats{ebr_->retired_count(), ebr_->reclaimed_total(),
                        ebr_->retired_high_water()};
  }

  [[nodiscard]] EpochDomain& domain() noexcept { return *ebr_; }

 private:
  std::unique_ptr<EpochDomain> owned_;  // null when wrapping external
  EpochDomain* ebr_;
};

}  // namespace cal::runtime
