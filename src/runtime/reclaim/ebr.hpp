// Epoch-based memory reclamation (EBR).
//
// The paper's objects are written for a garbage-collected runtime
// (java.util.concurrent): an exchanger Offer or stack Cell may still be read
// by a racing thread after its owner's method returned, so nothing can be
// freed eagerly. This domain provides the GC substitute: readers pin the
// current epoch for the duration of a method, retired nodes are stamped with
// the epoch at retirement, and a node is reclaimed only after the global
// epoch has advanced twice past its stamp — at which point no pinned reader
// can still hold a reference. Avoiding reuse until then also eliminates the
// classic CAS ABA hazard on the Treiber stack's top pointer.
//
// All operations are keyed by the caller's dense ThreadId (ThreadRegistry);
// ids above kMaxThreads are rejected at pin time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/thread_registry.hpp"

namespace cal::runtime {

class EpochDomain {
 public:
  static constexpr std::size_t kMaxThreads = ThreadRegistry::kMaxThreads;
  /// Retired-list length that triggers an advance-and-collect attempt.
  static constexpr std::size_t kCollectThreshold = 64;

  EpochDomain() = default;
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Marks thread t as active in the current epoch. Must be balanced with
  /// unpin(); use Guard for RAII.
  void pin(ThreadId t) noexcept;
  void unpin(ThreadId t) noexcept;

  /// Hands `p` to the domain; `deleter(p)` runs once it is provably
  /// unreachable. Call while pinned.
  void retire(ThreadId t, void* p, void (*deleter)(void*));

  /// Convenience for `delete static_cast<T*>(p)`.
  template <typename T>
  void retire(ThreadId t, T* p) {
    retire(t, p, [](void* q) { delete static_cast<T*>(q); });
  }

  /// Attempts one epoch advance and frees whatever became safe for `t`.
  void collect(ThreadId t);

  [[nodiscard]] std::uint64_t global_epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }
  /// Nodes retired and not yet freed (approximate; for tests/metrics).
  [[nodiscard]] std::size_t retired_count() const noexcept;
  /// Nodes whose deleter has run since construction.
  [[nodiscard]] std::size_t reclaimed_total() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  /// Largest retired-and-pending population ever observed.
  [[nodiscard]] std::size_t retired_high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

  class Guard {
   public:
    Guard(EpochDomain& domain, ThreadId t) noexcept : domain_(domain), t_(t) {
      domain_.pin(t_);
    }
    ~Guard() { domain_.unpin(t_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochDomain& domain_;
    ThreadId t_;
  };

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  struct alignas(64) Slot {
    /// 0 = quiescent; otherwise the epoch the thread pinned.
    std::atomic<std::uint64_t> local{0};
  };

  struct alignas(64) RetireShard {
    std::vector<Retired> list;  // accessed only by the owning thread
    std::atomic<std::size_t> size{0};
  };

  bool try_advance() noexcept;
  void free_safe(RetireShard& shard);

  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::size_t> live_{0};       // retired, deleter not yet run
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::size_t> reclaimed_{0};
  Slot slots_[kMaxThreads];
  RetireShard shards_[kMaxThreads];
};

}  // namespace cal::runtime
