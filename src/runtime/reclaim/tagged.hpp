// TaggedReclaimer — counted/tagged pointers (the classic IBM ABA defense).
//
// A per-cell generation tag occupies bits 48..63 of the cell word, beside
// the 48-bit block address (x86-64 user pointers fit). protect() records
// the full raw word it loaded in a per-thread record; cas() widens the
// comparison to that raw word — address *and* tag — and installs the
// desired address with the tag bumped. A stale CAS whose address happens
// to match a recycled block therefore fails on the tag: reuse is
// immediate, the generation count is what defeats ABA.
//
// Soundness conditions this backend imposes on the Env bodies:
//
//   * Tags live only in *protocol cells* — cells that are CASed under a
//     protect record (stack top, queue head/tail/next-link). Data cells
//     and cells CASed without protect (exchanger g/hole) stay raw.
//   * Storage is type-stable: retired blocks go to per-thread size-binned
//     free lists and are only ever reused as blocks of the same cell
//     count, never returned to the OS before the reclaimer dies. Stale
//     readers may observe recycled cell *values* (their subsequent tagged
//     CAS fails), but never a torn or unmapped word.
//   * Recycled blocks are re-zeroed in their value bits only; tag bits
//     survive reuse, which is exactly what keeps a cell's generation
//     monotone across block lifetimes.
//   * Value words written through store_private are confined to 48 bits
//     (tag preservation masks the top 16); all corpus payloads are small
//     non-negative integers.
//
// tag_bits is configurable (default 16): the tag-width-truncation mutant
// of the ABA corpus is this backend with tag_bits = 0, where the widened
// compare degenerates to the plain one.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/reclaim/ebr.hpp"
#include "runtime/reclaim/reclaimer.hpp"

namespace cal::runtime {

class TaggedReclaimer final : public Reclaimer {
 public:
  static constexpr std::size_t kMaxThreads = ThreadRegistry::kMaxThreads;
  static constexpr unsigned kTagShift = 48;
  static constexpr std::uint64_t kValueMask = (1ull << kTagShift) - 1;
  /// Protect records live per thread; the deepest corpus body holds 4.
  static constexpr std::size_t kMaxRecords = 16;

  explicit TaggedReclaimer(unsigned tag_bits = 16) noexcept
      : tag_mask_((tag_bits == 0 ? 0ull : ((1ull << tag_bits) - 1ull))) {}
  ~TaggedReclaimer() override;

  TaggedReclaimer(const TaggedReclaimer&) = delete;
  TaggedReclaimer& operator=(const TaggedReclaimer&) = delete;

  [[nodiscard]] ReclaimPolicy policy() const noexcept override {
    return ReclaimPolicy::kTagged;
  }

  void enter(ThreadId t) noexcept override;
  void exit(ThreadId t) noexcept override;

  Word protect(ThreadId t, const std::atomic<Word>* cell,
               std::memory_order order) noexcept override;
  void release(ThreadId t) noexcept override;
  [[nodiscard]] bool validate(ThreadId t, const std::atomic<Word>* cell)
      const noexcept override;

  bool cas(ThreadId t, std::atomic<Word>* cell, Word expected, Word desired,
           std::memory_order success,
           std::memory_order failure) noexcept override;

  [[nodiscard]] Word alloc(ThreadId t, Word cells) override;
  void dealloc(ThreadId t, Word block, Word cells) noexcept override;
  void retire(ThreadId t, Word block, Word cells) override;
  void retire_grace(ThreadId t, Word block, Word cells) override;

  [[nodiscard]] Word strip(Word raw) const noexcept override {
    return static_cast<Word>(static_cast<std::uint64_t>(raw) & kValueMask);
  }

  /// Writes `v` into a (possibly recycled) cell, preserving its tag bits.
  void store_preserving_tag(std::atomic<Word>* cell, Word v) const noexcept {
    const std::uint64_t old = static_cast<std::uint64_t>(
        cell->load(std::memory_order_relaxed));
    cell->store(static_cast<Word>((old & ~kValueMask) |
                                  (static_cast<std::uint64_t>(v) & kValueMask)),
                std::memory_order_relaxed);
  }

  [[nodiscard]] ReclaimStats stats() const noexcept override;

 private:
  struct Record {
    const std::atomic<Word>* cell = nullptr;
    Word raw = 0;
  };
  struct alignas(64) Records {
    Record rec[kMaxRecords];
    std::size_t count = 0;  // owning thread only
  };
  struct FreeBin {
    Word cells = 0;
    std::vector<Word> blocks;
  };
  struct alignas(64) Bins {
    std::vector<FreeBin> by_size;  // owning thread only
    std::atomic<std::size_t> size{0};
  };

  [[nodiscard]] std::uint64_t bump_tag(std::uint64_t raw) const noexcept {
    const std::uint64_t tag = (raw >> kTagShift) & 0xFFFFull;
    // Truncate the increment to tag_bits (the mutant axis): with the full
    // 16 bits this wraps at 65536 generations, with 0 bits it never moves.
    const std::uint64_t next = (tag + 1) & tag_mask_;
    return next << kTagShift;
  }

  Records records_[kMaxThreads];
  Bins bins_[kMaxThreads];
  EpochDomain grace_;  // backs retire_grace; pinned via enter/exit
  std::uint64_t tag_mask_;
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::size_t> reclaimed_{0};
};

}  // namespace cal::runtime
