#include "runtime/reclaim/hazard.hpp"

#include <algorithm>
#include <cassert>

namespace cal::runtime {

HpReclaimer::~HpReclaimer() {
  // No thread may hold a protection at destruction.
  for (Shard& shard : shards_) {
    for (Word block : shard.list) {
      delete_block(block);
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.list.clear();
  }
}

void HpReclaimer::enter(ThreadId t) noexcept {
  assert(t < kMaxThreads);
  grace_.pin(t);
}

void HpReclaimer::exit(ThreadId t) noexcept {
  release(t);
  grace_.unpin(t);
}

auto HpReclaimer::protect(ThreadId t, const std::atomic<Word>* cell,
                          std::memory_order order) noexcept -> Word {
  assert(t < kMaxThreads);
  Slots& slots = slots_[t];
  std::atomic<Word>& slot = slots.hp[slots.next];
  slots.next = (slots.next + 1) % kSlots;
  Word raw = cell->load(order);
  for (;;) {
    if (raw == 0) {
      slot.store(0, std::memory_order_release);
      return 0;
    }
    // Publish, then validate: the seq_cst store is ordered before the
    // re-load, and pairs with the seq_cst scan loads in scan() — either
    // the scanner sees this protection, or this validate sees the
    // unlinking store and retries.
    slot.store(raw, std::memory_order_seq_cst);
    const Word again = cell->load(std::memory_order_seq_cst);
    if (again == raw) return raw;
    raw = again;
  }
}

void HpReclaimer::release(ThreadId t) noexcept {
  assert(t < kMaxThreads);
  for (std::atomic<Word>& slot : slots_[t].hp) {
    slot.store(0, std::memory_order_release);
  }
  slots_[t].next = 0;
}

void HpReclaimer::retire(ThreadId t, Word block, Word /*cells*/) {
  assert(t < kMaxThreads);
  Shard& shard = shards_[t];
  shard.list.push_back(block);
  shard.size.store(shard.list.size(), std::memory_order_relaxed);
  const std::size_t live = live_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t hw = high_water_.load(std::memory_order_relaxed);
  while (live > hw && !high_water_.compare_exchange_weak(
                          hw, live, std::memory_order_relaxed)) {
  }
  if (shard.list.size() >= kScanThreshold) scan(t);
}

void HpReclaimer::retire_grace(ThreadId t, Word block, Word /*cells*/) {
  // Grace-period blocks live in the internal epoch domain, which keeps
  // its own pending/reclaimed/high-water counters (merged in stats()).
  grace_.retire(t, reinterpret_cast<void*>(block),
                [](void* p) { delete_block(reinterpret_cast<Word>(p)); });
}

void HpReclaimer::scan(ThreadId t) {
  // Snapshot every published protection. Pairs with the seq_cst publish
  // in protect(): a protection established before this scan is visible.
  std::vector<Word> hazards;
  hazards.reserve(kMaxThreads * kSlots);
  for (const Slots& slots : slots_) {
    for (const std::atomic<Word>& slot : slots.hp) {
      const Word h = slot.load(std::memory_order_seq_cst);
      if (h != 0) hazards.push_back(h);
    }
  }
  std::sort(hazards.begin(), hazards.end());

  Shard& shard = shards_[t];
  std::size_t kept = 0;
  for (Word block : shard.list) {
    if (std::binary_search(hazards.begin(), hazards.end(), block)) {
      shard.list[kept++] = block;
    } else {
      delete_block(block);
      live_.fetch_sub(1, std::memory_order_relaxed);
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  shard.list.resize(kept);
  shard.size.store(kept, std::memory_order_relaxed);
}

ReclaimStats HpReclaimer::stats() const noexcept {
  std::size_t pending = grace_.retired_count();
  for (const Shard& shard : shards_) {
    pending += shard.size.load(std::memory_order_relaxed);
  }
  return ReclaimStats{
      pending,
      reclaimed_.load(std::memory_order_relaxed) + grace_.reclaimed_total(),
      high_water_.load(std::memory_order_relaxed) +
          grace_.retired_high_water()};
}

}  // namespace cal::runtime
