// The pluggable reclamation interface — the policy axis behind Env's
// protect/release/retire operations (objects/env.hpp).
//
// The paper's objects assume a garbage collector; each backend here is one
// GC substitute with its own safety contract:
//
//   * EbrReclaimer (ebr_reclaimer.hpp) — epoch-based grace periods. protect
//     degenerates to a plain load: safety comes from enter/exit bracketing
//     every operation (pin/unpin), so a retired block outlives every
//     operation that could have loaded it.
//   * HpReclaimer (hazard.hpp) — Michael-style hazard pointers. protect
//     publishes the loaded block in one of kSlots per-thread slots with a
//     publish-then-validate loop; retire scans the slots and frees only
//     unprotected blocks. Bounded garbage, no global grace period.
//   * TaggedReclaimer (tagged.hpp) — counted/tagged pointers. A per-cell
//     generation tag is packed beside the 48-bit pointer; protect records
//     the full raw word, cas widens the comparison to include the tag and
//     bumps it on success. Retired blocks are reused immediately from
//     type-stable free lists — the tag, not deferral, defeats ABA.
//
// Contract split: `retire` requires the body to follow the full protect
// discipline on every path that dereferences the block (the annotated
// Treiber-stack and MS-queue cores do). `retire_grace` only requires
// enter/exit bracketing — every backend funnels it through an epoch
// domain — and is what bodies without a protect protocol (exchanger,
// sync-queue, priority-queue) must use.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "runtime/thread_registry.hpp"

namespace cal::runtime {

/// The cell word shared with objects::Word (std::int64_t): block addresses
/// are reinterpret_cast pointers to std::atomic<Word> arrays.
using ReclaimWord = std::int64_t;

/// Selects the backend; mirrored by WorldConfig::reclaim_policy on the
/// simulation side so the explorer can model each protocol.
enum class ReclaimPolicy : std::uint8_t { kEbr = 0, kHp = 1, kTagged = 2 };

[[nodiscard]] constexpr const char* reclaim_policy_name(
    ReclaimPolicy p) noexcept {
  switch (p) {
    case ReclaimPolicy::kEbr:
      return "ebr";
    case ReclaimPolicy::kHp:
      return "hp";
    case ReclaimPolicy::kTagged:
      return "tagged";
  }
  return "?";
}

struct ReclaimStats {
  /// Blocks handed to retire()/retire_grace() and not yet freed/recycled.
  std::size_t retired_pending = 0;
  /// Blocks freed or recycled since construction.
  std::size_t reclaimed_total = 0;
  /// Largest retired-and-pending population ever observed.
  std::size_t retired_high_water = 0;
};

class Reclaimer {
 public:
  using Word = ReclaimWord;

  virtual ~Reclaimer() = default;

  [[nodiscard]] virtual ReclaimPolicy policy() const noexcept = 0;

  /// Operation bracketing: every object operation that touches shared
  /// blocks runs between enter(t) and exit(t) (use Guard). exit also drops
  /// every protection t still holds.
  virtual void enter(ThreadId t) noexcept = 0;
  virtual void exit(ThreadId t) noexcept = 0;

  /// Loads *cell and protects the loaded block until release/exit.
  /// Returns the loaded word with tag bits stripped — always a plain
  /// block address the caller may dereference.
  virtual Word protect(ThreadId t, const std::atomic<Word>* cell,
                       std::memory_order order) noexcept = 0;

  /// Drops every protection t holds (keeps enter/exit bracketing).
  virtual void release(ThreadId t) noexcept = 0;

  /// Re-loads *cell and reports whether it still holds exactly what t's
  /// first protect of this cell observed — tag-widened, so a recycled
  /// same-address block fails. True under backends whose protect already
  /// pins the block (EBR grace, hazard slots): there the body's own
  /// stripped compare is sufficient and this is not an interference
  /// point.
  [[nodiscard]] virtual bool validate(
      ThreadId /*t*/, const std::atomic<Word>* /*cell*/) const noexcept {
    return true;
  }

  /// CAS on a protocol cell. `expected` is the stripped word a prior
  /// protect on this cell returned; the tagged backend widens the compare
  /// to the recorded raw word and installs a bumped tag on success.
  virtual bool cas(ThreadId t, std::atomic<Word>* cell, Word expected,
                   Word desired, std::memory_order success,
                   std::memory_order failure) noexcept = 0;

  /// Fresh zeroed block of `cells` atomic words (value bits zero; the
  /// tagged backend recycles type-stable storage and preserves tag bits).
  [[nodiscard]] virtual Word alloc(ThreadId t, Word cells) = 0;

  /// Eagerly frees a block that was never published.
  virtual void dealloc(ThreadId t, Word block, Word cells) noexcept = 0;

  /// Retires a published block whose readers follow the protect
  /// discipline. Freed (or recycled) once no protection covers it.
  virtual void retire(ThreadId t, Word block, Word cells) = 0;

  /// Retires a published block whose readers only guarantee enter/exit
  /// bracketing: freed after a full grace period under every backend.
  virtual void retire_grace(ThreadId t, Word block, Word cells) = 0;

  /// Strips tag bits from a raw cell word (identity except kTagged). For
  /// walking structures outside the Env (destructors).
  [[nodiscard]] virtual Word strip(Word raw) const noexcept { return raw; }

  [[nodiscard]] virtual ReclaimStats stats() const noexcept = 0;

  class Guard {
   public:
    Guard(Reclaimer& r, ThreadId t) noexcept : r_(r), t_(t) { r_.enter(t_); }
    ~Guard() { r_.exit(t_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Reclaimer& r_;
    ThreadId t_;
  };

 protected:
  static Word new_block(Word cells) {
    // Value-initialized: all cells zero, as the Env concept requires.
    return reinterpret_cast<Word>(
        new std::atomic<Word>[static_cast<std::size_t>(cells)]());
  }
  static void delete_block(Word block) noexcept {
    delete[] reinterpret_cast<std::atomic<Word>*>(block);
  }
};

}  // namespace cal::runtime
