#include "cal/history.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "cal/action.hpp"

namespace cal {

std::string Action::to_string() const {
  std::string out = "(t" + std::to_string(tid) + ", ";
  if (is_invoke()) {
    out += "inv " + object.str() + "." + method.str() + "(" +
           (payload.is_unit() ? "" : payload.to_string()) + ")";
  } else {
    out += "res " + object.str() + "." + method.str() + " > " +
           payload.to_string();
  }
  out += ")";
  return out;
}

std::string Operation::to_string() const {
  std::string out = "(t" + std::to_string(tid) + ", " + object.str() + "." +
                    method.str() + "(" +
                    (arg.is_unit() ? "" : arg.to_string()) + ") > ";
  out += ret ? ret->to_string() : "?pending?";
  out += ")";
  return out;
}

History History::project_thread(ThreadId t) const {
  History out;
  for (const Action& a : actions_) {
    if (a.tid == t) out.append(a);
  }
  return out;
}

History History::project_object(Symbol o) const {
  History out;
  for (const Action& a : actions_) {
    if (a.object == o) out.append(a);
  }
  return out;
}

bool History::sequential() const {
  bool expect_invoke = true;
  Symbol open_object;
  Symbol open_method;
  ThreadId open_tid = 0;
  for (const Action& a : actions_) {
    if (expect_invoke) {
      if (!a.is_invoke()) return false;
      open_object = a.object;
      open_method = a.method;
      open_tid = a.tid;
    } else {
      if (!a.is_respond() || a.object != open_object ||
          a.method != open_method || a.tid != open_tid) {
        return false;
      }
    }
    expect_invoke = !expect_invoke;
  }
  return true;
}

bool History::well_formed() const {
  // Per-thread state: whether an invocation is open and on what.
  std::unordered_map<ThreadId, std::optional<Action>> open;
  for (const Action& a : actions_) {
    auto& slot = open[a.tid];
    if (a.is_invoke()) {
      if (slot.has_value()) return false;  // nested invocation
      slot = a;
    } else {
      if (!slot.has_value() || slot->object != a.object ||
          slot->method != a.method) {
        return false;  // response without (matching) open invocation
      }
      slot.reset();
    }
  }
  return true;
}

bool History::complete() const {
  if (!well_formed()) return false;
  std::unordered_map<ThreadId, int> open;
  for (const Action& a : actions_) {
    open[a.tid] += a.is_invoke() ? 1 : -1;
  }
  return std::all_of(open.begin(), open.end(),
                     [](const auto& kv) { return kv.second == 0; });
}

std::vector<OpRecord> History::operations() const {
  std::vector<OpRecord> out;
  // Index into `out` of each thread's open operation.
  std::unordered_map<ThreadId, std::size_t> open;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const Action& a = actions_[i];
    if (a.is_invoke()) {
      open[a.tid] = out.size();
      out.push_back(OpRecord{
          Operation::pending(a.tid, a.object, a.method, a.payload), i,
          std::nullopt});
    } else {
      auto it = open.find(a.tid);
      if (it == open.end()) continue;  // ill-formed; callers check
      OpRecord& rec = out[it->second];
      rec.op.ret = a.payload;
      rec.res_index = i;
      open.erase(it);
    }
  }
  return out;
}

History History::drop_pending() const {
  // An invocation is pending iff its thread has no later matching response.
  std::vector<bool> keep(actions_.size(), true);
  std::unordered_map<ThreadId, std::size_t> open;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    const Action& a = actions_[i];
    if (a.is_invoke()) {
      open[a.tid] = i;
      keep[i] = false;  // provisionally pending
    } else if (auto it = open.find(a.tid); it != open.end()) {
      keep[it->second] = true;
      open.erase(it);
    }
  }
  History out;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (keep[i]) out.append(actions_[i]);
  }
  return out;
}

std::string History::to_string() const {
  std::string out;
  for (const Action& a : actions_) {
    out += a.to_string();
    out += "\n";
  }
  return out;
}

std::string History::render_ascii() const {
  // One column per action, one row per thread.
  std::map<ThreadId, std::string> rows;
  for (const Action& a : actions_) rows.emplace(a.tid, "");

  constexpr std::size_t kCell = 14;
  auto pad = [](std::string s) {
    if (s.size() < kCell) s += std::string(kCell - s.size(), ' ');
    return s;
  };

  std::unordered_map<ThreadId, bool> open;
  for (const Action& a : actions_) {
    for (auto& [tid, row] : rows) {
      if (tid == a.tid) {
        std::string label;
        if (a.is_invoke()) {
          label = "[" + a.method.str() + "(" +
                  (a.payload.is_unit() ? "" : a.payload.to_string()) + ")";
          open[tid] = true;
        } else {
          label = ">" + a.payload.to_string() + "]";
          open[tid] = false;
        }
        row += pad(label);
      } else {
        row += open[tid] ? pad(std::string(kCell, '-'))
                         : pad("");
      }
    }
  }

  std::ostringstream out;
  for (auto& [tid, row] : rows) {
    // Trim trailing whitespace for stable golden tests.
    std::size_t end = row.find_last_not_of(' ');
    out << "t" << tid << ": "
        << (end == std::string::npos ? "" : row.substr(0, end + 1)) << "\n";
  }
  return out.str();
}

HistoryBuilder& HistoryBuilder::call(ThreadId t, std::string_view object,
                                     std::string_view method, Value arg) {
  Symbol o{object};
  Symbol f{method};
  h_.invoke(t, o, f, std::move(arg));
  open_.push_back(Open{t, o, f});
  return *this;
}

HistoryBuilder& HistoryBuilder::ret(ThreadId t, Value value) {
  for (std::size_t i = open_.size(); i-- > 0;) {
    if (open_[i].tid == t) {
      h_.respond(t, open_[i].object, open_[i].method, std::move(value));
      open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
      return *this;
    }
  }
  // No open invocation: record a response on a null object; well_formed()
  // will reject the resulting history, which is what tests want to see.
  h_.respond(t, Symbol{}, Symbol{}, std::move(value));
  return *this;
}

HistoryBuilder& HistoryBuilder::op(ThreadId t, std::string_view object,
                                   std::string_view method, Value arg,
                                   Value ret_value) {
  call(t, object, method, std::move(arg));
  ret(t, std::move(ret_value));
  return *this;
}

}  // namespace cal
