// The agreement relation H ⊑CAL T (Def. 5 of the paper).
//
// A complete history H agrees with a CA-trace T iff there is a surjection π
// from H's operations onto trace positions such that (i) π preserves the
// real-time order ≺H and (ii) the operation set mapped to each position k is
// exactly T_k. Because two equal operations necessarily belong to the same
// thread (and are therefore ≺H-ordered), the order-preserving matching of
// history operations to trace occurrences is unique when it exists, so the
// decision procedure is a deterministic greedy pass — O(|T| · |ops|²).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/history.hpp"

namespace cal {

/// Diagnostic outcome of an agreement check.
struct AgreeResult {
  bool agrees = false;
  /// When !agrees: a human-readable reason (which position failed and why).
  std::string reason;
  /// When agrees: pi[i] is the (0-based) trace position of operation i
  /// of H.operations().
  std::vector<std::size_t> pi;

  explicit operator bool() const noexcept { return agrees; }
};

/// Decides H ⊑CAL T. `history` must be complete (well-formed, no pending
/// invocations); returns a non-agreeing result with a reason otherwise.
[[nodiscard]] AgreeResult agrees_with(const History& history,
                                      const CaTrace& trace);

/// Convenience overload on pre-extracted operation records (all completed).
[[nodiscard]] AgreeResult agrees_with(const std::vector<OpRecord>& ops,
                                      const CaTrace& trace);

}  // namespace cal
