#include "cal/view.hpp"

#include <algorithm>

namespace cal {

CaTrace total_apply(const ViewFunction& f, const CaTrace& t) {
  CaTrace out;
  for (const CaElement& e : t.elements()) {
    if (std::optional<CaTrace> image = f.apply(e)) {
      out.append(*image);
    } else {
      out.append(e);
    }
  }
  return out;
}

std::optional<CaTrace> RenameObjectView::apply(const CaElement& e) const {
  if (std::find(sources_.begin(), sources_.end(), e.object()) ==
      sources_.end()) {
    return std::nullopt;
  }
  std::vector<Operation> renamed = e.ops();
  for (Operation& op : renamed) op.object = target_;
  CaTrace out;
  out.append(CaElement(target_, std::move(renamed)));
  return out;
}

std::optional<CaTrace> ComposedView::apply(const CaElement& e) const {
  CaTrace t;
  t.append(e);
  CaTrace image = view(t);
  if (image.size() == 1 && image[0] == e) return std::nullopt;
  return image;
}

CaTrace ComposedView::view(const CaTrace& global) const {
  CaTrace current = global;
  for (const auto& child : children_) {
    current = total_apply(*child, current);
  }
  return total_apply(*own_, current);
}

}  // namespace cal
