// View functions F_o (§4 of the paper) — the mechanism that makes the
// verification *compositional*.
//
// A single global auxiliary variable 𝒯 records the CA-trace of the whole
// program. Each object o supplies a partial function F_o from CA-elements of
// its immediate subobjects to CA-traces containing only operations of o;
// its total extension F̂_o maps any other element to itself. The recursive
// composition 𝔽_o ≜ F̂_o ∘ (𝔽_o1 ∘ … ∘ 𝔽_on) (over the encapsulated objects
// o1…on) defines o's *view* 𝒯_o = 𝔽_o(𝒯) of the global trace. Clients of o
// reason purely about 𝒯_o, never about the subobjects' elements — e.g. the
// elimination stack sees an AR swap of (v, ∞) as push(v)·pop()▷v on itself
// and never sees the exchangers inside AR at all.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/symbol.hpp"

namespace cal {

/// The partial per-object rewriting function F_o.
class ViewFunction {
 public:
  virtual ~ViewFunction() = default;

  /// F_o(e): the trace this element denotes at o's level of abstraction, or
  /// std::nullopt where F_o is undefined (the total extension then keeps
  /// `e` unchanged). Note: nullopt ≠ empty trace — F_o(e) = ε *erases* e.
  [[nodiscard]] virtual std::optional<CaTrace> apply(
      const CaElement& e) const = 0;
};

/// F̂_o applied pointwise to a trace: elements where F_o is defined are
/// replaced by their image (possibly several elements, possibly none);
/// everything else passes through untouched.
[[nodiscard]] CaTrace total_apply(const ViewFunction& f, const CaTrace& t);

/// A view function defined by a plain callable.
class LambdaView final : public ViewFunction {
 public:
  using Fn = std::function<std::optional<CaTrace>(const CaElement&)>;
  explicit LambdaView(Fn fn) : fn_(std::move(fn)) {}
  [[nodiscard]] std::optional<CaTrace> apply(
      const CaElement& e) const override {
    return fn_(e);
  }

 private:
  Fn fn_;
};

/// Renames elements of any object in `sources` to look like elements of
/// `target` — e.g. F_AR, which maps an exchange on any E[i] to the same
/// exchange on AR (§5: F_AR(E[i].S) ≜ (AR.S)).
class RenameObjectView final : public ViewFunction {
 public:
  RenameObjectView(std::vector<Symbol> sources, Symbol target)
      : sources_(std::move(sources)), target_(target) {}

  [[nodiscard]] std::optional<CaTrace> apply(
      const CaElement& e) const override;

 private:
  std::vector<Symbol> sources_;
  Symbol target_;
};

/// The recursive composition 𝔽_o: applies the child views (in any order —
/// encapsulation makes them commute, §4) and then the object's own F̂_o.
class ComposedView final : public ViewFunction {
 public:
  ComposedView(std::shared_ptr<const ViewFunction> own,
               std::vector<std::shared_ptr<const ViewFunction>> children)
      : own_(std::move(own)), children_(std::move(children)) {}

  /// Not meaningfully defined element-wise; use view() on whole traces.
  [[nodiscard]] std::optional<CaTrace> apply(
      const CaElement& e) const override;

  /// 𝒯_o = 𝔽_o(𝒯).
  [[nodiscard]] CaTrace view(const CaTrace& global) const;

 private:
  std::shared_ptr<const ViewFunction> own_;
  std::vector<std::shared_ptr<const ViewFunction>> children_;
};

}  // namespace cal
