#include "cal/text.hpp"

#include <cctype>
#include <charconv>
#include <sstream>
#include <vector>

namespace cal {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<std::int64_t> parse_int(std::string_view token) {
  if (token == "inf") return kInfinity;
  std::int64_t out = 0;
  const char* first = token.data();
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return out;
}

/// Splits on whitespace.
std::vector<std::string_view> tokens_of(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

std::optional<ThreadId> parse_thread(std::string_view token) {
  if (token.size() < 2 || token[0] != 't') return std::nullopt;
  std::uint32_t id = 0;
  const char* first = token.data() + 1;
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, id);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return id;
}

/// "E.exchange" -> (E, exchange); the method is the part after the LAST
/// dot so object names may themselves be dotted ("ES.AR.E[0]").
std::optional<std::pair<Symbol, Symbol>> parse_target(std::string_view token) {
  const std::size_t dot = token.rfind('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 == token.size()) {
    return std::nullopt;
  }
  return std::make_pair(Symbol{token.substr(0, dot)},
                        Symbol{token.substr(dot + 1)});
}

template <typename T>
ParseResult<T> fail_at(std::size_t line, std::string message) {
  ParseResult<T> r;
  r.error = ParseError{line, std::move(message)};
  return r;
}

/// Parses "t1 exchange 3 (true,4)" (an operation inside an `elem` line).
std::optional<Operation> parse_element_op(std::string_view text,
                                          Symbol object) {
  const auto toks = tokens_of(text);
  if (toks.size() != 4) return std::nullopt;
  const auto tid = parse_thread(toks[0]);
  if (!tid) return std::nullopt;
  const auto arg = parse_value(toks[2]);
  const auto ret = parse_value(toks[3]);
  if (!arg || !ret) return std::nullopt;
  return Operation::make(*tid, object, Symbol{toks[1]}, *arg, *ret);
}

}  // namespace

std::optional<Value> parse_value(std::string_view token) {
  token = trim(token);
  if (token.empty()) return std::nullopt;
  if (token == "()") return Value::unit();
  if (token == "true") return Value::boolean(true);
  if (token == "false") return Value::boolean(false);
  if (token.front() == '(' && token.back() == ')') {
    std::string_view inner = token.substr(1, token.size() - 2);
    const std::size_t comma = inner.find(',');
    if (comma == std::string_view::npos) return std::nullopt;
    std::string_view b = trim(inner.substr(0, comma));
    std::string_view i = trim(inner.substr(comma + 1));
    bool ok = false;
    if (b == "true") {
      ok = true;
    } else if (b != "false") {
      return std::nullopt;
    }
    const auto n = parse_int(i);
    if (!n) return std::nullopt;
    return Value::pair(ok, *n);
  }
  if (token.front() == '[' && token.back() == ']') {
    std::string_view inner = trim(token.substr(1, token.size() - 2));
    std::vector<std::int64_t> items;
    while (!inner.empty()) {
      const std::size_t comma = inner.find(',');
      std::string_view piece = comma == std::string_view::npos
                                   ? inner
                                   : inner.substr(0, comma);
      const auto n = parse_int(trim(piece));
      if (!n) return std::nullopt;
      items.push_back(*n);
      if (comma == std::string_view::npos) break;
      inner = inner.substr(comma + 1);
    }
    return Value::vec(std::move(items));
  }
  if (const auto n = parse_int(token)) return Value::integer(*n);
  return std::nullopt;
}

std::string format_value(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kUnit:
      return "()";
    case Value::Kind::kBool:
      return v.as_bool() ? "true" : "false";
    case Value::Kind::kInt:
      return v.as_int() == kInfinity ? "inf" : std::to_string(v.as_int());
    case Value::Kind::kPair: {
      std::string i = v.pair_int() == kInfinity
                          ? "inf"
                          : std::to_string(v.pair_int());
      return std::string("(") + (v.pair_ok() ? "true" : "false") + "," + i +
             ")";
    }
    case Value::Kind::kVec: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.as_vec().size(); ++i) {
        if (i) out += ",";
        out += std::to_string(v.as_vec()[i]);
      }
      return out + "]";
    }
  }
  return "()";
}

ParseResult<std::optional<Action>> parse_action_line(std::string_view raw) {
  using Out = std::optional<Action>;
  std::string_view line = trim(raw);
  if (line.empty() || line.front() == '#') {
    ParseResult<Out> r;
    r.value.emplace(std::nullopt);
    return r;
  }
  const auto toks = tokens_of(line);
  if (toks.size() < 3 || toks.size() > 4) {
    return fail_at<Out>(1, "expected: inv|res t<N> obj.method [value]");
  }
  Action::Kind kind;
  if (toks[0] == "inv") {
    kind = Action::Kind::kInvoke;
  } else if (toks[0] == "res") {
    kind = Action::Kind::kRespond;
  } else {
    return fail_at<Out>(1,
                        "unknown action kind '" + std::string(toks[0]) + "'");
  }
  const auto tid = parse_thread(toks[1]);
  if (!tid) {
    return fail_at<Out>(1, "bad thread id '" + std::string(toks[1]) + "'");
  }
  const auto target = parse_target(toks[2]);
  if (!target) {
    return fail_at<Out>(1,
                        "bad object.method '" + std::string(toks[2]) + "'");
  }
  Value payload = Value::unit();
  if (toks.size() == 4) {
    const auto v = parse_value(toks[3]);
    if (!v) {
      return fail_at<Out>(1, "bad value '" + std::string(toks[3]) + "'");
    }
    payload = *v;
  }
  ParseResult<Out> r;
  r.value.emplace(Action{kind, *tid, target->first, target->second, payload});
  return r;
}

ParseResult<History> parse_history(std::string_view text) {
  History h;
  std::size_t line_no = 0;
  std::istringstream in{std::string(text)};
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    ParseResult<std::optional<Action>> a = parse_action_line(raw);
    if (!a) return fail_at<History>(line_no, a.error->message);
    if (*a.value) h.append(**a.value);
  }
  ParseResult<History> r;
  r.value = std::move(h);
  return r;
}

std::string format_history(const History& h) {
  std::string out;
  for (const Action& a : h.actions()) {
    out += a.is_invoke() ? "inv" : "res";
    out += " t" + std::to_string(a.tid) + " " + a.object.str() + "." +
           a.method.str();
    if (!a.payload.is_unit() || a.is_respond()) {
      out += " " + format_value(a.payload);
    }
    out += "\n";
  }
  return out;
}

ParseResult<CaTrace> parse_trace(std::string_view text) {
  CaTrace t;
  std::size_t line_no = 0;
  std::istringstream in{std::string(text)};
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (!line.starts_with("elem ")) {
      return fail_at<CaTrace>(line_no, "expected: elem OBJ.{...}");
    }
    line.remove_prefix(5);
    const std::size_t brace = line.find(".{");
    if (brace == std::string_view::npos || line.back() != '}') {
      return fail_at<CaTrace>(line_no, "expected OBJ.{op | op | ...}");
    }
    const Symbol object{trim(line.substr(0, brace))};
    std::string_view inner = line.substr(brace + 2);
    inner.remove_suffix(1);  // trailing '}'
    std::vector<Operation> ops;
    while (true) {
      const std::size_t bar = inner.find('|');
      std::string_view piece =
          bar == std::string_view::npos ? inner : inner.substr(0, bar);
      const auto op = parse_element_op(trim(piece), object);
      if (!op) {
        return fail_at<CaTrace>(line_no, "bad operation '" +
                                             std::string(trim(piece)) + "'");
      }
      ops.push_back(*op);
      if (bar == std::string_view::npos) break;
      inner = inner.substr(bar + 1);
    }
    if (ops.empty()) {
      return fail_at<CaTrace>(line_no, "empty CA-element");
    }
    t.append(CaElement(object, std::move(ops)));
  }
  ParseResult<CaTrace> r;
  r.value = std::move(t);
  return r;
}

std::string format_trace(const CaTrace& t) {
  std::string out;
  for (const CaElement& e : t.elements()) {
    out += "elem " + e.object().str() + ".{";
    for (std::size_t i = 0; i < e.ops().size(); ++i) {
      const Operation& op = e.ops()[i];
      if (i) out += " | ";
      out += "t" + std::to_string(op.tid) + " " + op.method.str() + " " +
             format_value(op.arg) + " " +
             format_value(op.ret.value_or(Value::unit()));
    }
    out += "}\n";
  }
  return out;
}

}  // namespace cal
