#include "cal/lin_checker.hpp"

#include <unordered_set>

#include "cal/history_index.hpp"
#include "cal/step_cache.hpp"

namespace cal {

namespace {

using Mask = StateMask;

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& k) const noexcept {
    return hash_state(k);
  }
};

class Search {
 public:
  Search(const std::vector<OpRecord>& ops, const SequentialSpec& spec,
         const LinCheckOptions& options)
      : ops_(ops), spec_(spec), options_(options), index_(ops) {}

  LinCheckResult run() {
    LinCheckResult result;
    Mask mask((ops_.size() + 63) / 64, 0);
    result.ok = dfs(spec_.initial(), mask, 0);
    result.exhausted = exhausted_;
    result.visited_states = visited_.size();
    result.step_cache_hits = memo_.hits();
    result.step_cache_misses = memo_.misses();
    if (result.ok) result.witness = witness_;
    return result;
  }

 private:
  /// spec_.step through the per-search memo, keyed by (op index, state);
  /// the same operation recurs in the same abstract state along many
  /// fired-mask paths. The reference stays valid across the recursion.
  const std::vector<SeqStepResult>& stepped(const SpecState& state,
                                            std::size_t op_index) {
    memo_key_.clear();
    memo_key_.reserve(1 + state.size());
    memo_key_.push_back(static_cast<std::int64_t>(op_index));
    memo_key_.insert(memo_key_.end(), state.begin(), state.end());
    if (const auto* cached = memo_.find(memo_key_)) return *cached;
    const OpRecord& rec = ops_[op_index];
    return memo_.insert(StepKey(memo_key_),
                        spec_.step(state, rec.op.tid, rec.op.object,
                                   rec.op.method, rec.op.arg, rec.op.ret));
  }

  bool dfs(const SpecState& state, const Mask& mask,
           std::size_t fired_completed) {
    if (fired_completed == index_.completed()) return true;
    if (options_.max_visited != 0 &&
        visited_.size() >= options_.max_visited) {
      exhausted_ = true;
      return false;
    }

    std::vector<std::int64_t> key;
    key.reserve(state.size() + mask.size() + 1);
    key.push_back(static_cast<std::int64_t>(state.size()));
    key.insert(key.end(), state.begin(), state.end());
    for (std::uint64_t w : mask) {
      key.push_back(static_cast<std::int64_t>(w));
    }
    if (!visited_.insert(std::move(key)).second) return false;

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].is_pending() && !options_.complete_pending) continue;
      if (!index_.enabled(i, mask)) continue;

      const OpRecord& rec = ops_[i];
      for (const SeqStepResult& sr : stepped(state, i)) {
        Mask next = mask;
        mask_set(next, i);
        Operation completed_op = rec.op;
        completed_op.ret = sr.ret;
        witness_.push_back(std::move(completed_op));
        if (dfs(sr.next, next,
                fired_completed + (rec.is_pending() ? 0 : 1))) {
          return true;
        }
        witness_.pop_back();
      }
    }
    return false;
  }

  const std::vector<OpRecord>& ops_;
  const SequentialSpec& spec_;
  const LinCheckOptions& options_;
  HistoryIndex index_;
  std::unordered_set<std::vector<std::int64_t>, KeyHash> visited_;
  StepKey memo_key_;
  StepMemo<SeqStepResult> memo_;
  std::vector<Operation> witness_;
  bool exhausted_ = false;
};

}  // namespace

LinCheckResult LinChecker::check(const std::vector<OpRecord>& ops) const {
  Search search(ops, spec_, options_);
  return search.run();
}

LinCheckResult LinChecker::check(const History& history) const {
  if (!history.well_formed()) {
    LinCheckResult r;
    r.ok = false;
    return r;
  }
  return check(history.operations());
}

}  // namespace cal
