#include "cal/lin_checker.hpp"

#include <unordered_set>

namespace cal {

namespace {

using Mask = std::vector<std::uint64_t>;

bool test_bit(const Mask& m, std::size_t i) {
  return (m[i / 64] >> (i % 64)) & 1u;
}
void set_bit(Mask& m, std::size_t i) { m[i / 64] |= (1ull << (i % 64)); }

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& k) const noexcept {
    return hash_state(k);
  }
};

class Search {
 public:
  Search(const std::vector<OpRecord>& ops, const SequentialSpec& spec,
         const LinCheckOptions& options)
      : ops_(ops), spec_(spec), options_(options) {
    preds_.resize(ops_.size());
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!ops_[i].is_pending()) ++completed_;
      for (std::size_t j = 0; j < ops_.size(); ++j) {
        if (j != i && History::precedes(ops_[j], ops_[i])) {
          preds_[i].push_back(j);
        }
      }
    }
  }

  LinCheckResult run() {
    LinCheckResult result;
    Mask mask((ops_.size() + 63) / 64, 0);
    result.ok = dfs(spec_.initial(), mask, 0);
    result.exhausted = exhausted_;
    result.visited_states = visited_.size();
    if (result.ok) result.witness = witness_;
    return result;
  }

 private:
  bool dfs(const SpecState& state, const Mask& mask,
           std::size_t fired_completed) {
    if (fired_completed == completed_) return true;
    if (options_.max_visited != 0 &&
        visited_.size() >= options_.max_visited) {
      exhausted_ = true;
      return false;
    }

    std::vector<std::int64_t> key;
    key.reserve(state.size() + mask.size() + 1);
    key.push_back(static_cast<std::int64_t>(state.size()));
    key.insert(key.end(), state.begin(), state.end());
    for (std::uint64_t w : mask) {
      key.push_back(static_cast<std::int64_t>(w));
    }
    if (!visited_.insert(std::move(key)).second) return false;

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (test_bit(mask, i)) continue;
      if (ops_[i].is_pending() && !options_.complete_pending) continue;
      bool is_enabled = true;
      for (std::size_t j : preds_[i]) {
        if (!test_bit(mask, j)) {
          is_enabled = false;
          break;
        }
      }
      if (!is_enabled) continue;

      const OpRecord& rec = ops_[i];
      for (SeqStepResult& sr :
           spec_.step(state, rec.op.tid, rec.op.object, rec.op.method,
                      rec.op.arg, rec.op.ret)) {
        Mask next = mask;
        set_bit(next, i);
        Operation completed_op = rec.op;
        completed_op.ret = sr.ret;
        witness_.push_back(std::move(completed_op));
        if (dfs(sr.next, next,
                fired_completed + (rec.is_pending() ? 0 : 1))) {
          return true;
        }
        witness_.pop_back();
      }
    }
    return false;
  }

  const std::vector<OpRecord>& ops_;
  const SequentialSpec& spec_;
  const LinCheckOptions& options_;
  std::vector<std::vector<std::size_t>> preds_;
  std::size_t completed_ = 0;
  std::unordered_set<std::vector<std::int64_t>, KeyHash> visited_;
  std::vector<Operation> witness_;
  bool exhausted_ = false;
};

}  // namespace

LinCheckResult LinChecker::check(const std::vector<OpRecord>& ops) const {
  Search search(ops, spec_, options_);
  return search.run();
}

LinCheckResult LinChecker::check(const History& history) const {
  if (!history.well_formed()) {
    LinCheckResult r;
    r.ok = false;
    return r;
  }
  return check(history.operations());
}

}  // namespace cal
