#include "cal/lin_checker.hpp"

#include <utility>

#include "cal/engine/lin_policy.hpp"
#include "cal/engine/search_engine.hpp"
#include "cal/parallel/task_pool.hpp"

namespace cal {

namespace {

template <bool kShared, typename Driver>
LinCheckResult collect_result(Driver& driver,
                              engine::LinPolicy<kShared>& policy) {
  const engine::SearchStats stats = driver.run();
  LinCheckResult result;
  result.ok = stats.found;
  result.exhausted = stats.exhausted;
  result.visited_states = stats.visited_states;
  result.visited_bytes = stats.visited_bytes;
  result.step_cache_hits = policy.step_cache_hits();
  result.step_cache_misses = policy.step_cache_misses();
  if (result.ok) result.witness = driver.witness();
  return result;
}

}  // namespace

LinCheckResult LinChecker::check(const std::vector<OpRecord>& ops) const {
  engine::SearchOptions sopts;
  sopts.max_visited = options_.max_visited;
  sopts.exact_visited = options_.exact_visited;
  const std::size_t threads = par::resolve_threads(options_.threads);
  if (threads > 1) {
    engine::LinPolicy<true> policy(ops, spec_, options_.complete_pending);
    engine::ParallelSearch<engine::LinPolicy<true>> driver(policy, sopts,
                                                           threads);
    return collect_result(driver, policy);
  }
  engine::LinPolicy<false> policy(ops, spec_, options_.complete_pending);
  engine::SequentialSearch<engine::LinPolicy<false>> driver(policy, sopts);
  return collect_result(driver, policy);
}

LinCheckResult LinChecker::check(const History& history) const {
  if (!history.well_formed()) {
    LinCheckResult r;
    r.ok = false;
    return r;
  }
  return check(history.operations());
}

}  // namespace cal
