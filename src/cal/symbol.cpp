#include "cal/symbol.hpp"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace cal {
namespace {

struct Interner {
  std::mutex mu;
  // Stable storage for spellings; index i holds the spelling of symbol id
  // i + 1 (id 0 is the null symbol).
  std::deque<std::string> spellings;
  std::unordered_map<std::string_view, std::uint32_t> ids;
  std::string empty;
};

Interner& interner() {
  static Interner* table = new Interner();  // intentionally leaked singleton
  return *table;
}

}  // namespace

Symbol::Symbol(std::string_view name) {
  Interner& t = interner();
  std::lock_guard lock(t.mu);
  if (auto it = t.ids.find(name); it != t.ids.end()) {
    id_ = it->second;
    return;
  }
  t.spellings.emplace_back(name);
  id_ = static_cast<std::uint32_t>(t.spellings.size());
  t.ids.emplace(t.spellings.back(), id_);
}

const std::string& Symbol::str() const {
  Interner& t = interner();
  std::lock_guard lock(t.mu);
  if (id_ == 0) return t.empty;
  return t.spellings[id_ - 1];
}

}  // namespace cal
