// Histories (Def. 2) and the real-time order (Def. 3).
//
// A history is a finite sequence of invocation and response actions. It is
// *well-formed* if every per-thread projection is sequential (alternating
// inv/res starting with an invocation, responses matching the preceding
// invocation), and *complete* if additionally every invocation has a
// matching response. `complete(H)` — the set of completions — extends H
// with responses for some pending invocations and drops the rest; because
// the added return values are constrained only by the specification, the
// checker (not this class) chooses them, and this class exposes the pending
// operations for it to complete.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cal/action.hpp"
#include "cal/operation.hpp"

namespace cal {

/// An operation extracted from a history together with the indices of its
/// actions, which define the real-time order.
struct OpRecord {
  Operation op;
  std::size_t inv_index = 0;
  std::optional<std::size_t> res_index;  ///< empty for pending operations

  [[nodiscard]] bool is_pending() const noexcept {
    return !res_index.has_value();
  }
};

class History {
 public:
  History() = default;
  explicit History(std::vector<Action> actions)
      : actions_(std::move(actions)) {}

  [[nodiscard]] std::size_t size() const noexcept { return actions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return actions_.empty(); }
  [[nodiscard]] const Action& operator[](std::size_t i) const {
    return actions_[i];
  }
  [[nodiscard]] const std::vector<Action>& actions() const noexcept {
    return actions_;
  }

  void append(Action a) { actions_.push_back(std::move(a)); }

  /// Appends (t, inv o.f(arg)).
  void invoke(ThreadId t, Symbol o, Symbol f, Value arg = Value::unit()) {
    actions_.push_back(Action::invoke(t, o, f, std::move(arg)));
  }
  /// Appends (t, res o.f ▷ ret).
  void respond(ThreadId t, Symbol o, Symbol f, Value ret = Value::unit()) {
    actions_.push_back(Action::respond(t, o, f, std::move(ret)));
  }

  /// H|t — the subsequence of actions of thread t (Def. 2).
  [[nodiscard]] History project_thread(ThreadId t) const;
  /// H|o — the subsequence of actions on object o.
  [[nodiscard]] History project_object(Symbol o) const;

  /// True iff every per-thread projection is sequential and responses match
  /// their preceding invocation's object and method.
  [[nodiscard]] bool well_formed() const;

  /// True iff the history alternates inv/res starting with an invocation
  /// and each response matches the immediately preceding invocation.
  [[nodiscard]] bool sequential() const;

  /// True iff well-formed and every invocation has a matching response.
  [[nodiscard]] bool complete() const;

  /// Extracts the operations of a well-formed history in invocation order.
  /// Pending invocations yield OpRecords with no response index.
  [[nodiscard]] std::vector<OpRecord> operations() const;

  /// The real-time order ≺H on the result of operations(): record i
  /// precedes record j iff i's response appears before j's invocation
  /// (Def. 3). Returns false when either endpoint is missing.
  [[nodiscard]] static bool precedes(const OpRecord& a, const OpRecord& b) {
    return a.res_index.has_value() && *a.res_index < b.inv_index;
  }

  /// The completion of H that simply drops every pending invocation.
  [[nodiscard]] History drop_pending() const;

  /// Pretty-printer: one action per line.
  [[nodiscard]] std::string to_string() const;

  /// Fig. 3-style interval diagram: one row per thread, `[--]` spans from
  /// invocation to response, `[--…` for pending operations.
  [[nodiscard]] std::string render_ascii() const;

  friend bool operator==(const History& a, const History& b) noexcept {
    return a.actions_ == b.actions_;
  }

 private:
  std::vector<Action> actions_;
};

/// Convenience builder for tests and examples:
///   auto h = HistoryBuilder()
///                .call(1, "E", "exchange", Value::integer(3))
///                .call(2, "E", "exchange", Value::integer(4))
///                .ret(1, Value::pair(true, 4))
///                .ret(2, Value::pair(true, 3))
///                .history();
/// `ret` with no explicit object/method answers the thread's open invocation.
class HistoryBuilder {
 public:
  HistoryBuilder& call(ThreadId t, std::string_view object,
                       std::string_view method, Value arg = Value::unit());
  HistoryBuilder& ret(ThreadId t, Value value = Value::unit());

  /// Shorthand for call + immediate ret (a sequentially executed operation).
  HistoryBuilder& op(ThreadId t, std::string_view object,
                     std::string_view method, Value arg, Value ret_value);

  [[nodiscard]] History history() const { return h_; }

 private:
  struct Open {
    ThreadId tid;
    Symbol object;
    Symbol method;
  };
  History h_;
  std::vector<Open> open_;
};

}  // namespace cal
