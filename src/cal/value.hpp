// Argument / return values carried by invocations and responses.
//
// The paper's examples need: unit (no argument, e.g. pop()), booleans,
// integers (possibly the POP_SENTINAL "infinity"), pairs (bool, int) as
// returned by exchange() and pop(), and small integer vectors (needed by
// the immediate-snapshot CA-spec from the related-work discussion).
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace cal {

/// The POP_SENTINAL / "infinity" value used by the elimination stack
/// (Fig. 2, line 26) to mark a popping thread's exchange offer.
inline constexpr std::int64_t kInfinity = INT64_MAX;

/// A closed value universe, totally ordered and hashable so values can be
/// used as map keys and inside canonicalized CA-elements.
class Value {
 public:
  enum class Kind : std::uint8_t { kUnit, kBool, kInt, kPair, kVec };

  constexpr Value() noexcept : kind_(Kind::kUnit) {}

  [[nodiscard]] static Value unit() noexcept { return Value{}; }
  [[nodiscard]] static Value boolean(bool b) noexcept {
    Value v;
    v.kind_ = Kind::kBool;
    v.int_ = b ? 1 : 0;
    return v;
  }
  [[nodiscard]] static Value integer(std::int64_t i) noexcept {
    Value v;
    v.kind_ = Kind::kInt;
    v.int_ = i;
    return v;
  }
  /// A (bool, int) pair, e.g. the result of exchange() or pop().
  [[nodiscard]] static Value pair(bool ok, std::int64_t i) noexcept {
    Value v;
    v.kind_ = Kind::kPair;
    v.bool_of_pair_ = ok;
    v.int_ = i;
    return v;
  }
  [[nodiscard]] static Value vec(std::vector<std::int64_t> items) {
    Value v;
    v.kind_ = Kind::kVec;
    v.vec_ = std::move(items);
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_unit() const noexcept { return kind_ == Kind::kUnit; }

  /// Requires kind() == kBool.
  [[nodiscard]] bool as_bool() const noexcept { return int_ != 0; }
  /// Requires kind() == kInt.
  [[nodiscard]] std::int64_t as_int() const noexcept { return int_; }
  /// Requires kind() == kPair.
  [[nodiscard]] bool pair_ok() const noexcept { return bool_of_pair_; }
  /// Requires kind() == kPair.
  [[nodiscard]] std::int64_t pair_int() const noexcept { return int_; }
  /// Requires kind() == kVec.
  [[nodiscard]] const std::vector<std::int64_t>& as_vec() const noexcept {
    return vec_;
  }

  friend bool operator==(const Value& a, const Value& b) noexcept {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
      case Kind::kUnit:
        return true;
      case Kind::kBool:
      case Kind::kInt:
        return a.int_ == b.int_;
      case Kind::kPair:
        return a.bool_of_pair_ == b.bool_of_pair_ && a.int_ == b.int_;
      case Kind::kVec:
        return a.vec_ == b.vec_;
    }
    return false;
  }
  friend bool operator!=(const Value& a, const Value& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const Value& a, const Value& b) noexcept {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    switch (a.kind_) {
      case Kind::kUnit:
        return false;
      case Kind::kBool:
      case Kind::kInt:
        return a.int_ < b.int_;
      case Kind::kPair:
        if (a.bool_of_pair_ != b.bool_of_pair_) return b.bool_of_pair_;
        return a.int_ < b.int_;
      case Kind::kVec:
        return a.vec_ < b.vec_;
    }
    return false;
  }

  [[nodiscard]] std::size_t hash() const noexcept {
    std::size_t h = static_cast<std::size_t>(kind_) * 0x9e3779b97f4a7c15ull;
    auto mix = [&h](std::size_t x) {
      h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    switch (kind_) {
      case Kind::kUnit:
        break;
      case Kind::kBool:
      case Kind::kInt:
        mix(static_cast<std::size_t>(int_));
        break;
      case Kind::kPair:
        mix(bool_of_pair_ ? 1u : 0u);
        mix(static_cast<std::size_t>(int_));
        break;
      case Kind::kVec:
        for (std::int64_t x : vec_) mix(static_cast<std::size_t>(x));
        break;
    }
    return h;
  }

  /// Human-readable rendering, e.g. "(true,7)", "42", "()", "inf".
  [[nodiscard]] std::string to_string() const;

 private:
  Kind kind_;
  bool bool_of_pair_ = false;
  std::int64_t int_ = 0;
  std::vector<std::int64_t> vec_;
};

}  // namespace cal

template <>
struct std::hash<cal::Value> {
  std::size_t operator()(const cal::Value& v) const noexcept {
    return v.hash();
  }
};
