#include "cal/value.hpp"

#include <string>

namespace cal {

namespace {
std::string int_to_string(std::int64_t i) {
  if (i == kInfinity) return "inf";
  return std::to_string(i);
}
}  // namespace

std::string Value::to_string() const {
  switch (kind_) {
    case Kind::kUnit:
      return "()";
    case Kind::kBool:
      return int_ != 0 ? "true" : "false";
    case Kind::kInt:
      return int_to_string(int_);
    case Kind::kPair:
      return std::string("(") + (bool_of_pair_ ? "true" : "false") + "," +
             int_to_string(int_) + ")";
    case Kind::kVec: {
      std::string out = "[";
      for (std::size_t i = 0; i < vec_.size(); ++i) {
        if (i != 0) out += ",";
        out += int_to_string(vec_[i]);
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

}  // namespace cal
