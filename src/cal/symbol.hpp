// Interned string symbols used for object and method identifiers.
//
// Histories and CA-traces mention object names (o) and method names (f)
// (Def. 1 of the paper). Checkers compare these identifiers in inner loops,
// so we intern every name into a dense 32-bit id once and compare integers
// afterwards. Interning is process-global and thread-safe; symbols never
// expire.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace cal {

/// A process-global interned string. Cheap to copy and compare.
class Symbol {
 public:
  /// The null symbol; distinct from every interned name.
  constexpr Symbol() noexcept : id_(0) {}

  /// Interns `name` (or reuses an earlier interning of the same spelling).
  explicit Symbol(std::string_view name);

  [[nodiscard]] constexpr std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] constexpr bool is_null() const noexcept { return id_ == 0; }

  /// The spelling this symbol was interned from ("" for the null symbol).
  [[nodiscard]] const std::string& str() const;

  friend constexpr bool operator==(Symbol a, Symbol b) noexcept {
    return a.id_ == b.id_;
  }
  friend constexpr bool operator!=(Symbol a, Symbol b) noexcept {
    return a.id_ != b.id_;
  }
  friend constexpr bool operator<(Symbol a, Symbol b) noexcept {
    return a.id_ < b.id_;
  }

 private:
  std::uint32_t id_;
};

}  // namespace cal

template <>
struct std::hash<cal::Symbol> {
  std::size_t operator()(cal::Symbol s) const noexcept {
    return std::hash<std::uint32_t>{}(s.id());
  }
};
