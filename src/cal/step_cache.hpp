// Memoization in front of pure spec transition functions.
//
// Specifications are pure state machines: `CaSpec::step`, the sequential
// `SequentialSpec::step`, and `IntervalSpec::round` depend only on their
// arguments. The searches, however, reach the same (state, candidate
// element) query along many different paths — the fired-mask differs while
// the abstract state recurs (stateless specs like the exchanger recur
// maximally: *every* node shares one state). A per-search memo table keyed
// by the exact query therefore trades one hash probe for re-running the
// spec's (allocating) transition enumeration.
//
// Keys are flat `std::vector<int64_t>` encodings built by each checker:
// operations are identified by their index in the search's fixed operation
// array, so the key pins the query exactly without serializing Values.
// Cached outcome vectors are never modified after insertion and the maps
// are node-based, so returned references stay valid across later inserts —
// callers may hold them through recursion.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cal/spec.hpp"

namespace cal {

using StepKey = std::vector<std::int64_t>;

struct StepKeyHash {
  std::size_t operator()(const StepKey& k) const noexcept {
    return hash_state(k);
  }
};

/// Single-threaded memo table for the sequential engines.
template <typename Outcome>
class StepMemo {
 public:
  /// The cached outcomes for `key`, or nullptr on a miss.
  [[nodiscard]] const std::vector<Outcome>* find(const StepKey& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return &it->second;
  }

  /// Stores `outcomes` under `key` and returns the stored vector.
  const std::vector<Outcome>& insert(StepKey&& key,
                                     std::vector<Outcome>&& outcomes) {
    return map_.emplace(std::move(key), std::move(outcomes)).first->second;
  }

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  std::unordered_map<StepKey, std::vector<Outcome>, StepKeyHash> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Striped-lock memo table shared by the parallel engine's workers. Entries
/// are immutable once inserted and never erased; a reader that found an
/// entry under the shard lock may keep the reference after unlocking (the
/// writer's insert happened-before via the same mutex). Racing computes of
/// the same key are benign: the first insert wins, later ones are dropped.
template <typename Outcome>
class ShardedStepMemo {
 public:
  explicit ShardedStepMemo(std::size_t shard_count = 64) {
    std::size_t n = 1;
    while (n < shard_count) n <<= 1;
    mask_ = n - 1;
    shards_ = std::make_unique<Shard[]>(n);
  }

  [[nodiscard]] const std::vector<Outcome>* find(const StepKey& key) {
    Shard& shard = shards_[shard_of(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return &it->second;
  }

  const std::vector<Outcome>& insert(StepKey&& key,
                                     std::vector<Outcome>&& outcomes) {
    Shard& shard = shards_[shard_of(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.emplace(std::move(key), std::move(outcomes))
        .first->second;
  }

  [[nodiscard]] std::size_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::mutex mu;
    std::unordered_map<StepKey, std::vector<Outcome>, StepKeyHash> map;
  };

  [[nodiscard]] std::size_t shard_of(const StepKey& key) const noexcept {
    const std::size_t h = hash_state(key);
    return (h >> 48 ^ h >> 24) & mask_;
  }

  std::unique_ptr<Shard[]> shards_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

}  // namespace cal
