// Classical linearizability (Wing–Gong) as a search-engine policy.
//
// The degenerate case of the CAL policy where every element is a
// singleton: successors fire one enabled operation through the sequential
// spec, memoized by (op index, state) — the same operation recurs in the
// same abstract state along many fired-mask paths. Labels are the fired
// operations with their decided return values, so an accept-mode witness
// is a linearization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cal/engine/policy_base.hpp"
#include "cal/engine/search_engine.hpp"
#include "cal/history.hpp"
#include "cal/history_index.hpp"
#include "cal/operation.hpp"
#include "cal/spec.hpp"

namespace cal::engine {

template <bool kShared>
class LinPolicy {
 public:
  struct Node {
    SpecState state;
    StateMask fired;
    std::size_t fired_completed;
  };
  using Label = Operation;

  LinPolicy(const std::vector<OpRecord>& ops, const SequentialSpec& spec,
            bool complete_pending)
      : ops_(ops),
        spec_(spec),
        complete_pending_(complete_pending),
        index_(ops) {}

  std::vector<Node> roots() const {
    return {Node{spec_.initial(), StateMask((ops_.size() + 63) / 64, 0), 0}};
  }

  bool is_goal(const Node& n) const {
    return n.fired_completed == index_.completed();
  }

  void encode(const Node& n, NodeKey& out) const {
    encode_state_and_masks(n.state, {&n.fired}, out);
  }

  void on_enter(const Node&, std::size_t) {}
  bool cancelled() const { return false; }

  template <typename Emit>
  void expand(const Node& node, std::size_t /*depth*/,
              const std::vector<Label>& /*prefix*/, Emit&& emit) {
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].is_pending() && !complete_pending_) continue;
      if (!index_.enabled(i, node.fired)) continue;

      const OpRecord& rec = ops_[i];
      for (const SeqStepResult& sr : stepped(node.state, i)) {
        Node next{sr.next, node.fired,
                  node.fired_completed + (rec.is_pending() ? 0 : 1)};
        mask_set(next.fired, i);
        Operation completed = rec.op;
        completed.ret = sr.ret;
        if (!emit(std::move(next), std::move(completed))) return;
      }
    }
  }

  [[nodiscard]] std::size_t step_cache_hits() const { return memo_.hits(); }
  [[nodiscard]] std::size_t step_cache_misses() const {
    return memo_.misses();
  }

 private:
  const std::vector<SeqStepResult>& stepped(const SpecState& state,
                                            std::size_t op_index) {
    StepKey key;
    key.reserve(1 + state.size());
    key.push_back(static_cast<std::int64_t>(op_index));
    key.insert(key.end(), state.begin(), state.end());
    if (const auto* cached = memo_.find(key)) return *cached;
    const OpRecord& rec = ops_[op_index];
    return memo_.insert(std::move(key),
                        spec_.step(state, rec.op.tid, rec.op.object,
                                   rec.op.method, rec.op.arg, rec.op.ret));
  }

  const std::vector<OpRecord>& ops_;
  const SequentialSpec& spec_;
  bool complete_pending_;
  HistoryIndex index_;
  StepMemoFor<kShared, SeqStepResult> memo_;
};

}  // namespace cal::engine
