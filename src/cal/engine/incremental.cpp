#include "cal/engine/incremental.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "cal/engine/cal_policy.hpp"
#include "cal/engine/search_engine.hpp"
#include "cal/history_index.hpp"
#include "cal/parallel/task_pool.hpp"

namespace cal::engine {

namespace {

/// One window of the streaming search: the CAL policy over the *active*
/// operations only (local indices), with two extensions — multiple roots
/// (one per frontier entry, remembered in Node::root for witness stitching)
/// and pending-return tracking (Node::pending_rets records the value the
/// spec chose for each fired-while-pending operation, and participates in
/// the node encoding so explanations differing only in a guess stay
/// distinct). Goals — nodes with every completed active operation fired —
/// are collect-mode sinks: their pending-only continuations stay reachable
/// from them in the next window, so not expanding them loses nothing.
template <bool kShared>
class StreamPolicy {
 public:
  struct Node {
    SpecState state;
    StateMask fired;
    std::size_t fired_completed;
    /// (local index, committed return) for fired pending ops, ascending.
    std::vector<std::pair<std::uint32_t, Value>> pending_rets;
    /// Index of the frontier entry this search state grew from (not part
    /// of the node identity — any root reaching a state explains it).
    std::uint32_t root;
  };
  using Label = CaElement;

  StreamPolicy(const std::vector<OpRecord>& ops, const CaSpec& spec,
               const std::vector<FrontierEntry>& frontier,
               const std::unordered_map<std::size_t, std::size_t>& local_of)
      : ops_(ops),
        spec_(spec),
        frontier_(frontier),
        local_of_(local_of),
        index_(ops) {}

  std::vector<Node> roots() const {
    const std::size_t words = (ops_.size() + 63) / 64;
    std::vector<Node> out;
    out.reserve(frontier_.size());
    for (std::uint32_t e = 0; e < frontier_.size(); ++e) {
      const FrontierEntry& fe = frontier_[e];
      Node n{fe.state, StateMask(words, 0), 0, {}, e};
      for (std::size_t gid : fe.fired) {
        const std::size_t l = local_of_.at(gid);
        mask_set(n.fired, l);
        if (!ops_[l].is_pending()) ++n.fired_completed;
      }
      n.pending_rets.reserve(fe.pending_rets.size());
      for (const auto& [gid, v] : fe.pending_rets) {
        n.pending_rets.emplace_back(
            static_cast<std::uint32_t>(local_of_.at(gid)), v);
      }
      // fe lists are ascending by global id and local order preserves
      // global order, so n.pending_rets is already sorted.
      out.push_back(std::move(n));
    }
    return out;
  }

  bool is_goal(const Node& n) const {
    return n.fired_completed == index_.completed();
  }

  void encode(const Node& n, NodeKey& out) const {
    encode_state_and_masks(n.state, {&n.fired}, out);
    out.push_back(static_cast<std::int64_t>(n.pending_rets.size()));
    for (const auto& [l, v] : n.pending_rets) {
      out.push_back(static_cast<std::int64_t>(l));
      out.push_back(static_cast<std::int64_t>(v.hash()));
    }
  }

  void on_enter(const Node&, std::size_t) {}
  bool cancelled() const { return false; }

  template <typename Emit>
  void expand(const Node& node, std::size_t /*depth*/,
              const std::vector<Label>& /*prefix*/, Emit&& emit) {
    // Pending operations are always candidates mid-stream, even with
    // complete_pending off: an operation pending *now* may complete later,
    // and the batch verdict (complete_pending=false) only excludes ops
    // that never complete. finish() discards explanations that fired one.
    std::unordered_map<Symbol, std::vector<std::size_t>> by_object;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!index_.enabled(i, node.fired)) continue;
      by_object[ops_[i].op.object].push_back(i);
    }

    std::vector<std::size_t> chosen;
    std::vector<Operation> chosen_ops;
    for (const auto& [object, candidates] : by_object) {
      const std::size_t cap =
          spec_.max_element_size() == 0
              ? candidates.size()
              : std::min(spec_.max_element_size(), candidates.size());
      for (std::size_t size = cap; size >= 1; --size) {
        chosen.clear();
        chosen_ops.clear();
        if (!try_subsets(node, object, candidates, 0, size, chosen,
                         chosen_ops, emit)) {
          return;
        }
      }
    }
  }

 private:
  template <typename Emit>
  bool try_subsets(const Node& node, Symbol object,
                   const std::vector<std::size_t>& candidates,
                   std::size_t from, std::size_t remaining,
                   std::vector<std::size_t>& chosen,
                   std::vector<Operation>& chosen_ops, Emit& emit) {
    if (remaining == 0) {
      return fire(node, object, chosen, chosen_ops, emit);
    }
    for (std::size_t i = from; i + remaining <= candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      chosen_ops.push_back(ops_[candidates[i]].op);
      bool keep_going = true;
      if (spec_.compatible(object, chosen_ops)) {
        keep_going = try_subsets(node, object, candidates, i + 1,
                                 remaining - 1, chosen, chosen_ops, emit);
      }
      chosen.pop_back();
      chosen_ops.pop_back();
      if (!keep_going) return false;
    }
    return true;
  }

  const std::vector<CaStepResult>& stepped(
      const SpecState& state, Symbol object,
      const std::vector<std::size_t>& chosen,
      const std::vector<Operation>& element_ops) {
    StepKey key;
    encode_cal_step_key(state, object, chosen, key);
    if (const auto* cached = memo_.find(key)) return *cached;
    return memo_.insert(std::move(key),
                        spec_.step(state, object, element_ops));
  }

  template <typename Emit>
  bool fire(const Node& node, Symbol object,
            const std::vector<std::size_t>& chosen,
            const std::vector<Operation>& element_ops, Emit& emit) {
    std::size_t newly_completed = 0;
    for (std::size_t i : chosen) {
      if (!ops_[i].is_pending()) ++newly_completed;
    }
    for (const CaStepResult& sr :
         stepped(node.state, object, chosen, element_ops)) {
      Node next{sr.next, node.fired, node.fired_completed + newly_completed,
                node.pending_rets, node.root};
      for (std::size_t i : chosen) mask_set(next.fired, i);
      // Commit to the return values the spec chose for pending
      // participants (matched by thread: co-fired operations overlap in
      // real time, so their threads are distinct).
      for (std::size_t i : chosen) {
        if (!ops_[i].is_pending()) continue;
        for (const Operation& op : sr.element.ops()) {
          if (op.tid != ops_[i].op.tid || !op.ret.has_value()) continue;
          const auto entry =
              std::make_pair(static_cast<std::uint32_t>(i), *op.ret);
          next.pending_rets.insert(
              std::upper_bound(next.pending_rets.begin(),
                               next.pending_rets.end(), entry,
                               [](const auto& a, const auto& b) {
                                 return a.first < b.first;
                               }),
              entry);
          break;
        }
      }
      if (!emit(std::move(next), CaElement(sr.element))) return false;
    }
    return true;
  }

  const std::vector<OpRecord>& ops_;
  const CaSpec& spec_;
  const std::vector<FrontierEntry>& frontier_;
  const std::unordered_map<std::size_t, std::size_t>& local_of_;
  HistoryIndex index_;
  StepMemoFor<kShared, CaStepResult> memo_;
};

}  // namespace

IncrementalChecker::IncrementalChecker(const CaSpec& spec,
                                       IncrementalOptions options)
    : spec_(spec), options_(std::move(options)) {
  if (options_.window == 0) options_.window = 1;
  FrontierEntry root;
  root.state = spec_.initial();
  frontier_.push_back(std::move(root));
}

void IncrementalChecker::fail(std::string reason) {
  status_.ok = false;
  if (status_.violation_window == 0) {
    status_.violation_window = status_.windows_checked;
  }
  status_.reason = std::move(reason);
}

void IncrementalChecker::push(const Action& action) {
  if (!status_.ok || status_.finished) return;
  const std::size_t idx = status_.actions_consumed++;
  if (action.is_invoke()) {
    if (open_.count(action.tid) != 0) {
      fail("not well-formed: invocation while thread " +
           std::to_string(action.tid) + " has an open call");
      return;
    }
    OpRecord rec;
    rec.op = Operation{action.tid, action.object, action.method,
                       action.payload, std::nullopt};
    rec.inv_index = idx;
    open_[action.tid] = ops_.size();
    ops_.push_back(std::move(rec));
    retired_.push_back(false);
    ++status_.operations;
  } else {
    const auto it = open_.find(action.tid);
    if (it == open_.end()) {
      fail("not well-formed: response without an open call on thread " +
           std::to_string(action.tid));
      return;
    }
    OpRecord& rec = ops_[it->second];
    if (rec.op.object != action.object || rec.op.method != action.method) {
      fail("not well-formed: response does not match the open call on "
           "thread " +
           std::to_string(action.tid));
      return;
    }
    rec.op.ret = action.payload;
    rec.res_index = idx;
    newly_completed_.push_back(it->second);
    open_.erase(it);
    ++status_.completed;
  }
  if (++buffered_ >= options_.window) check_window();
}

void IncrementalChecker::push(const History& history) {
  for (const Action& a : history.actions()) push(a);
}

void IncrementalChecker::finish() {
  if (status_.finished) return;
  if (status_.ok && buffered_ > 0) check_window();
  if (status_.ok && !options_.complete_pending) {
    // Without completion-by-extension, only explanations that fired no
    // never-completed operation count (window searches fire pending ops
    // speculatively, since mid-stream "pending" may still complete).
    std::vector<FrontierEntry> kept;
    kept.reserve(frontier_.size());
    for (FrontierEntry& entry : frontier_) {
      bool fired_pending = false;
      for (std::size_t gid : entry.fired) {
        if (ops_[gid].is_pending()) {
          fired_pending = true;
          break;
        }
      }
      if (!fired_pending) kept.push_back(std::move(entry));
    }
    frontier_ = std::move(kept);
    status_.frontier_size = frontier_.size();
    if (frontier_.empty()) {
      fail("violation: every explanation fires an operation that never "
           "completed");
    }
  }
  status_.finished = true;
}

std::optional<CaTrace> IncrementalChecker::witness() const {
  if (!status_.ok || !options_.track_witness || frontier_.empty()) {
    return std::nullopt;
  }
  return CaTrace(frontier_.front().witness);
}

void IncrementalChecker::apply_responses() {
  if (newly_completed_.empty()) return;
  std::vector<FrontierEntry> kept;
  kept.reserve(frontier_.size());
  for (FrontierEntry& entry : frontier_) {
    bool alive = true;
    for (std::size_t gid : newly_completed_) {
      const auto it = std::lower_bound(
          entry.pending_rets.begin(), entry.pending_rets.end(), gid,
          [](const auto& p, std::size_t g) { return p.first < g; });
      if (it == entry.pending_rets.end() || it->first != gid) continue;
      if (!(it->second == *ops_[gid].op.ret)) {
        alive = false;  // guessed a different return than the real one
        break;
      }
      entry.pending_rets.erase(it);  // confirmed; now an ordinary fired op
    }
    if (alive) kept.push_back(std::move(entry));
  }
  frontier_ = std::move(kept);
  newly_completed_.clear();
  if (frontier_.empty()) {
    fail("violation: every explanation committed to a different return "
         "value than the one observed");
  }
}

void IncrementalChecker::check_window() {
  buffered_ = 0;
  ++status_.windows_checked;
  apply_responses();
  if (!status_.ok) return;

  // The window problem ranges over the active (non-retired) operations,
  // re-indexed densely.
  std::vector<std::size_t> active;
  std::vector<OpRecord> local_ops;
  std::unordered_map<std::size_t, std::size_t> local_of;
  for (std::size_t gid = 0; gid < ops_.size(); ++gid) {
    if (retired_[gid]) continue;
    local_of.emplace(gid, active.size());
    active.push_back(gid);
    local_ops.push_back(ops_[gid]);
  }

  SearchOptions sopts;
  sopts.max_visited = options_.max_visited;
  sopts.exact_visited = options_.exact_visited;

  std::vector<FrontierEntry> next;
  const auto sink = [&](const auto& node, const std::vector<CaElement>&
                                              prefix) {
    FrontierEntry entry;
    entry.state = node.state;
    for (std::size_t l = 0; l < active.size(); ++l) {
      if (mask_test(node.fired, l)) entry.fired.push_back(active[l]);
    }
    entry.pending_rets.reserve(node.pending_rets.size());
    for (const auto& [l, v] : node.pending_rets) {
      entry.pending_rets.emplace_back(active[l], v);
    }
    if (options_.track_witness) {
      entry.witness = frontier_[node.root].witness;
      entry.witness.insert(entry.witness.end(), prefix.begin(),
                           prefix.end());
    }
    next.push_back(std::move(entry));
  };

  engine::SearchStats stats;
  const std::size_t threads = par::resolve_threads(options_.threads);
  if (threads > 1) {
    StreamPolicy<true> policy(local_ops, spec_, frontier_, local_of);
    ParallelSearch<StreamPolicy<true>> driver(policy, sopts, threads);
    stats = driver.run_collect(sink);
  } else {
    StreamPolicy<false> policy(local_ops, spec_, frontier_, local_of);
    SequentialSearch<StreamPolicy<false>> driver(policy, sopts);
    stats = driver.run_collect(sink);
  }
  status_.visited_states += stats.visited_states;

  if (stats.exhausted) {
    status_.exhausted = true;
    fail("window search exhausted: max_visited cap hit");
    return;
  }
  if (next.empty()) {
    fail("violation: no explanation fires every completed operation");
    return;
  }
  frontier_ = std::move(next);
  retire();
  status_.frontier_size = frontier_.size();
  status_.active_ops = ops_.size() - status_.retired_ops;
}

void IncrementalChecker::retire() {
  std::unordered_map<std::size_t, std::size_t> fired_in;
  for (const FrontierEntry& entry : frontier_) {
    for (std::size_t gid : entry.fired) {
      if (!ops_[gid].is_pending()) ++fired_in[gid];
    }
  }
  bool any = false;
  for (const auto& [gid, count] : fired_in) {
    if (count == frontier_.size()) {
      retired_[gid] = true;
      ++status_.retired_ops;
      any = true;
    }
  }
  if (!any) return;
  for (FrontierEntry& entry : frontier_) {
    entry.fired.erase(
        std::remove_if(entry.fired.begin(), entry.fired.end(),
                       [this](std::size_t gid) { return retired_[gid]; }),
        entry.fired.end());
  }
}

}  // namespace cal::engine
