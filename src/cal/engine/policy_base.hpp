// Shared plumbing of the checker policies (engine/{cal,lin,interval}_policy).
//
// Each checker policy is a template over `bool kShared`: the false
// instantiation is what the sequential driver runs (plain counters, the
// node-based StepMemo), the true instantiation is safe to share across the
// parallel driver's workers (relaxed atomic counters, the striped-lock
// ShardedStepMemo). These aliases keep that choice in one place so the
// policies themselves contain only search semantics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "cal/engine/visited.hpp"
#include "cal/history_index.hpp"
#include "cal/step_cache.hpp"

namespace cal::engine {

/// The spec-step memo matching the driver: per-search node-based map for
/// the sequential driver, sharded striped-lock map for the parallel one.
/// Both hand out references that stay valid across the recursion.
template <bool kShared, typename Outcome>
using StepMemoFor =
    std::conditional_t<kShared, ShardedStepMemo<Outcome>, StepMemo<Outcome>>;

/// A diagnostic counter matching the driver.
template <bool kShared>
using Counter =
    std::conditional_t<kShared, std::atomic<std::size_t>, std::size_t>;

inline void bump(std::size_t& c) noexcept { ++c; }
inline void bump(std::atomic<std::size_t>& c) noexcept {
  c.fetch_add(1, std::memory_order_relaxed);
}

inline std::size_t read_counter(const std::size_t& c) noexcept { return c; }
inline std::size_t read_counter(const std::atomic<std::size_t>& c) noexcept {
  return c.load(std::memory_order_relaxed);
}

/// The (spec state, fired/closed masks...) node encoding every checker
/// policy dedups on: a length-prefixed state followed by the mask words.
/// `out` is a reusable scratch buffer.
inline void encode_state_and_masks(const SpecState& state,
                                   std::initializer_list<const StateMask*>
                                       masks,
                                   NodeKey& out) {
  out.clear();
  std::size_t mask_words = 0;
  for (const StateMask* m : masks) mask_words += m->size();
  out.reserve(state.size() + mask_words + 1);
  out.push_back(static_cast<std::int64_t>(state.size()));
  out.insert(out.end(), state.begin(), state.end());
  for (const StateMask* m : masks) {
    for (std::uint64_t w : *m) out.push_back(static_cast<std::int64_t>(w));
  }
}

}  // namespace cal::engine
