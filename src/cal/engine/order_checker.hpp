// The non-enumerative priority-queue membership checker.
//
// Bouajjani–Enea–Wang show that linearizability of priority-queue
// histories reduces to per-value ordering constraints decidable in
// polynomial time — no permutation search. This module implements that
// reduction for the repo's bucket priority queue
// (insert(v) ▷ true / deleteMin ▷ (true,min) | (false,0), the inserted
// value being the priority, smaller = higher), on the fragment where every
// inserted value is distinct; instances outside the fragment *decline*
// (return nullopt) and the caller falls back to the engine search, so the
// composed verdict is always the engine's.
//
// The characterization (distinct values; removals first matched to their
// inserts):
//
//   * The insert point of a value u can always be pushed to just before
//     min(res(ins u), r_u) — dodging every earlier constraint — so the
//     only interval during which u is *unavoidably* present is the
//     "forced zone" [res(ins u), r_u) (empty when the removal resolves
//     before the insert's response; [res(ins u), ∞) for a value never
//     removed).
//   * deleteMin ▷ (true,v) must resolve at a point r_v inside its own and
//     its insert's intervals that avoids the forced zones of every value
//     smaller than v (a smaller present value would be the minimum).
//   * deleteMin ▷ (false,0) must resolve at a point inside its interval
//     avoiding the zones of *all* values.
//
// Processing values in ascending priority order and greedily resolving
// each removal at the earliest admissible point is complete: shrinking r_u
// only shrinks u's zone [res(ins u), r_u), so the greedy choice weakly
// dominates any other assignment (a standard exchange argument). Zones
// are kept in a merged interval map, making each resolution a logarithmic
// lookup plus at most one bump past a merged zone — O(n log n) overall.
// Points live on the action-index line refined by an epsilon coordinate
// (Pt = base + eps·ε), which realizes "just before / just after" without
// touching real arithmetic.
//
// On acceptance the checker also builds the witness trace the engine would
// have produced — singleton elements sorted by resolution point (inserts
// before removals at equal points, ties in ascending value order) — so
// cal_check can print it and the tests can replay it through the spec.
#pragma once

#include <optional>
#include <vector>

#include "cal/history.hpp"
#include "cal/spec.hpp"
#include "cal/symbol.hpp"

namespace cal::engine {

struct OrderCheckRequest {
  Symbol object;
  Symbol insert_method;
  Symbol delete_method;
  /// Mirrors CalCheckOptions::complete_pending: when true, pending inserts
  /// may be fired to match a completed removal (a pending deleteMin then
  /// declines — completing one is a genuine search); when false every
  /// pending invocation is dropped.
  bool complete_pending = true;
};

/// Decides CAL membership of `ops` (a well-formed history's operation
/// records) against the priority-queue specification. Returns nullopt to
/// decline to the engine: duplicate inserted values, or a pending
/// deleteMin under complete_pending.
[[nodiscard]] std::optional<OrderCheckOutcome> order_check_priority_queue(
    const std::vector<OpRecord>& ops, const OrderCheckRequest& req);

}  // namespace cal::engine
