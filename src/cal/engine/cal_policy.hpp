// CAL membership (Def. 6) as a search-engine policy.
//
// Nodes are Wing–Gong states (spec state, fired-set, #completed fired);
// successors fire one CA-element: a non-empty subset of enabled operations
// of one object (enabled = every real-time predecessor already fired, so
// candidate sets are automatically ≺H-antichains), enumerated largest
// first with CaSpec::compatible pruning partial subsets together with all
// their supersets, and each subset stepped through the per-search spec
// memo. Pending invocations participate only when completion is allowed.
// The goal is every completed operation fired. Labels are the fired
// CA-elements, so an accept-mode witness is exactly a trace T ∈ 𝒯 with
// H^c ⊑CAL T.
//
// The expansion order replicates the pre-engine checker line for line —
// with the sequential driver and exact dedup this policy is bit-for-bit
// the historical CalChecker, witness included.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/engine/policy_base.hpp"
#include "cal/engine/search_engine.hpp"
#include "cal/history.hpp"
#include "cal/history_index.hpp"
#include "cal/spec.hpp"

namespace cal::engine {

/// Memo key for spec.step(state, object, element): the chosen operations
/// are identified by their indices in the search's fixed array, so the key
/// pins the query exactly without serializing Values (cal/step_cache.hpp).
inline void encode_cal_step_key(const SpecState& state, Symbol object,
                                const std::vector<std::size_t>& chosen,
                                StepKey& out) {
  out.clear();
  out.reserve(2 + chosen.size() + state.size());
  out.push_back(static_cast<std::int64_t>(object.id()));
  out.push_back(static_cast<std::int64_t>(chosen.size()));
  for (std::size_t i : chosen) {
    out.push_back(static_cast<std::int64_t>(i));
  }
  out.insert(out.end(), state.begin(), state.end());
}

template <bool kShared>
class CalPolicy {
 public:
  struct Node {
    SpecState state;
    StateMask fired;
    std::size_t fired_completed;
  };
  using Label = CaElement;

  CalPolicy(const std::vector<OpRecord>& ops, const CaSpec& spec,
            bool complete_pending, bool symmetry = false)
      : ops_(ops),
        spec_(spec),
        complete_pending_(complete_pending),
        index_(ops) {
    if (symmetry) build_groups();
  }

  std::vector<Node> roots() const {
    return {Node{spec_.initial(), StateMask((ops_.size() + 63) / 64, 0), 0}};
  }

  bool is_goal(const Node& n) const {
    return n.fired_completed == index_.completed();
  }

  /// With symmetry groups, the dedup key identifies nodes up to swapping
  /// fired/unfired status *within* a group: grouped bits are cleared from
  /// the fired mask and replaced by per-group fired counts. Sound because
  /// group members are spec-interchangeable (CaSpec::symmetry_class) and
  /// have identical real-time constraints in both directions — the same
  /// predecessor prefix and the same successor set — so any within-group
  /// permutation maps enabled candidate sets to enabled candidate sets and
  /// spec steps to equal spec steps (DESIGN.md).
  void encode(const Node& n, NodeKey& out) const {
    if (groups_.empty()) {
      encode_state_and_masks(n.state, {&n.fired}, out);
      return;
    }
    StateMask masked = n.fired;
    for (std::size_t w = 0; w < masked.size(); ++w) {
      masked[w] &= ~grouped_mask_[w];
    }
    encode_state_and_masks(n.state, {&masked}, out);
    for (const std::vector<std::size_t>& members : groups_) {
      std::int64_t fired = 0;
      for (std::size_t i : members) {
        if (mask_test(n.fired, i)) ++fired;
      }
      out.push_back(fired);
    }
  }

  void on_enter(const Node&, std::size_t) {}

  /// Dedup-hit attribution (engine hook): a hit on a node where some group
  /// is *partially* fired may have merged a genuinely distinct fired set —
  /// an upper bound on the merges classic dedup would have missed.
  void on_dedup(const Node& n) {
    if (groups_.empty()) return;
    for (const std::vector<std::size_t>& members : groups_) {
      std::size_t fired = 0;
      for (std::size_t i : members) {
        if (mask_test(n.fired, i)) ++fired;
      }
      if (fired != 0 && fired != members.size()) {
        bump(symmetry_merged_);
        return;
      }
    }
  }

  bool cancelled() const { return false; }

  template <typename Emit>
  void expand(const Node& node, std::size_t /*depth*/,
              const std::vector<Label>& /*prefix*/, Emit&& emit) {
    // Collect enabled operations, grouped by object. Pending invocations
    // participate only when completion is allowed.
    std::unordered_map<Symbol, std::vector<std::size_t>> by_object;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!index_.enabled(i, node.fired)) continue;
      if (ops_[i].is_pending() && !complete_pending_) continue;
      by_object[ops_[i].op.object].push_back(i);
    }

    // Enumerate non-empty subsets of each object's candidates, largest
    // first (multi-operation CA-elements are the common witness shape for
    // CA-objects, e.g. exchanger swaps).
    std::vector<std::size_t> chosen;
    std::vector<Operation> chosen_ops;
    for (const auto& [object, candidates] : by_object) {
      const std::size_t cap =
          spec_.max_element_size() == 0
              ? candidates.size()
              : std::min(spec_.max_element_size(), candidates.size());
      for (std::size_t size = cap; size >= 1; --size) {
        chosen.clear();
        chosen_ops.clear();
        if (!try_subsets(node, object, candidates, 0, size, chosen,
                         chosen_ops, emit)) {
          return;
        }
      }
    }
  }

  [[nodiscard]] std::size_t fired_elements() const {
    return read_counter(fired_elements_);
  }
  [[nodiscard]] std::size_t pruned_subsets() const {
    return read_counter(pruned_subsets_);
  }
  [[nodiscard]] std::size_t symmetry_merged() const {
    return read_counter(symmetry_merged_);
  }
  /// Operations actually covered by a symmetry group (diagnostic).
  [[nodiscard]] std::size_t symmetric_ops() const {
    std::size_t n = 0;
    for (const auto& g : groups_) n += g.size();
    return n;
  }
  [[nodiscard]] std::size_t step_cache_hits() const { return memo_.hits(); }
  [[nodiscard]] std::size_t step_cache_misses() const {
    return memo_.misses();
  }

 private:
  /// Partitions the completed operations into interchangeability groups.
  /// Two operations may share a group only when
  ///   * the spec declares them interchangeable (equal nonzero
  ///     symmetry_class for their object),
  ///   * they have the same real-time predecessors (equal pred-prefix
  ///     length — predecessor lists are prefixes of one response-sorted
  ///     order), and
  ///   * they constrain the same successors: their positions in the
  ///     response-sorted order fall on the same side of every distinct
  ///     predecessor-count threshold.
  /// The last two conditions are recomputed here from the raw indices the
  /// same way HistoryIndex computes them (it exposes only the combined
  /// `enabled` query). Groups of size 1 are dropped — they reduce nothing.
  void build_groups() {
    const std::size_t n = ops_.size();
    // Response-sorted order of completed ops, and each op's position in it.
    std::vector<std::size_t> by_res;
    for (std::size_t i = 0; i < n; ++i) {
      if (!ops_[i].is_pending()) by_res.push_back(i);
    }
    std::sort(by_res.begin(), by_res.end(),
              [this](std::size_t a, std::size_t b) {
                return *ops_[a].res_index < *ops_[b].res_index;
              });
    std::vector<std::size_t> pos(n, 0);
    for (std::size_t p = 0; p < by_res.size(); ++p) pos[by_res[p]] = p;
    // Predecessor-prefix length per op (HistoryIndex's sweep).
    std::vector<std::size_t> by_inv(n);
    for (std::size_t i = 0; i < n; ++i) by_inv[i] = i;
    std::sort(by_inv.begin(), by_inv.end(),
              [this](std::size_t a, std::size_t b) {
                return ops_[a].inv_index < ops_[b].inv_index;
              });
    std::vector<std::size_t> pred_count(n, 0);
    std::size_t k = 0;
    for (std::size_t i : by_inv) {
      while (k < by_res.size() &&
             *ops_[by_res[k]].res_index < ops_[i].inv_index) {
        ++k;
      }
      pred_count[i] = k;
    }
    // Successor bucket: how many distinct thresholds lie at or below the
    // op's response-sorted position (ops in the same bucket are
    // predecessors of exactly the same set of operations).
    std::vector<std::size_t> thresholds(pred_count);
    std::sort(thresholds.begin(), thresholds.end());
    thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                     thresholds.end());
    auto bucket = [&thresholds](std::size_t p) {
      return static_cast<std::size_t>(
          std::upper_bound(thresholds.begin(), thresholds.end(), p) -
          thresholds.begin());
    };
    // Group by (object, class, pred_count, bucket).
    struct GroupKey {
      std::uint32_t object;
      std::uint64_t cls;
      std::size_t preds;
      std::size_t bucket;
      bool operator==(const GroupKey&) const = default;
    };
    std::vector<std::pair<GroupKey, std::size_t>> found;  // key -> group idx
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < n; ++i) {
      if (ops_[i].is_pending()) continue;
      const std::uint64_t cls =
          spec_.symmetry_class(ops_[i].op.object, ops_[i].op);
      if (cls == 0) continue;
      const GroupKey key{ops_[i].op.object.id(), cls, pred_count[i],
                         bucket(pos[i])};
      std::size_t g = groups.size();
      for (const auto& [fk, fg] : found) {
        if (fk == key) {
          g = fg;
          break;
        }
      }
      if (g == groups.size()) {
        found.emplace_back(key, g);
        groups.emplace_back();
      }
      groups[g].push_back(i);
    }
    grouped_mask_.assign((n + 63) / 64, 0);
    for (std::vector<std::size_t>& g : groups) {
      if (g.size() < 2) continue;
      for (std::size_t i : g) mask_set(grouped_mask_, i);
      groups_.push_back(std::move(g));
    }
  }

  /// False = the driver asked to stop (goal found / cancelled).
  template <typename Emit>
  bool try_subsets(const Node& node, Symbol object,
                   const std::vector<std::size_t>& candidates,
                   std::size_t from, std::size_t remaining,
                   std::vector<std::size_t>& chosen,
                   std::vector<Operation>& chosen_ops, Emit& emit) {
    if (remaining == 0) {
      return fire(node, object, chosen, chosen_ops, emit);
    }
    for (std::size_t i = from; i + remaining <= candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      chosen_ops.push_back(ops_[candidates[i]].op);
      bool keep_going = true;
      if (!spec_.compatible(object, chosen_ops)) {
        bump(pruned_subsets_);
      } else {
        keep_going = try_subsets(node, object, candidates, i + 1,
                                 remaining - 1, chosen, chosen_ops, emit);
      }
      chosen.pop_back();
      chosen_ops.pop_back();
      if (!keep_going) return false;
    }
    return true;
  }

  /// spec_.step through the memo; the returned reference stays valid
  /// across the recursion (node-based / sharded map, never erased).
  const std::vector<CaStepResult>& stepped(
      const SpecState& state, Symbol object,
      const std::vector<std::size_t>& chosen,
      const std::vector<Operation>& element_ops) {
    StepKey key;
    encode_cal_step_key(state, object, chosen, key);
    if (const auto* cached = memo_.find(key)) return *cached;
    return memo_.insert(std::move(key),
                        spec_.step(state, object, element_ops));
  }

  template <typename Emit>
  bool fire(const Node& node, Symbol object,
            const std::vector<std::size_t>& chosen,
            const std::vector<Operation>& element_ops, Emit& emit) {
    std::size_t newly_completed = 0;
    for (std::size_t i : chosen) {
      if (!ops_[i].is_pending()) ++newly_completed;
    }
    for (const CaStepResult& sr :
         stepped(node.state, object, chosen, element_ops)) {
      bump(fired_elements_);
      Node next{sr.next, node.fired, node.fired_completed + newly_completed};
      for (std::size_t i : chosen) mask_set(next.fired, i);
      if (!emit(std::move(next), CaElement(sr.element))) return false;
    }
    return true;
  }

  const std::vector<OpRecord>& ops_;
  const CaSpec& spec_;
  bool complete_pending_;
  HistoryIndex index_;
  /// Interchangeability groups (≥ 2 members each) and the bit-mask of all
  /// grouped operations; both empty when symmetry is off or inapplicable.
  std::vector<std::vector<std::size_t>> groups_;
  StateMask grouped_mask_;
  StepMemoFor<kShared, CaStepResult> memo_;
  Counter<kShared> fired_elements_{0};
  Counter<kShared> pruned_subsets_{0};
  Counter<kShared> symmetry_merged_{0};
};

}  // namespace cal::engine
