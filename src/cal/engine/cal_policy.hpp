// CAL membership (Def. 6) as a search-engine policy.
//
// Nodes are Wing–Gong states (spec state, fired-set, #completed fired);
// successors fire one CA-element: a non-empty subset of enabled operations
// of one object (enabled = every real-time predecessor already fired, so
// candidate sets are automatically ≺H-antichains), enumerated largest
// first with CaSpec::compatible pruning partial subsets together with all
// their supersets, and each subset stepped through the per-search spec
// memo. Pending invocations participate only when completion is allowed.
// The goal is every completed operation fired. Labels are the fired
// CA-elements, so an accept-mode witness is exactly a trace T ∈ 𝒯 with
// H^c ⊑CAL T.
//
// The expansion order replicates the pre-engine checker line for line —
// with the sequential driver and exact dedup this policy is bit-for-bit
// the historical CalChecker, witness included.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cal/ca_trace.hpp"
#include "cal/engine/policy_base.hpp"
#include "cal/engine/search_engine.hpp"
#include "cal/history.hpp"
#include "cal/history_index.hpp"
#include "cal/spec.hpp"

namespace cal::engine {

/// Memo key for spec.step(state, object, element): the chosen operations
/// are identified by their indices in the search's fixed array, so the key
/// pins the query exactly without serializing Values (cal/step_cache.hpp).
inline void encode_cal_step_key(const SpecState& state, Symbol object,
                                const std::vector<std::size_t>& chosen,
                                StepKey& out) {
  out.clear();
  out.reserve(2 + chosen.size() + state.size());
  out.push_back(static_cast<std::int64_t>(object.id()));
  out.push_back(static_cast<std::int64_t>(chosen.size()));
  for (std::size_t i : chosen) {
    out.push_back(static_cast<std::int64_t>(i));
  }
  out.insert(out.end(), state.begin(), state.end());
}

template <bool kShared>
class CalPolicy {
 public:
  struct Node {
    SpecState state;
    StateMask fired;
    std::size_t fired_completed;
  };
  using Label = CaElement;

  CalPolicy(const std::vector<OpRecord>& ops, const CaSpec& spec,
            bool complete_pending)
      : ops_(ops),
        spec_(spec),
        complete_pending_(complete_pending),
        index_(ops) {}

  std::vector<Node> roots() const {
    return {Node{spec_.initial(), StateMask((ops_.size() + 63) / 64, 0), 0}};
  }

  bool is_goal(const Node& n) const {
    return n.fired_completed == index_.completed();
  }

  void encode(const Node& n, NodeKey& out) const {
    encode_state_and_masks(n.state, {&n.fired}, out);
  }

  void on_enter(const Node&, std::size_t) {}
  bool cancelled() const { return false; }

  template <typename Emit>
  void expand(const Node& node, std::size_t /*depth*/,
              const std::vector<Label>& /*prefix*/, Emit&& emit) {
    // Collect enabled operations, grouped by object. Pending invocations
    // participate only when completion is allowed.
    std::unordered_map<Symbol, std::vector<std::size_t>> by_object;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (!index_.enabled(i, node.fired)) continue;
      if (ops_[i].is_pending() && !complete_pending_) continue;
      by_object[ops_[i].op.object].push_back(i);
    }

    // Enumerate non-empty subsets of each object's candidates, largest
    // first (multi-operation CA-elements are the common witness shape for
    // CA-objects, e.g. exchanger swaps).
    std::vector<std::size_t> chosen;
    std::vector<Operation> chosen_ops;
    for (const auto& [object, candidates] : by_object) {
      const std::size_t cap =
          spec_.max_element_size() == 0
              ? candidates.size()
              : std::min(spec_.max_element_size(), candidates.size());
      for (std::size_t size = cap; size >= 1; --size) {
        chosen.clear();
        chosen_ops.clear();
        if (!try_subsets(node, object, candidates, 0, size, chosen,
                         chosen_ops, emit)) {
          return;
        }
      }
    }
  }

  [[nodiscard]] std::size_t fired_elements() const {
    return read_counter(fired_elements_);
  }
  [[nodiscard]] std::size_t pruned_subsets() const {
    return read_counter(pruned_subsets_);
  }
  [[nodiscard]] std::size_t step_cache_hits() const { return memo_.hits(); }
  [[nodiscard]] std::size_t step_cache_misses() const {
    return memo_.misses();
  }

 private:
  /// False = the driver asked to stop (goal found / cancelled).
  template <typename Emit>
  bool try_subsets(const Node& node, Symbol object,
                   const std::vector<std::size_t>& candidates,
                   std::size_t from, std::size_t remaining,
                   std::vector<std::size_t>& chosen,
                   std::vector<Operation>& chosen_ops, Emit& emit) {
    if (remaining == 0) {
      return fire(node, object, chosen, chosen_ops, emit);
    }
    for (std::size_t i = from; i + remaining <= candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      chosen_ops.push_back(ops_[candidates[i]].op);
      bool keep_going = true;
      if (!spec_.compatible(object, chosen_ops)) {
        bump(pruned_subsets_);
      } else {
        keep_going = try_subsets(node, object, candidates, i + 1,
                                 remaining - 1, chosen, chosen_ops, emit);
      }
      chosen.pop_back();
      chosen_ops.pop_back();
      if (!keep_going) return false;
    }
    return true;
  }

  /// spec_.step through the memo; the returned reference stays valid
  /// across the recursion (node-based / sharded map, never erased).
  const std::vector<CaStepResult>& stepped(
      const SpecState& state, Symbol object,
      const std::vector<std::size_t>& chosen,
      const std::vector<Operation>& element_ops) {
    StepKey key;
    encode_cal_step_key(state, object, chosen, key);
    if (const auto* cached = memo_.find(key)) return *cached;
    return memo_.insert(std::move(key),
                        spec_.step(state, object, element_ops));
  }

  template <typename Emit>
  bool fire(const Node& node, Symbol object,
            const std::vector<std::size_t>& chosen,
            const std::vector<Operation>& element_ops, Emit& emit) {
    std::size_t newly_completed = 0;
    for (std::size_t i : chosen) {
      if (!ops_[i].is_pending()) ++newly_completed;
    }
    for (const CaStepResult& sr :
         stepped(node.state, object, chosen, element_ops)) {
      bump(fired_elements_);
      Node next{sr.next, node.fired, node.fired_completed + newly_completed};
      for (std::size_t i : chosen) mask_set(next.fired, i);
      if (!emit(std::move(next), CaElement(sr.element))) return false;
    }
    return true;
  }

  const std::vector<OpRecord>& ops_;
  const CaSpec& spec_;
  bool complete_pending_;
  HistoryIndex index_;
  StepMemoFor<kShared, CaStepResult> memo_;
  Counter<kShared> fired_elements_{0};
  Counter<kShared> pruned_subsets_{0};
};

}  // namespace cal::engine
